// Progressive post-analysis (the paper's Fig. 11 scenario): retrieve 0.1%,
// 0.3% and 1% of the data and evaluate two derived quantities — curl of the
// velocity field and Laplacian of the density field.  Curl (first
// derivatives) stabilizes with far less data than the Laplacian (second
// derivatives), demonstrating why progressive retrieval matters.
//
//   ./progressive_analysis [tiny|small|full] [output_dir]
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/image.hpp"
#include "analysis/stencil.hpp"
#include "data/datasets.hpp"
#include "ipcomp.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace ipcomp;

  DataScale scale = DataScale::kTiny;
  if (argc > 1 && std::strcmp(argv[1], "small") == 0) scale = DataScale::kSmall;
  if (argc > 1 && std::strcmp(argv[1], "full") == 0) scale = DataScale::kPaper;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  const auto& density = cached_field(Field::kDensity, scale);
  const auto& vx = cached_field(Field::kVelocityX, scale);
  const auto& vy = cached_field(Field::kVelocityY, scale);
  const auto& vz = cached_field(Field::kVelocityZ, scale);

  // Reference analyses on the original data.
  auto curl_ref = curl_magnitude(vx.const_view(), vy.const_view(), vz.const_view());
  auto lap_ref = laplacian(density.const_view());

  Options opt;
  opt.error_bound = 1e-9;
  std::cout << "Compressing density + 3 velocity components (eb = 1e-9 rel)...\n";
  MemorySource dsrc(compress(density.const_view(), opt));
  MemorySource xsrc(compress(vx.const_view(), opt));
  MemorySource ysrc(compress(vy.const_view(), opt));
  MemorySource zsrc(compress(vz.const_view(), opt));
  ProgressiveReader<double> dr(dsrc), xr(xsrc), yr(ysrc), zr(zsrc);

  const Dims dims = density.dims();
  const std::size_t mid = dims[0] / 2;
  TableReporter table({"retrieved", "curl NRMSE", "laplace NRMSE", "verdict"});

  // The paper's 0.1/0.3/1% assume the full-size grids; scale the fractions so
  // the sweep stays informative at reduced sizes (see bench_fig11_visual).
  std::vector<double> fractions = scale == DataScale::kPaper
                                      ? std::vector<double>{0.001, 0.003, 0.01}
                                  : scale == DataScale::kSmall
                                      ? std::vector<double>{0.003, 0.01, 0.03}
                                      : std::vector<double>{0.01, 0.03, 0.10};
  for (double fraction : fractions) {
    const double bits = fraction * 64.0;  // fraction of the raw 64-bit data
    dr.retrieve(Request::bitrate(bits));
    xr.retrieve(Request::bitrate(bits));
    yr.retrieve(Request::bitrate(bits));
    zr.retrieve(Request::bitrate(bits));

    NdConstView<double> dvx(xr.data().data(), dims);
    NdConstView<double> dvy(yr.data().data(), dims);
    NdConstView<double> dvz(zr.data().data(), dims);
    NdConstView<double> dd(dr.data().data(), dims);
    auto curl = curl_magnitude(dvx, dvy, dvz);
    auto lap = laplacian(dd);

    const double curl_err = nrmse(curl_ref.const_view(), curl.const_view());
    const double lap_err = nrmse(lap_ref.const_view(), lap.const_view());
    std::string verdict = curl_err < 0.05
                              ? (lap_err < 0.05 ? "both usable" : "curl usable")
                              : "too coarse";
    table.row({TableReporter::num(fraction * 100, 2) + "%",
               TableReporter::num(curl_err, 4), TableReporter::num(lap_err, 4),
               verdict});

    const std::string tag = std::to_string(fraction * 100);
    write_slice_pgm(out_dir + "/curl_" + tag + "pct.pgm", curl.const_view(), mid,
                    0.0, 6.0);
    write_slice_pgm(out_dir + "/laplace_" + tag + "pct.pgm", lap.const_view(), mid,
                    -0.5, 0.5);
  }

  // Reference images for comparison.
  write_slice_pgm(out_dir + "/curl_ref.pgm", curl_ref.const_view(), mid, 0.0, 6.0);
  write_slice_pgm(out_dir + "/laplace_ref.pgm", lap_ref.const_view(), mid, -0.5, 0.5);
  std::cout << "\nSlice images written to " << out_dir
            << " (curl_*.pgm, laplace_*.pgm).\n"
            << "Derived quantities need different retrieval fidelity: the\n"
            << "coarsest step is unusable, one more step suffices for the\n"
            << "curl, and the finest serves both (paper Fig. 11).\n";
  return 0;
}
