// Quickstart: compress a scientific field once, then retrieve it at three
// fidelity levels — each refinement loads only the additional bitplanes.
//
//   ./quickstart [tiny|small|full]
#include <cstdint>
#include <cstring>
#include <iostream>
#include <utility>

#include "data/datasets.hpp"
#include "ipcomp.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

int main(int argc, char** argv) {
  using namespace ipcomp;

  DataScale scale = DataScale::kTiny;
  if (argc > 1 && std::strcmp(argv[1], "small") == 0) scale = DataScale::kSmall;
  if (argc > 1 && std::strcmp(argv[1], "full") == 0) scale = DataScale::kPaper;

  // 1. A scientific dataset: turbulence density (synthetic Miranda stand-in).
  auto spec = dataset_spec(Field::kDensity, scale);
  const NdArray<double>& field = cached_field(Field::kDensity, scale);
  std::cout << "dataset   : " << spec.name << " (" << spec.domain << "), "
            << spec.dims.to_string() << " float64, "
            << field.count() * sizeof(double) / 1024 << " KiB raw\n";

  // 2. Compress once with a tight bound (1e-9 relative, like the paper).
  Options opt;
  opt.error_bound = 1e-9;
  opt.relative = true;
  Bytes archive = compress(field.const_view(), opt);
  std::cout << "compressed: " << archive.size() / 1024 << " KiB  (ratio "
            << TableReporter::num(compression_ratio(field.count() * 8, archive.size()))
            << ", eb = 1e-9 x range)\n\n";

  // 3. Progressive retrieval: coarse -> medium -> full, one reader.
  // (The blob is copied in: step 4 serves the same archive over loopback.)
  MemorySource src(archive);
  ProgressiveReader<double> reader(src);

  auto report = [&](const char* label, const RetrievalStats& st) {
    auto err = compute_error_stats<double>(field.const_view().span(),
                                           {reader.data().data(), reader.data().size()});
    std::cout << label << ": loaded " << st.bytes_total / 1024 << " KiB total ("
              << TableReporter::num(st.bitrate, 3) << " bits/value), "
              << "L-inf error " << TableReporter::sci(err.max_abs)
              << " (guaranteed <= " << TableReporter::sci(st.guaranteed_error)
              << "), PSNR " << TableReporter::num(err.psnr, 4) << " dB\n";
  };

  // The plan/execute split: inspect what the request *would* fetch before a
  // payload byte moves (retrieve(Request) is a one-call wrapper around
  // exactly this).
  const double coarse_target =
      1e-3 * (reader.header().data_max - reader.header().data_min);
  RetrievalPlan plan = reader.plan(Request::error_bound(coarse_target));
  std::cout << "plan for " << to_string(plan.request) << ": "
            << plan.segments.size() << " segments, " << plan.bytes_new
            << " bytes, guaranteed L-inf "
            << TableReporter::sci(plan.guaranteed_error) << " -> executing\n";
  report("coarse (eb 1e-3) ", reader.execute(plan));
  report("medium (12 bits) ", reader.retrieve(Request::bitrate(12.0)));
  report("full             ", reader.retrieve(Request::full()));

  std::cout << "\nEvery refinement reused the planes already in memory and\n"
               "decompressed in a single pass (paper Algorithms 1 & 2).\n";

  // 4. The same lifecycle over the network: a loopback daemon serving the
  // archive, a RemoteReader running plan/execute against it.  Refinements
  // move only bytes_new across the wire — the planes already staged on the
  // client are never re-sent.
  net::ServerConfig scfg;
  scfg.listen = "127.0.0.1:0";  // ephemeral port
  net::Server server(scfg);
  server.export_memory("density", std::move(archive));
  server.start();

  // Byte-identity holds for the *same* request sequence (float accumulation
  // differs across different refinement paths, local or remote alike).
  net::RemoteReader<double> remote(server.address(), "density");
  RetrievalStats st = remote.retrieve(Request::error_bound(coarse_target));
  const std::uint64_t first_wire = remote.archive().last_payload_bytes();
  remote.retrieve(Request::bitrate(12.0));
  st = remote.retrieve(Request::full());
  std::cout << "\nremote    : refined to full over " << server.address()
            << " — " << first_wire / 1024 << " KiB then "
            << remote.archive().last_payload_bytes() / 1024
            << " KiB on the wire (" << st.bytes_total / 1024
            << " KiB total priced), reconstruction identical to local: "
            << (remote.data() == reader.data() ? "yes" : "NO") << "\n";
  server.stop();
  return 0;
}
