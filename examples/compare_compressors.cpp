// Side-by-side comparison of all progressive compressors on one dataset:
// storage ratio, retrieval volume at a mid fidelity, and pass counts.
//
//   ./compare_compressors [field] [tiny|small|full]
//   field in {Density, Pressure, VelocityX, Wave, SpeedX, CH4}
#include <cstring>
#include <iostream>

#include "baselines/ipcomp_adapter.hpp"
#include "data/datasets.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ipcomp;

  Field field = Field::kDensity;
  if (argc > 1) {
    for (Field f : {Field::kDensity, Field::kPressure, Field::kVelocityX,
                    Field::kWave, Field::kSpeedX, Field::kCH4}) {
      if (std::strcmp(argv[1], field_name(f)) == 0) field = f;
    }
  }
  DataScale scale = DataScale::kTiny;
  if (argc > 2 && std::strcmp(argv[2], "small") == 0) scale = DataScale::kSmall;
  if (argc > 2 && std::strcmp(argv[2], "full") == 0) scale = DataScale::kPaper;

  const auto& data = cached_field(field, scale);
  const std::size_t raw = data.count() * sizeof(double);
  const double range = value_range<double>({data.data(), data.count()});
  const double eb = 1e-6 * range;      // storage bound
  const double target = 1e-3 * range;  // mid-fidelity retrieval target

  std::cout << "dataset " << field_name(field) << " " << data.dims().to_string()
            << ", eb = 1e-6 rel, retrieval target = 1e-3 rel\n\n";
  TableReporter table({"compressor", "ratio", "comp MB/s", "retrieved KiB",
                       "passes", "L-inf ok"});

  for (auto& c : speed_lineup()) {
    Timer t;
    Bytes archive = c->compress(data.const_view(), eb);
    const double comp_s = t.seconds();
    auto r = c->retrieve_error(archive, target);
    auto stats = compute_error_stats<double>({data.data(), data.count()},
                                             {r.data.data(), r.data.size()});
    table.row({c->name(), TableReporter::num(compression_ratio(raw, archive.size())),
               TableReporter::num(mb_per_s(raw, comp_s)),
               std::to_string(r.bytes_loaded / 1024), std::to_string(r.passes),
               stats.max_abs <= target * (1 + 1e-9) ? "yes" : "NO"});
  }
  std::cout << "\nIPComp: highest ratio, single-pass retrieval at arbitrary\n"
               "fidelity; residual methods need one pass per loaded stage.\n";
  return 0;
}
