// Snapshot triage: the exploratory workflow from the paper's introduction.
//
// A scientist has many simulation snapshots and wants the one with the most
// intense vortical activity.  With progressive archives they scan ALL
// snapshots at coarse fidelity (cheap), rank them, and spend full-fidelity
// retrieval on the winner only.  The example reports the bytes a
// non-progressive workflow would have loaded versus what triage actually
// loaded.
//
//   ./snapshot_triage [n_snapshots]
#include <iostream>
#include <string>
#include <vector>

#include "analysis/stencil.hpp"
#include "data/datasets.hpp"
#include "ipcomp.hpp"
#include "metrics/report.hpp"

namespace {

// Synthetic time series: advect the velocity field generator through "time"
// by regenerating at shifted coordinates (cheap stand-in for snapshots).
ipcomp::NdArray<double> snapshot_component(ipcomp::Field f, const ipcomp::Dims& dims,
                                           int t) {
  using namespace ipcomp;
  auto base = generate_field(f, dims);
  // Modulate amplitude over time so snapshots genuinely differ.
  const double amp = 0.6 + 0.1 * t + 0.3 * std::sin(0.9 * t);
  for (std::size_t i = 0; i < base.count(); ++i) base[i] *= amp;
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipcomp;
  const int n_snapshots = argc > 1 ? std::atoi(argv[1]) : 6;
  const Dims dims = dataset_spec(Field::kVelocityX, DataScale::kTiny).dims;

  // Compress every snapshot's three velocity components.
  Options opt;
  opt.error_bound = 1e-9;
  struct Snapshot {
    Bytes vx, vy, vz;
  };
  std::vector<Snapshot> archives;
  std::size_t raw_bytes = 0;
  for (int t = 0; t < n_snapshots; ++t) {
    Snapshot s;
    auto fx = snapshot_component(Field::kVelocityX, dims, t);
    auto fy = snapshot_component(Field::kVelocityY, dims, t);
    auto fz = snapshot_component(Field::kVelocityZ, dims, t);
    raw_bytes += 3 * fx.count() * sizeof(double);
    s.vx = compress(fx.const_view(), opt);
    s.vy = compress(fy.const_view(), opt);
    s.vz = compress(fz.const_view(), opt);
    archives.push_back(std::move(s));
  }
  std::cout << n_snapshots << " snapshots x 3 components, raw "
            << raw_bytes / 1024 << " KiB total\n\n";

  // Pass 1 — coarse scan: 1 bit/value is plenty to rank mean |curl|.
  TableReporter table({"snapshot", "mean |curl| (coarse)", "KiB loaded"});
  std::size_t triage_bytes = 0;
  double best_score = -1;
  int best_t = 0;
  for (int t = 0; t < n_snapshots; ++t) {
    MemorySource sx{Bytes(archives[t].vx)}, sy{Bytes(archives[t].vy)},
        sz{Bytes(archives[t].vz)};
    ProgressiveReader<double> rx(sx), ry(sy), rz(sz);
    rx.retrieve(Request::bitrate(1.0));
    ry.retrieve(Request::bitrate(1.0));
    rz.retrieve(Request::bitrate(1.0));
    auto curl = curl_magnitude({rx.data().data(), dims}, {ry.data().data(), dims},
                               {rz.data().data(), dims});
    double mean = 0;
    for (std::size_t i = 0; i < curl.count(); ++i) mean += curl[i];
    mean /= static_cast<double>(curl.count());
    std::size_t loaded = rx.bytes_loaded() + ry.bytes_loaded() + rz.bytes_loaded();
    triage_bytes += loaded;
    table.row({std::to_string(t), TableReporter::num(mean, 5),
               std::to_string(loaded / 1024)});
    if (mean > best_score) {
      best_score = mean;
      best_t = t;
    }
  }

  // Pass 2 — full fidelity for the winning snapshot only.
  {
    MemorySource sx{Bytes(archives[best_t].vx)}, sy{Bytes(archives[best_t].vy)},
        sz{Bytes(archives[best_t].vz)};
    ProgressiveReader<double> rx(sx), ry(sy), rz(sz);
    rx.retrieve(Request::full());
    ry.retrieve(Request::full());
    rz.retrieve(Request::full());
    triage_bytes += rx.bytes_loaded() + ry.bytes_loaded() + rz.bytes_loaded();
  }

  std::size_t naive_bytes = 0;
  for (auto& s : archives) {
    naive_bytes += s.vx.size() + s.vy.size() + s.vz.size();
  }
  std::cout << "\nselected snapshot " << best_t << " for detailed analysis\n"
            << "triage workflow loaded : " << triage_bytes / 1024 << " KiB\n"
            << "load-everything would be: " << naive_bytes / 1024 << " KiB ("
            << TableReporter::num(100.0 * triage_bytes / naive_bytes, 3)
            << "% of that)\n";
  return 0;
}
