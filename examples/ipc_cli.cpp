// ipc — command-line front end for IPComp archives.
//
//   ipc compress <input.raw> <output.ipc> --dims ZxYxX [--type f64|f32]
//                [--eb 1e-6] [--abs] [--interp cubic|linear] [--block-side N]
//                [--backend interp|wavelet] [--codec probe|tryall|rle]
//   ipc retrieve <archive.ipc> <output.raw>
//                [--eb E | --bytes N | --bitrate B | --full]
//                [--region z0:z1xy0:y1xx0:x1] [--dry-run]
//   ipc info     <archive.ipc>
//   ipc stats    <original.raw> <candidate.raw> --dims ZxYxX [--type f64|f32]
//   ipc serve    <archive.ipc> [--clients N] [--rounds R] [--cache-budget MB]
//                [--quota BYTES]
//   ipc serve    <archive.ipc> --listen ADDR [--workers N] [--mmap on|off]
//                [--cache-budget MB] [--quota BYTES]
//   ipc serve    <name> --connect ADDR [--clients N] [--rounds R]
//
// Raw files are dense row-major little-endian arrays (SDRBench layout).
// --block-side N compresses in independent N^d blocks (archive format v2+):
// compression parallelizes across blocks and --region retrieves a sub-box by
// reading only the blocks that intersect it.  --region composes with any
// fidelity flag ("this region at eb 1e-3"); alone it means full fidelity.
// --dry-run prints the retrieval plan — segments, predicted bytes, predicted
// guaranteed error — without fetching a payload byte (the output file may be
// omitted).  --backend selects the progressive backend (interp = the paper's
// interpolation predictor, wavelet = CDF 9/7; wavelet archives use format
// v3).  --codec picks the per-segment codec policy (probe = entropy-probed
// routing, the default; tryall = legacy encode-both-keep-smallest, byte-
// identical to pre-orchestration archives; rle = cheapest encode stage).
// `serve` drives N concurrent client sessions through one shared
// ArchiveSet (segment LRU cache + pooled I/O) and reports throughput, cache
// hit rate and physical-vs-logical I/O; --quota caps each session's bytes
// and counts plan-admission rejections.  With --listen it instead runs the
// network daemon (net/server.hpp) on "host:port" or "unix:/path", exporting
// the archive under both its path and basename, mmap-backed unless
// --mmap off; SIGINT/SIGTERM drain gracefully and print the server stats.
// With --connect it drives the same mixed traffic as the in-process mode
// through RemoteReader clients against a running daemon and prints the
// daemon's STAT reply.  Unknown flags and malformed values exit non-zero
// with a usage hint.
#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ipcomp.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace ipcomp;

[[noreturn]] void usage(const std::string& msg = "") {
  if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  ipc compress <input.raw> <output.ipc> --dims ZxYxX [--type f64|f32]\n"
      "               [--eb 1e-6] [--abs] [--interp cubic|linear] [--block-side N]\n"
      "               [--backend interp|wavelet] [--codec probe|tryall|rle]\n"
      "  ipc retrieve <archive.ipc> <output.raw>\n"
      "               [--eb E | --bytes N | --bitrate B | --full]\n"
      "               [--region z0:z1xy0:y1xx0:x1] [--dry-run]\n"
      "  ipc info     <archive.ipc>\n"
      "  ipc stats    <original.raw> <candidate.raw> --dims ZxYxX [--type f64|f32]\n"
      "  ipc serve    <archive.ipc> [--clients N] [--rounds R] [--cache-budget MB]\n"
      "               [--quota BYTES]\n"
      "  ipc serve    <archive.ipc> --listen ADDR [--workers N] [--mmap on|off]\n"
      "               [--cache-budget MB] [--quota BYTES] [--fault-seed S]\n"
      "  ipc serve    <name> --connect ADDR [--clients N] [--rounds R]\n";
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 2; i < argc; ++i) {
      std::string s = argv[i];
      if (s.rfind("--", 0) == 0) {
        std::string key = s.substr(2);
        // insert_or_assign with an explicit std::string temporary sidesteps a
        // GCC 12 -Wrestrict false positive (PR 105329) in the inlined
        // mapped_type::operator=(const char*), which -Werror turns fatal.
        if (key == "abs" || key == "full" || key == "dry-run") {
          a.flags.insert_or_assign(key, std::string("1"));
        } else {
          if (i + 1 >= argc) usage("missing value for --" + key);
          a.flags.insert_or_assign(key, std::string(argv[++i]));
        }
      } else {
        a.positional.push_back(s);
      }
    }
    return a;
  }

  /// Reject flags the current command does not understand: a typo silently
  /// ignored (e.g. --bakend) would compress with defaults.
  void allow_only(std::initializer_list<const char*> allowed) const {
    for (const auto& [key, value] : flags) {
      bool ok = false;
      for (const char* k : allowed) ok = ok || key == k;
      if (!ok) usage("unknown flag --" + key);
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = flags.find(key);
    if (it == flags.end()) return std::nullopt;
    return it->second;
  }
};

/// Strict numeric flag parsing: the whole token must be consumed and lead
/// with a digit (stod/stoull would accept whitespace, '+', "nan"), so
/// "--eb 1e-6x", "--eb nan" or "--block-side ' -1'" fail loudly instead of
/// truncating, poisoning the quantizer, or wrapping negative.
double parse_double(const std::string& s, const std::string& flag) {
  try {
    const bool leads_ok =
        !s.empty() && (std::isdigit(static_cast<unsigned char>(s[0])) ||
                       s[0] == '-' || s[0] == '.');
    std::size_t pos = 0;
    double v = leads_ok ? std::stod(s, &pos) : 0.0;
    if (!leads_ok || pos != s.size() || !std::isfinite(v)) {
      usage("malformed value '" + s + "' for --" + flag);
    }
    return v;
  } catch (const std::logic_error&) {
    usage("malformed value '" + s + "' for --" + flag);
  }
}

std::size_t parse_size(const std::string& s, const std::string& flag) {
  try {
    const bool leads_ok =
        !s.empty() && std::isdigit(static_cast<unsigned char>(s[0]));
    std::size_t pos = 0;
    unsigned long long v = leads_ok ? std::stoull(s, &pos) : 0;
    if (!leads_ok || pos != s.size()) {
      usage("malformed value '" + s + "' for --" + flag);
    }
    return static_cast<std::size_t>(v);
  } catch (const std::logic_error&) {
    usage("malformed value '" + s + "' for --" + flag);
  }
}

/// Parse a half-open region spec "lo:hi" per dimension, 'x'-separated, e.g.
/// "0:64x32:96x0:128".  Must have one lo:hi pair per archive dimension.
std::pair<std::array<std::size_t, kMaxRank>, std::array<std::size_t, kMaxRank>>
parse_region(const std::string& spec, std::size_t rank) {
  std::array<std::size_t, kMaxRank> lo{}, hi{};
  std::size_t dim = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    if (dim >= rank) usage("too many dimensions in --region");
    std::size_t next = spec.find('x', pos);
    std::string part = spec.substr(pos, next == std::string::npos ? next : next - pos);
    std::size_t colon = part.find(':');
    if (colon == std::string::npos) usage("--region wants lo:hi per dimension");
    lo[dim] = parse_size(part.substr(0, colon), "region");
    hi[dim] = parse_size(part.substr(colon + 1), "region");
    ++dim;
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (dim != rank) usage("--region must name all archive dimensions");
  return {lo, hi};
}

Dims parse_dims(const std::string& spec) {
  std::size_t extents[kMaxRank];
  std::size_t rank = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    if (rank >= kMaxRank) usage("too many dimensions in --dims");
    std::size_t next = spec.find('x', pos);
    std::string part = spec.substr(pos, next == std::string::npos ? next : next - pos);
    extents[rank++] = parse_size(part, "dims");
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (rank == 0) usage("empty --dims");
  return Dims::of_rank(rank, extents);
}

template <typename T>
std::vector<T> read_raw(const std::string& path, std::size_t count) {
  Bytes raw = read_file(path);
  if (raw.size() != count * sizeof(T)) {
    usage("file " + path + " has " + std::to_string(raw.size()) +
          " bytes, expected " + std::to_string(count * sizeof(T)));
  }
  std::vector<T> out(count);
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

template <typename T>
void write_raw(const std::string& path, const std::vector<T>& values) {
  Bytes raw(values.size() * sizeof(T));
  std::memcpy(raw.data(), values.data(), raw.size());
  write_file(path, raw);
}

template <typename T>
int do_compress(const Args& a) {
  Dims dims = parse_dims(*a.get("dims"));
  auto values = read_raw<T>(a.positional[0], dims.count());

  Options opt;
  opt.error_bound = a.get("eb") ? parse_double(*a.get("eb"), "eb") : 1e-6;
  opt.relative = !a.get("abs");
  if (auto interp = a.get("interp")) {
    if (*interp == "linear") {
      opt.interp = InterpKind::kLinear;
    } else if (*interp == "cubic") {
      opt.interp = InterpKind::kCubic;
    } else {
      usage("unknown interpolation '" + *interp + "' (cubic|linear)");
    }
  }
  if (auto backend = a.get("backend")) {
    const ProgressiveBackend* be = backend_by_name(*backend);
    if (!be) usage("unknown backend '" + *backend + "' (interp|wavelet)");
    opt.backend = be->id();
  }
  opt.block_side =
      a.get("block-side") ? parse_size(*a.get("block-side"), "block-side") : 0;
  if (auto codec = a.get("codec")) {
    if (*codec == "probe") {
      opt.codec = CodecPolicy::kProbe;
    } else if (*codec == "tryall") {
      opt.codec = CodecPolicy::kTryAll;
    } else if (*codec == "rle") {
      opt.codec = CodecPolicy::kRle;
    } else {
      usage("unknown codec policy '" + *codec + "' (probe|tryall|rle)");
    }
  }
  Bytes archive = compress(NdConstView<T>(values.data(), dims), opt);
  write_file(a.positional[1], archive);

  std::cout << "compressed " << dims.to_string() << " ("
            << dims.count() * sizeof(T) << " bytes) -> " << archive.size()
            << " bytes, ratio "
            << TableReporter::num(
                   compression_ratio(dims.count() * sizeof(T), archive.size()))
            << "\n";
  return 0;
}

/// Build the Request a retrieve invocation describes: at most one fidelity
/// flag, optionally composed with --region (alone, --region means full
/// fidelity, the legacy behavior).
Request build_request(const Args& a, std::size_t rank) {
  int fidelity_flags = 0;
  for (const char* k : {"eb", "bytes", "bitrate", "full"}) {
    fidelity_flags += a.get(k).has_value();
  }
  if (fidelity_flags > 1) {
    usage("--eb, --bytes, --bitrate and --full are mutually exclusive");
  }
  if (fidelity_flags == 0 && !a.get("region")) {
    usage("retrieve needs --eb, --bytes, --bitrate, --full or --region");
  }
  Request req = Request::full();
  if (a.get("eb")) {
    req = Request::error_bound(parse_double(*a.get("eb"), "eb"));
  } else if (a.get("bytes")) {
    req = Request::bytes(parse_size(*a.get("bytes"), "bytes"));
  } else if (a.get("bitrate")) {
    req = Request::bitrate(parse_double(*a.get("bitrate"), "bitrate"));
  }
  if (a.get("region")) {
    auto [lo, hi] = parse_region(*a.get("region"), rank);
    req = req.within(lo, hi);
  }
  return req;
}

/// --dry-run output: what the plan would fetch, before any payload byte.
void print_plan(const RetrievalPlan& plan, std::size_t rank) {
  std::size_t base = 0, aux = 0, planes = 0;
  for (const SegmentId& id : plan.segments) {
    if (id.kind == kSegBase) ++base;
    else if (id.kind == kSegAux) ++aux;
    else ++planes;
  }
  std::cout << "plan for " << to_string(plan.request, rank) << ":\n"
            << "  blocks in scope   : " << plan.blocks.size()
            << (plan.region_scoped ? " (region-scoped)" : "") << "\n"
            << "  segments to fetch : " << plan.segments.size() << " ("
            << base << " base, " << aux << " aux, " << planes << " planes)\n"
            << "  predicted bytes   : " << plan.bytes_new << "\n"
            << "  predicted L-inf   : " << TableReporter::sci(plan.guaranteed_error)
            << "\n  plane targets     :";
  for (std::size_t li = 0; li < plan.plane_targets.size(); ++li) {
    std::cout << " L" << li + 1 << "=" << plan.plane_targets[li];
  }
  std::cout << "\n  fetch order       :";
  constexpr std::size_t kMaxListed = 24;
  for (std::size_t i = 0; i < plan.segments.size() && i < kMaxListed; ++i) {
    std::cout << (i ? ", " : " ") << to_string(plan.segments[i]);
  }
  if (plan.segments.size() > kMaxListed) {
    std::cout << ", ... (" << plan.segments.size() - kMaxListed << " more)";
  }
  std::cout << "\n";
}

template <typename T>
int do_retrieve(const Args& a) {
  FileSource src(a.positional[0]);
  ProgressiveReader<T> reader(src);
  const std::size_t rank = reader.header().dims.rank();
  Request req = build_request(a, rank);
  RetrievalPlan plan = reader.plan(req);
  if (a.get("dry-run")) {
    print_plan(plan, rank);
    return 0;
  }
  // main() guarantees two positionals on the non-dry-run path.
  const std::size_t segments = plan.segments.size();
  RetrievalStats st = reader.execute(plan);
  write_raw<T>(a.positional[1], reader.data());
  std::cout << "retrieved " << reader.header().dims.to_string() << ": loaded "
            << st.bytes_total << " bytes ("
            << TableReporter::num(st.bitrate, 4) << " bits/value), guaranteed "
            << "L-inf error " << TableReporter::sci(st.guaranteed_error) << "\n"
            << "fetched " << segments << " segments in " << src.stats().read_calls
            << " reads (" << src.stats().coalesced_ranges << " coalesced ranges)\n";
  return 0;
}

int do_info(const Args& a) {
  FileSource src(a.positional[0]);
  Header h = Header::parse(src.header());
  std::cout << "dims        : " << h.dims.to_string() << "\n"
            << "type        : " << (h.dtype == DataType::kFloat64 ? "f64" : "f32")
            << "\n"
            << "format      : v" << static_cast<int>(h.format) << "\n"
            << "backend     : " << to_string(h.backend) << "\n"
            << "error bound : " << TableReporter::sci(h.eb) << " (absolute)\n"
            << "interpolation: " << to_string(h.interp) << "\n"
            << "prefix bits : " << h.prefix_bits << "\n"
            << "value range : [" << TableReporter::num(h.data_min, 6) << ", "
            << TableReporter::num(h.data_max, 6) << "]\n"
            << "archive size: " << src.total_size() << " bytes\n";
  if (h.block_side != 0) {
    std::uint64_t outliers = 0, values = 0;
    for (const auto& bl : h.block_levels) {
      for (const auto& l : bl) {
        outliers += l.outlier_count;
        values += l.count;
      }
    }
    std::cout << "block side  : " << h.block_side << " ("
              << h.block_levels.size() << " blocks)\n"
              << "values      : " << values << " (" << outliers
              << " outliers)\n";
    return 0;
  }
  std::cout << "levels      :\n";
  for (std::size_t li = h.levels.size(); li-- > 0;) {
    const auto& l = h.levels[li];
    std::cout << "  level " << li + 1 << ": " << l.count << " values, "
              << (l.progressive ? std::to_string(l.n_planes) + " bitplanes"
                                : std::string("solid"))
              << ", " << l.outlier_count << " outliers\n";
  }
  return 0;
}

template <typename T>
int do_stats(const Args& a) {
  Dims dims = parse_dims(*a.get("dims"));
  auto original = read_raw<T>(a.positional[0], dims.count());
  auto candidate = read_raw<T>(a.positional[1], dims.count());
  auto s = compute_error_stats<T>(original, candidate);
  std::cout << "max |error| : " << TableReporter::sci(s.max_abs) << "\n"
            << "MSE         : " << TableReporter::sci(s.mse) << "\n"
            << "PSNR        : " << TableReporter::num(s.psnr, 5) << " dB\n"
            << "value range : " << TableReporter::num(s.range, 6) << "\n";
  return 0;
}

/// Shared by the three serve modes: --cache-budget MB (with the former
/// --cache-mb spelling still accepted).
std::size_t cache_budget_bytes(const Args& a) {
  if (auto mb = a.get("cache-budget")) {
    return parse_size(*mb, "cache-budget") << 20;
  }
  if (auto mb = a.get("cache-mb")) return parse_size(*mb, "cache-mb") << 20;
  return std::size_t{64} << 20;
}

void print_serve_stats(const net::ServeStats& s) {
  static const char* kOps[] = {"HELLO", "OPEN",   "PLAN",   "EXECUTE",
                               "STAT",  "CLOSE",  "RESUME", "unknown"};
  std::cout << "connections : " << s.connections_accepted << " accepted, "
            << s.connections_active << " active, " << s.idle_reaped
            << " idle-reaped, " << s.slow_client_evictions
            << " slow-evicted\n"
            << "frames      : " << s.frames_in << " in / " << s.frames_out
            << " out (";
  for (std::size_t i = 0; i < s.frames_by_opcode.size(); ++i) {
    if (s.frames_by_opcode[i] == 0) continue;
    std::cout << kOps[i] << "=" << s.frames_by_opcode[i] << " ";
  }
  std::cout << "), " << s.errors_sent << " errors, " << s.quota_rejections
            << " quota-rejected\n"
            << "wire        : " << s.wire_bytes_in << " bytes in / "
            << s.wire_bytes_out << " bytes out, " << s.payload_bytes_sent
            << " payload bytes served\n"
            << "physical I/O: " << s.physical_bytes_read << " bytes in "
            << s.physical_read_calls << " reads\n"
            << "cache       : " << s.cache.hits << " hits / " << s.cache.misses
            << " misses (rate " << TableReporter::num(s.cache.hit_rate(), 3)
            << "), " << s.cache.resident_bytes << "/" << s.cache.capacity_bytes
            << " bytes resident\n";
  if (s.faults_injected != 0) {
    std::cout << "faults      : " << s.faults_injected
              << " injected (--fault-seed)\n";
  }
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// Daemon mode: run net::Server on --listen until SIGINT/SIGTERM, then
/// drain and print the server-wide stats.
int do_serve_listen(const Args& a) {
  net::ServerConfig cfg;
  cfg.listen = *a.get("listen");
  if (auto w = a.get("workers")) {
    cfg.workers = static_cast<unsigned>(parse_size(*w, "workers"));
    if (cfg.workers == 0) usage("--workers must be >= 1");
  }
  if (auto q = a.get("quota")) cfg.session_quota = parse_size(*q, "quota");
  if (auto s = a.get("fault-seed")) {
    cfg.fault_seed = parse_size(*s, "fault-seed");
  }
  cfg.serve.cache_capacity_bytes = cache_budget_bytes(a);
  if (auto m = a.get("mmap")) {
    if (*m != "on" && *m != "off") usage("--mmap wants on|off");
    cfg.serve.use_mmap = *m == "on";
  }

  net::Server server(cfg);
  const std::string& path = a.positional[0];
  server.export_file(path, path);
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    server.export_file(path.substr(slash + 1), path);
  }
  server.start();
  std::cout << "serving " << path << " on " << server.address() << " ("
            << cfg.workers << " workers, "
            << (cfg.serve.use_mmap ? "mmap" : "fread") << " storage, cache "
            << cfg.serve.cache_capacity_bytes << " bytes)\n";
  if (cfg.fault_seed != 0) {
    std::cout << "fault injection armed: seed " << cfg.fault_seed
              << " (send-side resets/torn writes/stalls)\n";
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "draining...\n";
  server.stop();
  print_serve_stats(server.stats());
  return 0;
}

/// Remote-client mode: the in-process smoke load, but through RemoteReader
/// connections against a running daemon.
template <typename T>
int do_serve_connect(const Args& a) {
  const std::string spec = *a.get("connect");
  const std::string& name = a.positional[0];
  const int clients = static_cast<int>(
      a.get("clients") ? parse_size(*a.get("clients"), "clients") : 4);
  const int rounds = static_cast<int>(
      a.get("rounds") ? parse_size(*a.get("rounds"), "rounds") : 1);
  if (clients < 1 || rounds < 1) usage("--clients/--rounds must be >= 1");

  std::atomic<std::size_t> served{0}, rejected{0}, logical_bytes{0},
      wire_bytes{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < rounds; ++r) {
        net::RemoteReader<T> reader(spec, name);
        const std::size_t total = reader.archive().source().total_size();
        const Request traffic[] = {
            Request::error_bound(c % 2 ? 1e-2 : 1e-3),
            Request::bytes(total / 4),
            Request::full(),
        };
        std::size_t used = 0;
        for (const Request& req : traffic) {
          try {
            used += reader.retrieve(req).bytes_new;
            served.fetch_add(1, std::memory_order_relaxed);
          } catch (const QuotaExceeded&) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;  // this session's budget is spent
          }
        }
        logical_bytes.fetch_add(used, std::memory_order_relaxed);
        wire_bytes.fetch_add(reader.archive().wire_payload_bytes(),
                             std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "served      : " << served.load() << " requests (" << clients
            << " clients x " << rounds << " rounds), " << rejected.load()
            << " quota-rejected\n"
            << "throughput  : "
            << TableReporter::num(static_cast<double>(served.load()) /
                                  (seconds > 0 ? seconds : 1e-9))
            << " req/s\n"
            << "logical     : " << logical_bytes.load()
            << " bytes priced, " << wire_bytes.load()
            << " payload bytes on the wire\n"
            << "-- daemon stats --\n";
  net::RemoteArchive probe(spec, name);
  print_serve_stats(probe.stat());
  return 0;
}

/// Multi-tenant smoke load: N concurrent clients x R rounds of mixed
/// fidelity traffic against ONE shared archive handle.  Every session pays
/// its full logical price in its own ledger; the shared cache + pooled I/O
/// keep the physical price far below the sum — the gap is the point.
template <typename T>
int do_serve(const Args& a) {
  const int clients = static_cast<int>(
      a.get("clients") ? parse_size(*a.get("clients"), "clients") : 4);
  const int rounds = static_cast<int>(
      a.get("rounds") ? parse_size(*a.get("rounds"), "rounds") : 1);
  if (clients < 1 || rounds < 1) usage("--clients/--rounds must be >= 1");
  const std::uint64_t quota =
      a.get("quota") ? parse_size(*a.get("quota"), "quota") : 0;

  ServeOptions sopts;
  sopts.cache_capacity_bytes = cache_budget_bytes(a);
  if (auto m = a.get("mmap")) {
    if (*m != "on" && *m != "off") usage("--mmap wants on|off");
    sopts.use_mmap = *m == "on";
  }
  ArchiveSet set(sopts);
  auto handle = set.open_file(a.positional[0]);

  std::atomic<std::size_t> served{0}, rejected{0}, logical_bytes{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < rounds; ++r) {
        Session<T> session(handle, {}, quota);
        const Request traffic[] = {
            Request::error_bound(c % 2 ? 1e-2 : 1e-3),
            Request::bytes(handle->total_size() / 4),
            Request::full(),
        };
        for (const Request& req : traffic) {
          try {
            session.retrieve(req);
            served.fetch_add(1, std::memory_order_relaxed);
          } catch (const QuotaExceeded&) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;  // this session's budget is spent
          }
        }
        logical_bytes.fetch_add(session.bytes_used(),
                                std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const SourceStats ss = handle->source_stats();
  const CacheStats cs = handle->cache_stats();
  const double share = ss.bytes_read
                           ? static_cast<double>(logical_bytes.load()) /
                                 static_cast<double>(ss.bytes_read)
                           : 0.0;
  std::cout << "served      : " << served.load() << " requests ("
            << clients << " clients x " << rounds << " rounds), "
            << rejected.load() << " quota-rejected\n"
            << "throughput  : "
            << TableReporter::num(
                   static_cast<double>(served.load()) /
                   (seconds > 0 ? seconds : 1e-9))
            << " req/s\n"
            << "cache       : " << cs.hits << " hits / " << cs.misses
            << " misses (rate "
            << TableReporter::num(cs.hit_rate(), 3) << "), " << cs.evictions
            << " evictions, " << cs.resident_bytes << "/" << cs.capacity_bytes
            << " bytes resident\n"
            << "physical I/O: " << ss.bytes_read << " bytes in "
            << ss.read_calls << " reads (" << ss.coalesced_ranges
            << " coalesced ranges)\n"
            << "logical I/O : " << logical_bytes.load()
            << " bytes across all sessions (sharing factor "
            << TableReporter::num(share) << "x)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  Args args = Args::parse(argc, argv);
  if (auto t = args.get("type"); t && *t != "f32" && *t != "f64") {
    usage("unknown type '" + *t + "' (f64|f32)");
  }
  const bool f32 = args.get("type") == std::optional<std::string>("f32");

  try {
    if (cmd == "compress") {
      args.allow_only({"dims", "type", "eb", "abs", "interp", "block-side",
                       "backend", "codec"});
      if (args.positional.size() != 2 || !args.get("dims")) usage();
      return f32 ? do_compress<float>(args) : do_compress<double>(args);
    }
    if (cmd == "retrieve") {
      args.allow_only({"eb", "bytes", "bitrate", "full", "region", "dry-run"});
      // --dry-run needs no output file; everything else does.
      if (args.positional.empty() ||
          args.positional.size() > 2 ||
          (args.positional.size() == 1 && !args.get("dry-run"))) {
        usage();
      }
      // Value type is recorded in the archive; probe it.
      FileSource probe(args.positional[0]);
      bool is32 = Header::parse(probe.header()).dtype == DataType::kFloat32;
      return is32 ? do_retrieve<float>(args) : do_retrieve<double>(args);
    }
    if (cmd == "info") {
      args.allow_only({});
      if (args.positional.size() != 1) usage();
      return do_info(args);
    }
    if (cmd == "serve") {
      args.allow_only({"clients", "rounds", "cache-mb", "cache-budget",
                       "quota", "listen", "connect", "mmap", "workers",
                       "fault-seed"});
      if (args.positional.size() != 1) usage();
      if (args.get("listen") && args.get("connect")) {
        usage("--listen and --connect are mutually exclusive");
      }
      if (args.get("listen")) return do_serve_listen(args);
      if (args.get("connect")) {
        // Value type is recorded in the archive; probe it over the wire.
        net::RemoteArchive probe(*args.get("connect"), args.positional[0]);
        bool is32 =
            Header::parse(probe.source().header()).dtype == DataType::kFloat32;
        probe.close();
        return is32 ? do_serve_connect<float>(args)
                    : do_serve_connect<double>(args);
      }
      // Value type is recorded in the archive; probe it.
      FileSource probe(args.positional[0]);
      bool is32 = Header::parse(probe.header()).dtype == DataType::kFloat32;
      return is32 ? do_serve<float>(args) : do_serve<double>(args);
    }
    if (cmd == "stats") {
      args.allow_only({"dims", "type"});
      if (args.positional.size() != 2 || !args.get("dims")) usage();
      return f32 ? do_stats<float>(args) : do_stats<double>(args);
    }
  } catch (const net::WireError& e) {
    // Network failures (refused --connect, --listen address in use, a peer
    // that vanished) exit 2 like usage errors: the command never ran, and
    // the message carries op/peer/errno context from the wire layer.
    std::cerr << "network error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + cmd);
}
