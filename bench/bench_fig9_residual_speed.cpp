// Figure 9: residual-chain cost — compression/decompression speed of SZ3-R
// and ZFP-R as the number of predefined residual bounds grows from 1 to 9.
// More anchors buy retrieval flexibility but multiply passes; speed drops
// (sub-linearly: looser early bounds quantize coarser and run faster, giving
// the curved lines the paper describes).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace ipcomp;
using namespace ipcomp::bench;

void bm_residual_compress(benchmark::State& state, const std::string base,
                          int stages, const DatasetSpec spec) {
  auto comp = make_residual(base, stages);
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  for (auto _ : state) {
    Bytes archive = comp->compress(data.const_view(), eb);
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.count() * sizeof(double)));
}

void bm_residual_decompress(benchmark::State& state, const std::string base,
                            int stages, const DatasetSpec spec) {
  auto comp = make_residual(base, stages);
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  Bytes archive = comp->compress(data.const_view(), eb);
  for (auto _ : state) {
    auto out = comp->decompress(archive);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.count() * sizeof(double)));
}

}  // namespace

int main(int argc, char** argv) {
  banner("Residual-count speed sweep", "paper Fig. 9");
  const auto spec = dataset_spec(Field::kDensity, scale());
  for (const std::string base : {"SZ3", "ZFP"}) {
    for (int stages : {1, 3, 5, 7, 9}) {
      benchmark::RegisterBenchmark(
          ("compress/" + base + "-R/stages:" + std::to_string(stages)).c_str(),
          [base, stages, spec](benchmark::State& st) {
            bm_residual_compress(st, base, stages, spec);
          })
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("decompress/" + base + "-R/stages:" + std::to_string(stages)).c_str(),
          [base, stages, spec](benchmark::State& st) {
            bm_residual_decompress(st, base, stages, spec);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nExpected shape: throughput decreases as stages grow, but "
              "sub-linearly (early loose-bound stages are cheaper) — the "
              "curved lines of Fig. 9.\n");
  return 0;
}
