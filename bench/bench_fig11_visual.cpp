// Figure 11: visual quality of post-analysis quantities at partial retrieval.
// Loads 0.1%, 0.3% and 1% of the compressed Density/velocity data, computes
// Curl and Laplacian, writes mid-slice PGM images and reports NRMSE against
// the full-precision analysis.  Curl should be usable at 0.3%; the Laplacian
// needs ~1% — the paper's motivating observation.
#include "analysis/image.hpp"
#include "analysis/stencil.hpp"
#include "bench_common.hpp"
#include "ipcomp.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Visual quality of Curl / Laplacian at partial retrieval",
         "paper Fig. 11");

  const auto& density = cached_field(Field::kDensity, scale());
  const auto& vx = cached_field(Field::kVelocityX, scale());
  const auto& vy = cached_field(Field::kVelocityY, scale());
  const auto& vz = cached_field(Field::kVelocityZ, scale());
  const Dims dims = density.dims();
  const std::size_t mid = dims[0] / 2;

  // The paper's 0.1/0.3/1% apply to the full 256x384x384 grid, where 0.1% is
  // ~1 MiB; at reduced scales the archive's mandatory segments alone exceed
  // that, so the fractions are scaled to keep the sweep informative.
  std::vector<double> fractions;
  switch (scale()) {
    case DataScale::kPaper: fractions = {0.001, 0.003, 0.01}; break;
    case DataScale::kSmall: fractions = {0.003, 0.01, 0.03}; break;
    case DataScale::kTiny: fractions = {0.01, 0.03, 0.10}; break;
  }

  auto curl_ref = curl_magnitude(vx.const_view(), vy.const_view(), vz.const_view());
  auto lap_ref = laplacian(density.const_view());
  const double curl_hi = value_range<double>({curl_ref.data(), curl_ref.count()});
  write_slice_pgm("fig11_curl_reference.pgm", curl_ref.const_view(), mid, 0, curl_hi);
  write_slice_pgm("fig11_laplace_reference.pgm", lap_ref.const_view(), mid, -0.5, 0.5);

  Options opt;
  opt.error_bound = 1e-9;
  MemorySource dsrc(compress(density.const_view(), opt));
  MemorySource xsrc(compress(vx.const_view(), opt));
  MemorySource ysrc(compress(vy.const_view(), opt));
  MemorySource zsrc(compress(vz.const_view(), opt));
  ProgressiveReader<double> dr(dsrc), xr(xsrc), yr(ysrc), zr(zsrc);

  TableReporter table({"retrieved", "curl NRMSE", "laplace NRMSE",
                       "curl image", "laplace image"});
  for (double fraction : fractions) {
    const double bits = fraction * 64.0;
    dr.retrieve(Request::bitrate(bits));
    xr.retrieve(Request::bitrate(bits));
    yr.retrieve(Request::bitrate(bits));
    zr.retrieve(Request::bitrate(bits));
    auto curl = curl_magnitude({xr.data().data(), dims}, {yr.data().data(), dims},
                               {zr.data().data(), dims});
    auto lap = laplacian(NdConstView<double>(dr.data().data(), dims));
    const std::string tag = TableReporter::num(fraction * 100, 2);
    const std::string curl_png = "fig11_curl_" + tag + "pct.pgm";
    const std::string lap_png = "fig11_laplace_" + tag + "pct.pgm";
    write_slice_pgm(curl_png, curl.const_view(), mid, 0, curl_hi);
    write_slice_pgm(lap_png, lap.const_view(), mid, -0.5, 0.5);
    table.row({tag + "%",
               TableReporter::num(nrmse(curl_ref.const_view(), curl.const_view()), 4),
               TableReporter::num(nrmse(lap_ref.const_view(), lap.const_view()), 4),
               curl_png, lap_png});
  }
  std::printf("\nExpected shape: the curl (first derivatives) reaches a usable "
              "NRMSE one step earlier in the sweep than the Laplacian (second "
              "derivatives) — the paper's Fig. 11 observation.\n");
  return 0;
}
