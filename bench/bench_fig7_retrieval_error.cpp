// Figure 7: bitrate-mode retrieval — the L∞ error each compressor achieves
// within a retrieval budget of B bits per value.  Archives are written once
// at eb = 1e-9 x range.  Lower error is better.  Only IPComp plans directly
// for a byte budget; the baselines pick their best anchor that fits (the
// paper applies the same manual policy).
#include "bench_common.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Reconstruction error under bitrate budgets", "paper Fig. 7");

  auto lineup = evaluation_lineup();
  const double budgets_bpv[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};

  for (const auto& spec : datasets()) {
    const auto& data = data_for(spec);
    const double eb = 1e-9 * range_of(data);
    const std::size_t n = data.count();

    std::printf("--- %s (%s) ---\n", spec.name.c_str(),
                spec.dims.to_string().c_str());
    std::vector<Bytes> archives;
    for (auto& c : lineup) archives.push_back(c->compress(data.const_view(), eb));

    std::vector<std::string> cols = {"budget bpv"};
    for (auto& c : lineup) cols.push_back(c->name() + " Linf");
    TableReporter table(cols);
    for (double bpv : budgets_bpv) {
      const auto budget =
          static_cast<std::uint64_t>(bpv * static_cast<double>(n) / 8.0);
      std::vector<std::string> row = {TableReporter::num(bpv, 3)};
      for (std::size_t i = 0; i < lineup.size(); ++i) {
        auto r = lineup[i]->retrieve_bytes(archives[i], budget);
        auto stats = compute_error_stats<double>({data.data(), n},
                                                 {r.data.data(), n});
        // Budget overruns (baselines whose coarsest stage exceeds the budget)
        // are flagged with '!'.
        row.push_back(TableReporter::sci(stats.max_abs, 2) +
                      (r.bytes_loaded <= budget ? "" : "!"));
      }
      table.row(row);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: IPComp reaches the lowest error at every "
              "budget; '!' marks baselines that cannot fit their coarsest "
              "stage into the budget.\n");
  return 0;
}
