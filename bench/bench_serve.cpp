// Multi-tenant serving benchmark: N client threads with mixed error-bound /
// byte-budget / region traffic over ONE archive, served two ways:
//
//   shared    — ArchiveSet: every client a Session over one shared handle
//               (segment LRU cache + pooled, offset-merged I/O);
//   isolated  — the pre-serve model: every client its own FileSource +
//               ProgressiveReader, no sharing anywhere.
//
// Both modes run the identical request schedule and must produce identical
// reconstructions; the figure of merit is the physical I/O the shared tier
// saves (read_calls / bytes fetched) plus request throughput and cache hit
// rate.  `--json <path>` writes the summary CI merges into BENCH_ci.json and
// asserts on: throughput_req_s, cache_hit_rate, and read_calls_shared <
// read_calls_isolated at equal reconstructions.
//
// A third block drives the same schedule through the network daemon over a
// loopback socket (RemoteReader -> ipc serve), once with the mmap storage
// path and once with plain fread, measuring remote throughput and the
// compressed bytes actually on the wire against the logical bytes delivered
// and the resend-everything baseline a non-progressive protocol would move.
//
// A fourth block measures the v4 integrity machinery itself: checksum64
// (word-parallel XXH64) over every segment payload of the bench archive,
// reported as serve.integrity.verify_gbps — CI asserts it is present and
// nonzero, pinning the claim that per-read verification rides at memory
// bandwidth next to decode cost.
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ipcomp.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/checksum.hpp"

namespace {

using namespace ipcomp;

struct Traffic {
  std::vector<Request> steps;
};

/// Deterministic per-client schedule: coarse eb, a region drill-down, a byte
/// top-up, then full fidelity — phase-shifted by client id so concurrent
/// demand overlaps but is not identical.
Traffic traffic_for(int client, const Dims& dims) {
  Traffic t;
  const std::size_t x = dims[0], y = dims[1], z = dims[2];
  const std::size_t qx = x / 4, qy = y / 4, qz = z / 4;
  const std::size_t ox = (static_cast<std::size_t>(client) % 4) * qx;
  const std::size_t oy = (static_cast<std::size_t>(client) / 4 % 4) * qy;
  t.steps.push_back(Request::error_bound(client % 2 ? 1e-2 : 1e-3));
  t.steps.push_back(Request::error_bound(1e-5).within(
      {ox, oy, 0, 0}, {ox + qx, oy + qy, qz, 0}));
  t.steps.push_back(Request::bytes(30000 + 1000 * static_cast<std::uint64_t>(client)));
  t.steps.push_back(Request::full());
  return t;
}

struct ModeResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t read_calls = 0;   // physical, at the storage source
  std::size_t bytes_read = 0;   // physical, at the storage source
  std::vector<std::vector<double>> outputs;
};

ModeResult run_shared(const std::string& path, int clients,
                      const Dims& dims, std::size_t cache_bytes,
                      CacheStats& cache_out) {
  ServeOptions sopts;
  sopts.cache_capacity_bytes = cache_bytes;
  sopts.io_threads = 2;
  ArchiveSet set(sopts);
  auto handle = set.open_file(path);

  ModeResult r;
  r.outputs.resize(static_cast<std::size_t>(clients));
  std::barrier gate(clients);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      gate.arrive_and_wait();
      Session<double> session(handle);
      for (const Request& req : traffic_for(c, dims).steps) {
        session.execute(session.plan(req));
      }
      r.outputs[static_cast<std::size_t>(c)] = session.data();
    });
  }
  for (auto& th : threads) th.join();
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0).count();
  r.requests = static_cast<std::size_t>(clients) *
               traffic_for(0, dims).steps.size();
  const SourceStats ss = handle->source_stats();
  r.read_calls = ss.read_calls;
  r.bytes_read = ss.bytes_read;
  cache_out = handle->cache_stats();
  return r;
}

ModeResult run_isolated(const std::string& path, int clients, const Dims& dims) {
  ModeResult r;
  r.outputs.resize(static_cast<std::size_t>(clients));
  std::vector<SourceStats> stats(static_cast<std::size_t>(clients));
  std::barrier gate(clients);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      gate.arrive_and_wait();
      FileSource src(path);
      ProgressiveReader<double> reader(src);
      for (const Request& req : traffic_for(c, dims).steps) {
        reader.execute(reader.plan(req));
      }
      r.outputs[static_cast<std::size_t>(c)] = reader.data();
      stats[static_cast<std::size_t>(c)] = src.stats();
    });
  }
  for (auto& th : threads) th.join();
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0).count();
  r.requests = static_cast<std::size_t>(clients) *
               traffic_for(0, dims).steps.size();
  for (const SourceStats& s : stats) {
    r.read_calls += s.read_calls;
    r.bytes_read += s.bytes_read;
  }
  return r;
}

struct DaemonResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::uint64_t wire_bytes = 0;     // compressed payload bytes on the wire
  std::uint64_t logical_bytes = 0;  // sum of planned bytes_new (ledger bytes)
  std::uint64_t resend_bytes = 0;   // resend-full-state-per-step baseline
  std::vector<std::vector<double>> outputs;
};

/// The shared-mode schedule replayed by remote clients over one loopback
/// daemon.  `use_mmap` picks the server's storage path.
DaemonResult run_daemon(const std::string& path, int clients, const Dims& dims,
                        std::size_t cache_bytes, bool use_mmap) {
  net::ServerConfig cfg;
  cfg.listen = "127.0.0.1:0";
  cfg.workers = static_cast<unsigned>(clients);
  cfg.serve.cache_capacity_bytes = cache_bytes;
  cfg.serve.io_threads = 2;
  cfg.serve.use_mmap = use_mmap;
  net::Server server(cfg);
  server.export_file("bench", path);
  server.start();
  const std::string addr = server.address();

  DaemonResult r;
  r.outputs.resize(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> wire(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> logical(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> resend(static_cast<std::size_t>(clients));
  std::barrier gate(clients);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      gate.arrive_and_wait();
      const auto i = static_cast<std::size_t>(c);
      net::RemoteReader<double> remote(addr, "bench");
      for (const Request& req : traffic_for(c, dims).steps) {
        const RetrievalStats st = remote.retrieve(req);
        logical[i] += st.bytes_new;
        resend[i] += st.bytes_total;
      }
      wire[i] = remote.archive().wire_payload_bytes();
      r.outputs[i] = remote.data();
    });
  }
  for (auto& th : threads) th.join();
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0).count();
  r.requests = static_cast<std::size_t>(clients) *
               traffic_for(0, dims).steps.size();
  for (int c = 0; c < clients; ++c) {
    const auto i = static_cast<std::size_t>(c);
    r.wire_bytes += wire[i];
    r.logical_bytes += logical[i];
    r.resend_bytes += resend[i];
  }
  server.stop();
  return r;
}

struct IntegrityResult {
  double verify_gbps = 0.0;
  std::size_t segments = 0;
  std::size_t bytes = 0;
};

/// Checksum64 throughput over the archive's segment payloads — the exact
/// work every physical read, cache insert, and SEGMENT frame performs.
IntegrityResult run_integrity(const Bytes& archive) {
  MemorySource src{Bytes(archive)};
  const std::vector<SegmentId> ids = src.segment_ids();
  const std::vector<Bytes> payloads = src.read_many(ids);

  IntegrityResult r;
  r.segments = payloads.size();
  for (const Bytes& p : payloads) r.bytes += p.size();

  // Warm up once, then time whole-archive verification sweeps until the
  // clock has accumulated enough signal for a stable GB/s figure.
  volatile std::uint64_t sink = 0;
  for (const Bytes& p : payloads) sink = sink ^ checksum64(p.data(), p.size());
  int sweeps = 0;
  double seconds = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  do {
    for (const Bytes& p : payloads) sink = sink ^ checksum64(p.data(), p.size());
    ++sweeps;
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0).count();
  } while (seconds < 0.25);
  r.verify_gbps = static_cast<double>(r.bytes) * sweeps / seconds / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipcomp;
  using ipcomp::bench::banner;

  const char* json_path = nullptr;
  int clients = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[i + 1]);
    }
  }
  if (clients < 2) clients = 2;

  banner("Multi-tenant serving", "ArchiveSet vs isolated readers");

  // One mid-size archive on disk (FileSource: real seeks and reads).
  const Dims dims{96, 96, 64};
  Options opt;
  opt.error_bound = 1e-6;
  opt.block_side = 16;
  // Keep the archive genuinely progressive: with the default threshold every
  // level of a 16^3 block is stored whole and partial requests price as full.
  opt.progressive_threshold = 256;
  auto field = ipcomp::generate_field(ipcomp::Field::kPressure, dims);
  const Bytes archive = ipcomp::compress(field.const_view(), opt);
  const std::string path = "bench_serve_archive.ipc";
  ipcomp::write_file(path, archive);
  std::printf("archive: %zu bytes, %d clients x %zu requests\n", archive.size(),
              clients, traffic_for(0, dims).steps.size());

  CacheStats cache;
  ModeResult shared = run_shared(path, clients, dims, std::size_t{64} << 20, cache);
  ModeResult isolated = run_isolated(path, clients, dims);
  DaemonResult daemon_mmap =
      run_daemon(path, clients, dims, std::size_t{64} << 20, /*use_mmap=*/true);
  DaemonResult daemon_fread =
      run_daemon(path, clients, dims, std::size_t{64} << 20, /*use_mmap=*/false);
  const IntegrityResult integrity = run_integrity(archive);
  std::remove(path.c_str());

  // Equal reconstructions or the comparison is meaningless — and the remote
  // clients replay the same schedule, so they must land byte-identical too.
  for (int c = 0; c < clients; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (shared.outputs[i] != isolated.outputs[i]) {
      std::fprintf(stderr, "FAIL: client %d diverged between modes\n", c);
      return 1;
    }
    if (daemon_mmap.outputs[i] != shared.outputs[i] ||
        daemon_fread.outputs[i] != shared.outputs[i]) {
      std::fprintf(stderr,
                   "FAIL: remote client %d diverged from the local tier\n", c);
      return 1;
    }
  }

  const double throughput =
      static_cast<double>(shared.requests) / (shared.seconds > 0 ? shared.seconds : 1e-9);
  std::printf("shared   : %6.3f s, %zu read_calls, %zu bytes, hit rate %.3f\n",
              shared.seconds, shared.read_calls, shared.bytes_read,
              cache.hit_rate());
  std::printf("isolated : %6.3f s, %zu read_calls, %zu bytes\n",
              isolated.seconds, isolated.read_calls, isolated.bytes_read);
  std::printf("savings  : %.1fx read_calls, %.1fx bytes, %.0f req/s\n",
              static_cast<double>(isolated.read_calls) /
                  static_cast<double>(shared.read_calls ? shared.read_calls : 1),
              static_cast<double>(isolated.bytes_read) /
                  static_cast<double>(shared.bytes_read ? shared.bytes_read : 1),
              throughput);

  const double tp_mmap = static_cast<double>(daemon_mmap.requests) /
                         (daemon_mmap.seconds > 0 ? daemon_mmap.seconds : 1e-9);
  const double tp_fread =
      static_cast<double>(daemon_fread.requests) /
      (daemon_fread.seconds > 0 ? daemon_fread.seconds : 1e-9);
  std::printf("daemon   : mmap %6.3f s (%.0f req/s), fread %6.3f s (%.0f req/s)\n",
              daemon_mmap.seconds, tp_mmap, daemon_fread.seconds, tp_fread);
  std::printf("wire     : %zu payload bytes for %zu logical (resend baseline %zu, %.1fx saved)\n",
              static_cast<std::size_t>(daemon_mmap.wire_bytes),
              static_cast<std::size_t>(daemon_mmap.logical_bytes),
              static_cast<std::size_t>(daemon_mmap.resend_bytes),
              static_cast<double>(daemon_mmap.resend_bytes) /
                  static_cast<double>(daemon_mmap.wire_bytes ? daemon_mmap.wire_bytes : 1));

  std::printf("integrity: %.2f GB/s verifying %zu segments (%zu bytes)\n",
              integrity.verify_gbps, integrity.segments, integrity.bytes);

  // Per-read verification must be fast enough to ride every boundary; a
  // zero figure means the checksum column or the kernel went missing.
  if (integrity.verify_gbps <= 0.0 || integrity.segments == 0) {
    std::fprintf(stderr, "FAIL: integrity verify throughput not measured\n");
    return 1;
  }

  // Progressive transfer is the protocol's point: the wire must carry no
  // more than the ledger's bytes_new and strictly less than re-sending the
  // accumulated state at every step.
  if (daemon_mmap.wire_bytes == 0 ||
      daemon_mmap.wire_bytes > daemon_mmap.logical_bytes ||
      daemon_mmap.wire_bytes >= daemon_mmap.resend_bytes) {
    std::fprintf(stderr,
                 "FAIL: wire accounting broken (wire %zu, logical %zu, resend %zu)\n",
                 static_cast<std::size_t>(daemon_mmap.wire_bytes),
                 static_cast<std::size_t>(daemon_mmap.logical_bytes),
                 static_cast<std::size_t>(daemon_mmap.resend_bytes));
    return 1;
  }

  if (shared.read_calls >= isolated.read_calls ||
      shared.bytes_read >= isolated.bytes_read) {
    std::fprintf(stderr,
                 "FAIL: shared tier did not beat isolated readers "
                 "(read_calls %zu vs %zu, bytes %zu vs %zu)\n",
                 shared.read_calls, isolated.read_calls, shared.bytes_read,
                 isolated.bytes_read);
    return 1;
  }

  if (json_path) {
    std::FILE* json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(json, "  \"clients\": %d,\n", clients);
    std::fprintf(json, "  \"requests\": %zu,\n", shared.requests);
    std::fprintf(json, "  \"throughput_req_s\": %.3f,\n", throughput);
    std::fprintf(json, "  \"cache_hit_rate\": %.6f,\n", cache.hit_rate());
    std::fprintf(json, "  \"cache\": {\"hits\": %zu, \"misses\": %zu, \"evictions\": %zu, \"capacity_bytes\": %zu},\n",
                 cache.hits, cache.misses, cache.evictions, cache.capacity_bytes);
    std::fprintf(json, "  \"read_calls_shared\": %zu,\n", shared.read_calls);
    std::fprintf(json, "  \"read_calls_isolated\": %zu,\n", isolated.read_calls);
    std::fprintf(json, "  \"bytes_shared\": %zu,\n", shared.bytes_read);
    std::fprintf(json, "  \"bytes_isolated\": %zu,\n", isolated.bytes_read);
    std::fprintf(json, "  \"seconds_shared\": %.4f,\n", shared.seconds);
    std::fprintf(json, "  \"seconds_isolated\": %.4f,\n", isolated.seconds);
    std::fprintf(json, "  \"daemon\": {\n");
    std::fprintf(json, "    \"throughput_req_s_mmap\": %.3f,\n", tp_mmap);
    std::fprintf(json, "    \"throughput_req_s_fread\": %.3f,\n", tp_fread);
    std::fprintf(json, "    \"wire_payload_bytes\": %zu,\n",
                 static_cast<std::size_t>(daemon_mmap.wire_bytes));
    std::fprintf(json, "    \"logical_bytes\": %zu,\n",
                 static_cast<std::size_t>(daemon_mmap.logical_bytes));
    std::fprintf(json, "    \"resend_baseline_bytes\": %zu,\n",
                 static_cast<std::size_t>(daemon_mmap.resend_bytes));
    std::fprintf(json, "    \"seconds_mmap\": %.4f,\n", daemon_mmap.seconds);
    std::fprintf(json, "    \"seconds_fread\": %.4f\n", daemon_fread.seconds);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"integrity\": {\n");
    std::fprintf(json, "    \"verify_gbps\": %.3f,\n", integrity.verify_gbps);
    std::fprintf(json, "    \"segments\": %zu,\n", integrity.segments);
    std::fprintf(json, "    \"bytes\": %zu\n", integrity.bytes);
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
