// Microbenchmark for the word-parallel bitplane engine: the pre-refactor
// scalar loops (kept here as the `ref` rows) against the transpose-engine
// tiers on a 256^3 field's worth of negabinary codes.
//
//   bench_bitplane [--side N] [--repeat R] [--dense]
//
// Default codes mimic interpolation residuals (small magnitudes, low planes
// populated — the common case); --dense uses full-width random codes (worst
// case for the sparse-friendly scalar paths).  Reported rate is code bytes
// (4 per value) through the stage, median of R runs.  The PR acceptance
// floor is >=3x for extract_all_planes and the multi-plane deposit, SIMD
// tier vs the ref scalar path.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/transpose.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ipcomp;

// ---- pre-refactor reference implementations (PR 4 scalar loops) ----------

std::array<PlaneBits, kPlaneCount> extract_all_planes_ref(
    std::span<const std::uint32_t> values) {
  std::array<PlaneBits, kPlaneCount> planes;
  const std::size_t nbytes = plane_bytes(values.size());
  for (auto& p : planes) p.assign(nbytes, 0);
  for (std::size_t byte = 0; byte < nbytes; ++byte) {
    const std::size_t base = byte * 8;
    const std::size_t lim = std::min<std::size_t>(8, values.size() - base);
    std::array<std::uint8_t, kPlaneCount> acc{};
    for (std::size_t j = 0; j < lim; ++j) {
      std::uint32_t v = values[base + j];
      while (v) {
        unsigned k = static_cast<unsigned>(__builtin_ctz(v));
        acc[k] |= static_cast<std::uint8_t>(1u << j);
        v &= v - 1;
      }
    }
    for (unsigned k = 0; k < kPlaneCount; ++k) {
      if (acc[k]) planes[k][byte] = acc[k];
    }
  }
  return planes;
}

void deposit_plane_ref(std::span<std::uint32_t> values,
                       std::span<const std::uint8_t> plane, unsigned k) {
  for (std::size_t byte = 0; byte < plane.size(); ++byte) {
    std::uint8_t bits = plane[byte];
    if (!bits) continue;
    const std::size_t base = byte * 8;
    while (bits) {
      unsigned j = static_cast<unsigned>(__builtin_ctz(bits));
      values[base + j] |= (std::uint32_t{1} << k);
      bits = static_cast<std::uint8_t>(bits & (bits - 1));
    }
  }
}

unsigned plane_count_ref(std::span<const std::uint32_t> values) {
  std::uint32_t all = 0;
  for (std::uint32_t v : values) all |= v;
  unsigned n = 0;
  while (all) {
    ++n;
    all >>= 1;
  }
  return n;
}

// ---- harness -------------------------------------------------------------

template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (auto& s : t) {
    Timer timer;
    fn();
    s = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

double gbps(std::size_t bytes, double seconds) {
  return seconds <= 0.0
             ? 0.0
             : static_cast<double>(bytes) / 1.0e9 / seconds;
}

std::vector<std::uint32_t> make_codes(std::size_t n, bool dense) {
  Rng rng(42);
  std::vector<std::uint32_t> codes(n);
  if (dense) {
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng.next_u64());
    return codes;
  }
  // Interp-residual profile: mostly tiny quantization deltas, a thin tail of
  // large ones — geometric over magnitude classes.
  for (auto& c : codes) {
    const unsigned cls = static_cast<unsigned>(__builtin_ctzll(rng.next_u64() | (1ull << 12)));
    const std::uint64_t span = 1ull << (2 * cls + 2);
    const std::int64_t q =
        static_cast<std::int64_t>(rng.uniform_u64(span)) -
        static_cast<std::int64_t>(span / 2);
    c = negabinary_encode(q);
  }
  return codes;
}

struct Row {
  const char* stage;
  const char* tier;
  double seconds;
  double rate_gbps;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t side = 256;
  int reps = 5;
  bool dense = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--side") == 0 && i + 1 < argc) {
      side = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dense") == 0) {
      dense = true;
    } else {
      std::fprintf(stderr, "usage: %s [--side N] [--repeat R] [--dense]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  const std::size_t n = side * side * side;
  const std::size_t bytes = n * 4;
  const auto codes = make_codes(n, dense);
  const unsigned n_planes = plane_count_ref(codes);

  std::printf("=== bitplane engine: %zu^3 codes (%s profile, %u planes), "
              "median of %d ===\n",
              side, dense ? "dense" : "interp-residual", n_planes, reps);
  std::printf("detected %s, dispatch %s (IPCOMP_SIMD to override)\n\n",
              to_string(detected_simd_level()), to_string(simd_level()));

  const SimdLevel tiers[] = {SimdLevel::kScalar, SimdLevel::kSse2,
                             SimdLevel::kAvx2};
  std::vector<Row> rows;

  // -- extract_all_planes --------------------------------------------------
  double ref_extract = median_seconds(reps, [&] {
    auto planes = extract_all_planes_ref(codes);
    if (planes[0].empty() && n) std::printf("unreachable\n");
  });
  rows.push_back({"extract_all", "ref", ref_extract, gbps(bytes, ref_extract)});
  for (SimdLevel t : tiers) {
    if (t > detected_simd_level()) continue;
    const auto& ops = transpose_ops(t);
    double s = median_seconds(reps, [&] {
      auto planes = extract_all_planes(ops, codes);
      if (planes[0].empty() && n) std::printf("unreachable\n");
    });
    rows.push_back({"extract_all", to_string(t), s, gbps(bytes, s)});
  }

  // -- multi-plane deposit (rebuild all planes into zeroed codes) ----------
  auto planes = extract_all_planes(codes);
  std::vector<PlaneSpan> spans;
  for (unsigned k = 0; k < n_planes; ++k) {
    spans.push_back({k, {planes[k].data(), planes[k].size()}});
  }
  std::vector<std::uint32_t> rebuilt(n);
  double ref_deposit = median_seconds(reps, [&] {
    std::fill(rebuilt.begin(), rebuilt.end(), 0u);
    for (unsigned k = 0; k < n_planes; ++k) {
      deposit_plane_ref(rebuilt, planes[k], k);
    }
  });
  rows.push_back({"deposit_multi", "ref", ref_deposit, gbps(bytes, ref_deposit)});
  for (SimdLevel t : tiers) {
    if (t > detected_simd_level()) continue;
    const auto& ops = transpose_ops(t);
    double s = median_seconds(reps, [&] {
      std::fill(rebuilt.begin(), rebuilt.end(), 0u);
      deposit_planes(ops, rebuilt, spans);
    });
    rows.push_back({"deposit_multi", to_string(t), s, gbps(bytes, s)});
  }
  if (rebuilt != codes) {
    std::fprintf(stderr, "FATAL: deposit does not rebuild the codes\n");
    return 1;
  }

  // -- fused encode (count + loss + planes) vs separate sweeps -------------
  double ref_encode = median_seconds(reps, [&] {
    const unsigned np = plane_count_ref(codes);
    auto loss = truncation_loss_table(codes);
    auto ps = extract_all_planes_ref(codes);
    if (np && loss[1] < 0 && ps[0].empty()) std::printf("unreachable\n");
  });
  rows.push_back({"encode_fused", "ref", ref_encode, gbps(bytes, ref_encode)});
  for (SimdLevel t : tiers) {
    if (t > detected_simd_level()) continue;
    const auto& ops = transpose_ops(t);
    double s = median_seconds(reps, [&] {
      LevelEncoding enc = encode_level(ops, codes, /*with_loss=*/true);
      if (enc.n_planes != n_planes) std::printf("unreachable\n");
    });
    rows.push_back({"encode_fused", to_string(t), s, gbps(bytes, s)});
  }

  std::printf("%-14s %-8s %10s %10s %9s\n", "stage", "tier", "seconds", "GB/s",
              "speedup");
  double ref_s = 0.0;
  for (const Row& r : rows) {
    if (std::strcmp(r.tier, "ref") == 0) ref_s = r.seconds;
    std::printf("%-14s %-8s %10.4f %10.2f %8.2fx\n", r.stage, r.tier, r.seconds,
                r.rate_gbps, ref_s / r.seconds);
  }
  std::printf("\n(acceptance floor: >=3x for extract_all and deposit_multi, "
              "SIMD tier vs ref)\n");
  return 0;
}
