// Figure 5: compression ratios of all progressive compressors at the paper's
// two settings — eb = 1e-9 (high precision, panel a) and 1e-6 (high ratio,
// panel b), both relative to the value range.  Higher is better; IPComp
// should lead on (nearly) every dataset.
#include "bench_common.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Compression ratio", "paper Fig. 5");

  auto lineup = evaluation_lineup();
  for (double rel_eb : {1e-9, 1e-6}) {
    std::printf("--- eb = %.0e x range (%s) ---\n", rel_eb,
                rel_eb == 1e-9 ? "high precision, Fig. 5a" : "high ratio, Fig. 5b");
    std::vector<std::string> cols = {"dataset"};
    for (auto& c : lineup) cols.push_back(c->name());
    TableReporter table(cols);
    for (const auto& spec : datasets()) {
      const auto& data = data_for(spec);
      const double eb = rel_eb * range_of(data);
      const std::size_t raw = data.count() * sizeof(double);
      std::vector<std::string> row = {spec.name};
      for (auto& c : lineup) {
        Bytes archive = c->compress(data.const_view(), eb);
        row.push_back(TableReporter::num(compression_ratio(raw, archive.size()), 4));
      }
      table.row(row);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: IPComp >= all baselines; SZ3-M lowest "
              "(stores 9 independent outputs); PMGARD low (precision-complete "
              "archive).\n");
  return 0;
}
