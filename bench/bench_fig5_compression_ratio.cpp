// Figure 5: compression ratios of all progressive compressors at the paper's
// two settings — eb = 1e-9 (high precision, panel a) and 1e-6 (high ratio,
// panel b), both relative to the value range.  Higher is better; IPComp
// should lead on (nearly) every dataset.
//
// `--json <path>` additionally writes every (eb, dataset, compressor) ratio
// as JSON with a per-backend dimension ("interp" vs "wavelet" for the IPComp
// variants); CI merges this into the BENCH_ci.json artifact so the repo
// keeps a compression-ratio trajectory.  The lineup includes the block-
// decomposed IPComp variant (IPComp-B32, ratio cost of blocking) and the
// wavelet-backend variant (IPComp-W32, archive format v3).
#include <cstring>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ipcomp;
  using namespace ipcomp::bench;

  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  banner("Compression ratio", "paper Fig. 5");

  auto lineup = evaluation_lineup();
  lineup.push_back(ipcomp_block_variant());
  lineup.push_back(ipcomp_wavelet_variant());

  std::FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"fig5_compression_ratio\",\n");
    std::fprintf(json, "  \"scale\": \"%s\",\n  \"results\": [", scale_name());
  }
  bool first_row = true;

  for (double rel_eb : {1e-9, 1e-6}) {
    std::printf("--- eb = %.0e x range (%s) ---\n", rel_eb,
                rel_eb == 1e-9 ? "high precision, Fig. 5a" : "high ratio, Fig. 5b");
    std::vector<std::string> cols = {"dataset"};
    for (auto& c : lineup) cols.push_back(c->name());
    TableReporter table(cols);
    for (const auto& spec : datasets()) {
      const auto& data = data_for(spec);
      const double eb = rel_eb * range_of(data);
      const std::size_t raw = data.count() * sizeof(double);
      std::vector<std::string> row = {spec.name};
      for (auto& c : lineup) {
        Bytes archive = c->compress(data.const_view(), eb);
        const double ratio = compression_ratio(raw, archive.size());
        row.push_back(TableReporter::num(ratio, 4));
        if (json) {
          std::fprintf(json,
                       "%s\n    {\"eb_relative\": %.0e, \"dataset\": \"%s\", "
                       "\"compressor\": \"%s\", \"backend\": \"%s\", "
                       "\"ratio\": %.4f}",
                       first_row ? "" : ",", rel_eb, spec.name.c_str(),
                       c->name().c_str(), c->backend_label().c_str(), ratio);
          first_row = false;
        }
      }
      table.row(row);
    }
    std::printf("\n");
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path);
  }
  std::printf("Expected shape: IPComp >= all baselines; SZ3-M lowest "
              "(stores 9 independent outputs); PMGARD low (precision-complete "
              "archive).\n");
  return 0;
}
