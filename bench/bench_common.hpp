// Shared plumbing for the benchmark harnesses.
//
// Dataset scale defaults to kTiny so `for b in build/bench/*; do $b; done`
// completes in minutes; set IPCOMP_DATA_SCALE=small or =full to reproduce at
// larger sizes (full = the paper's Table 3 shapes).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/ipcomp_adapter.hpp"
#include "data/datasets.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"

namespace ipcomp::bench {

inline DataScale scale() {
  const char* v = std::getenv("IPCOMP_DATA_SCALE");
  if (!v) return DataScale::kTiny;
  std::string s(v);
  if (s == "small") return DataScale::kSmall;
  if (s == "full" || s == "paper") return DataScale::kPaper;
  return DataScale::kTiny;
}

inline const char* scale_name() {
  switch (scale()) {
    case DataScale::kTiny: return "tiny";
    case DataScale::kSmall: return "small";
    case DataScale::kPaper: return "full";
  }
  return "?";
}

inline std::vector<DatasetSpec> datasets() { return standard_datasets(scale()); }

inline const NdArray<double>& data_for(const DatasetSpec& spec) {
  return cached_field(spec.field, scale());
}

inline double range_of(const NdArray<double>& d) {
  return value_range<double>({d.data(), d.count()});
}

inline void banner(const char* what, const char* paper_ref) {
  std::printf("=== %s (%s) ===\n", what, paper_ref);
  std::printf("data scale: %s (IPCOMP_DATA_SCALE=tiny|small|full)\n\n",
              scale_name());
}

}  // namespace ipcomp::bench
