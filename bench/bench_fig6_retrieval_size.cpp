// Figure 6: error-bound-mode retrieval — the data volume (bitrate) each
// compressor must load to guarantee a given L∞ error.  Archives are written
// once at eb = 1e-9 x range; retrieval targets sweep five decades.  Lower
// bitrate is better.  SZ3-R/ZFP-R show a staircase (only 9 anchor bounds);
// IPComp serves arbitrary targets.
#include "bench_common.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Retrieval volume under error-bound targets", "paper Fig. 6");

  auto lineup = evaluation_lineup();
  const double rel_targets[] = {1e-4, 3e-5, 1e-5, 3e-6, 1e-6, 3e-7, 1e-7, 3e-8, 1e-8};

  for (const auto& spec : datasets()) {
    const auto& data = data_for(spec);
    const double range = range_of(data);
    const double eb = 1e-9 * range;
    const std::size_t n = data.count();

    std::printf("--- %s (%s), archives at eb = 1e-9 rel ---\n", spec.name.c_str(),
                spec.dims.to_string().c_str());
    std::vector<Bytes> archives;
    for (auto& c : lineup) archives.push_back(c->compress(data.const_view(), eb));

    std::vector<std::string> cols = {"target(rel)"};
    for (auto& c : lineup) cols.push_back(c->name() + " bpv");
    TableReporter table(cols);
    for (double rel : rel_targets) {
      std::vector<std::string> row = {TableReporter::sci(rel, 1)};
      for (std::size_t i = 0; i < lineup.size(); ++i) {
        auto r = lineup[i]->retrieve_error(archives[i], rel * range);
        auto stats = compute_error_stats<double>({data.data(), n},
                                                 {r.data.data(), n});
        const double bpv = 8.0 * static_cast<double>(r.bytes_loaded) /
                           static_cast<double>(n);
        // Flag any bound violation directly in the table.
        row.push_back(TableReporter::num(bpv, 4) +
                      (stats.max_abs <= rel * range * (1 + 1e-9) ? "" : "!"));
      }
      table.row(row);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: IPComp loads the least at (almost) every target "
              "and moves smoothly; residual baselines step at their 4x-spaced "
              "anchors.\n");
  return 0;
}
