// Table 3: the dataset inventory — name, domain, precision, paper shape, the
// shape generated at the current scale, and basic statistics of the
// synthetic stand-ins (range/mean, to document the substitution).
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Dataset inventory", "paper Table 3");

  auto paper = standard_datasets(DataScale::kPaper);
  auto current = datasets();
  TableReporter table({"Name", "Domain", "Precision", "Paper shape",
                       "Bench shape", "min", "max", "mean"});
  for (std::size_t i = 0; i < current.size(); ++i) {
    const auto& data = data_for(current[i]);
    double lo = data[0], hi = data[0], mean = 0;
    for (std::size_t j = 0; j < data.count(); ++j) {
      lo = std::min(lo, data[j]);
      hi = std::max(hi, data[j]);
      mean += data[j];
    }
    mean /= static_cast<double>(data.count());
    table.row({current[i].name, current[i].domain, "64", paper[i].dims.to_string(),
               current[i].dims.to_string(), TableReporter::num(lo, 4),
               TableReporter::num(hi, 4), TableReporter::num(mean, 4)});
  }
  std::printf("\nDatasets are deterministic synthetic stand-ins for the "
              "SDRBench originals (DESIGN.md, substitution table); use "
              "sdr_raw_read() to run every harness on the real files "
              "instead.\n");
  return 0;
}
