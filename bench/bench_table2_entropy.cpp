// Table 2: bit entropy of the quantized-integer bitplane stream before and
// after predictive XOR coding with 1/2/3 prefix bits, on Density, SpeedX and
// Wave.  Lower entropy = better compressibility; 2-bit prefix should win or
// tie (the paper's default).
#include "bench_common.hpp"
#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/entropy.hpp"
#include "interp/sweep.hpp"
#include "quant/quantizer.hpp"

namespace {

using namespace ipcomp;

/// Run the IPComp predictor on `data` and return all levels' negabinary codes.
std::vector<std::vector<std::uint32_t>> quantize_levels(
    const NdArray<double>& data, double eb) {
  const LevelStructure ls = LevelStructure::analyze(data.dims());
  std::vector<std::vector<std::uint32_t>> codes(ls.num_levels);
  for (unsigned li = 0; li < ls.num_levels; ++li) {
    codes[li].assign(ls.level_count[li], 0);
  }
  const LinearQuantizer quant(eb);
  std::vector<double> xhat(data.vector());
  const double* original = data.data();
  interpolation_sweep(xhat.data(), ls, InterpKind::kCubic,
                      [&](unsigned li, std::size_t slot, std::size_t idx,
                          double pred) -> double {
                        std::int64_t code;
                        double recon;
                        if (quant.quantize(original[idx], pred, code, recon)) {
                          codes[li][slot] = negabinary_encode(code);
                          return recon;
                        }
                        return original[idx];
                      });
  return codes;
}

/// Aggregate bit entropy over the informative planes of every level,
/// weighted by plane length.
double stream_entropy(const std::vector<std::vector<std::uint32_t>>& levels,
                      unsigned prefix_bits) {
  double weighted = 0.0;
  double total_bits = 0.0;
  for (const auto& codes : levels) {
    if (codes.empty()) continue;
    std::uint32_t all = 0;
    for (auto c : codes) all |= c;
    if (all == 0) continue;
    const unsigned n_planes = 32 - __builtin_clz(all);
    auto planes = extract_all_planes(codes);
    for (unsigned k = 0; k < n_planes; ++k) {
      Bytes stream = prefix_bits == 0
                         ? planes[k]
                         : predictive_encode_plane(codes, planes[k], k, prefix_bits);
      const double h = bit_entropy(stream, codes.size());
      weighted += h * static_cast<double>(codes.size());
      total_bits += static_cast<double>(codes.size());
    }
  }
  return total_bits > 0 ? weighted / total_bits : 0.0;
}

}  // namespace

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Predictive bitplane coding entropy", "paper Table 2");

  TableReporter table({"Fields", "Original", "1-bit prefix", "2-bits prefix",
                       "3-bits prefix"});
  for (Field f : {Field::kDensity, Field::kSpeedX, Field::kWave}) {
    const auto& data = cached_field(f, scale());
    const double eb = 1e-6 * range_of(data);
    auto levels = quantize_levels(data, eb);
    std::vector<std::string> row = {field_name(f)};
    for (unsigned prefix : {0u, 1u, 2u, 3u}) {
      row.push_back(TableReporter::num(stream_entropy(levels, prefix), 6));
    }
    table.row(row);
  }
  std::printf("\nExpected shape: every prefix width lowers entropy vs the "
              "original; 2 bits is the (near-)best, as in Table 2.\n");
  return 0;
}
