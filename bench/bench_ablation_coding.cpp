// Ablation A (design choices of paper §4.4): integer representation for
// bitplane coding — negabinary vs two's complement vs sign-magnitude — and
// the predictive-coder prefix width.
//
// Measures (a) the total compressed size of all plane segments under each
// representation, (b) the truncation uncertainty at increasing dropped-plane
// depths, (c) the end-to-end archive size for prefix widths 0..3, (d) the
// codec-orchestration policy: per-method routing census, plane bytes and
// encode throughput of the entropy-probed router vs the legacy strategies.
#include <cmath>

#include "util/timer.hpp"

#include "bench_common.hpp"
#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "core/compressor.hpp"
#include "interp/sweep.hpp"
#include "quant/quantizer.hpp"

namespace {

using namespace ipcomp;

std::vector<std::int64_t> quantize_codes(const NdArray<double>& data, double eb) {
  const LevelStructure ls = LevelStructure::analyze(data.dims());
  std::vector<std::int64_t> out;
  out.reserve(data.count());
  const LinearQuantizer quant(eb);
  std::vector<double> xhat(data.vector());
  const double* original = data.data();
  std::vector<std::vector<std::int64_t>> per_level(ls.num_levels);
  for (unsigned li = 0; li < ls.num_levels; ++li) {
    per_level[li].assign(ls.level_count[li], 0);
  }
  interpolation_sweep(xhat.data(), ls, InterpKind::kCubic,
                      [&](unsigned li, std::size_t slot, std::size_t idx,
                          double pred) -> double {
                        std::int64_t code;
                        double recon;
                        if (quant.quantize(original[idx], pred, code, recon)) {
                          per_level[li][slot] = code;
                          return recon;
                        }
                        return original[idx];
                      });
  for (unsigned li = ls.num_levels; li-- > 0;) {
    out.insert(out.end(), per_level[li].begin(), per_level[li].end());
  }
  return out;
}

std::uint32_t to_twos_complement(std::int64_t q) {
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(q));
}

std::uint32_t to_sign_magnitude(std::int64_t q) {
  std::uint32_t mag = static_cast<std::uint32_t>(q < 0 ? -q : q);
  return (mag << 1) | (q < 0 ? 1u : 0u);  // sign in the LSB so it loads first
}

/// Total codec size of all 32 planes of `values` (no prefix prediction, to
/// isolate the representation effect).
std::size_t planes_size(const std::vector<std::uint32_t>& values) {
  auto planes = extract_all_planes(values);
  std::size_t total = 0;
  for (unsigned k = 0; k < kPlaneCount; ++k) {
    total += codec_compress({planes[k].data(), planes[k].size()}).size();
  }
  return total;
}

}  // namespace

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Coding ablation: number representation & prefix width",
         "paper §4.4 design choices");

  const auto& data = cached_field(Field::kDensity, scale());
  const double eb = 1e-6 * range_of(data);
  auto codes = quantize_codes(data, eb);

  std::vector<std::uint32_t> nb(codes.size()), tc(codes.size()), sm(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    nb[i] = negabinary_encode(codes[i]);
    tc[i] = to_twos_complement(codes[i]);
    sm[i] = to_sign_magnitude(codes[i]);
  }

  std::printf("--- (a) compressed plane bytes by representation ---\n");
  TableReporter ta({"representation", "plane bytes", "vs negabinary"});
  const std::size_t nb_size = planes_size(nb);
  for (auto& [name, values] :
       std::vector<std::pair<std::string, const std::vector<std::uint32_t>*>>{
           {"negabinary", &nb}, {"two's complement", &tc}, {"sign-magnitude", &sm}}) {
    std::size_t s = planes_size(*values);
    ta.row({name, std::to_string(s),
            TableReporter::num(100.0 * s / nb_size, 4) + "%"});
  }

  std::printf("\n--- (b) worst-case truncation uncertainty (units of 2eb) ---\n");
  TableReporter tb({"planes dropped", "negabinary", "sign-magnitude"});
  for (unsigned d : {4u, 8u, 12u, 16u}) {
    tb.row({std::to_string(d), std::to_string(negabinary_uncertainty(d)),
            std::to_string((std::int64_t{1} << d) - 1)});
  }

  std::printf("\n--- (c) archive size by predictive prefix width ---\n");
  TableReporter tr({"prefix bits", "archive bytes", "vs 2-bit"});
  Options base;
  base.error_bound = eb;
  base.relative = false;
  base.prefix_bits = 2;
  const std::size_t ref = compress(data.const_view(), base).size();
  for (unsigned prefix : {0u, 1u, 2u, 3u}) {
    Options opt = base;
    opt.prefix_bits = prefix;
    std::size_t s = compress(data.const_view(), opt).size();
    tr.row({std::to_string(prefix), std::to_string(s),
            TableReporter::num(100.0 * s / ref, 4) + "%"});
  }
  std::printf("\n--- (d) codec orchestration policy on the plane segments ---\n");
  {
    // The per-plane byte streams the real pipeline feeds the codec: the
    // negabinary planes with the 2-bit predictive XOR applied.
    std::vector<Bytes> segs;
    auto planes = extract_all_planes(nb);
    for (unsigned k = 0; k < kPlaneCount; ++k) {
      segs.push_back(predictive_encode_plane(nb, planes[k], k, 2));
    }
    TableReporter td({"policy", "plane bytes", "encode MB/s",
                      "empty/raw/rle/lzh/bitpack"});
    std::size_t raw_total = 0;
    for (const Bytes& s : segs) raw_total += s.size();
    for (CodecPolicy policy :
         {CodecPolicy::kProbe, CodecPolicy::kTryAll, CodecPolicy::kRle}) {
      std::size_t counts[5] = {};
      std::size_t total = 0;
      Timer timer;
      for (const Bytes& s : segs) {
        Bytes enc = codec_compress({s.data(), s.size()}, policy);
        total += enc.size();
        ++counts[enc[0] < 5 ? enc[0] : 1];
      }
      const double secs = timer.seconds();
      td.row({to_string(policy), std::to_string(total),
              TableReporter::num(mb_per_s(raw_total, secs), 5),
              std::to_string(counts[0]) + "/" + std::to_string(counts[1]) +
                  "/" + std::to_string(counts[2]) + "/" +
                  std::to_string(counts[3]) + "/" + std::to_string(counts[4])});
    }
  }

  std::printf("\nExpected shape: negabinary smallest planes and ~2/3 the "
              "truncation uncertainty of sign-magnitude; 2-bit prefix at or "
              "near the size optimum (paper Table 2); probe routing at or "
              "near try-all size at a higher encode rate, high planes to "
              "empty/bitpack and low planes to raw.\n");
  return 0;
}
