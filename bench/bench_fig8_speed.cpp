// Figure 8: compression and decompression throughput of every compressor
// (including SPERR-R, which the paper adds to this figure only).  All run at
// eb = 1e-9 x range; decompression retrieves full fidelity.  google-benchmark
// binary; reported rate is uncompressed MB/s.
//
// PMGARD compresses losslessly by design, so its compression numbers are not
// eb-comparable (the paper notes the same caveat).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace ipcomp;
using namespace ipcomp::bench;

void bm_compress(benchmark::State& state,
                 std::shared_ptr<ProgressiveCompressor> comp,
                 const DatasetSpec spec) {
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  std::size_t archive_size = 0;
  for (auto _ : state) {
    Bytes archive = comp->compress(data.const_view(), eb);
    archive_size = archive.size();
    benchmark::DoNotOptimize(archive.data());
  }
  const auto raw = static_cast<std::int64_t>(data.count() * sizeof(double));
  state.SetBytesProcessed(state.iterations() * raw);
  state.counters["ratio"] = static_cast<double>(raw) /
                            static_cast<double>(archive_size);
}

void bm_decompress(benchmark::State& state,
                   std::shared_ptr<ProgressiveCompressor> comp,
                   const DatasetSpec spec) {
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  Bytes archive = comp->compress(data.const_view(), eb);
  int passes = 0;
  for (auto _ : state) {
    auto r = comp->retrieve_error(archive, eb);
    passes = r.passes;
    benchmark::DoNotOptimize(r.data.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.count() * sizeof(double)));
  state.counters["passes"] = passes;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Compression / decompression speed", "paper Fig. 8");
  for (const auto& spec : datasets()) {
    for (auto& comp : speed_lineup()) {
      benchmark::RegisterBenchmark(
          ("compress/" + comp->name() + "/" + spec.name).c_str(),
          [comp, spec](benchmark::State& st) { bm_compress(st, comp, spec); })
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("decompress/" + comp->name() + "/" + spec.name).c_str(),
          [comp, spec](benchmark::State& st) { bm_decompress(st, comp, spec); })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nExpected shape: IPComp fastest or near-fastest except SZ3-M "
              "decompression (single-output decode, but its Fig. 5 ratio is "
              "unusable); SPERR-R slowest; residual methods pay one pass per "
              "stage.\n");
  return 0;
}
