// Figure 8: compression and decompression throughput of every compressor
// (including SPERR-R, which the paper adds to this figure only).  All run at
// eb = 1e-9 x range; decompression retrieves full fidelity.  google-benchmark
// binary; reported rate is uncompressed MB/s.
//
// PMGARD compresses losslessly by design, so its compression numbers are not
// eb-comparable (the paper notes the same caveat).
//
// Block-compare mode (`--block-compare`, or `--json <path>` which also writes
// the measurements as JSON for CI's BENCH_ci.json artifact) skips the
// google-benchmark lineup and instead times the block-decomposed pipeline
// against the legacy whole-field path — plus a per-backend section (interp
// vs wavelet at the same block side, including a progressive and a region
// retrieval through the wavelet backend, and the bitplane engine's
// plane-extract / multi-plane-deposit / fused-encode throughput) — on one
// fixed synthetic field:
//   IPCOMP_BENCH_SIDE  cubic field side (default 256)
//   IPCOMP_BENCH_BLOCK block side (default side/4)
//   --repeat N         repetitions, median-of-N (CI passes --repeat 3;
//                      IPCOMP_BENCH_REPS is the fallback default)
// Stage timings are the median of N runs so BENCH_ci.json numbers are stable
// enough to compare across commits.  Run with OMP_NUM_THREADS=4 to reproduce
// the >=2x speedup claim.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "core/compressor.hpp"
#include "core/progressive_reader.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ipcomp;
using namespace ipcomp::bench;

void bm_compress(benchmark::State& state,
                 std::shared_ptr<ProgressiveCompressor> comp,
                 const DatasetSpec spec) {
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  std::size_t archive_size = 0;
  for (auto _ : state) {
    Bytes archive = comp->compress(data.const_view(), eb);
    archive_size = archive.size();
    benchmark::DoNotOptimize(archive.data());
  }
  const auto raw = static_cast<std::int64_t>(data.count() * sizeof(double));
  state.SetBytesProcessed(state.iterations() * raw);
  state.counters["ratio"] = static_cast<double>(raw) /
                            static_cast<double>(archive_size);
}

void bm_decompress(benchmark::State& state,
                   std::shared_ptr<ProgressiveCompressor> comp,
                   const DatasetSpec spec) {
  const auto& data = data_for(spec);
  const double eb = 1e-9 * range_of(data);
  Bytes archive = comp->compress(data.const_view(), eb);
  int passes = 0;
  for (auto _ : state) {
    auto r = comp->retrieve_error(archive, eb);
    passes = r.passes;
    benchmark::DoNotOptimize(r.data.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.count() * sizeof(double)));
  state.counters["passes"] = passes;
}

// ---- block-compare mode --------------------------------------------------

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10)) : fallback;
}

NdArray<double> synthetic_cube(std::size_t side) {
  NdArray<double> field(Dims{side, side, side});
  const double inv = 1.0 / static_cast<double>(side);
  parallel_for(0, side, [&](std::size_t z) {
    double* plane = field.data() + z * side * side;
    const double fz = std::sin(6.9 * static_cast<double>(z) * inv);
    for (std::size_t y = 0; y < side; ++y) {
      const double fy = std::cos(4.3 * static_cast<double>(y) * inv);
      for (std::size_t x = 0; x < side; ++x) {
        plane[y * side + x] =
            fz + fy + std::sin(11.7 * static_cast<double>(x) * inv) +
            0.2 * std::sin(37.0 * static_cast<double>(x + y + z) * inv);
      }
    }
  }, /*grain=*/1);
  return field;
}

struct StageResult {
  double seconds = 0.0;
  double mb_per_s = 0.0;
};

/// Fetch-efficiency record of one FileSource-backed progressive sweep
/// (coarse -> medium -> full error-bound requests through plan/execute):
/// how many segments the plans named, how many physical reads the coalescing
/// read_many actually issued, and the payload bytes charged.
struct FetchStats {
  std::size_t segments = 0;
  std::size_t read_calls = 0;
  std::size_t coalesced_ranges = 0;
  std::size_t bytes = 0;
};

FetchStats fetch_sweep(const Bytes& archive, const char* path) {
  write_file(path, archive);
  FetchStats fs;
  {
    FileSource src(path);
    ProgressiveReader<double> reader(src);
    const double eb = reader.compression_eb();
    for (double mult : {1e6, 1e3, 1.0}) {
      RetrievalPlan plan = reader.plan(Request::error_bound(mult * eb));
      fs.segments += plan.segments.size();
      reader.execute(plan);
    }
    fs.read_calls = src.stats().read_calls;
    fs.coalesced_ranges = src.stats().coalesced_ranges;
    fs.bytes = src.stats().bytes_read;
  }
  std::remove(path);
  return fs;
}

template <typename Fn>
StageResult median_of(int reps, std::size_t raw_bytes, Fn&& fn) {
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (auto& s : t) {
    Timer timer;
    fn();
    s = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  StageResult r;
  r.seconds = t[t.size() / 2];
  r.mb_per_s = mb_per_s(raw_bytes, r.seconds);
  return r;
}

/// Bitplane-engine throughput on one backend's code profile: plane extract
/// and multi-plane deposit in GB/s of code bytes, the fused encode pass
/// (count + loss table + plane split) in MB/s.
struct BitplaneThroughput {
  double extract_gbps = 0.0;
  double deposit_gbps = 0.0;
  double fused_encode_mbps = 0.0;
};

/// Negabinary codes with geometric magnitude classes; `spread` widens the
/// tail (interp residuals are tighter than wavelet coefficients).  Classes
/// are capped at 14 so every value stays inside negabinary_encode's
/// documented 32-bit range (span/2 = 2^29 < kNegabinaryMax).
std::vector<std::uint32_t> synth_codes(std::size_t n, std::uint64_t seed,
                                       unsigned spread) {
  Rng rng(seed);
  std::vector<std::uint32_t> codes(n);
  for (auto& c : codes) {
    const auto cls = std::min(14u, static_cast<unsigned>(__builtin_ctzll(
                                       rng.next_u64() | (1ull << spread))));
    const std::uint64_t span = 1ull << (2 * cls + 2);
    c = negabinary_encode(static_cast<std::int64_t>(rng.uniform_u64(span)) -
                          static_cast<std::int64_t>(span / 2));
  }
  return codes;
}

BitplaneThroughput bitplane_throughput(int reps, std::size_t n,
                                       std::uint64_t seed, unsigned spread) {
  std::vector<std::uint32_t> codes = synth_codes(n, seed, spread);
  const auto bytes = static_cast<double>(n * 4);
  BitplaneThroughput out;
  const StageResult ex = median_of(reps, n * 4, [&] {
    auto planes = extract_all_planes(codes);
    if (planes[0].empty() && n) std::printf("unreachable\n");
  });
  out.extract_gbps = bytes / 1.0e9 / ex.seconds;

  LevelEncoding enc = encode_level(codes, /*with_loss=*/true);
  std::vector<PlaneSpan> spans;
  for (unsigned k = 0; k < enc.n_planes; ++k) {
    spans.push_back({k, {enc.planes[k].data(), enc.planes[k].size()}});
  }
  std::vector<std::uint32_t> rebuilt(n);
  const StageResult dep = median_of(reps, n * 4, [&] {
    std::fill(rebuilt.begin(), rebuilt.end(), 0u);
    deposit_planes(rebuilt, spans);
  });
  out.deposit_gbps = bytes / 1.0e9 / dep.seconds;
  if (rebuilt != codes) std::printf("unreachable: deposit mismatch\n");

  const StageResult en = median_of(reps, n * 4, [&] {
    LevelEncoding e = encode_level(codes, /*with_loss=*/true);
    if (e.n_planes != enc.n_planes) std::printf("unreachable\n");
  });
  out.fused_encode_mbps = mb_per_s(n * 4, en.seconds);
  return out;
}

/// Codec-orchestration census over the entropy stage: the exact per-plane
/// byte streams append_plane_segments feeds codec_compress (fused plane
/// split + predictive XOR, prefix 2) under both code profiles, encoded under
/// the probe-routed policy vs the legacy try-all policy.  Records per-method
/// routing counts, encode MB/s per policy, and the compressed-size delta.
struct CodecCensus {
  std::size_t segments = 0;
  std::size_t raw_bytes = 0;
  std::size_t method_counts[5] = {};  // indexed by CodecMethod, kProbe routing
  std::size_t probe_bytes = 0;
  std::size_t tryall_bytes = 0;
  double routed_encode_mbps = 0.0;
  double tryall_encode_mbps = 0.0;
  double speedup = 0.0;
  double ratio_delta_pct = 0.0;  // probe vs try-all compressed size, + = bigger
};

CodecCensus codec_census(int reps, std::size_t n) {
  CodecCensus c;
  std::vector<Bytes> segs;
  for (auto [seed, spread] : {std::pair<unsigned, unsigned>{303, 12},
                              std::pair<unsigned, unsigned>{404, 20}}) {
    std::vector<std::uint32_t> codes = synth_codes(n, seed, spread);
    LevelEncoding enc = encode_level(codes, /*with_loss=*/false);
    for (unsigned k = 0; k < enc.n_planes; ++k) {
      segs.push_back(predictive_encode_plane(codes, enc.planes[k], k,
                                             /*prefix_bits=*/2));
    }
  }
  c.segments = segs.size();
  for (const Bytes& s : segs) c.raw_bytes += s.size();

  const StageResult routed = median_of(reps, c.raw_bytes, [&] {
    std::size_t total = 0;
    for (const Bytes& s : segs) {
      total += codec_compress({s.data(), s.size()}, CodecPolicy::kProbe).size();
    }
    c.probe_bytes = total;
  });
  const StageResult tryall = median_of(reps, c.raw_bytes, [&] {
    std::size_t total = 0;
    for (const Bytes& s : segs) {
      total += codec_compress({s.data(), s.size()}, CodecPolicy::kTryAll).size();
    }
    c.tryall_bytes = total;
  });
  for (const Bytes& s : segs) {
    Bytes enc = codec_compress({s.data(), s.size()}, CodecPolicy::kProbe);
    ++c.method_counts[enc[0] < 5 ? enc[0] : 1];
    // Routed encodes must stay lossless — decode once outside the timing.
    Bytes dec = codec_decompress({enc.data(), enc.size()}, s.size());
    if (dec != s) std::printf("unreachable: codec census mismatch\n");
  }
  c.routed_encode_mbps = routed.mb_per_s;
  c.tryall_encode_mbps = tryall.mb_per_s;
  c.speedup = tryall.seconds / routed.seconds;
  c.ratio_delta_pct = 100.0 * (static_cast<double>(c.probe_bytes) /
                                   static_cast<double>(c.tryall_bytes) -
                               1.0);
  return c;
}

int block_compare(const char* json_path, int reps) {
  const std::size_t side = env_size("IPCOMP_BENCH_SIDE", 256);
  const std::size_t block = env_size("IPCOMP_BENCH_BLOCK", side / 4);
  std::printf("=== Block-parallel vs legacy whole-field IPComp ===\n");
  std::printf("field %zux%zux%zu f64, block side %zu, threads %d, median of %d\n",
              side, side, side, block, thread_count(), reps);

  NdArray<double> field = synthetic_cube(side);
  const std::size_t raw = field.count() * sizeof(double);

  Options legacy;
  legacy.error_bound = 1e-6;  // relative to range
  Options blocked = legacy;
  blocked.block_side = block;
  // The second first-class backend, at the same field and block side: the
  // per-backend dimension of the CI speed record.  Wavelet compression pays
  // for its exact per-plane loss tables (one inverse transform per plane).
  Options wavelet = blocked;
  wavelet.backend = BackendId::kWavelet;

  Bytes archive_legacy, archive_block, archive_wavelet;
  StageResult c_legacy = median_of(reps, raw, [&] {
    archive_legacy = compress(field.const_view(), legacy);
  });
  StageResult c_block = median_of(reps, raw, [&] {
    archive_block = compress(field.const_view(), blocked);
  });
  StageResult c_wavelet = median_of(reps, raw, [&] {
    archive_wavelet = compress(field.const_view(), wavelet);
  });
  double sink = 0.0;
  StageResult d_legacy = median_of(reps, raw, [&] {
    MemorySource src{Bytes(archive_legacy)};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::full());
    sink += reader.data()[0];
  });
  StageResult d_block = median_of(reps, raw, [&] {
    MemorySource src{Bytes(archive_block)};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::full());
    sink += reader.data()[0];
  });
  StageResult d_wavelet = median_of(reps, raw, [&] {
    MemorySource src{Bytes(archive_wavelet)};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::full());
    sink += reader.data()[0];
  });

  // Progressive + region retrieval through the same reader API, as the CI
  // record that the wavelet backend serves partial requests: bytes fraction
  // loaded for a 1e3x-coarser bound, and for a corner-octant region.
  double wavelet_eb = 0.0, wavelet_partial_guarantee = 0.0;
  std::size_t wavelet_partial_bytes = 0, wavelet_region_bytes = 0;
  {
    MemorySource src{Bytes(archive_wavelet)};
    ProgressiveReader<double> reader(src);
    wavelet_eb = reader.compression_eb();
    auto st = reader.retrieve(Request::error_bound(1e3 * wavelet_eb));
    wavelet_partial_bytes = st.bytes_total;
    wavelet_partial_guarantee = st.guaranteed_error;
    sink += reader.data()[0];
  }
  {
    MemorySource src{Bytes(archive_wavelet)};
    ProgressiveReader<double> reader(src);
    std::array<std::size_t, kMaxRank> lo{}, hi{};
    for (int i = 0; i < 3; ++i) hi[i] = side / 2;
    auto st = reader.retrieve(Request::full().within(lo, hi));
    wavelet_region_bytes = st.bytes_total;
    sink += reader.data()[0];
  }
  if (!std::isfinite(sink)) std::printf("unreachable\n");

  // Fetch efficiency of the plan/execute path against real file I/O, per
  // backend: all of a request's segments go through one read_many call,
  // which FileSource coalesces into bulk reads.
  FetchStats f_interp = fetch_sweep(archive_block, "BENCH_fetch_interp.ipc");
  FetchStats f_wavelet = fetch_sweep(archive_wavelet, "BENCH_fetch_wavelet.ipc");

  // Bitplane-engine throughput on a field-sized code array per backend
  // profile (interp: tight residuals; wavelet: wider coefficient tail).
  const std::size_t n_codes = side * side * side;
  BitplaneThroughput t_interp = bitplane_throughput(reps, n_codes, 101, 12);
  BitplaneThroughput t_wavelet = bitplane_throughput(reps, n_codes, 202, 20);

  // Entropy-stage orchestration: probe-routed vs try-all over the plane
  // segments of both code profiles.
  CodecCensus cc = codec_census(reps, n_codes);

  const double ratio_legacy = static_cast<double>(raw) /
                              static_cast<double>(archive_legacy.size());
  const double ratio_block = static_cast<double>(raw) /
                             static_cast<double>(archive_block.size());
  const double ratio_wavelet = static_cast<double>(raw) /
                               static_cast<double>(archive_wavelet.size());
  const double speedup_c = c_legacy.seconds / c_block.seconds;
  const double speedup_d = d_legacy.seconds / d_block.seconds;

  std::printf("\n%-20s %12s %12s\n", "stage", "seconds", "MB/s");
  std::printf("%-20s %12.3f %12.1f\n", "compress legacy", c_legacy.seconds,
              c_legacy.mb_per_s);
  std::printf("%-20s %12.3f %12.1f\n", "compress block", c_block.seconds,
              c_block.mb_per_s);
  std::printf("%-20s %12.3f %12.1f\n", "compress wavelet", c_wavelet.seconds,
              c_wavelet.mb_per_s);
  std::printf("%-20s %12.3f %12.1f\n", "decompress legacy", d_legacy.seconds,
              d_legacy.mb_per_s);
  std::printf("%-20s %12.3f %12.1f\n", "decompress block", d_block.seconds,
              d_block.mb_per_s);
  std::printf("%-20s %12.3f %12.1f\n", "decompress wavelet", d_wavelet.seconds,
              d_wavelet.mb_per_s);
  std::printf("\nratio: legacy %.2f, block %.2f, wavelet %.2f\n", ratio_legacy,
              ratio_block, ratio_wavelet);
  std::printf("speedup at %d threads: compress %.2fx, decompress %.2fx\n",
              thread_count(), speedup_c, speedup_d);
  std::printf("wavelet progressive: %zu/%zu bytes for a 1e3x bound, "
              "%zu bytes for the corner octant\n",
              wavelet_partial_bytes, archive_wavelet.size(),
              wavelet_region_bytes);
  std::printf("fetch (FileSource sweep): interp %zu segments in %zu reads, "
              "wavelet %zu segments in %zu reads\n",
              f_interp.segments, f_interp.read_calls, f_wavelet.segments,
              f_wavelet.read_calls);
  std::printf("bitplane engine (%s): interp extract %.2f / deposit %.2f GB/s,"
              " fused encode %.1f MB/s; wavelet extract %.2f / deposit %.2f"
              " GB/s, fused encode %.1f MB/s\n",
              to_string(simd_level()), t_interp.extract_gbps,
              t_interp.deposit_gbps, t_interp.fused_encode_mbps,
              t_wavelet.extract_gbps, t_wavelet.deposit_gbps,
              t_wavelet.fused_encode_mbps);
  std::printf("codec orchestration: %zu plane segments (%.1f MB), routed"
              " %.1f MB/s vs try-all %.1f MB/s (%.2fx), size delta %+.2f%%\n",
              cc.segments, static_cast<double>(cc.raw_bytes) / 1.0e6,
              cc.routed_encode_mbps, cc.tryall_encode_mbps, cc.speedup,
              cc.ratio_delta_pct);
  std::printf("codec routing: empty %zu, raw %zu, rle %zu, lzh %zu,"
              " bitpack %zu\n",
              cc.method_counts[0], cc.method_counts[1], cc.method_counts[2],
              cc.method_counts[3], cc.method_counts[4]);
  std::printf("(target: >=2x compression speedup at 4 threads, >=256^3;"
              " >=1.5x routed vs try-all encode)\n");

  if (json_path) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig8_speed\",\n"
                 "  \"field\": {\"dims\": \"%zux%zux%zu\", \"dtype\": \"f64\","
                 " \"bytes\": %zu},\n"
                 "  \"threads\": %d,\n"
                 "  \"block_side\": %zu,\n"
                 "  \"repeat\": %d,\n"
                 "  \"simd\": \"%s\",\n"
                 "  \"eb_relative\": 1e-6,\n"
                 "  \"stages\": {\n"
                 "    \"compress_legacy\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "    \"compress_block\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "    \"decompress_legacy\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "    \"decompress_block\": {\"seconds\": %.6f, \"mb_per_s\": %.2f}\n"
                 "  },\n"
                 "  \"compression_ratio\": {\"legacy\": %.4f, \"block\": %.4f},\n"
                 "  \"speedup\": {\"compress\": %.4f, \"decompress\": %.4f},\n"
                 "  \"codec\": {\n"
                 "    \"segments\": %zu,\n"
                 "    \"raw_bytes\": %zu,\n"
                 "    \"methods\": {\"empty\": %zu, \"raw\": %zu, \"rle\": %zu,"
                 " \"lzh\": %zu, \"bitpack\": %zu},\n"
                 "    \"routed_encode_mbps\": %.2f,\n"
                 "    \"tryall_encode_mbps\": %.2f,\n"
                 "    \"speedup\": %.4f,\n"
                 "    \"ratio_delta_pct\": %.4f\n"
                 "  },\n"
                 "  \"backends\": {\n"
                 "    \"interp\": {\n"
                 "      \"compress\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "      \"decompress\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "      \"ratio\": %.4f,\n"
                 "      \"fetch\": {\"segments\": %zu, \"read_calls\": %zu,"
                 " \"coalesced_ranges\": %zu, \"bytes\": %zu},\n"
                 "      \"throughput\": {\"extract_gbps\": %.4f,"
                 " \"deposit_gbps\": %.4f, \"fused_encode_mbps\": %.2f}\n"
                 "    },\n"
                 "    \"wavelet\": {\n"
                 "      \"compress\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "      \"decompress\": {\"seconds\": %.6f, \"mb_per_s\": %.2f},\n"
                 "      \"ratio\": %.4f,\n"
                 "      \"archive_bytes\": %zu,\n"
                 "      \"progressive\": {\"target_over_eb\": 1000,"
                 " \"bytes\": %zu, \"guaranteed_error\": %.6e,"
                 " \"compression_eb\": %.6e},\n"
                 "      \"region_octant_bytes\": %zu,\n"
                 "      \"fetch\": {\"segments\": %zu, \"read_calls\": %zu,"
                 " \"coalesced_ranges\": %zu, \"bytes\": %zu},\n"
                 "      \"throughput\": {\"extract_gbps\": %.4f,"
                 " \"deposit_gbps\": %.4f, \"fused_encode_mbps\": %.2f}\n"
                 "    }\n"
                 "  }\n"
                 "}\n",
                 side, side, side, raw, thread_count(), block, reps,
                 to_string(simd_level()),
                 c_legacy.seconds, c_legacy.mb_per_s, c_block.seconds,
                 c_block.mb_per_s, d_legacy.seconds, d_legacy.mb_per_s,
                 d_block.seconds, d_block.mb_per_s, ratio_legacy, ratio_block,
                 speedup_c, speedup_d,
                 cc.segments, cc.raw_bytes, cc.method_counts[0],
                 cc.method_counts[1], cc.method_counts[2], cc.method_counts[3],
                 cc.method_counts[4], cc.routed_encode_mbps,
                 cc.tryall_encode_mbps, cc.speedup, cc.ratio_delta_pct,
                 c_block.seconds, c_block.mb_per_s, d_block.seconds,
                 d_block.mb_per_s, ratio_block,
                 f_interp.segments, f_interp.read_calls,
                 f_interp.coalesced_ranges, f_interp.bytes,
                 t_interp.extract_gbps, t_interp.deposit_gbps,
                 t_interp.fused_encode_mbps,
                 c_wavelet.seconds, c_wavelet.mb_per_s, d_wavelet.seconds,
                 d_wavelet.mb_per_s, ratio_wavelet, archive_wavelet.size(),
                 wavelet_partial_bytes, wavelet_partial_guarantee, wavelet_eb,
                 wavelet_region_bytes, f_wavelet.segments,
                 f_wavelet.read_calls, f_wavelet.coalesced_ranges,
                 f_wavelet.bytes, t_wavelet.extract_gbps,
                 t_wavelet.deposit_gbps, t_wavelet.fused_encode_mbps);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = static_cast<int>(env_size("IPCOMP_BENCH_REPS", 3));
  const char* json_path = nullptr;
  bool compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--block-compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      compare = true;
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (reps < 1) {
        std::fprintf(stderr, "bench_fig8: --repeat wants a positive count\n");
        return 2;
      }
    }
  }
  if (compare) return block_compare(json_path, reps);

  banner("Compression / decompression speed", "paper Fig. 8");
  for (const auto& spec : datasets()) {
    for (auto& comp : speed_lineup()) {
      benchmark::RegisterBenchmark(
          ("compress/" + comp->name() + "/" + spec.name).c_str(),
          [comp, spec](benchmark::State& st) { bm_compress(st, comp, spec); })
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("decompress/" + comp->name() + "/" + spec.name).c_str(),
          [comp, spec](benchmark::State& st) { bm_decompress(st, comp, spec); })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nExpected shape: IPComp fastest or near-fastest except SZ3-M "
              "decompression (single-output decode, but its Fig. 5 ratio is "
              "unusable); SPERR-R slowest; residual methods pay one pass per "
              "stage.\n");
  return 0;
}
