// Figure 10: PSNR versus retrieved bitrate on Density, Pressure, VelocityX
// and CH4.  IPComp optimizes for L∞, but its retrieval should still be
// PSNR-competitive or better at equal bitrate.  Higher is better.
#include "bench_common.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("PSNR under bitrate budgets", "paper Fig. 10");

  auto lineup = evaluation_lineup();
  const double budgets_bpv[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0};
  const Field fields[] = {Field::kDensity, Field::kPressure, Field::kVelocityX,
                          Field::kCH4};

  for (Field f : fields) {
    auto spec = dataset_spec(f, scale());
    const auto& data = data_for(spec);
    const double eb = 1e-9 * range_of(data);
    const std::size_t n = data.count();

    std::printf("--- %s (%s) ---\n", spec.name.c_str(),
                spec.dims.to_string().c_str());
    std::vector<Bytes> archives;
    for (auto& c : lineup) archives.push_back(c->compress(data.const_view(), eb));

    std::vector<std::string> cols = {"budget bpv"};
    for (auto& c : lineup) cols.push_back(c->name() + " PSNR");
    TableReporter table(cols);
    for (double bpv : budgets_bpv) {
      const auto budget =
          static_cast<std::uint64_t>(bpv * static_cast<double>(n) / 8.0);
      std::vector<std::string> row = {TableReporter::num(bpv, 3)};
      for (std::size_t i = 0; i < lineup.size(); ++i) {
        auto r = lineup[i]->retrieve_bytes(archives[i], budget);
        auto stats = compute_error_stats<double>({data.data(), n},
                                                 {r.data.data(), n});
        // '!' = the method could not fit even its coarsest stage into the
        // budget and overran it (its PSNR is then not budget-comparable).
        row.push_back(TableReporter::num(stats.psnr, 5) +
                      (r.bytes_loaded <= budget ? "" : "!"));
      }
      table.row(row);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: among the budget-respecting entries, IPComp "
              "reaches the highest PSNR at most budgets despite optimizing "
              "the L-inf norm; '!' marks budget overruns.\n");
  return 0;
}
