// Ablation B (paper §5): the optimized data loader.
//  (a) planner quality — DP knapsack vs greedy vs uniform truncation: bytes
//      loaded for the same guaranteed error target;
//  (b) error model — the paper's Theorem-1 amplification vs this repo's
//      conservative per-dimension model: bytes loaded AND whether the actual
//      error respects the target (the paper model can violate it; see
//      DESIGN.md §2).
#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/progressive_reader.hpp"

int main() {
  using namespace ipcomp;
  using namespace ipcomp::bench;
  banner("Loader ablation: planner kind & error model", "paper §5");

  const auto& data = cached_field(Field::kDensity, scale());
  const double range = range_of(data);
  Options opt;
  opt.error_bound = 1e-9;
  Bytes archive = compress(data.const_view(), opt);
  const std::size_t n = data.count();

  std::printf("--- (a) planner kind (conservative model) ---\n");
  TableReporter ta({"target(rel)", "DP bpv", "greedy bpv", "uniform bpv"});
  for (double rel : {1e-3, 1e-4, 1e-5, 1e-6, 1e-7}) {
    std::vector<std::string> row = {TableReporter::sci(rel, 1)};
    for (auto kind : {PlannerKind::kDynamicProgramming, PlannerKind::kGreedy,
                      PlannerKind::kUniform}) {
      MemorySource src{Bytes(archive)};
      ReaderConfig cfg;
      cfg.planner = kind;
      ProgressiveReader<double> reader(src, cfg);
      auto st = reader.retrieve(Request::error_bound(rel * range));
      row.push_back(TableReporter::num(st.bitrate, 4));
    }
    ta.row(row);
  }

  std::printf("\n--- (b) error model ---\n");
  TableReporter tb({"target(rel)", "conserv bpv", "conserv ok", "paper bpv",
                    "paper ok"});
  for (double rel : {1e-3, 1e-4, 1e-5, 1e-6, 1e-7}) {
    std::vector<std::string> row = {TableReporter::sci(rel, 1)};
    for (auto model : {ErrorModel::kConservative, ErrorModel::kPaper}) {
      MemorySource src{Bytes(archive)};
      ReaderConfig cfg;
      cfg.error_model = model;
      ProgressiveReader<double> reader(src, cfg);
      auto st = reader.retrieve(Request::error_bound(rel * range));
      double actual = 0;
      for (std::size_t i = 0; i < n; ++i) {
        actual = std::max(actual, std::abs(data[i] - reader.data()[i]));
      }
      row.push_back(TableReporter::num(st.bitrate, 4));
      row.push_back(actual <= rel * range * (1 + 1e-9) ? "yes" : "VIOLATED");
    }
    tb.row(row);
  }
  std::printf("\nExpected shape: DP <= greedy <= uniform bytes at every "
              "target; the paper model loads slightly less but can violate "
              "the target on 3-D sweeps, which is why kConservative is the "
              "default.\n");
  return 0;
}
