#!/usr/bin/env bash
# Repository lint gate: custom lint + clang-format + clang-tidy.
#
#   scripts/check.sh [--require-tools] [--build-dir DIR]
#
# Exit 0 only when every stage that ran is clean.  The custom lint always
# runs (plain bash + grep, no external tools).  clang-format and clang-tidy
# run when installed; when missing they are skipped with a notice — pass
# --require-tools (the CI tidy job does) to turn a missing tool into a
# failure, so the blocking job can never silently degrade.
#
# clang-tidy needs a compile database: any configured preset exports
# compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON globally);
# --build-dir selects one explicitly, otherwise the first configured build
# directory wins.
set -u -o pipefail

cd "$(dirname "$0")/.."

require_tools=0
build_dir=""
while [ $# -gt 0 ]; do
  case "$1" in
    --require-tools) require_tools=1 ;;
    --build-dir) shift; build_dir="${1:?--build-dir needs an argument}" ;;
    *) echo "usage: scripts/check.sh [--require-tools] [--build-dir DIR]" >&2
       exit 2 ;;
  esac
  shift
done

failures=0
fail() { echo "FAIL: $*" >&2; failures=$((failures + 1)); }
note() { echo "  -- $*"; }

# Tracked C++ sources; the lint and format sets are identical.
mapfile -t sources < <(git ls-files \
  'src/**/*.hpp' 'src/**/*.cpp' 'src/*.hpp' \
  'tests/*.cpp' 'tests/*.hpp' 'bench/*.cpp' 'bench/*.hpp' 'examples/*.cpp')
mapfile -t headers < <(git ls-files 'src/**/*.hpp' 'src/*.hpp' 'tests/*.hpp' 'bench/*.hpp')
mapfile -t src_files < <(git ls-files 'src/**/*.hpp' 'src/**/*.cpp' 'src/*.hpp')

# ---- stage 1: custom lint ------------------------------------------------
echo "[1/3] custom lint (${#src_files[@]} src files, ${#headers[@]} headers)"

# Every header is include-once via #pragma once (no include guards).
for h in "${headers[@]}"; do
  if ! grep -q '^#pragma once$' "$h"; then
    fail "$h: missing '#pragma once'"
  fi
done

# Strips // line comments so commentary about `new` or mutexes never trips
# the lint.  (Block comments are rare in this tree and reviewed by eye.)
strip_comments() { sed 's@//.*$@@' "$1"; }

# No naked `new`: ownership goes through containers and make_unique.  The
# word boundary keeps `renew`/`new_size` etc. out.
for f in "${src_files[@]}"; do
  while IFS=: read -r line _; do
    fail "$f:$line: naked 'new' (use std::make_unique or a container)"
  done < <(strip_comments "$f" \
           | grep -nE '(^|[^[:alnum:]_."])new[[:space:]]+[[:alnum:]_:<(]' \
           | cut -d: -f1 | sed 's/$/:/')
done

# All locking goes through the annotated wrappers in src/util/sync.hpp so
# the Clang thread-safety analysis sees every acquire/release.
for f in "${src_files[@]}"; do
  case "$f" in src/util/sync.hpp) continue ;; esac
  while IFS=: read -r line _; do
    fail "$f:$line: raw synchronization primitive (use util/sync.hpp: Mutex/LockGuard/CondVar)"
  done < <(strip_comments "$f" \
           | grep -nE 'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)|pthread_[a-z]' \
           | cut -d: -f1 | sed 's/$/:/')
done

# Raw socket plumbing stays confined to src/net/: no other library code may
# include the socket headers (and so can never grow a second, unframed wire
# path).  <sys/mman.h> in io/mmap_source.cpp is storage, not sockets, and
# tests/bench/examples sit outside src_files on purpose — forged-frame tests
# need raw sends.
for f in "${src_files[@]}"; do
  case "$f" in src/net/*) continue ;; esac
  while IFS=: read -r line _; do
    fail "$f:$line: socket header outside src/net/ (all wire I/O goes through net/wire.hpp)"
  done < <(strip_comments "$f" \
           | grep -nE '#[[:space:]]*include[[:space:]]*<(sys/socket\.h|sys/un\.h|netinet/[^>]+|arpa/[^>]+|netdb\.h)>' \
           | cut -d: -f1 | sed 's/$/:/')
done

# Raw I/O syscalls (::read/::write/::send/::recv) stay behind the two seams
# that verify and fault-inject them: net/wire.cpp (FrameChannel, the only
# wire path) and the src/io/ storage sources.  Anywhere else they would
# bypass the integrity checks and the FaultInjector hooks that make failure
# handling testable.
for f in "${src_files[@]}"; do
  case "$f" in src/net/wire.cpp | src/io/*) continue ;; esac
  while IFS=: read -r line _; do
    fail "$f:$line: direct ::read/::write/::send/::recv (route raw I/O through net/wire.cpp or src/io/ sources)"
  done < <(strip_comments "$f" \
           | grep -nE '(^|[^:[:alnum:]_])::(read|write|send|recv)[[:space:]]*\(' \
           | cut -d: -f1 | sed 's/$/:/')
done

# NOLINT policy: only the narrow check-scoped forms are allowed —
# NOLINT(check), NOLINTNEXTLINE(check), NOLINTBEGIN(check)/NOLINTEND(check).
for f in "${sources[@]}"; do
  while IFS=: read -r line _; do
    fail "$f:$line: bare NOLINT (use NOLINT(check-name) with a reason)"
  done < <(grep -nE 'NOLINT(NEXTLINE|BEGIN|END)?([^(A-Z]|$)' "$f" \
           | cut -d: -f1 | sed 's/$/:/')
done

[ "$failures" -eq 0 ] && echo "  custom lint: clean"

# ---- stage 2: clang-format ----------------------------------------------
if command -v clang-format > /dev/null 2>&1; then
  echo "[2/3] clang-format --dry-run --Werror (${#sources[@]} files)"
  if ! clang-format --dry-run --Werror "${sources[@]}"; then
    fail "clang-format reports formatting drift (run: clang-format -i \$(git ls-files '*.cpp' '*.hpp'))"
  else
    echo "  clang-format: clean"
  fi
else
  if [ "$require_tools" -eq 1 ]; then
    fail "clang-format not installed but --require-tools was given"
  else
    note "clang-format not installed: format check skipped"
  fi
fi

# ---- stage 3: clang-tidy -------------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  if [ -z "$build_dir" ]; then
    for d in build/release build/tsan build/asan build/openmp build; do
      if [ -f "$d/compile_commands.json" ]; then build_dir="$d"; break; fi
    done
  fi
  if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
    fail "clang-tidy installed but no compile_commands.json found (configure any preset first, e.g. cmake --preset release)"
  else
    mapfile -t tidy_files < <(git ls-files 'src/**/*.cpp')
    echo "[3/3] clang-tidy over ${#tidy_files[@]} translation units (db: $build_dir)"
    jobs="$(nproc 2> /dev/null || echo 2)"
    if command -v run-clang-tidy > /dev/null 2>&1; then
      if ! run-clang-tidy -p "$build_dir" -quiet -j "$jobs" "${tidy_files[@]}"; then
        fail "clang-tidy reports findings"
      fi
    else
      tidy_rc=0
      printf '%s\n' "${tidy_files[@]}" \
        | xargs -P "$jobs" -n 4 clang-tidy -p "$build_dir" --quiet || tidy_rc=$?
      [ "$tidy_rc" -ne 0 ] && fail "clang-tidy reports findings"
    fi
    [ "$failures" -eq 0 ] && echo "  clang-tidy: clean"
  fi
else
  if [ "$require_tools" -eq 1 ]; then
    fail "clang-tidy not installed but --require-tools was given"
  else
    note "clang-tidy not installed: tidy check skipped"
  fi
fi

if [ "$failures" -gt 0 ]; then
  echo "check.sh: $failures finding(s)" >&2
  exit 1
fi
echo "check.sh: all stages clean"
