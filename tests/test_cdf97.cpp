#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"
#include "wavelet/cdf97.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

TEST(Cdf97Line, RoundTripVariousLengths) {
  Rng rng(1);
  for (std::size_t n : {2u, 3u, 4u, 5u, 7u, 8u, 16u, 17u, 100u, 101u}) {
    std::vector<double> orig(n), work(n), scratch(n);
    for (auto& v : orig) v = rng.uniform(-10, 10);
    work = orig;
    cdf97_detail::forward_line(work.data(), n, 1, scratch.data());
    cdf97_detail::inverse_line(work.data(), n, 1, scratch.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(work[i], orig[i], 1e-10) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Cdf97Line, StridedAccess) {
  Rng rng(2);
  const std::size_t n = 32, stride = 7;
  std::vector<double> buf(n * stride, -99.0), scratch(n);
  std::vector<double> orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    orig[i] = rng.uniform(-1, 1);
    buf[i * stride] = orig[i];
  }
  cdf97_detail::forward_line(buf.data(), n, stride, scratch.data());
  cdf97_detail::inverse_line(buf.data(), n, stride, scratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(buf[i * stride], orig[i], 1e-10);
  }
  // Elements between strides untouched.
  EXPECT_EQ(buf[1], -99.0);
}

TEST(Cdf97Line, ConcentratesEnergyInLowBand) {
  // A smooth signal must put most energy into the first (low-band) half.
  const std::size_t n = 64;
  std::vector<double> v(n), scratch(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(0.2 * static_cast<double>(i));
  cdf97_detail::forward_line(v.data(), n, 1, scratch.data());
  double low = 0, high = 0;
  for (std::size_t i = 0; i < n / 2; ++i) low += v[i] * v[i];
  for (std::size_t i = n / 2; i < n; ++i) high += v[i] * v[i];
  EXPECT_GT(low, 100 * high);
}

class Cdf97Shapes : public ::testing::TestWithParam<Dims> {};

TEST_P(Cdf97Shapes, MultiLevelRoundTrip) {
  const Dims dims = GetParam();
  auto field = smooth_field(dims, 3, 0.2);
  NdArray<double> work(dims, field.vector());
  const unsigned levels = cdf97_levels(dims);
  cdf97_forward(work.view(), levels);
  cdf97_inverse(work.view(), levels);
  EXPECT_LE(linf(field.const_view(), work.vector()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Cdf97Shapes,
                         ::testing::Values(Dims{64}, Dims{100}, Dims{31, 33},
                                           Dims{64, 64}, Dims{16, 16, 16},
                                           Dims{25, 30, 35}, Dims{50, 20, 41}),
                         [](const auto& info) {
                           std::string s = info.param.to_string();
                           for (auto& c : s) {
                             if (c == 'x') c = '_';
                           }
                           return s;
                         });

TEST(Cdf97, LevelsHeuristic) {
  EXPECT_GE(cdf97_levels(Dims{8}), 1u);
  EXPECT_GE(cdf97_levels(Dims{256, 256, 256}), 4u);
  EXPECT_LE(cdf97_levels(Dims{256, 256, 256}), 8u);
  // Limited by the smallest dimension.
  EXPECT_EQ(cdf97_levels(Dims{1024, 16}), 1u);
}

}  // namespace
}  // namespace ipcomp
