#include <gtest/gtest.h>

#include "ipcomp.hpp"
#include "interp/sweep.hpp"
#include "test_util.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

struct CompressCase {
  Dims dims;
  double eb;
  InterpKind kind;
};

class CompressorRoundTrip : public ::testing::TestWithParam<CompressCase> {};

TEST_P(CompressorRoundTrip, FullRetrievalWithinErrorBound) {
  const auto& c = GetParam();
  auto field = smooth_field(c.dims, /*seed=*/7, /*noise=*/0.05);
  Options opt;
  opt.error_bound = c.eb;
  opt.relative = false;
  opt.interp = c.kind;
  Bytes archive = compress(field.const_view(), opt);

  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), c.eb * (1 + 1e-9));
  EXPECT_LE(st.guaranteed_error, c.eb * (1 + 1e-9));
  EXPECT_EQ(reader.data().size(), c.dims.count());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompressorRoundTrip,
    ::testing::Values(
        CompressCase{Dims{1000}, 1e-3, InterpKind::kCubic},
        CompressCase{Dims{1000}, 1e-3, InterpKind::kLinear},
        CompressCase{Dims{1}, 1e-3, InterpKind::kCubic},
        CompressCase{Dims{7}, 1e-6, InterpKind::kCubic},
        CompressCase{Dims{64, 64}, 1e-4, InterpKind::kCubic},
        CompressCase{Dims{63, 65}, 1e-4, InterpKind::kLinear},
        CompressCase{Dims{17, 5}, 1e-8, InterpKind::kCubic},
        CompressCase{Dims{24, 24, 24}, 1e-4, InterpKind::kCubic},
        CompressCase{Dims{10, 30, 20}, 1e-2, InterpKind::kLinear},
        CompressCase{Dims{31, 17, 9}, 1e-6, InterpKind::kCubic},
        CompressCase{Dims{6, 6, 6, 6}, 1e-4, InterpKind::kCubic}),
    [](const auto& info) {
      std::string s = info.param.dims.to_string() + "_" +
                      (info.param.kind == InterpKind::kCubic ? "cubic" : "linear") +
                      "_eb" + std::to_string(static_cast<int>(-std::log10(info.param.eb)));
      for (auto& ch : s) {
        if (ch == 'x') ch = '_';
      }
      return s;
    });

TEST(Compressor, RelativeErrorBound) {
  auto field = smooth_field(Dims{40, 40}, 3);
  Options opt;
  opt.error_bound = 1e-4;
  opt.relative = true;
  const double range = testutil::value_range(field.const_view());
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-4 * range * (1 + 1e-9));
  EXPECT_NEAR(reader.header().eb, 1e-4 * range, 1e-12 * range);
}

TEST(Compressor, SmoothDataCompressesWell) {
  auto field = smooth_field(Dims{64, 64, 64}, 5, /*noise=*/0.0);
  Options opt;
  opt.error_bound = 1e-4;
  Bytes archive = compress(field.const_view(), opt);
  double ratio = static_cast<double>(field.count() * sizeof(double)) /
                 static_cast<double>(archive.size());
  EXPECT_GT(ratio, 20.0);  // smooth fields must compress far below raw size
}

TEST(Compressor, CubicExactOnCubicPolynomials) {
  // Cubic spline interpolation reproduces cubic polynomials exactly at
  // interior points, so a polynomial field compresses to almost nothing with
  // the cubic kernel while the linear kernel pays for curvature everywhere.
  Dims dims{48, 48, 48};
  NdArray<double> field(dims);
  auto strides = dims.strides();
  for (std::size_t i = 0; i < dims.count(); ++i) {
    double x = static_cast<double>(i / strides[0]) / 48.0;
    double y = static_cast<double>((i / strides[1]) % 48) / 48.0;
    double z = static_cast<double>(i % 48) / 48.0;
    field[i] = x * x * x - 2 * y * y * y + 0.5 * z * z * z + x * y * z;
  }
  Options copt, lopt;
  copt.error_bound = lopt.error_bound = 1e-6;
  copt.interp = InterpKind::kCubic;
  lopt.interp = InterpKind::kLinear;
  auto ca = compress(field.const_view(), copt);
  auto la = compress(field.const_view(), lopt);
  EXPECT_LT(ca.size(), la.size());
}

TEST(Compressor, FloatInput) {
  auto field = smooth_field<float>(Dims{32, 32, 32}, 7, 0.01f);
  Options opt;
  opt.error_bound = 1e-3;
  opt.relative = false;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<float> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-3 * (1 + 1e-6));
}

TEST(Compressor, TypeMismatchRejected) {
  auto field = smooth_field(Dims{16, 16}, 8);
  Bytes archive = compress(field.const_view(), {});
  MemorySource src(std::move(archive));
  EXPECT_THROW(ProgressiveReader<float> reader(src), std::runtime_error);
}

TEST(Compressor, ConstantField) {
  NdArray<double> field(Dims{20, 20});
  for (std::size_t i = 0; i < field.count(); ++i) field[i] = 42.0;
  Options opt;
  opt.error_bound = 1e-6;
  Bytes archive = compress(field.const_view(), opt);
  EXPECT_LT(archive.size(), 2000u);  // nearly nothing to store
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-6);
}

TEST(Compressor, ExtremeValuesBecomeOutliers) {
  auto field = smooth_field(Dims{32, 32}, 9);
  field[100] = 1e18;   // far outside the quantizable range for a tight eb
  field[500] = -1e18;
  Options opt;
  opt.error_bound = 1e-9;
  opt.relative = false;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  // Outliers are stored exactly.
  EXPECT_EQ(reader.data()[100], 1e18);
  EXPECT_EQ(reader.data()[500], -1e18);
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-9 * (1 + 1e-9));
  std::uint64_t outliers = 0;
  for (auto& l : reader.header().levels) outliers += l.outlier_count;
  EXPECT_GE(outliers, 2u);
}

TEST(Compressor, InvalidErrorBoundRejected) {
  auto field = smooth_field(Dims{8, 8}, 10);
  Options opt;
  opt.error_bound = 0.0;
  EXPECT_THROW(compress(field.const_view(), opt), std::invalid_argument);
  opt.error_bound = -1.0;
  EXPECT_THROW(compress(field.const_view(), opt), std::invalid_argument);
}

TEST(Compressor, HeaderDescribesArchive) {
  auto field = smooth_field(Dims{40, 30, 20}, 11);
  Options opt;
  opt.error_bound = 1e-5;
  opt.interp = InterpKind::kCubic;
  opt.prefix_bits = 2;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  const Header& h = reader.header();
  EXPECT_EQ(h.dims, Dims({40, 30, 20}));
  EXPECT_EQ(h.dtype, DataType::kFloat64);
  EXPECT_EQ(h.interp, InterpKind::kCubic);
  EXPECT_EQ(h.prefix_bits, 2u);
  EXPECT_EQ(h.levels.size(), LevelStructure::analyze(h.dims).num_levels);
  std::size_t total = 0;
  for (auto& l : h.levels) total += l.count;
  EXPECT_EQ(total, field.count());
}

TEST(Compressor, HeaderForgedLevelCountRejected) {
  Header h;
  h.dtype = DataType::kFloat64;
  h.dims = Dims{8};
  h.eb = 1e-6;
  h.interp = InterpKind::kCubic;
  h.prefix_bits = 0;
  h.data_min = 0.0;
  h.data_max = 1.0;
  Bytes raw = h.serialize();
  // With zero levels the level-count varint is the final byte; replace it
  // with a huge ten-byte varint.  parse() must reject the count instead of
  // letting it drive a multi-terabyte resize().
  ASSERT_EQ(raw.back(), 0x00);
  raw.pop_back();
  raw.insert(raw.end(), 9, 0xFF);
  raw.push_back(0x01);
  EXPECT_THROW(Header::parse(raw), std::runtime_error);
}

TEST(Compressor, HeaderSerializationRoundTrip) {
  Header h;
  h.dtype = DataType::kFloat32;
  h.dims = Dims{12, 34};
  h.eb = 3.5e-7;
  h.interp = InterpKind::kLinear;
  h.prefix_bits = 3;
  h.data_min = -2.5;
  h.data_max = 9.75;
  h.levels.resize(2);
  h.levels[0].count = 300;
  h.levels[0].progressive = true;
  h.levels[0].n_planes = 5;
  h.levels[0].loss = {0, 1, 2, 5, 10, 21};
  h.levels[0].outlier_count = 3;
  h.levels[1].count = 108;
  h.levels[1].progressive = false;
  h.levels[1].n_planes = 0;
  h.levels[1].loss = {0};
  Bytes raw = h.serialize();
  Header back = Header::parse(raw);
  EXPECT_EQ(back.dtype, h.dtype);
  EXPECT_EQ(back.dims, h.dims);
  EXPECT_EQ(back.eb, h.eb);
  EXPECT_EQ(back.interp, h.interp);
  EXPECT_EQ(back.prefix_bits, h.prefix_bits);
  EXPECT_EQ(back.data_min, h.data_min);
  EXPECT_EQ(back.data_max, h.data_max);
  ASSERT_EQ(back.levels.size(), 2u);
  EXPECT_EQ(back.levels[0].loss, h.levels[0].loss);
  EXPECT_EQ(back.levels[0].outlier_count, 3u);
  EXPECT_FALSE(back.levels[1].progressive);
}

TEST(Compressor, PrefixBitsVariantsRoundTrip) {
  auto field = smooth_field(Dims{32, 32, 16}, 12, 0.02);
  for (unsigned prefix : {0u, 1u, 2u, 3u}) {
    Options opt;
    opt.error_bound = 1e-4;
    opt.prefix_bits = prefix;
    Bytes archive = compress(field.const_view(), opt);
    MemorySource src(std::move(archive));
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::full());
    double range = testutil::value_range(field.const_view());
    EXPECT_LE(linf(field.const_view(), reader.data()), 1e-4 * range * (1 + 1e-9))
        << "prefix=" << prefix;
  }
}

TEST(Compressor, FileBackedArchive) {
  auto field = smooth_field(Dims{32, 32}, 13);
  Options opt;
  opt.error_bound = 1e-5;
  Bytes archive = compress(field.const_view(), opt);
  std::string path = ::testing::TempDir() + "/ipcomp_roundtrip.ipc";
  write_file(path, archive);

  FileSource src(path);
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  double range = testutil::value_range(field.const_view());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-5 * range * (1 + 1e-9));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ipcomp
