#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/archive.hpp"
#include "metrics/report.hpp"

namespace ipcomp {
namespace {

TEST(Report, NumberFormatting) {
  EXPECT_EQ(TableReporter::num(3.14159, 3), "3.14");
  EXPECT_EQ(TableReporter::num(42.0, 4), "42");
  EXPECT_EQ(TableReporter::sci(0.000123, 2), "1.23e-04");
}

TEST(Report, CsvMirrorsRows) {
  std::string path = ::testing::TempDir() + "/ipcomp_report.csv";
  {
    TableReporter table({"a", "b"}, path);
    table.row({"1", "x"});
    table.row({"2", "y"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,x\n2,y\n");
  std::remove(path.c_str());
}

TEST(Report, NoCsvWhenPathEmpty) {
  // Just exercises the console-only path.
  TableReporter table({"col"});
  table.row({"value"});
}

}  // namespace
}  // namespace ipcomp
