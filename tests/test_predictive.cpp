#include <gtest/gtest.h>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/entropy.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

std::vector<std::uint32_t> quantization_like_values(std::size_t n, std::uint64_t seed) {
  // Codes that look like interpolation residuals: small, zero-centered.
  Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    std::int64_t q = static_cast<std::int64_t>(std::llround(rng.normal() * 30.0));
    x = negabinary_encode(q);
  }
  return v;
}

TEST(Predictive, TransformIsInvolution) {
  auto values = quantization_like_values(5000, 1);
  auto planes = extract_all_planes(values);
  for (unsigned k = 0; k < 12; ++k) {
    for (unsigned prefix : {1u, 2u, 3u}) {
      Bytes enc = predictive_encode_plane(values, planes[k], k, prefix);
      // Applying the transform again (with the same higher planes) restores.
      Bytes dec = predictive_encode_plane(values, enc, k, prefix);
      EXPECT_EQ(dec, planes[k]) << "k=" << k << " prefix=" << prefix;
    }
  }
}

TEST(Predictive, TopPlaneUnchangedByPrediction) {
  // Plane 31 has no prefix planes: prediction is zero.
  auto values = quantization_like_values(1000, 2);
  auto planes = extract_all_planes(values);
  Bytes enc = predictive_encode_plane(values, planes[31], 31, 2);
  EXPECT_EQ(enc, planes[31]);
}

TEST(Predictive, DecodingWithPartialCodesMatches) {
  // During retrieval the decoder applies the transform against codes that
  // hold only planes above k — exactly the bits prediction uses.
  auto values = quantization_like_values(3000, 3);
  auto planes = extract_all_planes(values);
  const unsigned prefix = 2;
  std::vector<std::uint32_t> partial(values.size(), 0);
  for (unsigned k = kPlaneCount; k-- > 0;) {
    Bytes enc = predictive_encode_plane(values, planes[k], k, prefix);
    Bytes dec = predictive_encode_plane(partial, enc, k, prefix);
    EXPECT_EQ(dec, planes[k]) << "k=" << k;
    deposit_plane(partial, dec, k);
  }
  EXPECT_EQ(partial, values);
}

TEST(Predictive, ReducesEntropyOnCorrelatedPlanes) {
  // Table 2 of the paper: predictive coding lowers bit entropy of the plane
  // stream on quantization-code-like data.
  auto values = quantization_like_values(100000, 4);
  auto planes = extract_all_planes(values);
  double h_orig = 0.0, h_pred = 0.0;
  std::size_t counted = 0;
  for (unsigned k = 0; k < 16; ++k) {
    Bytes enc = predictive_encode_plane(values, planes[k], k, 2);
    h_orig += bit_entropy(planes[k], values.size());
    h_pred += bit_entropy(enc, values.size());
    ++counted;
  }
  EXPECT_LT(h_pred, h_orig);
}

TEST(Predictive, GenericTransformMatchesValueBased) {
  auto values = quantization_like_values(2048, 5);
  auto planes = extract_all_planes(values);
  unsigned k = 5;
  std::span<const std::uint8_t> prefixes[2] = {
      {planes[k + 1].data(), planes[k + 1].size()},
      {planes[k + 2].data(), planes[k + 2].size()},
  };
  Bytes out(planes[k].size());
  predictive_transform(planes[k], prefixes, 2, out);
  Bytes expected = predictive_encode_plane(values, planes[k], k, 2);
  EXPECT_EQ(out, expected);
}

TEST(Predictive, ZeroPrefixIsIdentity) {
  auto values = quantization_like_values(512, 6);
  auto planes = extract_all_planes(values);
  Bytes out(planes[3].size());
  predictive_transform(planes[3], nullptr, 0, out);
  EXPECT_EQ(out, planes[3]);
}

}  // namespace
}  // namespace ipcomp
