// End-to-end byte-identity goldens for the bitplane engine and the codec
// orchestration stage.
//
// Archives (header + every segment, including the serialized per-level loss
// tables) and progressively reconstructed fields are hashed and compared to
// constants captured from the pre-refactor scalar pipeline.  Any change to
// quantization, negabinary coding, loss accounting, plane extraction or
// deposit order shows up here as a hash mismatch, so the word-parallel
// engine is pinned to be a pure speedup.
//
// Every case runs under two codec policies:
//   * kTryAll must reproduce the pre-orchestration constants bit-for-bit —
//     archive bytes AND reconstructions — pinning that archives written by
//     earlier releases are exactly reproducible and decode byte-identically.
//   * kProbe (the new default) gets its own archive constants, but its
//     reconstruction hashes must equal the try-all ones at every request:
//     routing is a size/speed decision, never a fidelity one.
//
// The synthetic fields use only exact integer arithmetic and single-rounded
// double products (no libm transcendentals), so the inputs are bit-identical
// on every platform.  Set IPCOMP_GOLDEN_PRINT=1 to print the current hashes
// instead of asserting (used to regenerate the table when a format change is
// intentional).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/compressor.hpp"
#include "core/progressive_reader.hpp"
#include "util/ndarray.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t hash_values(const std::vector<T>& v) {
  return fnv1a(v.data(), v.size() * sizeof(T));
}

/// Smooth quadratic + seeded noise, built from exact integer arithmetic and
/// one rounding per element: reproducible bit-for-bit across platforms.
template <typename T>
NdArray<T> golden_field(const Dims& dims, std::uint64_t seed) {
  NdArray<T> out(dims);
  Rng rng(seed);
  const auto strides = dims.strides();
  for (std::size_t i = 0; i < dims.count(); ++i) {
    std::int64_t q = 0;
    std::size_t rem = i;
    for (std::size_t d = 0; d < dims.rank(); ++d) {
      const auto c = static_cast<std::int64_t>(rem / strides[d]);
      rem %= strides[d];
      q += (d == 0) ? c * c : (d == 1 ? 3 * c : -2 * c);
    }
    const double noise =
        static_cast<double>(static_cast<std::int64_t>(rng.next_u64() >> 40)) *
        0x1.0p-24;  // exact: 24-bit integer scaled by a power of two
    out[i] = static_cast<T>(static_cast<double>(q) * 0.01 + noise);
  }
  return out;
}

struct GoldenHashes {
  std::uint64_t archive;
  std::uint64_t coarse;  // after retrieve(Request::error_bound(1e3 * eb))
  std::uint64_t mid;     // after retrieve(Request::error_bound(8 * eb))
  std::uint64_t full;    // after retrieve(Request::full())
};

template <typename T>
GoldenHashes run_case(const Dims& dims, BackendId be, std::size_t block_side,
                      std::size_t threshold, std::uint64_t seed,
                      CodecPolicy codec) {
  auto field = golden_field<T>(dims, seed);
  Options opt;
  opt.backend = be;
  opt.block_side = block_side;
  opt.progressive_threshold = threshold;
  opt.error_bound = 1e-4;
  opt.codec = codec;
  // The constants pin the pre-v4 container bytes; the v4 integrity wrapper
  // is covered by Golden.IntegrityV4Transparent below.
  opt.integrity = false;
  Bytes archive = compress(field.const_view(), opt);

  GoldenHashes g{};
  g.archive = fnv1a(archive.data(), archive.size());
  MemorySource src{Bytes(archive)};
  ProgressiveReader<T> reader(src);
  const double eb = reader.compression_eb();
  reader.retrieve(Request::error_bound(1e3 * eb));
  g.coarse = hash_values(reader.data());
  reader.retrieve(Request::error_bound(8 * eb));
  g.mid = hash_values(reader.data());
  reader.retrieve(Request::full());
  g.full = hash_values(reader.data());
  return g;
}

bool print_mode() { return std::getenv("IPCOMP_GOLDEN_PRINT") != nullptr; }

void check(const char* name, const GoldenHashes& got, const GoldenHashes& want) {
  if (print_mode()) {
    std::printf("  // %s\n  {0x%016llxull, 0x%016llxull, 0x%016llxull, "
                "0x%016llxull},\n",
                name, static_cast<unsigned long long>(got.archive),
                static_cast<unsigned long long>(got.coarse),
                static_cast<unsigned long long>(got.mid),
                static_cast<unsigned long long>(got.full));
    return;
  }
  EXPECT_EQ(got.archive, want.archive) << name << ": archive bytes changed";
  EXPECT_EQ(got.coarse, want.coarse) << name << ": coarse reconstruction changed";
  EXPECT_EQ(got.mid, want.mid) << name << ": mid reconstruction changed";
  EXPECT_EQ(got.full, want.full) << name << ": full reconstruction changed";
}

// Hashes captured from the pre-refactor (PR 4) scalar bitplane pipeline
// with the try-everything codec stage — the bytes every pre-orchestration
// release wrote.  The try-all policy must keep reproducing them forever.
// Regenerate with IPCOMP_GOLDEN_PRINT=1 only for an intentional format change.
constexpr GoldenHashes kInterpV1{0xa13f829c7531238bull, 0x943ee1de74eef67aull,
                                 0x24ce5fd5878279efull, 0x24ce5fd5878279efull};
constexpr GoldenHashes kInterpV2{0x4d12bf6580816645ull, 0x9e57fc302de37467ull,
                                 0x1c2abe8c7bff1e20ull, 0x1c2abe8c7bff1e20ull};
constexpr GoldenHashes kInterpV2F32{0x9db679dd49fd7763ull, 0x6a4eea016481fbf2ull,
                                    0x6a4eea016481fbf2ull, 0x6a4eea016481fbf2ull};
constexpr GoldenHashes kWaveletV3Whole{0xc08c501fb2ebe313ull,
                                       0x9e78d17f1b6f75b7ull,
                                       0x2de0de32b398dc3aull,
                                       0xa94e768995894462ull};
constexpr GoldenHashes kWaveletV3Block{0x2a677ed253ba40dbull,
                                       0x02a7a1a2499a3390ull,
                                       0x95d956859728dfd5ull,
                                       0x8926ba20565e533aull};

// Archive hashes under the probe-routed default policy.  The reconstruction
// hashes are NOT new constants: a probe-policy case must reproduce the
// try-all reconstructions exactly (same decode at every request), which
// each test asserts by reusing the legacy constants' decode fields.
constexpr std::uint64_t kInterpV1ProbeArchive = 0x804531af03a6bdcfull;
constexpr std::uint64_t kInterpV2ProbeArchive = 0x8b86671dbf178deeull;
constexpr std::uint64_t kInterpV2F32ProbeArchive = 0xf5fb583307d20e69ull;
constexpr std::uint64_t kWaveletV3WholeProbeArchive = 0x1e6dccaabbcd88d9ull;
constexpr std::uint64_t kWaveletV3BlockProbeArchive = 0xedd47ae5a904bbcbull;

/// Probe-policy expectation: new archive bytes, identical reconstructions.
constexpr GoldenHashes with_archive(std::uint64_t archive,
                                    const GoldenHashes& legacy) {
  return {archive, legacy.coarse, legacy.mid, legacy.full};
}

struct GoldenCase {
  const char* name;
  Dims dims;
  BackendId backend;
  std::size_t block_side;
  std::size_t threshold;
  std::uint64_t seed;
  GoldenHashes legacy;        // kTryAll: pre-orchestration bytes
  std::uint64_t probe_archive;  // kProbe: new bytes, same reconstructions
};

template <typename T>
void run_golden(const GoldenCase& c) {
  check((std::string(c.name) + " [tryall]").c_str(),
        run_case<T>(c.dims, c.backend, c.block_side, c.threshold, c.seed,
                    CodecPolicy::kTryAll),
        c.legacy);
  check((std::string(c.name) + " [probe]").c_str(),
        run_case<T>(c.dims, c.backend, c.block_side, c.threshold, c.seed,
                    CodecPolicy::kProbe),
        with_archive(c.probe_archive, c.legacy));
}

TEST(Golden, InterpV1Whole) {
  run_golden<double>({"interp v1 whole-field 40^3 f64", Dims{40, 40, 40},
                      BackendId::kInterp, 0, 4096, 11, kInterpV1,
                      kInterpV1ProbeArchive});
}

TEST(Golden, InterpV2Block) {
  run_golden<double>({"interp v2 block16 40^3 f64", Dims{40, 40, 40},
                      BackendId::kInterp, 16, 256, 12, kInterpV2,
                      kInterpV2ProbeArchive});
}

TEST(Golden, InterpV2BlockF32) {
  run_golden<float>({"interp v2 block16 64x48 f32", Dims{64, 48},
                     BackendId::kInterp, 16, 256, 13, kInterpV2F32,
                     kInterpV2F32ProbeArchive});
}

TEST(Golden, WaveletV3Whole) {
  run_golden<double>({"wavelet v3 whole-field 24^3 f64", Dims{24, 24, 24},
                      BackendId::kWavelet, 0, 256, 14, kWaveletV3Whole,
                      kWaveletV3WholeProbeArchive});
}

TEST(Golden, WaveletV3Block) {
  run_golden<double>({"wavelet v3 block16 24^3 f64", Dims{24, 24, 24},
                      BackendId::kWavelet, 16, 256, 15, kWaveletV3Block,
                      kWaveletV3BlockProbeArchive});
}

// Region retrieval drives the per-block multi-plane deposit path with
// interleaved base/plane fetches; pin its output too.
TEST(Golden, InterpV2Region) {
  auto field = golden_field<double>(Dims{40, 40, 40}, 16);
  Options opt;
  opt.block_side = 16;
  opt.progressive_threshold = 256;
  opt.error_bound = 1e-4;
  opt.integrity = false;  // constants pin the pre-v4 container bytes
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  const double eb = reader.compression_eb();
  std::array<std::size_t, kMaxRank> lo{}, hi{};
  for (int i = 0; i < 3; ++i) hi[i] = 20;
  reader.execute(reader.plan(Request::error_bound(16 * eb).within(lo, hi)));
  const std::uint64_t h_region = hash_values(reader.data());
  reader.retrieve(Request::full());
  const std::uint64_t h_full = hash_values(reader.data());
  if (print_mode()) {
    std::printf("  // region: {region, full}\n  {0x%016llxull, 0x%016llxull},\n",
                static_cast<unsigned long long>(h_region),
                static_cast<unsigned long long>(h_full));
    return;
  }
  EXPECT_EQ(h_region, 0x8e3910b7264a48eaull) << "region reconstruction changed";
  EXPECT_EQ(h_full, 0x2ae74f8883dd3250ull)
      << "full-after-region reconstruction changed";
}

// The v4 integrity wrapper (the default) must be transparent: identical
// reconstructions at every request, same base version, bigger container (the
// checksum column), pre-v4 payload bytes preserved inside.
TEST(Golden, IntegrityV4Transparent) {
  auto field = golden_field<double>(Dims{40, 40, 40}, 12);
  Options legacy;
  legacy.block_side = 16;
  legacy.progressive_threshold = 256;
  legacy.error_bound = 1e-4;
  legacy.integrity = false;
  Options v4 = legacy;
  v4.integrity = true;
  Bytes legacy_bytes = compress(field.const_view(), legacy);
  Bytes v4_bytes = compress(field.const_view(), v4);
  ASSERT_NE(fnv1a(legacy_bytes.data(), legacy_bytes.size()),
            fnv1a(v4_bytes.data(), v4_bytes.size()));
  ASSERT_GT(v4_bytes.size(), legacy_bytes.size());

  MemorySource legacy_src{Bytes(legacy_bytes)};
  MemorySource v4_src{Bytes(v4_bytes)};
  ASSERT_EQ(legacy_src.version(), v4_src.version());
  ProgressiveReader<double> legacy_reader(legacy_src);
  ProgressiveReader<double> v4_reader(v4_src);
  const double eb = legacy_reader.compression_eb();
  for (const Request& req : {Request::error_bound(1e3 * eb),
                             Request::error_bound(8 * eb), Request::full()}) {
    legacy_reader.retrieve(req);
    v4_reader.retrieve(req);
    EXPECT_EQ(hash_values(legacy_reader.data()), hash_values(v4_reader.data()))
        << "v4 wrapper changed a reconstruction";
  }
}

}  // namespace
}  // namespace ipcomp
