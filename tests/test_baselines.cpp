#include <gtest/gtest.h>

#include "baselines/ipcomp_adapter.hpp"
#include "baselines/multi_fidelity.hpp"
#include "baselines/residual.hpp"
#include "baselines/sz3.hpp"
#include "mgard/mgard.hpp"
#include "test_util.hpp"
#include "transform/zfp.hpp"
#include "wavelet/sperr.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

// ------------------------------------------------------------------- SZ3 --

TEST(Sz3, RoundTripWithinBound) {
  auto field = smooth_field(Dims{40, 30, 20}, 1, 0.1);
  Sz3Compressor sz3;
  for (double eb : {1e-2, 1e-4, 1e-6}) {
    Bytes archive = sz3.compress(field.const_view(), eb);
    auto recon = sz3.decompress(archive);
    EXPECT_LE(linf(field.const_view(), recon), eb * (1 + 1e-9)) << eb;
  }
}

TEST(Sz3, CompressesSmoothData) {
  auto field = smooth_field(Dims{64, 64, 64}, 2, 0.0);
  Sz3Compressor sz3;
  Bytes archive = sz3.compress(field.const_view(), 1e-4);
  EXPECT_GT(static_cast<double>(field.count() * 8) / archive.size(), 20.0);
}

TEST(Sz3, OutliersStoredExactly) {
  auto field = smooth_field(Dims{32, 32}, 3);
  field[77] = 1e17;
  Sz3Compressor sz3;
  Bytes archive = sz3.compress(field.const_view(), 1e-8);
  auto recon = sz3.decompress(archive);
  EXPECT_EQ(recon[77], 1e17);
  EXPECT_LE(linf(field.const_view(), recon), 1e-8 * (1 + 1e-9));
}

TEST(Sz3, ArchiveDims) {
  auto field = smooth_field(Dims{13, 17}, 4);
  Sz3Compressor sz3;
  Bytes archive = sz3.compress(field.const_view(), 1e-3);
  EXPECT_EQ(Sz3Compressor::archive_dims(archive), Dims({13, 17}));
}

TEST(Sz3, LinearInterpVariant) {
  auto field = smooth_field(Dims{30, 30, 30}, 5, 0.05);
  Sz3Compressor sz3(InterpKind::kLinear);
  Bytes archive = sz3.compress(field.const_view(), 1e-5);
  EXPECT_LE(linf(field.const_view(), sz3.decompress(archive)), 1e-5 * (1 + 1e-9));
}

// ----------------------------------------------------------------- SZ3-M --

TEST(Sz3M, RetrievalPicksMatchingStage) {
  auto field = smooth_field(Dims{32, 32, 16}, 6, 0.05);
  MultiFidelityCompressor m(std::make_shared<Sz3Compressor>(), "SZ3-M");
  const double eb = 1e-7;
  Bytes archive = m.compress(field.const_view(), eb);
  for (double target : {1e-6, 1e-4, 1e-2}) {
    auto r = m.retrieve_error(archive, target);
    EXPECT_LE(linf(field.const_view(), r.data), target * (1 + 1e-9)) << target;
    EXPECT_EQ(r.passes, 1);
    EXPECT_LE(r.guaranteed_error, target);
    EXPECT_LT(r.bytes_loaded, archive.size());
  }
}

TEST(Sz3M, ArchiveMuchLargerThanSingleOutput) {
  auto field = smooth_field(Dims{32, 32, 16}, 7, 0.05);
  Sz3Compressor sz3;
  MultiFidelityCompressor m(std::make_shared<Sz3Compressor>(), "SZ3-M");
  const double eb = 1e-7;
  Bytes single = sz3.compress(field.const_view(), eb);
  Bytes multi = m.compress(field.const_view(), eb);
  // Storing nine fidelities costs far more than one (its Fig. 5 weakness).
  EXPECT_GT(multi.size(), single.size() * 3 / 2);
}

TEST(Sz3M, ByteBudgetedRetrieval) {
  auto field = smooth_field(Dims{32, 32, 16}, 8, 0.05);
  MultiFidelityCompressor m(std::make_shared<Sz3Compressor>(), "SZ3-M");
  Bytes archive = m.compress(field.const_view(), 1e-7);
  auto full = m.retrieve_error(archive, 1e-7);
  auto r = m.retrieve_bytes(archive, full.bytes_loaded / 2);
  EXPECT_LE(r.bytes_loaded, full.bytes_loaded / 2);
  // A budgeted retrieval is coarser but valid.
  EXPECT_LE(linf(field.const_view(), r.data), r.guaranteed_error * (1 + 1e-9));
}

TEST(Sz3M, FullDecompressMatchesTightestStage) {
  auto field = smooth_field(Dims{24, 24, 12}, 9, 0.05);
  MultiFidelityCompressor m(std::make_shared<Sz3Compressor>(), "SZ3-M");
  const double eb = 1e-6;
  Bytes archive = m.compress(field.const_view(), eb);
  EXPECT_LE(linf(field.const_view(), m.decompress(archive)), eb * (1 + 1e-9));
}

// --------------------------------------------------------------- residual --

class ResidualBases : public ::testing::TestWithParam<std::string> {};

TEST_P(ResidualBases, ProgressiveLadderHonorsAnchors) {
  auto field = smooth_field(Dims{32, 32, 16}, 10, 0.05);
  auto rc = make_residual(GetParam(), 5);
  const double eb = 1e-6;
  Bytes archive = rc->compress(field.const_view(), eb);
  int prev_passes = 0;
  for (double target : {1e-2, 1e-4, 1e-6}) {
    auto r = rc->retrieve_error(archive, target);
    EXPECT_LE(linf(field.const_view(), r.data), target * (1 + 1e-9))
        << GetParam() << " @ " << target;
    EXPECT_GE(r.passes, prev_passes);  // tighter targets need more passes
    prev_passes = r.passes;
  }
  // The tightest target needs every stage: one decompression per stage.
  EXPECT_EQ(prev_passes, 5);
}

INSTANTIATE_TEST_SUITE_P(Bases, ResidualBases,
                         ::testing::Values("SZ3", "ZFP", "SPERR"),
                         [](const auto& info) { return info.param; });

TEST(Residual, FullDecompressWithinBound) {
  auto field = smooth_field(Dims{24, 24, 24}, 11, 0.05);
  ResidualCompressor rc(std::make_shared<Sz3Compressor>(), "SZ3-R");
  const double eb = 1e-7;
  Bytes archive = rc.compress(field.const_view(), eb);
  EXPECT_LE(linf(field.const_view(), rc.decompress(archive)), eb * (1 + 1e-9));
}

TEST(Residual, ByteBudgetPrefixLoading) {
  auto field = smooth_field(Dims{32, 32, 16}, 12, 0.05);
  ResidualCompressor rc(std::make_shared<Sz3Compressor>(), "SZ3-R");
  Bytes archive = rc.compress(field.const_view(), 1e-7);
  auto full = rc.retrieve_error(archive, 1e-7);
  auto half = rc.retrieve_bytes(archive, full.bytes_loaded / 2);
  EXPECT_LE(half.bytes_loaded, full.bytes_loaded / 2);
  EXPECT_LT(half.passes, full.passes);
  EXPECT_LE(linf(field.const_view(), half.data), half.guaranteed_error * (1 + 1e-9));
}

TEST(Residual, MorePassesThanIpcompForSameTarget) {
  // The structural drawback the paper highlights: residual retrieval at the
  // tightest fidelity executes one decompression per stage.
  auto field = smooth_field(Dims{32, 32, 16}, 13, 0.05);
  const double eb = 1e-7;
  ResidualCompressor rc(std::make_shared<Sz3Compressor>(), "SZ3-R");
  IpcompAdapter ip;
  Bytes ra = rc.compress(field.const_view(), eb);
  Bytes ia = ip.compress(field.const_view(), eb);
  auto r = rc.retrieve_error(ra, eb);
  auto i = ip.retrieve_error(ia, eb);
  EXPECT_EQ(i.passes, 1);
  EXPECT_EQ(r.passes, 9);
}

// ----------------------------------------------------------------- PMGARD --

TEST(Mgard, DecomposeRecomposeExact) {
  auto field = smooth_field(Dims{30, 20, 10}, 14, 0.1);
  auto coeffs = mgard_decompose(field.const_view());
  auto recon = mgard_recompose(field.dims(), coeffs);
  EXPECT_LE(linf(field.const_view(), recon), 1e-12);
}

TEST(Mgard, CoefficientsShrinkTowardFineLevels) {
  // Smooth data: hierarchical-basis coefficients decay as levels refine.
  auto field = smooth_field(Dims{64, 64}, 15, 0.0);
  auto coeffs = mgard_decompose(field.const_view());
  auto max_abs = [](const std::vector<double>& v) {
    double m = 0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
  };
  ASSERT_GE(coeffs.size(), 3u);
  EXPECT_LT(max_abs(coeffs[0]), max_abs(coeffs[coeffs.size() - 2]));
}

TEST(Pmgard, NearLosslessFullRetrieval) {
  auto field = smooth_field(Dims{32, 32, 16}, 16, 0.05);
  PmgardCompressor pm;
  Bytes archive = pm.compress(field.const_view(), 1e-6);
  auto recon = pm.decompress(archive);
  const double range = testutil::value_range(field.const_view());
  EXPECT_LE(linf(field.const_view(), recon), range * 1e-7);
}

TEST(Pmgard, ProgressiveErrorTargets) {
  auto field = smooth_field(Dims{32, 32, 16}, 17, 0.05);
  PmgardCompressor pm;
  Bytes archive = pm.compress(field.const_view(), 1e-6);
  std::size_t prev_bytes = 0;
  for (double target : {1e-1, 1e-3, 1e-5}) {
    auto r = pm.retrieve_error(archive, target);
    EXPECT_LE(linf(field.const_view(), r.data), target * (1 + 1e-9)) << target;
    // Tighter targets require at least as much data.
    EXPECT_GE(r.bytes_loaded, prev_bytes);
    prev_bytes = r.bytes_loaded;
  }
}

TEST(Pmgard, ByteBudgetedRetrieval) {
  auto field = smooth_field(Dims{32, 32, 16}, 18, 0.05);
  PmgardCompressor pm;
  Bytes archive = pm.compress(field.const_view(), 1e-6);
  auto half = pm.retrieve_bytes(archive, archive.size() / 2);
  EXPECT_LE(half.bytes_loaded, archive.size() / 2);
  EXPECT_LE(linf(field.const_view(), half.data), half.guaranteed_error * (1 + 1e-9));
}

// ------------------------------------------------------------------ SPERR --

TEST(Sperr, RoundTripWithinBound) {
  auto field = smooth_field(Dims{40, 40, 20}, 19, 0.1);
  SperrCompressor sp;
  for (double eb : {1e-2, 1e-5}) {
    Bytes archive = sp.compress(field.const_view(), eb);
    auto recon = sp.decompress(archive);
    EXPECT_LE(linf(field.const_view(), recon), eb * (1 + 1e-9)) << eb;
  }
}

TEST(Sperr, CompressesSmoothData) {
  auto field = smooth_field(Dims{64, 64, 32}, 20, 0.0);
  SperrCompressor sp;
  Bytes archive = sp.compress(field.const_view(), 1e-4);
  EXPECT_GT(static_cast<double>(field.count() * 8) / archive.size(), 10.0);
}

// --------------------------------------------------------------- adapter --

TEST(Lineups, AllCompressorsRoundTrip) {
  auto field = smooth_field(Dims{20, 20, 20}, 21, 0.05);
  const double eb = 1e-4;
  for (auto& c : speed_lineup()) {
    Bytes archive = c->compress(field.const_view(), eb);
    auto recon = c->decompress(archive);
    const double tol = c->name() == "PMGARD"
                           ? testutil::value_range(field.const_view()) * 1e-7
                           : eb * (1 + 1e-9);
    EXPECT_LE(linf(field.const_view(), recon), tol) << c->name();
  }
}

TEST(Lineups, NamesMatchPaper) {
  std::vector<std::string> names;
  for (auto& c : evaluation_lineup()) names.push_back(c->name());
  EXPECT_EQ(names, (std::vector<std::string>{"IPComp", "SZ3-M", "SZ3-R", "ZFP-R",
                                             "PMGARD"}));
}

}  // namespace
}  // namespace ipcomp
