// End-to-end segment integrity: the v4 checksum column and the trust
// boundaries that consult it.  Byte-flip property tests assert that a
// corrupted payload surfaces as a typed IntegrityError at the layer that
// caught it (kStorage for Memory/File/Mmap reads, kCache for SegmentCache
// inserts) and never as silently wrong reconstruction; pre-v4 containers
// stay readable with one warning per process.  The kWire boundary is
// exercised in tests/test_net.cpp where a live daemon is available.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/mmap_source.hpp"
#include "ipcomp.hpp"
#include "serve/cache.hpp"
#include "test_util.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

using testutil::smooth_field;

Bytes make_archive(const NdArray<double>& field, bool integrity) {
  Options opt;
  opt.error_bound = 1e-6;
  opt.relative = false;
  opt.block_side = 8;
  opt.progressive_threshold = 256;  // real bitplane segments at this size
  opt.integrity = integrity;
  return compress(field.const_view(), opt);
}

std::string write_temp(const Bytes& blob, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  write_file(path, blob);
  return path;
}

// Must stay the first test in this binary: the pre-v4 warning fires once per
// process, so no earlier test may open a pre-v4 container.
TEST(Integrity, PreV4ContainerWarnsOncePerProcess) {
  auto field = smooth_field(Dims{12, 10, 8}, 11, 0.05);
  const Bytes legacy = make_archive(field, /*integrity=*/false);

  ::testing::internal::CaptureStderr();
  MemorySource first{Bytes(legacy)};
  MemorySource second{Bytes(legacy)};
  const std::string err = ::testing::internal::GetCapturedStderr();

  const std::string needle = "predates per-segment checksums";
  const std::size_t at = err.find(needle);
  ASSERT_NE(at, std::string::npos) << err;
  // Once, not once per open.
  EXPECT_EQ(err.find(needle, at + 1), std::string::npos) << err;

  // The data still reads — unverified, with no checksum column to consult.
  ProgressiveReader<double> reader(first);
  reader.retrieve(Request::full());
  EXPECT_LE(testutil::linf(field.const_view(), reader.data()), 1e-6);
  for (const SegmentId& id : second.segment_ids()) {
    EXPECT_FALSE(second.segment_checksum(id).has_value());
  }
}

TEST(Integrity, V4ContainerRoundTripsAndExposesChecksums) {
  auto field = smooth_field(Dims{20, 16, 12}, 12, 0.05);
  const Bytes blob = make_archive(field, /*integrity=*/true);

  const ArchiveIndex idx = ArchiveIndex::parse({blob.data(), blob.size()},
                                               blob.size());
  EXPECT_EQ(idx.container, kArchiveV4);
  EXPECT_TRUE(idx.has_checksums);
  EXPECT_GE(idx.version, kArchiveV1);
  EXPECT_LE(idx.version, kArchiveV3);

  MemorySource src{Bytes(blob)};
  // The wrapper is transparent above the source layer: version() reports the
  // base version the reader dispatch keys off.
  EXPECT_EQ(src.version(), idx.version);
  const std::vector<SegmentId> ids = src.segment_ids();
  ASSERT_FALSE(ids.empty());
  for (const SegmentId& id : ids) {
    const auto recorded = src.segment_checksum(id);
    ASSERT_TRUE(recorded.has_value());
    const Bytes payload = src.read_segment(id);
    EXPECT_EQ(checksum64(payload.data(), payload.size()), *recorded);
  }

  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(testutil::linf(field.const_view(), reader.data()), 1e-6);
}

TEST(Integrity, V4AndLegacyDecodeIdentically) {
  auto field = smooth_field(Dims{16, 14, 10}, 13, 0.08);
  const Bytes v4 = make_archive(field, true);
  const Bytes legacy = make_archive(field, false);
  ASSERT_GT(v4.size(), legacy.size());  // the checksum column costs bytes

  MemorySource a{Bytes(v4)}, b{Bytes(legacy)};
  ProgressiveReader<double> ra(a), rb(b);
  for (const Request& req :
       {Request::error_bound(1e-3), Request::bytes(2000), Request::full()}) {
    ra.retrieve(req);
    rb.retrieve(req);
    ASSERT_EQ(ra.data(), rb.data());
  }
}

TEST(Integrity, Checksum64Properties) {
  Rng rng(99);
  Bytes buf(4096);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());

  const std::uint64_t base = checksum64(buf.data(), buf.size());
  EXPECT_EQ(checksum64(buf.data(), buf.size()), base);  // deterministic
  EXPECT_NE(checksum64(buf.data(), buf.size(), 1), base);  // seed-sensitive
  EXPECT_NE(checksum64(buf.data(), buf.size() - 1), base);  // length-sensitive
  // Single-bit avalanche at every lane phase of the word-parallel kernel.
  for (std::size_t at : {std::size_t{0}, std::size_t{7}, std::size_t{31},
                         std::size_t{32}, std::size_t{4095}}) {
    buf[at] ^= 0x10;
    EXPECT_NE(checksum64(buf.data(), buf.size()), base) << "byte " << at;
    buf[at] ^= 0x10;
  }
  EXPECT_EQ(checksum64(buf.data(), buf.size()), base);
  EXPECT_EQ(checksum64(buf.data(), 0), checksum64(buf.data() + 1, 0));  // empty
}

/// Flip one bit of one payload byte in a copy of `blob`; returns the id of
/// the corrupted segment.
SegmentId flip_payload_bit(Bytes& blob, const ArchiveIndex& idx,
                           std::size_t victim, std::size_t byte_jitter) {
  auto it = idx.entries.begin();
  std::advance(it, victim % idx.entries.size());
  const ArchiveIndex::Entry& e = it->second;
  blob[e.offset + byte_jitter % e.length] ^= 1u << (byte_jitter % 8);
  return SegmentId::from_key(e.key, idx.version);
}

// Property test: any single flipped payload bit, in any segment, raises
// IntegrityError at the storage layer naming that segment — never a wrong
// reconstruction, never a crash.
TEST(Integrity, ByteFlipRaisesStorageIntegrityErrorForThatSegment) {
  auto field = smooth_field(Dims{20, 16, 12}, 14, 0.05);
  const Bytes pristine = make_archive(field, true);
  const ArchiveIndex idx =
      ArchiveIndex::parse({pristine.data(), pristine.size()}, pristine.size());
  ASSERT_GT(idx.entries.size(), 4u);

  Rng rng(1414);
  for (int trial = 0; trial < 24; ++trial) {
    Bytes blob = pristine;
    const SegmentId victim = flip_payload_bit(
        blob, idx, static_cast<std::size_t>(rng.next_u64()),
        static_cast<std::size_t>(rng.next_u64()));

    MemorySource src{std::move(blob)};
    try {
      src.read_segment(victim);
      FAIL() << "corrupted segment delivered without IntegrityError";
    } catch (const IntegrityError& e) {
      EXPECT_EQ(e.layer(), IntegrityError::Layer::kStorage);
      EXPECT_EQ(e.segment(), victim);
      EXPECT_NE(e.expected(), e.actual());
      EXPECT_EQ(e.expected(), *src.segment_checksum(victim));
    }
    // Sibling segments are unaffected — verification is per segment.
    for (const SegmentId& id : src.segment_ids()) {
      if (id == victim) continue;
      EXPECT_NO_THROW(src.read_segment(id));
      break;  // one sibling per trial keeps the property test fast
    }
  }
}

TEST(Integrity, FileAndMmapSourcesVerifyEveryPhysicalRead) {
  auto field = smooth_field(Dims{16, 14, 10}, 15, 0.05);
  Bytes blob = make_archive(field, true);
  const ArchiveIndex idx =
      ArchiveIndex::parse({blob.data(), blob.size()}, blob.size());

  const SegmentId victim = flip_payload_bit(blob, idx, 3, 17);
  const std::string path = write_temp(blob, "ipc_integrity_flip.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  for (SegmentSource* src : {static_cast<SegmentSource*>(&fs),
                             static_cast<SegmentSource*>(&ms)}) {
    try {
      src->read_segment(victim);
      FAIL() << "corrupted segment delivered without IntegrityError";
    } catch (const IntegrityError& e) {
      EXPECT_EQ(e.layer(), IntegrityError::Layer::kStorage);
      EXPECT_EQ(e.segment(), victim);
    }
    // Batched fetches are all-or-nothing: the corrupted member poisons the
    // batch and no bytes are charged for undelivered payloads.
    const std::size_t before = src->stats().bytes_read;
    std::vector<SegmentId> all = src->segment_ids();
    EXPECT_THROW(src->read_many(all), IntegrityError);
    EXPECT_EQ(src->stats().bytes_read, before);
  }
}

TEST(Integrity, UnknownChecksumAlgorithmRejected) {
  auto field = smooth_field(Dims{12, 10, 8}, 16, 0.05);
  Bytes blob = make_archive(field, true);
  // v4 layout: magic(4) | container u32(4) | base u32(4) | algo u8.
  blob[12] = 0x7F;
  EXPECT_THROW(MemorySource{std::move(blob)}, std::runtime_error);
}

TEST(Integrity, CacheInsertIsATrustBoundary) {
  auto field = smooth_field(Dims{12, 10, 8}, 17, 0.05);
  const Bytes blob = make_archive(field, true);
  MemorySource src{Bytes(blob)};
  const std::vector<SegmentId> ids = src.segment_ids();
  ASSERT_GE(ids.size(), 2u);

  SegmentCache cache(1 << 20);
  const SegmentId good_id = ids[0];
  const CacheKey key{.archive = 7,
                     .segment = good_id.key(src.version())};
  Bytes payload = src.read_segment(good_id);
  const std::uint64_t expected = *src.segment_checksum(good_id);

  // A verified insert caches normally.
  cache.put(key, payload, expected, src.version());
  Bytes out;
  EXPECT_TRUE(cache.get(key, out));
  EXPECT_EQ(out, payload);

  // A corrupted payload is rejected at the boundary and never cached.
  const CacheKey key2{.archive = 7, .segment = ids[1].key(src.version())};
  Bytes bad = src.read_segment(ids[1]);
  bad[bad.size() / 2] ^= 0x40;
  try {
    cache.put(key2, bad, *src.segment_checksum(ids[1]), src.version());
    FAIL() << "corrupted payload accepted into the cache";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.layer(), IntegrityError::Layer::kCache);
    EXPECT_EQ(e.segment(), ids[1]);
  }
  EXPECT_FALSE(cache.get(key2, out));
}

// The storage fault decorator composed with the cache boundary: a payload
// corrupted *between* the physical read and the insert (FaultySource flips
// it after MemorySource verified it) cannot be replayed to later sessions.
TEST(Integrity, FaultySourceCorruptionCaughtBeforeCaching) {
  auto field = smooth_field(Dims{12, 10, 8}, 18, 0.05);
  const Bytes blob = make_archive(field, true);

  auto plan = std::make_shared<FaultPlan>(5);
  plan->corrupt_read_at(0, /*byte=*/5, /*bit=*/2);
  FaultySource src(std::make_unique<MemorySource>(Bytes(blob)), plan);

  const std::vector<SegmentId> ids = src.segment_ids();
  ASSERT_FALSE(ids.empty());
  const SegmentId id = ids[0];
  // The decorator forwards the checksum column...
  const auto expected = src.segment_checksum(id);
  ASSERT_TRUE(expected.has_value());
  // ...and delivers the corrupted payload (the fault models rot past the
  // storage boundary), which the cache insert then refuses.
  Bytes corrupted = src.read_segment(id);
  EXPECT_NE(checksum64(corrupted.data(), corrupted.size()), *expected);

  SegmentCache cache(1 << 20);
  const CacheKey key{.archive = 1, .segment = id.key(src.version())};
  try {
    cache.put(key, corrupted, expected, src.version());
    FAIL() << "rotted payload accepted into the cache";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.layer(), IntegrityError::Layer::kCache);
    EXPECT_EQ(e.segment(), id);
    EXPECT_EQ(e.expected(), *expected);
  }

  // fail-after-N storage faults surface as read errors, not bad data.
  auto failing = std::make_shared<FaultPlan>(6);
  failing->fail_reads_after(0);
  FaultySource dead(std::make_unique<MemorySource>(Bytes(blob)), failing);
  EXPECT_THROW(dead.read_segment(id), std::runtime_error);
}

}  // namespace
}  // namespace ipcomp
