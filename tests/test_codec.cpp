// Per-segment codec orchestration: per-codec round-trip properties (every
// policy, every method, incl. the bitpack sparse-index codec on its edge
// shapes), probe/routing expectations, and strict decode validation (forged
// tags, truncated payloads, wrong sizes).
#include <gtest/gtest.h>

#include "coding/bitpack.hpp"
#include "coding/codec.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

constexpr CodecPolicy kPolicies[] = {CodecPolicy::kProbe, CodecPolicy::kTryAll,
                                     CodecPolicy::kRle};

void round_trip(const Bytes& input) {
  for (CodecPolicy policy : kPolicies) {
    Bytes enc = codec_compress({input.data(), input.size()}, policy);
    // Expansion is bounded at the tag byte under every policy.
    EXPECT_LE(enc.size(), input.size() + 1) << to_string(policy);
    Bytes dec = codec_decompress({enc.data(), enc.size()}, input.size());
    EXPECT_EQ(dec, input) << to_string(policy);
  }
}

CodecMethod method_of(const Bytes& enc) {
  return static_cast<CodecMethod>(enc.at(0));
}

TEST(Codec, EmptyInput) { round_trip({}); }

TEST(Codec, AllZeroUsesEmptyMethod) {
  Bytes in(4096, 0);
  for (CodecPolicy policy : kPolicies) {
    Bytes enc = codec_compress({in.data(), in.size()}, policy);
    EXPECT_EQ(enc.size(), 1u);
    EXPECT_EQ(method_of(enc), CodecMethod::kEmpty);
  }
  round_trip(in);
}

TEST(Codec, SparseStaysTiny) {
  Bytes in(8192, 0);
  in[100] = 1;
  in[5000] = 2;
  for (CodecPolicy policy : kPolicies) {
    Bytes enc = codec_compress({in.data(), in.size()}, policy);
    EXPECT_LT(enc.size(), 32u) << to_string(policy);
  }
  // Two isolated set bits in 64 Kbit: the probe must route to bitpack.
  EXPECT_EQ(method_of(codec_compress({in.data(), in.size()})),
            CodecMethod::kBitpack);
  round_trip(in);
}

TEST(Codec, RandomFallsBackToRaw) {
  Rng rng(77);
  Bytes in(4096);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  for (CodecPolicy policy : kPolicies) {
    Bytes enc = codec_compress({in.data(), in.size()}, policy);
    EXPECT_LE(enc.size(), in.size() + 1) << to_string(policy);
  }
  // Uniform random bytes are ~8 bits/byte: routed raw without an encode.
  EXPECT_EQ(method_of(codec_compress({in.data(), in.size()})),
            CodecMethod::kRaw);
  round_trip(in);
}

TEST(Codec, RepetitiveCompressesWell) {
  // 6/7 zero bytes: below the RLE routing cutoff, so the probe must fall
  // through to LZH and match try-all's size; the RLE-only legacy policy pays
  // ~2 bytes per nonzero byte here, which is its documented trade.
  Bytes in;
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<std::uint8_t>(i % 7 ? 0 : 9));
  EXPECT_LT(codec_compress({in.data(), in.size()}, CodecPolicy::kProbe).size(),
            600u);
  EXPECT_LT(codec_compress({in.data(), in.size()}, CodecPolicy::kTryAll).size(),
            600u);
  round_trip(in);
}

TEST(Codec, StructuredDenseRoutesToLzh) {
  // Every byte nonzero (RLE can't win), strongly repetitive (entropy far
  // below the raw cutoff): the probe's dense branch must pick LZH.
  Bytes in;
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<std::uint8_t>(i % 7 + 1));
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_EQ(method_of(enc), CodecMethod::kLzh);
  EXPECT_LT(enc.size(), 600u);
  round_trip(in);
}

TEST(Codec, MostlyZeroRoutesToRle) {
  // 1/8 of bytes nonzero but clustered 8 set bits each: too dense per byte
  // for bitpack, zero-dominated enough for RLE.
  Bytes in(8192, 0);
  for (std::size_t i = 0; i < in.size(); i += 8) in[i] = 0xff;
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_EQ(method_of(enc), CodecMethod::kRle);
  round_trip(in);
}

TEST(Codec, WrongSizeThrows) {
  // Two set bits, one beyond the forged 50-byte bound, so every routed
  // method (bitpack under probe, RLE under the legacy policies) detects the
  // size mismatch.
  Bytes in(100, 0);
  in[4] = 1;
  in[60] = 1;
  for (CodecPolicy policy : kPolicies) {
    Bytes enc = codec_compress({in.data(), in.size()}, policy);
    EXPECT_THROW(codec_decompress({enc.data(), enc.size()}, 50),
                 std::runtime_error);
  }
}

TEST(Codec, EmptyBufferThrows) {
  Bytes empty;
  EXPECT_THROW(codec_decompress({empty.data(), empty.size()}, 4), std::runtime_error);
}

TEST(Codec, ForgedTagThrows) {
  Bytes in(256, 0);
  in[7] = 3;
  Bytes enc = codec_compress({in.data(), in.size()});
  for (unsigned tag = 5; tag < 256; tag += 25) {
    Bytes forged = enc;
    forged[0] = static_cast<std::uint8_t>(tag);
    EXPECT_THROW(codec_decompress({forged.data(), forged.size()}, in.size()),
                 std::runtime_error)
        << "tag " << tag;
  }
}

TEST(Codec, ProbeCountsExactly) {
  Bytes in(1001, 0);
  in[3] = 0x81;    // 2 bits
  in[500] = 1;     // 1 bit
  in[1000] = 0xff; // 8 bits (tail byte past the last full word)
  CodecProbe p = codec_probe({in.data(), in.size()});
  EXPECT_EQ(p.bits, 8008u);
  EXPECT_EQ(p.ones, 11u);
  EXPECT_EQ(p.nonzero_bytes, 3u);
}

TEST(Codec, FuzzRoundTrip) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes in(rng.uniform_u64(5000));
    double density = rng.uniform();
    for (auto& b : in) {
      b = rng.uniform() < density ? static_cast<std::uint8_t>(rng.next_u64()) : 0;
    }
    round_trip(in);
  }
}

// ---- bitpack codec -------------------------------------------------------

void bitpack_round_trip(const Bytes& in) {
  Bytes enc = bitpack_encode({in.data(), in.size()});
  Bytes dec = bitpack_decode({enc.data(), enc.size()}, in.size());
  EXPECT_EQ(dec, in);
}

TEST(Bitpack, EmptyInput) { bitpack_round_trip({}); }

TEST(Bitpack, AllZero) { bitpack_round_trip(Bytes(10000, 0)); }

TEST(Bitpack, AllOnes) { bitpack_round_trip(Bytes(3000, 0xff)); }

TEST(Bitpack, SparseCostsAboutOneBytePerBit) {
  Bytes in(1 << 18, 0);  // 4 chunks
  Rng rng(9);
  std::size_t bits = 0;
  for (int i = 0; i < 512; ++i) {
    std::size_t at = rng.uniform_u64(in.size());
    if (in[at] == 0) ++bits;
    in[at] = static_cast<std::uint8_t>(1u << (rng.next_u64() & 7));
  }
  Bytes enc = bitpack_encode({in.data(), in.size()});
  // Gaps average 512 bytes (~12 bits) => 2-byte varints, plus chunk framing.
  EXPECT_LT(enc.size(), bits * 2 + 16);
  bitpack_round_trip(in);
}

TEST(Bitpack, DenseStillRoundTrips) {
  Rng rng(10);
  Bytes in(70000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  bitpack_round_trip(in);
}

TEST(Bitpack, TailSizesRoundTrip) {
  // Sizes straddling word and chunk boundaries, with the last byte set so
  // the final in-chunk position is exercised.
  for (std::size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u,
                        (1u << 16) - 1, 1u << 16, (1u << 16) + 1}) {
    Bytes in(n, 0);
    in.front() = 0x80;
    in.back() |= 0x01;
    bitpack_round_trip(in);
  }
}

TEST(Bitpack, TruncatedPayloadThrows) {
  Bytes in(5000, 0);
  for (std::size_t i = 0; i < in.size(); i += 97) in[i] = 1;
  Bytes enc = bitpack_encode({in.data(), in.size()});
  for (std::size_t cut : {enc.size() - 1, enc.size() / 2, std::size_t{1}}) {
    Bytes trunc(enc.begin(), enc.begin() + cut);
    EXPECT_THROW(bitpack_decode({trunc.data(), trunc.size()}, in.size()),
                 std::runtime_error)
        << "cut " << cut;
  }
}

TEST(Bitpack, TrailingBytesThrow) {
  Bytes in(100, 0);
  in[50] = 2;
  Bytes enc = bitpack_encode({in.data(), in.size()});
  enc.push_back(0);
  EXPECT_THROW(bitpack_decode({enc.data(), enc.size()}, in.size()),
               std::runtime_error);
  Bytes empty_with_junk{0x01};
  EXPECT_THROW(bitpack_decode({empty_with_junk.data(), 1}, 0),
               std::runtime_error);
}

TEST(Bitpack, OutOfRangePositionThrows) {
  // A forged chunk whose gap varint names a bit past the chunk end.
  ByteWriter w;
  ByteWriter chunk;
  chunk.varint(80);  // only 10 bytes = 80 bits of output: positions 0..79
  Bytes payload = chunk.take();
  w.varint(payload.size());
  w.bytes(payload);
  Bytes forged = w.take();
  EXPECT_THROW(bitpack_decode({forged.data(), forged.size()}, 10),
               std::runtime_error);
}

TEST(Bitpack, FuzzSparseRoundTrip) {
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes in(rng.uniform_u64(200000));
    const std::size_t n_bits = rng.uniform_u64(200);
    for (std::size_t i = 0; i < n_bits && !in.empty(); ++i) {
      in[rng.uniform_u64(in.size())] |=
          static_cast<std::uint8_t>(1u << (rng.next_u64() & 7));
    }
    bitpack_round_trip(in);
  }
}

}  // namespace
}  // namespace ipcomp
