#include <gtest/gtest.h>

#include "coding/codec.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

void round_trip(const Bytes& input) {
  Bytes enc = codec_compress({input.data(), input.size()});
  Bytes dec = codec_decompress({enc.data(), enc.size()}, input.size());
  EXPECT_EQ(dec, input);
}

TEST(Codec, EmptyInput) { round_trip({}); }

TEST(Codec, AllZeroUsesEmptyMethod) {
  Bytes in(4096, 0);
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_EQ(enc.size(), 1u);
  EXPECT_EQ(enc[0], static_cast<std::uint8_t>(CodecMethod::kEmpty));
  round_trip(in);
}

TEST(Codec, SparseUsesRleOrLzh) {
  Bytes in(8192, 0);
  in[100] = 1;
  in[5000] = 2;
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_LT(enc.size(), 32u);
  round_trip(in);
}

TEST(Codec, RandomFallsBackToRaw) {
  Rng rng(77);
  Bytes in(4096);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_LE(enc.size(), in.size() + 1);
  round_trip(in);
}

TEST(Codec, RepetitivePrefersLzh) {
  Bytes in;
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<std::uint8_t>(i % 7 ? 0 : 9));
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_LT(enc.size(), 600u);
  round_trip(in);
}

TEST(Codec, LzhDisabled) {
  Bytes in;
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<std::uint8_t>(i));
  Bytes enc = codec_compress({in.data(), in.size()}, /*try_lzh=*/false);
  round_trip(in);
  Bytes dec = codec_decompress({enc.data(), enc.size()}, in.size());
  EXPECT_EQ(dec, in);
}

TEST(Codec, WrongSizeThrows) {
  Bytes in(100, 0);
  in[4] = 1;
  Bytes enc = codec_compress({in.data(), in.size()});
  EXPECT_THROW(codec_decompress({enc.data(), enc.size()}, 50), std::runtime_error);
}

TEST(Codec, EmptyBufferThrows) {
  Bytes empty;
  EXPECT_THROW(codec_decompress({empty.data(), empty.size()}, 4), std::runtime_error);
}

TEST(Codec, FuzzRoundTrip) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes in(rng.uniform_u64(5000));
    double density = rng.uniform();
    for (auto& b : in) {
      b = rng.uniform() < density ? static_cast<std::uint8_t>(rng.next_u64()) : 0;
    }
    round_trip(in);
  }
}

}  // namespace
}  // namespace ipcomp
