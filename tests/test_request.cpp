// Plan/execute retrieval API: Request/RetrievalPlan semantics, region
// requests with fidelity targets, plan purity/prediction exactness, stale-
// plan rejection, byte-accounting invariants, and FileSource read coalescing
// through the reader — across both backends and block modes (v1/v2/v3).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <numeric>

#include "ipcomp.hpp"
#include "test_util.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

struct Combo {
  BackendId backend;
  std::size_t block_side;
  const char* tag;
};

class RequestApi : public ::testing::TestWithParam<Combo> {
 protected:
  static Bytes make_archive(const NdArray<double>& field, double eb_abs) {
    Options opt;
    opt.error_bound = eb_abs;
    opt.relative = false;
    opt.progressive_threshold = 256;
    opt.backend = GetParam().backend;
    opt.block_side = GetParam().block_side;
    return compress(field.const_view(), opt);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Combos, RequestApi,
    ::testing::Values(Combo{BackendId::kInterp, 0, "interp_v1"},
                      Combo{BackendId::kInterp, 32, "interp_v2_b32"},
                      Combo{BackendId::kWavelet, 0, "wavelet_v3"},
                      Combo{BackendId::kWavelet, 32, "wavelet_v3_b32"}),
    [](const auto& info) { return std::string(info.param.tag); });

void expect_stats_eq(const RetrievalStats& a, const RetrievalStats& b) {
  EXPECT_EQ(a.bytes_new, b.bytes_new);
  EXPECT_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.guaranteed_error, b.guaranteed_error);
  EXPECT_EQ(a.bitrate, b.bitrate);
}

// retrieve(req) must equal the explicit plan+execute split: same planned
// segment list (same fetches in the same order), same stats, same
// reconstruction, same cumulative bytes.
TEST_P(RequestApi, RetrieveEqualsPlanPlusExecute) {
  auto field = smooth_field(Dims{40, 40, 24}, 41, 0.05);
  Bytes archive = make_archive(field, 1e-8);

  MemorySource one_call_src{Bytes(archive)};
  ProgressiveReader<double> one_call(one_call_src);
  MemorySource split_src{Bytes(archive)};
  ProgressiveReader<double> split(split_src);

  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{20, 20, 24, 0};
  const std::vector<Request> steps = {
      Request::error_bound(1e-3), Request::bitrate(4.0),
      Request::bytes(15000),      Request::full().within(lo, hi),
      Request::full(),
  };
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Request& req = steps[i];
    // Both readers are in the same state, so their plans must agree exactly.
    RetrievalPlan op = one_call.plan(req);
    RetrievalPlan sp = split.plan(req);
    EXPECT_EQ(op.segments, sp.segments) << "step " << i;
    EXPECT_EQ(op.bytes_new, sp.bytes_new) << "step " << i;

    RetrievalStats os = one_call.retrieve(req);
    RetrievalStats ss = split.execute(sp);
    expect_stats_eq(os, ss);
    EXPECT_EQ(one_call.data(), split.data()) << "step " << i;
    EXPECT_EQ(one_call_src.stats().bytes_read, split_src.stats().bytes_read) << "step " << i;
  }
}

// plan() moves no payload bytes and its predictions are exact: the executed
// stats report exactly the predicted bytes_new and guaranteed_error, at any
// point of a request sequence.
TEST_P(RequestApi, PlanIsPureAndPredictionsAreExact) {
  auto field = smooth_field(Dims{32, 32, 32}, 42, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);

  for (double target : {1e-2, 1e-5}) {
    const std::size_t bytes_before = src.stats().bytes_read;
    const std::size_t calls_before = src.stats().read_calls;
    RetrievalPlan p = reader.plan(Request::error_bound(target));
    EXPECT_EQ(src.stats().bytes_read, bytes_before);  // no I/O during planning
    EXPECT_EQ(src.stats().read_calls, calls_before);
    RetrievalStats st = reader.execute(p);
    EXPECT_EQ(st.bytes_new, p.bytes_new);
    EXPECT_EQ(st.guaranteed_error, p.guaranteed_error);
    EXPECT_EQ(st.bytes_total, src.stats().bytes_read);
    // Re-planning the satisfied request fetches nothing.
    RetrievalPlan again = reader.plan(Request::error_bound(target));
    EXPECT_TRUE(again.segments.empty());
    EXPECT_EQ(again.bytes_new, 0u);
  }
  // The plan carries the per-level plane targets the planner chose.
  RetrievalPlan full = reader.plan(Request::full());
  ASSERT_FALSE(full.plane_targets.empty());
  RetrievalStats st = reader.execute(full);
  EXPECT_EQ(st.bytes_new, full.bytes_new);
  EXPECT_EQ(st.guaranteed_error, full.guaranteed_error);
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-8 * (1 + 1e-9));
}

// Uniform plans list every pending base (+aux) segment before the first
// plane, planes grouped per block, MSB-first within a level — the order the
// legacy fetch loops used, now pinned as API contract.
TEST_P(RequestApi, PlanSegmentOrderIsDocumented) {
  auto field = smooth_field(Dims{40, 40, 24}, 43, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);

  RetrievalPlan p = reader.plan(Request::error_bound(1e-4));
  ASSERT_FALSE(p.segments.empty());
  bool seen_plane = false;
  std::uint32_t last_plane_block = 0;
  for (const SegmentId& id : p.segments) {
    if (id.kind == kSegPlane) {
      if (seen_plane) {
        EXPECT_GE(id.block, last_plane_block);  // block-major grouping
      }
      seen_plane = true;
      last_plane_block = id.block;
    } else {
      EXPECT_FALSE(seen_plane) << "base/aux after a plane segment";
    }
  }
  // Per block+level, plane indices strictly decrease (MSB-first).
  for (std::size_t i = 1; i < p.segments.size(); ++i) {
    const SegmentId& a = p.segments[i - 1];
    const SegmentId& b = p.segments[i];
    if (a.kind == kSegPlane && b.kind == kSegPlane && a.block == b.block &&
        a.level == b.level) {
      EXPECT_GT(a.plane, b.plane);
    }
  }
}

// A plan is valid once, against the state it was computed from.
TEST_P(RequestApi, StalePlanIsRejected) {
  auto field = smooth_field(Dims{32, 32, 16}, 44, 0.05);
  Bytes archive = make_archive(field, 1e-7);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);

  RetrievalPlan stale = reader.plan(Request::error_bound(1e-3));
  RetrievalPlan fresh = reader.plan(Request::error_bound(1e-2));
  reader.execute(fresh);
  EXPECT_THROW(reader.execute(stale), std::logic_error);
  EXPECT_THROW(reader.execute(fresh), std::logic_error);  // consumed too
  // Re-planning after the rejection works as usual.
  reader.execute(reader.plan(Request::error_bound(1e-3)));
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-3 * (1 + 1e-9));
}

TEST_P(RequestApi, BadRegionBoundsRejected) {
  auto field = smooth_field(Dims{32, 32}, 45);
  Bytes archive = make_archive(field, 1e-6);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  std::array<std::size_t, kMaxRank> lo{8, 8, 0, 0};
  std::array<std::size_t, kMaxRank> hi{4, 16, 0, 0};  // hi < lo
  EXPECT_THROW(reader.plan(Request::full().within(lo, hi)),
               std::invalid_argument);
  hi = {40, 16, 0, 0};  // beyond the field
  EXPECT_THROW(reader.plan(Request::full().within(lo, hi)),
               std::invalid_argument);
}

// The open cost belongs to the first executed request — even across a mixed
// uniform -> region -> uniform sequence, per-request bytes_new sums to the
// cumulative bytes_total.
TEST_P(RequestApi, BytesNewSumsToTotalAcrossMixedSequence) {
  auto field = smooth_field(Dims{40, 40, 24}, 46, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);

  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{20, 20, 24, 0};
  std::size_t sum = 0;
  RetrievalStats st = reader.execute(reader.plan(Request::error_bound(1e-2)));
  sum += st.bytes_new;
  EXPECT_EQ(sum, st.bytes_total);
  st = reader.execute(
      reader.plan(Request::error_bound(1e-5).within(lo, hi)));
  sum += st.bytes_new;
  EXPECT_EQ(sum, st.bytes_total);
  st = reader.execute(reader.plan(Request::full()));
  sum += st.bytes_new;
  EXPECT_EQ(sum, st.bytes_total);
  EXPECT_EQ(sum, src.stats().bytes_read);

  // Region-first sequence: the open cost lands on the region request.
  MemorySource src2{Bytes(archive)};
  ProgressiveReader<double> reader2(src2);
  RetrievalStats r1 =
      reader2.execute(reader2.plan(Request::full().within(lo, hi)));
  EXPECT_EQ(r1.bytes_new, r1.bytes_total);
  RetrievalStats r2 = reader2.execute(reader2.plan(Request::full()));
  EXPECT_EQ(r1.bytes_new + r2.bytes_new, r2.bytes_total);
}

// Region + finite error bound: expressible at last.  On a block-decomposed
// archive it must fetch strictly fewer bytes than the full-fidelity region
// while meeting the target inside the region (the guarantee covers the
// intersecting blocks).
TEST_P(RequestApi, RegionWithErrorBoundMeetsTargetWithFewerBytes) {
  auto field = smooth_field(Dims{40, 40, 24}, 47, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{20, 20, 24, 0};

  MemorySource full_src{Bytes(archive)};
  ProgressiveReader<double> full_reader(full_src);
  RetrievalStats full_st = full_reader.retrieve(Request::full().within(lo, hi));

  std::size_t prev_bytes = 0;
  for (double target : {1e-2, 1e-4, 1e-6}) {
    MemorySource src{Bytes(archive)};
    ProgressiveReader<double> reader(src);
    RetrievalPlan p =
        reader.plan(Request::error_bound(target).within(lo, hi));
    EXPECT_LE(p.guaranteed_error, target * (1 + 1e-9)) << "target " << target;
    RetrievalStats st = reader.execute(p);
    EXPECT_EQ(st.bytes_new, p.bytes_new);
    EXPECT_EQ(st.guaranteed_error, p.guaranteed_error);

    // Error measured inside the region only.
    const Dims& dims = field.dims();
    double max_err = 0.0;
    for (std::size_t z = lo[0]; z < hi[0]; ++z) {
      for (std::size_t y = lo[1]; y < hi[1]; ++y) {
        for (std::size_t x = lo[2]; x < hi[2]; ++x) {
          const std::size_t i = (z * dims[1] + y) * dims[2] + x;
          max_err = std::max(max_err, std::abs(field[i] - reader.data()[i]));
        }
      }
    }
    EXPECT_LE(max_err, target * (1 + 1e-9)) << "target " << target;
    EXPECT_GE(st.bytes_total, prev_bytes);  // tighter targets fetch more
    prev_bytes = st.bytes_total;
    if (GetParam().block_side != 0 && target > 1e-6) {
      // Coarse targets must beat the full-fidelity region fetch.
      EXPECT_LT(st.bytes_total, full_st.bytes_total) << "target " << target;
    }
  }
}

// Region + byte budget: the additional fetch respects the budget.
TEST_P(RequestApi, RegionWithByteBudgetRespectsBudget) {
  auto field = smooth_field(Dims{40, 40, 24}, 48, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{20, 20, 24, 0};

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  const std::size_t open_cost = src.stats().bytes_read;
  // Base (+aux) segments of the intersecting blocks are mandatory — they
  // always load, like retrieve(Request::bytes(0)) — so the budget constrains only the
  // plane bytes on top of them; a zero-budget plan exposes the floor.
  const std::uint64_t mandatory =
      reader.plan(Request::bytes(0).within(lo, hi)).bytes_new - open_cost;
  const std::uint64_t budget = 12000;
  RetrievalPlan p = reader.plan(Request::bytes(budget).within(lo, hi));
  RetrievalStats st = reader.execute(p);
  const std::uint64_t allowed =
      budget > mandatory ? budget : mandatory;  // planes fit inside budget
  EXPECT_LE(st.bytes_new - open_cost, allowed + 1);
  EXPECT_LE(linf(field.const_view(), reader.data()),
            reader.current_guaranteed_error() * (1 + 1e-9) + 1e-30);
}

// After a region request pushed some blocks ahead, uniform requests still
// plan correctly (sunk bytes are free) and their guarantees hold.
TEST_P(RequestApi, UniformAfterRegionStaysSoundAndCheap) {
  auto field = smooth_field(Dims{40, 40, 24}, 49, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{20, 20, 24, 0};

  MemorySource seq_src{Bytes(archive)};
  ProgressiveReader<double> seq(seq_src);
  seq.execute(seq.plan(Request::full().within(lo, hi)));
  RetrievalStats st = seq.execute(seq.plan(Request::error_bound(1e-4)));
  EXPECT_LE(linf(field.const_view(), seq.data()), 1e-4 * (1 + 1e-9));

  // The same uniform target from scratch cannot be cheaper in *new* bytes
  // than after the region already paid for the overlapping blocks.
  MemorySource one_src{Bytes(archive)};
  ProgressiveReader<double> one(one_src);
  RetrievalStats one_st = one.execute(one.plan(Request::error_bound(1e-4)));
  EXPECT_LE(st.bytes_new, one_st.bytes_new);
}

// The reader funnels every request through one read_many call, so a
// FileSource-backed progressive sweep issues far fewer reads than segments
// fetched — with payloads and accounting identical to MemorySource.
TEST_P(RequestApi, FileSourceSweepCoalescesReads) {
  auto field = smooth_field(Dims{40, 40, 24}, 50, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  std::string path = ::testing::TempDir() + "/ipcomp_request_" +
                     std::string(GetParam().tag) + ".ipc";
  write_file(path, archive);

  FileSource fsrc(path);
  ProgressiveReader<double> freader(fsrc);
  MemorySource msrc{Bytes(archive)};
  ProgressiveReader<double> mreader(msrc);

  std::size_t segments_fetched = 0;
  for (double target : {1e-2, 1e-4, 1e-7}) {
    RetrievalPlan fp = freader.plan(Request::error_bound(target));
    RetrievalPlan mp = mreader.plan(Request::error_bound(target));
    EXPECT_EQ(fp.segments, mp.segments);
    segments_fetched += fp.segments.size();
    freader.execute(fp);
    mreader.execute(mp);
    EXPECT_EQ(freader.data(), mreader.data()) << "target " << target;
    EXPECT_EQ(fsrc.stats().bytes_read, msrc.stats().bytes_read) << "target " << target;
  }
  // MemorySource pays one "call" per segment; the file source coalesces.
  ASSERT_GT(segments_fetched, 8u);
  EXPECT_EQ(msrc.stats().read_calls, segments_fetched + 1);  // +1 header
  EXPECT_LT(fsrc.stats().read_calls, segments_fetched);
  EXPECT_EQ(fsrc.stats().coalesced_ranges, fsrc.stats().read_calls - 1);
  std::remove(path.c_str());
}

// A failed bulk fetch leaves the reader untouched: nothing is charged to
// bytes_read(), the epoch is not burned (the same plan retries), and the
// open cost is still attributed exactly once — Σ bytes_new == bytes_total
// survives the retry.
TEST_P(RequestApi, FailedFetchLeavesPlanRetryable) {
  auto field = smooth_field(Dims{32, 32, 16}, 51, 0.05);
  Bytes archive = make_archive(field, 1e-7);
  std::string path = ::testing::TempDir() + "/ipcomp_retry_" +
                     std::string(GetParam().tag) + ".ipc";
  write_file(path, archive);
  FileSource src(path);
  ProgressiveReader<double> reader(src);
  RetrievalPlan p = reader.plan(Request::full());
  const std::size_t bytes_before = src.stats().bytes_read;

  // Truncate the file under the source: the bulk read fails cleanly.
  write_file(path, Bytes(archive.begin(), archive.begin() + archive.size() / 2));
  EXPECT_THROW(reader.execute(p), std::runtime_error);
  EXPECT_EQ(src.stats().bytes_read, bytes_before);  // no phantom payload charged

  // Restore and retry the *same* plan.
  write_file(path, archive);
  RetrievalStats st = reader.execute(p);
  EXPECT_EQ(st.bytes_new, p.bytes_new);
  EXPECT_EQ(st.bytes_new, st.bytes_total);  // open cost attributed once
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-7 * (1 + 1e-9));
  std::remove(path.c_str());
}

TEST(RequestToString, DescribesTargetAndRegion) {
  EXPECT_EQ(to_string(Request::full()), "full");
  EXPECT_EQ(to_string(Request::bytes(4096)), "bytes 4096");
  EXPECT_NE(to_string(Request::error_bound(1e-3)).find("error_bound"),
            std::string::npos);
  std::array<std::size_t, kMaxRank> lo{1, 2, 3, 0};
  std::array<std::size_t, kMaxRank> hi{4, 5, 6, 0};
  std::string s = to_string(Request::bitrate(2.5).within(lo, hi), 3);
  EXPECT_NE(s.find("bitrate 2.5"), std::string::npos);
  EXPECT_NE(s.find("[1,2,3):[4,5,6)"), std::string::npos);
  EXPECT_EQ(to_string(SegmentId{kSegPlane, 2, 7, 3}), "plane L2 k7 b3");
  EXPECT_EQ(to_string(SegmentId{kSegBase, 1, 0, 0}), "base L1 b0");
}

}  // namespace
}  // namespace ipcomp
