#include <gtest/gtest.h>

#include <set>

#include "interp/sweep.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

class SweepShapes : public ::testing::TestWithParam<Dims> {};

TEST_P(SweepShapes, SlotsPartitionAllPoints) {
  const Dims dims = GetParam();
  auto ls = LevelStructure::analyze(dims);
  EXPECT_EQ(ls.total_count(), dims.count());
}

TEST_P(SweepShapes, EveryPointVisitedExactlyOnce) {
  const Dims dims = GetParam();
  auto ls = LevelStructure::analyze(dims);
  std::vector<int> visits(dims.count(), 0);
  std::vector<std::set<std::size_t>> slots(ls.num_levels);
  std::vector<double> data(dims.count(), 0.0);
  std::mutex m;
  interpolation_sweep(data.data(), ls, InterpKind::kLinear,
                      [&](unsigned li, std::size_t slot, std::size_t idx, double) {
                        std::lock_guard<std::mutex> lock(m);
                        ++visits[idx];
                        EXPECT_TRUE(slots[li].insert(slot).second)
                            << "duplicate slot " << slot << " level " << li;
                        return 0.0;
                      });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "idx " << i;
  }
  for (unsigned li = 0; li < ls.num_levels; ++li) {
    EXPECT_EQ(slots[li].size(), ls.level_count[li]);
    if (!slots[li].empty()) {
      EXPECT_EQ(*slots[li].rbegin(), ls.level_count[li] - 1);
    }
  }
}

TEST_P(SweepShapes, IdentityVisitorReproducesData) {
  // A visitor that quantizes with zero error (returns original) must leave
  // the array exactly equal to the input when run "in place".
  const Dims dims = GetParam();
  auto ls = LevelStructure::analyze(dims);
  Rng rng(99);
  std::vector<double> original(dims.count());
  for (auto& v : original) v = rng.uniform(-5, 5);
  std::vector<double> work = original;
  interpolation_sweep(work.data(), ls, InterpKind::kCubic,
                      [&](unsigned, std::size_t, std::size_t idx, double) {
                        return original[idx];
                      });
  EXPECT_EQ(work, original);
}

TEST_P(SweepShapes, PredictionsUseOnlyKnownPoints) {
  // Fill with NaN; a prediction that touches an unvisited point propagates
  // NaN into `pred`, which the visitor detects.
  const Dims dims = GetParam();
  auto ls = LevelStructure::analyze(dims);
  std::vector<double> data(dims.count(), std::numeric_limits<double>::quiet_NaN());
  std::atomic<int> bad{0};
  interpolation_sweep(data.data(), ls, InterpKind::kCubic,
                      [&](unsigned, std::size_t, std::size_t, double pred) {
                        if (std::isnan(pred)) ++bad;
                        return 1.0;  // mark as known
                      });
  EXPECT_EQ(bad.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SweepShapes,
    ::testing::Values(Dims{1}, Dims{2}, Dims{3}, Dims{17}, Dims{64}, Dims{100},
                      Dims{1, 1}, Dims{5, 5}, Dims{16, 16}, Dims{33, 7},
                      Dims{100, 3}, Dims{2, 128}, Dims{9, 9, 9}, Dims{16, 16, 16},
                      Dims{7, 33, 5}, Dims{24, 13, 31}, Dims{3, 4, 5, 6},
                      Dims{17, 2, 9, 4}),
    [](const auto& info) {
      std::string s = info.param.to_string();
      for (auto& c : s) {
        if (c == 'x') c = '_';
      }
      return s;
    });

TEST(Sweep, LevelCountMatchesLog2) {
  EXPECT_EQ(LevelStructure::analyze(Dims{1}).num_levels, 1u);
  EXPECT_EQ(LevelStructure::analyze(Dims{2}).num_levels, 1u);
  EXPECT_EQ(LevelStructure::analyze(Dims{3}).num_levels, 2u);
  EXPECT_EQ(LevelStructure::analyze(Dims{256}).num_levels, 8u);
  EXPECT_EQ(LevelStructure::analyze(Dims{257}).num_levels, 9u);
  EXPECT_EQ(LevelStructure::analyze(Dims{100, 500, 500}).num_levels, 9u);
}

TEST(Sweep, AnchorIsFirstSlotOfTopLevel) {
  auto ls = LevelStructure::analyze(Dims{16, 16});
  std::vector<double> data(256, 0.0);
  bool anchor_seen = false;
  interpolation_sweep(data.data(), ls, InterpKind::kLinear,
                      [&](unsigned li, std::size_t slot, std::size_t idx, double pred) {
                        if (idx == 0) {
                          anchor_seen = true;
                          EXPECT_EQ(li, ls.num_levels - 1);
                          EXPECT_EQ(slot, 0u);
                          EXPECT_EQ(pred, 0.0);
                        }
                        return 1.0;
                      });
  EXPECT_TRUE(anchor_seen);
}

TEST(Sweep, LinearPredictionValues) {
  // 1-D size 5: levels: L=3. Check the midpoint prediction is the average of
  // its stride-distant neighbours once those are known.
  Dims dims{5};
  auto ls = LevelStructure::analyze(dims);
  std::vector<double> data = {0, 0, 0, 0, 0};
  std::vector<double> truth = {10, 11, 12, 13, 14};
  std::vector<double> preds(5, -1);
  interpolation_sweep(data.data(), ls, InterpKind::kLinear,
                      [&](unsigned, std::size_t, std::size_t idx, double pred) {
                        preds[idx] = pred;
                        return truth[idx];
                      });
  // idx 0: anchor (pred 0); idx 4: predicted from idx 0 at level 3 (copy,
  // since idx 8 out of bounds); idx 2: average of 0 and 4; idx 1: average of
  // 0 and 2; idx 3: average of 2 and 4.
  EXPECT_EQ(preds[0], 0.0);
  EXPECT_EQ(preds[4], 10.0);
  EXPECT_EQ(preds[2], (10.0 + 14.0) / 2);
  EXPECT_EQ(preds[1], (10.0 + 12.0) / 2);
  EXPECT_EQ(preds[3], (12.0 + 14.0) / 2);
}

TEST(Sweep, CubicKernelUsedInInterior) {
  // 1-D size 9, finest level: target 4 has neighbours 1,3,5,7 at stride 1
  // ... i.e. cubic needs c>=3s and c+3s<n: c=3,s=1 -> needs idx 6 <= 8 ok.
  Dims dims{9};
  auto ls = LevelStructure::analyze(dims);
  std::vector<double> truth(9);
  for (int i = 0; i < 9; ++i) truth[i] = i * i;  // quadratic: cubic is exact
  std::vector<double> data(9, 0);
  std::vector<double> preds(9, -1);
  interpolation_sweep(data.data(), ls, InterpKind::kCubic,
                      [&](unsigned, std::size_t, std::size_t idx, double pred) {
                        preds[idx] = pred;
                        return truth[idx];
                      });
  // Cubic interpolation reproduces quadratics exactly at interior points
  // where all four sources exist: target 3 (s=1) uses 0,2,4,6... wait c=3:
  // c-3s=0, c+3s=6 < 9: cubic.  (-0 + 9*4 + 9*16 - 36)/16 = 144/16 = 9.
  EXPECT_DOUBLE_EQ(preds[3], 9.0);
  EXPECT_DOUBLE_EQ(preds[5], 25.0);
}

TEST(Sweep, RejectsNothingForMaxRankShapes) {
  auto ls = LevelStructure::analyze(Dims{4, 4, 4, 4});
  EXPECT_EQ(ls.total_count(), 256u);
}

}  // namespace
}  // namespace ipcomp
