#include <gtest/gtest.h>

#include <cstdio>

#include "io/archive.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

Bytes make_payload(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

TEST(Archive, SegmentIdKeyRoundTrip) {
  SegmentId id{3, 7, 29};
  EXPECT_EQ(SegmentId::from_key(id.key()), id);
}

TEST(Archive, BuildAndReadBack) {
  ArchiveBuilder b;
  b.set_header(Bytes{1, 2, 3, 4});
  b.add_segment({0, 1, 0}, make_payload(100, 0xAA));
  b.add_segment({1, 1, 5}, make_payload(50, 0xBB));
  b.add_segment({1, 2, 31}, make_payload(0, 0));
  Bytes blob = b.finish();

  MemorySource src(std::move(blob));
  EXPECT_EQ(src.header(), (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(src.read_segment({0, 1, 0}), make_payload(100, 0xAA));
  EXPECT_EQ(src.read_segment({1, 1, 5}), make_payload(50, 0xBB));
  EXPECT_EQ(src.read_segment({1, 2, 31}), Bytes{});
  EXPECT_TRUE(src.has_segment({1, 1, 5}));
  EXPECT_FALSE(src.has_segment({1, 1, 6}));
  EXPECT_EQ(src.segment_size({0, 1, 0}), 100u);
}

TEST(Archive, MissingSegmentThrows) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  MemorySource src(std::move(blob));
  EXPECT_THROW(src.read_segment({9, 9, 9}), std::runtime_error);
  EXPECT_THROW(src.segment_size({9, 9, 9}), std::runtime_error);
}

TEST(Archive, BuilderRejectsDuplicateSegmentId) {
  // Regression: a silently accepted duplicate grew order_ while the map kept
  // one entry, so finish() paired the duplicated table row with the wrong
  // payload range.
  ArchiveBuilder b;
  b.set_header(Bytes{1});
  b.add_segment({0, 1, 0}, make_payload(8, 0xAA));
  EXPECT_THROW(b.add_segment({0, 1, 0}, make_payload(8, 0xBB)),
               std::invalid_argument);
  // The builder is still usable: the first payload and new ids survive.
  b.add_segment({1, 1, 0}, make_payload(4, 0xCC));
  MemorySource src(b.finish());
  EXPECT_EQ(src.read_segment({0, 1, 0}), make_payload(8, 0xAA));
  EXPECT_EQ(src.read_segment({1, 1, 0}), make_payload(4, 0xCC));
}

TEST(Archive, ReadManyMatchesPerSegmentReads) {
  ArchiveBuilder b;
  b.set_header(make_payload(10, 1));
  std::vector<SegmentId> ids;
  for (std::uint32_t i = 0; i < 12; ++i) {
    ids.push_back({1, static_cast<std::uint16_t>(i / 4 + 1), i % 4});
    b.add_segment(ids.back(), make_payload(100 + 37 * i, static_cast<std::uint8_t>(i)));
  }
  Bytes blob = b.finish();

  // Request in an order unlike the table's; payloads must come back in
  // request order, identical to per-segment reads, with identical byte
  // accounting (the default implementation is the per-id loop).
  std::vector<SegmentId> order = {ids[7], ids[0], ids[11], ids[3], ids[7]};
  MemorySource a{Bytes(blob)};
  MemorySource c{Bytes(blob)};
  auto batch = a.read_many(order);
  ASSERT_EQ(batch.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(batch[i], c.read_segment(order[i])) << i;
  }
  EXPECT_EQ(a.stats().bytes_read, c.stats().bytes_read);
  EXPECT_THROW(a.read_many(std::vector<SegmentId>{{9, 9, 9}}),
               std::runtime_error);
  EXPECT_TRUE(a.read_many(std::vector<SegmentId>{}).empty());
}

TEST(Archive, FileSourceReadManyCoalescesAdjacentRanges) {
  Rng rng(21);
  ArchiveBuilder b;
  b.set_header(make_payload(32, 1));
  std::vector<SegmentId> ids;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ids.push_back({1, 1, i});
    Bytes payload(200 + rng.uniform_u64(400));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.next_u64());
    b.add_segment(ids.back(), std::move(payload));
  }
  Bytes blob = b.finish();
  std::string path = ::testing::TempDir() + "/ipcomp_read_many_test.bin";
  write_file(path, blob);

  // All 16 segments are adjacent in the file (table order), so the batch —
  // requested in scrambled order — must collapse to one physical read, with
  // only the payload bytes charged and payloads identical to MemorySource.
  std::vector<SegmentId> order;
  for (std::uint32_t i = 0; i < 16; ++i) order.push_back(ids[(7 * i + 3) % 16]);
  FileSource fsrc(path);
  MemorySource msrc{Bytes(blob)};
  const std::size_t calls_before = fsrc.stats().read_calls;
  auto batch = fsrc.read_many(order);
  EXPECT_EQ(fsrc.stats().read_calls, calls_before + 1);
  EXPECT_EQ(fsrc.stats().coalesced_ranges, 1u);
  std::size_t payload_bytes = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(batch[i], msrc.read_segment(order[i])) << i;
    payload_bytes += batch[i].size();
  }
  EXPECT_EQ(fsrc.stats().bytes_read, payload_bytes);  // no gap bytes charged

  // A segment far past the gap threshold forces a second range.
  ArchiveBuilder b2;
  b2.set_header(make_payload(8, 2));
  b2.add_segment({1, 1, 0}, make_payload(64, 0x11));
  b2.add_segment({1, 1, 1}, make_payload(3 * kCoalesceGapBytes, 0x22));
  b2.add_segment({1, 1, 2}, make_payload(64, 0x33));
  write_file(path, b2.finish());
  FileSource far_src(path);
  auto far = far_src.read_many(
      std::vector<SegmentId>{{1, 1, 0}, {1, 1, 2}});
  EXPECT_EQ(far_src.stats().coalesced_ranges, 2u);
  EXPECT_EQ(far[0], make_payload(64, 0x11));
  EXPECT_EQ(far[1], make_payload(64, 0x33));
  std::remove(path.c_str());
}

TEST(Archive, BytesReadCountsOnlyTouchedSegments) {
  ArchiveBuilder b;
  b.set_header(make_payload(10, 1));
  b.add_segment({0, 1, 0}, make_payload(1000, 2));
  b.add_segment({0, 2, 0}, make_payload(3000, 3));
  Bytes blob = b.finish();
  std::size_t total = blob.size();

  MemorySource src(std::move(blob));
  EXPECT_EQ(src.stats().bytes_read, 0u);
  src.header();
  std::size_t header_cost = src.stats().bytes_read;
  EXPECT_GT(header_cost, 10u);          // header + index
  EXPECT_LT(header_cost, total - 3500); // but not the payloads
  src.header();
  EXPECT_EQ(src.stats().bytes_read, header_cost);  // charged once
  src.read_segment({0, 1, 0});
  EXPECT_EQ(src.stats().bytes_read, header_cost + 1000);
  EXPECT_EQ(src.total_size(), total);
}

TEST(Archive, CorruptMagicRejected) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  blob[0] ^= 0xFF;
  EXPECT_THROW(MemorySource src(std::move(blob)), std::runtime_error);
}

TEST(Archive, ForgedSegmentCountRejected) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  // The segment-count varint is the final byte of a segmentless archive;
  // replace it with a huge ten-byte varint.  The parser must throw instead
  // of letting the count drive a multi-terabyte reserve().
  ASSERT_EQ(blob.back(), 0x00);
  blob.pop_back();
  blob.insert(blob.end(), 9, 0xFF);
  blob.push_back(0x01);
  EXPECT_THROW(MemorySource src(std::move(blob)), std::runtime_error);
}

TEST(Archive, ForgedSegmentLengthRejected) {
  ArchiveBuilder b;
  b.set_header({});
  b.add_segment({0, 1, 0}, make_payload(4, 0xCD));
  Bytes blob = b.finish();
  // Single 4-byte segment: the length varint is the byte before the payload.
  ASSERT_EQ(blob[blob.size() - 5], 0x04);
  Bytes forged(blob.begin(), blob.end() - 5);
  forged.insert(forged.end(), 9, 0xFF);
  forged.push_back(0x01);  // len ~ 2^63: offset += len would wrap
  forged.insert(forged.end(), blob.end() - 4, blob.end());
  EXPECT_THROW(MemorySource src(std::move(forged)), std::runtime_error);
}

TEST(Archive, FileSourceMatchesMemorySource) {
  Rng rng(8);
  ArchiveBuilder b;
  Bytes header(200);
  for (auto& x : header) x = static_cast<std::uint8_t>(rng.next_u64());
  b.set_header(header);
  std::vector<std::pair<SegmentId, Bytes>> segs;
  for (int i = 0; i < 20; ++i) {
    SegmentId id{1, static_cast<std::uint16_t>(i / 5 + 1),
                 static_cast<std::uint32_t>(i % 5)};
    Bytes payload(rng.uniform_u64(5000));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.next_u64());
    b.add_segment(id, payload);
    segs.emplace_back(id, std::move(payload));
  }
  Bytes blob = b.finish();

  std::string path = ::testing::TempDir() + "/ipcomp_archive_test.bin";
  write_file(path, blob);

  FileSource fsrc(path);
  MemorySource msrc(std::move(blob));
  EXPECT_EQ(fsrc.header(), msrc.header());
  for (auto& [id, payload] : segs) {
    EXPECT_EQ(fsrc.read_segment(id), payload);
    EXPECT_EQ(fsrc.segment_size(id), payload.size());
  }
  EXPECT_EQ(fsrc.total_size(), msrc.total_size());
  std::remove(path.c_str());
}

TEST(Archive, FileRoundTripHelpers) {
  std::string path = ::testing::TempDir() + "/ipcomp_file_test.bin";
  Bytes data = {9, 8, 7, 6};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), std::runtime_error);
}

TEST(Archive, ManySegmentsIndexedCorrectly) {
  ArchiveBuilder b;
  b.set_header({});
  for (std::uint32_t i = 0; i < 500; ++i) {
    b.add_segment({2, static_cast<std::uint16_t>(i % 16), i},
                  Bytes(i % 37, static_cast<std::uint8_t>(i)));
  }
  MemorySource src(b.finish());
  for (std::uint32_t i = 0; i < 500; ++i) {
    SegmentId id{2, static_cast<std::uint16_t>(i % 16), i};
    EXPECT_EQ(src.read_segment(id), Bytes(i % 37, static_cast<std::uint8_t>(i)));
  }
}

}  // namespace
}  // namespace ipcomp
