#include <gtest/gtest.h>

#include <cstdio>

#include "io/archive.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

Bytes make_payload(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

TEST(Archive, SegmentIdKeyRoundTrip) {
  SegmentId id{3, 7, 29};
  EXPECT_EQ(SegmentId::from_key(id.key()), id);
}

TEST(Archive, BuildAndReadBack) {
  ArchiveBuilder b;
  b.set_header(Bytes{1, 2, 3, 4});
  b.add_segment({0, 1, 0}, make_payload(100, 0xAA));
  b.add_segment({1, 1, 5}, make_payload(50, 0xBB));
  b.add_segment({1, 2, 31}, make_payload(0, 0));
  Bytes blob = b.finish();

  MemorySource src(std::move(blob));
  EXPECT_EQ(src.header(), (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(src.read_segment({0, 1, 0}), make_payload(100, 0xAA));
  EXPECT_EQ(src.read_segment({1, 1, 5}), make_payload(50, 0xBB));
  EXPECT_EQ(src.read_segment({1, 2, 31}), Bytes{});
  EXPECT_TRUE(src.has_segment({1, 1, 5}));
  EXPECT_FALSE(src.has_segment({1, 1, 6}));
  EXPECT_EQ(src.segment_size({0, 1, 0}), 100u);
}

TEST(Archive, MissingSegmentThrows) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  MemorySource src(std::move(blob));
  EXPECT_THROW(src.read_segment({9, 9, 9}), std::runtime_error);
  EXPECT_THROW(src.segment_size({9, 9, 9}), std::runtime_error);
}

TEST(Archive, BytesReadCountsOnlyTouchedSegments) {
  ArchiveBuilder b;
  b.set_header(make_payload(10, 1));
  b.add_segment({0, 1, 0}, make_payload(1000, 2));
  b.add_segment({0, 2, 0}, make_payload(3000, 3));
  Bytes blob = b.finish();
  std::size_t total = blob.size();

  MemorySource src(std::move(blob));
  EXPECT_EQ(src.bytes_read(), 0u);
  src.header();
  std::size_t header_cost = src.bytes_read();
  EXPECT_GT(header_cost, 10u);          // header + index
  EXPECT_LT(header_cost, total - 3500); // but not the payloads
  src.header();
  EXPECT_EQ(src.bytes_read(), header_cost);  // charged once
  src.read_segment({0, 1, 0});
  EXPECT_EQ(src.bytes_read(), header_cost + 1000);
  EXPECT_EQ(src.total_size(), total);
}

TEST(Archive, CorruptMagicRejected) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  blob[0] ^= 0xFF;
  EXPECT_THROW(MemorySource src(std::move(blob)), std::runtime_error);
}

TEST(Archive, ForgedSegmentCountRejected) {
  ArchiveBuilder b;
  b.set_header({});
  Bytes blob = b.finish();
  // The segment-count varint is the final byte of a segmentless archive;
  // replace it with a huge ten-byte varint.  The parser must throw instead
  // of letting the count drive a multi-terabyte reserve().
  ASSERT_EQ(blob.back(), 0x00);
  blob.pop_back();
  blob.insert(blob.end(), 9, 0xFF);
  blob.push_back(0x01);
  EXPECT_THROW(MemorySource src(std::move(blob)), std::runtime_error);
}

TEST(Archive, ForgedSegmentLengthRejected) {
  ArchiveBuilder b;
  b.set_header({});
  b.add_segment({0, 1, 0}, make_payload(4, 0xCD));
  Bytes blob = b.finish();
  // Single 4-byte segment: the length varint is the byte before the payload.
  ASSERT_EQ(blob[blob.size() - 5], 0x04);
  Bytes forged(blob.begin(), blob.end() - 5);
  forged.insert(forged.end(), 9, 0xFF);
  forged.push_back(0x01);  // len ~ 2^63: offset += len would wrap
  forged.insert(forged.end(), blob.end() - 4, blob.end());
  EXPECT_THROW(MemorySource src(std::move(forged)), std::runtime_error);
}

TEST(Archive, FileSourceMatchesMemorySource) {
  Rng rng(8);
  ArchiveBuilder b;
  Bytes header(200);
  for (auto& x : header) x = static_cast<std::uint8_t>(rng.next_u64());
  b.set_header(header);
  std::vector<std::pair<SegmentId, Bytes>> segs;
  for (int i = 0; i < 20; ++i) {
    SegmentId id{1, static_cast<std::uint16_t>(i / 5 + 1),
                 static_cast<std::uint32_t>(i % 5)};
    Bytes payload(rng.uniform_u64(5000));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.next_u64());
    b.add_segment(id, payload);
    segs.emplace_back(id, std::move(payload));
  }
  Bytes blob = b.finish();

  std::string path = ::testing::TempDir() + "/ipcomp_archive_test.bin";
  write_file(path, blob);

  FileSource fsrc(path);
  MemorySource msrc(std::move(blob));
  EXPECT_EQ(fsrc.header(), msrc.header());
  for (auto& [id, payload] : segs) {
    EXPECT_EQ(fsrc.read_segment(id), payload);
    EXPECT_EQ(fsrc.segment_size(id), payload.size());
  }
  EXPECT_EQ(fsrc.total_size(), msrc.total_size());
  std::remove(path.c_str());
}

TEST(Archive, FileRoundTripHelpers) {
  std::string path = ::testing::TempDir() + "/ipcomp_file_test.bin";
  Bytes data = {9, 8, 7, 6};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), std::runtime_error);
}

TEST(Archive, ManySegmentsIndexedCorrectly) {
  ArchiveBuilder b;
  b.set_header({});
  for (std::uint32_t i = 0; i < 500; ++i) {
    b.add_segment({2, static_cast<std::uint16_t>(i % 16), i},
                  Bytes(i % 37, static_cast<std::uint8_t>(i)));
  }
  MemorySource src(b.finish());
  for (std::uint32_t i = 0; i < 500; ++i) {
    SegmentId id{2, static_cast<std::uint16_t>(i % 16), i};
    EXPECT_EQ(src.read_segment(id), Bytes(i % 37, static_cast<std::uint8_t>(i)));
  }
}

}  // namespace
}  // namespace ipcomp
