#include <gtest/gtest.h>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

std::vector<std::uint32_t> random_values(std::size_t n, std::uint64_t seed,
                                         unsigned max_bits = 32) {
  Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.next_u64());
    if (max_bits < 32) x &= (std::uint32_t{1} << max_bits) - 1;
  }
  return v;
}

TEST(Bitplane, ExtractDepositSinglePlane) {
  auto values = random_values(1000, 1);
  for (unsigned k : {0u, 7u, 15u, 31u}) {
    auto plane = extract_plane(values, k);
    std::vector<std::uint32_t> rebuilt(values.size(), 0);
    deposit_plane(rebuilt, plane, k);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(rebuilt[i], values[i] & (std::uint32_t{1} << k));
    }
  }
}

TEST(Bitplane, ExtractAllMatchesSingle) {
  auto values = random_values(777, 2);  // odd size exercises the tail byte
  auto all = extract_all_planes(values);
  for (unsigned k = 0; k < kPlaneCount; ++k) {
    EXPECT_EQ(all[k], extract_plane(values, k)) << "plane " << k;
  }
}

TEST(Bitplane, FullSplitJoinRoundTrip) {
  auto values = random_values(4096, 3);
  auto all = extract_all_planes(values);
  std::vector<std::uint32_t> rebuilt(values.size(), 0);
  for (unsigned k = 0; k < kPlaneCount; ++k) {
    deposit_plane(rebuilt, all[k], k);
  }
  EXPECT_EQ(rebuilt, values);
}

TEST(Bitplane, EmptyInput) {
  std::vector<std::uint32_t> empty;
  auto all = extract_all_planes(empty);
  for (auto& p : all) EXPECT_TRUE(p.empty());
  auto table = truncation_loss_table(empty);
  for (auto v : table) EXPECT_EQ(v, 0);
}

TEST(Bitplane, PlaneBytesRounding) {
  EXPECT_EQ(plane_bytes(0), 0u);
  EXPECT_EQ(plane_bytes(1), 1u);
  EXPECT_EQ(plane_bytes(8), 1u);
  EXPECT_EQ(plane_bytes(9), 2u);
}

TEST(Bitplane, TruncationTableMatchesBruteForce) {
  auto values = random_values(2000, 4, 20);
  auto table = truncation_loss_table(values);
  for (unsigned d = 0; d <= kPlaneCount; ++d) {
    std::int64_t expected = 0;
    for (auto v : values) {
      expected = std::max(expected, std::abs(negabinary_low_bits_value(v, d)));
    }
    EXPECT_EQ(table[d], expected) << "d=" << d;
  }
}

TEST(Bitplane, TruncationTableSmallMagnitudes) {
  // Values representing small quantization codes: only low planes populated.
  std::vector<std::uint32_t> values;
  for (std::int64_t q = -50; q <= 50; ++q) values.push_back(negabinary_encode(q));
  auto table = truncation_loss_table(values);
  EXPECT_EQ(table[0], 0);
  // Dropping everything loses at most the max magnitude.
  EXPECT_EQ(table[kPlaneCount], 50);
  // Bounded by the closed-form uncertainty at every depth.
  for (unsigned d = 0; d <= kPlaneCount; ++d) {
    EXPECT_LE(table[d], negabinary_uncertainty(d));
  }
}

TEST(Bitplane, TruncationTableZeroValues) {
  std::vector<std::uint32_t> values(100, 0);
  auto table = truncation_loss_table(values);
  for (auto v : table) EXPECT_EQ(v, 0);
}

TEST(Bitplane, DepositIntoPartiallyFilled) {
  std::vector<std::uint32_t> values = {0b1000, 0b0000, 0b1000};
  Bytes plane0 = extract_plane(std::vector<std::uint32_t>{1, 0, 1}, 0);
  deposit_plane(values, plane0, 0);
  EXPECT_EQ(values[0], 0b1001u);
  EXPECT_EQ(values[1], 0b0000u);
  EXPECT_EQ(values[2], 0b1001u);
}

}  // namespace
}  // namespace ipcomp
