// Randomized stress tests: many seeds, random shapes, random content styles.
// These sweeps are the "did we miss a geometry / content interaction"
// backstop for the whole stack.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>

#include "coding/bitpack.hpp"
#include "coding/codec.hpp"
#include "coding/lzh.hpp"
#include "ipcomp.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

using testutil::linf;

Dims random_dims(Rng& rng, std::size_t max_count) {
  const unsigned rank = 1 + static_cast<unsigned>(rng.uniform_u64(3));
  std::size_t extents[kMaxRank];
  std::size_t count = 1;
  for (unsigned i = 0; i < rank; ++i) {
    extents[i] = 1 + rng.uniform_u64(40);
    count *= extents[i];
  }
  while (count > max_count) {
    for (unsigned i = 0; i < rank; ++i) {
      extents[i] = std::max<std::size_t>(1, extents[i] / 2);
    }
    count = 1;
    for (unsigned i = 0; i < rank; ++i) count *= extents[i];
  }
  return Dims::of_rank(rank, extents);
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, IpcompRandomShapesAndContent) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Dims dims = random_dims(rng, 60000);
    NdArray<double> field(dims);
    const int style = static_cast<int>(rng.uniform_u64(4));
    double scale_v = std::pow(10.0, rng.uniform(-3, 3));
    for (std::size_t i = 0; i < field.count(); ++i) {
      switch (style) {
        case 0:  // smooth
          field[i] = scale_v * std::sin(0.05 * static_cast<double>(i));
          break;
        case 1:  // rough
          field[i] = scale_v * rng.normal();
          break;
        case 2:  // piecewise constant
          field[i] = scale_v * static_cast<double>((i / 97) % 5);
          break;
        default:  // mixed with spikes
          field[i] = scale_v * std::sin(0.01 * static_cast<double>(i)) +
                     (rng.uniform() < 0.001 ? scale_v * 1e6 : 0.0);
      }
    }
    Options opt;
    opt.error_bound = std::pow(10.0, -3.0 - rng.uniform_u64(6));
    opt.relative = true;
    opt.interp = rng.uniform() < 0.5 ? InterpKind::kCubic : InterpKind::kLinear;
    opt.progressive_threshold = 1 + rng.uniform_u64(8192);
    // Half the trials run block-decomposed (archive v2) to fuzz the block
    // pipeline across the same geometry / content / bound space.
    opt.block_side = rng.uniform() < 0.5 ? 0 : 2 + rng.uniform_u64(30);
    // And half run the wavelet backend (archive v3), so both backends face
    // the same randomized geometry, content and bounds.
    opt.backend =
        rng.uniform() < 0.5 ? BackendId::kInterp : BackendId::kWavelet;
    Bytes archive = compress(field.const_view(), opt);

    MemorySource src(std::move(archive));
    ProgressiveReader<double> reader(src);
    const double eb = reader.header().eb;
    // Random partial request then full: both guarantees must hold.
    const double target = eb * std::pow(4.0, static_cast<double>(rng.uniform_u64(8)));
    auto st = reader.retrieve(Request::error_bound(target));
    EXPECT_LE(linf(field.const_view(), reader.data()), st.guaranteed_error * (1 + 1e-9))
        << "dims " << dims.to_string() << " style " << style;
    reader.retrieve(Request::full());
    EXPECT_LE(linf(field.const_view(), reader.data()), eb * (1 + 1e-9))
        << "dims " << dims.to_string() << " style " << style;
  }
}

TEST_P(FuzzSeeds, LzhArbitraryBytes) {
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Bytes in(rng.uniform_u64(40000));
    const int style = static_cast<int>(rng.uniform_u64(3));
    std::uint8_t run_val = 0;
    for (auto& b : in) {
      if (style == 0) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      } else if (style == 1) {
        if (rng.uniform() < 0.02) run_val = static_cast<std::uint8_t>(rng.next_u64());
        b = run_val;
      } else {
        b = static_cast<std::uint8_t>(rng.uniform_u64(3));
      }
    }
    Bytes enc = lzh_compress({in.data(), in.size()});
    EXPECT_EQ(lzh_decompress({enc.data(), enc.size()}), in);
  }
}

// Forged-input corpus: mutated, truncated and garbage archives must be
// rejected with an exception (or, for benign mutations, decode normally) —
// never crash, hang or trip a sanitizer.  The tsan CI preset runs this suite
// too, so the rejection paths are also exercised under ThreadSanitizer.
class ForgedArchive : public ::testing::TestWithParam<int> {};

// Drives a reader over `bytes` and swallows rejection.  Returns true when
// the archive was accepted end-to-end (possible for benign mutations, e.g.
// a flipped bit inside segment payload the request never fetches).
bool try_read_archive(Bytes bytes) {
  try {
    MemorySource src(std::move(bytes));
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::error_bound(reader.header().eb * 16));
    reader.retrieve(Request::full());
    return true;
  } catch (const std::exception&) {
    // Every rejection path must surface as a std::exception subclass;
    // anything else (signal, std::terminate, sanitizer report) fails the
    // test process itself.
    return false;
  }
}

TEST_P(ForgedArchive, MutatedTruncatedAndGarbageInputsNeverCrash) {
  Rng rng(3000 + GetParam());

  // A small but fully featured donor archive (blocks + progressive planes).
  Dims dims{12, 10, 8};
  NdArray<double> field(dims);
  for (std::size_t i = 0; i < field.count(); ++i) {
    field[i] = std::sin(0.2 * static_cast<double>(i));
  }
  Options opt;
  opt.error_bound = 1e-5;
  opt.block_side = 4;
  opt.backend =
      GetParam() % 2 == 0 ? BackendId::kInterp : BackendId::kWavelet;
  const Bytes donor = compress(field.const_view(), opt);
  ASSERT_TRUE(try_read_archive(donor)) << "donor archive must be valid";

  // Truncations: every prefix length from empty to full-minus-one, sampled.
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t len = rng.uniform_u64(donor.size());
    try_read_archive(Bytes(donor.begin(), donor.begin() + static_cast<std::ptrdiff_t>(len)));
  }

  // Byte flips: corrupt 1..8 random bytes anywhere (header, index, payload).
  for (int trial = 0; trial < 60; ++trial) {
    Bytes forged = donor;
    const std::size_t flips = 1 + rng.uniform_u64(8);
    for (std::size_t i = 0; i < flips; ++i) {
      forged[rng.uniform_u64(forged.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    try_read_archive(std::move(forged));
  }

  // Pure garbage of assorted sizes, including header-sized prefixes that
  // may contain a forged magic number by chance.
  for (int trial = 0; trial < 20; ++trial) {
    Bytes garbage(rng.uniform_u64(4096));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try_read_archive(std::move(garbage));
  }
}

// Codec-level forgery: a segment whose tag byte names an unknown method must
// throw (not read garbage), under random payloads of every shape.
TEST_P(ForgedArchive, ForgedCodecTagIsRejected) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Bytes seg(1 + rng.uniform_u64(512));
    seg[0] = static_cast<std::uint8_t>(5 + rng.uniform_u64(251));  // tag 5..255
    for (std::size_t i = 1; i < seg.size(); ++i) {
      seg[i] = static_cast<std::uint8_t>(rng.next_u64());
    }
    EXPECT_THROW(codec_decompress({seg.data(), seg.size()},
                                  rng.uniform_u64(4096)),
                 std::runtime_error);
  }
}

// Bitpack payload forgery: truncations, mutations and garbage against the
// sparse-index codec's strict validation — reject or decode, never crash.
TEST_P(ForgedArchive, BitpackForgedPayloadsNeverCrash) {
  Rng rng(5000 + GetParam());
  Bytes in(40000, 0);
  for (int i = 0; i < 300; ++i) {
    in[rng.uniform_u64(in.size())] |=
        static_cast<std::uint8_t>(1u << (rng.next_u64() & 7));
  }
  const Bytes donor = bitpack_encode({in.data(), in.size()});

  auto try_decode = [&](const Bytes& payload) {
    try {
      Bytes out = bitpack_decode({payload.data(), payload.size()}, in.size());
      return out.size() == in.size();
    } catch (const std::exception&) {
      return false;
    }
  };

  // Any strict truncation must be rejected: the stream frames every chunk
  // with an exact payload length, so a shortened tail is always detectable.
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t len = rng.uniform_u64(donor.size());
    EXPECT_FALSE(try_decode(Bytes(donor.begin(),
                                  donor.begin() + static_cast<std::ptrdiff_t>(len))));
  }
  for (int trial = 0; trial < 40; ++trial) {
    Bytes forged = donor;
    const std::size_t flips = 1 + rng.uniform_u64(6);
    for (std::size_t i = 0; i < flips; ++i) {
      forged[rng.uniform_u64(forged.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    try_decode(forged);
  }
  for (int trial = 0; trial < 20; ++trial) {
    Bytes garbage(rng.uniform_u64(2048));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try_decode(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForgedArchive, ::testing::Range(0, 4));

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 6));

// ---- forged wire frames ---------------------------------------------------

// The daemon side of the forged-archive discipline: truncated, oversized and
// garbage frames against a live loopback server must yield ERROR frames or
// clean disconnects — never a crash, and never a wedged server.  The real
// assertion is liveness: after the whole corpus, a well-formed client still
// retrieves byte-exactly.
class ForgedFrames : public ::testing::TestWithParam<int> {};

Bytes wire_frame(std::uint8_t op, const Bytes& body) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.size() + 1));
  w.u8(op);
  w.bytes({body.data(), body.size()});
  return w.take();
}

void send_raw(const net::Socket& sock, const Bytes& bytes) {
  // Best-effort: the server may legitimately have closed on us already.
  (void)::send(sock.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

void drain_replies(const net::Socket& sock) {
  std::uint8_t buf[4096];
  while (::recv(sock.fd(), buf, sizeof buf, 0) > 0) {
  }
}

TEST_P(ForgedFrames, GarbageTruncatedOversizedFramesNeverCrashTheServer) {
  Rng rng(6000 + GetParam());

  Dims dims{12, 10, 8};
  NdArray<double> field(dims);
  for (std::size_t i = 0; i < field.count(); ++i) {
    field[i] = std::sin(0.2 * static_cast<double>(i));
  }
  Options opt;
  opt.error_bound = 1e-5;
  opt.block_side = 4;
  opt.progressive_threshold = 256;
  const Bytes archive = compress(field.const_view(), opt);

  net::Server server;
  server.export_memory("a", Bytes(archive));
  server.start();
  const std::string addr = server.address();

  Bytes hello_body;
  {
    ByteWriter w;
    w.u32(net::kWireVersion);
    hello_body = w.take();
  }

  for (int trial = 0; trial < 16; ++trial) {
    net::Socket sock = net::dial(addr);
    sock.set_timeouts(/*recv_ms=*/300, /*send_ms=*/300);
    switch (trial % 8) {
      case 0: {  // pure garbage, never a valid length prefix in sight
        Bytes garbage(1 + rng.uniform_u64(512));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
        send_raw(sock, garbage);
        break;
      }
      case 1: {  // zero-length frame: illegal framing
        ByteWriter w;
        w.u32(0);
        send_raw(sock, w.take());
        break;
      }
      case 2: {  // length far past the server's inbound cap
        ByteWriter w;
        w.u32(0x7FFFFFFF);
        w.u8(0x01);
        send_raw(sock, w.take());
        break;
      }
      case 3: {  // truncated frame: promise 100 bytes, deliver 5, hang up
        ByteWriter w;
        w.u32(100);
        w.u8(0x01);
        w.u32(net::kWireVersion);
        send_raw(sock, w.take());
        break;
      }
      case 4: {  // HELLO with a version the server does not speak
        ByteWriter w;
        w.u32(rng.uniform_u64(2) != 0 ? 0u : 0xDEADu);
        send_raw(sock, wire_frame(0x01, w.take()));
        break;
      }
      case 5: {  // op the protocol never defined, before HELLO
        Bytes body(rng.uniform_u64(32));
        for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u64());
        send_raw(sock, wire_frame(0x7E, body));
        break;
      }
      case 6: {  // valid HELLO, then a PLAN whose body is random garbage
        send_raw(sock, wire_frame(0x01, hello_body));
        Bytes body(1 + rng.uniform_u64(64));
        for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u64());
        send_raw(sock, wire_frame(0x03, body));
        break;
      }
      default: {  // valid HELLO, then a frame-sized bite of a real archive
        send_raw(sock, wire_frame(0x01, hello_body));
        const std::size_t n = std::min<std::size_t>(
            archive.size(), 1 + rng.uniform_u64(256));
        send_raw(sock, wire_frame(0x02, Bytes(archive.begin(),
                                              archive.begin() +
                                                  static_cast<std::ptrdiff_t>(n))));
        break;
      }
    }
    sock.shutdown_both();
    drain_replies(sock);
  }

  // Liveness + correctness after the storm: the server still serves a real
  // client, byte-identical to a local reader.
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  local.retrieve(Request::full());
  net::RemoteReader<double> remote(addr, "a");
  remote.retrieve(Request::full());
  EXPECT_EQ(remote.data(), local.data());

  const net::ServeStats st = server.stats();
  EXPECT_GT(st.errors_sent, 0u);  // at least some forgeries drew an ERROR
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForgedFrames, ::testing::Range(0, 4));

}  // namespace
}  // namespace ipcomp
