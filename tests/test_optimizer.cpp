#include <gtest/gtest.h>

#include "loader/error_model.hpp"
#include "loader/optimizer.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

LevelPlanInput make_level(std::vector<std::uint64_t> sizes,
                          std::vector<double> err, unsigned loaded = 0) {
  LevelPlanInput in;
  in.plane_size = std::move(sizes);
  in.err = std::move(err);
  in.already_loaded = loaded;
  return in;
}

std::vector<LevelPlanInput> random_levels(Rng& rng, std::size_t n_levels) {
  std::vector<LevelPlanInput> levels;
  for (std::size_t l = 0; l < n_levels; ++l) {
    unsigned planes = static_cast<unsigned>(rng.uniform_u64(12));
    std::vector<std::uint64_t> sizes(planes);
    for (auto& s : sizes) s = 1 + rng.uniform_u64(10000);
    std::vector<double> err(planes + 1);
    err[0] = 0;
    double acc = 0;
    for (unsigned d = 1; d <= planes; ++d) {
      acc += rng.uniform(0, 1);
      err[d] = acc;  // monotone here, though the planner does not require it
    }
    levels.push_back(make_level(std::move(sizes), std::move(err)));
  }
  return levels;
}

double plan_error(const std::vector<LevelPlanInput>& levels, const LoadPlan& p) {
  double e = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    e += levels[i].err[levels[i].plane_size.size() - p.planes_to_use[i]];
  }
  return e;
}

std::uint64_t plan_new_bytes(const std::vector<LevelPlanInput>& levels,
                             const LoadPlan& p) {
  std::uint64_t b = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    unsigned n = static_cast<unsigned>(levels[i].plane_size.size());
    for (unsigned k = n - p.planes_to_use[i]; k < n - levels[i].already_loaded; ++k) {
      b += levels[i].plane_size[k];
    }
  }
  return b;
}

class PlannerKinds : public ::testing::TestWithParam<PlannerKind> {};

TEST_P(PlannerKinds, ErrorBudgetNeverViolated) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    auto levels = random_levels(rng, 1 + rng.uniform_u64(8));
    double budget = rng.uniform(0, 10);
    auto plan = plan_error_bound(levels, budget, GetParam());
    EXPECT_LE(plan_error(levels, plan), budget + 1e-9);
    EXPECT_DOUBLE_EQ(plan.guaranteed_error, plan_error(levels, plan));
    EXPECT_EQ(plan.new_bytes, plan_new_bytes(levels, plan));
  }
}

TEST_P(PlannerKinds, ByteBudgetNeverViolated) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    auto levels = random_levels(rng, 1 + rng.uniform_u64(8));
    std::uint64_t budget = rng.uniform_u64(100000);
    auto plan = plan_byte_budget(levels, budget, GetParam());
    EXPECT_LE(plan_new_bytes(levels, plan), budget);
  }
}

TEST_P(PlannerKinds, RespectsAlreadyLoaded) {
  Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    auto levels = random_levels(rng, 4);
    for (auto& l : levels) {
      l.already_loaded = static_cast<unsigned>(
          rng.uniform_u64(l.plane_size.size() + 1));
    }
    auto plan = plan_error_bound(levels, rng.uniform(0, 5), GetParam());
    for (std::size_t i = 0; i < levels.size(); ++i) {
      EXPECT_GE(plan.planes_to_use[i], levels[i].already_loaded);
    }
  }
}

TEST_P(PlannerKinds, ZeroBudgetLoadsOnlyFreebies) {
  auto levels = std::vector<LevelPlanInput>{
      make_level({100, 200, 300}, {0, 0, 0.5, 2.0}),
  };
  auto plan = plan_error_bound(levels, 0.0, GetParam());
  // err[1] = 0 means the lowest plane may be dropped for free.
  EXPECT_LE(plan.guaranteed_error, 0.0);
  EXPECT_EQ(plan.planes_to_use[0], 2u);
}

TEST_P(PlannerKinds, HugeBudgetDropsEverything) {
  auto levels = std::vector<LevelPlanInput>{
      make_level({10, 10}, {0, 1, 2}),
      make_level({10, 10, 10}, {0, 1, 2, 3}),
  };
  auto plan = plan_error_bound(levels, 1e9, GetParam());
  EXPECT_EQ(plan.planes_to_use[0], 0u);
  EXPECT_EQ(plan.planes_to_use[1], 0u);
  EXPECT_EQ(plan.new_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, PlannerKinds,
                         ::testing::Values(PlannerKind::kDynamicProgramming,
                                           PlannerKind::kGreedy,
                                           PlannerKind::kUniform),
                         [](const auto& info) {
                           switch (info.param) {
                             case PlannerKind::kDynamicProgramming: return "DP";
                             case PlannerKind::kGreedy: return "Greedy";
                             case PlannerKind::kUniform: return "Uniform";
                           }
                           return "Unknown";
                         });

TEST(Planner, DpBeatsOrMatchesGreedyAndUniformInAggregate) {
  // DP solves the discretized knapsack exactly; greedy/uniform are heuristics.
  // Discretization can cost DP a sliver on single instances, so dominance is
  // asserted in aggregate over many random instances.
  Rng rng(45);
  std::uint64_t dp_bytes = 0, gr_bytes = 0, un_bytes = 0;
  double dp_err = 0, gr_err = 0, un_err = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto levels = random_levels(rng, 1 + rng.uniform_u64(8));
    double ebudget = rng.uniform(0.1, 8);
    dp_bytes += plan_error_bound(levels, ebudget, PlannerKind::kDynamicProgramming).new_bytes;
    gr_bytes += plan_error_bound(levels, ebudget, PlannerKind::kGreedy).new_bytes;
    un_bytes += plan_error_bound(levels, ebudget, PlannerKind::kUniform).new_bytes;

    std::uint64_t bbudget = rng.uniform_u64(80000);
    dp_err += plan_byte_budget(levels, bbudget, PlannerKind::kDynamicProgramming).guaranteed_error;
    gr_err += plan_byte_budget(levels, bbudget, PlannerKind::kGreedy).guaranteed_error;
    un_err += plan_byte_budget(levels, bbudget, PlannerKind::kUniform).guaranteed_error;
  }
  EXPECT_LE(dp_bytes, gr_bytes);
  EXPECT_LE(dp_bytes, un_bytes);
  EXPECT_LE(dp_err, gr_err + 1e-9);
  EXPECT_LE(dp_err, un_err + 1e-9);
}

TEST(Planner, EmptyLevelListWorks) {
  std::vector<LevelPlanInput> levels;
  auto plan = plan_error_bound(levels, 1.0);
  EXPECT_TRUE(plan.planes_to_use.empty());
  EXPECT_EQ(plan.guaranteed_error, 0.0);
}

TEST(Planner, LevelWithNoPlanes) {
  auto levels = std::vector<LevelPlanInput>{make_level({}, {0.0})};
  auto plan = plan_error_bound(levels, 1.0);
  EXPECT_EQ(plan.planes_to_use[0], 0u);
  auto planb = plan_byte_budget(levels, 10);
  EXPECT_EQ(planb.planes_to_use[0], 0u);
}

TEST(ErrorModel, PaperAmplificationValues) {
  EXPECT_DOUBLE_EQ(
      level_amplification(ErrorModel::kPaper, InterpKind::kLinear, 3, 1), 1.0);
  EXPECT_DOUBLE_EQ(
      level_amplification(ErrorModel::kPaper, InterpKind::kCubic, 3, 1), 1.0);
  EXPECT_DOUBLE_EQ(
      level_amplification(ErrorModel::kPaper, InterpKind::kCubic, 3, 3),
      1.25 * 1.25);
}

TEST(ErrorModel, ConservativeDominatesPaper) {
  for (unsigned rank = 1; rank <= 4; ++rank) {
    for (unsigned l = 1; l <= 10; ++l) {
      for (auto kind : {InterpKind::kLinear, InterpKind::kCubic}) {
        EXPECT_GE(level_amplification(ErrorModel::kConservative, kind, rank, l),
                  level_amplification(ErrorModel::kPaper, kind, rank, l));
      }
    }
  }
}

TEST(ErrorModel, ConservativeLinearIsRankTimes) {
  EXPECT_DOUBLE_EQ(
      level_amplification(ErrorModel::kConservative, InterpKind::kLinear, 3, 1),
      3.0);
  EXPECT_DOUBLE_EQ(
      level_amplification(ErrorModel::kConservative, InterpKind::kLinear, 3, 5),
      3.0);
}

TEST(ErrorModel, ConservativeCubicRecurrence) {
  // g = (p^r - 1)/(p - 1), growth (p^r)^(l-1)
  const double p = 1.25, r = 3;
  const double pr = std::pow(p, r);
  const double g = (pr - 1) / (p - 1);
  EXPECT_NEAR(
      level_amplification(ErrorModel::kConservative, InterpKind::kCubic, 3, 1),
      g, 1e-12);
  EXPECT_NEAR(
      level_amplification(ErrorModel::kConservative, InterpKind::kCubic, 3, 4),
      g * pr * pr * pr, 1e-9);
}

}  // namespace
}  // namespace ipcomp
