#include <gtest/gtest.h>

#include "test_util.hpp"
#include "transform/zfp.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;
using namespace zfp_detail;

TEST(ZfpLift, ForwardInverseNearIdentity) {
  // The lifting steps lose at most the LSBs to the >>1 shifts; round-tripping
  // must agree within a few units in the last place.
  Rng rng(1);
  for (int trial = 0; trial < 10000; ++trial) {
    std::int64_t v[4], orig[4];
    for (int i = 0; i < 4; ++i) {
      orig[i] = v[i] = static_cast<std::int64_t>(rng.next_u64() >> 12) -
                       (1ll << 51);
    }
    fwd_lift(v, 1);
    inv_lift(v, 1);
    for (int i = 0; i < 4; ++i) {
      EXPECT_LE(std::abs(v[i] - orig[i]), 4) << "trial " << trial;
    }
  }
}

TEST(ZfpLift, DecorrelatesSmoothRamp) {
  // On a linear ramp the transform concentrates energy in the DC coefficient.
  std::int64_t v[4] = {1000, 2000, 3000, 4000};
  fwd_lift(v, 1);
  EXPECT_GT(std::abs(v[0]), std::abs(v[2]));
  EXPECT_GT(std::abs(v[0]), std::abs(v[3]));
}

TEST(ZfpNegabinary64, RoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    std::int64_t v = static_cast<std::int64_t>(rng.next_u64() >> 2) - (1ll << 61);
    EXPECT_EQ(nb64_decode(nb64_encode(v)), v);
  }
  EXPECT_EQ(nb64_decode(nb64_encode(0)), 0);
  EXPECT_EQ(nb64_encode(0), 0u);
}

struct ZfpCase {
  Dims dims;
  double tol;
};

class ZfpAccuracy : public ::testing::TestWithParam<ZfpCase> {};

TEST_P(ZfpAccuracy, ErrorWithinTolerance) {
  const auto& c = GetParam();
  auto field = smooth_field(c.dims, 7, /*noise=*/0.1);
  ZfpCompressor zfp;
  Bytes archive = zfp.compress(field.const_view(), c.tol);
  auto recon = zfp.decompress(archive);
  EXPECT_LE(linf(field.const_view(), recon), c.tol);
  EXPECT_EQ(ZfpCompressor::archive_dims(archive), c.dims);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ZfpAccuracy,
    ::testing::Values(ZfpCase{Dims{256}, 1e-3}, ZfpCase{Dims{1000}, 1e-6},
                      ZfpCase{Dims{3}, 1e-4}, ZfpCase{Dims{64, 64}, 1e-4},
                      ZfpCase{Dims{33, 65}, 1e-8}, ZfpCase{Dims{16, 16, 16}, 1e-2},
                      ZfpCase{Dims{31, 17, 23}, 1e-6},
                      ZfpCase{Dims{40, 40, 40}, 1e-10}),
    [](const auto& info) {
      std::string s = info.param.dims.to_string() + "_tol" +
                      std::to_string(static_cast<int>(-std::log10(info.param.tol)));
      for (auto& ch : s) {
        if (ch == 'x') ch = '_';
      }
      return s;
    });

TEST(Zfp, SmoothDataCompresses) {
  auto field = smooth_field(Dims{64, 64, 64}, 8, /*noise=*/0.0);
  ZfpCompressor zfp;
  Bytes archive = zfp.compress(field.const_view(), 1e-4);
  double ratio = static_cast<double>(field.count() * 8) / archive.size();
  EXPECT_GT(ratio, 8.0);
}

TEST(Zfp, AllZeroBlockCollapses) {
  NdArray<double> field(Dims{64, 64});
  ZfpCompressor zfp;
  Bytes archive = zfp.compress(field.const_view(), 1e-6);
  // 256 blocks, one flag bit each, plus the header.
  EXPECT_LT(archive.size(), 200u);
  auto recon = zfp.decompress(archive);
  for (double v : recon) EXPECT_EQ(v, 0.0);
}

TEST(Zfp, TinyValuesBelowToleranceVanish) {
  NdArray<double> field(Dims{32, 32});
  for (std::size_t i = 0; i < field.count(); ++i) field[i] = 1e-9;
  ZfpCompressor zfp;
  Bytes archive = zfp.compress(field.const_view(), 1e-3);
  auto recon = zfp.decompress(archive);
  EXPECT_LE(linf(field.const_view(), recon), 1e-3);
}

TEST(Zfp, LooserToleranceSmallerArchive) {
  auto field = smooth_field(Dims{48, 48, 48}, 9, 0.05);
  ZfpCompressor zfp;
  auto tight = zfp.compress(field.const_view(), 1e-9);
  auto loose = zfp.compress(field.const_view(), 1e-3);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Zfp, WideDynamicRange) {
  Rng rng(10);
  NdArray<double> field(Dims{24, 24, 24});
  for (std::size_t i = 0; i < field.count(); ++i) {
    field[i] = rng.normal() * std::pow(10.0, rng.uniform(-6, 6));
  }
  ZfpCompressor zfp;
  const double tol = 1e-3;
  Bytes archive = zfp.compress(field.const_view(), tol);
  auto recon = zfp.decompress(archive);
  EXPECT_LE(linf(field.const_view(), recon), tol);
}

TEST(Zfp, RejectsNonPositiveTolerance) {
  auto field = smooth_field(Dims{8, 8}, 11);
  ZfpCompressor zfp;
  EXPECT_THROW(zfp.compress(field.const_view(), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ipcomp
