#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "analysis/image.hpp"
#include "analysis/stencil.hpp"
#include "data/datasets.hpp"
#include "io/archive.hpp"

namespace ipcomp {
namespace {

NdArray<double> coordinate_field(const Dims& dims, double az, double ay, double ax,
                                 double quad = 0.0) {
  NdArray<double> f(dims);
  const auto s = dims.strides();
  for (std::size_t i = 0; i < f.count(); ++i) {
    const double z = static_cast<double>(i / s[0]);
    const double y = static_cast<double>((i / s[1]) % dims[1]);
    const double x = static_cast<double>(i % dims[2]);
    f[i] = az * z + ay * y + ax * x + quad * (x * x + y * y + z * z);
  }
  return f;
}

TEST(Stencil, GradientOfLinearFieldIsConstant) {
  Dims dims{8, 9, 10};
  auto f = coordinate_field(dims, 2.0, -3.0, 0.5);
  auto gz = gradient(f.const_view(), 0);
  auto gy = gradient(f.const_view(), 1);
  auto gx = gradient(f.const_view(), 2);
  for (std::size_t i = 0; i < f.count(); ++i) {
    EXPECT_NEAR(gz[i], 2.0, 1e-12);
    EXPECT_NEAR(gy[i], -3.0, 1e-12);
    EXPECT_NEAR(gx[i], 0.5, 1e-12);
  }
}

TEST(Stencil, LaplacianOfQuadratic) {
  // f = x^2 + y^2 + z^2 has Laplacian 6 (interior points).
  Dims dims{10, 10, 10};
  auto f = coordinate_field(dims, 0, 0, 0, 1.0);
  auto lap = laplacian(f.const_view());
  const auto s = dims.strides();
  for (std::size_t z = 1; z < 9; ++z) {
    for (std::size_t y = 1; y < 9; ++y) {
      for (std::size_t x = 1; x < 9; ++x) {
        EXPECT_NEAR(lap[z * s[0] + y * s[1] + x], 6.0, 1e-9);
      }
    }
  }
}

TEST(Stencil, CurlOfGradientIsZero) {
  // V = grad(phi) has zero curl; use a smooth phi.
  Dims dims{16, 16, 16};
  NdArray<double> phi(dims);
  const auto s = dims.strides();
  for (std::size_t i = 0; i < phi.count(); ++i) {
    const double z = static_cast<double>(i / s[0]) / 16.0;
    const double y = static_cast<double>((i / s[1]) % 16) / 16.0;
    const double x = static_cast<double>(i % 16) / 16.0;
    phi[i] = std::sin(3 * x) * std::cos(2 * y) + z * z;
  }
  auto vz = gradient(phi.const_view(), 0);
  auto vy = gradient(phi.const_view(), 1);
  auto vx = gradient(phi.const_view(), 2);
  auto curl = curl_magnitude(vx.const_view(), vy.const_view(), vz.const_view());
  // Interior: discrete curl of a discrete gradient is ~0 (commuting central
  // differences); boundaries use one-sided stencils and are excluded.
  double max_interior = 0;
  for (std::size_t z = 1; z < 15; ++z) {
    for (std::size_t y = 1; y < 15; ++y) {
      for (std::size_t x = 1; x < 15; ++x) {
        max_interior = std::max(max_interior, curl[z * s[0] + y * s[1] + x]);
      }
    }
  }
  EXPECT_LT(max_interior, 1e-12);
}

TEST(Stencil, CurlOfRigidRotation) {
  // V = omega x r with omega = (0, 0, w): |curl| = 2w everywhere.
  Dims dims{8, 12, 12};
  const double w = 1.5;
  NdArray<double> vx(dims), vy(dims), vz(dims);
  const auto s = dims.strides();
  for (std::size_t i = 0; i < vx.count(); ++i) {
    const double y = static_cast<double>((i / s[1]) % dims[1]);
    const double x = static_cast<double>(i % dims[2]);
    // Rotation about the z axis: V_x = -w*y, V_y = w*x, V_z = 0.
    vz[i] = 0.0;
    vy[i] = w * x;
    vx[i] = -w * y;
  }
  auto curl = curl_magnitude(vx.const_view(), vy.const_view(), vz.const_view());
  for (std::size_t z = 1; z + 1 < dims[0]; ++z) {
    for (std::size_t y = 1; y + 1 < dims[1]; ++y) {
      for (std::size_t x = 1; x + 1 < dims[2]; ++x) {
        EXPECT_NEAR(curl[z * s[0] + y * s[1] + x], 2.0 * w, 1e-9);
      }
    }
  }
}

TEST(Stencil, NrmseProperties) {
  Dims dims{4, 4, 4};
  auto f = coordinate_field(dims, 1, 1, 1);
  EXPECT_EQ(nrmse(f.const_view(), f.const_view()), 0.0);
  NdArray<double> g(dims, f.vector());
  g[10] += 1.0;
  EXPECT_GT(nrmse(f.const_view(), g.const_view()), 0.0);
}

TEST(Image, WritesValidPgmAndPpm) {
  auto field = generate_field(Field::kDensity, Dims{8, 16, 24});
  std::string pgm = ::testing::TempDir() + "/ipcomp_slice.pgm";
  std::string ppm = ::testing::TempDir() + "/ipcomp_slice.ppm";
  write_slice_pgm(pgm, field.const_view(), 4, 0.0, 3.0);
  write_slice_ppm(ppm, field.const_view(), 4, 0.0, 3.0);
  Bytes g = read_file(pgm);
  Bytes p = read_file(ppm);
  // P5 header + 16*24 pixels; P6 has 3 channels.
  EXPECT_EQ(g[0], 'P');
  EXPECT_EQ(g[1], '5');
  EXPECT_GT(g.size(), 16u * 24u);
  EXPECT_EQ(p[1], '6');
  EXPECT_GT(p.size(), 3u * 16u * 24u);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

TEST(Image, RejectsBadSlice) {
  auto field = generate_field(Field::kDensity, Dims{4, 8, 8});
  EXPECT_THROW(
      write_slice_pgm(::testing::TempDir() + "/x.pgm", field.const_view(), 9, 0, 1),
      std::out_of_range);
}

}  // namespace
}  // namespace ipcomp
