// Block-decomposed (archive v2) compression: geometry, round-trips,
// thread-count determinism, region-of-interest retrieval, and forged
// block-table rejection (mirroring the v1 forged-input suite).
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "ipcomp.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

TEST(BlockGridTest, WholeFieldIsOneBlock) {
  BlockGrid g = BlockGrid::analyze(Dims{100, 50}, 0);
  EXPECT_EQ(g.n_blocks, 1u);
  EXPECT_EQ(g.block_dims(0), Dims({100, 50}));
  EXPECT_EQ(g.origin_linear(0), 0u);
}

TEST(BlockGridTest, EdgeBlocksAreClipped) {
  BlockGrid g = BlockGrid::analyze(Dims{100, 50}, 32);
  EXPECT_EQ(g.grid[0], 4u);  // ceil(100/32)
  EXPECT_EQ(g.grid[1], 2u);  // ceil(50/32)
  EXPECT_EQ(g.n_blocks, 8u);
  EXPECT_EQ(g.block_dims(0), Dims({32, 32}));
  // Last block in both dimensions: 100 - 3*32 = 4 rows, 50 - 32 = 18 cols.
  EXPECT_EQ(g.block_dims(7), Dims({4, 18}));
  EXPECT_EQ(g.origin_linear(7), std::size_t{96} * 50 + 32);
}

TEST(BlockGridTest, BlockSideOneRejected) {
  EXPECT_THROW(BlockGrid::analyze(Dims{8, 8}, 1), std::invalid_argument);
  Options opt;
  opt.block_side = 1;
  auto field = smooth_field(Dims{8, 8}, 2);
  EXPECT_THROW(compress(field.const_view(), opt), std::invalid_argument);
}

TEST(BlockGridTest, HugeBlockSideDoesNotOverflowToZeroBlocks) {
  // (dims + side - 1) would wrap for side near SIZE_MAX and silently yield a
  // zero-block grid (an archive containing no data); the divide must be
  // overflow-safe and land on one block per dimension.
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  BlockGrid g = BlockGrid::analyze(Dims{256, 256}, huge);
  EXPECT_EQ(g.n_blocks, 1u);
  EXPECT_EQ(g.block_dims(0), Dims({256, 256}));

  auto field = smooth_field(Dims{20, 20}, 3);
  Options opt;
  opt.error_bound = 1e-5;
  opt.relative = false;
  opt.block_side = huge;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-5 * (1 + 1e-9));
}

TEST(BlockGridTest, Intersection) {
  BlockGrid g = BlockGrid::analyze(Dims{64, 64}, 32);
  std::array<std::size_t, kMaxRank> lo{10, 40};
  std::array<std::size_t, kMaxRank> hi{20, 50};
  EXPECT_FALSE(g.intersects(0, lo, hi));
  EXPECT_TRUE(g.intersects(1, lo, hi));  // rows 0..31, cols 32..63
  EXPECT_FALSE(g.intersects(2, lo, hi));
  EXPECT_FALSE(g.intersects(3, lo, hi));
}

TEST(BlocksTest, SegmentIdV2KeyRoundTrip) {
  SegmentId id{1, 7, 29, 123456};
  EXPECT_EQ(SegmentId::from_key(id.key(kArchiveV2), kArchiveV2), id);
  // v1 keys have no room for a block ordinal.
  EXPECT_THROW(id.key(kArchiveV1), std::runtime_error);
}

struct BlockCase {
  Dims dims;
  std::size_t block_side;
  double eb;
};

class BlockRoundTrip : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockRoundTrip, FullRetrievalWithinErrorBound) {
  const auto& c = GetParam();
  auto field = smooth_field(c.dims, /*seed=*/17, /*noise=*/0.05);
  Options opt;
  opt.error_bound = c.eb;
  opt.relative = false;
  opt.block_side = c.block_side;
  Bytes archive = compress(field.const_view(), opt);

  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), c.eb * (1 + 1e-9));
  EXPECT_LE(st.guaranteed_error, c.eb * (1 + 1e-9));
  EXPECT_EQ(reader.data().size(), c.dims.count());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BlockRoundTrip,
    ::testing::Values(
        BlockCase{Dims{1000}, 64, 1e-3},
        BlockCase{Dims{1000}, 1024, 1e-3},  // block larger than the field
        BlockCase{Dims{7}, 4, 1e-6},
        BlockCase{Dims{64, 64}, 16, 1e-4},
        BlockCase{Dims{63, 65}, 16, 1e-4},
        BlockCase{Dims{17, 5}, 8, 1e-8},
        BlockCase{Dims{24, 24, 24}, 12, 1e-4},
        BlockCase{Dims{31, 17, 9}, 8, 1e-6},
        BlockCase{Dims{10, 30, 20}, 7, 1e-2},
        BlockCase{Dims{6, 6, 6, 6}, 4, 1e-4}),
    [](const auto& info) {
      std::string s = info.param.dims.to_string() + "_b" +
                      std::to_string(info.param.block_side);
      for (auto& ch : s) {
        if (ch == 'x') ch = '_';
      }
      return s;
    });

TEST(BlocksTest, FloatBlockRoundTrip) {
  auto field = smooth_field<float>(Dims{40, 40, 20}, 5, 0.01f);
  Options opt;
  opt.error_bound = 1e-3;
  opt.relative = false;
  opt.block_side = 16;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<float> reader(src);
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-3 * (1 + 1e-6));
}

TEST(BlocksTest, RelativeBoundResolvedOverWholeField) {
  auto field = smooth_field(Dims{48, 48}, 6);
  Options opt;
  opt.error_bound = 1e-4;
  opt.relative = true;
  opt.block_side = 16;
  const double range = testutil::value_range(field.const_view());
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  EXPECT_NEAR(reader.header().eb, 1e-4 * range, 1e-12 * range);
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-4 * range * (1 + 1e-9));
}

TEST(BlocksTest, ResolveErrorBoundOverloadsAgree) {
  auto field = smooth_field(Dims{32, 32}, 7);
  Options opt;
  opt.error_bound = 1e-3;
  opt.relative = true;
  double lo = field[0], hi = field[0];
  for (std::size_t i = 0; i < field.count(); ++i) {
    lo = std::min(lo, field[i]);
    hi = std::max(hi, field[i]);
  }
  EXPECT_EQ(resolve_error_bound(field.const_view(), opt),
            resolve_error_bound(opt, lo, hi));
  opt.error_bound = 0.0;
  EXPECT_THROW(resolve_error_bound(opt, lo, hi), std::invalid_argument);
}

TEST(BlocksTest, ProgressiveRequestsHonorGuarantee) {
  auto field = smooth_field(Dims{48, 48, 48}, 8, 0.02);
  Options opt;
  opt.error_bound = 1e-7;
  opt.relative = false;
  opt.block_side = 16;
  opt.progressive_threshold = 256;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  for (double target : {1e-2, 1e-4, 1e-6}) {
    auto st = reader.retrieve(Request::error_bound(target));
    EXPECT_LE(st.guaranteed_error, target * (1 + 1e-9));
    EXPECT_LE(linf(field.const_view(), reader.data()),
              st.guaranteed_error * (1 + 1e-9))
        << "target " << target;
  }
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-7 * (1 + 1e-9));
}

TEST(BlocksTest, ArchiveBytesIdenticalAcrossThreadCounts) {
  auto field = smooth_field(Dims{40, 40, 24}, 21, 0.03);
  for (std::size_t block_side : {std::size_t{0}, std::size_t{16}}) {
    Options opt;
    opt.error_bound = 1e-5;
    opt.block_side = block_side;
#if defined(_OPENMP)
    const int saved = omp_get_max_threads();
#endif
    Bytes reference;
    for (int threads : {1, 2, 8}) {
#if defined(_OPENMP)
      omp_set_num_threads(threads);
#else
      (void)threads;
#endif
      Bytes archive = compress(field.const_view(), opt);
      if (reference.empty()) {
        reference = std::move(archive);
      } else {
        EXPECT_EQ(archive, reference)
            << "block_side " << block_side << " threads " << threads;
      }
    }
#if defined(_OPENMP)
    omp_set_num_threads(saved);
#endif
  }
}

TEST(BlocksTest, DecodedDataIdenticalAcrossThreadCounts) {
  auto field = smooth_field(Dims{36, 36, 18}, 22, 0.02);
  Options opt;
  opt.error_bound = 1e-5;
  opt.block_side = 12;
  Bytes archive = compress(field.const_view(), opt);
#if defined(_OPENMP)
  const int saved = omp_get_max_threads();
#endif
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
#if defined(_OPENMP)
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    MemorySource src{Bytes(archive)};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::error_bound(1e-3));
    reader.retrieve(Request::full());
    if (reference.empty()) {
      reference = reader.data();
    } else {
      EXPECT_EQ(reader.data(), reference) << "threads " << threads;
    }
  }
#if defined(_OPENMP)
  omp_set_num_threads(saved);
#endif
}

TEST(BlocksTest, RegionRetrievalReadsOnlyIntersectingBlocks) {
  auto field = smooth_field(Dims{48, 48, 48}, 9, 0.02);
  Options opt;
  opt.error_bound = 1e-6;
  opt.relative = false;
  opt.block_side = 16;
  Bytes archive = compress(field.const_view(), opt);
  const std::size_t total = archive.size();

  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  // One interior block's worth of data out of 27 blocks.
  std::array<std::size_t, kMaxRank> lo{16, 16, 16};
  std::array<std::size_t, kMaxRank> hi{32, 32, 32};
  auto st = reader.retrieve(Request::full().within(lo, hi));
  EXPECT_LT(st.bytes_total, total / 4);
  EXPECT_LE(st.guaranteed_error, 1e-6 * (1 + 1e-9));

  double region_err = 0.0;
  const auto strides = Dims({48, 48, 48}).strides();
  for (std::size_t z = lo[0]; z < hi[0]; ++z) {
    for (std::size_t y = lo[1]; y < hi[1]; ++y) {
      for (std::size_t x = lo[2]; x < hi[2]; ++x) {
        std::size_t i = z * strides[0] + y * strides[1] + x;
        region_err = std::max(region_err,
                              std::abs(field[i] - reader.data()[i]));
      }
    }
  }
  EXPECT_LE(region_err, 1e-6 * (1 + 1e-9));
}

TEST(BlocksTest, RegionSpanningBlocksThenFullRefinement) {
  auto field = smooth_field(Dims{40, 40}, 10, 0.05);
  Options opt;
  opt.error_bound = 1e-6;
  opt.relative = false;
  opt.block_side = 16;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);

  // A region straddling four blocks; then refine the whole field and check
  // the mixed per-block states converge to the full-fidelity output.
  std::array<std::size_t, kMaxRank> lo{10, 10};
  std::array<std::size_t, kMaxRank> hi{20, 20};
  reader.retrieve(Request::full().within(lo, hi));
  const auto strides = Dims({40, 40}).strides();
  for (std::size_t z = lo[0]; z < hi[0]; ++z) {
    for (std::size_t y = lo[1]; y < hi[1]; ++y) {
      std::size_t i = z * strides[0] + y;
      EXPECT_NEAR(field[i], reader.data()[i], 1e-6 * (1 + 1e-9));
    }
  }
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-6 * (1 + 1e-9));
}

TEST(BlocksTest, PartialRequestThenRegionGoesToFullFidelity) {
  auto field = smooth_field(Dims{40, 40}, 11, 0.05);
  Options opt;
  opt.error_bound = 1e-7;
  opt.relative = false;
  opt.block_side = 16;
  opt.progressive_threshold = 64;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);

  reader.retrieve(Request::error_bound(1e-3));  // coarse everywhere
  std::array<std::size_t, kMaxRank> lo{0, 0};
  std::array<std::size_t, kMaxRank> hi{16, 16};
  auto st = reader.retrieve(Request::full().within(lo, hi));  // block 0 refined to full
  EXPECT_LE(st.guaranteed_error, 1e-7 * (1 + 1e-9));
  for (std::size_t z = 0; z < 16; ++z) {
    for (std::size_t y = 0; y < 16; ++y) {
      EXPECT_NEAR(field[z * 40 + y], reader.data()[z * 40 + y],
                  1e-7 * (1 + 1e-9));
    }
  }
}

TEST(BlocksTest, RegionOnWholeFieldArchiveEqualsFull) {
  auto field = smooth_field(Dims{32, 32}, 12);
  Options opt;
  opt.error_bound = 1e-5;
  opt.relative = false;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  std::array<std::size_t, kMaxRank> lo{0, 0};
  std::array<std::size_t, kMaxRank> hi{8, 8};
  reader.retrieve(Request::full().within(lo, hi));
  // The single block spans the field, so everything is loaded.
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-5 * (1 + 1e-9));
}

TEST(BlocksTest, BadRegionBoundsRejected) {
  auto field = smooth_field(Dims{16, 16}, 13);
  Options opt;
  opt.block_side = 8;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  std::array<std::size_t, kMaxRank> lo{0, 8};
  std::array<std::size_t, kMaxRank> hi{8, 8};  // empty in dim 1
  EXPECT_THROW(reader.retrieve(Request::full().within(lo, hi)), std::invalid_argument);
  hi = {8, 17};  // out of range in dim 1
  lo = {0, 0};
  EXPECT_THROW(reader.retrieve(Request::full().within(lo, hi)), std::invalid_argument);
}

// ---- forged block tables -------------------------------------------------

TEST(BlocksForged, HeaderBlockCountMismatchRejected) {
  // A coherent v2 header whose block table disagrees with the geometry
  // derived from dims + block_side (here: 1000 tables instead of 4).
  Header h;
  h.dtype = DataType::kFloat64;
  h.dims = Dims{8, 8};
  h.eb = 1e-6;
  h.block_side = 4;
  h.block_levels.resize(1000);
  Bytes raw = h.serialize();
  EXPECT_THROW(Header::parse(raw), std::runtime_error);
}

TEST(BlocksForged, HeaderHugeBlockCountRejected) {
  // Huge dims with a small block side put the derived block count far past
  // the stream size; parse must reject it before any allocation.
  ByteWriter w;
  w.u8(2);  // v2 tag
  w.u8(static_cast<std::uint8_t>(DataType::kFloat64));
  w.u8(2);  // rank
  w.varint(std::size_t{1} << 20);
  w.varint(std::size_t{1} << 20);
  w.f64(1e-6);
  w.u8(0);  // interp
  w.u8(2);  // prefix bits
  w.f64(0.0);
  w.f64(1.0);
  w.varint(2);                      // block_side
  w.varint((std::size_t{1} << 38));  // forged block count (matches geometry)
  Bytes raw = w.take();
  EXPECT_THROW(Header::parse(raw), std::runtime_error);
}

TEST(BlocksForged, HeaderBlockSideOneRejected) {
  ByteWriter w;
  w.u8(2);
  w.u8(static_cast<std::uint8_t>(DataType::kFloat64));
  w.u8(1);
  w.varint(8);
  w.f64(1e-6);
  w.u8(0);
  w.u8(2);
  w.f64(0.0);
  w.f64(1.0);
  w.varint(1);  // block_side 1: every element its own block
  w.varint(8);
  Bytes raw = w.take();
  EXPECT_THROW(Header::parse(raw), std::exception);
}

TEST(BlocksForged, ContainerHeaderVersionMismatchRejected) {
  auto field = smooth_field(Dims{16, 16}, 14);
  Bytes archive = compress(field.const_view(), {});  // v1 container
  // Forge the container version word (bytes 4..7) to v2: the v1 header
  // inside no longer matches the container and the reader must reject it.
  archive[4] = 2;
  MemorySource src(std::move(archive));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BlocksForged, MissingBlockSegmentRejected) {
  auto field = smooth_field(Dims{32, 32}, 15);
  Options opt;
  opt.error_bound = 1e-5;
  opt.block_side = 16;
  Bytes archive = compress(field.const_view(), opt);

  // Rebuild the archive without block 3's base segment.
  MemorySource original{Bytes(archive)};
  Header h = Header::parse(original.header());
  ArchiveBuilder forged;
  forged.set_version(kArchiveV2);
  forged.set_header(original.header());
  for (std::size_t b = 0; b < h.block_levels.size(); ++b) {
    for (std::size_t li = 0; li < h.block_levels[b].size(); ++li) {
      SegmentId base{kSegBase, static_cast<std::uint16_t>(li + 1), 0,
                     static_cast<std::uint32_t>(b)};
      if (b != 3) forged.add_segment(base, original.read_segment(base));
      const LevelHeader& lh = h.block_levels[b][li];
      for (std::uint32_t k = 0; k < lh.n_planes; ++k) {
        SegmentId plane{kSegPlane, static_cast<std::uint16_t>(li + 1), k,
                        static_cast<std::uint32_t>(b)};
        forged.add_segment(plane, original.read_segment(plane));
      }
    }
  }
  MemorySource src(forged.finish());
  ProgressiveReader<double> reader(src);
  EXPECT_THROW(reader.retrieve(Request::full()), std::runtime_error);
}

TEST(BlocksForged, DuplicateSegmentKeyRejected) {
  // The builder refuses duplicate ids (see ArchiveBuilderTest), so forge the
  // duplicate table by hand: two rows with the same key aliasing two payload
  // ranges must still be rejected by the parser.
  const std::uint64_t key = SegmentId{0, 1, 0}.key(kArchiveV1);
  ByteWriter w;
  w.u32(0x41435049u);  // "IPCA"
  w.u32(kArchiveV1);
  w.varint(1);  // header length
  w.u8(1);      // header payload
  w.varint(2);  // two table rows, same key
  w.u64(key);
  w.varint(8);
  w.u64(key);
  w.varint(8);
  Bytes blob = w.take();
  blob.insert(blob.end(), 16, 0xAA);  // both payload ranges
  EXPECT_THROW(MemorySource src(std::move(blob)), std::runtime_error);
}

}  // namespace
}  // namespace ipcomp
