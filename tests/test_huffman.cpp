#include <gtest/gtest.h>

#include <map>

#include "coding/huffman.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

// Kraft inequality must hold for any generated code.
void expect_kraft_valid(const std::vector<std::uint8_t>& lengths) {
  double k = 0.0;
  for (auto l : lengths) {
    if (l) k += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(k, 1.0 + 1e-12);
}

void round_trip(const std::vector<std::uint32_t>& symbols, std::size_t alphabet) {
  std::vector<std::uint64_t> freq(alphabet, 0);
  for (auto s : symbols) ++freq[s];
  auto lengths = build_code_lengths(freq);
  expect_kraft_valid(lengths);

  HuffmanEncoder enc(lengths);
  BitWriter bw;
  for (auto s : symbols) enc.encode(bw, s);
  Bytes bits = bw.finish();

  HuffmanDecoder dec(lengths);
  BitReader br({bits.data(), bits.size()});
  for (auto s : symbols) {
    ASSERT_EQ(dec.decode(br), s);
  }
}

TEST(Huffman, TwoSymbols) { round_trip({0, 1, 0, 0, 1, 0}, 2); }

TEST(Huffman, SingleSymbolAlphabet) {
  round_trip(std::vector<std::uint32_t>(100, 5), 16);
}

TEST(Huffman, UniformAlphabet) {
  std::vector<std::uint32_t> syms;
  for (std::uint32_t i = 0; i < 256; ++i) syms.push_back(i);
  round_trip(syms, 256);
}

TEST(Huffman, SkewedDistribution) {
  Rng rng(1);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 20000; ++i) {
    // Geometric-ish: mostly symbol 0.
    std::uint32_t s = 0;
    while (rng.uniform() < 0.5 && s < 40) ++s;
    syms.push_back(s);
  }
  round_trip(syms, 64);
}

TEST(Huffman, LargeAlphabet) {
  Rng rng(2);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 50000; ++i) {
    syms.push_back(static_cast<std::uint32_t>(rng.uniform_u64(60000)));
  }
  round_trip(syms, 65536);
}

TEST(Huffman, LengthLimitHolds) {
  // Fibonacci-like frequencies force deep trees in unlimited Huffman.
  std::vector<std::uint64_t> freq;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 50; ++i) {
    freq.push_back(a);
    std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  auto lengths = build_code_lengths(freq, 16);
  for (auto l : lengths) EXPECT_LE(l, 16);
  expect_kraft_valid(lengths);
  // Must still decode correctly.
  HuffmanEncoder enc(lengths);
  HuffmanDecoder dec(lengths);
  BitWriter bw;
  for (std::uint32_t s = 0; s < freq.size(); ++s) enc.encode(bw, s);
  Bytes bits = bw.finish();
  BitReader br({bits.data(), bits.size()});
  for (std::uint32_t s = 0; s < freq.size(); ++s) EXPECT_EQ(dec.decode(br), s);
}

TEST(Huffman, OptimalForPowersOfTwo) {
  // Frequencies 8,4,2,1,1 have exact optimal lengths 1,2,3,4,4.
  std::vector<std::uint64_t> freq = {8, 4, 2, 1, 1};
  auto lengths = build_code_lengths(freq);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 2);
  EXPECT_EQ(lengths[2], 3);
  EXPECT_EQ(lengths[3], 4);
  EXPECT_EQ(lengths[4], 4);
}

TEST(Huffman, CodeLengthSerialization) {
  std::vector<std::uint64_t> freq(1000, 0);
  freq[3] = 10;
  freq[500] = 5;
  freq[999] = 1;
  auto lengths = build_code_lengths(freq);
  ByteWriter w;
  serialize_code_lengths(w, lengths);
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  auto back = deserialize_code_lengths(r);
  EXPECT_EQ(back, lengths);
}

TEST(Huffman, CostBitsMatchesEncodedSize) {
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  std::vector<std::uint64_t> freq(32, 0);
  for (int i = 0; i < 4000; ++i) {
    auto s = static_cast<std::uint32_t>(rng.uniform_u64(32));
    syms.push_back(s);
    ++freq[s];
  }
  auto lengths = build_code_lengths(freq);
  HuffmanEncoder enc(lengths);
  BitWriter bw;
  for (auto s : syms) enc.encode(bw, s);
  EXPECT_EQ(bw.bit_count(), enc.cost_bits(freq));
}

TEST(Huffman, NearEntropyOnSkewedData) {
  // Huffman is within 1 bit/symbol of entropy.
  std::vector<std::uint64_t> freq = {900, 50, 25, 15, 10};
  double total = 1000;
  double entropy = 0;
  for (auto f : freq) {
    double p = f / total;
    entropy -= p * std::log2(p);
  }
  auto lengths = build_code_lengths(freq);
  HuffmanEncoder enc(lengths);
  double avg = static_cast<double>(enc.cost_bits(freq)) / total;
  EXPECT_LT(avg, entropy + 1.0);
}

TEST(Huffman, EmptyAlphabet) {
  std::vector<std::uint64_t> freq(10, 0);
  auto lengths = build_code_lengths(freq);
  for (auto l : lengths) EXPECT_EQ(l, 0);
}

}  // namespace
}  // namespace ipcomp
