// Network serving tier: MmapSource/FileSource parity, loopback client/server
// integration — remote reconstruction byte-identical to a local reader over
// the same request sequence on both storage backends, refinement wire bytes
// equal to the plan's predicted bytes_new, mixed region/eb/bytes traffic,
// quota rejection over the wire, typed error mapping — and the multi-client
// stress the tsan preset runs against one live daemon.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "io/mmap_source.hpp"
#include "ipcomp.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

using testutil::smooth_field;

Bytes make_archive(const NdArray<double>& field, double eb,
                   unsigned block_side) {
  Options opt;
  opt.error_bound = eb;
  opt.relative = false;
  opt.block_side = block_side;
  // Real bitplane segments even at this block size (test_serve.cpp idiom).
  opt.progressive_threshold = 256;
  return compress(field.const_view(), opt);
}

std::string write_temp_archive(const Bytes& archive, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  write_file(path, archive);
  return path;
}

// ---- MmapSource -----------------------------------------------------------

TEST(MmapSource, PayloadsAndStatsMatchFileSource) {
  auto field = smooth_field(Dims{24, 20, 16}, 71, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_parity.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ASSERT_TRUE(ms.mapped());

  EXPECT_EQ(ms.header(), fs.header());
  EXPECT_EQ(ms.version(), fs.version());
  EXPECT_EQ(ms.total_size(), fs.total_size());
  EXPECT_EQ(ms.segment_ids(), fs.segment_ids());
  // Open cost parity: header + table charged identically.
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  EXPECT_EQ(ms.stats().read_calls, fs.stats().read_calls);

  const std::vector<SegmentId> ids = fs.segment_ids();
  ASSERT_FALSE(ids.empty());
  for (const SegmentId& id : ids) {
    EXPECT_EQ(ms.segment_size(id), fs.segment_size(id));
  }
  EXPECT_EQ(ms.read_many(ids), fs.read_many(ids));
  // Full accounting parity: payload bytes, dispatches, coalesced ranges.
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  EXPECT_EQ(ms.stats().read_calls, fs.stats().read_calls);
  EXPECT_EQ(ms.stats().coalesced_ranges, fs.stats().coalesced_ranges);

  // Missing segments are rejected all-or-nothing without charging.
  SegmentId bogus;
  bogus.kind = 0xAB;
  const std::size_t before = ms.stats().bytes_read;
  EXPECT_THROW(ms.read_segment(bogus), std::runtime_error);
  EXPECT_EQ(ms.stats().bytes_read, before);
}

TEST(MmapSource, RandomSubsetPropertyAgainstFileSource) {
  auto field = smooth_field(Dims{20, 18, 14}, 72, 0.07);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_prop.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ASSERT_TRUE(ms.mapped());
  const std::vector<SegmentId> ids = fs.segment_ids();
  ASSERT_GT(ids.size(), 4u);

  Rng rng(72);
  for (int trial = 0; trial < 24; ++trial) {
    // Random subset in random order (read_many must preserve request order).
    std::vector<SegmentId> subset;
    for (const SegmentId& id : ids) {
      if (rng.uniform() < 0.4) subset.push_back(id);
    }
    for (std::size_t i = subset.size(); i > 1; --i) {
      std::swap(subset[i - 1], subset[rng.uniform_u64(i)]);
    }
    if (subset.empty()) continue;
    EXPECT_EQ(ms.read_many(subset), fs.read_many(subset)) << "trial " << trial;
    EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  }
}

TEST(MmapSource, OverCapFileFallsBackToFileSource) {
  auto field = smooth_field(Dims{16, 12, 8}, 73, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_cap.ipc");

  FileSource fs(path);
  MmapSource ms(path, /*map_cap_bytes=*/16);  // archive is far larger
  EXPECT_FALSE(ms.mapped());
  EXPECT_EQ(ms.header(), fs.header());
  const std::vector<SegmentId> ids = fs.segment_ids();
  EXPECT_EQ(ms.read_many(ids), fs.read_many(ids));
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
}

TEST(MmapSource, EmptyAndTruncatedFilesRejectLikeFileSource) {
  const std::string empty = ::testing::TempDir() + "/ipc_mmap_empty.ipc";
  write_file(empty, Bytes{});
  EXPECT_THROW(FileSource{empty}, std::exception);
  EXPECT_THROW(MmapSource{empty}, std::exception);  // empty -> fallback path

  auto field = smooth_field(Dims{12, 10, 8}, 74, 0.05);
  Bytes archive = make_archive(field, 1e-5, 4);
  Bytes truncated(archive.begin(),
                  archive.begin() + static_cast<std::ptrdiff_t>(archive.size() / 3));
  const std::string path = write_temp_archive(truncated, "ipc_mmap_trunc.ipc");
  EXPECT_THROW(FileSource{path}, std::exception);
  EXPECT_THROW(MmapSource{path}, std::exception);
}

TEST(MmapSource, ReaderOverMmapMatchesFileReader) {
  auto field = smooth_field(Dims{24, 20, 16}, 75, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_reader.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ProgressiveReader<double> a(fs), b(ms);
  for (const Request& req :
       {Request::error_bound(1e-2), Request::bytes(3000), Request::full()}) {
    RetrievalPlan pa = a.plan(req), pb = b.plan(req);
    EXPECT_EQ(pa.segments, pb.segments);
    EXPECT_EQ(pa.bytes_new, pb.bytes_new);
    RetrievalStats sa = a.execute(pa), sb = b.execute(pb);
    EXPECT_EQ(sa.bytes_total, sb.bytes_total);
    EXPECT_EQ(a.data(), b.data());
  }
}

// ---- loopback client/server -----------------------------------------------

/// The mixed request sequence every identity test replays on both sides
/// (byte-identity holds per-sequence: float accumulation differs across
/// different refinement paths, local or remote alike).
std::vector<Request> mixed_traffic() {
  return {
      Request::error_bound(1e-2),
      Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12}),
      Request::bytes(3000),
      Request::full(),
  };
}

/// Replays `traffic` on a remote reader and an isolated local reader,
/// asserting plan equality, stats equality, reconstruction equality, and
/// that every refinement's wire payload equals the plan's predicted
/// bytes_new (the first request additionally carries the open cost in its
/// price but not on the wire — the OPEN reply already delivered it).
void assert_remote_matches_local(net::RemoteReader<double>& remote,
                                 ProgressiveReader<double>& local,
                                 const std::vector<Request>& traffic) {
  bool first = true;
  for (const Request& req : traffic) {
    RetrievalPlan lp = local.plan(req);
    RetrievalPlan rp = remote.plan(req);
    ASSERT_EQ(lp.segments, rp.segments);
    ASSERT_EQ(lp.bytes_new, rp.bytes_new);
    ASSERT_EQ(lp.guaranteed_error, rp.guaranteed_error);

    RetrievalStats ls = local.execute(lp);
    RetrievalStats rs = remote.execute(rp);
    EXPECT_EQ(ls.bytes_new, rs.bytes_new);
    EXPECT_EQ(ls.bytes_total, rs.bytes_total);
    EXPECT_EQ(ls.guaranteed_error, rs.guaranteed_error);
    EXPECT_EQ(ls.bitrate, rs.bitrate);
    ASSERT_EQ(local.data(), remote.data());

    const std::uint64_t wire = remote.archive().last_payload_bytes();
    const std::size_t open_cost = remote.archive().source().open_cost();
    EXPECT_EQ(wire, first ? rs.bytes_new - open_cost : rs.bytes_new);
    first = false;
  }
}

TEST(Net, RemoteMatchesLocalReaderMemoryBacked) {
  auto field = smooth_field(Dims{24, 20, 16}, 81, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  net::Server server;
  server.export_memory("density", Bytes(archive));
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());

  // The remote client priced exactly what a local reader would have.
  EXPECT_EQ(remote.archive().source().stats().bytes_read,
            src.stats().bytes_read);
  server.stop();
}

TEST(Net, RemoteMatchesLocalReaderFileMmapBacked) {
  auto field = smooth_field(Dims{24, 20, 16}, 82, 0.06);
  Bytes archive = make_archive(field, 1e-6, 8);
  const std::string path = write_temp_archive(archive, "ipc_net_mmap.ipc");

  net::ServerConfig cfg;
  cfg.serve.use_mmap = true;
  net::Server server(cfg);
  server.export_file("density", path);
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());

  const net::ServeStats st = server.stats();
  EXPECT_GT(st.payload_bytes_sent, 0u);
  EXPECT_GT(st.physical_bytes_read, 0u);
  EXPECT_GT(st.frames_in, 0u);
  server.stop();
}

TEST(Net, RemoteMatchesLocalReaderFileFreadBacked) {
  auto field = smooth_field(Dims{20, 16, 12}, 83, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);
  const std::string path = write_temp_archive(archive, "ipc_net_fread.ipc");

  net::ServerConfig cfg;
  cfg.serve.use_mmap = false;
  net::Server server(cfg);
  server.export_file("density", path);
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());
  server.stop();
}

TEST(Net, UnixDomainSocketLoopback) {
  auto field = smooth_field(Dims{16, 12, 8}, 84, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  net::ServerConfig cfg;
  cfg.listen = "unix:" + ::testing::TempDir() + "/ipc_net_test.sock";
  net::Server server(cfg);
  server.export_memory("a", Bytes(archive));
  server.start();
  EXPECT_EQ(server.address(), cfg.listen);

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(cfg.listen, "a");
  local.retrieve(Request::full());
  remote.retrieve(Request::full());
  EXPECT_EQ(local.data(), remote.data());
  server.stop();
}

TEST(Net, QuotaRejectedOverTheWire) {
  auto field = smooth_field(Dims{24, 20, 16}, 85, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  // Price full fidelity with a local probe to pick a quota just below it.
  ArchiveSet probe_set;
  Session<double> probe(probe_set.open_memory("p", Bytes(archive)));
  const std::uint64_t full_cost = probe.plan(Request::full()).bytes_new;
  const std::uint64_t coarse_cost =
      probe.plan(Request::error_bound(1e-2)).bytes_new;
  ASSERT_LT(coarse_cost, full_cost - 1);

  net::ServerConfig cfg;
  cfg.session_quota = full_cost - 1;
  net::Server server(cfg);
  server.export_memory("a", Bytes(archive));
  server.start();

  net::RemoteReader<double> remote(server.address(), "a");
  // Admission happens server-side at EXECUTE; the rejection surfaces as the
  // same typed exception the local Session throws, with the exact shortfall.
  try {
    remote.retrieve(Request::full());
    FAIL() << "expected QuotaExceeded";
  } catch (const QuotaExceeded& e) {
    EXPECT_EQ(e.needed(), full_cost);
    EXPECT_EQ(e.remaining(), full_cost - 1);
  }
  // The session is untouched: a cheaper request is admitted afterwards.
  RetrievalStats st = remote.retrieve(Request::error_bound(1e-2));
  EXPECT_EQ(st.bytes_new, coarse_cost);

  const net::ServeStats ss = remote.archive().stat();
  EXPECT_EQ(ss.quota_rejections, 1u);
  EXPECT_GE(ss.errors_sent, 1u);
  server.stop();
}

TEST(Net, TypedErrorsForUnknownArchiveStalePlanUnknownToken) {
  auto field = smooth_field(Dims{12, 10, 8}, 86, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-5, 4));
  server.start();

  // OPEN of a name the server does not export.
  try {
    net::RemoteArchive bad(server.address(), "nope");
    FAIL() << "expected RemoteError";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.code(), net::ErrCode::kUnknownArchive);
  }

  net::RemoteArchive ra(server.address(), "a");
  // PLAN against an epoch the session never had.
  EXPECT_THROW(ra.plan_remote(/*epoch=*/999, Request::full()),
               std::logic_error);
  // EXECUTE of a token the server never issued.
  EXPECT_THROW(ra.execute_remote(/*token=*/12345), std::logic_error);
  // The connection survives typed rejections: a real lifecycle still works.
  const net::PlanReply rep = ra.plan_remote(0, Request::full());
  EXPECT_GT(rep.bytes_new, 0u);
  server.stop();
}

TEST(Net, StalePlanTokensDieWithTheEpoch) {
  auto field = smooth_field(Dims{16, 12, 8}, 87, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-6, 8));
  server.start();

  net::RemoteReader<double> remote(server.address(), "a");
  RetrievalPlan p1 = remote.plan(Request::error_bound(1e-2));
  remote.retrieve(Request::bytes(2000));  // advances the epoch
  EXPECT_THROW(remote.execute(p1), std::logic_error);
  server.stop();
}

// Every connection arrival wakes all acceptor threads polling the one
// listener fd, and only one accept(2) succeeds.  The losers must return to
// their poll loop (the listener is non-blocking) rather than park inside
// accept(2) — a parked acceptor never rechecks the stop flag and stop()
// would hang forever joining it.  Racing stops must also both return, with
// exactly one performing the drain/join.
TEST(Net, StopReturnsPromptlyAfterAcceptWakeStorms) {
  auto field = smooth_field(Dims{16, 12, 8}, 89, 0.05);
  net::ServerConfig cfg;
  cfg.workers = 4;
  net::Server server(cfg);
  server.export_memory("a", make_archive(field, 1e-6, 8));
  server.start();

  // Sequential short-lived connections: each arrival is a fresh wake storm
  // across the idle acceptors.
  for (int i = 0; i < 6; ++i) {
    net::RemoteReader<double> remote(server.address(), "a");
    remote.retrieve(Request::error_bound(1e-2));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::thread racer([&] { server.stop(); });
  server.stop();
  racer.join();
  EXPECT_FALSE(server.running());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

// ---- the tsan-preset stress test ------------------------------------------

// N client threads, each its own connection, mixed traffic shapes against
// one live daemon; every final reconstruction byte-identical to a serial
// reader replaying the same shape.
TEST(Net, MultiClientStress) {
  constexpr int kClients = 8;
  constexpr int kRounds = 2;

  auto field = smooth_field(Dims{24, 20, 16}, 88, 0.05);
  const Bytes archive = make_archive(field, 1e-6, 8);

  auto run_shape = [](auto& r, int shape) {
    if (shape == 0) r.retrieve(Request::error_bound(1e-2));
    if (shape == 1) {
      r.execute(
          r.plan(Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12})));
    }
    if (shape == 2) r.retrieve(Request::bytes(2000));
    if (shape == 3) r.retrieve(Request::error_bound(1e-3));
    r.retrieve(Request::full());
  };
  std::vector<std::vector<double>> want(4);
  for (int shape = 0; shape < 4; ++shape) {
    MemorySource ref_src{Bytes(archive)};
    ProgressiveReader<double> ref(ref_src);
    run_shape(ref, shape);
    want[static_cast<std::size_t>(shape)] = ref.data();
  }

  net::ServerConfig cfg;
  cfg.workers = kClients;
  net::Server server(cfg);
  server.export_memory("stress", Bytes(archive));
  server.start();
  const std::string addr = server.address();

  std::vector<std::vector<double>> result(kClients * kRounds);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        net::RemoteReader<double> reader(addr, "stress");
        run_shape(reader, (c + r) % 4);
        result[static_cast<std::size_t>(c) * kRounds +
               static_cast<std::size_t>(r)] = reader.data();
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      const std::size_t i = static_cast<std::size_t>(c) * kRounds +
                            static_cast<std::size_t>(r);
      ASSERT_EQ(result[i], want[static_cast<std::size_t>((c + r) % 4)])
          << "client " << c << " round " << r;
    }
  }

  const net::ServeStats st = server.stats();
  EXPECT_EQ(st.connections_accepted,
            static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_GT(st.cache.hits, 0u);  // shared tier served repeat traffic
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace ipcomp
