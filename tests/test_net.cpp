// Network serving tier: MmapSource/FileSource parity, loopback client/server
// integration — remote reconstruction byte-identical to a local reader over
// the same request sequence on both storage backends, refinement wire bytes
// equal to the plan's predicted bytes_new, mixed region/eb/bytes traffic,
// quota rejection over the wire, typed error mapping, the deterministic
// fault-injection suite (torn I/O, EINTR storms, bit-flipped frames,
// connection resets — and the self-healing reconnect+RESUME path they
// exercise) — and the multi-client stress the tsan preset runs against one
// live daemon.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/mmap_source.hpp"
#include "ipcomp.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "test_util.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

using testutil::smooth_field;

Bytes make_archive(const NdArray<double>& field, double eb,
                   unsigned block_side) {
  Options opt;
  opt.error_bound = eb;
  opt.relative = false;
  opt.block_side = block_side;
  // Real bitplane segments even at this block size (test_serve.cpp idiom).
  opt.progressive_threshold = 256;
  return compress(field.const_view(), opt);
}

std::string write_temp_archive(const Bytes& archive, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  write_file(path, archive);
  return path;
}

// ---- MmapSource -----------------------------------------------------------

TEST(MmapSource, PayloadsAndStatsMatchFileSource) {
  auto field = smooth_field(Dims{24, 20, 16}, 71, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_parity.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ASSERT_TRUE(ms.mapped());

  EXPECT_EQ(ms.header(), fs.header());
  EXPECT_EQ(ms.version(), fs.version());
  EXPECT_EQ(ms.total_size(), fs.total_size());
  EXPECT_EQ(ms.segment_ids(), fs.segment_ids());
  // Open cost parity: header + table charged identically.
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  EXPECT_EQ(ms.stats().read_calls, fs.stats().read_calls);

  const std::vector<SegmentId> ids = fs.segment_ids();
  ASSERT_FALSE(ids.empty());
  for (const SegmentId& id : ids) {
    EXPECT_EQ(ms.segment_size(id), fs.segment_size(id));
  }
  EXPECT_EQ(ms.read_many(ids), fs.read_many(ids));
  // Full accounting parity: payload bytes, dispatches, coalesced ranges.
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  EXPECT_EQ(ms.stats().read_calls, fs.stats().read_calls);
  EXPECT_EQ(ms.stats().coalesced_ranges, fs.stats().coalesced_ranges);

  // Missing segments are rejected all-or-nothing without charging.
  SegmentId bogus;
  bogus.kind = 0xAB;
  const std::size_t before = ms.stats().bytes_read;
  EXPECT_THROW(ms.read_segment(bogus), std::runtime_error);
  EXPECT_EQ(ms.stats().bytes_read, before);
}

TEST(MmapSource, RandomSubsetPropertyAgainstFileSource) {
  auto field = smooth_field(Dims{20, 18, 14}, 72, 0.07);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_prop.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ASSERT_TRUE(ms.mapped());
  const std::vector<SegmentId> ids = fs.segment_ids();
  ASSERT_GT(ids.size(), 4u);

  Rng rng(72);
  for (int trial = 0; trial < 24; ++trial) {
    // Random subset in random order (read_many must preserve request order).
    std::vector<SegmentId> subset;
    for (const SegmentId& id : ids) {
      if (rng.uniform() < 0.4) subset.push_back(id);
    }
    for (std::size_t i = subset.size(); i > 1; --i) {
      std::swap(subset[i - 1], subset[rng.uniform_u64(i)]);
    }
    if (subset.empty()) continue;
    EXPECT_EQ(ms.read_many(subset), fs.read_many(subset)) << "trial " << trial;
    EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
  }
}

TEST(MmapSource, OverCapFileFallsBackToFileSource) {
  auto field = smooth_field(Dims{16, 12, 8}, 73, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_cap.ipc");

  FileSource fs(path);
  MmapSource ms(path, /*map_cap_bytes=*/16);  // archive is far larger
  EXPECT_FALSE(ms.mapped());
  EXPECT_EQ(ms.header(), fs.header());
  const std::vector<SegmentId> ids = fs.segment_ids();
  EXPECT_EQ(ms.read_many(ids), fs.read_many(ids));
  EXPECT_EQ(ms.stats().bytes_read, fs.stats().bytes_read);
}

TEST(MmapSource, EmptyAndTruncatedFilesRejectLikeFileSource) {
  const std::string empty = ::testing::TempDir() + "/ipc_mmap_empty.ipc";
  write_file(empty, Bytes{});
  EXPECT_THROW(FileSource{empty}, std::exception);
  EXPECT_THROW(MmapSource{empty}, std::exception);  // empty -> fallback path

  auto field = smooth_field(Dims{12, 10, 8}, 74, 0.05);
  Bytes archive = make_archive(field, 1e-5, 4);
  Bytes truncated(archive.begin(),
                  archive.begin() + static_cast<std::ptrdiff_t>(archive.size() / 3));
  const std::string path = write_temp_archive(truncated, "ipc_mmap_trunc.ipc");
  EXPECT_THROW(FileSource{path}, std::exception);
  EXPECT_THROW(MmapSource{path}, std::exception);
}

TEST(MmapSource, ReaderOverMmapMatchesFileReader) {
  auto field = smooth_field(Dims{24, 20, 16}, 75, 0.05);
  const std::string path =
      write_temp_archive(make_archive(field, 1e-6, 8), "ipc_mmap_reader.ipc");

  FileSource fs(path);
  MmapSource ms(path);
  ProgressiveReader<double> a(fs), b(ms);
  for (const Request& req :
       {Request::error_bound(1e-2), Request::bytes(3000), Request::full()}) {
    RetrievalPlan pa = a.plan(req), pb = b.plan(req);
    EXPECT_EQ(pa.segments, pb.segments);
    EXPECT_EQ(pa.bytes_new, pb.bytes_new);
    RetrievalStats sa = a.execute(pa), sb = b.execute(pb);
    EXPECT_EQ(sa.bytes_total, sb.bytes_total);
    EXPECT_EQ(a.data(), b.data());
  }
}

// ---- loopback client/server -----------------------------------------------

/// The mixed request sequence every identity test replays on both sides
/// (byte-identity holds per-sequence: float accumulation differs across
/// different refinement paths, local or remote alike).
std::vector<Request> mixed_traffic() {
  return {
      Request::error_bound(1e-2),
      Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12}),
      Request::bytes(3000),
      Request::full(),
  };
}

/// Replays `traffic` on a remote reader and an isolated local reader,
/// asserting plan equality, stats equality, reconstruction equality, and
/// that every refinement's wire payload equals the plan's predicted
/// bytes_new (the first request additionally carries the open cost in its
/// price but not on the wire — the OPEN reply already delivered it).
void assert_remote_matches_local(net::RemoteReader<double>& remote,
                                 ProgressiveReader<double>& local,
                                 const std::vector<Request>& traffic) {
  bool first = true;
  for (const Request& req : traffic) {
    RetrievalPlan lp = local.plan(req);
    RetrievalPlan rp = remote.plan(req);
    ASSERT_EQ(lp.segments, rp.segments);
    ASSERT_EQ(lp.bytes_new, rp.bytes_new);
    ASSERT_EQ(lp.guaranteed_error, rp.guaranteed_error);

    RetrievalStats ls = local.execute(lp);
    RetrievalStats rs = remote.execute(rp);
    EXPECT_EQ(ls.bytes_new, rs.bytes_new);
    EXPECT_EQ(ls.bytes_total, rs.bytes_total);
    EXPECT_EQ(ls.guaranteed_error, rs.guaranteed_error);
    EXPECT_EQ(ls.bitrate, rs.bitrate);
    ASSERT_EQ(local.data(), remote.data());

    const std::uint64_t wire = remote.archive().last_payload_bytes();
    const std::size_t open_cost = remote.archive().source().open_cost();
    EXPECT_EQ(wire, first ? rs.bytes_new - open_cost : rs.bytes_new);
    first = false;
  }
}

TEST(Net, RemoteMatchesLocalReaderMemoryBacked) {
  auto field = smooth_field(Dims{24, 20, 16}, 81, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  net::Server server;
  server.export_memory("density", Bytes(archive));
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());

  // The remote client priced exactly what a local reader would have.
  EXPECT_EQ(remote.archive().source().stats().bytes_read,
            src.stats().bytes_read);
  server.stop();
}

TEST(Net, RemoteMatchesLocalReaderFileMmapBacked) {
  auto field = smooth_field(Dims{24, 20, 16}, 82, 0.06);
  Bytes archive = make_archive(field, 1e-6, 8);
  const std::string path = write_temp_archive(archive, "ipc_net_mmap.ipc");

  net::ServerConfig cfg;
  cfg.serve.use_mmap = true;
  net::Server server(cfg);
  server.export_file("density", path);
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());

  const net::ServeStats st = server.stats();
  EXPECT_GT(st.payload_bytes_sent, 0u);
  EXPECT_GT(st.physical_bytes_read, 0u);
  EXPECT_GT(st.frames_in, 0u);
  server.stop();
}

TEST(Net, RemoteMatchesLocalReaderFileFreadBacked) {
  auto field = smooth_field(Dims{20, 16, 12}, 83, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);
  const std::string path = write_temp_archive(archive, "ipc_net_fread.ipc");

  net::ServerConfig cfg;
  cfg.serve.use_mmap = false;
  net::Server server(cfg);
  server.export_file("density", path);
  server.start();

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(server.address(), "density");
  assert_remote_matches_local(remote, local, mixed_traffic());
  server.stop();
}

TEST(Net, UnixDomainSocketLoopback) {
  auto field = smooth_field(Dims{16, 12, 8}, 84, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  net::ServerConfig cfg;
  cfg.listen = "unix:" + ::testing::TempDir() + "/ipc_net_test.sock";
  net::Server server(cfg);
  server.export_memory("a", Bytes(archive));
  server.start();
  EXPECT_EQ(server.address(), cfg.listen);

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  net::RemoteReader<double> remote(cfg.listen, "a");
  local.retrieve(Request::full());
  remote.retrieve(Request::full());
  EXPECT_EQ(local.data(), remote.data());
  server.stop();
}

TEST(Net, QuotaRejectedOverTheWire) {
  auto field = smooth_field(Dims{24, 20, 16}, 85, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  // Price full fidelity with a local probe to pick a quota just below it.
  ArchiveSet probe_set;
  Session<double> probe(probe_set.open_memory("p", Bytes(archive)));
  const std::uint64_t full_cost = probe.plan(Request::full()).bytes_new;
  const std::uint64_t coarse_cost =
      probe.plan(Request::error_bound(1e-2)).bytes_new;
  ASSERT_LT(coarse_cost, full_cost - 1);

  net::ServerConfig cfg;
  cfg.session_quota = full_cost - 1;
  net::Server server(cfg);
  server.export_memory("a", Bytes(archive));
  server.start();

  net::RemoteReader<double> remote(server.address(), "a");
  // Admission happens server-side at EXECUTE; the rejection surfaces as the
  // same typed exception the local Session throws, with the exact shortfall.
  try {
    remote.retrieve(Request::full());
    FAIL() << "expected QuotaExceeded";
  } catch (const QuotaExceeded& e) {
    EXPECT_EQ(e.needed(), full_cost);
    EXPECT_EQ(e.remaining(), full_cost - 1);
  }
  // The session is untouched: a cheaper request is admitted afterwards.
  RetrievalStats st = remote.retrieve(Request::error_bound(1e-2));
  EXPECT_EQ(st.bytes_new, coarse_cost);

  const net::ServeStats ss = remote.archive().stat();
  EXPECT_EQ(ss.quota_rejections, 1u);
  EXPECT_GE(ss.errors_sent, 1u);
  server.stop();
}

TEST(Net, TypedErrorsForUnknownArchiveStalePlanUnknownToken) {
  auto field = smooth_field(Dims{12, 10, 8}, 86, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-5, 4));
  server.start();

  // OPEN of a name the server does not export.
  try {
    net::RemoteArchive bad(server.address(), "nope");
    FAIL() << "expected RemoteError";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.code(), net::ErrCode::kUnknownArchive);
  }

  net::RemoteArchive ra(server.address(), "a");
  // PLAN against an epoch the session never had.
  EXPECT_THROW(ra.plan_remote(/*epoch=*/999, Request::full()),
               std::logic_error);
  // EXECUTE of a token the server never issued.
  EXPECT_THROW(ra.execute_remote(/*token=*/12345), std::logic_error);
  // The connection survives typed rejections: a real lifecycle still works.
  const net::PlanReply rep = ra.plan_remote(0, Request::full());
  EXPECT_GT(rep.bytes_new, 0u);
  server.stop();
}

TEST(Net, StalePlanTokensDieWithTheEpoch) {
  auto field = smooth_field(Dims{16, 12, 8}, 87, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-6, 8));
  server.start();

  net::RemoteReader<double> remote(server.address(), "a");
  RetrievalPlan p1 = remote.plan(Request::error_bound(1e-2));
  remote.retrieve(Request::bytes(2000));  // advances the epoch
  EXPECT_THROW(remote.execute(p1), std::logic_error);
  server.stop();
}

// Every connection arrival wakes all acceptor threads polling the one
// listener fd, and only one accept(2) succeeds.  The losers must return to
// their poll loop (the listener is non-blocking) rather than park inside
// accept(2) — a parked acceptor never rechecks the stop flag and stop()
// would hang forever joining it.  Racing stops must also both return, with
// exactly one performing the drain/join.
TEST(Net, StopReturnsPromptlyAfterAcceptWakeStorms) {
  auto field = smooth_field(Dims{16, 12, 8}, 89, 0.05);
  net::ServerConfig cfg;
  cfg.workers = 4;
  net::Server server(cfg);
  server.export_memory("a", make_archive(field, 1e-6, 8));
  server.start();

  // Sequential short-lived connections: each arrival is a fresh wake storm
  // across the idle acceptors.
  for (int i = 0; i < 6; ++i) {
    net::RemoteReader<double> remote(server.address(), "a");
    remote.retrieve(Request::error_bound(1e-2));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::thread racer([&] { server.stop(); });
  server.stop();
  racer.join();
  EXPECT_FALSE(server.running());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

// ---- deterministic fault injection & self-healing -------------------------

// Satellite coverage for the send() resume loops: torn (1-byte) writes and
// EINTR storms on the sender must never desynchronize the framing.  The
// schedule pins ordinals directly: send() issues two raw writes per frame
// (5-byte head, then body), and every clamped attempt retries as the next
// ordinal.
TEST(Fault, FrameChannelFramingSurvivesShortWritesAndEintrStorms) {
  net::Listener listener("127.0.0.1:0");
  net::Socket peer = net::dial(listener.address());
  std::optional<net::Socket> accepted = listener.accept(2000);
  ASSERT_TRUE(accepted.has_value());
  net::FrameChannel tx(std::move(peer), net::kMaxFrameBytes);
  net::FrameChannel rx(std::move(*accepted), net::kMaxFrameBytes);

  auto plan = std::make_shared<FaultPlan>(0);
  // Ordinal 0: head write torn to 1 byte; 1: the 4-byte remainder torn
  // again; 2: the last 3 head bytes; 3–5: an EINTR storm at the body write;
  // 6: the body, torn once more; 7: the 31999-byte remainder.
  plan->torn_at(0).torn_at(1).eintr_at(3, 3).torn_at(6).delay_at(7, 1);
  tx.set_fault_injector(plan);

  Rng rng(4242);
  Bytes big(32000);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_u64());
  tx.send(net::Op::kSegment, {big.data(), big.size()});

  std::optional<net::Frame> f = rx.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is(net::Op::kSegment));
  EXPECT_EQ(f->body, big);
  EXPECT_EQ(plan->torn(), 3u);
  EXPECT_EQ(plan->eintrs(), 3u);

  // Framing stays aligned: the next (fault-free) frame parses cleanly.
  const Bytes small{1, 2, 3};
  tx.send(net::Op::kStat, {small.data(), small.size()});
  f = rx.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is(net::Op::kStat));
  EXPECT_EQ(f->body, small);
}

// A bit-flipped SEGMENT frame must surface as IntegrityError{kWire} naming
// the segment — never as wrong reconstruction — and with retries disabled
// it must fail fast.
TEST(Fault, WireBitFlipFastFailsTypedWhenRetriesDisabled) {
  auto field = smooth_field(Dims{20, 16, 12}, 90, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-6, 8));
  server.start();

  net::RetryPolicy policy;
  policy.max_attempts = 1;  // fast-fail: surface the first failure
  net::RemoteReader<double> remote(server.address(), "a", 30000, policy);
  auto plan = std::make_shared<FaultPlan>(0);
  remote.archive().set_fault_injector(plan);

  RetrievalPlan p = remote.plan(Request::full());
  // EXECUTE issues two raw writes (head, body), then per reply frame a
  // 4-byte length read and a body read whose chunk is [op][key u64][payload].
  // Flip a payload bit of the first SEGMENT frame.
  const std::uint64_t e = plan->io_ops();
  plan->flip_at(e + 3, /*byte=*/9, /*bit=*/3);
  try {
    remote.execute(p);
    FAIL() << "expected IntegrityError at the wire boundary";
  } catch (const IntegrityError& err) {
    EXPECT_EQ(err.layer(), IntegrityError::Layer::kWire);
    EXPECT_NE(err.expected(), err.actual());
  }
  EXPECT_EQ(plan->flips(), 1u);
  EXPECT_EQ(remote.recoveries(), 0u);
  server.stop();
}

// The acceptance schedule: two torn reads/writes and an EINTR storm ride
// through transparently; a bit-flipped frame and then a connection reset
// mid-EXECUTE each trigger one recovery cycle (reconnect, RESUME replay of
// the acknowledged history, re-plan, re-execute); the mixed retrieval
// completes byte-identical to a local reader replaying the same requests.
TEST(Fault, SeededScheduleRecoversAndStaysByteIdentical) {
  auto field = smooth_field(Dims{24, 20, 16}, 91, 0.05);
  const Bytes archive = make_archive(field, 1e-6, 8);

  net::Server server;
  server.export_memory("a", Bytes(archive));
  server.start();

  net::RetryPolicy policy;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 4;
  net::RemoteReader<double> remote(server.address(), "a", 30000, policy);
  auto plan = std::make_shared<FaultPlan>(0);
  remote.archive().set_fault_injector(plan);

  // Phase 1: benign faults — torn EXECUTE head write (twice: the retry of a
  // torn write is itself torn) and an EINTR storm at the body write.  No
  // recovery needed.
  RetrievalPlan p1 = remote.plan(Request::error_bound(1e-2));
  std::uint64_t e = plan->io_ops();
  plan->torn_at(e).torn_at(e + 1).eintr_at(e + 4, 3);
  remote.execute(p1);
  EXPECT_EQ(plan->torn(), 2u);
  EXPECT_EQ(plan->eintrs(), 3u);
  EXPECT_EQ(remote.recoveries(), 0u);

  // Phase 2: one flipped payload bit in the first SEGMENT frame of the next
  // refinement → IntegrityError{kWire} → one recovery cycle.
  RetrievalPlan p2 = remote.plan(Request::bytes(3000));
  e = plan->io_ops();
  plan->flip_at(e + 3, /*byte=*/9, /*bit=*/5);
  remote.execute(p2);
  EXPECT_EQ(plan->flips(), 1u);
  EXPECT_EQ(remote.recoveries(), 1u);
  EXPECT_EQ(remote.retries(), 1u);

  // Phase 3: connection reset in the middle of the full retrieval's reply
  // stream → second recovery cycle, RESUME now replays two requests.
  RetrievalPlan p3 = remote.plan(Request::full());
  e = plan->io_ops();
  plan->reset_at(e + 5);
  remote.execute(p3);
  EXPECT_EQ(plan->resets(), 1u);
  EXPECT_EQ(remote.recoveries(), 2u);
  EXPECT_EQ(remote.retries(), 2u);
  EXPECT_EQ(plan->injected(), 7u);  // 2 torn + 3 eintr + 1 flip + 1 reset

  // Byte-identical to a local reader replaying the same request sequence.
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  local.retrieve(Request::error_bound(1e-2));
  local.retrieve(Request::bytes(3000));
  local.retrieve(Request::full());
  EXPECT_EQ(local.data(), remote.data());
  server.stop();
}

// When every raw I/O resets the connection, recovery cannot make progress:
// the reader must give up after max_attempts with the typed wire error, not
// hang or loop.
TEST(Fault, ExhaustedRetriesFailFastWithTypedWireError) {
  auto field = smooth_field(Dims{12, 10, 8}, 92, 0.05);
  net::Server server;
  server.export_memory("a", make_archive(field, 1e-5, 4));
  server.start();

  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 2;
  net::RemoteReader<double> remote(server.address(), "a", 30000, policy);

  FaultPlan::Profile grim;
  grim.reset_p = 1.0;
  grim.torn_p = grim.eintr_p = grim.delay_p = 0.0;
  auto plan = FaultPlan::random(7, grim);
  remote.archive().set_fault_injector(plan);

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(remote.retrieve(Request::full()), net::WireError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  EXPECT_GE(plan->resets(), 2u);
  EXPECT_EQ(remote.recoveries(), 0u);  // reconnects themselves were reset
  server.stop();
}

// Soak mode: the server's own --fault-seed profile (send-side resets, torn
// writes, EINTR, delay spikes) against a self-healing client.  CI re-runs
// this with a pinned IPCOMP_FAULT_SEED; the retrieval must stay
// byte-identical to a local reader regardless of the schedule.
TEST(Fault, ServerFaultSeedSoakStaysByteIdentical) {
  std::uint64_t seed = 0x51D3;
  if (const char* env = std::getenv("IPCOMP_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }

  auto field = smooth_field(Dims{24, 20, 16}, 93, 0.05);
  const Bytes archive = make_archive(field, 1e-6, 8);

  net::ServerConfig cfg;
  cfg.fault_seed = seed;
  cfg.write_deadline_ms = 5000;
  net::Server server(cfg);
  server.export_memory("a", Bytes(archive));
  server.start();

  net::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 8;
  policy.recovery_budget = 64;
  // The constructor's handshake has no retry loop of its own; an adversarial
  // seed may reset it, so redial (each connection draws a fresh schedule
  // from seed ^ connection id).
  std::optional<net::RemoteReader<double>> remote;
  for (int tries = 0; !remote.has_value(); ++tries) {
    try {
      remote.emplace(server.address(), "a", 30000, policy);
    } catch (const net::WireError&) {
      if (tries >= 8) throw;
    }
  }

  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> local(src);
  for (const Request& req : mixed_traffic()) {
    local.retrieve(req);
    remote->retrieve(req);
    ASSERT_EQ(local.data(), remote->data());
  }
  EXPECT_GE(server.stats().connections_accepted, 1u);
  server.stop();
}

// ---- the tsan-preset stress test ------------------------------------------

// N client threads, each its own connection, mixed traffic shapes against
// one live daemon; every final reconstruction byte-identical to a serial
// reader replaying the same shape.
TEST(Net, MultiClientStress) {
  constexpr int kClients = 8;
  constexpr int kRounds = 2;

  auto field = smooth_field(Dims{24, 20, 16}, 88, 0.05);
  const Bytes archive = make_archive(field, 1e-6, 8);

  auto run_shape = [](auto& r, int shape) {
    if (shape == 0) r.retrieve(Request::error_bound(1e-2));
    if (shape == 1) {
      r.execute(
          r.plan(Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12})));
    }
    if (shape == 2) r.retrieve(Request::bytes(2000));
    if (shape == 3) r.retrieve(Request::error_bound(1e-3));
    r.retrieve(Request::full());
  };
  std::vector<std::vector<double>> want(4);
  for (int shape = 0; shape < 4; ++shape) {
    MemorySource ref_src{Bytes(archive)};
    ProgressiveReader<double> ref(ref_src);
    run_shape(ref, shape);
    want[static_cast<std::size_t>(shape)] = ref.data();
  }

  net::ServerConfig cfg;
  cfg.workers = kClients;
  net::Server server(cfg);
  server.export_memory("stress", Bytes(archive));
  server.start();
  const std::string addr = server.address();

  std::vector<std::vector<double>> result(kClients * kRounds);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        net::RemoteReader<double> reader(addr, "stress");
        run_shape(reader, (c + r) % 4);
        result[static_cast<std::size_t>(c) * kRounds +
               static_cast<std::size_t>(r)] = reader.data();
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      const std::size_t i = static_cast<std::size_t>(c) * kRounds +
                            static_cast<std::size_t>(r);
      ASSERT_EQ(result[i], want[static_cast<std::size_t>((c + r) % 4)])
          << "client " << c << " round " << r;
    }
  }

  const net::ServeStats st = server.stats();
  EXPECT_EQ(st.connections_accepted,
            static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_GT(st.cache.hits, 0u);  // shared tier served repeat traffic
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace ipcomp
