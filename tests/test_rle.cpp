#include <gtest/gtest.h>

#include "coding/rle.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

void round_trip(const Bytes& input) {
  Bytes enc = rle_encode({input.data(), input.size()});
  Bytes dec = rle_decode({enc.data(), enc.size()}, input.size());
  EXPECT_EQ(dec, input);
}

TEST(Rle, Empty) { round_trip({}); }

TEST(Rle, AllZeros) {
  round_trip(Bytes(1000, 0));
  Bytes enc = rle_encode(Bytes(1000, 0));
  EXPECT_LT(enc.size(), 4u);  // one varint
}

TEST(Rle, NoZeros) { round_trip(Bytes(100, 0xAB)); }

TEST(Rle, Alternating) {
  Bytes in;
  for (int i = 0; i < 500; ++i) {
    in.push_back(0);
    in.push_back(static_cast<std::uint8_t>(i));
  }
  round_trip(in);
}

TEST(Rle, TrailingZeros) {
  Bytes in = {1, 2, 3};
  in.resize(100, 0);
  round_trip(in);
}

TEST(Rle, LeadingZeros) {
  Bytes in(100, 0);
  in.push_back(9);
  round_trip(in);
}

TEST(Rle, SparseCompressesWell) {
  Rng rng(3);
  Bytes in(100000, 0);
  for (int i = 0; i < 100; ++i) {
    in[rng.uniform_u64(in.size())] = static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
  }
  Bytes enc = rle_encode({in.data(), in.size()});
  EXPECT_LT(enc.size(), in.size() / 50);
  round_trip(in);
}

TEST(Rle, RandomDense) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes in(1 + rng.uniform_u64(2048));
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.uniform_u64(4));  // zero-rich
    round_trip(in);
  }
}

TEST(Rle, DecodeRejectsOverflowingRun) {
  // Encode 10 zeros but ask to decode only 5.
  Bytes enc = rle_encode(Bytes(10, 0));
  EXPECT_THROW(rle_decode({enc.data(), enc.size()}, 5), std::runtime_error);
}

}  // namespace
}  // namespace ipcomp
