#include <gtest/gtest.h>

#include "util/dims.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {
namespace {

TEST(Dims, BasicProperties) {
  Dims d{4, 6, 8};
  EXPECT_EQ(d.rank(), 3u);
  EXPECT_EQ(d.count(), 192u);
  EXPECT_EQ(d.max_extent(), 8u);
  EXPECT_EQ(d[0], 4u);
  EXPECT_EQ(d[2], 8u);
  EXPECT_EQ(d.to_string(), "4x6x8");
}

TEST(Dims, RowMajorStrides) {
  Dims d{4, 6, 8};
  auto s = d.strides();
  EXPECT_EQ(s[0], 48u);
  EXPECT_EQ(s[1], 8u);
  EXPECT_EQ(s[2], 1u);
}

TEST(Dims, LinearIndexing) {
  Dims d{3, 5};
  EXPECT_EQ(d.linear({0, 0}), 0u);
  EXPECT_EQ(d.linear({1, 2}), 7u);
  EXPECT_EQ(d.linear({2, 4}), 14u);
}

TEST(Dims, Equality) {
  EXPECT_EQ(Dims({2, 3}), Dims({2, 3}));
  EXPECT_NE(Dims({2, 3}), Dims({3, 2}));
  EXPECT_NE(Dims({2, 3}), Dims({2, 3, 1}));
}

TEST(Dims, RejectsInvalid) {
  EXPECT_THROW(Dims({}), std::invalid_argument);
  EXPECT_THROW(Dims({0}), std::invalid_argument);
  EXPECT_THROW(Dims({1, 2, 3, 4, 5}), std::invalid_argument);
  std::size_t e[] = {3, 0};
  EXPECT_THROW(Dims::of_rank(2, e), std::invalid_argument);
}

TEST(Dims, OfRank) {
  std::size_t e[] = {7, 9};
  Dims d = Dims::of_rank(2, e);
  EXPECT_EQ(d.count(), 63u);
}

TEST(NdArray, OwnsAndViews) {
  NdArray<double> a(Dims{2, 3});
  EXPECT_EQ(a.count(), 6u);
  a[4] = 2.5;
  NdConstView<double> v = a.const_view();
  EXPECT_EQ(v[4], 2.5);
  EXPECT_EQ(v.dims(), a.dims());
}

TEST(NdArray, FromVector) {
  NdArray<float> a(Dims{2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_EQ(a[3], 4.f);
  EXPECT_THROW(NdArray<float>(Dims{2, 2}, {1.f}), std::invalid_argument);
}

TEST(NdArray, MutableView) {
  NdArray<int> a(Dims{4});
  a.view()[2] = 7;
  EXPECT_EQ(a[2], 7);
  EXPECT_EQ(a.view().span().size(), 4u);
}

}  // namespace
}  // namespace ipcomp
