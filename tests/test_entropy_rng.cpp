#include <gtest/gtest.h>

#include <cmath>

#include "coding/entropy.hpp"
#include "io/bytes.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

// ---------------------------------------------------------------- entropy --

TEST(Entropy, BinaryEntropyEndpoints) {
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
}

TEST(Entropy, BinaryEntropySymmetricAndConcave) {
  for (double p : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1 - p), 1e-12);
    EXPECT_LT(binary_entropy(p), 1.0);
    EXPECT_GT(binary_entropy(p), 0.0);
  }
}

TEST(Entropy, BitEntropyOfKnownStream) {
  // 12 bits: 3 ones, 9 zeros -> H(0.25).
  Bytes packed = {0b00010011, 0b0000};  // bits 0,1,4 set in first byte
  EXPECT_NEAR(bit_entropy(packed, 12), binary_entropy(3.0 / 12.0), 1e-12);
}

TEST(Entropy, BitEntropyIgnoresTailBits) {
  Bytes a = {0b00001111, 0b11111111};
  // Only the first 4 bits counted: all ones -> entropy 0.
  EXPECT_EQ(bit_entropy(a, 4), 0.0);
}

TEST(Entropy, ByteEntropyUniformIsEight) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_NEAR(byte_entropy(data), 8.0, 1e-12);
}

TEST(Entropy, ByteEntropyConstantIsZero) {
  EXPECT_EQ(byte_entropy(Bytes(100, 7)), 0.0);
}

// -------------------------------------------------------------------- rng --

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool all_same = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.next_u64(), vb = b.next_u64(), vc = c.next_u64();
    all_same &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    double w = rng.uniform(-3, 7);
    EXPECT_GE(w, -3.0);
    EXPECT_LT(w, 7.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.uniform();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

}  // namespace
}  // namespace ipcomp
