// Race-stress suite for the concurrency contracts documented across the
// tree (see the thread-contract taxonomy in src/util/sync.hpp).  These tests
// are written with std::thread, not parallel_for, so they exercise real
// cross-thread interleavings under every preset — and give ThreadSanitizer
// (the `tsan` preset, which builds with OpenMP off because libgomp is not
// TSan-instrumented) actual work: shared-registry first touch, SIMD dispatch
// first touch, N compressions through the shared backend singletons, N
// readers over one shared archive, and the parallel_for nested-guard
// machinery driven from concurrent outer threads.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipcomp.hpp"
#include "test_util.hpp"
#include "util/cpu.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

constexpr int kThreads = 8;

/// Run `fn(tid)` on kThreads threads, all released through one barrier so
/// the interesting first statement really races.
template <typename Fn>
void race(Fn&& fn) {
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      fn(t);
    });
  }
  for (auto& th : threads) th.join();
}

// The backend registry is internally-synchronized: concurrent first touch
// through every lookup path must observe the same singletons.
TEST(Concurrency, RegistryConcurrentFirstTouch) {
  const ProgressiveBackend* interp_seen[kThreads] = {};
  const ProgressiveBackend* wavelet_seen[kThreads] = {};
  race([&](int t) {
    for (int i = 0; i < 100; ++i) {
      interp_seen[t] = &backend_for(BackendId::kInterp);
      wavelet_seen[t] = &backend_for(BackendId::kWavelet);
      ASSERT_EQ(backend_by_name("interp"), interp_seen[t]);
      ASSERT_EQ(backend_by_name("wavelet"), wavelet_seen[t]);
      ASSERT_EQ(backend_by_name("no-such-backend"), nullptr);
    }
  });
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(interp_seen[t], interp_seen[0]);
    EXPECT_EQ(wavelet_seen[t], wavelet_seen[0]);
  }
}

// The SIMD dispatch singleton resolves once; racing threads all observe the
// same level, and it never exceeds the hardware's.
TEST(Concurrency, SimdDispatchConcurrentFirstTouch) {
  SimdLevel seen[kThreads] = {};
  race([&](int t) { seen[t] = simd_level(); });
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_LE(static_cast<int>(seen[0]),
            static_cast<int>(detected_simd_level()));
}

// N threads compressing independent fields through the shared registry:
// backends are stateless, so concurrent compressions must be independent and
// each archive byte-identical to a serial run of the same options.
TEST(Concurrency, ConcurrentCompressIndependentFields) {
  struct Job {
    Dims dims;
    Options opt;
    NdArray<double> field;
    Bytes serial;
  };
  std::vector<Job> jobs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Job& j = jobs[t];
    j.dims = (t % 2) ? Dims{18, 14, 10} : Dims{31, 27};
    j.opt.error_bound = (t % 3) ? 1e-4 : 1e-6;
    j.opt.backend = (t % 2) ? BackendId::kWavelet : BackendId::kInterp;
    j.opt.block_side = (t % 4 < 2) ? 0 : 8;
    j.field = smooth_field(j.dims, 7000 + t, 0.02);
    j.serial = compress(j.field.const_view(), j.opt);
  }
  std::vector<Bytes> raced(kThreads);
  race([&](int t) {
    raced[t] = compress(jobs[t].field.const_view(), jobs[t].opt);
  });
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(raced[t], jobs[t].serial) << "thread " << t;
    MemorySource src{Bytes(raced[t])};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::full());
    EXPECT_LE(linf(jobs[t].field.const_view(), reader.data()),
              reader.header().eb * (1 + 1e-9));
  }
}

/// One shared archive, per-thread sources: the sharing model the reader's
/// thread contract prescribes.  Every thread runs a different mixed
/// plan/execute + region sequence and must land on the same full-fidelity
/// reconstruction.
void shared_archive_mixed_traffic(bool through_file) {
  Options opt;
  opt.error_bound = 1e-6;
  opt.block_side = 8;
  auto field = smooth_field(Dims{24, 20, 16}, 42, 0.05);
  const Bytes archive = compress(field.const_view(), opt);

  std::string path;
  if (through_file) {
    path = ::testing::TempDir() + "/ipcomp_concurrency_shared.ipc";
    write_file(path, archive);
  }

  double archive_eb = 0.0;
  {
    MemorySource probe{Bytes(archive)};
    ProgressiveReader<double> r(probe);
    archive_eb = r.compression_eb();
  }

  std::vector<std::vector<double>> result(kThreads);
  race([&](int t) {
    // Per-thread source over the shared bytes / shared file.
    std::unique_ptr<SegmentSource> src;
    if (through_file) {
      src = std::make_unique<FileSource>(path);
    } else {
      src = std::make_unique<MemorySource>(Bytes(archive));
    }
    ProgressiveReader<double> reader(*src);
    // Mixed traffic, shape varying by thread id.
    if (t % 2 == 0) {
      auto st = reader.retrieve(Request::error_bound(1e-2));
      ASSERT_LE(linf(field.const_view(), reader.data()),
                st.guaranteed_error * (1 + 1e-9));
    }
    if (t % 3 == 0) {
      reader.execute(reader.plan(
          Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12})));
    }
    if (t % 3 == 1) reader.retrieve(Request::bytes(2000));
    reader.retrieve(Request::full());
    result[t] = reader.data();
  });
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(result[t].size(), field.count());
    EXPECT_LE(linf(field.const_view(), result[t]), archive_eb * (1 + 1e-9))
        << "thread " << t;
  }
}

TEST(Concurrency, SharedArchiveMemorySourcesMixedTraffic) {
  shared_archive_mixed_traffic(/*through_file=*/false);
}

TEST(Concurrency, SharedArchiveFileSourcesMixedTraffic) {
  shared_archive_mixed_traffic(/*through_file=*/true);
}

// Regression pin for the reader's const-purity contract: concurrent plan()
// calls on ONE shared reader are pure reads — they return plans identical to
// serial planning, and leave the reader's data, accounting and epoch
// untouched.  (Under TSan this also proves plan() writes no hidden state.)
TEST(Concurrency, ConcurrentPlanCallsOnOneReaderStayPure) {
  Options opt;
  opt.error_bound = 1e-6;
  opt.block_side = 8;
  auto field = smooth_field(Dims{24, 20, 16}, 43, 0.05);
  MemorySource src{compress(field.const_view(), opt)};
  ProgressiveReader<double> reader(src);
  // Advance to a mid-fidelity resident set first, so plans are non-trivial.
  reader.retrieve(Request::error_bound(1e-2));

  const std::vector<double> data_before = reader.data();
  const std::size_t bytes_before = src.stats().bytes_read;

  const Request requests[] = {
      Request::error_bound(1e-3),
      Request::error_bound(1e-5),
      Request::bytes(1500),
      Request::full(),
      Request::error_bound(1e-4).within({0, 0, 0}, {10, 20, 16}),
  };
  // Serial reference plans for every request.
  std::vector<RetrievalPlan> reference;
  for (const Request& r : requests) reference.push_back(reader.plan(r));

  race([&](int t) {
    for (int i = 0; i < 50; ++i) {
      const std::size_t which = static_cast<std::size_t>(t + i) %
                                std::size(requests);
      RetrievalPlan p = reader.plan(requests[which]);
      const RetrievalPlan& ref = reference[which];
      ASSERT_EQ(p.segments, ref.segments);
      ASSERT_EQ(p.bytes_new, ref.bytes_new);
      ASSERT_EQ(p.guaranteed_error, ref.guaranteed_error);
      ASSERT_EQ(p.plane_targets, ref.plane_targets);
      ASSERT_EQ(p.blocks, ref.blocks);
      ASSERT_EQ(p.epoch, ref.epoch);
    }
  });

  EXPECT_EQ(reader.data(), data_before);
  EXPECT_EQ(src.stats().bytes_read, bytes_before);
  // The reader did not advance: the reference plans are still executable.
  RetrievalStats st = reader.execute(reference[0]);
  EXPECT_EQ(st.bytes_new, reference[0].bytes_new);
}

// parallel_for / parallel_chunks driven from concurrent outer threads: the
// nested-parallelism guard and grain logic must neither lose indices nor
// double-visit them, whatever the interleaving.
TEST(Concurrency, ParallelForNestedGuardStress) {
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> visits(kN);
  race([&](int) {
    parallel_for(0, kN, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      // Nested call: the guard must serialize it (or it is serial anyway
      // below the grain), never deadlock or oversubscribe.
      if (i % 4096 == 0) {
        parallel_for(0, 64, [&](std::size_t j) {
          visits[j].fetch_add(0, std::memory_order_relaxed);
        }, /*grain=*/1);
      }
    }, /*grain=*/256);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(std::memory_order_relaxed), kThreads) << i;
  }
}

// parallel_chunks: chunk boundaries are thread-count independent, so
// chunk-local tallies must merge to the same totals from every thread.
TEST(Concurrency, ParallelChunksConcurrentTallies) {
  constexpr std::size_t kN = 10000;
  constexpr std::size_t kChunk = 64;
  std::vector<std::uint64_t> totals(kThreads, 0);
  race([&](int t) {
    std::atomic<std::uint64_t> total{0};
    parallel_chunks(0, kN, kChunk, [&](std::size_t lo, std::size_t hi) {
      std::uint64_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += i;
      total.fetch_add(local, std::memory_order_relaxed);
    });
    totals[static_cast<std::size_t>(t)] = total.load();
  });
  const std::uint64_t want = kN * (kN - 1) / 2;
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(totals[t], want);
}

// parallel_for_ex from concurrent threads: each thread's first exception is
// captured under the sync.hpp Mutex and rethrown on that thread only.
TEST(Concurrency, ParallelForExConcurrentThrow) {
  std::atomic<int> caught{0};
  race([&](int t) {
    try {
      parallel_for_ex(0, 5000, [&](std::size_t i) {
        if (i == static_cast<std::size_t>(500 + t)) {
          throw std::runtime_error("boom " + std::to_string(t));
        }
      }, /*grain=*/64);
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "boom " + std::to_string(t));
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(caught.load(), kThreads);
}

// The sync.hpp primitives themselves: Mutex mutual exclusion and CondVar
// wakeup, raced directly.
TEST(Concurrency, MutexAndCondVarWrappers) {
  Mutex mu;
  int counter = 0;  // guarded by mu (local, so documented not annotated)
  bool go = false;
  CondVar cv;
  std::atomic<int> woke{0};
  race([&](int t) {
    if (t == 0) {
      {
        LockGuard lock(mu);
        go = true;
      }
      cv.notify_all();
    } else {
      {
        LockGuard lock(mu);
        cv.wait(mu, [&] { return go; });
      }
      woke.fetch_add(1, std::memory_order_relaxed);
    }
    for (int i = 0; i < 1000; ++i) {
      LockGuard lock(mu);
      ++counter;
    }
  });
  EXPECT_EQ(woke.load(), kThreads - 1);
  LockGuard lock(mu);
  EXPECT_EQ(counter, kThreads * 1000);
}

}  // namespace
}  // namespace ipcomp
