#include <gtest/gtest.h>

#include <cstring>

#include "coding/lzh.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

void round_trip(const Bytes& input) {
  Bytes enc = lzh_compress({input.data(), input.size()});
  Bytes dec = lzh_decompress({enc.data(), enc.size()});
  ASSERT_EQ(dec.size(), input.size());
  EXPECT_EQ(dec, input);
}

TEST(Lzh, Empty) { round_trip({}); }

TEST(Lzh, Tiny) { round_trip({1, 2, 3}); }

TEST(Lzh, SingleByte) { round_trip({42}); }

TEST(Lzh, RepeatedByteCompresses) {
  Bytes in(100000, 7);
  Bytes enc = lzh_compress({in.data(), in.size()});
  EXPECT_LT(enc.size(), in.size() / 100);
  round_trip(in);
}

TEST(Lzh, PeriodicPattern) {
  Bytes in;
  for (int i = 0; i < 50000; ++i) in.push_back(static_cast<std::uint8_t>(i % 17));
  Bytes enc = lzh_compress({in.data(), in.size()});
  EXPECT_LT(enc.size(), in.size() / 10);
  round_trip(in);
}

TEST(Lzh, OverlappingMatch) {
  // "abcabcabc..." forces overlapping copies (dist < len).
  Bytes in;
  const char* pat = "abc";
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<std::uint8_t>(pat[i % 3]));
  round_trip(in);
}

TEST(Lzh, IncompressibleRandomStoredRaw) {
  Rng rng(9);
  Bytes in(20000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes enc = lzh_compress({in.data(), in.size()});
  // Raw fallback bounds expansion to block framing overhead.
  EXPECT_LT(enc.size(), in.size() + 64);
  round_trip(in);
}

TEST(Lzh, MultiBlockInput) {
  // > 256 KiB to exercise the block splitter.
  Rng rng(10);
  Bytes in(600000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>((i / 100) % 251);
  }
  round_trip(in);
}

TEST(Lzh, TextLikeData) {
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "the quick brown fox jumps over the lazy dog ";
  }
  Bytes in(text.begin(), text.end());
  Bytes enc = lzh_compress({in.data(), in.size()});
  EXPECT_LT(enc.size(), in.size() / 20);
  round_trip(in);
}

TEST(Lzh, RandomStructuredFuzz) {
  Rng rng(12);
  for (int trial = 0; trial < 15; ++trial) {
    Bytes in(1 + rng.uniform_u64(30000));
    std::uint8_t v = 0;
    for (auto& b : in) {
      if (rng.uniform() < 0.05) v = static_cast<std::uint8_t>(rng.next_u64());
      b = v;
    }
    round_trip(in);
  }
}

TEST(Lzh, MatchAtBufferEnd) {
  Bytes in;
  for (int i = 0; i < 100; ++i) in.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0; i < 100; ++i) in.push_back(static_cast<std::uint8_t>(i));
  round_trip(in);  // match runs exactly to the end
}

}  // namespace
}  // namespace ipcomp
