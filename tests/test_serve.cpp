// Multi-tenant serve layer: SegmentCache LRU behavior, PooledSource batch
// merging, ArchiveSet open-once sharing, Session accounting/quotas — and the
// ArchiveSet stress test the tsan preset runs: N threads x M sessions over
// one shared archive with mixed plan/execute/region traffic, byte-identical
// to a serial reader, with the cache capacity invariant sampled live from a
// monitor thread.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipcomp.hpp"
#include "test_util.hpp"
#include "util/checksum.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

Bytes make_archive(const NdArray<double>& field, double eb, unsigned block_side) {
  Options opt;
  opt.error_bound = eb;
  opt.relative = false;
  opt.block_side = block_side;
  // Small blocks would otherwise store every level whole (non-progressive);
  // lower the threshold so the archives carry real bitplane segments and
  // partial-fidelity plans price below full.
  opt.progressive_threshold = 256;
  return compress(field.const_view(), opt);
}

// ---- SegmentCache ---------------------------------------------------------

Bytes payload_of(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

/// Cache key in archive 0 (keys are namespaced per archive serial).
CacheKey seg(std::uint64_t k) { return {0, k}; }

TEST(SegmentCache, LruEvictionOrderAndCounters) {
  SegmentCache cache(/*capacity_bytes=*/100);
  Bytes out;

  EXPECT_FALSE(cache.get(seg(1), out));  // miss counted
  cache.put(seg(1), payload_of(40, 0xA1));
  cache.put(seg(2), payload_of(40, 0xA2));
  EXPECT_TRUE(cache.get(seg(1), out));  // 1 is now most-recent
  EXPECT_EQ(out, payload_of(40, 0xA1));

  cache.put(seg(3), payload_of(40, 0xA3));  // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.get(seg(1), out));
  EXPECT_TRUE(cache.get(seg(3), out));
  EXPECT_FALSE(cache.get(seg(2), out));

  CacheStats s = cache.stats();
  EXPECT_EQ(s.capacity_bytes, 100u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.resident_bytes, 80u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);  // get(1) x2 after the puts, get(3)
  EXPECT_EQ(s.misses, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.6);
  EXPECT_LE(s.resident_bytes, s.capacity_bytes);
}

TEST(SegmentCache, OversizedPayloadIsNotCachedAndCapacityHolds) {
  SegmentCache cache(64);
  cache.put(seg(7), payload_of(65, 0xFF));  // larger than the whole capacity
  Bytes out;
  EXPECT_FALSE(cache.get(seg(7), out));
  EXPECT_EQ(cache.stats().resident_bytes, 0u);

  // Refreshing an existing key must not double-count resident bytes.
  cache.put(seg(8), payload_of(30, 0x08));
  cache.put(seg(8), payload_of(30, 0x08));
  EXPECT_EQ(cache.stats().resident_bytes, 30u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SegmentCache, VerifiedPutRejectsCorruptPayloadAtTheBoundary) {
  SegmentCache cache(1 << 16);
  Bytes good = payload_of(64, 0xCD);
  const std::uint64_t sum = checksum64(good.data(), good.size());

  cache.put(seg(9), good, sum);  // verified insert caches normally
  Bytes out;
  EXPECT_TRUE(cache.get(seg(9), out));
  EXPECT_EQ(out, good);

  Bytes bad = good;
  bad[10] ^= 0x08;
  try {
    cache.put(seg(10), bad, sum);
    FAIL() << "corrupted payload accepted into the cache";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.layer(), IntegrityError::Layer::kCache);
    EXPECT_EQ(e.expected(), sum);
  }
  EXPECT_FALSE(cache.get(seg(10), out));

  // Pre-v4 archives have no checksum column: unverified puts still cache.
  cache.put(seg(11), bad);
  EXPECT_TRUE(cache.get(seg(11), out));
}

TEST(SegmentCache, SameSegmentKeyInTwoArchivesIsTwoEntries) {
  SegmentCache cache(128);
  cache.put({1, 42}, payload_of(8, 0x11));
  cache.put({2, 42}, payload_of(8, 0x22));
  Bytes out;
  ASSERT_TRUE(cache.get({1, 42}, out));
  EXPECT_EQ(out, payload_of(8, 0x11));
  ASSERT_TRUE(cache.get({2, 42}, out));
  EXPECT_EQ(out, payload_of(8, 0x22));
  EXPECT_EQ(cache.stats().entries, 2u);
}

// The handle forwards the v4 checksum column so downstream trust boundaries
// (session cache inserts, wire SEGMENT frames) can re-verify payloads.
TEST(Serve, HandleForwardsChecksumColumnAndSessionsCacheVerified) {
  auto field = smooth_field(Dims{16, 12, 8}, 57, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);  // Options::integrity → v4

  ArchiveSet set;
  auto handle = set.open_memory("a", Bytes(archive));
  MemorySource ref{Bytes(archive)};
  const std::vector<SegmentId> ids = handle->segment_ids();
  ASSERT_FALSE(ids.empty());
  for (const SegmentId& id : ids) {
    ASSERT_TRUE(handle->segment_checksum(id).has_value());
    EXPECT_EQ(handle->segment_checksum(id), ref.segment_checksum(id));
  }

  // Session traffic reaches the shared cache only through verified inserts.
  Session<double> session(handle);
  session.retrieve(Request::full());
  EXPECT_GT(handle->cache_stats().entries, 0u);
}

// ---- PooledSource ---------------------------------------------------------

TEST(Serve, PooledSourceMatchesBaseAndPropagatesErrors) {
  auto field = smooth_field(Dims{24, 20, 16}, 51, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  MemorySource direct{Bytes(archive)};
  MemorySource base{Bytes(archive)};
  PooledSource pool(base, /*workers=*/2);

  EXPECT_EQ(pool.header(), direct.header());
  EXPECT_EQ(pool.version(), direct.version());
  EXPECT_EQ(pool.total_size(), direct.total_size());
  // The pool mirrors the base's open cost into its own ledger.
  EXPECT_EQ(pool.stats().bytes_read, direct.stats().bytes_read);

  std::vector<SegmentId> ids = direct.segment_ids();
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(pool.read_many(ids), direct.read_many(ids));
  EXPECT_EQ(pool.stats().bytes_read, direct.stats().bytes_read);

  EXPECT_EQ(pool.read_segment(ids.front()), direct.read_segment(ids.front()));

  // A missing id fails the dispatch without charging anything.
  const std::size_t before = pool.stats().bytes_read;
  SegmentId bogus;
  bogus.kind = 0xAB;
  bogus.level = 0xCD;
  EXPECT_THROW(pool.read_segment(bogus), std::runtime_error);
  EXPECT_EQ(pool.stats().bytes_read, before);
}

TEST(Serve, PooledSourceConcurrentBatchesMergeIntoFewerDispatches) {
  constexpr int kThreads = 8;
  auto field = smooth_field(Dims{24, 20, 16}, 52, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  MemorySource direct{Bytes(archive)};
  const std::vector<SegmentId> ids = direct.segment_ids();
  const std::vector<Bytes> want = direct.read_many(ids);

  MemorySource base{Bytes(archive)};
  PooledSource pool(base, /*workers=*/2);
  std::vector<std::vector<Bytes>> got(kThreads);
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      got[t] = pool.read_many(ids);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], want) << "thread " << t;
  // One read_call per merged dispatch: never more than one per caller batch,
  // and at least one.
  const std::size_t dispatches = pool.stats().read_calls;
  EXPECT_GE(dispatches, 1u);
  EXPECT_LE(dispatches, static_cast<std::size_t>(kThreads));
}

// ---- ArchiveSet / Session -------------------------------------------------

TEST(Serve, ArchiveSetOpensEachArchiveOnce) {
  auto field = smooth_field(Dims{20, 16, 12}, 53, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);
  const std::string path = ::testing::TempDir() + "/ipcomp_serve_once.ipc";
  write_file(path, archive);

  ArchiveSet set;
  auto a = set.open_file(path);
  auto b = set.open_file(path);
  EXPECT_EQ(a.get(), b.get());  // one handle, one open cost
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.get(path).get(), a.get());

  auto m = set.open_memory("mem", Bytes(archive));
  EXPECT_NE(m.get(), a.get());
  EXPECT_EQ(set.size(), 2u);

  set.close(path);
  EXPECT_EQ(set.get(path), nullptr);
  // The dropped handle stays alive for existing holders.
  EXPECT_GT(a->total_size(), 0u);
}

TEST(Serve, SharedCacheBudgetTwoArchivesCompete) {
  // Two archives, one cache whose budget holds roughly ONE of them: traffic
  // on the second must evict the first (cross-archive LRU, one byte cap),
  // while every session still reconstructs exactly.
  auto field_a = smooth_field(Dims{24, 20, 16}, 58, 0.05);
  auto field_b = smooth_field(Dims{24, 20, 16}, 59, 0.08);
  Bytes archive_a = make_archive(field_a, 1e-6, 8);
  Bytes archive_b = make_archive(field_b, 1e-6, 8);

  ServeOptions sopts;
  sopts.cache_capacity_bytes = archive_a.size();  // ~one archive's worth
  ArchiveSet set(sopts);
  auto ha = set.open_memory("a", Bytes(archive_a));
  auto hb = set.open_memory("b", Bytes(archive_b));

  // Warm A, then prove a second A session is served from cache.
  Session<double>(ha).retrieve(Request::full());
  const std::size_t physical_a_warm = ha->source_stats().bytes_read;
  Session<double>(ha).retrieve(Request::full());
  EXPECT_EQ(ha->source_stats().bytes_read, physical_a_warm);

  // Full traffic on B sweeps the shared LRU; A's residency is collateral.
  Session<double> sb(hb);
  sb.retrieve(Request::full());
  EXPECT_GT(set.cache_stats().evictions, 0u);
  EXPECT_LE(set.cache_stats().resident_bytes, set.cache_stats().capacity_bytes);

  // A third A session now misses (its segments were evicted) and refetches
  // from storage — the set-wide budget really is shared, not per-archive.
  Session<double> sa(ha);
  sa.retrieve(Request::full());
  EXPECT_GT(ha->source_stats().bytes_read, physical_a_warm);

  // Both reconstructions stay exact under the churn.
  EXPECT_LE(linf(field_a.const_view(), sa.data()), 1e-6);
  EXPECT_LE(linf(field_b.const_view(), sb.data()), 1e-6);
}

TEST(Serve, SessionMatchesIsolatedReaderExactly) {
  auto field = smooth_field(Dims{24, 20, 16}, 54, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  MemorySource iso_src{Bytes(archive)};
  ProgressiveReader<double> isolated(iso_src);

  ArchiveSet set;
  auto handle = set.open_memory("a", Bytes(archive));
  Session<double> session(handle);

  const Request steps[] = {
      Request::error_bound(1e-2),
      Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12}),
      Request::bytes(3000),
      Request::full(),
  };
  for (const Request& req : steps) {
    RetrievalPlan ip = isolated.plan(req);
    RetrievalPlan sp = session.plan(req);
    EXPECT_EQ(ip.segments, sp.segments);
    EXPECT_EQ(ip.bytes_new, sp.bytes_new);
    RetrievalStats is = isolated.execute(ip);
    RetrievalStats ss = session.execute(sp);
    // The session ledger charges what the client consumed — cache hit or
    // not — so its stats are indistinguishable from a private reader's.
    EXPECT_EQ(is.bytes_new, ss.bytes_new);
    EXPECT_EQ(is.bytes_total, ss.bytes_total);
    EXPECT_EQ(is.guaranteed_error, ss.guaranteed_error);
    EXPECT_EQ(isolated.data(), session.data());
  }
  EXPECT_EQ(session.bytes_used(), iso_src.stats().bytes_read);
}

TEST(Serve, SecondSessionIsServedFromCacheNotStorage) {
  auto field = smooth_field(Dims{24, 20, 16}, 55, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  ArchiveSet set;  // default capacity holds this whole archive
  auto handle = set.open_memory("a", Bytes(archive));

  Session<double> first(handle);
  first.retrieve(Request::full());
  const SourceStats physical_after_first = handle->source_stats();

  Session<double> second(handle);
  second.retrieve(Request::full());
  // Identical reconstruction, zero new storage traffic: every segment the
  // second session needed was resident in the shared cache.
  EXPECT_EQ(second.data(), first.data());
  EXPECT_EQ(handle->source_stats().bytes_read, physical_after_first.bytes_read);
  EXPECT_EQ(handle->source_stats().read_calls, physical_after_first.read_calls);
  // But the second session still paid for the volume it consumed.
  EXPECT_EQ(second.bytes_used(), first.bytes_used());
  EXPECT_GT(handle->cache_stats().hits, 0u);
}

TEST(Serve, SessionQuotaRejectsAtAdmissionAndLeavesStateUntouched) {
  auto field = smooth_field(Dims{24, 20, 16}, 56, 0.05);
  Bytes archive = make_archive(field, 1e-6, 8);

  ArchiveSet set;
  auto handle = set.open_memory("a", Bytes(archive));

  // Price the full and coarse retrievals with an unmetered probe session;
  // the test needs a genuinely partial tier below the quota.
  Session<double> probe(handle);
  const std::size_t full_cost = probe.plan(Request::full()).bytes_new;
  const std::size_t coarse_cost =
      probe.plan(Request::error_bound(1e-2)).bytes_new;
  ASSERT_GT(full_cost, 0u);
  ASSERT_LT(coarse_cost, full_cost - 1);

  // A quota below the full price must reject full fidelity...
  Session<double> metered(handle, {}, /*byte_quota=*/full_cost - 1);
  const RetrievalPlan full_plan = metered.plan(Request::full());
  EXPECT_THROW(metered.execute(full_plan), QuotaExceeded);
  // ...before any I/O: nothing consumed, the session still at zero.
  EXPECT_EQ(metered.bytes_used(), 0u);
  EXPECT_EQ(metered.quota_remaining(), full_cost - 1);

  // A cheaper request is admitted, and its exact price lands in the ledger.
  RetrievalStats st = metered.retrieve(Request::error_bound(1e-2));
  EXPECT_GT(st.bytes_new, 0u);
  EXPECT_EQ(metered.bytes_used(), st.bytes_new);
  EXPECT_EQ(metered.quota_remaining(), full_cost - 1 - st.bytes_new);

  // The error carries the exact shortfall.
  try {
    metered.execute(metered.plan(Request::full()));
    FAIL() << "expected QuotaExceeded";
  } catch (const QuotaExceeded& e) {
    EXPECT_GT(e.needed(), e.remaining());
    EXPECT_EQ(e.remaining(), metered.quota_remaining());
  }
}

// ---- the tsan-preset stress test ------------------------------------------

// N threads x M sessions over ONE shared archive: mixed plan/execute +
// region traffic against sessions sharing the cache and the I/O pool, a
// monitor thread sampling the LRU capacity invariant live, and every final
// reconstruction byte-identical to a serial reader over a private source.
void archive_set_stress(bool through_file, std::size_t cache_capacity) {
  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 2;

  Options opt;
  opt.error_bound = 1e-6;
  opt.relative = false;
  opt.block_side = 8;
  opt.progressive_threshold = 256;  // real bitplane segments (see make_archive)
  auto field = smooth_field(Dims{24, 20, 16}, 57, 0.05);
  const Bytes archive = compress(field.const_view(), opt);

  // Serial references: each traffic shape below, run through a private
  // reader.  Refinement order shifts float accumulation at the ~1e-15 level,
  // so "byte-identical" must compare against the same request sequence, not
  // against a one-shot full retrieval.
  // Works on ProgressiveReader<double> and Session<double> alike (identical
  // plan/execute/retrieve surface).
  auto run_shape = [](auto& r, int shape) {
    if (shape == 0) r.retrieve(Request::error_bound(1e-2));
    if (shape == 1) {
      r.execute(r.plan(
          Request::error_bound(1e-4).within({0, 0, 0}, {12, 12, 12})));
    }
    if (shape == 2) r.retrieve(Request::bytes(2000));
    if (shape == 3) r.execute(r.plan(Request::error_bound(1e-3)));
    r.retrieve(Request::full());
  };
  std::vector<std::vector<double>> want(4);
  std::size_t isolated_bytes = 0;
  for (int shape = 0; shape < 4; ++shape) {
    MemorySource ref_src{Bytes(archive)};
    ProgressiveReader<double> ref(ref_src);
    run_shape(ref, shape);
    want[static_cast<std::size_t>(shape)] = ref.data();
    // Every path ends at full fidelity and never refetches, so the physical
    // price is the same no matter the route.
    if (shape == 0) {
      isolated_bytes = ref_src.stats().bytes_read;
    } else {
      ASSERT_EQ(ref_src.stats().bytes_read, isolated_bytes);
    }
  }

  ServeOptions sopts;
  sopts.cache_capacity_bytes = cache_capacity;
  sopts.io_threads = 2;
  ArchiveSet set(sopts);
  std::shared_ptr<ArchiveHandle> handle;
  if (through_file) {
    const std::string path = ::testing::TempDir() + "/ipcomp_serve_stress.ipc";
    write_file(path, archive);
    handle = set.open_file(path);
  } else {
    handle = set.open_memory("stress", Bytes(archive));
  }

  std::atomic<bool> monitoring{true};
  std::atomic<std::size_t> capacity_violations{0};
  std::thread monitor([&] {
    while (monitoring.load(std::memory_order_relaxed)) {
      CacheStats s = handle->cache_stats();
      if (s.resident_bytes > s.capacity_bytes) {
        capacity_violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<double>> result(kThreads * kSessionsPerThread);
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (int s = 0; s < kSessionsPerThread; ++s) {
        Session<double> session(handle);
        // Mixed traffic, shape varying by (thread, session).
        const int shape = (t + s) % 4;
        if (shape == 3) {
          // plan() purity under concurrency: price without advancing.
          RetrievalPlan p = session.plan(Request::error_bound(1e-3));
          ASSERT_EQ(session.bytes_used(), 0u);
        }
        run_shape(session, shape);
        result[static_cast<std::size_t>(t) * kSessionsPerThread +
               static_cast<std::size_t>(s)] = session.data();
        // Per-session accounting is isolated: this session paid the full
        // archive price in its own ledger no matter what its neighbors did.
        ASSERT_EQ(session.bytes_used(), isolated_bytes);
      }
    });
  }
  for (auto& th : threads) th.join();
  monitoring.store(false, std::memory_order_relaxed);
  monitor.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      const std::size_t i = static_cast<std::size_t>(t) * kSessionsPerThread +
                            static_cast<std::size_t>(s);
      ASSERT_EQ(result[i], want[static_cast<std::size_t>((t + s) % 4)])
          << "session " << i;
    }
  }
  EXPECT_EQ(capacity_violations.load(), 0u);
  CacheStats cs = handle->cache_stats();
  EXPECT_LE(cs.resident_bytes, cs.capacity_bytes);
  EXPECT_GT(cs.hits, 0u);
  // Shared tier did strictly less physical I/O than 16 isolated readers.
  EXPECT_LT(handle->source_stats().bytes_read,
            static_cast<std::size_t>(kThreads * kSessionsPerThread) *
                isolated_bytes);
}

TEST(Serve, ArchiveSetStressMemoryBacked) {
  archive_set_stress(/*through_file=*/false, std::size_t{64} << 20);
}

TEST(Serve, ArchiveSetStressFileBacked) {
  archive_set_stress(/*through_file=*/true, std::size_t{64} << 20);
}

// Small capacity: constant evictions, every session still exact.
TEST(Serve, ArchiveSetStressUnderEvictionPressure) {
  archive_set_stress(/*through_file=*/false, /*cache_capacity=*/4096);
}

}  // namespace
}  // namespace ipcomp
