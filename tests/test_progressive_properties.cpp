// Deeper invariants of progressive retrieval, parameterized across request
// sequences: plan monotonicity, byte accounting, guarantee consistency, and
// equivalence between request orderings.
#include <gtest/gtest.h>

#include "ipcomp.hpp"
#include "mgard/mgard.hpp"
#include "test_util.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

struct Fixture {
  NdArray<double> field;
  Bytes archive;
  double eb;

  explicit Fixture(std::uint64_t seed) : field(smooth_field(Dims{36, 24, 24}, seed, 0.08)) {
    Options opt;
    opt.error_bound = 1e-8;
    opt.relative = false;
    opt.progressive_threshold = 256;
    eb = 1e-8;
    archive = compress(field.const_view(), opt);
  }
};

TEST(ProgressiveProperties, ByteAccountingAddsUpAcrossManyRequests) {
  Fixture fx(51);
  MemorySource src{Bytes(fx.archive)};
  ProgressiveReader<double> reader(src);
  std::size_t sum = 0;
  for (double t : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7}) {
    auto st = reader.retrieve(Request::error_bound(t));
    sum += st.bytes_new;
    EXPECT_EQ(st.bytes_total, sum);
    EXPECT_EQ(reader.bytes_loaded(), sum);
  }
  auto full = reader.retrieve(Request::full());
  sum += full.bytes_new;
  EXPECT_EQ(full.bytes_total, sum);
  EXPECT_LE(full.bytes_total, fx.archive.size());
}

TEST(ProgressiveProperties, ManySmallStepsEndAtSameStateAsOneBigStep) {
  Fixture fx(52);
  MemorySource a_src{Bytes(fx.archive)}, b_src{Bytes(fx.archive)};
  ProgressiveReader<double> stepwise(a_src), oneshot(b_src);
  for (double t : {1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5}) {
    stepwise.retrieve(Request::error_bound(t));
  }
  stepwise.retrieve(Request::full());
  oneshot.retrieve(Request::full());
  // Full load ends in the identical plane state; outputs agree to rounding.
  const double range = testutil::value_range(fx.field.const_view());
  EXPECT_LE(linf(oneshot.data(), stepwise.data()), 1e-12 * range);
  // And both hold the full-fidelity guarantee.
  EXPECT_LE(linf(fx.field.const_view(), stepwise.data()), fx.eb * (1 + 1e-9));
}

TEST(ProgressiveProperties, InterleavedModeRequestsStayConsistent) {
  Fixture fx(53);
  MemorySource src{Bytes(fx.archive)};
  ProgressiveReader<double> reader(src);
  // Alternate EB-mode and bitrate-mode requests; invariants must hold at
  // every step.
  const std::size_t n = fx.field.count();
  double prev_guarantee = std::numeric_limits<double>::infinity();
  std::size_t prev_total = 0;
  int step = 0;
  for (auto [mode, value] : std::vector<std::pair<int, double>>{
           {0, 1e-2}, {1, 6.0}, {0, 1e-4}, {1, 14.0}, {0, 1e-6}}) {
    RetrievalStats st = mode == 0 ? reader.retrieve(Request::error_bound(value))
                                  : reader.retrieve(Request::bitrate(value));
    EXPECT_LE(st.guaranteed_error, prev_guarantee * (1 + 1e-12)) << "step " << step;
    EXPECT_LE(linf(fx.field.const_view(), reader.data()),
              st.guaranteed_error * (1 + 1e-9))
        << "step " << step;
    if (mode == 1) {
      // Already-resident data cannot be unloaded: the budget constrains the
      // cumulative total only when it exceeds what previous requests loaded.
      const auto budget = static_cast<std::size_t>(value * n / 8) + 1;
      EXPECT_LE(st.bytes_total, std::max(budget, prev_total)) << "step " << step;
    }
    prev_guarantee = st.guaranteed_error;
    prev_total = st.bytes_total;
    ++step;
  }
}

TEST(ProgressiveProperties, GuaranteeMatchesRecomputedValue) {
  Fixture fx(54);
  MemorySource src{Bytes(fx.archive)};
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::error_bound(1e-4));
  EXPECT_DOUBLE_EQ(st.guaranteed_error, reader.current_guaranteed_error());
}

TEST(ProgressiveProperties, TighterThresholdStillWithinBounds) {
  // progressive_threshold changes which levels are bitplaned; the guarantees
  // must be invariant to it.
  auto field = smooth_field(Dims{30, 30, 15}, 55, 0.05);
  for (std::size_t threshold : {std::size_t{1}, std::size_t{512}, std::size_t{1u << 20}}) {
    Options opt;
    opt.error_bound = 1e-7;
    opt.relative = false;
    opt.progressive_threshold = threshold;
    Bytes archive = compress(field.const_view(), opt);
    MemorySource src(std::move(archive));
    ProgressiveReader<double> reader(src);
    auto st = reader.retrieve(Request::error_bound(1e-3));
    EXPECT_LE(st.guaranteed_error, 1e-3 * (1 + 1e-9)) << "threshold " << threshold;
    EXPECT_LE(linf(field.const_view(), reader.data()), 1e-3 * (1 + 1e-9))
        << "threshold " << threshold;
    reader.retrieve(Request::full());
    EXPECT_LE(linf(field.const_view(), reader.data()), 1e-7 * (1 + 1e-9))
        << "threshold " << threshold;
  }
}

TEST(ProgressiveProperties, AllSolidArchiveRetrievesExactlyOnce) {
  // With an enormous threshold nothing is bitplaned: the archive behaves like
  // a classic single-fidelity compressor but through the same API.
  auto field = smooth_field(Dims{20, 20}, 56);
  Options opt;
  opt.error_bound = 1e-6;
  opt.relative = false;
  opt.progressive_threshold = 1u << 30;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  auto coarse = reader.retrieve(Request::error_bound(1e-1));
  // Everything is mandatory: the coarse request already yields full quality.
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-6 * (1 + 1e-9));
  auto full = reader.retrieve(Request::full());
  EXPECT_EQ(full.bytes_new, 0u);
  EXPECT_EQ(coarse.bytes_total, full.bytes_total);
}

TEST(ProgressiveProperties, MgardPartialLevelsConverge) {
  // Recomposing with coefficients of progressively more levels converges to
  // the original.  L∞ error is NOT monotone at the coarse end (hierarchical
  // interpolants can overshoot), so monotonicity is only asserted over the
  // fine-level tail where coefficients decay on smooth data.
  auto field = smooth_field(Dims{33, 31, 14}, 57, 0.02);
  auto coeffs = mgard_decompose(field.const_view());
  std::vector<double> errs;
  for (std::size_t keep = 0; keep <= coeffs.size(); ++keep) {
    // Zero out the finest `coeffs.size() - keep` levels (indices 0..).
    auto partial = coeffs;
    for (std::size_t li = 0; li + keep < coeffs.size(); ++li) {
      std::fill(partial[li].begin(), partial[li].end(), 0.0);
    }
    auto recon = mgard_recompose(field.dims(), partial);
    errs.push_back(linf(field.const_view(), recon));
  }
  EXPECT_LE(errs.back(), 1e-12);            // all levels -> exact
  EXPECT_LT(errs.back(), errs.front());     // and far better than nothing
  for (std::size_t keep = coeffs.size() / 2; keep < coeffs.size(); ++keep) {
    EXPECT_LE(errs[keep + 1], errs[keep] * (1 + 1e-12)) << "keep " << keep;
  }
}

}  // namespace
}  // namespace ipcomp
