#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "bitplane/negabinary.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

TEST(Negabinary, KnownValues) {
  // From the paper: 1 -> 00000001, -1 -> 00000011 (base -2: -2 + 1 = -1).
  EXPECT_EQ(negabinary_encode(0), 0u);
  EXPECT_EQ(negabinary_encode(1), 1u);
  EXPECT_EQ(negabinary_encode(-1), 3u);
  EXPECT_EQ(negabinary_encode(2), 6u);   // 110: 4 - 2 = 2
  EXPECT_EQ(negabinary_encode(-2), 2u);  // 010: -2
  EXPECT_EQ(negabinary_encode(3), 7u);   // 111: 4 - 2 + 1
}

TEST(Negabinary, RoundTripSmall) {
  for (std::int64_t v = -100000; v <= 100000; ++v) {
    EXPECT_EQ(negabinary_decode(negabinary_encode(v)), v);
  }
}

TEST(Negabinary, RoundTripRandomWide) {
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) {
    std::int64_t v = static_cast<std::int64_t>(rng.next_u64() % (1ull << 31)) -
                     (1ll << 30);
    EXPECT_EQ(negabinary_decode(negabinary_encode(v)), v);
  }
}

TEST(Negabinary, RangeLimits) {
  EXPECT_EQ(negabinary_decode(negabinary_encode(kNegabinaryMax)), kNegabinaryMax);
  EXPECT_EQ(negabinary_decode(negabinary_encode(kNegabinaryMin)), kNegabinaryMin);
  EXPECT_EQ(negabinary_encode(kNegabinaryMax), 0x55555555u);
  EXPECT_EQ(negabinary_encode(kNegabinaryMin), 0xAAAAAAAAu);
}

TEST(Negabinary, ValuesNearZeroHaveLowBitsOnly) {
  // This is the property the paper exploits: small |v| -> only low planes set.
  for (std::int64_t v = -8; v <= 8; ++v) {
    std::uint32_t u = negabinary_encode(v);
    EXPECT_LT(u, 64u) << "v=" << v;
  }
}

TEST(Negabinary, DecodeIsLinearOverBitPositions) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.next_u64());
    unsigned d = static_cast<unsigned>(rng.uniform_u64(33));
    std::uint32_t low = d >= 32 ? u : (u & ((std::uint32_t{1} << d) - 1));
    std::uint32_t high = u ^ low;
    EXPECT_EQ(negabinary_decode(u), negabinary_decode(low) + negabinary_decode(high));
  }
}

TEST(Negabinary, LowBitsValueMatchesDefinition) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.next_u64());
    unsigned d = static_cast<unsigned>(rng.uniform_u64(33));
    std::uint32_t masked = d >= 32 ? 0 : (u & ~((std::uint32_t{1} << d) - 1));
    EXPECT_EQ(negabinary_low_bits_value(u, d),
              negabinary_decode(u) - negabinary_decode(masked));
  }
}

TEST(Negabinary, UncertaintyClosedForm) {
  // Paper: 2/3·2^d − 1/3 (odd d), 2/3·2^d − 2/3 (even d).
  for (unsigned d = 1; d <= 32; ++d) {
    std::int64_t expected =
        (d & 1) ? (2 * (std::int64_t{1} << d) - 1) / 3
                : (2 * (std::int64_t{1} << d) - 2) / 3;
    EXPECT_EQ(negabinary_uncertainty(d), expected) << "d=" << d;
  }
  EXPECT_EQ(negabinary_uncertainty(0), 0);
}

TEST(Negabinary, UncertaintyBoundsLowBitsValue) {
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.next_u64());
    unsigned d = static_cast<unsigned>(rng.uniform_u64(33));
    std::int64_t v = negabinary_low_bits_value(u, d);
    EXPECT_LE(std::abs(v), negabinary_uncertainty(d));
  }
}

TEST(Negabinary, LowBitsValueAllPlanes) {
  // d >= 32 keeps every plane, so the "low bits" are the whole value.
  const std::uint32_t cases[] = {0u, 1u, 3u, kNegabinaryMask, 0x55555555u,
                                 0xFFFFFFFFu, 0xDEADBEEFu};
  for (std::uint32_t u : cases) {
    EXPECT_EQ(negabinary_low_bits_value(u, 32), negabinary_decode(u));
    EXPECT_EQ(negabinary_low_bits_value(u, 33), negabinary_decode(u));
    EXPECT_EQ(negabinary_low_bits_value(u, 100), negabinary_decode(u));
  }
}

TEST(Negabinary, LowBitsValueAtRangeLimits) {
  const std::uint32_t umax = negabinary_encode(kNegabinaryMax);
  const std::uint32_t umin = negabinary_encode(kNegabinaryMin);
  EXPECT_EQ(negabinary_low_bits_value(umax, 32), kNegabinaryMax);
  EXPECT_EQ(negabinary_low_bits_value(umin, 32), kNegabinaryMin);
  // Dropping all planes contributes nothing; keeping one keeps only b0.
  EXPECT_EQ(negabinary_low_bits_value(umax, 0), 0);
  EXPECT_EQ(negabinary_low_bits_value(umax, 1), 1);  // 0x55555555 has b0 = 1
  EXPECT_EQ(negabinary_low_bits_value(umin, 1), 0);  // 0xAAAAAAAA has b0 = 0
}

TEST(Negabinary, UncertaintyMatchesExhaustiveLowPlaneSearch) {
  // For small d, check the closed form against brute force over all patterns.
  for (unsigned d = 1; d <= 12; ++d) {
    std::int64_t worst = 0;
    for (std::uint32_t u = 0; u < (std::uint32_t{1} << d); ++u) {
      worst = std::max(worst, std::abs(negabinary_low_bits_value(u, d)));
    }
    EXPECT_EQ(negabinary_uncertainty(d), worst) << "d=" << d;
  }
}

TEST(Negabinary, UncertaintyClosedFormEqualsAccumulationLoop) {
  // The closed form replaced an O(d) accumulation (max positive sum = even
  // positions set, max |negative| = odd positions); keep the loop here as the
  // reference and check every depth the 32-bit coder can ask for.
  for (unsigned d = 0; d <= 32; ++d) {
    std::int64_t pos = 0, neg = 0, w = 1;
    for (unsigned k = 0; k < d; ++k) {
      ((k & 1u) == 0 ? pos : neg) += w;
      w <<= 1;
    }
    EXPECT_EQ(negabinary_uncertainty(d), std::max(pos, neg)) << "d=" << d;
  }
}

TEST(Negabinary, UncertaintySmallerThanSignMagnitude) {
  // Paper §4.4.2: negabinary truncation uncertainty ≈ 2/3 of sign-magnitude's.
  for (unsigned d = 2; d <= 30; ++d) {
    std::int64_t sm = (std::int64_t{1} << d) - 1;
    EXPECT_LT(negabinary_uncertainty(d), sm);
  }
}

}  // namespace
}  // namespace ipcomp
