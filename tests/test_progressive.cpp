#include <gtest/gtest.h>

#include "ipcomp.hpp"
#include "test_util.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

Bytes make_archive(const NdArray<double>& field, double eb_abs,
                   InterpKind kind = InterpKind::kCubic,
                   std::size_t prog_threshold = 256) {
  Options opt;
  opt.error_bound = eb_abs;
  opt.relative = false;
  opt.interp = kind;
  opt.progressive_threshold = prog_threshold;
  return compress(field.const_view(), opt);
}

// ----------------------------------------------------------------- EB mode

class ProgressiveErrorBound
    : public ::testing::TestWithParam<std::tuple<InterpKind, ErrorModel>> {};

TEST_P(ProgressiveErrorBound, GuaranteeHoldsAcrossTargets) {
  auto [kind, model] = GetParam();
  auto field = smooth_field(Dims{40, 40, 24}, 21, /*noise=*/0.1);
  const double eb = 1e-7;
  Bytes archive = make_archive(field, eb, kind);
  for (double target : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    MemorySource src{Bytes(archive)};
    ReaderConfig cfg;
    cfg.error_model = model;
    ProgressiveReader<double> reader(src, cfg);
    auto st = reader.retrieve(Request::error_bound(target));
    double actual = linf(field.const_view(), reader.data());
    EXPECT_LE(st.guaranteed_error, target * (1 + 1e-9)) << "target " << target;
    if (model == ErrorModel::kConservative) {
      // The conservative amplification model is a proven bound: the actual
      // error always stays within both the target and the reported guarantee.
      EXPECT_LE(actual, target * (1 + 1e-9)) << "target " << target;
      EXPECT_LE(actual, st.guaranteed_error * (1 + 1e-9)) << "target " << target;
    } else {
      // The paper's Theorem-1 model ignores within-level (per-dimension)
      // chaining and is empirically violated on multi-dimensional sweeps
      // (see DESIGN.md §2).  The conservative model still bounds the result:
      // actual <= eb + ratio * (target - eb), where ratio is the worst-case
      // amplification gap between the two models across the levels.
      const unsigned rank = static_cast<unsigned>(field.dims().rank());
      const unsigned L = static_cast<unsigned>(reader.header().levels.size());
      double ratio = 1.0;
      for (unsigned l = 1; l <= L; ++l) {
        ratio = std::max(
            ratio, level_amplification(ErrorModel::kConservative, kind, rank, l) /
                       level_amplification(ErrorModel::kPaper, kind, rank, l));
      }
      EXPECT_LE(actual, (eb + ratio * (target - eb)) * (1 + 1e-9))
          << "target " << target;
    }
  }
}

TEST_P(ProgressiveErrorBound, LooserTargetsLoadLess) {
  auto [kind, model] = GetParam();
  auto field = smooth_field(Dims{32, 32, 32}, 22, 0.05);
  Bytes archive = make_archive(field, 1e-8, kind);
  std::size_t prev_bytes = std::numeric_limits<std::size_t>::max();
  for (double target : {1e-7, 1e-5, 1e-3, 1e-1}) {
    MemorySource src{Bytes(archive)};
    ReaderConfig cfg;
    cfg.error_model = model;
    ProgressiveReader<double> reader(src, cfg);
    auto st = reader.retrieve(Request::error_bound(target));
    EXPECT_LE(st.bytes_total, prev_bytes);
    prev_bytes = st.bytes_total;
  }
  // The loosest target should load dramatically less than everything.
  MemorySource full_src{Bytes(archive)};
  ProgressiveReader<double> full_reader(full_src);
  auto full = full_reader.retrieve(Request::full());
  EXPECT_LT(prev_bytes, full.bytes_total / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ProgressiveErrorBound,
    ::testing::Combine(::testing::Values(InterpKind::kLinear, InterpKind::kCubic),
                       ::testing::Values(ErrorModel::kPaper,
                                         ErrorModel::kConservative)),
    [](const auto& info) {
      std::string s =
          std::get<0>(info.param) == InterpKind::kCubic ? "cubic" : "linear";
      s += std::get<1>(info.param) == ErrorModel::kPaper ? "_paper" : "_conservative";
      return s;
    });

// --------------------------------------------------------------- increments

TEST(ProgressiveIncrement, RefinementMatchesFromScratch) {
  auto field = smooth_field(Dims{36, 28, 20}, 23, 0.1);
  Bytes archive = make_archive(field, 1e-7);
  const double targets[] = {1e-1, 1e-3, 1e-5, 1e-6};

  // Incremental reader refines through all targets.
  MemorySource inc_src{Bytes(archive)};
  ProgressiveReader<double> inc(inc_src);
  for (double t : targets) {
    inc.retrieve(Request::error_bound(t));
    // From-scratch reader goes straight to this target.
    MemorySource one_src{Bytes(archive)};
    ProgressiveReader<double> one(one_src);
    one.retrieve(Request::error_bound(t));
    // The incremental reader may hold MORE planes (monotone refinement), so
    // compare against its own guarantee rather than bit-equality with the
    // from-scratch reader; also verify both readers obey the target.
    EXPECT_LE(linf(field.const_view(), inc.data()),
              inc.current_guaranteed_error() * (1 + 1e-9));
    EXPECT_LE(linf(field.const_view(), one.data()), t * (1 + 1e-9));
    EXPECT_LE(linf(field.const_view(), inc.data()), t * (1 + 1e-9));
  }
}

TEST(ProgressiveIncrement, DeltaReconstructionIsNearExact) {
  // Loading planes in two steps must produce (numerically) the same output
  // as loading them in one step.
  auto field = smooth_field(Dims{32, 32, 16}, 24, 0.05);
  Bytes archive = make_archive(field, 1e-8);

  MemorySource two_src{Bytes(archive)};
  ProgressiveReader<double> two(two_src);
  two.retrieve(Request::error_bound(1e-3));
  two.retrieve(Request::full());

  MemorySource one_src{Bytes(archive)};
  ProgressiveReader<double> one(one_src);
  one.retrieve(Request::full());

  const double range = testutil::value_range(field.const_view());
  EXPECT_LE(linf(one.data(), two.data()), 1e-12 * range);
}

TEST(ProgressiveIncrement, IncrementalLoadsOnlyNewBytes) {
  auto field = smooth_field(Dims{40, 40, 16}, 25, 0.05);
  Bytes archive = make_archive(field, 1e-8);

  MemorySource inc_src{Bytes(archive)};
  ProgressiveReader<double> inc(inc_src);
  auto s1 = inc.retrieve(Request::error_bound(1e-3));
  auto s2 = inc.retrieve(Request::error_bound(1e-6));
  EXPECT_EQ(s2.bytes_total, s1.bytes_total + s2.bytes_new);

  // One-shot at the finer target.
  MemorySource one_src{Bytes(archive)};
  ProgressiveReader<double> one(one_src);
  auto s3 = one.retrieve(Request::error_bound(1e-6));
  // Incremental path cannot be dramatically worse than one-shot (it may load
  // slightly more because the coarse plan is a subset constraint).
  EXPECT_LE(s3.bytes_total, s2.bytes_total * (1 + 1e-9) + 1);
}

TEST(ProgressiveIncrement, RepeatRequestLoadsNothing) {
  auto field = smooth_field(Dims{32, 32, 8}, 26);
  Bytes archive = make_archive(field, 1e-7);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::error_bound(1e-4));
  auto again = reader.retrieve(Request::error_bound(1e-4));
  EXPECT_EQ(again.bytes_new, 0u);
  auto coarser = reader.retrieve(Request::error_bound(1e-2));
  EXPECT_EQ(coarser.bytes_new, 0u);
}

// ----------------------------------------------------------------- BR mode

TEST(ProgressiveBitrate, BudgetRespectedAndErrorShrinks) {
  auto field = smooth_field(Dims{48, 32, 32}, 27, 0.1);
  Bytes archive = make_archive(field, 1e-8);
  const std::size_t n = field.count();
  double prev_err = std::numeric_limits<double>::infinity();
  for (double bitrate : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    MemorySource src{Bytes(archive)};
    ProgressiveReader<double> reader(src);
    auto st = reader.retrieve(Request::bitrate(bitrate));
    EXPECT_LE(st.bytes_total, static_cast<std::size_t>(bitrate * n / 8) + 1)
        << "bitrate " << bitrate;
    double actual = linf(field.const_view(), reader.data());
    EXPECT_LE(actual, prev_err * (1 + 1e-9)) << "bitrate " << bitrate;
    prev_err = actual;
  }
}

TEST(ProgressiveBitrate, IncrementalBitrateRefinement) {
  auto field = smooth_field(Dims{32, 32, 32}, 28, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  const std::size_t n = field.count();
  double prev_guarantee = std::numeric_limits<double>::infinity();
  for (double bitrate : {1.0, 2.0, 4.0}) {
    auto st = reader.retrieve(Request::bitrate(bitrate));
    EXPECT_LE(st.bytes_total, static_cast<std::size_t>(bitrate * n / 8) + 1);
    // The *guarantee* shrinks monotonically with more planes; the pointwise
    // error may wiggle transiently (a partially-loaded negabinary value can
    // overshoot its final magnitude), so only the bound is asserted.
    EXPECT_LE(st.guaranteed_error, prev_guarantee * (1 + 1e-12));
    EXPECT_LE(linf(field.const_view(), reader.data()),
              st.guaranteed_error * (1 + 1e-9));
    prev_guarantee = st.guaranteed_error;
  }
}

TEST(ProgressiveBitrate, TinyBudgetStillReconstructs) {
  auto field = smooth_field(Dims{32, 32, 32}, 29);
  Bytes archive = make_archive(field, 1e-6);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::bytes(0));
  // Mandatory segments always load; output exists with the guarantee bound.
  EXPECT_EQ(reader.data().size(), field.count());
  EXPECT_GT(st.bytes_total, 0u);
  EXPECT_LE(linf(field.const_view(), reader.data()),
            reader.current_guaranteed_error() * (1 + 1e-9));
}

// ------------------------------------------------------------------- misc

TEST(Progressive, RequestBelowCompressionEbLoadsEverything) {
  auto field = smooth_field(Dims{32, 32}, 30);
  Bytes archive = make_archive(field, 1e-4);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::error_bound(1e-9));  // tighter than eb: best effort
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-4 * (1 + 1e-9));
  MemorySource full_src{Bytes(archive)};
  ProgressiveReader<double> full(full_src);
  auto fst = full.retrieve(Request::full());
  EXPECT_EQ(st.bytes_total, fst.bytes_total);
}

TEST(Progressive, StatsBitrateConsistent) {
  auto field = smooth_field(Dims{64, 64}, 31);
  Bytes archive = make_archive(field, 1e-6);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  auto st = reader.retrieve(Request::full());
  EXPECT_NEAR(st.bitrate, 8.0 * st.bytes_total / field.count(), 1e-12);
  EXPECT_EQ(st.bytes_total, reader.bytes_loaded());
}

TEST(Progressive, GuaranteedErrorDecreasesMonotonically) {
  auto field = smooth_field(Dims{40, 40, 20}, 32, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src);
  double prev = std::numeric_limits<double>::infinity();
  for (double t : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    auto st = reader.retrieve(Request::error_bound(t));
    EXPECT_LE(st.guaranteed_error, prev * (1 + 1e-12));
    prev = st.guaranteed_error;
  }
}

TEST(Progressive, FileBackedPartialReads) {
  auto field = smooth_field(Dims{48, 48, 24}, 33, 0.05);
  Bytes archive = make_archive(field, 1e-8);
  std::string path = ::testing::TempDir() + "/ipcomp_progressive.ipc";
  write_file(path, archive);
  FileSource src(path);
  ProgressiveReader<double> reader(src);
  auto coarse = reader.retrieve(Request::error_bound(1e-2));
  EXPECT_LT(coarse.bytes_total, archive.size() / 2);
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-2 * (1 + 1e-9));
  auto fine = reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-8 * (1 + 1e-9));
  EXPECT_LE(fine.bytes_total, archive.size());
  std::remove(path.c_str());
}

TEST(Progressive, FloatArchiveProgressive) {
  auto field = smooth_field<float>(Dims{32, 32, 16}, 34, 0.02f);
  Options opt;
  opt.error_bound = 1e-5;
  opt.relative = false;
  opt.progressive_threshold = 256;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource src(std::move(archive));
  ProgressiveReader<float> reader(src);
  auto st = reader.retrieve(Request::error_bound(1e-2));
  EXPECT_LE(linf(field.const_view(), reader.data()),
            static_cast<double>(st.guaranteed_error) * (1 + 1e-5));
  reader.retrieve(Request::full());
  // Incremental refinement of float32 archives rounds once per refinement
  // when the delta field is added, so allow a few ulps beyond eb.
  const double ulp_slack =
      8.0 * testutil::value_range(field.const_view()) *
      std::numeric_limits<float>::epsilon();
  EXPECT_LE(linf(field.const_view(), reader.data()), 1e-5 + ulp_slack);
}

}  // namespace
}  // namespace ipcomp
