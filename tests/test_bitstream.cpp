#include <gtest/gtest.h>

#include "io/bitstream.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

TEST(BitStream, SingleBitsLsbFirst) {
  BitWriter w;
  // first bit written -> bit 0 of byte 0
  w.put_bit(1);
  w.put_bit(0);
  w.put_bit(1);
  Bytes b = w.finish();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 0b101);
}

TEST(BitStream, MultiBitFields) {
  BitWriter w;
  w.put_bits(0x5, 3);
  w.put_bits(0x3F, 6);
  w.put_bits(0x12345, 20);
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  EXPECT_EQ(r.get_bits(3), 0x5u);
  EXPECT_EQ(r.get_bits(6), 0x3Fu);
  EXPECT_EQ(r.get_bits(20), 0x12345u);
}

TEST(BitStream, SixtyFourBitFields) {
  BitWriter w;
  w.put_bits(0xDEADBEEFCAFEBABEull, 64);
  w.put_bits(1, 1);
  w.put_bits(0xFFFFFFFFFFFFFFFFull, 64);
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  EXPECT_EQ(r.get_bits(64), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.get_bits(1), 1u);
  EXPECT_EQ(r.get_bits(64), 0xFFFFFFFFFFFFFFFFull);
}

TEST(BitStream, RandomRoundTrip) {
  Rng rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    unsigned n = 1 + static_cast<unsigned>(rng.uniform_u64(64));
    std::uint64_t v = rng.next_u64();
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    fields.emplace_back(v, n);
    w.put_bits(v, n);
  }
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  for (auto [v, n] : fields) {
    EXPECT_EQ(r.get_bits(n), v);
  }
}

TEST(BitStream, UnaryRoundTrip) {
  BitWriter w;
  std::uint64_t vals[] = {0, 1, 2, 7, 31, 32, 33, 100};
  for (auto v : vals) w.put_unary(v);
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  for (auto v : vals) EXPECT_EQ(r.get_unary(), v);
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter w;
  w.put_bits(0b1101'0110'1010, 12);
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  EXPECT_EQ(r.peek_bits(4), 0b1010u);
  EXPECT_EQ(r.peek_bits(4), 0b1010u);
  r.skip_bits(4);
  EXPECT_EQ(r.peek_bits(8), 0b1101'0110u);
  EXPECT_EQ(r.get_bits(8), 0b1101'0110u);
}

TEST(BitStream, PeekPastEndReadsZero) {
  BitWriter w;
  w.put_bits(0b1, 1);
  Bytes b = w.finish();
  BitReader r({b.data(), b.size()});
  // One byte exists; peeking further than the stream pads with zeros.
  EXPECT_EQ(r.peek_bits(12), 0b1u);
}

TEST(BitStream, RunawayReadThrows) {
  Bytes b = {0xFF};
  BitReader r({b.data(), b.size()});
  r.get_bits(8);
  // A little zero padding is allowed, then it must throw.
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) r.get_bits(8);
      },
      std::runtime_error);
}

TEST(BitStream, BitCountTracksProgress) {
  BitWriter w;
  w.put_bits(0, 13);
  EXPECT_EQ(w.bit_count(), 13u);
  w.put_bits(0, 64);
  EXPECT_EQ(w.bit_count(), 77u);
}

}  // namespace
}  // namespace ipcomp
