#include <gtest/gtest.h>

#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

TEST(Quantizer, ErrorWithinBound) {
  Rng rng(1);
  const double eb = 1e-3;
  LinearQuantizer q(eb);
  for (int i = 0; i < 100000; ++i) {
    double orig = rng.uniform(-100, 100);
    double pred = orig + rng.uniform(-1, 1);
    std::int64_t code;
    double recon;
    ASSERT_TRUE(q.quantize(orig, pred, code, recon));
    EXPECT_LE(std::abs(recon - orig), eb * (1 + 1e-12));
    EXPECT_DOUBLE_EQ(recon, q.dequantize(pred, code));
  }
}

TEST(Quantizer, ZeroDiffGivesZeroCode) {
  LinearQuantizer q(1e-6);
  std::int64_t code;
  double recon;
  ASSERT_TRUE(q.quantize(5.0, 5.0, code, recon));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(recon, 5.0);
}

TEST(Quantizer, LargeDiffIsOutlier) {
  LinearQuantizer q(1e-12);
  std::int64_t code;
  double recon;
  EXPECT_FALSE(q.quantize(1.0, 0.0, code, recon));  // 1/2e-12 >> 2^30
}

TEST(Quantizer, NonFiniteIsOutlier) {
  LinearQuantizer q(1e-3);
  std::int64_t code;
  double recon;
  EXPECT_FALSE(q.quantize(std::numeric_limits<double>::quiet_NaN(), 0.0, code, recon));
  EXPECT_FALSE(q.quantize(std::numeric_limits<double>::infinity(), 0.0, code, recon));
}

TEST(Quantizer, CodesStayWithinCap) {
  Rng rng(2);
  const double eb = 1e-6;
  LinearQuantizer q(eb);
  for (int i = 0; i < 10000; ++i) {
    double diff = rng.uniform(-1000, 1000);
    std::int64_t code;
    double recon;
    if (q.quantize(diff, 0.0, code, recon)) {
      EXPECT_LT(std::abs(code), LinearQuantizer::kCodeCap);
    }
  }
}

TEST(Quantizer, FloatReconstructionRespectsBound) {
  Rng rng(3);
  const double eb = 1e-4;
  LinearQuantizer q(eb);
  for (int i = 0; i < 50000; ++i) {
    float orig = static_cast<float>(rng.uniform(-10, 10));
    float pred = orig + static_cast<float>(rng.uniform(-0.1, 0.1));
    std::int64_t code;
    float recon;
    if (q.quantize(orig, pred, code, recon)) {
      EXPECT_LE(std::abs(static_cast<double>(recon) - static_cast<double>(orig)),
                eb * (1 + 1e-7));
    }
  }
}

TEST(Quantizer, StepIsTwiceEb) {
  LinearQuantizer q(0.25);
  EXPECT_EQ(q.step(), 0.5);
  EXPECT_EQ(q.error_bound(), 0.25);
}

TEST(Quantizer, RoundsToNearestBin) {
  LinearQuantizer q(1.0);  // bins of width 2 centered on even integers
  std::int64_t code;
  double recon;
  ASSERT_TRUE(q.quantize(2.9, 0.0, code, recon));
  EXPECT_EQ(code, 1);  // 2.9/2 = 1.45 -> 1
  ASSERT_TRUE(q.quantize(3.1, 0.0, code, recon));
  EXPECT_EQ(code, 2);  // 3.1/2 = 1.55 -> 2
  ASSERT_TRUE(q.quantize(-2.9, 0.0, code, recon));
  EXPECT_EQ(code, -1);
}

}  // namespace
}  // namespace ipcomp
