// Shared helpers for tests: small synthetic fields with tunable smoothness.
#pragma once

#include <cmath>
#include <vector>

#include "util/dims.hpp"
#include "util/ndarray.hpp"
#include "util/rng.hpp"

namespace ipcomp::testutil {

/// Smooth multi-frequency field (compresses well, like real scientific data).
template <typename T = double>
NdArray<T> smooth_field(const Dims& dims, std::uint64_t seed = 1,
                        double noise = 0.0) {
  NdArray<T> out(dims);
  Rng rng(seed);
  const double f1 = rng.uniform(1.0, 3.0);
  const double f2 = rng.uniform(3.0, 7.0);
  const double phase = rng.uniform(0, 6.28);
  const auto strides = dims.strides();
  for (std::size_t i = 0; i < dims.count(); ++i) {
    double v = 0;
    std::size_t rem = i;
    for (std::size_t d = 0; d < dims.rank(); ++d) {
      double c = static_cast<double>(rem / strides[d]) /
                 static_cast<double>(dims[d]);
      rem %= strides[d];
      v += std::sin(f1 * 6.28318 * c + phase) + 0.4 * std::cos(f2 * 6.28318 * c);
    }
    if (noise > 0) v += noise * rng.normal();
    out[i] = static_cast<T>(v);
  }
  return out;
}

/// Max pointwise |a - b|.
template <typename T>
double linf(const std::vector<T>& a, const std::vector<T>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

template <typename T>
double linf(NdConstView<T> a, const std::vector<T>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.count(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

template <typename T>
double value_range(NdConstView<T> a) {
  double lo = a[0], hi = a[0];
  for (std::size_t i = 0; i < a.count(); ++i) {
    lo = std::min(lo, static_cast<double>(a[i]));
    hi = std::max(hi, static_cast<double>(a[i]));
  }
  return hi - lo;
}

}  // namespace ipcomp::testutil
