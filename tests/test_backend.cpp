// Pluggable progressive backends (archive format v3): registry lookups, the
// backend-parameterized round-trip property suite (both backends × 1/2/3-d
// fields × abs/rel bounds × whole-field/block modes), wavelet thread-count
// determinism and region retrieval, and forged-input hardening of the v3
// header (unknown backend id, truncated/oversized metadata, backend-id vs
// segment mismatch).
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "ipcomp.hpp"
#include "test_util.hpp"

namespace ipcomp {
namespace {

using testutil::linf;
using testutil::smooth_field;

TEST(BackendRegistry, LookupByIdAndName) {
  EXPECT_STREQ(backend_for(BackendId::kInterp).name(), "interp");
  EXPECT_STREQ(backend_for(BackendId::kWavelet).name(), "wavelet");
  ASSERT_NE(backend_by_name("interp"), nullptr);
  ASSERT_NE(backend_by_name("wavelet"), nullptr);
  EXPECT_EQ(backend_by_name("interp")->id(), BackendId::kInterp);
  EXPECT_EQ(backend_by_name("wavelet")->id(), BackendId::kWavelet);
  EXPECT_EQ(backend_by_name("dct"), nullptr);
  EXPECT_TRUE(backend_id_known(0));
  EXPECT_TRUE(backend_id_known(1));
  EXPECT_FALSE(backend_id_known(7));
}

TEST(BackendRegistry, ArchiveFormatFollowsBackend) {
  auto field = smooth_field(Dims{20, 20}, 3);
  Options opt;
  opt.error_bound = 1e-6;
  for (auto backend : {BackendId::kInterp, BackendId::kWavelet}) {
    opt.backend = backend;
    for (std::size_t side : {std::size_t{0}, std::size_t{8}}) {
      opt.block_side = side;
      MemorySource src(compress(field.const_view(), opt));
      const std::uint32_t expected =
          backend == BackendId::kInterp ? (side == 0 ? kArchiveV1 : kArchiveV2)
                                        : kArchiveV3;
      EXPECT_EQ(src.version(), expected);
      ProgressiveReader<double> reader(src);
      EXPECT_EQ(reader.header().backend, backend);
      EXPECT_EQ(&reader.backend(), &backend_for(backend));
    }
  }
}

// ---- backend-parameterized round-trip property suite ---------------------

using RoundTripCase = std::tuple<BackendId, unsigned, bool, std::size_t>;

class BackendRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(BackendRoundTrip, BoundHoldsAtEveryFidelityAndGuaranteeIsMonotone) {
  const auto [backend, rank, relative, block_side] = GetParam();
  const Dims dims = rank == 1   ? Dims{4000}
                    : rank == 2 ? Dims{70, 60}
                                : Dims{40, 34, 22};
  auto field = smooth_field(dims, 17 + rank, 0.04);
  Options opt;
  opt.backend = backend;
  opt.relative = relative;
  opt.error_bound = relative ? 1e-7 : 1e-6;
  opt.block_side = block_side;
  opt.progressive_threshold = 256;
  Bytes archive = compress(field.const_view(), opt);

  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  const double eb = reader.header().eb;
  EXPECT_EQ(reader.header().backend, backend);

  double prev_guarantee = std::numeric_limits<double>::infinity();
  std::size_t prev_bytes = 0;
  for (double factor : {1e4, 1e2, 1e1, 2.0}) {
    auto st = reader.retrieve(Request::error_bound(factor * eb));
    EXPECT_LE(st.guaranteed_error, factor * eb * (1 + 1e-9));
    EXPECT_LE(linf(field.const_view(), reader.data()),
              st.guaranteed_error * (1 + 1e-9))
        << "factor " << factor;
    EXPECT_LE(st.guaranteed_error, prev_guarantee * (1 + 1e-12));
    EXPECT_GE(st.bytes_total, prev_bytes);
    prev_guarantee = st.guaranteed_error;
    prev_bytes = st.bytes_total;
  }
  auto full = reader.retrieve(Request::full());
  EXPECT_LE(full.guaranteed_error, eb * (1 + 1e-12));
  EXPECT_LE(linf(field.const_view(), reader.data()), eb * (1 + 1e-9));
  EXPECT_LE(full.bytes_total, src.total_size());
}

std::string round_trip_case_name(
    const ::testing::TestParamInfo<RoundTripCase>& info) {
  const auto [backend, rank, relative, block_side] = info.param;
  return std::string(to_string(backend)) + "_" + std::to_string(rank) + "d_" +
         (relative ? "rel" : "abs") +
         (block_side == 0 ? "_whole" : "_b" + std::to_string(block_side));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendRoundTrip,
    ::testing::Combine(::testing::Values(BackendId::kInterp,
                                         BackendId::kWavelet),
                       ::testing::Values(1u, 2u, 3u), ::testing::Bool(),
                       ::testing::Values(std::size_t{0}, std::size_t{32})),
    round_trip_case_name);

TEST(WaveletBackend, FloatRoundTripWithinBound) {
  auto field = smooth_field<float>(Dims{60, 44, 20}, 9, 0.05);
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.error_bound = 1e-5;
  opt.block_side = 16;
  opt.progressive_threshold = 256;
  MemorySource src(compress(field.const_view(), opt));
  ProgressiveReader<float> reader(src);
  const double eb = reader.header().eb;
  auto coarse = reader.retrieve(Request::error_bound(100 * eb));
  EXPECT_LE(linf(field.const_view(), reader.data()),
            coarse.guaranteed_error * (1 + 1e-6));
  reader.retrieve(Request::full());
  EXPECT_LE(linf(field.const_view(), reader.data()), eb * (1 + 1e-6));
}

TEST(WaveletBackend, StepwiseEndsIdenticalToOneShot) {
  // Wavelet refinement rebuilds from the updated codes, so a stepwise
  // retrieval must end bitwise identical to a one-shot full request.
  auto field = smooth_field(Dims{36, 30, 14}, 11, 0.03);
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.error_bound = 1e-7;
  opt.progressive_threshold = 128;
  Bytes archive = compress(field.const_view(), opt);
  MemorySource a{Bytes(archive)}, b{Bytes(archive)};
  ProgressiveReader<double> stepwise(a), oneshot(b);
  const double eb = stepwise.header().eb;
  for (double f : {1e5, 1e3, 1e1}) stepwise.retrieve(Request::error_bound(f * eb));
  stepwise.retrieve(Request::full());
  oneshot.retrieve(Request::full());
  EXPECT_EQ(stepwise.data(), oneshot.data());
}

TEST(WaveletBackend, RegionRetrievalReadsOnlyIntersectingBlocks) {
  auto field = smooth_field(Dims{48, 40, 33}, 13, 0.02);
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.error_bound = 1e-6;
  opt.block_side = 16;
  Bytes archive = compress(field.const_view(), opt);
  const std::size_t total = archive.size();
  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  const double eb = reader.header().eb;
  std::array<std::size_t, kMaxRank> lo{4, 4, 4}, hi{20, 18, 12};
  auto st = reader.retrieve(Request::full().within(lo, hi));
  EXPECT_LT(st.bytes_total, total / 2) << "region read should skip blocks";
  EXPECT_DOUBLE_EQ(st.guaranteed_error, eb);
  double worst = 0.0;
  const Dims& dims = reader.header().dims;
  for (std::size_t z = lo[0]; z < hi[0]; ++z) {
    for (std::size_t y = lo[1]; y < hi[1]; ++y) {
      for (std::size_t x = lo[2]; x < hi[2]; ++x) {
        const std::size_t i = (z * dims[1] + y) * dims[2] + x;
        worst = std::max(worst, std::abs(field[i] - reader.data()[i]));
      }
    }
  }
  EXPECT_LE(worst, eb * (1 + 1e-9));
}

TEST(WaveletBackend, NonFiniteValuesSurviveRoundTrip) {
  auto field = smooth_field(Dims{24, 24}, 15);
  field[5] = std::numeric_limits<double>::quiet_NaN();
  field[100] = std::numeric_limits<double>::infinity();
  field[200] = -std::numeric_limits<double>::infinity();
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.error_bound = 1e-6;
  MemorySource src(compress(field.const_view(), opt));
  ProgressiveReader<double> reader(src);
  reader.retrieve(Request::full());
  const double eb = reader.header().eb;
  for (std::size_t i = 0; i < field.count(); ++i) {
    if (std::isnan(field[i])) {
      EXPECT_TRUE(std::isnan(reader.data()[i])) << i;
    } else if (std::isinf(field[i])) {
      EXPECT_EQ(reader.data()[i], field[i]) << i;
    } else {
      EXPECT_LE(std::abs(field[i] - reader.data()[i]), eb * (1 + 1e-9)) << i;
    }
  }
}

TEST(WaveletBackend, ArchiveBytesIdenticalAcrossThreadCounts) {
  auto field = smooth_field(Dims{40, 40, 24}, 21, 0.03);
  for (std::size_t block_side : {std::size_t{0}, std::size_t{16}}) {
    Options opt;
    opt.backend = BackendId::kWavelet;
    opt.error_bound = 1e-5;
    opt.block_side = block_side;
    opt.progressive_threshold = 256;
#if defined(_OPENMP)
    const int saved = omp_get_max_threads();
#endif
    Bytes reference;
    for (int threads : {1, 2, 8}) {
#if defined(_OPENMP)
      omp_set_num_threads(threads);
#else
      (void)threads;
#endif
      Bytes archive = compress(field.const_view(), opt);
      if (reference.empty()) {
        reference = std::move(archive);
      } else {
        EXPECT_EQ(archive, reference)
            << "block_side " << block_side << " threads " << threads;
      }
    }
#if defined(_OPENMP)
    omp_set_num_threads(saved);
#endif
  }
}

// ---- forged-input hardening of the v3 header -----------------------------

Bytes wavelet_archive() {
  auto field = smooth_field(Dims{24, 20}, 31);
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.error_bound = 1e-6;
  opt.block_side = 8;
  opt.progressive_threshold = 64;
  // These forgeries patch the v3 *header*; splice_header rebuilds the
  // container at pre-v4 offsets, so keep the fixture a pre-v4 container.
  opt.integrity = false;
  return compress(field.const_view(), opt);
}

/// Replace the serialized header blob of an archive, re-encoding the length
/// prefix; the segment table and payloads are kept verbatim.
Bytes splice_header(const Bytes& blob, const Bytes& new_header) {
  ArchiveIndex idx = ArchiveIndex::parse({blob.data(), blob.size()}, blob.size());
  Bytes out(blob.begin(), blob.begin() + 8);  // magic + version
  ByteWriter len;
  len.varint(new_header.size());
  Bytes len_bytes = len.take();
  out.insert(out.end(), len_bytes.begin(), len_bytes.end());
  out.insert(out.end(), new_header.begin(), new_header.end());
  out.insert(out.end(),
             blob.begin() + idx.header_offset + idx.header_length, blob.end());
  return out;
}

Bytes header_of(const Bytes& blob) {
  ArchiveIndex idx = ArchiveIndex::parse({blob.data(), blob.size()}, blob.size());
  return Bytes(blob.begin() + idx.header_offset,
               blob.begin() + idx.header_offset + idx.header_length);
}

TEST(BackendForged, UnknownBackendIdRejected) {
  Bytes blob = wavelet_archive();
  Bytes header = header_of(blob);
  ASSERT_EQ(header[0], 3);  // v3 tag
  header[1] = 0x63;         // no such backend
  EXPECT_THROW(Header::parse(header), std::runtime_error);
  MemorySource src(splice_header(blob, header));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BackendForged, TruncatedMetadataBlobRejected) {
  Bytes blob = wavelet_archive();
  Bytes header = header_of(blob);
  // Keep tag, backend id and the metadata length, then cut the stream short:
  // the declared blob length now exceeds the remaining bytes.
  Bytes truncated(header.begin(), header.begin() + 5);
  EXPECT_THROW(Header::parse(truncated), std::runtime_error);
  MemorySource src(splice_header(blob, truncated));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BackendForged, OversizedMetadataBlobRejected) {
  Bytes blob = wavelet_archive();
  Header h = Header::parse(header_of(blob));
  h.backend_meta.assign(64, 0x41);  // wavelet expects exactly 9 bytes
  MemorySource src(splice_header(blob, h.serialize()));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BackendForged, UndersizedMetadataBlobRejected) {
  Bytes blob = wavelet_archive();
  Header h = Header::parse(header_of(blob));
  h.backend_meta.assign(3, 0x01);
  MemorySource src(splice_header(blob, h.serialize()));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BackendForged, BadStepScaleRejected) {
  Bytes blob = wavelet_archive();
  Header h = Header::parse(header_of(blob));
  ByteWriter meta;
  meta.u8(1);
  meta.f64(-2.0);  // step scale must be positive and finite
  h.backend_meta = meta.take();
  MemorySource src(splice_header(blob, h.serialize()));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

TEST(BackendForged, BackendIdSegmentMismatchRejected) {
  // Relabel a wavelet archive's header as interp (still v3): the payload's
  // auxiliary segments are not a kind the interp backend defines, so the
  // reader must refuse rather than misinterpret the codes.
  Bytes blob = wavelet_archive();
  Bytes header = header_of(blob);
  ASSERT_EQ(header[1], static_cast<std::uint8_t>(BackendId::kWavelet));
  // Patch the raw backend id byte: the result still parses (the interp
  // backend ignores metadata blobs), so only the payload can give it away.
  header[1] = static_cast<std::uint8_t>(BackendId::kInterp);
  MemorySource src(splice_header(blob, header));
  EXPECT_THROW(
      {
        try {
          ProgressiveReader<double> reader(src);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("segment kind"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(BackendRegistry, NonFiniteErrorBoundRejected) {
  auto field = smooth_field(Dims{8, 8}, 5);
  for (auto backend : {BackendId::kInterp, BackendId::kWavelet}) {
    Options opt;
    opt.backend = backend;
    opt.error_bound = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(compress(field.const_view(), opt), std::invalid_argument);
    opt.error_bound = std::numeric_limits<double>::infinity();
    EXPECT_THROW(compress(field.const_view(), opt), std::invalid_argument);
  }
}

TEST(BackendForged, BlockGridProductOverflowRejected) {
  // Rank-4 dims of 2^31 with block side 2 give 2^30 blocks per dimension;
  // the unchecked product would wrap modulo 2^64 to 0 and a forged block
  // count of 0 would match the "geometry" — the grid must refuse instead.
  ByteWriter w;
  w.u8(3);  // v3 tag
  w.u8(static_cast<std::uint8_t>(BackendId::kWavelet));
  w.varint(0);  // empty metadata blob
  w.u8(static_cast<std::uint8_t>(DataType::kFloat64));
  w.u8(4);  // rank
  for (int i = 0; i < 4; ++i) w.varint(std::size_t{1} << 31);
  w.f64(1e-6);
  w.u8(0);  // interp
  w.u8(2);  // prefix bits
  w.f64(0.0);
  w.f64(1.0);
  w.varint(2);  // block_side
  w.varint(0);  // forged block count matching the wrapped product
  Bytes raw = w.take();
  EXPECT_THROW(Header::parse(raw), std::runtime_error);
  EXPECT_THROW(BlockGrid::analyze(Dims{std::size_t{1} << 31, std::size_t{1} << 31,
                                       std::size_t{1} << 31, std::size_t{1} << 31},
                                  2),
               std::runtime_error);
}

TEST(BackendForged, ContainerHeaderVersionMismatchRejected) {
  // A v3 header inside a v2 container (and vice versa) is a forgery even
  // when both parse cleanly in isolation.
  Bytes blob = wavelet_archive();
  blob[4] = 2;  // container version word (little-endian u32 at offset 4)
  MemorySource src(std::move(blob));
  EXPECT_THROW(ProgressiveReader<double> reader(src), std::runtime_error);
}

}  // namespace
}  // namespace ipcomp
