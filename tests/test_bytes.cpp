#include <gtest/gtest.h>

#include <limits>

#include "io/bytes.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5678);
  w.f32(3.25f);
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1234.5678);
  EXPECT_EQ(r.f32(), 3.25f);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304u);
  Bytes b = w.take();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Bytes, VarintBoundaries) {
  ByteWriter w;
  std::uint64_t cases[] = {0,   1,    127,  128,   16383, 16384,
                           1u << 21, std::numeric_limits<std::uint64_t>::max()};
  for (auto v : cases) w.varint(v);
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  for (auto v : cases) EXPECT_EQ(r.varint(), v);
}

TEST(Bytes, SignedVarintZigzag) {
  ByteWriter w;
  std::int64_t cases[] = {0, -1, 1, -64, 63, 1'000'000, -1'000'000,
                          std::numeric_limits<std::int64_t>::min(),
                          std::numeric_limits<std::int64_t>::max()};
  for (auto v : cases) w.svarint(v);
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  for (auto v : cases) EXPECT_EQ(r.svarint(), v);
}

TEST(Bytes, VarintRandomRoundTrip) {
  Rng rng(7);
  ByteWriter w;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 2000; ++i) {
    // Exercise all byte-length classes.
    std::uint64_t v = rng.next_u64() >> (rng.next_u64() % 64);
    vals.push_back(v);
    w.varint(v);
  }
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  for (auto v : vals) EXPECT_EQ(r.varint(), v);
}

TEST(Bytes, ForgedHugeLengthStringThrows) {
  // A crafted archive can store a length varint near SIZE_MAX; the reader
  // must reject it instead of wrapping pos_ + n and reading out of bounds.
  ByteWriter w;
  w.u8(0x42);  // advance pos_ past zero so the old pos_ + n check could wrap
  w.varint(std::numeric_limits<std::uint64_t>::max());
  w.u8('x');
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_THROW(r.string(), std::runtime_error);
}

TEST(Bytes, ForgedHugeLengthBytesThrows) {
  Bytes b = {1, 2, 3, 4};
  ByteReader r({b.data(), b.size()});
  r.u16();  // pos_ = 2, so pos_ + SIZE_MAX wraps to 1 and passes the old check
  EXPECT_THROW(r.bytes(std::numeric_limits<std::size_t>::max()),
               std::runtime_error);
  EXPECT_THROW(r.bytes(std::numeric_limits<std::size_t>::max() - 1),
               std::runtime_error);
  // The reader must still be usable after a rejected read.
  EXPECT_EQ(r.bytes(2).size(), 2u);
}

TEST(Bytes, OverlongVarintFinalByteThrows) {
  // Ten-byte varint whose final byte carries payload bits that do not fit in
  // 64 bits.  The old reader computed (b & 0x7F) << 63 and silently dropped
  // bits 1..6, decoding a wrong value instead of rejecting the stream.
  auto decode = [](std::uint8_t last) {
    Bytes b(9, 0x80);  // nine continuation bytes, payload 0
    b.push_back(last);
    ByteReader r({b.data(), b.size()});
    return r.varint();
  };
  EXPECT_EQ(decode(0x01), std::uint64_t{1} << 63);  // bit 0 still fits
  EXPECT_THROW(decode(0x02), std::runtime_error);
  EXPECT_THROW(decode(0x7F), std::runtime_error);
  EXPECT_THROW(decode(0x7E), std::runtime_error);
}

TEST(Bytes, VarintEleventhByteThrows) {
  Bytes b(10, 0x80);
  b.push_back(0x00);
  ByteReader r({b.data(), b.size()});
  EXPECT_THROW(r.varint(), std::runtime_error);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.string("hello");
  w.string("");
  Bytes b = w.take();
  ByteReader r({b.data(), b.size()});
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.string(), "");
}

TEST(Bytes, ReaderOutOfDataThrows) {
  Bytes b = {1, 2};
  ByteReader r({b.data(), b.size()});
  r.u16();
  EXPECT_THROW(r.u8(), std::runtime_error);
}

TEST(Bytes, ReaderBytesSpan) {
  Bytes b = {1, 2, 3, 4, 5};
  ByteReader r({b.data(), b.size()});
  auto s = r.bytes(3);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(r.remaining(), 2u);
}

}  // namespace
}  // namespace ipcomp
