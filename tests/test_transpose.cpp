// Property tests for the word-parallel bitplane transpose engine: every
// kernel tier (scalar / SSE2 / AVX2, as far as the host CPU supports) must be
// bit-identical to the pre-refactor reference loops on adversarial inputs —
// non-multiple-of-64 tails, all-zero and all-ones planes, single-value
// fields, sparse and dense randomness.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "bitplane/transpose.hpp"
#include "util/rng.hpp"

namespace ipcomp {
namespace {

// ---- pre-refactor reference implementations (PR 4 scalar loops) ----------

PlaneBits extract_plane_ref(std::span<const std::uint32_t> values, unsigned k) {
  PlaneBits out(plane_bytes(values.size()), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i >> 3] |= static_cast<std::uint8_t>(((values[i] >> k) & 1u) << (i & 7));
  }
  return out;
}

void deposit_plane_ref(std::span<std::uint32_t> values,
                       std::span<const std::uint8_t> plane, unsigned k) {
  for (std::size_t byte = 0; byte < plane.size(); ++byte) {
    std::uint8_t bits = plane[byte];
    const std::size_t base = byte * 8;
    for (unsigned j = 0; j < 8 && base + j < values.size(); ++j) {
      if ((bits >> j) & 1u) values[base + j] |= (std::uint32_t{1} << k);
    }
  }
}

unsigned plane_count_ref(std::span<const std::uint32_t> values) {
  std::uint32_t all = 0;
  for (std::uint32_t v : values) all |= v;
  unsigned n = 0;
  while (all) {
    ++n;
    all >>= 1;
  }
  return n;
}

// ---- input generators ----------------------------------------------------

std::vector<std::uint32_t> random_values(std::size_t n, std::uint64_t seed,
                                         unsigned max_bits = 32) {
  Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.next_u64());
    if (max_bits < 32) x &= (std::uint32_t{1} << max_bits) - 1;
  }
  return v;
}

/// The interesting sizes: empty, sub-tile, exact tiles, ragged tails.
const std::size_t kSizes[] = {0, 1, 7, 63, 64, 65, 100, 777, 4096, 4113};

std::vector<std::vector<std::uint32_t>> corpus(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<std::vector<std::uint32_t>> inputs;
  inputs.push_back(random_values(n, seed));                 // dense random
  inputs.push_back(random_values(n, seed + 1, 5));          // sparse low bits
  inputs.push_back(std::vector<std::uint32_t>(n, 0));       // all-zero planes
  inputs.push_back(std::vector<std::uint32_t>(n, ~0u));     // all-ones planes
  inputs.push_back(std::vector<std::uint32_t>(n, 0xB4D1u)); // single value
  std::vector<std::uint32_t> nb(n);                         // small negabinary
  Rng rng(seed + 2);
  for (auto& x : nb) {
    x = negabinary_encode(static_cast<std::int64_t>(rng.uniform_u64(201)) - 100);
  }
  inputs.push_back(std::move(nb));
  return inputs;
}

const SimdLevel kTiers[] = {SimdLevel::kScalar, SimdLevel::kSse2,
                            SimdLevel::kAvx2};

class TransposeTiers : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    if (GetParam() > detected_simd_level()) {
      GTEST_SKIP() << "CPU does not support " << to_string(GetParam());
    }
  }
  const TransposeOps& ops() const { return transpose_ops(GetParam()); }
};

TEST_P(TransposeTiers, ExtractPlaneMatchesReference) {
  for (std::size_t n : kSizes) {
    for (const auto& values : corpus(n, 11)) {
      for (unsigned k : {0u, 1u, 7u, 15u, 16u, 30u, 31u}) {
        EXPECT_EQ(extract_plane(ops(), values, k), extract_plane_ref(values, k))
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_P(TransposeTiers, ExtractAllPlanesMatchesReference) {
  for (std::size_t n : kSizes) {
    for (const auto& values : corpus(n, 22)) {
      auto all = extract_all_planes(ops(), values);
      for (unsigned k = 0; k < kPlaneCount; ++k) {
        EXPECT_EQ(all[k], extract_plane_ref(values, k)) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_P(TransposeTiers, DepositPlaneMatchesReference) {
  for (std::size_t n : kSizes) {
    for (const auto& values : corpus(n, 33)) {
      for (unsigned k : {0u, 5u, 16u, 31u}) {
        const auto plane = extract_plane_ref(values, k);
        // Start from a partially filled array (other planes already set).
        std::vector<std::uint32_t> base(n);
        for (std::size_t i = 0; i < n; ++i) {
          base[i] = values[i] & ~(std::uint32_t{1} << k);
        }
        std::vector<std::uint32_t> got = base, want = base;
        deposit_plane(ops(), got, plane, k);
        deposit_plane_ref(want, plane, k);
        EXPECT_EQ(got, want) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_P(TransposeTiers, DepositPlanesMatchesSequentialReference) {
  Rng rng(44);
  for (std::size_t n : kSizes) {
    for (const auto& values : corpus(n, 55)) {
      // A random descending subset of planes, deposited in one batch.
      std::vector<unsigned> ks;
      for (unsigned k = kPlaneCount; k-- > 0;) {
        if (rng.uniform() < 0.4) ks.push_back(k);
      }
      if (ks.empty()) ks.push_back(3);
      std::vector<PlaneBits> bits;
      std::vector<PlaneSpan> spans;
      bits.reserve(ks.size());
      for (unsigned k : ks) bits.push_back(extract_plane_ref(values, k));
      for (std::size_t i = 0; i < ks.size(); ++i) {
        spans.push_back({ks[i], {bits[i].data(), bits[i].size()}});
      }
      std::vector<std::uint32_t> got(n, 0), want(n, 0);
      deposit_planes(ops(), got, spans);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        deposit_plane_ref(want, bits[i], ks[i]);
      }
      EXPECT_EQ(got, want) << "n=" << n;
    }
  }
}

TEST_P(TransposeTiers, EncodeLevelMatchesSeparateSweeps) {
  for (std::size_t n : kSizes) {
    for (const auto& values : corpus(n, 66)) {
      const LevelEncoding enc = encode_level(ops(), values, /*with_loss=*/true);
      EXPECT_EQ(enc.n_planes, plane_count_ref(values)) << "n=" << n;
      const auto want_loss = truncation_loss_table(values);
      for (unsigned d = 0; d <= kPlaneCount; ++d) {
        EXPECT_EQ(enc.loss[d], want_loss[d]) << "n=" << n << " d=" << d;
      }
      ASSERT_EQ(enc.planes.size(), enc.n_planes);
      for (unsigned k = 0; k < enc.n_planes; ++k) {
        EXPECT_EQ(enc.planes[k], extract_plane_ref(values, k))
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_P(TransposeTiers, LossTableMatchesBruteForce) {
  const auto values = random_values(3000, 77, 20);
  const LevelEncoding enc = encode_level(ops(), values, /*with_loss=*/true);
  for (unsigned d = 0; d <= kPlaneCount; ++d) {
    std::int64_t expected = 0;
    for (auto v : values) {
      expected = std::max(expected, std::abs(negabinary_low_bits_value(v, d)));
    }
    EXPECT_EQ(enc.loss[d], expected) << "d=" << d;
  }
}

/// Batch predictive decode == the pre-refactor per-plane flow (decode one
/// plane against the codes, deposit, decode the next).
TEST_P(TransposeTiers, PredictiveBatchDecodeMatchesPerPlaneFlow) {
  for (std::size_t n : {63u, 64u, 777u, 4113u}) {
    const auto values = random_values(n, 88, 22);
    const unsigned n_planes = plane_count_ref(values);
    if (n_planes < 4) continue;
    for (unsigned prefix : {1u, 2u, 3u}) {
      // Encode side: residual planes exactly as append_plane_segments makes.
      std::vector<Bytes> encoded(n_planes);
      for (unsigned k = 0; k < n_planes; ++k) {
        encoded[k] = predictive_encode_plane(values, extract_plane_ref(values, k),
                                             k, prefix);
      }
      // Resident prefix: the top plane is already deposited; the next three
      // arrive as one MSB-first batch.
      const unsigned top = n_planes - 1;
      std::vector<std::uint32_t> codes_old(n, 0), codes_new(n, 0);
      {
        Bytes p = predictive_encode_plane(codes_old, encoded[top], top, prefix);
        deposit_plane_ref(codes_old, p, top);
        deposit_plane_ref(codes_new, p, top);
      }
      std::vector<unsigned> batch = {top - 1, top - 2, top - 3};
      // Old flow: decode against codes, deposit, repeat.
      for (unsigned k : batch) {
        Bytes p = predictive_encode_plane(codes_old, encoded[k], k, prefix);
        deposit_plane_ref(codes_old, p, k);
      }
      // New flow: batch decode on packed buffers, one multi-plane deposit.
      std::vector<Bytes> work;
      for (unsigned k : batch) work.push_back(encoded[k]);
      std::vector<MutablePlane> mut;
      std::vector<PlaneSpan> spans;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        mut.push_back({batch[i], {work[i].data(), work[i].size()}});
      }
      predictive_decode_planes(codes_new, mut, prefix);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        spans.push_back({batch[i], {work[i].data(), work[i].size()}});
      }
      deposit_planes(ops(), codes_new, spans);
      EXPECT_EQ(codes_new, codes_old) << "n=" << n << " prefix=" << prefix;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, TransposeTiers, ::testing::ValuesIn(kTiers),
                         [](const auto& info) { return to_string(info.param); });

TEST(Transpose, OutOfRangePlaneRejected) {
  std::vector<std::uint32_t> values(10, 0);
  PlaneBits bits(plane_bytes(values.size()), 0xFF);
  const PlaneSpan bad{32, {bits.data(), bits.size()}};
  EXPECT_THROW(deposit_planes(values, {&bad, 1}), std::invalid_argument);
}

TEST(Transpose, PredictiveBatchRequiresMsbFirst) {
  std::vector<std::uint32_t> values(64, 0);
  Bytes a(8, 0), b(8, 0);
  std::vector<MutablePlane> wrong = {{3, {a.data(), a.size()}},
                                     {5, {b.data(), b.size()}}};
  EXPECT_THROW(predictive_decode_planes(values, wrong, 2), std::invalid_argument);
}

TEST(Transpose, SimdLevelParsing) {
  SimdLevel l{};
  EXPECT_TRUE(parse_simd_level("scalar", l));
  EXPECT_EQ(l, SimdLevel::kScalar);
  EXPECT_TRUE(parse_simd_level("sse2", l));
  EXPECT_EQ(l, SimdLevel::kSse2);
  EXPECT_TRUE(parse_simd_level("avx2", l));
  EXPECT_EQ(l, SimdLevel::kAvx2);
  EXPECT_FALSE(parse_simd_level("avx512", l));
  EXPECT_FALSE(parse_simd_level("", l));
  EXPECT_FALSE(parse_simd_level(nullptr, l));
  // The dispatched level never exceeds the hardware, whatever IPCOMP_SIMD says.
  EXPECT_LE(simd_level(), detected_simd_level());
}

}  // namespace
}  // namespace ipcomp
