// Cross-module integration and robustness tests: end-to-end pipelines on the
// standard datasets, determinism, and malformed-input handling.
#include <gtest/gtest.h>

#include "baselines/ipcomp_adapter.hpp"
#include "data/datasets.hpp"
#include "ipcomp.hpp"
#include "metrics/metrics.hpp"
#include "test_util.hpp"
#include "transform/zfp.hpp"

namespace ipcomp {
namespace {

using testutil::linf;

// ------------------------------------------------------ standard datasets --

class DatasetPipeline : public ::testing::TestWithParam<Field> {};

TEST_P(DatasetPipeline, IpcompFullCycleOnRealisticData) {
  auto spec = dataset_spec(GetParam(), DataScale::kTiny);
  const auto& data = cached_field(GetParam(), DataScale::kTiny);
  const double range = value_range<double>({data.data(), data.count()});

  Options opt;
  opt.error_bound = 1e-7;
  Bytes archive = compress(data.const_view(), opt);
  // Smooth scientific data must actually compress.
  EXPECT_LT(archive.size(), data.count() * sizeof(double)) << spec.name;

  MemorySource src(std::move(archive));
  ProgressiveReader<double> reader(src);
  // Sweep through fidelities; every guarantee must hold on every dataset.
  for (double rel : {1e-2, 1e-4, 1e-6}) {
    auto st = reader.retrieve(Request::error_bound(rel * range));
    EXPECT_LE(linf(data.const_view(), reader.data()), rel * range * (1 + 1e-9))
        << spec.name << " rel " << rel;
    EXPECT_LE(st.guaranteed_error, rel * range * (1 + 1e-9));
  }
  reader.retrieve(Request::full());
  EXPECT_LE(linf(data.const_view(), reader.data()), 1e-7 * range * (1 + 1e-9));
}

TEST_P(DatasetPipeline, AllBaselinesHonorBoundOnRealisticData) {
  const auto& data = cached_field(GetParam(), DataScale::kTiny);
  const double eb = 1e-5 * value_range<double>({data.data(), data.count()});
  for (auto& c : evaluation_lineup()) {
    Bytes archive = c->compress(data.const_view(), eb);
    auto r = c->retrieve_error(archive, eb * 4);
    EXPECT_LE(linf(data.const_view(), r.data), eb * 4 * (1 + 1e-9))
        << c->name() << " on " << field_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(SixDatasets, DatasetPipeline,
                         ::testing::Values(Field::kDensity, Field::kPressure,
                                           Field::kVelocityX, Field::kWave,
                                           Field::kSpeedX, Field::kCH4),
                         [](const auto& info) { return field_name(info.param); });

// ------------------------------------------------------------ determinism --

TEST(Determinism, ArchivesAreByteIdenticalAcrossRuns) {
  const auto& data = cached_field(Field::kDensity, DataScale::kTiny);
  Options opt;
  opt.error_bound = 1e-6;
  Bytes a = compress(data.const_view(), opt);
  Bytes b = compress(data.const_view(), opt);
  EXPECT_EQ(a, b);  // parallel sweep must not leak nondeterminism
}

TEST(Determinism, BaselineArchivesAreByteIdentical) {
  const auto& data = cached_field(Field::kCH4, DataScale::kTiny);
  const double eb = 1e-6;
  for (auto& c : evaluation_lineup()) {
    Bytes a = c->compress(data.const_view(), eb);
    Bytes b = c->compress(data.const_view(), eb);
    EXPECT_EQ(a, b) << c->name();
  }
}

TEST(Determinism, RetrievalIsDeterministic) {
  const auto& data = cached_field(Field::kWave, DataScale::kTiny);
  Options opt;
  opt.error_bound = 1e-8;
  Bytes archive = compress(data.const_view(), opt);
  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    MemorySource src{Bytes(archive)};
    ProgressiveReader<double> reader(src);
    reader.retrieve(Request::error_bound(1e-4));
    if (run == 0) {
      first = reader.data();
    } else {
      EXPECT_EQ(first, reader.data());
    }
  }
}

// -------------------------------------------------------------- robustness --

TEST(Robustness, TruncatedArchiveThrows) {
  auto field = testutil::smooth_field(Dims{24, 24}, 1);
  Bytes archive = compress(field.const_view(), {});
  Bytes cut(archive.begin(), archive.begin() + archive.size() / 2);
  EXPECT_THROW(
      {
        MemorySource src(std::move(cut));
        ProgressiveReader<double> reader(src);
        reader.retrieve(Request::full());
      },
      std::runtime_error);
}

TEST(Robustness, GarbageBytesRejected) {
  Bytes garbage(1000, 0x5A);
  EXPECT_THROW(MemorySource src(std::move(garbage)), std::runtime_error);
}

TEST(Robustness, EmptyArchiveRejected) {
  Bytes empty;
  EXPECT_THROW(MemorySource src(std::move(empty)), std::runtime_error);
}

TEST(Robustness, ZfpRejectsRank4) {
  NdArray<double> field(Dims{4, 4, 4, 4});
  ZfpCompressor zfp;
  EXPECT_THROW(zfp.compress(field.const_view(), 1e-3), std::invalid_argument);
}

TEST(Robustness, ReaderRejectsWrongHeaderCounts) {
  auto field = testutil::smooth_field(Dims{16, 16}, 2);
  Bytes archive = compress(field.const_view(), {});
  // Parse, corrupt the header's dims, rebuild: the reader must notice the
  // level-structure mismatch rather than crash.
  MemorySource good{Bytes(archive)};
  Header h = Header::parse(good.header());
  h.dims = Dims{16, 17};
  ArchiveBuilder b;
  b.set_header(h.serialize());
  MemorySource bad(b.finish());
  EXPECT_THROW(ProgressiveReader<double> reader(bad), std::runtime_error);
}

// ----------------------------------------------------------- odd geometry --

class OddShapes : public ::testing::TestWithParam<Dims> {};

TEST_P(OddShapes, WholeLineupSurvivesAwkwardDims) {
  // Prime extents, extreme aspect ratios, sub-block sizes.
  auto field = testutil::smooth_field(GetParam(), 99, 0.05);
  const double range = testutil::value_range(field.const_view());
  const double eb = 1e-4 * (range > 0 ? range : 1.0);
  for (auto& c : evaluation_lineup()) {
    if (c->name() == "ZFP-R" && GetParam().rank() > 3) continue;
    Bytes archive = c->compress(field.const_view(), eb);
    auto recon = c->decompress(archive);
    const double tol =
        c->name() == "PMGARD" ? std::max(range, 1.0) * 1e-7 : eb * (1 + 1e-9);
    EXPECT_LE(linf(field.const_view(), recon), tol)
        << c->name() << " on " << GetParam().to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OddShapes,
                         ::testing::Values(Dims{2}, Dims{3}, Dims{997},
                                           Dims{1, 300}, Dims{300, 1},
                                           Dims{7, 11, 13}, Dims{64, 2, 2},
                                           Dims{2, 2, 64}, Dims{5, 5, 5, 5}),
                         [](const auto& info) {
                           std::string s = info.param.to_string();
                           for (auto& c : s) {
                             if (c == 'x') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace ipcomp
