#include <gtest/gtest.h>

#include <cstdio>

#include "data/datasets.hpp"
#include "data/noise.hpp"
#include "io/archive.hpp"
#include "metrics/metrics.hpp"

namespace ipcomp {
namespace {

TEST(Noise, DeterministicAndBounded) {
  for (int i = 0; i < 1000; ++i) {
    double x = i * 0.173, y = i * 0.311, z = i * 0.457;
    double a = value_noise3(x, y, z, 42);
    double b = value_noise3(x, y, z, 42);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, -1.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Noise, DifferentSeedsDiffer) {
  int diff = 0;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.7;
    if (value_noise3(x, 0.3, 0.9, 1) != value_noise3(x, 0.3, 0.9, 2)) ++diff;
  }
  EXPECT_GT(diff, 90);
}

TEST(Noise, SmoothAcrossCellBoundaries) {
  // C1 continuity: small steps give small changes, even across lattice lines.
  for (double x = 0.9; x < 1.1; x += 0.001) {
    double a = value_noise3(x, 0.5, 0.5, 7);
    double b = value_noise3(x + 0.001, 0.5, 0.5, 7);
    EXPECT_LT(std::abs(a - b), 0.05);
  }
}

TEST(Noise, FbmIsNormalized) {
  double mx = 0;
  for (int i = 0; i < 2000; ++i) {
    double v = fbm3(i * 0.37, i * 0.73, i * 0.11, 5, 6);
    mx = std::max(mx, std::abs(v));
  }
  EXPECT_LE(mx, 1.0);
  EXPECT_GT(mx, 0.2);  // and not degenerate
}

TEST(Datasets, StandardListMatchesTable3) {
  auto specs = standard_datasets(DataScale::kPaper);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "Density");
  EXPECT_EQ(specs[0].dims, Dims({256, 384, 384}));
  EXPECT_EQ(specs[3].name, "Wave");
  EXPECT_EQ(specs[3].dims, Dims({1008, 1008, 352}));
  EXPECT_EQ(specs[4].name, "SpeedX");
  EXPECT_EQ(specs[4].dims, Dims({100, 500, 500}));
  EXPECT_EQ(specs[5].name, "CH4");
  EXPECT_EQ(specs[5].dims, Dims({500, 500, 500}));
}

TEST(Datasets, SmallScalePreservesAspect) {
  for (auto& spec : standard_datasets(DataScale::kSmall)) {
    EXPECT_EQ(spec.dims.rank(), 3u);
    EXPECT_GT(spec.dims.count(), 100000u) << spec.name;
    EXPECT_LT(spec.dims.count(), 2000000u) << spec.name;
  }
}

TEST(Datasets, GenerationIsDeterministic) {
  Dims dims{16, 16, 16};
  auto a = generate_field(Field::kDensity, dims);
  auto b = generate_field(Field::kDensity, dims);
  for (std::size_t i = 0; i < a.count(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Datasets, FieldsHaveDomainAppropriateStatistics) {
  Dims dims{24, 32, 32};
  // Density: positive, order ~1.
  auto density = generate_field(Field::kDensity, dims);
  for (std::size_t i = 0; i < density.count(); ++i) EXPECT_GT(density[i], 0.0);
  // CH4 mass fraction: in [0, ~0.1], mostly near zero.
  auto ch4 = generate_field(Field::kCH4, dims);
  std::size_t near_zero = 0;
  for (std::size_t i = 0; i < ch4.count(); ++i) {
    EXPECT_GE(ch4[i], 0.0);
    EXPECT_LE(ch4[i], 0.1);
    if (ch4[i] < 0.005) ++near_zero;
  }
  EXPECT_GT(near_zero, ch4.count() / 2);
  // Wave: oscillatory around zero.
  auto wave = generate_field(Field::kWave, dims);
  double mean = 0;
  for (std::size_t i = 0; i < wave.count(); ++i) mean += wave[i];
  mean /= static_cast<double>(wave.count());
  EXPECT_LT(std::abs(mean), 0.2);
  // SpeedX: wind speeds with tens-of-m/s dynamic range.
  auto speed = generate_field(Field::kSpeedX, dims);
  EXPECT_GT(value_range<double>({speed.data(), speed.count()}), 10.0);
}

TEST(Datasets, AllFieldsGenerateAtTinyScale) {
  for (auto f : {Field::kDensity, Field::kPressure, Field::kVelocityX,
                 Field::kVelocityY, Field::kVelocityZ, Field::kWave,
                 Field::kSpeedX, Field::kCH4}) {
    auto spec = dataset_spec(f, DataScale::kTiny);
    auto field = generate_field(f, spec.dims);
    EXPECT_EQ(field.count(), spec.dims.count()) << field_name(f);
    for (std::size_t i = 0; i < field.count(); ++i) {
      ASSERT_TRUE(std::isfinite(field[i])) << field_name(f);
    }
  }
}

TEST(Datasets, CacheReturnsSameObject) {
  const auto& a = cached_field(Field::kCH4, DataScale::kTiny);
  const auto& b = cached_field(Field::kCH4, DataScale::kTiny);
  EXPECT_EQ(&a, &b);
}

TEST(Datasets, RawReaderRoundTrip) {
  Dims dims{4, 5, 6};
  auto field = generate_field(Field::kPressure, dims);
  // Write as f32 and f64 raw files, read back.
  std::string p32 = ::testing::TempDir() + "/ipcomp_raw32.dat";
  std::string p64 = ::testing::TempDir() + "/ipcomp_raw64.dat";
  Bytes b32, b64;
  for (std::size_t i = 0; i < field.count(); ++i) {
    float f = static_cast<float>(field[i]);
    double d = field[i];
    const auto* pf = reinterpret_cast<const std::uint8_t*>(&f);
    const auto* pd = reinterpret_cast<const std::uint8_t*>(&d);
    b32.insert(b32.end(), pf, pf + 4);
    b64.insert(b64.end(), pd, pd + 8);
  }
  write_file(p32, b32);
  write_file(p64, b64);
  auto r32 = sdr_raw_read(p32, dims, /*is_float32=*/true);
  auto r64 = sdr_raw_read(p64, dims, /*is_float32=*/false);
  for (std::size_t i = 0; i < field.count(); ++i) {
    EXPECT_EQ(r64[i], field[i]);
    EXPECT_NEAR(r32[i], field[i], 1e-4);
  }
  EXPECT_THROW(sdr_raw_read(p32, Dims{3, 3}, true), std::runtime_error);
  std::remove(p32.c_str());
  std::remove(p64.c_str());
}

TEST(Metrics, ErrorStatsBasics) {
  std::vector<double> a = {0, 1, 2, 3};
  std::vector<double> b = {0, 1.5, 2, 2.5};
  auto s = compute_error_stats<double>(a, b);
  EXPECT_DOUBLE_EQ(s.max_abs, 0.5);
  EXPECT_DOUBLE_EQ(s.mse, (0.25 + 0.25) / 4);
  EXPECT_DOUBLE_EQ(s.range, 3.0);
  EXPECT_NEAR(s.psnr, 20 * std::log10(3.0 / std::sqrt(s.mse)), 1e-12);
}

TEST(Metrics, IdenticalArraysInfinitePsnr) {
  std::vector<double> a = {1, 2, 3};
  auto s = compute_error_stats<double>(a, a);
  EXPECT_EQ(s.max_abs, 0.0);
  EXPECT_TRUE(std::isinf(s.psnr));
}

TEST(Metrics, RatioAndBitrate) {
  EXPECT_DOUBLE_EQ(compression_ratio(800, 100), 8.0);
  EXPECT_DOUBLE_EQ(bitrate_of<double>(100, 100), 8.0);
}

}  // namespace
}  // namespace ipcomp
