// IPComp — interpolation-based progressive lossy compression.
//
// Umbrella public header.  Typical use:
//
//   #include "ipcomp.hpp"
//
//   ipcomp::NdArray<double> field = ...;       // your data
//   ipcomp::Options opt;
//   opt.error_bound = 1e-6;                    // relative to the value range
//   ipcomp::Bytes archive = ipcomp::compress(field.const_view(), opt);
//
//   ipcomp::MemorySource src(std::move(archive));
//   ipcomp::ProgressiveReader<double> reader(src);
//   auto coarse = reader.retrieve(ipcomp::Request::error_bound(1e-2));
//   auto finer  = reader.retrieve(ipcomp::Request::bitrate(2.0));
//   auto full   = reader.retrieve(ipcomp::Request::full());  // error <= eb
//   const std::vector<double>& values = reader.data();
//
// retrieve(req) is execute(plan(req)); split the two to inspect what a
// request would fetch before moving any bytes, and compose a region with any
// fidelity target:
//
//   auto plan = reader.plan(
//       ipcomp::Request::error_bound(1e-3).within({0,0,0}, {64,64,64}));
//   // plan.segments / plan.bytes_new / plan.guaranteed_error ...
//   auto stats = reader.execute(plan);
//
// (The legacy request_* wrappers are deprecated spellings of retrieve() and
// will be removed; see README "Serving" for the migration table.)
//
// Serving many clients from one archive (serve/): an ArchiveSet opens each
// archive once; per-client Sessions share its segment cache and pooled I/O,
// so hot planes are fetched from storage once, and per-session byte quotas
// are enforced exactly at plan admission:
//
//   ipcomp::ArchiveSet set;
//   auto handle = set.open_file("field.ipc");
//   ipcomp::Session<double> session(handle, {}, /*byte_quota=*/1 << 20);
//   auto st = session.retrieve(ipcomp::Request::error_bound(1e-3));
//
// Thread safety (taxonomy in util/sync.hpp; per-class contracts on the
// classes themselves): compress() is safe from any number of threads
// concurrently.  ProgressiveReader and Session are one-per-client —
// serialize access per instance, except plan(), which is const and pure and
// may overlap freely; the serve-layer tier underneath (ArchiveSet,
// SegmentCache, PooledSource) is internally-synchronized.  These contracts
// are machine-checked by the Clang thread-safety analysis and race-tested
// under ThreadSanitizer (tests/test_concurrency.cpp, tests/test_serve.cpp;
// see README "Correctness tooling").
#pragma once

#include "core/backend.hpp"
#include "core/compressor.hpp"
#include "core/header.hpp"
#include "core/options.hpp"
#include "core/progressive_reader.hpp"
#include "core/request.hpp"
#include "io/archive.hpp"
#include "serve/archive_set.hpp"
#include "serve/cache.hpp"
#include "serve/pooled_source.hpp"
#include "serve/session.hpp"
#include "util/dims.hpp"
#include "util/ndarray.hpp"
