// IPComp — interpolation-based progressive lossy compression.
//
// Umbrella public header.  Typical use:
//
//   #include "ipcomp.hpp"
//
//   ipcomp::NdArray<double> field = ...;       // your data
//   ipcomp::Options opt;
//   opt.error_bound = 1e-6;                    // relative to the value range
//   ipcomp::Bytes archive = ipcomp::compress(field.const_view(), opt);
//
//   ipcomp::MemorySource src(std::move(archive));
//   ipcomp::ProgressiveReader<double> reader(src);
//   auto coarse = reader.request_error_bound(1e-2);   // loads a few planes
//   auto finer  = reader.request_bitrate(2.0);        // incremental refine
//   auto full   = reader.request_full();              // error <= eb
//   const std::vector<double>& values = reader.data();
//
// Or with the plan/execute split (same machinery; the request_* methods are
// wrappers) — inspect what a request would fetch before moving any bytes,
// and compose a region with a fidelity target:
//
//   auto plan = reader.plan(
//       ipcomp::Request::error_bound(1e-3).within({0,0,0}, {64,64,64}));
//   // plan.segments / plan.bytes_new / plan.guaranteed_error ...
//   auto stats = reader.execute(plan);
//
// Thread safety (taxonomy in util/sync.hpp; per-class contracts on the
// classes themselves): compress() is safe from any number of threads
// concurrently.  ProgressiveReader is one-per-client over a per-client
// SegmentSource — serialize access per reader, except plan(), which is const
// and pure and may overlap freely.  These contracts are machine-checked by
// the Clang thread-safety analysis and race-tested under ThreadSanitizer
// (tests/test_concurrency.cpp; see README "Correctness tooling").
#pragma once

#include "core/backend.hpp"
#include "core/compressor.hpp"
#include "core/header.hpp"
#include "core/options.hpp"
#include "core/progressive_reader.hpp"
#include "core/request.hpp"
#include "io/archive.hpp"
#include "util/dims.hpp"
#include "util/ndarray.hpp"
