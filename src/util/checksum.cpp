#include "util/checksum.hpp"

#include <cstring>

namespace ipcomp {

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t round64(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  return rotl(acc, 31) * kPrime1;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t lane) {
  acc ^= round64(0, lane);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t checksum64(const std::uint8_t* data, std::size_t n,
                         std::uint64_t seed) {
  const std::uint8_t* p = data;
  const std::uint8_t* const end = data + n;
  std::uint64_t h;

  if (n >= 32) {
    // Four independent accumulators, one 32-byte stripe per iteration; the
    // lanes have no cross-dependency so the compiler keeps them in flight
    // simultaneously.
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* const stripe_end = end - 32;
    do {
      v1 = round64(v1, load64(p));
      v2 = round64(v2, load64(p + 8));
      v3 = round64(v3, load64(p + 16));
      v4 = round64(v4, load64(p + 24));
      p += 32;
    } while (p <= stripe_end);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(n);

  while (p + 8 <= end) {
    h ^= round64(0, load64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(load32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace ipcomp
