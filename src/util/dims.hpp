// Shape handling for up to 4-dimensional scientific fields.
//
// Scientific datasets in this codebase are dense row-major arrays whose shape
// rarely exceeds three dimensions (plus an optional field/time axis).  Dims is
// a small value type: a dimension count plus extents, with the index helpers
// every module needs (linearization, strides, total element count).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>

namespace ipcomp {

/// Maximum supported array rank.
inline constexpr std::size_t kMaxRank = 4;

/// Shape of a dense row-major array (slowest-varying dimension first).
class Dims {
 public:
  Dims() = default;

  Dims(std::initializer_list<std::size_t> extents) {
    if (extents.size() == 0 || extents.size() > kMaxRank) {
      throw std::invalid_argument("Dims: rank must be in [1, 4]");
    }
    rank_ = extents.size();
    std::size_t i = 0;
    for (std::size_t e : extents) {
      if (e == 0) throw std::invalid_argument("Dims: zero extent");
      extent_[i++] = e;
    }
  }

  static Dims of_rank(std::size_t rank, const std::size_t* extents) {
    if (rank == 0 || rank > kMaxRank) {
      throw std::invalid_argument("Dims: rank must be in [1, 4]");
    }
    Dims d;
    d.rank_ = rank;
    for (std::size_t i = 0; i < rank; ++i) {
      if (extents[i] == 0) throw std::invalid_argument("Dims: zero extent");
      d.extent_[i] = extents[i];
    }
    return d;
  }

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const { return extent_[i]; }

  /// Total number of elements.
  std::size_t count() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= extent_[i];
    return n;
  }

  /// Largest extent over all dimensions.
  std::size_t max_extent() const {
    std::size_t m = 0;
    for (std::size_t i = 0; i < rank_; ++i) m = std::max(m, extent_[i]);
    return m;
  }

  /// Row-major strides (in elements).
  std::array<std::size_t, kMaxRank> strides() const {
    std::array<std::size_t, kMaxRank> s{};
    std::size_t acc = 1;
    for (std::size_t i = rank_; i-- > 0;) {
      s[i] = acc;
      acc *= extent_[i];
    }
    return s;
  }

  /// Linear index of a coordinate tuple.
  std::size_t linear(const std::array<std::size_t, kMaxRank>& coord) const {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < rank_; ++i) idx = idx * extent_[i] + coord[i];
    return idx;
  }

  bool operator==(const Dims& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (extent_[i] != o.extent_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Dims& o) const { return !(*this == o); }

  std::string to_string() const {
    std::string s;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += "x";
      s += std::to_string(extent_[i]);
    }
    return s;
  }

 private:
  std::size_t rank_ = 0;
  std::array<std::size_t, kMaxRank> extent_{};
};

}  // namespace ipcomp
