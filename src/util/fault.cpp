#include "util/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace ipcomp {

std::shared_ptr<FaultPlan> FaultPlan::random(std::uint64_t seed,
                                             const Profile& profile) {
  auto plan = std::make_shared<FaultPlan>(seed);
  LockGuard lock(plan->mu_);
  plan->randomized_ = true;
  plan->profile_ = profile;
  return plan;
}

FaultPlan& FaultPlan::reset_at(std::uint64_t nth_op) {
  LockGuard lock(mu_);
  slot(nth_op).reset = true;
  return *this;
}

FaultPlan& FaultPlan::torn_at(std::uint64_t nth_op) {
  LockGuard lock(mu_);
  slot(nth_op).torn = true;
  return *this;
}

FaultPlan& FaultPlan::eintr_at(std::uint64_t nth_op, unsigned times) {
  LockGuard lock(mu_);
  // Each interrupted attempt retries as the next ordinal, so a storm of
  // `times` interrupts occupies `times` consecutive slots.
  for (unsigned k = 0; k < times; ++k) slot(nth_op + k).eintr = true;
  return *this;
}

FaultPlan& FaultPlan::flip_at(std::uint64_t nth_op, std::size_t byte,
                              unsigned bit) {
  LockGuard lock(mu_);
  WireFault& f = slot(nth_op);
  f.flip = true;
  f.flip_byte = byte;
  f.flip_bit = bit & 7u;
  return *this;
}

FaultPlan& FaultPlan::delay_at(std::uint64_t nth_op, unsigned ms) {
  LockGuard lock(mu_);
  slot(nth_op).delay_ms = ms;
  return *this;
}

FaultPlan& FaultPlan::fail_reads_after(std::uint64_t n) {
  LockGuard lock(mu_);
  fail_reads_after_ = n;
  return *this;
}

FaultPlan& FaultPlan::corrupt_read_at(std::uint64_t nth_payload,
                                      std::size_t byte, unsigned bit) {
  LockGuard lock(mu_);
  read_faults_[nth_payload] = ReadFault{true, byte, bit & 7u};
  return *this;
}

FaultPlan::WireFault& FaultPlan::slot(std::uint64_t n) {
  return wire_faults_[n];
}

bool FaultPlan::drop(FaultOp op) {
  unsigned delay_ms = 0;
  bool fire = false;
  {
    LockGuard lock(mu_);
    const std::uint64_t n = next_op_++;
    ++ops_;
    if (randomized_) {
      const bool covered =
          op == FaultOp::kRead ? profile_.on_reads : profile_.on_writes;
      if (covered) {
        WireFault& f = slot(n);
        if (rng_.uniform() < profile_.reset_p) f.reset = true;
        if (rng_.uniform() < profile_.torn_p) f.torn = true;
        if (rng_.uniform() < profile_.eintr_p) f.eintr = 2;
        if (rng_.uniform() < profile_.delay_p) f.delay_ms = profile_.delay_ms;
      }
    }
    auto it = wire_faults_.find(n);
    if (it != wire_faults_.end()) {
      delay_ms = it->second.delay_ms;
      it->second.delay_ms = 0;
      if (it->second.reset) {
        it->second.reset = false;  // one reset per slot
        ++resets_;
        fire = true;
      }
    }
  }
  // Delay spikes sleep outside the lock so a stalled op can't serialize the
  // whole plan.
  if (delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fire;
}

std::size_t FaultPlan::clamp(FaultOp, std::size_t want) {
  LockGuard lock(mu_);
  if (next_op_ == 0) return want;  // no drop() yet: nothing scheduled
  auto it = wire_faults_.find(next_op_ - 1);
  if (it == wire_faults_.end() || want == 0) return want;
  if (it->second.eintr) {
    it->second.eintr = false;
    ++eintrs_;
    return 0;
  }
  if (it->second.torn) {
    it->second.torn = false;
    ++torn_;
    return 1;
  }
  return want;
}

void FaultPlan::corrupt(FaultOp op, std::uint8_t* data, std::size_t len) {
  if (op != FaultOp::kRead) return;
  LockGuard lock(mu_);
  if (next_op_ == 0) return;
  auto it = wire_faults_.find(next_op_ - 1);
  if (it == wire_faults_.end() || !it->second.flip || len == 0) return;
  const std::size_t byte = it->second.flip_byte;
  const unsigned bit = it->second.flip_bit;
  it->second.flip = false;
  if (byte >= len) {
    // The target byte is past this chunk: the flip addresses the byte
    // *stream* received from its ordinal onward, so carry the remainder
    // into the next raw read (short reads must not silently retarget the
    // flip onto framing bytes).  Direct map access, not slot(): a deferral
    // must never roll the randomized profile's dice for that ordinal.
    WireFault& carry = wire_faults_[next_op_];
    carry.flip = true;
    carry.flip_byte = byte - len;
    carry.flip_bit = bit;
    return;
  }
  data[byte] ^= static_cast<std::uint8_t>(1u << bit);
  ++flips_;
}

std::uint64_t FaultPlan::io_ops() const {
  LockGuard lock(mu_);
  return ops_;
}

std::uint64_t FaultPlan::resets() const {
  LockGuard lock(mu_);
  return resets_;
}

std::uint64_t FaultPlan::torn() const {
  LockGuard lock(mu_);
  return torn_;
}

std::uint64_t FaultPlan::eintrs() const {
  LockGuard lock(mu_);
  return eintrs_;
}

std::uint64_t FaultPlan::flips() const {
  LockGuard lock(mu_);
  return flips_;
}

std::uint64_t FaultPlan::injected() const {
  LockGuard lock(mu_);
  return resets_ + torn_ + eintrs_ + flips_;
}

// ---- FaultySource ---------------------------------------------------------

void FaultySource::mirror(const SourceStats& before) {
  const SourceStats after = base_->stats();
  charge_bytes(after.bytes_read - before.bytes_read);
  for (std::size_t k = before.read_calls; k < after.read_calls; ++k) {
    count_read_call();
  }
  for (std::size_t k = before.coalesced_ranges; k < after.coalesced_ranges;
       ++k) {
    count_coalesced_range();
  }
}

const Bytes& FaultySource::header() {
  const SourceStats before = base_->stats();
  const Bytes& h = base_->header();
  mirror(before);
  return h;
}

Bytes FaultySource::read_segment(SegmentId id) {
  std::vector<Bytes> one = read_many({&id, 1});
  return std::move(one.front());
}

std::vector<Bytes> FaultySource::read_many(std::span<const SegmentId> ids) {
  {
    LockGuard lock(plan_->mu_);
    if (plan_->source_reads_ >= plan_->fail_reads_after_) {
      throw std::runtime_error("fault: injected read failure");
    }
  }
  const SourceStats before = base_->stats();
  std::vector<Bytes> out = base_->read_many(ids);
  mirror(before);
  LockGuard lock(plan_->mu_);
  for (Bytes& payload : out) {
    const std::uint64_t n = plan_->source_reads_++;
    auto it = plan_->read_faults_.find(n);
    if (it == plan_->read_faults_.end() || !it->second.flip ||
        payload.empty()) {
      continue;
    }
    it->second.flip = false;
    const std::size_t byte =
        it->second.byte < payload.size() ? it->second.byte : payload.size() - 1;
    payload[byte] ^= static_cast<std::uint8_t>(1u << it->second.bit);
    ++plan_->flips_;
  }
  return out;
}

}  // namespace ipcomp
