// Runtime SIMD capability selection.
//
// The bitplane transpose engine ships scalar, SSE2 and AVX2 kernels in one
// binary and picks the widest one the executing CPU supports, so release
// builds stay portable (no -march flags; the wide kernels are compiled with
// per-function target attributes and only ever called after detection).
//
// The environment variable IPCOMP_SIMD=scalar|sse2|avx2 caps the dispatched
// level — forcing `scalar` keeps the fallback path exercised in CI, and the
// cap never exceeds what the hardware supports, so an avx2 request on an
// SSE2-only machine degrades instead of faulting.
#pragma once

#include <cstdlib>
#include <cstring>

namespace ipcomp {

enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

/// Parse a level name ("scalar", "sse2", "avx2"); false on anything else.
inline bool parse_simd_level(const char* name, SimdLevel& out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) { out = SimdLevel::kScalar; return true; }
  if (std::strcmp(name, "sse2") == 0) { out = SimdLevel::kSse2; return true; }
  if (std::strcmp(name, "avx2") == 0) { out = SimdLevel::kAvx2; return true; }
  return false;
}

/// Widest level the executing CPU supports (scalar on non-x86 builds).
inline SimdLevel detected_simd_level() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

/// Dispatched level: min(hardware, IPCOMP_SIMD override), resolved once.
/// An unset, empty or unparseable IPCOMP_SIMD means no override.
///
/// Thread contract: internally-synchronized.  The cached level is a magic
/// static, so concurrent first-touch — e.g. N threads entering the bitplane
/// engine simultaneously on process start — resolves the environment lookup
/// exactly once and every caller observes the same level for process life
/// (tests/test_concurrency.cpp races this under TSan).  Mutating IPCOMP_SIMD
/// after the first call has no effect by design: the dispatch decision must
/// not change while kernels are in flight.
inline SimdLevel simd_level() {
  static const SimdLevel cached = [] {
    const SimdLevel hw = detected_simd_level();
    // -- read exactly once (magic static); nothing in-process calls setenv.
    const char* env = std::getenv("IPCOMP_SIMD");  // NOLINT(concurrency-mt-unsafe)
    SimdLevel want;
    if (env != nullptr && *env != '\0' && parse_simd_level(env, want)) {
      return want < hw ? want : hw;
    }
    return hw;
  }();
  return cached;
}

}  // namespace ipcomp
