// Wall-clock timing for throughput measurements.
#pragma once

#include <chrono>

namespace ipcomp {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Throughput in MB/s given a byte count and elapsed seconds.
inline double mb_per_s(std::size_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

}  // namespace ipcomp
