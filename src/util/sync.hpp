// Annotated synchronization primitives: Clang thread-safety analysis.
//
// Every lock in this repository goes through the wrappers below so that the
// locking discipline is machine-checked, not commented.  Under Clang the
// IPCOMP_* macros expand to the capability attributes of -Wthread-safety
// (promoted to an error in CMakeLists.txt); under any other compiler they
// expand to nothing and the wrappers are zero-cost veneers over the standard
// primitives.  A raw std::mutex / pthread_mutex_t outside this header is a
// lint error (scripts/check.sh).
//
// Thread-contract taxonomy used by class comments across the tree:
//   * const-safe: concurrent calls to const members are safe; non-const
//     members need external synchronization (the default for value types).
//   * externally-synchronized: the caller serializes ALL access (the single-
//     owner contract; e.g. ProgressiveReader, ArchiveBuilder).
//   * internally-synchronized: safe to call from any thread without external
//     locking (e.g. the backend registry, the dataset cache, the SIMD
//     dispatch singleton, SegmentSource stat counters, and the whole serve
//     layer's shared tier: SegmentCache, PooledSource, ArchiveSet).
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute spellings per the Clang thread-safety-analysis documentation;
// GCC and MSVC see empty macros and compile the identical code.
#if defined(__clang__) && !defined(SWIG)
#define IPCOMP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IPCOMP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// NOLINTBEGIN(bugprone-macro-parentheses) -- attribute argument tokens
// cannot be parenthesized; these macros only ever wrap attribute contents.

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define IPCOMP_CAPABILITY(x) IPCOMP_THREAD_ANNOTATION(capability(x))
/// Marks a RAII type whose lifetime holds a capability.
#define IPCOMP_SCOPED_CAPABILITY IPCOMP_THREAD_ANNOTATION(scoped_lockable)
/// Data member / variable readable and writable only with `x` held.
#define IPCOMP_GUARDED_BY(x) IPCOMP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer whose *pointee* is protected by `x` (the pointer itself is not).
#define IPCOMP_PT_GUARDED_BY(x) IPCOMP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that may only be called with the listed capabilities held.
#define IPCOMP_REQUIRES(...) \
  IPCOMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IPCOMP_REQUIRES_SHARED(...) \
  IPCOMP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function that acquires / releases the listed capabilities.
#define IPCOMP_ACQUIRE(...) \
  IPCOMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IPCOMP_RELEASE(...) \
  IPCOMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking internally-synchronized APIs).
#define IPCOMP_EXCLUDES(...) IPCOMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Returns the capability protecting the returned reference.
#define IPCOMP_RETURN_CAPABILITY(x) IPCOMP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the analysis cannot see through this function.  Every use
/// carries a justification comment (see the suppression policy in README.md).
#define IPCOMP_NO_THREAD_SAFETY_ANALYSIS \
  IPCOMP_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

namespace ipcomp {

/// Annotated exclusive mutex.  Prefer LockGuard over manual lock()/unlock().
class IPCOMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IPCOMP_ACQUIRE() { m_.lock(); }
  void unlock() IPCOMP_RELEASE() { m_.unlock(); }

  /// Underlying handle for CondVar::wait; does not transfer the capability.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex; holds the capability for its scope.
class IPCOMP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) IPCOMP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() IPCOMP_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex.  wait() must be called with the
/// mutex held (enforced under Clang); the predicate is re-evaluated with the
/// mutex held, exactly like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Pred>
  void wait(Mutex& mu, Pred&& pred) IPCOMP_REQUIRES(mu) {
    // The unique_lock adopts the already-held native mutex for the duration
    // of the wait; the capability never leaves `mu` from the analysis's view.
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk, static_cast<Pred&&>(pred));
    lk.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ipcomp
