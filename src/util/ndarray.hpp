// Owning and non-owning views of dense row-major N-d arrays.
//
// NdArray<T> owns storage; NdView<T> / NdConstView<T> are cheap fat pointers
// (data + Dims).  All compressors in this repository operate on views so the
// same buffers flow through pipelines without copies.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/dims.hpp"

namespace ipcomp {

template <typename T>
class NdConstView {
 public:
  NdConstView() = default;
  NdConstView(const T* data, Dims dims) : data_(data), dims_(dims) {}

  const T* data() const { return data_; }
  const Dims& dims() const { return dims_; }
  std::size_t count() const { return dims_.count(); }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::span<const T> span() const { return {data_, count()}; }

 private:
  const T* data_ = nullptr;
  Dims dims_;
};

template <typename T>
class NdView {
 public:
  NdView() = default;
  NdView(T* data, Dims dims) : data_(data), dims_(dims) {}

  T* data() const { return data_; }
  const Dims& dims() const { return dims_; }
  std::size_t count() const { return dims_.count(); }
  T& operator[](std::size_t i) const { return data_[i]; }
  std::span<T> span() const { return {data_, count()}; }
  operator NdConstView<T>() const { return {data_, dims_}; }

 private:
  T* data_ = nullptr;
  Dims dims_;
};

/// Owning dense row-major array.
template <typename T>
class NdArray {
 public:
  NdArray() = default;
  explicit NdArray(Dims dims) : dims_(dims), storage_(dims.count()) {}
  NdArray(Dims dims, std::vector<T> values)
      : dims_(dims), storage_(std::move(values)) {
    if (storage_.size() != dims_.count()) {
      throw std::invalid_argument("NdArray: value count does not match dims");
    }
  }

  const Dims& dims() const { return dims_; }
  std::size_t count() const { return storage_.size(); }
  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }

  NdView<T> view() { return {storage_.data(), dims_}; }
  NdConstView<T> view() const { return {storage_.data(), dims_}; }
  NdConstView<T> const_view() const { return {storage_.data(), dims_}; }

  std::vector<T>& vector() { return storage_; }
  const std::vector<T>& vector() const { return storage_; }

 private:
  Dims dims_;
  std::vector<T> storage_;
};

}  // namespace ipcomp
