// Segment checksums for the v4 archive container (io/archive.hpp).
//
// checksum64 is the XXH64 algorithm: four independent 64-bit lanes consume a
// 32-byte stripe per round, so the hot loop is word-parallel and runs at
// memory bandwidth on any 64-bit target — verification can ride every
// physical read without showing up next to the decode cost (bench_serve
// reports the measured GB/s as serve.integrity.verify_gbps).
//
// The function is a pure leaf with no state; thread contract: const-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ipcomp {

/// XXH64 of `n` bytes with the given seed (0 for archive segments).
std::uint64_t checksum64(const std::uint8_t* data, std::size_t n,
                         std::uint64_t seed = 0);

inline std::uint64_t checksum64(std::span<const std::uint8_t> bytes,
                                std::uint64_t seed = 0) {
  return checksum64(bytes.data(), bytes.size(), seed);
}

}  // namespace ipcomp
