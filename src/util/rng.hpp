// Deterministic pseudo-random number generation (xoshiro256**).
//
// Dataset generators and property tests need fast, seed-stable randomness that
// is identical across platforms; std::mt19937_64 distributions are not
// portable across standard libraries, so uniform/normal draws are implemented
// here explicitly.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace ipcomp {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
///
/// Thread contract: externally-synchronized.  Every draw mutates the state
/// words, so each thread owns its own Rng (seeded distinctly); concurrent
/// draws from a shared instance are a race, not just nondeterminism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (deterministic, portable).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace ipcomp
