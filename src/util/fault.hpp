// Deterministic fault injection for the storage and wire layers.
//
// A FaultPlan is a seeded, reproducible schedule of failures.  Two seams
// consume it: net/wire.cpp's FrameChannel consults it (through the
// FaultInjector interface) before and after every raw socket I/O, and
// FaultySource wraps any SegmentSource to fault physical reads.  Because the
// schedule keys off operation ordinals — not wall time or real signals —
// the exact same failure sequence replays on every run with the same seed
// and traffic, which is what turns "survives a connection reset mid-EXECUTE"
// from a prayer into a regression test (tests/test_net.cpp) and powers
// `ipc serve --fault-seed`.
//
// Injected failure modes:
//   * torn reads/writes  — one raw I/O clamped to a single byte, exercising
//     the resume loops around ::send/::recv;
//   * EINTR storms       — I/Os clamped to zero bytes, the signal-interrupt
//     shape without needing real signals;
//   * bit flips          — one bit of a received chunk inverted, exercising
//     checksum verification at the wire boundary;
//   * connection resets  — the socket is shut down mid-operation;
//   * delay spikes       — a bounded sleep before an I/O;
//   * storage faults     — FaultySource: fail-after-N-reads, payload flips.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "io/archive.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace ipcomp {

/// Direction of a raw wire I/O consulting the injector.
enum class FaultOp { kRead, kWrite };

/// The seam FrameChannel consults around every raw socket I/O.  The default
/// implementation injects nothing; FaultPlan is the scheduled one.
///
/// Call order per raw I/O: drop() (reset decision, advances the op ordinal),
/// then clamp() (byte-count limit; 0 simulates an EINTR return), then — for
/// reads that moved bytes — corrupt() over the received chunk.
///
/// Thread contract: internally-synchronized in FaultPlan; a custom injector
/// shared across connections must synchronize itself.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// True = reset the connection before this I/O.
  virtual bool drop(FaultOp) { return false; }
  /// Clamp one raw I/O's byte count; returning 0 simulates EINTR.
  virtual std::size_t clamp(FaultOp, std::size_t want) { return want; }
  /// Mutate bytes a raw read just received (bit flips).
  virtual void corrupt(FaultOp, std::uint8_t* /*data*/, std::size_t /*len*/) {}
};

/// Seeded, reproducible fault schedule.  Explicit faults are pinned to raw
/// I/O ordinals (0-based, reads and writes share the counter); the random()
/// factory instead derives an endless schedule from the seed and a
/// probability profile, for `ipc serve --fault-seed` style soak runs.
///
/// Thread contract: internally-synchronized — one plan may be shared by a
/// connection's reader and writer, or consulted from a server handler
/// thread.
class FaultPlan final : public FaultInjector {
 public:
  /// Probabilities per raw I/O for the seeded-random mode; the defaults are
  /// a mild soak profile (mostly torn writes and brief stalls).
  struct Profile {
    double reset_p = 0.0;
    double torn_p = 0.10;
    double eintr_p = 0.05;
    double delay_p = 0.0;
    unsigned delay_ms = 2;
    bool on_reads = true;
    bool on_writes = true;
  };

  explicit FaultPlan(std::uint64_t seed = 0) : rng_(seed) {}

  /// A plan that rolls the profile's dice on every raw I/O, deterministically
  /// from `seed`.
  static std::shared_ptr<FaultPlan> random(std::uint64_t seed,
                                           const Profile& profile);

  // -- explicit schedule (returns *this for chaining) -----------------------
  /// Reset the connection at the nth raw I/O.
  FaultPlan& reset_at(std::uint64_t nth_op);
  /// Clamp the nth raw I/O to one byte (torn read/write).
  FaultPlan& torn_at(std::uint64_t nth_op);
  /// Simulate EINTR returns for `times` consecutive raw I/Os starting at the
  /// nth (each interrupted attempt is retried as the next ordinal, so this
  /// reads as one storm of `times` interrupts).
  FaultPlan& eintr_at(std::uint64_t nth_op, unsigned times = 3);
  /// Invert one bit of the byte stream received from the nth raw I/O onward
  /// (reads only): `byte` indexes into the concatenation of chunks starting
  /// at that ordinal, carrying into later reads when a chunk is short —
  /// kernel chunking must not retarget the flip.  `bit` is masked to 0–7.
  FaultPlan& flip_at(std::uint64_t nth_op, std::size_t byte = 0,
                     unsigned bit = 0);
  /// Sleep `ms` before the nth raw I/O (delay spike).
  FaultPlan& delay_at(std::uint64_t nth_op, unsigned ms);
  /// FaultySource: fail every read once `n` reads have completed.
  FaultPlan& fail_reads_after(std::uint64_t n);
  /// FaultySource: invert one bit of the nth (0-based) payload delivered.
  FaultPlan& corrupt_read_at(std::uint64_t nth_payload, std::size_t byte = 0,
                             unsigned bit = 0);

  // -- FaultInjector --------------------------------------------------------
  bool drop(FaultOp op) override IPCOMP_EXCLUDES(mu_);
  std::size_t clamp(FaultOp op, std::size_t want) override IPCOMP_EXCLUDES(mu_);
  void corrupt(FaultOp op, std::uint8_t* data, std::size_t len) override
      IPCOMP_EXCLUDES(mu_);

  // -- counters (exact once traffic quiesces) -------------------------------
  /// Raw I/Os observed (drop() calls).
  std::uint64_t io_ops() const IPCOMP_EXCLUDES(mu_);
  /// Faults actually fired, by kind and in total.
  std::uint64_t resets() const IPCOMP_EXCLUDES(mu_);
  std::uint64_t torn() const IPCOMP_EXCLUDES(mu_);
  std::uint64_t eintrs() const IPCOMP_EXCLUDES(mu_);
  std::uint64_t flips() const IPCOMP_EXCLUDES(mu_);
  std::uint64_t injected() const IPCOMP_EXCLUDES(mu_);

 private:
  friend class FaultySource;

  struct WireFault {
    bool reset = false;
    bool torn = false;
    bool eintr = false;
    bool flip = false;
    std::size_t flip_byte = 0;
    unsigned flip_bit = 0;
    unsigned delay_ms = 0;
  };

  /// The fault (if any) scheduled for op ordinal `n`, rolling the random
  /// profile when enabled.
  WireFault& slot(std::uint64_t n) IPCOMP_REQUIRES(mu_);

  mutable Mutex mu_;
  Rng rng_ IPCOMP_GUARDED_BY(mu_);
  bool randomized_ IPCOMP_GUARDED_BY(mu_) = false;
  Profile profile_ IPCOMP_GUARDED_BY(mu_);
  std::map<std::uint64_t, WireFault> wire_faults_ IPCOMP_GUARDED_BY(mu_);
  /// One shared ordinal per raw I/O: drop() assigns it, clamp()/corrupt()
  /// refer to the I/O drop() most recently admitted.
  std::uint64_t next_op_ IPCOMP_GUARDED_BY(mu_) = 0;

  struct ReadFault {
    bool flip = false;
    std::size_t byte = 0;
    unsigned bit = 0;
  };
  std::uint64_t fail_reads_after_ IPCOMP_GUARDED_BY(mu_) = UINT64_MAX;
  std::map<std::uint64_t, ReadFault> read_faults_ IPCOMP_GUARDED_BY(mu_);
  std::uint64_t source_reads_ IPCOMP_GUARDED_BY(mu_) = 0;

  std::uint64_t ops_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::uint64_t resets_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::uint64_t torn_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::uint64_t eintrs_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::uint64_t flips_ IPCOMP_GUARDED_BY(mu_) = 0;
};

/// SegmentSource decorator that injects the plan's storage faults: reads
/// fail outright past the fail-after threshold (throwing std::runtime_error,
/// the flaky-disk shape), and scheduled payload corruptions flip a bit in
/// the bytes handed out — downstream trust boundaries (cache insert, decode)
/// must catch them via checksums.  Index queries and checksums pass through
/// untouched.
///
/// Thread contract: matches the wrapped source (the plan is internally-
/// synchronized).
class FaultySource final : public SegmentSource {
 public:
  FaultySource(std::unique_ptr<SegmentSource> base,
               std::shared_ptr<FaultPlan> plan)
      : base_(std::move(base)), plan_(std::move(plan)) {}

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override {
    return base_->has_segment(id);
  }
  std::size_t segment_size(SegmentId id) const override {
    return base_->segment_size(id);
  }
  std::vector<SegmentId> segment_ids() const override {
    return base_->segment_ids();
  }
  std::uint32_t version() const override { return base_->version(); }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    return base_->segment_checksum(id);
  }
  std::size_t total_size() const override { return base_->total_size(); }

 private:
  /// Fold what the base just charged into this source's own counters, so
  /// stats() reads the same through the decorator (cf. MmapSource's
  /// fallback mirroring).
  void mirror(const SourceStats& before);

  std::unique_ptr<SegmentSource> base_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace ipcomp
