// Thin OpenMP helpers.
//
// All parallel loops in this repository go through parallel_for so that the
// code builds (serially) without OpenMP and so that grain-size policy lives in
// one place.  Loop bodies must be independent per index.
#pragma once

#include <cstddef>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace ipcomp {

/// Number of worker threads the runtime will use.
inline int thread_count() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [begin, end); falls back to serial when the trip count
/// is below `grain` (parallelizing tiny loops costs more than it saves).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 1024) {
#if defined(_OPENMP)
  if (end - begin >= grain && omp_get_max_threads() > 1) {
    const std::ptrdiff_t b = static_cast<std::ptrdiff_t>(begin);
    const std::ptrdiff_t e = static_cast<std::ptrdiff_t>(end);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = b; i < e; ++i) {
      fn(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace ipcomp
