// Thin OpenMP helpers.
//
// All parallel loops in this repository go through parallel_for so that the
// code builds (serially) without OpenMP and so that grain-size policy lives in
// one place.  Loop bodies must be independent per index.
#pragma once

#include <cstddef>
#include <exception>

#include "util/sync.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace ipcomp {

/// Number of worker threads the runtime will use.
inline int thread_count() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// True when called from inside an active parallel region.  Used as a
/// nested-parallelism guard: parallel_for runs serially in that case, so an
/// outer loop (e.g. across compression blocks) keeps exclusive use of the
/// thread pool instead of oversubscribing it with nested teams.
inline bool in_parallel() {
#if defined(_OPENMP)
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Parallel loop over [begin, end); falls back to serial when the trip count
/// is below `grain` (parallelizing tiny loops costs more than it saves) or
/// when already inside a parallel region (see in_parallel()).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 1024) {
#if defined(_OPENMP)
  if (end - begin >= grain && omp_get_max_threads() > 1 && !in_parallel()) {
    const std::ptrdiff_t b = static_cast<std::ptrdiff_t>(begin);
    const std::ptrdiff_t e = static_cast<std::ptrdiff_t>(end);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = b; i < e; ++i) {
      fn(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

/// Chunked parallel loop: fn(lo, hi) over the fixed ranges
/// [begin + c*chunk, begin + (c+1)*chunk) ∩ [begin, end).  Chunk boundaries
/// never depend on the thread count, so chunk-local reductions (OR masks,
/// per-depth maxima) merge into thread-count-independent results.  The
/// word-parallel bitplane engine runs its tile passes through this: one
/// chunk is enough work to amortize a fork, so the per-chunk grain is 1.
template <typename Fn>
void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunk,
                     Fn&& fn) {
  if (end <= begin) return;
  const std::size_t n_chunks = (end - begin + chunk - 1) / chunk;
  parallel_for(0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    fn(lo, lo + chunk < end ? lo + chunk : end);
  }, /*grain=*/1);
}

/// parallel_for for bodies that may throw (e.g. decoding untrusted input):
/// exceptions must not escape an OpenMP region, so the first one thrown is
/// captured and rethrown on the calling thread after the loop completes.
template <typename Fn>
void parallel_for_ex(std::size_t begin, std::size_t end, Fn&& fn,
                     std::size_t grain = 1024) {
  std::exception_ptr eptr = nullptr;
  Mutex mutex;  // guards eptr across the loop's worker threads
  parallel_for(begin, end, [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      LockGuard lock(mutex);
      if (!eptr) eptr = std::current_exception();
    }
  }, grain);
  if (eptr) std::rethrow_exception(eptr);
}

}  // namespace ipcomp
