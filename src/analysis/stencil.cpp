#include "analysis/stencil.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ipcomp {

namespace {

void check_3d(const Dims& dims) {
  if (dims.rank() != 3) {
    throw std::invalid_argument("analysis stencils require 3-D fields");
  }
}

/// d/dx_dim with central differences, one-sided at the boundary.
inline double diff_at(const double* f, const Dims& dims,
                      const std::array<std::size_t, kMaxRank>& strides,
                      std::size_t idx, std::size_t coord, unsigned dim) {
  const std::size_t n = dims[dim];
  const std::size_t s = strides[dim];
  if (coord == 0) return f[idx + s] - f[idx];
  if (coord == n - 1) return f[idx] - f[idx - s];
  return 0.5 * (f[idx + s] - f[idx - s]);
}

}  // namespace

NdArray<double> gradient(NdConstView<double> f, unsigned dim) {
  check_3d(f.dims());
  const Dims& dims = f.dims();
  const auto strides = dims.strides();
  NdArray<double> out(dims);
  const std::size_t ny = dims[1], nx = dims[2];
  parallel_for(0, dims[0], [&](std::size_t iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t idx = iz * strides[0] + iy * strides[1] + ix;
        const std::size_t coord = dim == 0 ? iz : dim == 1 ? iy : ix;
        out[idx] = diff_at(f.data(), dims, strides, idx, coord, dim);
      }
    }
  }, /*grain=*/1);
  return out;
}

NdArray<double> laplacian(NdConstView<double> f) {
  check_3d(f.dims());
  const Dims& dims = f.dims();
  const auto strides = dims.strides();
  NdArray<double> out(dims);
  const std::size_t ny = dims[1], nx = dims[2];
  parallel_for(0, dims[0], [&](std::size_t iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t idx = iz * strides[0] + iy * strides[1] + ix;
        double acc = 0.0;
        const std::size_t coords[3] = {iz, iy, ix};
        for (unsigned d = 0; d < 3; ++d) {
          const std::size_t n = dims[d];
          const std::size_t s = strides[d];
          const std::size_t c = coords[d];
          // Second difference; replicate the boundary sample outside.
          const double center = f[idx];
          const double lo = c > 0 ? f[idx - s] : center;
          const double hi = c + 1 < n ? f[idx + s] : center;
          acc += lo - 2.0 * center + hi;
        }
        out[idx] = acc;
      }
    }
  }, /*grain=*/1);
  return out;
}

NdArray<double> curl_magnitude(NdConstView<double> vx, NdConstView<double> vy,
                               NdConstView<double> vz) {
  check_3d(vx.dims());
  if (vx.dims() != vy.dims() || vx.dims() != vz.dims()) {
    throw std::invalid_argument("curl: component dims mismatch");
  }
  // curl = (dVz/dy - dVy/dz, dVx/dz - dVz/dx, dVy/dx - dVx/dy)
  auto dvz_dy = gradient(vz, 1);
  auto dvy_dz = gradient(vy, 0);
  auto dvx_dz = gradient(vx, 0);
  auto dvz_dx = gradient(vz, 2);
  auto dvy_dx = gradient(vy, 2);
  auto dvx_dy = gradient(vx, 1);
  NdArray<double> out(vx.dims());
  parallel_for(0, out.count(), [&](std::size_t i) {
    const double cx = dvz_dy[i] - dvy_dz[i];
    const double cy = dvx_dz[i] - dvz_dx[i];
    const double cz = dvy_dx[i] - dvx_dy[i];
    out[i] = std::sqrt(cx * cx + cy * cy + cz * cz);
  }, /*grain=*/1 << 14);
  return out;
}

double nrmse(NdConstView<double> reference, NdConstView<double> candidate) {
  if (reference.count() != candidate.count()) {
    throw std::invalid_argument("nrmse: size mismatch");
  }
  double lo = reference[0], hi = reference[0];
  double sq = 0.0;
  for (std::size_t i = 0; i < reference.count(); ++i) {
    const double r = reference[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    const double e = r - candidate[i];
    sq += e * e;
  }
  const double range = hi - lo;
  if (range <= 0.0) return 0.0;
  return std::sqrt(sq / static_cast<double>(reference.count())) / range;
}

}  // namespace ipcomp
