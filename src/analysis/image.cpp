#include "analysis/image.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace ipcomp {

namespace {

struct SliceView {
  const double* data;
  std::size_t ny, nx;
};

SliceView slice_of(NdConstView<double> field, std::size_t z_index) {
  if (field.dims().rank() != 3) {
    throw std::invalid_argument("slice rendering requires 3-D fields");
  }
  const auto& d = field.dims();
  if (z_index >= d[0]) throw std::out_of_range("slice index out of range");
  return {field.data() + z_index * d[1] * d[2], d[1], d[2]};
}

double normalize(double v, double lo, double hi) {
  if (hi <= lo) return 0.5;
  return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
}

void write_binary(const std::string& path, const char* magic, std::size_t nx,
                  std::size_t ny, const std::vector<std::uint8_t>& pixels) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open image file: " + path);
  std::fprintf(f, "%s\n%zu %zu\n255\n", magic, nx, ny);
  std::fwrite(pixels.data(), 1, pixels.size(), f);
  std::fclose(f);
}

}  // namespace

void write_slice_pgm(const std::string& path, NdConstView<double> field,
                     std::size_t z_index, double lo, double hi) {
  SliceView s = slice_of(field, z_index);
  std::vector<std::uint8_t> px(s.ny * s.nx);
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = static_cast<std::uint8_t>(255.0 * normalize(s.data[i], lo, hi));
  }
  write_binary(path, "P5", s.nx, s.ny, px);
}

void write_slice_ppm(const std::string& path, NdConstView<double> field,
                     std::size_t z_index, double lo, double hi) {
  SliceView s = slice_of(field, z_index);
  std::vector<std::uint8_t> px(3 * s.ny * s.nx);
  for (std::size_t i = 0; i < s.ny * s.nx; ++i) {
    const double t = normalize(s.data[i], lo, hi);
    // Diverging blue -> white -> red.
    double r, g, b;
    if (t < 0.5) {
      const double u = t * 2.0;
      r = u;
      g = u;
      b = 1.0;
    } else {
      const double u = (t - 0.5) * 2.0;
      r = 1.0;
      g = 1.0 - u;
      b = 1.0 - u;
    }
    px[3 * i + 0] = static_cast<std::uint8_t>(255.0 * r);
    px[3 * i + 1] = static_cast<std::uint8_t>(255.0 * g);
    px[3 * i + 2] = static_cast<std::uint8_t>(255.0 * b);
  }
  write_binary(path, "P6", s.nx, s.ny, px);
}

}  // namespace ipcomp
