// Post-analysis derived quantities (paper §6.2.5, Fig. 11): curl magnitude of
// a velocity field and the Laplacian of a scalar field, via second-order
// central differences (one-sided at boundaries).
//
// Derivative operators amplify high-frequency compression error — the
// Laplacian (a second derivative) more than the curl (first derivatives) —
// which is exactly why different analyses tolerate different retrieval
// fidelity.
#pragma once

#include <vector>

#include "util/dims.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

/// Central-difference partial derivative of a 3-D field along `dim`
/// (grid spacing 1).
NdArray<double> gradient(NdConstView<double> f, unsigned dim);

/// Laplacian of a 3-D scalar field: Σ_d ∂²f/∂x_d².
NdArray<double> laplacian(NdConstView<double> f);

/// |∇ × V| of a 3-D vector field.  Axis convention: dims are (z, y, x) with
/// x fastest-varying, so `vx` is the component along dims[2], `vy` along
/// dims[1] and `vz` along dims[0].
NdArray<double> curl_magnitude(NdConstView<double> vx, NdConstView<double> vy,
                               NdConstView<double> vz);

/// Normalized root-mean-square deviation between a reference analysis output
/// and one computed from decompressed data (0 = identical).
double nrmse(NdConstView<double> reference, NdConstView<double> candidate);

}  // namespace ipcomp
