// Slice rendering for the visual-quality experiment (paper Fig. 11).
//
// Writes a z-slice of a 3-D field as a binary PGM (grayscale) or PPM with a
// blue-white-red diverging colormap, normalized over a caller-supplied value
// range so slices from different retrieval fidelities are directly comparable.
#pragma once

#include <string>

#include "util/ndarray.hpp"

namespace ipcomp {

/// Write slice z = `z_index` of a 3-D field to a PGM file.  Values are
/// normalized to [lo, hi] (pass the full-fidelity min/max for comparability).
void write_slice_pgm(const std::string& path, NdConstView<double> field,
                     std::size_t z_index, double lo, double hi);

/// Same, as a PPM with a diverging colormap centered on (lo+hi)/2.
void write_slice_ppm(const std::string& path, NdConstView<double> field,
                     std::size_t z_index, double lo, double hi);

}  // namespace ipcomp
