// SPERR-style wavelet compressor (paper Fig. 8; Li et al., IPDPS'23).
//
// CDF 9/7 multi-level transform → uniform coefficient quantization → Huffman
// + LZ77 entropy stage → L∞ outlier correction: compression decodes its own
// output, finds every point whose error exceeds the tolerance and stores an
// exact correction, so the L∞ bound holds unconditionally (this self-check is
// also why SPERR-class compressors are slow, which Fig. 8 relies on).
//
// Deviation from reference SPERR: the SPECK set-partitioning coder is
// replaced by Huffman-coded quantization indices — same pipeline shape,
// simpler entropy stage (DESIGN.md §2).
#pragma once

#include "baselines/baseline.hpp"

namespace ipcomp {

class SperrCompressor final : public Compressor {
 public:
  std::string name() const override { return "SPERR"; }
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;
};

}  // namespace ipcomp
