#include "wavelet/cdf97.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ipcomp {

namespace cdf97_detail {

namespace {
// Standard CDF 9/7 lifting coefficients (JPEG2000 irreversible filter).
constexpr double kAlpha = -1.586134342059924;
constexpr double kBeta = -0.052980118572961;
constexpr double kGamma = 0.882911075530934;
constexpr double kDelta = 0.443506852043971;
constexpr double kKappa = 1.230174104914001;

// Symmetric extension (whole-point mirror): index -1 -> 1, n -> n-2.
inline std::size_t mirror(std::ptrdiff_t i, std::size_t n) {
  if (i < 0) return static_cast<std::size_t>(-i);
  if (static_cast<std::size_t>(i) >= n) return 2 * (n - 1) - static_cast<std::size_t>(i);
  return static_cast<std::size_t>(i);
}

void lift(double* v, std::size_t n, double c, bool odd_targets) {
  const std::size_t start = odd_targets ? 1 : 0;
  for (std::size_t i = start; i < n; i += 2) {
    const double left = v[mirror(static_cast<std::ptrdiff_t>(i) - 1, n)];
    const double right = v[mirror(static_cast<std::ptrdiff_t>(i) + 1, n)];
    v[i] += c * (left + right);
  }
}

}  // namespace

void forward_line(double* x, std::size_t n, std::size_t stride, double* scratch) {
  if (n < 2) return;
  double* v = scratch;
  for (std::size_t i = 0; i < n; ++i) v[i] = x[i * stride];
  lift(v, n, kAlpha, /*odd=*/true);
  lift(v, n, kBeta, /*odd=*/false);
  lift(v, n, kGamma, /*odd=*/true);
  lift(v, n, kDelta, /*odd=*/false);
  // Scale and deinterleave: low band (evens) first, then high band (odds).
  const std::size_t n_low = (n + 1) / 2;
  for (std::size_t i = 0; i < n; i += 2) v[i] *= kKappa;
  for (std::size_t i = 1; i < n; i += 2) v[i] /= kKappa;
  for (std::size_t i = 0; i < n_low; ++i) x[i * stride] = v[2 * i];
  for (std::size_t i = n_low; i < n; ++i) x[i * stride] = v[2 * (i - n_low) + 1];
}

void inverse_line(double* x, std::size_t n, std::size_t stride, double* scratch) {
  if (n < 2) return;
  double* v = scratch;
  const std::size_t n_low = (n + 1) / 2;
  for (std::size_t i = 0; i < n_low; ++i) v[2 * i] = x[i * stride];
  for (std::size_t i = n_low; i < n; ++i) v[2 * (i - n_low) + 1] = x[i * stride];
  for (std::size_t i = 0; i < n; i += 2) v[i] /= kKappa;
  for (std::size_t i = 1; i < n; i += 2) v[i] *= kKappa;
  lift(v, n, -kDelta, /*odd=*/false);
  lift(v, n, -kGamma, /*odd=*/true);
  lift(v, n, -kBeta, /*odd=*/false);
  lift(v, n, -kAlpha, /*odd=*/true);
  for (std::size_t i = 0; i < n; ++i) x[i * stride] = v[i];
}

}  // namespace cdf97_detail

unsigned cdf97_levels(const Dims& dims) {
  std::size_t min_e = dims[0];
  for (std::size_t i = 0; i < dims.rank(); ++i) min_e = std::min(min_e, dims[i]);
  unsigned levels = 0;
  while ((min_e >> (levels + 1)) >= 8 && levels < 8) ++levels;
  return std::max(1u, levels);
}

namespace {

/// Applies fn(line base pointer, length, stride) over every line of `region`
/// along `dim`, where region extents are `ext` within the full array `dims`.
template <typename Fn>
void for_each_line(NdView<double> data, const std::size_t* ext, unsigned dim,
                   Fn&& fn) {
  const Dims& dims = data.dims();
  const auto strides = dims.strides();
  const unsigned rank = static_cast<unsigned>(dims.rank());
  // Enumerate all coordinates of the other dims within ext.
  std::size_t n_lines = 1;
  for (unsigned i = 0; i < rank; ++i) {
    if (i != dim) n_lines *= ext[i];
  }
  parallel_for(0, n_lines, [&](std::size_t line) {
    std::size_t rem = line;
    std::size_t base = 0;
    for (unsigned i = rank; i-- > 0;) {
      if (i == dim) continue;
      base += (rem % ext[i]) * strides[i];
      rem /= ext[i];
    }
    fn(data.data() + base, ext[dim], strides[dim]);
  }, /*grain=*/4);
}

}  // namespace

void cdf97_forward(NdView<double> data, unsigned levels) {
  const Dims& dims = data.dims();
  const unsigned rank = static_cast<unsigned>(dims.rank());
  std::size_t ext[kMaxRank];
  for (unsigned i = 0; i < rank; ++i) ext[i] = dims[i];
  const std::size_t max_len = dims.max_extent();
  for (unsigned lvl = 0; lvl < levels; ++lvl) {
    for (unsigned d = 0; d < rank; ++d) {
      if (ext[d] < 2) continue;
      for_each_line(data, ext, d, [&](double* base, std::size_t n, std::size_t s) {
        thread_local std::vector<double> scratch;
        if (scratch.size() < max_len) scratch.resize(max_len);
        cdf97_detail::forward_line(base, n, s, scratch.data());
      });
    }
    for (unsigned i = 0; i < rank; ++i) ext[i] = (ext[i] + 1) / 2;
  }
}

void cdf97_inverse(NdView<double> data, unsigned levels) {
  const Dims& dims = data.dims();
  const unsigned rank = static_cast<unsigned>(dims.rank());
  const std::size_t max_len = dims.max_extent();
  for (unsigned lvl = levels; lvl-- > 0;) {
    std::size_t ext[kMaxRank];
    for (unsigned i = 0; i < rank; ++i) {
      std::size_t e = dims[i];
      for (unsigned t = 0; t < lvl; ++t) e = (e + 1) / 2;
      ext[i] = e;
    }
    for (unsigned d = rank; d-- > 0;) {
      if (ext[d] < 2) continue;
      for_each_line(data, ext, d, [&](double* base, std::size_t n, std::size_t s) {
        thread_local std::vector<double> scratch;
        if (scratch.size() < max_len) scratch.resize(max_len);
        cdf97_detail::inverse_line(base, n, s, scratch.data());
      });
    }
  }
}

}  // namespace ipcomp
