#include "wavelet/sperr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "coding/huffman.hpp"
#include "coding/lzh.hpp"
#include "io/bitstream.hpp"
#include "util/parallel.hpp"
#include "wavelet/cdf97.hpp"

namespace ipcomp {

namespace {

constexpr std::uint32_t kRadius = 1u << 17;  // quantization symbol radius

/// Coefficient quantization step for a target L∞ bound: the inverse
/// transform amplifies coefficient perturbations, so quantize finer and let
/// the outlier pass mop up what still escapes.
double quant_step(double tolerance, unsigned levels, unsigned rank) {
  return tolerance / (1.0 + 0.5 * static_cast<double>(levels * rank));
}

struct QuantizedPayload {
  Bytes blob;  // lzh(huffman table + bitstream + escapes)
};

QuantizedPayload encode_codes(const std::vector<std::int64_t>& codes) {
  std::vector<std::uint64_t> freq(2 * kRadius, 0);
  std::vector<std::int64_t> escapes;
  for (auto c : codes) {
    if (c > -static_cast<std::int64_t>(kRadius) &&
        c < static_cast<std::int64_t>(kRadius)) {
      ++freq[static_cast<std::size_t>(c + kRadius)];
    } else {
      ++freq[0];  // escape symbol
      escapes.push_back(c);
    }
  }
  auto lengths = build_code_lengths(freq);
  HuffmanEncoder enc(lengths);
  ByteWriter w;
  serialize_code_lengths(w, lengths);
  BitWriter bw(codes.size() / 2);
  for (auto c : codes) {
    if (c > -static_cast<std::int64_t>(kRadius) &&
        c < static_cast<std::int64_t>(kRadius)) {
      enc.encode(bw, static_cast<std::uint32_t>(c + kRadius));
    } else {
      enc.encode(bw, 0);
    }
  }
  Bytes bits = bw.finish();
  w.varint(bits.size());
  w.bytes(bits);
  w.varint(escapes.size());
  for (auto e : escapes) w.svarint(e);
  Bytes raw = w.take();
  return {lzh_compress({raw.data(), raw.size()})};
}

std::vector<std::int64_t> decode_codes(std::span<const std::uint8_t> blob,
                                       std::size_t n) {
  Bytes raw = lzh_decompress(blob);
  ByteReader r({raw.data(), raw.size()});
  auto lengths = deserialize_code_lengths(r);
  HuffmanDecoder dec(lengths);
  std::size_t bits_size = r.varint();
  BitReader br(r.bytes(bits_size));
  std::vector<std::int64_t> codes(n);
  std::vector<std::size_t> escape_at;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t s = dec.decode(br);
    if (s == 0) {
      escape_at.push_back(i);
      codes[i] = 0;
    } else {
      codes[i] = static_cast<std::int64_t>(s) - kRadius;
    }
  }
  std::size_t n_escape = r.varint();
  if (n_escape != escape_at.size()) throw std::runtime_error("sperr: escape mismatch");
  for (std::size_t j = 0; j < n_escape; ++j) codes[escape_at[j]] = r.svarint();
  return codes;
}

}  // namespace

Bytes SperrCompressor::compress(NdConstView<double> data, double eb_abs) {
  if (eb_abs <= 0) throw std::invalid_argument("sperr: tolerance must be positive");
  const Dims dims = data.dims();
  const std::size_t n = dims.count();
  const unsigned levels = cdf97_levels(dims);
  const unsigned rank = static_cast<unsigned>(dims.rank());
  const double step = quant_step(eb_abs, levels, rank);

  // Forward transform + uniform quantization of the coefficients.
  std::vector<double> coeffs(data.span().begin(), data.span().end());
  cdf97_forward({coeffs.data(), dims}, levels);
  std::vector<std::int64_t> codes(n);
  parallel_for(0, n, [&](std::size_t i) {
    codes[i] = std::llround(coeffs[i] / step);
  }, /*grain=*/1 << 14);
  QuantizedPayload payload = encode_codes(codes);

  // Self-decode and record exact corrections for every tolerance violation —
  // SPERR's L∞ guarantee mechanism (and its principal speed cost).
  std::vector<double> recon(n);
  parallel_for(0, n, [&](std::size_t i) {
    recon[i] = static_cast<double>(codes[i]) * step;
  }, /*grain=*/1 << 14);
  cdf97_inverse({recon.data(), dims}, levels);
  std::vector<std::pair<std::size_t, std::int64_t>> corrections;
  for (std::size_t i = 0; i < n; ++i) {
    const double err = static_cast<double>(data[i]) - recon[i];
    if (std::abs(err) > eb_abs) {
      corrections.emplace_back(i, std::llround(err / eb_abs));
    }
  }

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.f64(eb_abs);
  w.varint(levels);
  w.varint(payload.blob.size());
  w.bytes(payload.blob);
  ByteWriter cw;
  cw.varint(corrections.size());
  std::size_t prev = 0;
  for (auto [idx, q] : corrections) {
    cw.varint(idx - prev);
    cw.svarint(q);
    prev = idx;
  }
  Bytes corr = cw.take();
  Bytes corr_packed = lzh_compress({corr.data(), corr.size()});
  w.varint(corr_packed.size());
  w.bytes(corr_packed);
  return w.take();
}

std::vector<double> SperrCompressor::decompress(const Bytes& archive) {
  ByteReader r({archive.data(), archive.size()});
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  const Dims dims = Dims::of_rank(rank, extents);
  const double eb = r.f64();
  const unsigned levels = static_cast<unsigned>(r.varint());
  const double step = quant_step(eb, levels, static_cast<unsigned>(rank));
  const std::size_t n = dims.count();

  std::size_t blob_size = r.varint();
  auto codes = decode_codes(r.bytes(blob_size), n);
  std::vector<double> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = static_cast<double>(codes[i]) * step;
  }, /*grain=*/1 << 14);
  cdf97_inverse({out.data(), dims}, levels);

  std::size_t corr_size = r.varint();
  Bytes corr = lzh_decompress(r.bytes(corr_size));
  ByteReader cr({corr.data(), corr.size()});
  std::size_t n_corr = cr.varint();
  std::size_t idx = 0;
  for (std::size_t j = 0; j < n_corr; ++j) {
    idx += cr.varint();
    out[idx] += static_cast<double>(cr.svarint()) * eb;
  }
  return out;
}

}  // namespace ipcomp
