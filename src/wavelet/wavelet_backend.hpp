// CDF 9/7 wavelet backend behind the ProgressiveBackend seam.
//
// Write side (per block): gather the block into a dense double buffer
// (non-finite values sanitized to 0 and restored through corrections) →
// multi-level CDF 9/7 forward transform → uniform coefficient quantization
// to negabinary codes (coefficient-domain outliers for codes past the cap) →
// the shared bitplane/codec stages.  "Levels" are the wavelet subband
// levels: index 0 = finest detail band, index W = the approximation band.
//
// Progressive error control: the inverse transform is linear, so the field
// reconstructed from partial codes equals the full reconstruction minus the
// inverse transform of the dropped low bits.  Compression measures that
// inverse exactly, plane by plane, and stores per-level loss tables in
// *value* units (quantization-step granularity) — the reader's amplification
// hook is therefore 1.0 and the shared plane planner stays sound and tight.
// Full-fidelity L∞ correctness is guaranteed SPERR-style: compression
// self-decodes (bitwise the reader's reconstruction path), records an exact
// spatial correction for every point still violating the bound, and stores
// them in the block's auxiliary segment (kSegAux), applied after every
// reconstruction.
#pragma once

#include "core/backend.hpp"

namespace ipcomp {

class WaveletBackend final : public ProgressiveBackend {
 public:
  BackendId id() const override { return BackendId::kWavelet; }
  const char* name() const override { return "wavelet"; }

  std::vector<std::uint64_t> level_counts(const Dims& block_dims) const override;
  bool has_aux_segment() const override { return true; }
  bool needs_work_buffer() const override { return false; }
  bool wants_delta() const override { return false; }
  Bytes metadata(const Header& h) const override;
  void validate_metadata(const Header& h) const override;
  double amplification(const Header& h, ErrorModel model,
                       unsigned l) const override;

  BlockCompressResult compress_block(
      const float* original, float* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const override;
  BlockCompressResult compress_block(
      const double* original, double* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const override;

  void reconstruct(const Header& h, const BlockCodes& bc,
                   float* field) const override;
  void reconstruct(const Header& h, const BlockCodes& bc,
                   double* field) const override;
  void refine(const Header& h, const BlockCodes& bc,
              const std::vector<std::vector<std::uint32_t>>& delta,
              float* field) const override;
  void refine(const Header& h, const BlockCodes& bc,
              const std::vector<std::vector<std::uint32_t>>& delta,
              double* field) const override;
};

}  // namespace ipcomp
