// CDF 9/7 biorthogonal wavelet transform via lifting (SPERR's decorrelator).
//
// Multi-level, multi-dimensional, arbitrary extents (odd lengths put the
// extra sample in the low band), symmetric boundary extension.  The forward
// and inverse transforms are exact inverses up to floating-point rounding.
#pragma once

#include <cstddef>
#include <vector>

#include "util/dims.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

/// Number of dyadic levels used for the given dims (coarsest band >= 8).
unsigned cdf97_levels(const Dims& dims);

/// In-place forward transform with `levels` dyadic levels.
void cdf97_forward(NdView<double> data, unsigned levels);

/// In-place inverse transform.
void cdf97_inverse(NdView<double> data, unsigned levels);

namespace cdf97_detail {
/// One forward/inverse pass over a single line of length n with stride s;
/// scratch must hold n doubles.  Exposed for unit tests.
void forward_line(double* x, std::size_t n, std::size_t stride, double* scratch);
void inverse_line(double* x, std::size_t n, std::size_t stride, double* scratch);
}  // namespace cdf97_detail

}  // namespace ipcomp
