#include "wavelet/wavelet_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bitplane/negabinary.hpp"
#include "core/blocks.hpp"
#include "util/ndarray.hpp"
#include "util/parallel.hpp"
#include "wavelet/cdf97.hpp"

namespace ipcomp {

namespace {

constexpr std::uint8_t kMetaVersion = 1;
/// Step scale this backend writes into v3 metadata AND quantizes with; the
/// two must agree or reconstruction dequantizes with a different step than
/// compression measured its corrections and loss tables against.
constexpr double kStepScale = 1.0;
/// Coefficient codes past this magnitude become outliers (matches the
/// interpolation quantizer's headroom so δy sums cannot overflow).
constexpr std::int64_t kCoeffCap = std::int64_t{1} << 30;

/// Subband geometry of a block: W dyadic transform levels partition the
/// coefficients into W detail bands (level index 0 = finest) plus the
/// approximation band (level index W).  Band w's coefficients occupy the
/// origin-anchored box of extents ext(w) minus the box of extents ext(w+1),
/// with ext(0) = dims and per-dim halving ext(w+1) = (ext(w)+1)/2 — exactly
/// the layout cdf97_forward leaves behind.
struct SubbandPlan {
  unsigned w_levels = 0;  // W
  unsigned n_levels = 0;  // W + 1 (details + approximation)
  // ext[w][d]: box extents after w halvings, w in [0, W].
  std::vector<std::array<std::size_t, kMaxRank>> ext;

  static SubbandPlan analyze(const Dims& dims) {
    SubbandPlan p;
    p.w_levels = cdf97_levels(dims);
    p.n_levels = p.w_levels + 1;
    p.ext.resize(p.w_levels + 1);
    for (std::size_t d = 0; d < dims.rank(); ++d) p.ext[0][d] = dims[d];
    for (unsigned w = 1; w <= p.w_levels; ++w) {
      for (std::size_t d = 0; d < dims.rank(); ++d) {
        p.ext[w][d] = (p.ext[w - 1][d] + 1) / 2;
      }
    }
    return p;
  }

  std::size_t box_count(const Dims& dims, unsigned w) const {
    std::size_t n = 1;
    for (std::size_t d = 0; d < dims.rank(); ++d) n *= ext[w][d];
    return n;
  }
};

/// Quantization step for one block: SPERR's heuristic divisor keeps the
/// coefficient error small enough that few spatial corrections are needed;
/// the archived step_scale (v3 metadata) is a forward-compatible knob.
double quant_step(double eb, const Dims& dims, unsigned w_levels,
                  double step_scale) {
  const double div =
      1.0 + 0.5 * static_cast<double>(w_levels) * static_cast<double>(dims.rank());
  return step_scale * eb / div;
}

double parse_step_scale(const Bytes& meta) {
  if (meta.size() != 9) {
    throw std::runtime_error("wavelet: bad backend metadata size");
  }
  if (meta[0] != kMetaVersion) {
    throw std::runtime_error("wavelet: unknown backend metadata version");
  }
  ByteReader r({meta.data(), meta.size()});
  r.u8();
  const double scale = r.f64();
  if (!std::isfinite(scale) || scale <= 0.0 || scale > 1e9) {
    throw std::runtime_error("wavelet: bad step scale in backend metadata");
  }
  return scale;
}

/// Visit every slot of subband level `li` in deterministic order:
/// fn(slot, dense_index), slots counted row-major over the level's box with
/// the next-finer approximation box skipped.
template <typename Fn>
void for_each_level_slot(const Dims& dims, const SubbandPlan& plan, unsigned li,
                         Fn&& fn) {
  const std::size_t rank = dims.rank();
  const auto strides = dims.strides();
  const auto& outer = plan.ext[li];
  const bool has_inner = li < plan.w_levels;
  const auto& inner = plan.ext[std::min<unsigned>(li + 1, plan.w_levels)];

  std::array<std::size_t, kMaxRank> coord{};
  std::size_t slot = 0;
  std::size_t lin = 0;
  for (;;) {
    bool inside = has_inner;
    if (has_inner) {
      for (std::size_t d = 0; d < rank; ++d) {
        if (coord[d] >= inner[d]) {
          inside = false;
          break;
        }
      }
    }
    if (!inside) fn(slot++, lin);
    // Odometer increment (row-major: last dimension fastest).
    std::size_t d = rank;
    for (;;) {
      if (d == 0) return;
      --d;
      ++coord[d];
      lin += strides[d];
      if (coord[d] < outer[d]) break;
      lin -= coord[d] * strides[d];
      coord[d] = 0;
    }
  }
}

/// Scatter/gather between a dense block buffer and the block's strided span
/// of the enclosing field.  Rows along the last dimension are contiguous in
/// both layouts.
template <typename FieldT, typename RowFn>
void for_each_block_row(const Dims& bd,
                        const std::array<std::size_t, kMaxRank>& field_strides,
                        FieldT* field_origin, RowFn&& fn) {
  const std::size_t row = bd[bd.rank() - 1];
  const std::size_t lines = bd.count() / row;
  parallel_for(0, lines, [&](std::size_t line) {
    fn(field_origin + block_line_offset(bd, field_strides, line), line * row,
       row);
  }, /*grain=*/std::max<std::size_t>(1, 32768 / row));
}

/// Parse + apply the auxiliary segment's spatial corrections: exact original
/// values overwriting points of the block, in dense block indexing.
template <typename T>
void apply_corrections(const Bytes& aux, const Dims& bd,
                       const std::array<std::size_t, kMaxRank>& field_strides,
                       T* field_origin) {
  if (aux.empty()) throw std::runtime_error("wavelet: missing correction segment");
  ByteReader r({aux.data(), aux.size()});
  const std::size_t n = bd.count();
  std::size_t count = r.varint();
  if (count > n) throw std::runtime_error("wavelet: forged correction count");
  const std::size_t rank = bd.rank();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < count; ++i) {
    idx += r.varint();
    if (idx >= n) throw std::runtime_error("wavelet: correction index out of range");
    const double value = r.f64();
    // Dense block index -> strided field offset.
    std::size_t rem = idx;
    std::size_t off = 0;
    for (std::size_t d = rank; d-- > 0;) {
      off += (rem % bd[d]) * field_strides[d];
      rem /= bd[d];
    }
    field_origin[off] = static_cast<T>(value);
  }
}

/// Reconstruct the dense block from dequantized coefficients.  Shared by the
/// reader path and the compression self-check so both are bitwise identical.
std::vector<double> inverse_block(std::vector<double> coeffs, const Dims& bd,
                                  unsigned w_levels) {
  cdf97_inverse({coeffs.data(), bd}, w_levels);
  return coeffs;
}

/// Dequantized coefficient field from a reader-side BlockCodes.
std::vector<double> dequantize_coeffs(const BlockCodes& bc,
                                      const SubbandPlan& plan, double step) {
  std::vector<double> coeffs(bc.dims.count(), 0.0);
  for (unsigned li = 0; li < plan.n_levels; ++li) {
    for_each_level_slot(bc.dims, plan, li, [&](std::size_t slot, std::size_t idx) {
      double raw;
      if (block_outlier(bc, li, slot, raw)) {
        coeffs[idx] = raw;
      } else {
        coeffs[idx] =
            static_cast<double>(negabinary_decode(bc.codes[li][slot])) * step;
      }
    });
  }
  return coeffs;
}

/// Exact per-level truncation-loss table, in (2·eb) units: loss[d] bounds the
/// L∞ field error of dropping the level's d lowest stored planes.  Built by
/// linearity: the dropped-bit field's inverse transform is accumulated plane
/// by plane and its max |value| measured — no operator-norm slack.
std::vector<std::uint64_t> measure_loss_table(
    const std::vector<std::uint32_t>& codes, unsigned n_planes, const Dims& bd,
    const SubbandPlan& plan, unsigned li, double step, double eb) {
  std::vector<std::uint64_t> loss(n_planes + 1, 0);
  const std::size_t n = bd.count();
  std::vector<double> err(n, 0.0);   // inverse of the dropped bits so far
  std::vector<double> bits(n, 0.0);  // one plane's coefficient contribution
  double worst = 0.0;
  for (unsigned d = 1; d <= n_planes; ++d) {
    const unsigned k = d - 1;
    const double weight =
        ((k & 1u) == 0 ? 1.0 : -1.0) * static_cast<double>(std::uint64_t{1} << k) *
        step;
    bool any = false;
    std::fill(bits.begin(), bits.end(), 0.0);
    for_each_level_slot(bd, plan, li, [&](std::size_t slot, std::size_t idx) {
      if ((codes[slot] >> k) & 1u) {
        bits[idx] = weight;
        any = true;
      }
    });
    if (any) {
      cdf97_inverse({bits.data(), bd}, plan.w_levels);
      for (std::size_t i = 0; i < n; ++i) {
        err[i] += bits[i];
        worst = std::max(worst, std::abs(err[i]));
      }
    }
    const double units = worst / (2.0 * eb);
    loss[d] = units >= 4.0e18 ? std::uint64_t{4000000000000000000u}
                              : static_cast<std::uint64_t>(std::ceil(units));
  }
  return loss;
}

template <typename T>
BlockCompressResult compress_impl(const T* original, const Dims& bd,
                                  const std::array<std::size_t, kMaxRank>& estrides,
                                  double eb, const Options& opt,
                                  std::uint32_t block) {
  const SubbandPlan plan = SubbandPlan::analyze(bd);
  const double step = quant_step(eb, bd, plan.w_levels, kStepScale);
  const std::size_t n = bd.count();

  // Gather the strided block into a dense double buffer; non-finite values
  // would poison the transform, so they enter as 0 and leave as corrections.
  std::vector<double> buf(n);
  for_each_block_row(bd, estrides, original, [&](const T* src, std::size_t dst0,
                                                 std::size_t row) {
    for (std::size_t i = 0; i < row; ++i) {
      const double v = static_cast<double>(src[i]);
      buf[dst0 + i] = std::isfinite(v) ? v : 0.0;
    }
  });
  cdf97_forward({buf.data(), bd}, plan.w_levels);

  const unsigned L = plan.n_levels;
  std::vector<LevelScratch> levels(L);
  std::vector<double> deq(n);  // dequantized coefficients, for the self-check
  for (unsigned li = 0; li < L; ++li) {
    LevelScratch& scratch = levels[li];
    scratch.codes.assign(plan.box_count(bd, li) -
                             (li < plan.w_levels ? plan.box_count(bd, li + 1) : 0),
                         0);
    for_each_level_slot(bd, plan, li, [&](std::size_t slot, std::size_t idx) {
      const double c = buf[idx];
      const double scaled = c / step;
      if (!std::isfinite(scaled) ||
          scaled >= static_cast<double>(kCoeffCap) ||
          scaled <= -static_cast<double>(kCoeffCap)) {
        scratch.outliers.emplace_back(slot, c);
        deq[idx] = c;
        return;
      }
      const std::int64_t code = std::llround(scaled);
      scratch.codes[slot] = negabinary_encode(code);
      deq[idx] = static_cast<double>(code) * step;
    });
  }

  // Self-check: decode through the exact reader reconstruction path and
  // record an exact spatial correction for every point whose error still
  // exceeds the bound (including sanitized non-finite points).  This is what
  // makes the full-fidelity L∞ guarantee unconditional.
  std::vector<double> recon = inverse_block(std::move(deq), bd, plan.w_levels);
  ByteWriter corrections;
  {
    // Serial row walk in dense order (the delta-varint stream needs strictly
    // increasing indices regardless of thread count).
    ByteWriter body;
    std::size_t n_corr = 0;
    std::size_t prev = 0;
    const std::size_t row = bd[bd.rank() - 1];
    const std::size_t lines = n / row;
    for (std::size_t line = 0; line < lines; ++line) {
      const T* src = original + block_line_offset(bd, estrides, line);
      const std::size_t dst0 = line * row;
      for (std::size_t i = 0; i < row; ++i) {
        const double o = static_cast<double>(src[i]);
        const double r = static_cast<double>(static_cast<T>(recon[dst0 + i]));
        if (!(std::abs(o - r) <= eb)) {
          body.varint(dst0 + i - prev);
          body.f64(o);
          prev = dst0 + i;
          ++n_corr;
        }
      }
    }
    corrections.varint(n_corr);
    corrections.bytes(body.take());
  }

  BlockCompressResult out;
  out.levels.resize(L);
  out.segments.emplace_back(SegmentId{kSegAux, 0, 0, block}, corrections.take());

  for (unsigned li = 0; li < L; ++li) {
    LevelScratch& scratch = levels[li];
    std::sort(scratch.outliers.begin(), scratch.outliers.end());
    LevelHeader& lh = out.levels[li];
    lh.count = scratch.codes.size();
    lh.outlier_count = scratch.outliers.size();
    lh.progressive = scratch.codes.size() >= opt.progressive_threshold;

    const std::uint16_t level_tag = static_cast<std::uint16_t>(li + 1);
    if (!lh.progressive) {
      lh.n_planes = 0;
      lh.loss.assign(1, 0);
      out.segments.emplace_back(
          SegmentId{kSegBase, level_tag, 0, block},
          serialize_base_segment(scratch, false, opt.codec));
      continue;
    }

    // One fused sweep yields plane count + plane split; the loss table is
    // NOT the negabinary one — it stays the exact measured table (inverse
    // transforms of the dropped bits), so with_loss is off.
    LevelEncoding enc = encode_level(scratch.codes, /*with_loss=*/false);
    lh.n_planes = enc.n_planes;
    lh.loss =
        measure_loss_table(scratch.codes, enc.n_planes, bd, plan, li, step, eb);

    out.segments.emplace_back(
        SegmentId{kSegBase, level_tag, 0, block},
        serialize_base_segment(scratch, true, opt.codec));
    append_plane_segments(scratch.codes, std::move(enc.planes), level_tag,
                          block, opt, out.segments);
  }
  return out;
}

template <typename T>
void reconstruct_impl(const Header& h, const BlockCodes& bc, T* field) {
  const SubbandPlan plan = SubbandPlan::analyze(bc.dims);
  const double scale = parse_step_scale(h.backend_meta);
  const double step = quant_step(h.eb, bc.dims, plan.w_levels, scale);
  std::vector<double> recon =
      inverse_block(dequantize_coeffs(bc, plan, step), bc.dims, plan.w_levels);
  const auto field_strides = h.dims.strides();
  T* origin = field + bc.origin;
  for_each_block_row(bc.dims, field_strides, origin,
                     [&](T* dst, std::size_t src0, std::size_t row) {
    for (std::size_t i = 0; i < row; ++i) {
      dst[i] = static_cast<T>(recon[src0 + i]);
    }
  });
  apply_corrections(bc.aux, bc.dims, field_strides, origin);
}

}  // namespace

std::vector<std::uint64_t> WaveletBackend::level_counts(
    const Dims& block_dims) const {
  const SubbandPlan plan = SubbandPlan::analyze(block_dims);
  std::vector<std::uint64_t> counts(plan.n_levels);
  for (unsigned li = 0; li < plan.n_levels; ++li) {
    counts[li] = plan.box_count(block_dims, li) -
                 (li < plan.w_levels ? plan.box_count(block_dims, li + 1) : 0);
  }
  return counts;
}

Bytes WaveletBackend::metadata(const Header&) const {
  ByteWriter w;
  w.u8(kMetaVersion);
  w.f64(kStepScale);
  return w.take();
}

void WaveletBackend::validate_metadata(const Header& h) const {
  parse_step_scale(h.backend_meta);
}

double WaveletBackend::amplification(const Header&, ErrorModel, unsigned) const {
  // Loss tables are measured in the value domain at compression time (exact
  // inverse transforms of the dropped bits), so no further amplification.
  return 1.0;
}

BlockCompressResult WaveletBackend::compress_block(
    const float* original, float* /*work*/, const Dims& block_dims,
    const std::array<std::size_t, kMaxRank>& estrides, double eb,
    const Options& opt, std::uint32_t block) const {
  return compress_impl(original, block_dims, estrides, eb, opt, block);
}

BlockCompressResult WaveletBackend::compress_block(
    const double* original, double* /*work*/, const Dims& block_dims,
    const std::array<std::size_t, kMaxRank>& estrides, double eb,
    const Options& opt, std::uint32_t block) const {
  return compress_impl(original, block_dims, estrides, eb, opt, block);
}

void WaveletBackend::reconstruct(const Header& h, const BlockCodes& bc,
                                 float* field) const {
  reconstruct_impl(h, bc, field);
}

void WaveletBackend::reconstruct(const Header& h, const BlockCodes& bc,
                                 double* field) const {
  reconstruct_impl(h, bc, field);
}

void WaveletBackend::refine(const Header& h, const BlockCodes& bc,
                            const std::vector<std::vector<std::uint32_t>>&,
                            float* field) const {
  // Rebuilding from the updated codes costs the same as a delta transform
  // (inverse cost is sparsity-independent) and is drift-free: stepwise
  // retrieval ends bitwise identical to a one-shot request.
  reconstruct_impl(h, bc, field);
}

void WaveletBackend::refine(const Header& h, const BlockCodes& bc,
                            const std::vector<std::vector<std::uint32_t>>&,
                            double* field) const {
  reconstruct_impl(h, bc, field);
}

}  // namespace ipcomp
