// ZFP-style fixed-accuracy block transform compressor (paper §6.1.3;
// Lindstrom, TVCG'14), reimplemented from scratch.
//
// Pipeline per 4^d block: block-floating-point (common exponent) → fixed
// point int64 → separable lifted decorrelating transform → 64-bit negabinary
// → sequency-ordered bitplanes → zfp's group-tested (adaptive unary)
// bitplane coding.  Fixed-accuracy mode derives the number of encoded planes
// per block from the tolerance and the block exponent; all-small blocks
// collapse to a single flag bit.
//
// Deviations from the reference implementation: exponent storage is 12 bits
// unconditionally, the sequency permutation is (coordinate-sum, index)
// ordered, and blocks are grouped into independently coded chunks so
// compression and decompression parallelize (reference zfp is serial per
// stream).  The transform and plane coder match the published design.
#pragma once

#include "baselines/baseline.hpp"

namespace ipcomp {

class ZfpCompressor final : public Compressor {
 public:
  std::string name() const override { return "ZFP"; }

  /// eb_abs is the fixed-accuracy tolerance (guaranteed L∞ bound).
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;

  static Dims archive_dims(const Bytes& archive);
};

namespace zfp_detail {

/// Forward/inverse lifting transform on 4 elements with stride s.
void fwd_lift(std::int64_t* p, std::size_t s);
void inv_lift(std::int64_t* p, std::size_t s);

/// 64-bit negabinary.
std::uint64_t nb64_encode(std::int64_t v);
std::int64_t nb64_decode(std::uint64_t u);

}  // namespace zfp_detail

}  // namespace ipcomp
