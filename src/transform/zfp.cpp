#include "transform/zfp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "io/bitstream.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace zfp_detail {

void fwd_lift(std::int64_t* p, std::size_t s) {
  std::int64_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  // Non-orthogonal transform (1/16 * [4 4 4 4; 5 1 -1 -5; -4 4 4 -4; -2 6 -6 2]).
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void inv_lift(std::int64_t* p, std::size_t s) {
  std::int64_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

namespace {
constexpr std::uint64_t kM64 = 0xAAAAAAAAAAAAAAAAull;
}

std::uint64_t nb64_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) + kM64) ^ kM64;
}

std::int64_t nb64_decode(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kM64) - kM64);
}

}  // namespace zfp_detail

namespace {

using zfp_detail::fwd_lift;
using zfp_detail::inv_lift;
using zfp_detail::nb64_decode;
using zfp_detail::nb64_encode;

constexpr int kBlockEdge = 4;
constexpr int kFixedPointBits = 58;  // |x| < 2^emax maps to |v| < 2^58
constexpr int kExpBias = 1075;       // 12-bit biased block exponent

/// Sequency permutation: coefficients ordered by coordinate sum.
std::vector<int> sequency_perm(unsigned rank) {
  int count = 1;
  for (unsigned d = 0; d < rank; ++d) count *= kBlockEdge;
  std::vector<int> perm(count);
  std::iota(perm.begin(), perm.end(), 0);
  auto coord_sum = [rank](int idx) {
    int s = 0;
    for (unsigned d = 0; d < rank; ++d) {
      s += idx % kBlockEdge;
      idx /= kBlockEdge;
    }
    return s;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](int a, int b) { return coord_sum(a) < coord_sum(b); });
  return perm;
}

/// Planes to encode for a block with exponent `emax` under `tolerance`:
/// bit k of the fixed-point representation weighs 2^(k - kFixedPointBits +
/// emax); the transform's inverse amplification is covered by a 2^(rank+2)
/// safety factor.
int min_plane(double tolerance, int emax, unsigned rank) {
  const int tol_exp = static_cast<int>(std::floor(std::log2(tolerance)));
  return tol_exp + kFixedPointBits - emax - static_cast<int>(rank) - 2;
}

struct BlockCodec {
  unsigned rank;
  int block_count;           // 4^rank
  std::vector<int> perm;

  explicit BlockCodec(unsigned r) : rank(r), perm(sequency_perm(r)) {
    block_count = static_cast<int>(perm.size());
  }

  /// zfp's adaptive group-tested bitplane coder (encode_ints).
  void encode(BitWriter& bw, const std::int64_t* fixed, int kmin) const {
    std::uint64_t nb[64];
    for (int i = 0; i < block_count; ++i) nb[i] = nb64_encode(fixed[perm[i]]);
    const unsigned size = static_cast<unsigned>(block_count);
    unsigned n = 0;
    for (int k = 63; k >= kmin; --k) {
      std::uint64_t x = 0;
      for (unsigned i = 0; i < size; ++i) x |= ((nb[i] >> k) & 1u) << i;
      bw.put_bits(x, n);
      // n reaches 64 once every sample in a 3D block is significant; a plain
      // x >>= n would then be UB (shift by the full width).
      x = (n < 64) ? (x >> n) : 0;
      unsigned m = n;
      // Unary run-length encoding of the significance frontier.
      while (m < size) {
        bw.put_bit(x != 0);
        if (x == 0) break;
        while (m < size - 1) {
          std::uint32_t bit = static_cast<std::uint32_t>(x & 1u);
          bw.put_bit(bit);
          if (bit) break;
          x >>= 1;
          ++m;
        }
        x >>= 1;
        ++m;
      }
      n = std::max(n, m);
    }
  }

  void decode(BitReader& br, std::int64_t* fixed, int kmin) const {
    std::uint64_t nb[64] = {};
    const unsigned size = static_cast<unsigned>(block_count);
    unsigned n = 0;
    for (int k = 63; k >= kmin; --k) {
      std::uint64_t x = br.get_bits(n);
      unsigned m = n;
      while (m < size) {
        if (!br.get_bit()) break;
        while (m < size - 1) {
          if (br.get_bit()) break;
          ++m;
        }
        x |= std::uint64_t{1} << m;
        ++m;
      }
      n = std::max(n, m);
      for (unsigned i = 0; x; ++i, x >>= 1) {
        if (x & 1u) nb[i] |= std::uint64_t{1} << k;
      }
    }
    for (int i = 0; i < block_count; ++i) fixed[perm[i]] = nb64_decode(nb[i]);
  }
};

struct BlockGrid {
  Dims dims;
  unsigned rank;
  std::size_t blocks_per_dim[kMaxRank] = {};
  std::size_t n_blocks = 1;

  explicit BlockGrid(const Dims& d) : dims(d), rank(static_cast<unsigned>(d.rank())) {
    for (unsigned i = 0; i < rank; ++i) {
      blocks_per_dim[i] = (d[i] + kBlockEdge - 1) / kBlockEdge;
      n_blocks *= blocks_per_dim[i];
    }
  }

  /// Gather one block with clamped (edge-replicated) padding.
  void gather(const double* src, std::size_t block, double* out) const {
    std::size_t bc[kMaxRank];
    std::size_t rem = block;
    for (unsigned i = rank; i-- > 0;) {
      bc[i] = rem % blocks_per_dim[i];
      rem /= blocks_per_dim[i];
    }
    const auto strides = dims.strides();
    int count = 1;
    for (unsigned i = 0; i < rank; ++i) count *= kBlockEdge;
    for (int j = 0; j < count; ++j) {
      std::size_t idx = 0;
      int t = j;
      for (unsigned i = rank; i-- > 0;) {
        std::size_t c = bc[i] * kBlockEdge + static_cast<std::size_t>(t % kBlockEdge);
        t /= kBlockEdge;
        c = std::min(c, dims[i] - 1);
        idx += c * strides[i];
      }
      out[j] = src[idx];
    }
  }

  /// Scatter the valid region of one block.
  void scatter(double* dst, std::size_t block, const double* in) const {
    std::size_t bc[kMaxRank];
    std::size_t rem = block;
    for (unsigned i = rank; i-- > 0;) {
      bc[i] = rem % blocks_per_dim[i];
      rem /= blocks_per_dim[i];
    }
    const auto strides = dims.strides();
    int count = 1;
    for (unsigned i = 0; i < rank; ++i) count *= kBlockEdge;
    for (int j = 0; j < count; ++j) {
      std::size_t idx = 0;
      int t = j;
      bool valid = true;
      for (unsigned i = rank; i-- > 0;) {
        std::size_t c = bc[i] * kBlockEdge + static_cast<std::size_t>(t % kBlockEdge);
        t /= kBlockEdge;
        if (c >= dims[i]) valid = false;
        idx += std::min(c, dims[i] - 1) * strides[i];
      }
      if (valid) dst[idx] = in[j];
    }
  }
};

void transform_block(std::int64_t* v, unsigned rank, bool forward) {
  // Apply the 4-point lifting along each dimension of the 4^rank block.
  int count = 1;
  for (unsigned d = 0; d < rank; ++d) count *= kBlockEdge;
  for (unsigned d = 0; d < rank; ++d) {
    // stride between consecutive elements along dim d (row-major, dim rank-1
    // fastest): stride = 4^(rank-1-d)
    std::size_t stride = 1;
    for (unsigned i = d + 1; i < rank; ++i) stride *= kBlockEdge;
    const std::size_t lines = static_cast<std::size_t>(count) / kBlockEdge;
    for (std::size_t line = 0; line < lines; ++line) {
      // Base index of this line: distribute `line` over the other dims.
      std::size_t lo = line % stride;
      std::size_t hi = line / stride;
      std::size_t base = hi * stride * kBlockEdge + lo;
      if (forward) {
        fwd_lift(v + base, stride);
      } else {
        inv_lift(v + base, stride);
      }
    }
  }
}

void encode_block(BitWriter& bw, const BlockCodec& codec, const double* vals,
                  double tolerance) {
  double amax = 0.0;
  for (int i = 0; i < codec.block_count; ++i) amax = std::max(amax, std::abs(vals[i]));
  int emax = 0;
  if (amax > 0.0) {
    std::frexp(amax, &emax);  // amax < 2^emax
  }
  if (amax == 0.0 || std::ldexp(1.0, emax) <= tolerance * 0.5 ||
      min_plane(tolerance, emax, codec.rank) > 63) {
    bw.put_bit(0);  // block quantizes to all-zero within tolerance
    return;
  }
  bw.put_bit(1);
  bw.put_bits(static_cast<std::uint64_t>(emax + kExpBias), 12);
  std::int64_t fixed[64];
  const double scale = std::ldexp(1.0, kFixedPointBits - emax);
  for (int i = 0; i < codec.block_count; ++i) {
    fixed[i] = static_cast<std::int64_t>(vals[i] * scale);
  }
  transform_block(fixed, codec.rank, /*forward=*/true);
  const int kmin = std::clamp(min_plane(tolerance, emax, codec.rank), 0, 63);
  codec.encode(bw, fixed, kmin);
}

void decode_block(BitReader& br, const BlockCodec& codec, double* vals,
                  double tolerance) {
  if (br.get_bit() == 0) {
    std::fill(vals, vals + codec.block_count, 0.0);
    return;
  }
  const int emax = static_cast<int>(br.get_bits(12)) - kExpBias;
  std::int64_t fixed[64];
  const int kmin = std::clamp(min_plane(tolerance, emax, codec.rank), 0, 63);
  codec.decode(br, fixed, kmin);
  transform_block(fixed, codec.rank, /*forward=*/false);
  const double scale = std::ldexp(1.0, emax - kFixedPointBits);
  for (int i = 0; i < codec.block_count; ++i) {
    vals[i] = static_cast<double>(fixed[i]) * scale;
  }
}

}  // namespace

Bytes ZfpCompressor::compress(NdConstView<double> data, double eb_abs) {
  if (eb_abs <= 0) throw std::invalid_argument("zfp: tolerance must be positive");
  const Dims dims = data.dims();
  if (dims.rank() > 3) {
    // Block buffers are sized for 4^3; reference zfp also stops at 4-D but
    // this implementation does not need it (all evaluated data is <= 3-D).
    throw std::invalid_argument("zfp: only 1-D to 3-D data is supported");
  }
  const BlockGrid grid(dims);
  const BlockCodec codec(grid.rank);

  // Independent chunks of blocks so OpenMP can work both directions.
  const std::size_t n_chunks = std::min<std::size_t>(
      grid.n_blocks, static_cast<std::size_t>(thread_count()) * 4);
  const std::size_t per_chunk = (grid.n_blocks + n_chunks - 1) / n_chunks;
  std::vector<Bytes> chunks(n_chunks);

  parallel_for(0, n_chunks, [&](std::size_t c) {
    BitWriter bw;
    double vals[64];
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(grid.n_blocks, begin + per_chunk);
    for (std::size_t b = begin; b < end; ++b) {
      grid.gather(data.data(), b, vals);
      encode_block(bw, codec, vals, eb_abs);
    }
    chunks[c] = bw.finish();
  }, /*grain=*/1);

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.f64(eb_abs);
  w.varint(n_chunks);
  for (auto& ch : chunks) w.varint(ch.size());
  for (auto& ch : chunks) w.bytes(ch);
  return w.take();
}

std::vector<double> ZfpCompressor::decompress(const Bytes& archive) {
  ByteReader r({archive.data(), archive.size()});
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  const Dims dims = Dims::of_rank(rank, extents);
  const double tolerance = r.f64();
  const std::size_t n_chunks = r.varint();
  std::vector<std::size_t> sizes(n_chunks);
  for (auto& s : sizes) s = r.varint();
  std::vector<std::span<const std::uint8_t>> payloads(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) payloads[c] = r.bytes(sizes[c]);

  const BlockGrid grid(dims);
  const BlockCodec codec(grid.rank);
  const std::size_t per_chunk = (grid.n_blocks + n_chunks - 1) / n_chunks;
  std::vector<double> out(dims.count(), 0.0);

  parallel_for(0, n_chunks, [&](std::size_t c) {
    BitReader br(payloads[c]);
    double vals[64];
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(grid.n_blocks, begin + per_chunk);
    for (std::size_t b = begin; b < end; ++b) {
      decode_block(br, codec, vals, tolerance);
      grid.scatter(out.data(), b, vals);
    }
  }, /*grain=*/1);
  return out;
}

Dims ZfpCompressor::archive_dims(const Bytes& archive) {
  ByteReader r({archive.data(), archive.size()});
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  return Dims::of_rank(rank, extents);
}

}  // namespace ipcomp
