// Deterministic lattice value-noise with fractal octaves.
//
// The synthetic field generators need smooth, band-limited randomness that is
// identical across runs and platforms.  Lattice values come from a SplitMix64
// hash of the integer coordinates, interpolated with a C1 smoothstep; fBm
// stacks octaves with a persistence chosen per field (≈0.6-0.7 mimics the
// k^(-5/3)-ish spectra of the turbulence datasets).
#pragma once

#include <cmath>
#include <cstdint>

namespace ipcomp {

namespace detail {

inline std::uint64_t hash_u64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Lattice value in [-1, 1] for integer coordinates and a stream seed.
inline double lattice_value(std::int64_t ix, std::int64_t iy, std::int64_t iz,
                            std::uint64_t seed) {
  std::uint64_t h = hash_u64(static_cast<std::uint64_t>(ix) * 0x8DA6B343u ^
                             static_cast<std::uint64_t>(iy) * 0xD8163841u ^
                             static_cast<std::uint64_t>(iz) * 0xCB1AB31Fu ^ seed);
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

inline double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace detail

/// Trilinearly interpolated value noise, C1-smooth, range ≈ [-1, 1].
inline double value_noise3(double x, double y, double z, std::uint64_t seed) {
  const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const double tx = detail::smoothstep(x - fx);
  const double ty = detail::smoothstep(y - fy);
  const double tz = detail::smoothstep(z - fz);
  double c[2][2][2];
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        c[dz][dy][dx] = detail::lattice_value(ix + dx, iy + dy, iz + dz, seed);
      }
    }
  }
  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  double x00 = lerp(c[0][0][0], c[0][0][1], tx);
  double x01 = lerp(c[0][1][0], c[0][1][1], tx);
  double x10 = lerp(c[1][0][0], c[1][0][1], tx);
  double x11 = lerp(c[1][1][0], c[1][1][1], tx);
  double y0 = lerp(x00, x01, ty);
  double y1 = lerp(x10, x11, ty);
  return lerp(y0, y1, tz);
}

/// Fractal Brownian motion: `octaves` stacked noises, each at double the
/// frequency and `gain` times the amplitude of the previous.
inline double fbm3(double x, double y, double z, std::uint64_t seed,
                   int octaves, double gain = 0.65, double lacunarity = 2.0) {
  double sum = 0.0;
  double amp = 1.0;
  double freq = 1.0;
  double norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise3(x * freq, y * freq, z * freq,
                              seed + static_cast<std::uint64_t>(o) * 0x51ED2701u);
    norm += amp;
    amp *= gain;
    freq *= lacunarity;
  }
  return sum / norm;
}

}  // namespace ipcomp
