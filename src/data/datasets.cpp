#include "data/datasets.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "data/noise.hpp"
#include "io/archive.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace ipcomp {

const char* field_name(Field f) {
  switch (f) {
    case Field::kDensity: return "Density";
    case Field::kPressure: return "Pressure";
    case Field::kVelocityX: return "VelocityX";
    case Field::kVelocityY: return "VelocityY";
    case Field::kVelocityZ: return "VelocityZ";
    case Field::kWave: return "Wave";
    case Field::kSpeedX: return "SpeedX";
    case Field::kCH4: return "CH4";
  }
  return "?";
}

DataScale scale_from_env() {
  // -- read-only env probe; nothing in-process calls setenv.
  const char* v = std::getenv("IPCOMP_DATA_SCALE");  // NOLINT(concurrency-mt-unsafe)
  if (!v) return DataScale::kSmall;
  std::string s(v);
  if (s == "tiny") return DataScale::kTiny;
  if (s == "full" || s == "paper") return DataScale::kPaper;
  return DataScale::kSmall;
}

namespace {

Dims dims_for(Field f, DataScale scale) {
  switch (f) {
    case Field::kDensity:
    case Field::kPressure:
    case Field::kVelocityX:
    case Field::kVelocityY:
    case Field::kVelocityZ:
      // Miranda: 256 x 384 x 384
      switch (scale) {
        case DataScale::kTiny: return Dims{32, 48, 48};
        case DataScale::kSmall: return Dims{64, 96, 96};
        case DataScale::kPaper: return Dims{256, 384, 384};
      }
      break;
    case Field::kWave:
      // RTM: 1008 x 1008 x 352
      switch (scale) {
        case DataScale::kTiny: return Dims{63, 63, 22};
        case DataScale::kSmall: return Dims{126, 126, 44};
        case DataScale::kPaper: return Dims{1008, 1008, 352};
      }
      break;
    case Field::kSpeedX:
      // Hurricane: 100 x 500 x 500
      switch (scale) {
        case DataScale::kTiny: return Dims{25, 63, 63};
        case DataScale::kSmall: return Dims{50, 125, 125};
        case DataScale::kPaper: return Dims{100, 500, 500};
      }
      break;
    case Field::kCH4:
      // S3D: 500 x 500 x 500
      switch (scale) {
        case DataScale::kTiny: return Dims{50, 50, 50};
        case DataScale::kSmall: return Dims{100, 100, 100};
        case DataScale::kPaper: return Dims{500, 500, 500};
      }
      break;
  }
  throw std::logic_error("dims_for: unhandled field/scale");
}

const char* domain_of(Field f) {
  switch (f) {
    case Field::kDensity:
    case Field::kPressure:
    case Field::kVelocityX:
    case Field::kVelocityY:
    case Field::kVelocityZ:
      return "turbulence";
    case Field::kWave: return "seismic";
    case Field::kSpeedX: return "weather";
    case Field::kCH4: return "combustion";
  }
  return "?";
}

/// Evaluates one generator at normalized coordinates in [0,1)^3.
template <typename Fn>
NdArray<double> evaluate(const Dims& dims, Fn&& fn) {
  if (dims.rank() != 3) throw std::invalid_argument("generators are 3-D");
  NdArray<double> out(dims);
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  parallel_for(0, nz, [&](std::size_t iz) {
    const double z = static_cast<double>(iz) / static_cast<double>(nz);
    std::size_t base = iz * ny * nx;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double y = static_cast<double>(iy) / static_cast<double>(ny);
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const double x = static_cast<double>(ix) / static_cast<double>(nx);
        out[base + iy * nx + ix] = fn(x, y, z);
      }
    }
  }, /*grain=*/1);
  return out;
}

// ------------------------------------------------------------- turbulence --

// Rayleigh-Taylor-ish mixing layer: two fluids separated by a perturbed
// interface, multi-scale turbulent structure inside the mixing zone.
double turbulence_interface(double x, double y, std::uint64_t seed) {
  return 0.5 + 0.08 * std::sin(6.2831853 * (2 * x + 0.5 * y)) +
         0.06 * fbm3(4 * x, 4 * y, 0.37, seed, 4);
}

double density_at(double x, double y, double z) {
  const std::uint64_t seed = 0xD05;
  const double zi = turbulence_interface(x, y, seed);
  const double mix = std::tanh((z - zi) / 0.08);
  const double turb = fbm3(5 * x, 5 * y, 5 * z, seed + 1, 5, 0.55);
  const double envelope = std::exp(-std::pow((z - zi) / 0.25, 2.0));
  return 1.5 + 0.85 * mix + 0.35 * envelope * turb;
}

double pressure_at(double x, double y, double z) {
  const std::uint64_t seed = 0x9E5;
  // Hydrostatic-ish background plus smooth large-scale fluctuation.
  const double background = 3.0 - 1.8 * z;
  const double large = 0.5 * fbm3(2.5 * x, 2.5 * y, 2.5 * z, seed, 3, 0.55);
  const double fine = 0.04 * fbm3(6 * x, 6 * y, 6 * z, seed + 7, 3, 0.55);
  return background + large + fine;
}

double velocity_at(double x, double y, double z, int component) {
  const std::uint64_t seed = 0xF10 + static_cast<std::uint64_t>(component) * 101;
  const double zi = turbulence_interface(x, y, 0xD05);
  const double envelope = std::exp(-std::pow((z - zi) / 0.3, 2.0));
  const double shear = component == 0 ? 0.6 * std::tanh((z - zi) / 0.1) : 0.0;
  const double turb = fbm3(4 * x, 4 * y, 4 * z, seed, 5, 0.6);
  return shear + (0.25 + 0.9 * envelope) * turb;
}

// ---------------------------------------------------------------- seismic --

// Expanding Ricker wavefronts from a few sources in a layered medium.
double ricker(double t) {
  const double a = t * t;
  return (1.0 - 2.0 * a) * std::exp(-a);
}

double wave_at(double x, double y, double z) {
  const std::uint64_t seed = 0x3A7E;
  struct Source {
    double sx, sy, sz, radius, amp, width;
  };
  static const Source sources[] = {
      {0.30, 0.35, 0.20, 0.28, 1.00, 0.030},
      {0.70, 0.60, 0.15, 0.22, 0.80, 0.025},
      {0.50, 0.80, 0.40, 0.35, 0.60, 0.040},
      {0.15, 0.70, 0.55, 0.18, 0.50, 0.022},
  };
  // Layered medium modulates local propagation speed (wavefront wrinkles).
  const double layer = 1.0 + 0.15 * std::sin(18.0 * z) +
                       0.05 * fbm3(3 * x, 3 * y, 5 * z, seed, 3);
  double v = 0.0;
  for (const Source& s : sources) {
    const double dx = x - s.sx, dy = y - s.sy, dz = z - s.sz;
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz) * layer;
    const double geom = 1.0 / (1.0 + 6.0 * r);  // spherical spreading decay
    v += s.amp * geom * ricker((r - s.radius) / s.width);
  }
  // Weak coda / scattering noise.
  v += 0.004 * fbm3(8 * x, 8 * y, 8 * z, seed + 5, 3, 0.5);
  return v;
}

// ---------------------------------------------------------------- weather --

// Zonal jet + embedded cyclonic vortices + orographic roughness.
double speedx_at(double x, double y, double z) {
  const std::uint64_t seed = 0x5EED;
  // Jet profile in height (z) and latitude (y).
  const double jet = 28.0 * std::exp(-std::pow((z - 0.65) / 0.22, 2.0)) *
                     std::exp(-std::pow((y - 0.45) / 0.28, 2.0));
  struct Vortex {
    double cx, cy, strength, radius;
  };
  static const Vortex vortices[] = {
      {0.30, 0.40, 14.0, 0.10},
      {0.62, 0.55, -11.0, 0.08},
      {0.80, 0.30, 8.0, 0.12},
  };
  double v = 4.0 + jet;
  for (const Vortex& w : vortices) {
    const double dx = x - w.cx, dy = y - w.cy;
    const double r2 = (dx * dx + dy * dy) / (w.radius * w.radius);
    // Tangential x-velocity of a Gaussian vortex.
    v += -w.strength * dy / w.radius * std::exp(-r2);
  }
  v += 1.8 * (1.0 - 0.6 * z) * fbm3(5 * x, 5 * y, 8 * z, seed, 4, 0.55);
  return v;
}

// ------------------------------------------------------------- combustion --

// Lifted jet flame: CH4 mass fraction is ~0.06 in the unburnt core, decays
// across a thin, wrinkled flame surface, ~0 elsewhere (S3D-like sparsity).
double ch4_at(double x, double y, double z) {
  const std::uint64_t seed = 0xC44;
  const double dx = x - 0.5, dy = y - 0.5;
  const double r = std::sqrt(dx * dx + dy * dy);
  // Jet core radius grows with height and is wrinkled by turbulence.
  const double core = 0.08 + 0.12 * z +
                      0.035 * fbm3(5 * x, 5 * y, 3 * z, seed, 4, 0.62);
  const double front = (r - core) / 0.02;        // thin flame surface
  const double burn = 1.0 - std::exp(-6.0 * z);  // consumed downstream
  double frac = 0.06 / (1.0 + std::exp(4.0 * front));
  frac *= (1.0 - 0.85 * burn * (1.0 / (1.0 + std::exp(-4.0 * front + 2.0))));
  // Trace background + in-core fluctuation.
  frac += 2e-5 * (1.0 + fbm3(4 * x, 4 * y, 4 * z, seed + 3, 2));
  return frac;
}

}  // namespace

std::vector<DatasetSpec> standard_datasets(DataScale scale) {
  return {
      dataset_spec(Field::kDensity, scale),   dataset_spec(Field::kPressure, scale),
      dataset_spec(Field::kVelocityX, scale), dataset_spec(Field::kWave, scale),
      dataset_spec(Field::kSpeedX, scale),    dataset_spec(Field::kCH4, scale),
  };
}

DatasetSpec dataset_spec(Field f, DataScale scale) {
  return DatasetSpec{f, field_name(f), domain_of(f), dims_for(f, scale)};
}

NdArray<double> generate_field(Field f, const Dims& dims) {
  switch (f) {
    case Field::kDensity:
      return evaluate(dims, [](double x, double y, double z) { return density_at(x, y, z); });
    case Field::kPressure:
      return evaluate(dims, [](double x, double y, double z) { return pressure_at(x, y, z); });
    case Field::kVelocityX:
      return evaluate(dims, [](double x, double y, double z) { return velocity_at(x, y, z, 0); });
    case Field::kVelocityY:
      return evaluate(dims, [](double x, double y, double z) { return velocity_at(x, y, z, 1); });
    case Field::kVelocityZ:
      return evaluate(dims, [](double x, double y, double z) { return velocity_at(x, y, z, 2); });
    case Field::kWave:
      return evaluate(dims, [](double x, double y, double z) { return wave_at(x, y, z); });
    case Field::kSpeedX:
      return evaluate(dims, [](double x, double y, double z) { return speedx_at(x, y, z); });
    case Field::kCH4:
      return evaluate(dims, [](double x, double y, double z) { return ch4_at(x, y, z); });
  }
  throw std::invalid_argument("generate_field: unknown field");
}

namespace {

/// Guards the (field, scale) -> generated-field cache below; cached_field is
/// internally-synchronized, callable from any thread.
Mutex g_field_cache_mutex;
std::map<std::pair<int, int>, NdArray<double>>& field_cache()
    IPCOMP_REQUIRES(g_field_cache_mutex) {
  static std::map<std::pair<int, int>, NdArray<double>> cache;
  return cache;
}

}  // namespace

const NdArray<double>& cached_field(Field f, DataScale scale)
    IPCOMP_EXCLUDES(g_field_cache_mutex) {
  LockGuard lock(g_field_cache_mutex);
  auto& cache = field_cache();
  auto key = std::make_pair(static_cast<int>(f), static_cast<int>(scale));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, generate_field(f, dims_for(f, scale))).first;
  }
  // Safe to hand out past the unlock: std::map never moves stored values and
  // entries are never erased, so the reference is stable for process life.
  return it->second;
}

NdArray<double> sdr_raw_read(const std::string& path, const Dims& dims,
                             bool is_float32) {
  Bytes raw = read_file(path);
  const std::size_t n = dims.count();
  const std::size_t want = n * (is_float32 ? 4 : 8);
  if (raw.size() != want) {
    throw std::runtime_error("sdr_raw_read: file size " + std::to_string(raw.size()) +
                             " does not match dims (" + std::to_string(want) + ")");
  }
  NdArray<double> out(dims);
  if (is_float32) {
    for (std::size_t i = 0; i < n; ++i) {
      float v;
      std::memcpy(&v, raw.data() + 4 * i, 4);
      out[i] = static_cast<double>(v);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      double v;
      std::memcpy(&v, raw.data() + 8 * i, 8);
      out[i] = v;
    }
  }
  return out;
}

}  // namespace ipcomp
