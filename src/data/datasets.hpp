// Synthetic stand-ins for the paper's six SDRBench datasets (Table 3).
//
// The originals (Miranda turbulence, RTM seismic wavefield, Hurricane wind
// speed, S3D combustion) are public but large; this module generates
// deterministic fields that reproduce the traits the compressors react to:
// multi-scale spatial correlation, layered fronts, sharp flame surfaces and
// near-zero backgrounds (DESIGN.md §2 documents the substitution).  A raw
// reader (`sdr_raw_read`) accepts real SDRBench .dat/.f32/.f64 files so the
// harnesses can run on the original data when it is available.
#pragma once

#include <string>
#include <vector>

#include "util/dims.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

enum class Field {
  kDensity,    // turbulence: mass per unit volume
  kPressure,   // turbulence: thermodynamic pressure
  kVelocityX,  // turbulence: x velocity
  kVelocityY,  // turbulence: y velocity (for curl analysis)
  kVelocityZ,  // turbulence: z velocity (for curl analysis)
  kWave,       // seismic: wavefield evolution
  kSpeedX,     // weather: x-direction wind speed
  kCH4,        // combustion: CH4 mass fraction
};

const char* field_name(Field f);

/// Size presets.  kPaper matches Table 3; kSmall is the laptop default used
/// by the benches; kTiny keeps unit tests fast.
enum class DataScale { kTiny, kSmall, kPaper };

/// Scale selected by the IPCOMP_DATA_SCALE environment variable
/// ("tiny" | "small" | "full"), defaulting to kSmall.
DataScale scale_from_env();

struct DatasetSpec {
  Field field;
  std::string name;     // as in Table 3
  std::string domain;   // application domain
  Dims dims;            // extents at the chosen scale
};

/// The six datasets of Table 3 at the given scale.
std::vector<DatasetSpec> standard_datasets(DataScale scale = DataScale::kSmall);

/// Spec for a single field at the given scale.
DatasetSpec dataset_spec(Field f, DataScale scale = DataScale::kSmall);

/// Deterministically generate a field at arbitrary dims.
NdArray<double> generate_field(Field f, const Dims& dims);

/// Generate-once cache (benches touch the same dataset repeatedly).
const NdArray<double>& cached_field(Field f, DataScale scale = DataScale::kSmall);

/// Read a raw SDRBench file (little-endian float32/float64, row-major).
NdArray<double> sdr_raw_read(const std::string& path, const Dims& dims,
                             bool is_float32);

}  // namespace ipcomp
