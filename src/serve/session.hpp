// Per-client serving session: a ProgressiveReader over the shared tier.
//
// A Session is what one client holds: its own reader (resident planes,
// reconstruction, request history) wired through a SessionSource into the
// archive's shared cache + pooled I/O.  Because plan() prices a request
// exactly before any byte moves, a per-session byte quota is enforced at
// plan-admission time — a comparison against the plan's bytes_new, not a
// mid-transfer cutoff — and a rejected request leaves the session exactly
// as it was.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/progressive_reader.hpp"
#include "serve/archive_set.hpp"

namespace ipcomp {

/// Thrown when admitting a plan would take the session past its quota; the
/// session state is untouched (nothing was fetched or decoded).
class QuotaExceeded : public std::runtime_error {
 public:
  QuotaExceeded(std::uint64_t needed, std::uint64_t remaining)
      : std::runtime_error("session quota exceeded: plan needs " +
                           std::to_string(needed) + " bytes, " +
                           std::to_string(remaining) + " remain"),
        needed_(needed),
        remaining_(remaining) {}

  std::uint64_t needed() const { return needed_; }
  std::uint64_t remaining() const { return remaining_; }

 private:
  std::uint64_t needed_;
  std::uint64_t remaining_;
};

/// Thread contract: externally-synchronized — one session per client,
/// serialized by that client, exactly like the reader it wraps.  Any number
/// of sessions may run concurrently over one ArchiveHandle; the shared tier
/// underneath is internally-synchronized.
template <typename T>
class Session {
 public:
  /// `byte_quota` of 0 means unlimited.  The quota meters everything the
  /// session retrieves, including the archive open cost attributed to its
  /// first request.
  explicit Session(std::shared_ptr<ArchiveHandle> handle, ReaderConfig cfg = {},
                   std::uint64_t byte_quota = 0)
      : src_(std::move(handle)), reader_(src_, cfg), quota_(byte_quota) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pure pricing, free to call: what would `req` fetch for *this* session
  /// given what it already holds?
  RetrievalPlan plan(const Request& req) const { return reader_.plan(req); }

  /// Admission + execution: throws QuotaExceeded (before any I/O) if the
  /// plan's exact price does not fit the remaining quota.
  RetrievalStats execute(const RetrievalPlan& p) {
    if (quota_ != 0 && p.bytes_new > quota_remaining()) {
      throw QuotaExceeded(p.bytes_new, quota_remaining());
    }
    RetrievalStats st = reader_.execute(p);
    used_ += st.bytes_new;
    return st;
  }

  /// One-call retrieval with admission: execute(plan(req)).
  RetrievalStats retrieve(const Request& req) { return execute(plan(req)); }

  /// Remote-serving path (net/server.hpp): admit `p` against the quota
  /// exactly like execute(), fetch its segments through this session's
  /// cache-first source, and advance the reader's planning residency
  /// *without decoding* — the remote client owns reconstruction; the daemon
  /// only needs the residency to price this client's next plan.  Returns the
  /// raw payloads in plan order; `out` receives the stats execute() would
  /// have reported.  A session that has served this path is a pricing
  /// mirror: local execute()/retrieve() on it throw.
  std::vector<Bytes> fetch_for_remote(const RetrievalPlan& p,
                                      RetrievalStats& out) {
    if (p.epoch != reader_.epoch()) {
      // Checked before the fetch: a stale plan must not charge the session
      // ledger for payloads whose residency is never acknowledged.
      throw std::logic_error(
          "fetch_for_remote: stale plan (the session advanced since plan() "
          "ran)");
    }
    if (quota_ != 0 && p.bytes_new > quota_remaining()) {
      throw QuotaExceeded(p.bytes_new, quota_remaining());
    }
    std::vector<Bytes> payloads = src_.read_many(p.segments);
    out = reader_.acknowledge(p);
    used_ += out.bytes_new;
    return payloads;
  }

  /// Current reader state serial (remote plans carry it for staleness
  /// detection before any byte moves).
  std::uint64_t epoch() const { return reader_.epoch(); }

  const std::vector<T>& data() const { return reader_.data(); }
  const ProgressiveReader<T>& reader() const { return reader_; }

  /// Bytes attributed to this session's executed requests so far (its
  /// private ledger — cache hits count: the client consumed the data even if
  /// storage was spared).  Sums the per-request bytes_new, so the archive
  /// open cost lands here with the first executed request, mirroring how a
  /// plan prices it; after any request this equals the session source's
  /// stats().bytes_read.
  std::uint64_t bytes_used() const { return used_; }
  std::uint64_t quota() const { return quota_; }
  std::uint64_t quota_remaining() const {
    return quota_ <= used_ ? 0 : quota_ - used_;
  }

 private:
  SessionSource src_;
  ProgressiveReader<T> reader_;
  std::uint64_t quota_;
  std::uint64_t used_ = 0;
};

}  // namespace ipcomp
