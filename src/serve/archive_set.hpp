// Multi-tenant archive serving: shared handles over opened archives.
//
// An ArchiveSet opens each archive once and hands out shared ArchiveHandles;
// a handle owns the physical source, the PooledSource that merges concurrent
// I/O, and the SegmentCache that keeps hot segments resident for every
// client.  Per-client state lives in Session (serve/session.hpp), whose
// SessionSource — the per-client SegmentSource a ProgressiveReader plugs
// into — is defined here: it serves segments cache-first, misses through the
// shared pool, and keeps per-session accounting so each client's budget math
// (byte quotas, bitrate targets) charges the volume *that client* retrieved,
// cache hit or not.  Two sessions over one archive therefore never cause the
// same plane to be fetched from storage twice (the second request hits the
// cache), while each still pays for it in its own ledger.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>

#include "io/archive.hpp"
#include "serve/cache.hpp"
#include "serve/pooled_source.hpp"
#include "util/sync.hpp"

namespace ipcomp {

/// Sizing knobs for the shared serving tier.
struct ServeOptions {
  /// Segment cache budget shared across *all* archives of an ArchiveSet —
  /// one LRU, one byte cap, hot archives evict cold ones (see README
  /// "Serving" for sizing guidance).  A handle constructed directly (not
  /// through a set) gets a private cache of this capacity.
  std::size_t cache_capacity_bytes = std::size_t{64} << 20;
  /// I/O pool workers behind read_many, per archive.
  unsigned io_threads = 2;
  /// Open file archives through MmapSource instead of FileSource (the
  /// daemon's default; MmapSource falls back to FileSource on empty or
  /// over-cap files).  In-memory archives are unaffected.
  bool use_mmap = false;
};

/// The shared, internally-synchronized tier of one opened archive: physical
/// source + pooled I/O + segment cache + the header bytes (fetched once, at
/// open).  Obtained from an ArchiveSet (or constructed directly around any
/// source) and shared by every Session on the archive.
///
/// Thread contract: internally-synchronized.  All members hand out either
/// immutable data (header_bytes, open_cost, version) or internally-
/// synchronized components (cache, pooled source, stats snapshots).
class ArchiveHandle {
 public:
  /// Takes ownership of `base`, fetches its header (the only point where
  /// the base's externally-synchronized header() runs), and builds the I/O
  /// pool over `cache` — usually an ArchiveSet's shared cross-archive cache.
  /// The base must allow concurrent read_many calls (MemorySource /
  /// FileSource / MmapSource do) when io_threads > 1.
  ArchiveHandle(std::unique_ptr<SegmentSource> base,
                std::shared_ptr<SegmentCache> cache, unsigned io_threads);
  /// Standalone construction: a private cache of opts.cache_capacity_bytes.
  ArchiveHandle(std::unique_ptr<SegmentSource> base, const ServeOptions& opts)
      : ArchiveHandle(std::move(base),
                      std::make_shared<SegmentCache>(opts.cache_capacity_bytes),
                      opts.io_threads) {}
  ArchiveHandle(const ArchiveHandle&) = delete;
  ArchiveHandle& operator=(const ArchiveHandle&) = delete;

  /// Parsed-header bytes, immutable after construction.
  const Bytes& header_bytes() const { return header_; }
  /// Open cost (header + segment table bytes) every session charges on its
  /// first header fetch, mirroring what a private source would charge.
  std::size_t open_cost() const { return open_cost_; }
  /// Process-unique serial namespacing this handle's entries in the shared
  /// cache (CacheKey::archive).
  std::uint64_t serial() const { return serial_; }

  SegmentCache& cache() { return *cache_; }
  PooledSource& pooled() { return pooled_; }

  /// Physical-I/O counters of the underlying source: what actually hit
  /// storage, across all sessions.  Compare with the sum of session-level
  /// stats to see the shared-cache savings.
  SourceStats source_stats() const { return base_->stats(); }
  /// Stats of the (possibly shared) cache this handle reads through — with a
  /// set-wide cache these counters cover every archive in the set.
  CacheStats cache_stats() const { return cache_->stats(); }

  // Index queries forwarded to the base (const-safe there).
  bool has_segment(SegmentId id) const { return base_->has_segment(id); }
  std::size_t segment_size(SegmentId id) const { return base_->segment_size(id); }
  std::vector<SegmentId> segment_ids() const { return base_->segment_ids(); }
  std::uint32_t version() const { return base_->version(); }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const {
    return base_->segment_checksum(id);
  }
  std::size_t total_size() const { return base_->total_size(); }

 private:
  std::unique_ptr<SegmentSource> base_;
  PooledSource pooled_;  // decorates *base_
  std::shared_ptr<SegmentCache> cache_;
  Bytes header_;
  std::size_t open_cost_ = 0;
  std::uint64_t serial_ = 0;
};

/// Per-session SegmentSource over a shared ArchiveHandle: cache-first reads,
/// misses fetched through the shared pool (one merged, coalesced dispatch
/// per wave of concurrent demand) and inserted back for the next session.
///
/// Thread contract: externally-synchronized — one SessionSource belongs to
/// one Session/reader and inherits its single-owner contract; the shared
/// tiers it calls into are internally-synchronized, so any number of
/// SessionSources may run concurrently over one handle.
class SessionSource final : public SegmentSource {
 public:
  explicit SessionSource(std::shared_ptr<ArchiveHandle> handle)
      : handle_(std::move(handle)) {}

  const Bytes& header() override {
    if (!header_charged_) {
      charge_bytes(handle_->open_cost());
      count_read_call();
      header_charged_ = true;
    }
    return handle_->header_bytes();
  }
  Bytes read_segment(SegmentId id) override;
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override { return handle_->has_segment(id); }
  std::size_t segment_size(SegmentId id) const override {
    return handle_->segment_size(id);
  }
  std::vector<SegmentId> segment_ids() const override {
    return handle_->segment_ids();
  }
  std::uint32_t version() const override { return handle_->version(); }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    return handle_->segment_checksum(id);
  }
  std::size_t total_size() const override { return handle_->total_size(); }

 private:
  std::shared_ptr<ArchiveHandle> handle_;
  bool header_charged_ = false;
};

/// Opens archives once and hands out shared handles by name.
///
/// Thread contract: internally-synchronized — open/get/close/size are safe
/// from any thread.  Handles are shared_ptrs: close() only drops the set's
/// reference, so sessions still running on the archive keep it alive.
class ArchiveSet {
 public:
  explicit ArchiveSet(ServeOptions opts = {})
      : opts_(opts),
        cache_(std::make_shared<SegmentCache>(opts.cache_capacity_bytes)) {}
  ArchiveSet(const ArchiveSet&) = delete;
  ArchiveSet& operator=(const ArchiveSet&) = delete;

  /// Opens the archive file at `path` (the name is the path), or returns the
  /// already-open handle.  Open cost is paid once per set, not per caller.
  std::shared_ptr<ArchiveHandle> open_file(const std::string& path)
      IPCOMP_EXCLUDES(mu_);

  /// Registers an in-memory archive under `name`, or returns the handle
  /// already registered under it (the blob is then ignored).
  std::shared_ptr<ArchiveHandle> open_memory(const std::string& name, Bytes blob)
      IPCOMP_EXCLUDES(mu_);

  /// The handle registered under `name`, or nullptr.
  std::shared_ptr<ArchiveHandle> get(const std::string& name) const
      IPCOMP_EXCLUDES(mu_);

  /// Drops the set's reference; live sessions keep the handle alive.
  void close(const std::string& name) IPCOMP_EXCLUDES(mu_);

  std::size_t size() const IPCOMP_EXCLUDES(mu_);

  /// Counters of the set-wide shared cache (all archives together).
  CacheStats cache_stats() const { return cache_->stats(); }

 private:
  ServeOptions opts_;
  /// One LRU + one byte budget shared by every handle this set opens.
  /// shared_ptr because handles outlive a close()d set entry.
  std::shared_ptr<SegmentCache> cache_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ArchiveHandle>> handles_
      IPCOMP_GUARDED_BY(mu_);
};

}  // namespace ipcomp
