#include "serve/archive_set.hpp"

#include <atomic>
#include <utility>

#include "io/mmap_source.hpp"

namespace ipcomp {

namespace {
/// Process-unique archive serials for CacheKey::archive.  Starts at 1 so 0
/// never names a live archive.
std::uint64_t next_serial() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

ArchiveHandle::ArchiveHandle(std::unique_ptr<SegmentSource> base,
                             std::shared_ptr<SegmentCache> cache,
                             unsigned io_threads)
    : base_(std::move(base)),
      pooled_(*base_, io_threads),
      cache_(std::move(cache)),
      serial_(next_serial()) {
  // Fetch the header through the pool so the pool mirrors the open cost into
  // its own accounting; construction is single-threaded, satisfying
  // header()'s serialization requirement once and for all.
  header_ = pooled_.header();
  open_cost_ = base_->stats().bytes_read;
}

Bytes SessionSource::read_segment(SegmentId id) {
  std::vector<Bytes> one = read_many({&id, 1});
  return std::move(one.front());
}

std::vector<Bytes> SessionSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out(ids.size());
  const std::uint32_t ver = handle_->version();
  const std::uint64_t serial = handle_->serial();
  SegmentCache& cache = handle_->cache();

  std::vector<SegmentId> missing;
  std::vector<std::size_t> missing_at;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!cache.get({serial, ids[i].key(ver)}, out[i])) {
      missing.push_back(ids[i]);
      missing_at.push_back(i);
    }
  }
  if (!missing.empty()) {
    // One pooled dispatch for everything this session still misses; the
    // pool merges it with other sessions' concurrent demand.  Throws (e.g.
    // missing segment) before anything is charged here — all-or-nothing,
    // like every other source.
    std::vector<Bytes> fetched = handle_->pooled().read_many(missing);
    for (std::size_t j = 0; j < missing.size(); ++j) {
      // The insert re-verifies against the archive's recorded checksum (v4):
      // the pool handed these bytes across threads and queues, and whatever
      // lands in the cache is replayed to every later session.
      cache.put({serial, missing[j].key(ver)}, fetched[j],
                handle_->segment_checksum(missing[j]), ver);
      out[missing_at[j]] = std::move(fetched[j]);
    }
    count_read_call();
  }
  // The session ledger charges delivered volume whether it came from cache
  // or storage: quotas and bitrate targets meter what the client consumed,
  // not what the shared tier happened to have resident.
  std::size_t delivered = 0;
  for (const Bytes& b : out) delivered += b.size();
  charge_bytes(delivered);
  return out;
}

std::shared_ptr<ArchiveHandle> ArchiveSet::open_file(const std::string& path) {
  LockGuard lock(mu_);
  auto it = handles_.find(path);
  if (it != handles_.end()) return it->second;
  // Built under the lock: a racing open of the same path must not construct
  // (and pay the index parse + header read for) a second handle.
  std::unique_ptr<SegmentSource> base;
  if (opts_.use_mmap) {
    base = std::make_unique<MmapSource>(path);
  } else {
    base = std::make_unique<FileSource>(path);
  }
  auto handle = std::make_shared<ArchiveHandle>(std::move(base), cache_,
                                                opts_.io_threads);
  handles_.emplace(path, handle);
  return handle;
}

std::shared_ptr<ArchiveHandle> ArchiveSet::open_memory(const std::string& name,
                                                       Bytes blob) {
  LockGuard lock(mu_);
  auto it = handles_.find(name);
  if (it != handles_.end()) return it->second;
  auto handle = std::make_shared<ArchiveHandle>(
      std::make_unique<MemorySource>(std::move(blob)), cache_,
      opts_.io_threads);
  handles_.emplace(name, handle);
  return handle;
}

std::shared_ptr<ArchiveHandle> ArchiveSet::get(const std::string& name) const {
  LockGuard lock(mu_);
  auto it = handles_.find(name);
  return it == handles_.end() ? nullptr : it->second;
}

void ArchiveSet::close(const std::string& name) {
  LockGuard lock(mu_);
  handles_.erase(name);
}

std::size_t ArchiveSet::size() const {
  LockGuard lock(mu_);
  return handles_.size();
}

}  // namespace ipcomp
