#include "serve/pooled_source.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace ipcomp {

PooledSource::PooledSource(SegmentSource& base, unsigned workers) : base_(base) {
  const unsigned n = std::max(1u, workers);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PooledSource::~PooledSource() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

const Bytes& PooledSource::header() {
  // Serialized under mu_ because base header() mutates its cache; in
  // practice this runs once, at archive open, before any session traffic.
  LockGuard lock(mu_);
  const std::size_t before = base_.stats().bytes_read;
  const Bytes& h = base_.header();
  if (!header_charged_) {
    // Mirror the base's open cost (header + segment table) into this
    // source's accounting so a reader over the pool sees the same
    // bytes_total it would see over the base directly.
    charge_bytes(base_.stats().bytes_read - before);
    count_read_call();
    header_charged_ = true;
  }
  return h;
}

Bytes PooledSource::read_segment(SegmentId id) {
  std::vector<Bytes> one = read_many({&id, 1});
  return std::move(one.front());
}

std::vector<Bytes> PooledSource::read_many(std::span<const SegmentId> ids) {
  if (ids.empty()) return {};
  Batch batch;
  batch.ids = ids;
  {
    LockGuard lock(mu_);
    queue_.push_back(&batch);
  }
  work_cv_.notify_one();
  {
    LockGuard lock(mu_);
    done_cv_.wait(mu_, [&] { return batch.done; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
  // All-or-nothing accounting, same as the base sources: charge only the
  // payloads actually handed to this caller.
  std::size_t delivered = 0;
  for (const Bytes& b : batch.out) delivered += b.size();
  charge_bytes(delivered);
  return std::move(batch.out);
}

void PooledSource::worker_loop() {
  for (;;) {
    std::vector<Batch*> drained;
    {
      LockGuard lock(mu_);
      work_cv_.wait(mu_, [this]() IPCOMP_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      drained.swap(queue_);
    }
    // Merge every batch queued at this instant into one physical dispatch,
    // deduplicating overlapping demand: two sessions asking for the same
    // segment at the same moment share ONE fetch.  FileSource::read_many
    // then sorts the unique list by offset and coalesces near-adjacent
    // ranges, so demand from different sessions that lands in the same file
    // neighborhood is served by shared bulk reads.
    const std::uint32_t ver = base_.version();
    std::size_t total = 0;
    for (const Batch* b : drained) total += b->ids.size();
    std::vector<SegmentId> merged;
    merged.reserve(total);
    std::unordered_map<std::uint64_t, std::size_t> slot;
    slot.reserve(total);
    for (const Batch* b : drained) {
      for (const SegmentId& id : b->ids) {
        auto [it, inserted] = slot.try_emplace(id.key(ver), merged.size());
        (void)it;
        if (inserted) merged.push_back(id);
      }
    }
    std::vector<Bytes> payloads;
    std::exception_ptr error;
    try {
      payloads = base_.read_many(merged);
      count_read_call();
    } catch (...) {
      // One bad id fails the whole merged dispatch (the base charges
      // nothing); every waiting caller gets the error — a retried execute()
      // re-plans and re-enqueues.
      error = std::current_exception();
    }
    {
      LockGuard lock(mu_);
      if (error) {
        for (Batch* b : drained) {
          b->error = error;
          b->done = true;
        }
      } else if (merged.size() == total) {
        // No overlap: hand each payload to its sole requester by move.
        std::size_t off = 0;
        for (Batch* b : drained) {
          b->out.assign(std::make_move_iterator(payloads.begin() + static_cast<std::ptrdiff_t>(off)),
                        std::make_move_iterator(payloads.begin() + static_cast<std::ptrdiff_t>(off + b->ids.size())));
          off += b->ids.size();
          b->done = true;
        }
      } else {
        // Overlap: the shared payload is copied to every requester (each
        // caller owns its bytes; only the physical fetch is shared).
        for (Batch* b : drained) {
          b->out.reserve(b->ids.size());
          for (const SegmentId& id : b->ids) {
            b->out.push_back(payloads[slot.at(id.key(ver))]);
          }
          b->done = true;
        }
      }
    }
    done_cv_.notify_all();
  }
}

}  // namespace ipcomp
