#include "serve/cache.hpp"

#include "util/checksum.hpp"

namespace ipcomp {

bool SegmentCache::get(const CacheKey& key, Bytes& out) {
  LockGuard lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  out = it->second.payload;
  return true;
}

void SegmentCache::put(const CacheKey& key, const Bytes& payload,
                       std::optional<std::uint64_t> expected,
                       std::uint32_t key_version) {
  if (expected) {
    // Verified outside the lock: hashing is pure and the payload is the
    // caller's copy, so concurrent puts don't serialize on the hash.
    const std::uint64_t actual = checksum64(payload.data(), payload.size());
    if (actual != *expected) {
      throw IntegrityError(SegmentId::from_key(key.segment, key_version),
                           *expected, actual, IntegrityError::Layer::kCache);
    }
  }
  if (payload.size() > capacity_) return;
  LockGuard lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent misses on one key both fetch and both put; the payload is
    // identical (segments are immutable), so just promote the entry.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  evict_until_fits(payload.size());
  lru_.push_front(key);
  map_.emplace(key, Entry{payload, lru_.begin()});
  resident_bytes_ += payload.size();
}

CacheStats SegmentCache::stats() const {
  LockGuard lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.capacity_bytes = capacity_;
  s.entries = map_.size();
  return s;
}

void SegmentCache::evict_until_fits(std::size_t incoming) {
  while (!lru_.empty() && resident_bytes_ + incoming > capacity_) {
    const CacheKey victim = lru_.back();
    auto it = map_.find(victim);
    resident_bytes_ -= it->second.payload.size();
    map_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace ipcomp
