// Async batched I/O decorator for the multi-tenant serve layer.
//
// A PooledSource puts a small worker thread-pool behind read_many(): callers
// (the execute() paths of many concurrent Sessions) enqueue their segment
// batches and block; a worker drains *every* batch queued at that moment,
// merges them into one deduplicated id list, and issues a single base
// read_many — so the in-flight demand of N clients reaches FileSource as one
// sorted, offset-coalesced sweep instead of N interleaved seek storms, and a
// segment wanted by several callers at once is fetched exactly once.
// Payloads are handed back to each caller in its own request order (moved
// when it is the sole requester, copied when the fetch was shared).
#pragma once

#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "io/archive.hpp"
#include "util/sync.hpp"

namespace ipcomp {

/// Thread contract: internally-synchronized — read_segment/read_many/header
/// and the const queries are safe from any thread; that is the point of the
/// class.  The decorated base source must allow concurrent read_many calls
/// (MemorySource and FileSource both do; see io/archive.hpp) when the pool
/// has more than one worker.  The base must outlive the pool.
///
/// Accounting: this source's stats() count its *own* interface — bytes
/// delivered to callers and one read_call per merged dispatch — so
/// dispatches <= caller batches measures the merging win; the base source's
/// stats() keep counting physical reads and coalesced ranges.
class PooledSource final : public SegmentSource {
 public:
  /// `workers` is clamped to at least 1.
  explicit PooledSource(SegmentSource& base, unsigned workers = 2);
  /// Drains every queued batch, then joins the workers.
  ~PooledSource() override;
  PooledSource(const PooledSource&) = delete;
  PooledSource& operator=(const PooledSource&) = delete;

  const Bytes& header() override IPCOMP_EXCLUDES(mu_);
  Bytes read_segment(SegmentId id) override IPCOMP_EXCLUDES(mu_);
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override
      IPCOMP_EXCLUDES(mu_);
  bool has_segment(SegmentId id) const override { return base_.has_segment(id); }
  std::size_t segment_size(SegmentId id) const override {
    return base_.segment_size(id);
  }
  std::vector<SegmentId> segment_ids() const override { return base_.segment_ids(); }
  std::uint32_t version() const override { return base_.version(); }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    return base_.segment_checksum(id);
  }
  std::size_t total_size() const override { return base_.total_size(); }

 private:
  /// One caller's in-flight batch; lives on the caller's stack, so the queue
  /// holds raw pointers and the caller cannot return before done.
  struct Batch {
    std::span<const SegmentId> ids;
    std::vector<Bytes> out;
    std::exception_ptr error;
    bool done = false;
  };

  void worker_loop();

  SegmentSource& base_;
  Mutex mu_;
  CondVar work_cv_;  // workers: queue_ non-empty or stop_
  CondVar done_cv_;  // callers: their Batch::done flipped
  std::vector<Batch*> queue_ IPCOMP_GUARDED_BY(mu_);
  bool stop_ IPCOMP_GUARDED_BY(mu_) = false;
  bool header_charged_ IPCOMP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace ipcomp
