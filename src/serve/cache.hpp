// Segment-level LRU byte cache for the multi-tenant serve layer.
//
// One SegmentCache sits between all of an archive's Sessions and its
// physical SegmentSource: the first client to need a hot base/aux/coarse
// plane pays the fetch, every later client is served the cached payload.
// Capacity is in bytes (segment payloads vary from a few hundred bytes for
// deep planes to megabytes for base data), eviction is strict LRU, and an
// entry larger than the whole capacity is simply not cached — the fetch
// still succeeds, it just isn't retained.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "io/bytes.hpp"
#include "util/sync.hpp"

namespace ipcomp {

/// One snapshot of a cache's counters, taken by a single stats() call under
/// the cache lock — all fields are mutually consistent (the companion of
/// SourceStats for the I/O side).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  /// Bytes currently resident; never exceeds capacity_bytes.
  std::size_t resident_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Thread contract: internally-synchronized.  get/put/stats are safe from
/// any thread; payloads are copied in and out so no caller ever holds a
/// reference into the cache (an eviction on another thread must not
/// invalidate a payload a reader is decoding).
class SegmentCache {
 public:
  explicit SegmentCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}
  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// On hit, copies the payload into `out`, promotes the entry to
  /// most-recently-used, and returns true; on miss returns false with `out`
  /// untouched.  Either way the lookup is counted.
  bool get(std::uint64_t key, Bytes& out) IPCOMP_EXCLUDES(mu_);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// until the payload fits.  Payloads larger than the capacity are not
  /// cached at all.
  void put(std::uint64_t key, const Bytes& payload) IPCOMP_EXCLUDES(mu_);

  CacheStats stats() const IPCOMP_EXCLUDES(mu_);

  std::size_t capacity_bytes() const { return capacity_; }

 private:
  void evict_until_fits(std::size_t incoming) IPCOMP_REQUIRES(mu_);

  struct Entry {
    Bytes payload;
    std::list<std::uint64_t>::iterator lru_it;
  };

  const std::size_t capacity_;
  mutable Mutex mu_;
  /// Front = most recently used; back is the eviction candidate.
  std::list<std::uint64_t> lru_ IPCOMP_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Entry> map_ IPCOMP_GUARDED_BY(mu_);
  std::size_t resident_bytes_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t hits_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t misses_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t evictions_ IPCOMP_GUARDED_BY(mu_) = 0;
};

}  // namespace ipcomp
