// Segment-level LRU byte cache for the multi-tenant serve layer.
//
// One SegmentCache sits between Sessions and physical SegmentSources: the
// first client to need a hot base/aux/coarse plane pays the fetch, every
// later client is served the cached payload.  Entries are keyed by
// (archive serial, segment key), so a single cache — and a single byte
// budget — is shared across every archive of an ArchiveSet: a hot archive
// naturally evicts a cold one's tail instead of each archive hoarding a
// private cap.  Capacity is in bytes (segment payloads vary from a few
// hundred bytes for deep planes to megabytes for base data), eviction is
// strict LRU across all archives, and an entry larger than the whole
// capacity is simply not cached — the fetch still succeeds, it just isn't
// retained.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "io/archive.hpp"
#include "io/bytes.hpp"
#include "util/sync.hpp"

namespace ipcomp {

/// Cache entry identity: which archive (a process-unique serial assigned at
/// ArchiveHandle construction) and which segment (the archive-format table
/// key).  Exact — two archives with identical segment keys never collide.
struct CacheKey {
  std::uint64_t archive = 0;
  std::uint64_t segment = 0;

  bool operator==(const CacheKey&) const = default;

  struct Hash {
    std::size_t operator()(const CacheKey& k) const {
      // Splitmix-style mix of the two words; either alone is low-entropy
      // (serials are tiny, table keys cluster in the low bits).
      std::uint64_t h = k.archive * 0x9E3779B97F4A7C15ull ^ k.segment;
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };
};

/// One snapshot of a cache's counters, taken by a single stats() call under
/// the cache lock — all fields are mutually consistent (the companion of
/// SourceStats for the I/O side).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  /// Bytes currently resident; never exceeds capacity_bytes.
  std::size_t resident_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Thread contract: internally-synchronized.  get/put/stats are safe from
/// any thread; payloads are copied in and out so no caller ever holds a
/// reference into the cache (an eviction on another thread must not
/// invalidate a payload a reader is decoding).
class SegmentCache {
 public:
  explicit SegmentCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}
  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// On hit, copies the payload into `out`, promotes the entry to
  /// most-recently-used, and returns true; on miss returns false with `out`
  /// untouched.  Either way the lookup is counted.
  bool get(const CacheKey& key, Bytes& out) IPCOMP_EXCLUDES(mu_);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// until the payload fits.  Payloads larger than the capacity are not
  /// cached at all.  When `expected` is set (a v4 archive's recorded
  /// checksum), the payload is verified before insertion and a mismatch
  /// throws IntegrityError{.layer = kCache} without caching anything — the
  /// cache is a trust boundary: a payload corrupted between the physical
  /// read and the insert must not be replayed to every later session.
  /// `key_version` is the archive version CacheKey::segment was packed
  /// under, used only to name the segment in the error.
  void put(const CacheKey& key, const Bytes& payload,
           std::optional<std::uint64_t> expected = std::nullopt,
           std::uint32_t key_version = kArchiveV2) IPCOMP_EXCLUDES(mu_);

  CacheStats stats() const IPCOMP_EXCLUDES(mu_);

  std::size_t capacity_bytes() const { return capacity_; }

 private:
  void evict_until_fits(std::size_t incoming) IPCOMP_REQUIRES(mu_);

  struct Entry {
    Bytes payload;
    std::list<CacheKey>::iterator lru_it;
  };

  const std::size_t capacity_;
  mutable Mutex mu_;
  /// Front = most recently used; back is the eviction candidate.
  std::list<CacheKey> lru_ IPCOMP_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, Entry, CacheKey::Hash> map_ IPCOMP_GUARDED_BY(mu_);
  std::size_t resident_bytes_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t hits_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t misses_ IPCOMP_GUARDED_BY(mu_) = 0;
  std::size_t evictions_ IPCOMP_GUARDED_BY(mu_) = 0;
};

}  // namespace ipcomp
