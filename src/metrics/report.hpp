// Console table / CSV reporting for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper's tables and
// figures report; TableReporter keeps the columns aligned and optionally
// mirrors them into a CSV file for plotting.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ipcomp {

class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> columns,
                         std::string csv_path = "")
      : columns_(std::move(columns)) {
    if (!csv_path.empty()) {
      csv_.open(csv_path);
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        csv_ << (i ? "," : "") << columns_[i];
      }
      csv_ << "\n";
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::cout << std::left << std::setw(width(i)) << columns_[i];
    }
    std::cout << "\n";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::cout << std::string(width(i) - 1, '-') << " ";
    }
    std::cout << "\n";
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::cout << std::left << std::setw(width(i)) << cells[i];
      if (csv_.is_open()) csv_ << (i ? "," : "") << cells[i];
    }
    std::cout << "\n";
    if (csv_.is_open()) csv_ << "\n";
  }

  static std::string num(double v, int precision = 4) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string sci(double v, int precision = 3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

 private:
  std::size_t width(std::size_t i) const {
    return std::max<std::size_t>(columns_[i].size() + 2, 12);
  }

  std::vector<std::string> columns_;
  std::ofstream csv_;
};

}  // namespace ipcomp
