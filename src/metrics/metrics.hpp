// Compression quality metrics (paper §3.1.1).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "util/ndarray.hpp"

namespace ipcomp {

struct ErrorStats {
  double max_abs = 0.0;   // L∞
  double mse = 0.0;       // mean squared error
  double psnr = 0.0;      // 20·log10(range / rmse)
  double range = 0.0;     // max - min of the original data
};

/// Compare a decompressed array against the original.
template <typename T>
ErrorStats compute_error_stats(std::span<const T> original,
                               std::span<const T> decompressed) {
  ErrorStats s;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sq = 0.0;
  const std::size_t n = original.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double o = static_cast<double>(original[i]);
    const double d = static_cast<double>(decompressed[i]);
    const double e = o - d;
    s.max_abs = std::max(s.max_abs, std::abs(e));
    sq += e * e;
    lo = std::min(lo, o);
    hi = std::max(hi, o);
  }
  s.mse = n ? sq / static_cast<double>(n) : 0.0;
  s.range = hi - lo;
  if (s.mse > 0.0 && s.range > 0.0) {
    s.psnr = 20.0 * std::log10(s.range / std::sqrt(s.mse));
  } else {
    s.psnr = std::numeric_limits<double>::infinity();
  }
  return s;
}

/// size(original) / size(compressed).
inline double compression_ratio(std::size_t original_bytes,
                                std::size_t compressed_bytes) {
  return compressed_bytes
             ? static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes)
             : std::numeric_limits<double>::infinity();
}

/// Average bits per value in the compressed representation.
template <typename T>
double bitrate_of(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count
             ? 8.0 * static_cast<double>(compressed_bytes) /
                   static_cast<double>(element_count)
             : 0.0;
}

/// Value range (max - min) of a field.
template <typename T>
double value_range(std::span<const T> data) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const T& v : data) {
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  return data.empty() ? 0.0 : hi - lo;
}

}  // namespace ipcomp
