#include "coding/codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "coding/lzh.hpp"
#include "coding/rle.hpp"

namespace ipcomp {

Bytes codec_compress(std::span<const std::uint8_t> input, bool try_lzh) {
  const bool all_zero = std::all_of(input.begin(), input.end(),
                                    [](std::uint8_t b) { return b == 0; });
  if (all_zero) {
    return {static_cast<std::uint8_t>(CodecMethod::kEmpty)};
  }

  Bytes best = rle_encode(input);
  CodecMethod method = CodecMethod::kRle;

  if (try_lzh && input.size() >= 64) {
    Bytes lz = lzh_compress(input);
    if (lz.size() < best.size()) {
      best = std::move(lz);
      method = CodecMethod::kLzh;
    }
  }

  if (input.size() < best.size()) {
    best.assign(input.begin(), input.end());
    method = CodecMethod::kRaw;
  }

  Bytes out;
  out.reserve(best.size() + 1);
  out.push_back(static_cast<std::uint8_t>(method));
  out.insert(out.end(), best.begin(), best.end());
  return out;
}

Bytes codec_decompress(std::span<const std::uint8_t> input, std::size_t output_size) {
  if (input.empty()) throw std::runtime_error("codec: empty input");
  auto method = static_cast<CodecMethod>(input[0]);
  auto payload = input.subspan(1);
  switch (method) {
    case CodecMethod::kEmpty:
      return Bytes(output_size, 0);
    case CodecMethod::kRaw:
      if (payload.size() != output_size) throw std::runtime_error("codec: raw size mismatch");
      return Bytes(payload.begin(), payload.end());
    case CodecMethod::kRle:
      return rle_decode(payload, output_size);
    case CodecMethod::kLzh: {
      Bytes out = lzh_decompress(payload);
      if (out.size() != output_size) throw std::runtime_error("codec: lzh size mismatch");
      return out;
    }
  }
  throw std::runtime_error("codec: unknown method");
}

}  // namespace ipcomp
