#include "coding/codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "coding/bitpack.hpp"
#include "coding/entropy.hpp"
#include "coding/lzh.hpp"
#include "coding/rle.hpp"

namespace ipcomp {

const char* to_string(CodecPolicy policy) {
  switch (policy) {
    case CodecPolicy::kProbe: return "probe";
    case CodecPolicy::kTryAll: return "tryall";
    case CodecPolicy::kRle: return "rle";
  }
  return "?";
}

const char* to_string(CodecMethod method) {
  switch (method) {
    case CodecMethod::kEmpty: return "empty";
    case CodecMethod::kRaw: return "raw";
    case CodecMethod::kRle: return "rle";
    case CodecMethod::kLzh: return "lzh";
    case CodecMethod::kBitpack: return "bitpack";
  }
  return "?";
}

bool codec_policy_known(std::uint8_t id) {
  return id <= static_cast<std::uint8_t>(CodecPolicy::kRle);
}

CodecProbe codec_probe(std::span<const std::uint8_t> input) {
  CodecProbe p;
  p.bits = input.size() * 8;
  const std::size_t n = input.size();
  std::size_t i = 0;
  // One pass, two counters per 64-bit word: total set bits (popcount) and
  // nonzero bytes (exact OR-reduce of each byte down to its low bit — the
  // classic (w - kLow) & ~w & kHigh zero-byte trick over-counts when borrows
  // propagate, so it is not used here).
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, input.data() + i, 8);
    if (w == 0) continue;
    p.ones += static_cast<std::size_t>(std::popcount(w));
    std::uint64_t t = w | (w >> 4);
    t |= t >> 2;
    t |= t >> 1;
    t &= 0x0101010101010101ull;
    p.nonzero_bytes += static_cast<std::size_t>(std::popcount(t));
  }
  for (; i < n; ++i) {
    if (input[i] == 0) continue;
    p.ones += static_cast<std::size_t>(std::popcount(std::uint32_t{input[i]}));
    ++p.nonzero_bytes;
  }
  return p;
}

CodecMethod codec_route(const CodecProbe& probe,
                        std::span<const std::uint8_t> input) {
  if (probe.ones == 0) return CodecMethod::kEmpty;
  // Sparse and isolated: gap varints cost ~1 byte per set bit, beating both
  // RLE (~2 bytes per nonzero byte) and raw at these densities.
  if (probe.ones * kBitpackMaxDensity <= probe.bits &&
      probe.ones <= probe.nonzero_bytes * kBitpackMaxBitsPerByte) {
    return CodecMethod::kBitpack;
  }
  // Zero bytes dominate: zero-run RLE wins without a second look.
  const std::size_t zero_bytes = input.size() - probe.nonzero_bytes;
  if (zero_bytes * kRleZeroByteDen >= input.size() * kRleZeroByteNum) {
    return CodecMethod::kRle;
  }
  // Dense segment: only now pay for the byte histogram.  Near-random bytes
  // (low sign/mantissa planes after predictive XOR) are stored raw; anything
  // with residual structure goes to LZ77+Huffman.
  if (byte_entropy(input) >= kRawEntropyBits) return CodecMethod::kRaw;
  return input.size() >= kLzhMinBytes ? CodecMethod::kLzh : CodecMethod::kRle;
}

namespace {

Bytes tagged(CodecMethod method, Bytes payload) {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(static_cast<std::uint8_t>(method));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Legacy strategy (pre-orchestration), kept byte-for-byte: archives written
/// by earlier releases are pinned to this exact output by the golden suite.
Bytes compress_try_all(std::span<const std::uint8_t> input, bool try_lzh) {
  const bool all_zero = std::all_of(input.begin(), input.end(),
                                    [](std::uint8_t b) { return b == 0; });
  if (all_zero) {
    return {static_cast<std::uint8_t>(CodecMethod::kEmpty)};
  }

  Bytes best = rle_encode(input);
  CodecMethod method = CodecMethod::kRle;

  if (try_lzh && input.size() >= 64) {
    Bytes lz = lzh_compress(input);
    if (lz.size() < best.size()) {
      best = std::move(lz);
      method = CodecMethod::kLzh;
    }
  }

  if (input.size() < best.size()) {
    best.assign(input.begin(), input.end());
    method = CodecMethod::kRaw;
  }

  return tagged(method, std::move(best));
}

Bytes compress_probe(std::span<const std::uint8_t> input) {
  const CodecProbe probe = codec_probe(input);
  CodecMethod method = codec_route(probe, input);
  Bytes payload;
  switch (method) {
    case CodecMethod::kEmpty:
      return {static_cast<std::uint8_t>(CodecMethod::kEmpty)};
    case CodecMethod::kBitpack:
      payload = bitpack_encode(input);
      break;
    case CodecMethod::kRle:
      payload = rle_encode(input);
      break;
    case CodecMethod::kLzh:
      payload = lzh_compress(input);
      break;
    case CodecMethod::kRaw:
      break;
  }
  // The probe routes on estimates; if the routed encode loses to raw storage
  // the segment is stored instead, bounding expansion at one tag byte.
  if (method == CodecMethod::kRaw || payload.size() >= input.size()) {
    payload.assign(input.begin(), input.end());
    method = CodecMethod::kRaw;
  }
  return tagged(method, std::move(payload));
}

}  // namespace

Bytes codec_compress(std::span<const std::uint8_t> input, CodecPolicy policy) {
  switch (policy) {
    case CodecPolicy::kProbe: return compress_probe(input);
    case CodecPolicy::kTryAll: return compress_try_all(input, /*try_lzh=*/true);
    case CodecPolicy::kRle: return compress_try_all(input, /*try_lzh=*/false);
  }
  throw std::runtime_error("codec: unknown policy");
}

Bytes codec_decompress(std::span<const std::uint8_t> input, std::size_t output_size) {
  if (input.empty()) throw std::runtime_error("codec: empty input");
  auto method = static_cast<CodecMethod>(input[0]);
  auto payload = input.subspan(1);
  switch (method) {
    case CodecMethod::kEmpty:
      return Bytes(output_size, 0);
    case CodecMethod::kRaw:
      if (payload.size() != output_size) throw std::runtime_error("codec: raw size mismatch");
      return Bytes(payload.begin(), payload.end());
    case CodecMethod::kRle:
      return rle_decode(payload, output_size);
    case CodecMethod::kLzh: {
      Bytes out = lzh_decompress(payload);
      if (out.size() != output_size) throw std::runtime_error("codec: lzh size mismatch");
      return out;
    }
    case CodecMethod::kBitpack:
      return bitpack_decode(payload, output_size);
  }
  throw std::runtime_error("codec: unknown method");
}

}  // namespace ipcomp
