// LZ77 + canonical Huffman general-purpose byte compressor ("lzh").
//
// This is the repository's stand-in for zstd: a deflate-style design built
// from scratch.  Input is cut into independent 256 KiB blocks (compressed in
// parallel under OpenMP); each block is greedy hash-chain LZ77 tokenized and
// entropy coded with two Huffman tables (literal/length and distance).
// Blocks that do not shrink are stored raw.
#pragma once

#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

/// Compress arbitrary bytes.  Output embeds everything needed to decode.
Bytes lzh_compress(std::span<const std::uint8_t> input);

/// Decompress a buffer produced by lzh_compress.
Bytes lzh_decompress(std::span<const std::uint8_t> input);

}  // namespace ipcomp
