#include "coding/bitpack.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace ipcomp {

namespace {

/// Encode one chunk's gap varints into `w` (no length prefix).  Positions
/// are bit offsets relative to `chunk[0]`; the first gap is the absolute
/// in-chunk position, every later gap is (position - previous - 1).
void encode_chunk(std::span<const std::uint8_t> chunk, ByteWriter& w) {
  const std::size_t n = chunk.size();
  std::uint64_t prev_plus_1 = 0;  // previous position + 1 (0: none yet)
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t word;
    if (i + 8 <= n) {
      std::memcpy(&word, chunk.data() + i, 8);
    } else {
      word = 0;
      std::memcpy(&word, chunk.data() + i, n - i);
    }
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      const std::uint64_t pos = static_cast<std::uint64_t>(i) * 8 + bit;
      w.varint(pos - prev_plus_1);
      prev_plus_1 = pos + 1;
      word &= word - 1;
    }
    i += 8;
  }
}

}  // namespace

Bytes bitpack_encode(std::span<const std::uint8_t> input) {
  if (input.empty()) return {};
  const std::size_t n_chunks =
      (input.size() + kBitpackChunkBytes - 1) / kBitpackChunkBytes;
  std::vector<Bytes> chunks(n_chunks);
  // Fixed chunk boundaries: the concatenated output never depends on how
  // parallel_chunks splits the work across threads.
  parallel_chunks(0, input.size(), kBitpackChunkBytes,
                  [&](std::size_t lo, std::size_t hi) {
                    ByteWriter w;
                    encode_chunk(input.subspan(lo, hi - lo), w);
                    chunks[lo / kBitpackChunkBytes] = w.take();
                  });
  ByteWriter out;
  for (const Bytes& c : chunks) {
    out.varint(c.size());
    out.bytes(c);
  }
  return out.take();
}

Bytes bitpack_decode(std::span<const std::uint8_t> input,
                     std::size_t output_size) {
  Bytes out(output_size, 0);
  if (output_size == 0) {
    if (!input.empty()) throw std::runtime_error("bitpack: trailing bytes");
    return out;
  }
  const std::size_t n_chunks =
      (output_size + kBitpackChunkBytes - 1) / kBitpackChunkBytes;

  // Pass 1 (serial, cheap): slice the stream into per-chunk payloads so the
  // bit-setting pass can run per chunk.  ByteReader throws on truncation.
  ByteReader r(input);
  std::vector<std::span<const std::uint8_t>> payload(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    payload[c] = r.bytes(r.varint());
  }
  if (r.remaining() != 0) throw std::runtime_error("bitpack: trailing bytes");

  // Pass 2: decode chunks (disjoint output ranges) concurrently; strict
  // validation — every gap must land inside the chunk and the payload must
  // be consumed exactly.
  parallel_for_ex(0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = c * kBitpackChunkBytes;
    const std::size_t chunk_bytes =
        std::min(kBitpackChunkBytes, output_size - lo);
    const std::uint64_t chunk_bits = static_cast<std::uint64_t>(chunk_bytes) * 8;
    ByteReader cr(payload[c]);
    std::uint8_t* dst = out.data() + lo;
    std::uint64_t prev_plus_1 = 0;
    while (cr.remaining() != 0) {
      const std::uint64_t pos = prev_plus_1 + cr.varint();
      if (pos >= chunk_bits) {
        throw std::runtime_error("bitpack: position out of range");
      }
      dst[pos >> 3] |= static_cast<std::uint8_t>(1u << (pos & 7));
      prev_plus_1 = pos + 1;
    }
  }, /*grain=*/1);
  return out;
}

}  // namespace ipcomp
