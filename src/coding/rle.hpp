// Zero-run run-length coding for sparse byte streams.
//
// Bitplane payloads are zero-dominated once the predictive XOR stage has run;
// a simple (zero-run, literal) alternation beats generic LZ on very sparse
// planes and costs almost nothing to decode.  Stream grammar:
//   repeat { varint zero_run ; literal byte }  with a final trailing zero_run.
#pragma once

#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

/// Encode `input`; output does not record the input length (the caller keeps
/// it, as all codec callers in this repo know their plane sizes).
Bytes rle_encode(std::span<const std::uint8_t> input);

/// Decode exactly `output_size` bytes.
Bytes rle_decode(std::span<const std::uint8_t> input, std::size_t output_size);

}  // namespace ipcomp
