#include "coding/rle.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace ipcomp {

namespace {

/// First position >= `pos` holding a nonzero byte (or n).  Whole zero words
/// are skipped 8 bytes at a time; the first nonzero byte inside a word is
/// located with a trailing-zero count on the little-endian load.
std::size_t scan_zero_run(std::span<const std::uint8_t> input, std::size_t pos) {
  const std::size_t n = input.size();
  while (pos + 8 <= n) {
    std::uint64_t w;
    std::memcpy(&w, input.data() + pos, 8);
    if (w != 0) {
      return pos + static_cast<std::size_t>(std::countr_zero(w)) / 8;
    }
    pos += 8;
  }
  while (pos < n && input[pos] == 0) ++pos;
  return pos;
}

}  // namespace

Bytes rle_encode(std::span<const std::uint8_t> input) {
  ByteWriter w(input.size() / 4 + 16);
  std::size_t pos = 0;
  const std::size_t n = input.size();
  while (pos < n) {
    const std::size_t next = scan_zero_run(input, pos);
    w.varint(next - pos);
    pos = next;
    if (pos < n) {
      w.u8(input[pos]);
      ++pos;
    }
  }
  return w.take();
}

Bytes rle_decode(std::span<const std::uint8_t> input, std::size_t output_size) {
  Bytes out;
  out.reserve(output_size);
  ByteReader r(input);
  while (out.size() < output_size) {
    std::size_t run = r.varint();
    if (out.size() + run > output_size) {
      throw std::runtime_error("rle: run overflows output");
    }
    out.insert(out.end(), run, 0);
    if (out.size() < output_size) {
      out.push_back(r.u8());
    }
  }
  return out;
}

}  // namespace ipcomp
