#include "coding/rle.hpp"

#include <stdexcept>

namespace ipcomp {

Bytes rle_encode(std::span<const std::uint8_t> input) {
  ByteWriter w(input.size() / 4 + 16);
  std::size_t pos = 0;
  const std::size_t n = input.size();
  while (pos < n) {
    std::size_t run = 0;
    while (pos + run < n && input[pos + run] == 0) ++run;
    w.varint(run);
    pos += run;
    if (pos < n) {
      w.u8(input[pos]);
      ++pos;
    }
  }
  return w.take();
}

Bytes rle_decode(std::span<const std::uint8_t> input, std::size_t output_size) {
  Bytes out;
  out.reserve(output_size);
  ByteReader r(input);
  while (out.size() < output_size) {
    std::size_t run = r.varint();
    if (out.size() + run > output_size) {
      throw std::runtime_error("rle: run overflows output");
    }
    out.insert(out.end(), run, 0);
    if (out.size() < output_size) {
      out.push_back(r.u8());
    }
  }
  return out;
}

}  // namespace ipcomp
