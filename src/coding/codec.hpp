// Per-segment codec selection.
//
// Every archive segment is independently compressed with the cheapest of a
// small family of methods; a one-byte tag records the choice.  The caller
// always knows the decoded size (plane sizes are derivable from the header),
// so methods need not embed it.
#pragma once

#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

enum class CodecMethod : std::uint8_t {
  kEmpty = 0,  // all zero bytes: payload is empty
  kRaw = 1,    // stored verbatim
  kRle = 2,    // zero-run RLE
  kLzh = 3,    // LZ77 + Huffman
};

/// Compress with whichever method yields the smallest output.
/// Set `try_lzh = false` for tiny inputs where LZ77 setup cost dominates.
Bytes codec_compress(std::span<const std::uint8_t> input, bool try_lzh = true);

/// Inverse of codec_compress; `output_size` is the decoded byte count.
Bytes codec_decompress(std::span<const std::uint8_t> input, std::size_t output_size);

}  // namespace ipcomp
