// Per-segment codec orchestration.
//
// Every archive segment is independently compressed by one of a small family
// of methods; a one-byte tag records the choice, so the segment format is
// self-describing and adding a method never changes the container.  The
// caller always knows the decoded size (plane sizes are derivable from the
// header), so methods need not embed it.
//
// How the method is chosen is the codec *policy*:
//
//   * kProbe (default) — entropy-probed routing.  One word-parallel pass
//     measures the segment (set-bit count, nonzero bytes; byte entropy only
//     when the cheap counters are inconclusive) and routes it to the one
//     codec that fits its shape — no speculative encodes:
//
//       all bits zero                          -> kEmpty    (1 byte)
//       sparse isolated bits (see thresholds)  -> kBitpack  (gap varints)
//       zero bytes dominate                    -> kRle      (zero runs)
//       near-random bytes (entropy >= cutoff)  -> kRaw      (stored)
//       otherwise structured                   -> kLzh      (LZ77+Huffman)
//
//     A routed encode that fails to beat raw storage still falls back to
//     kRaw, so the output is never more than one tag byte over the input.
//   * kTryAll — the legacy strategy: encode with RLE *and* LZ77+Huffman and
//     keep the smallest of those and raw.  Byte-identical to the archives
//     written before the orchestrated stage existed (golden-pinned); pays
//     two full encodes per segment.
//   * kRle — legacy `try_lzh = false`: zero-run RLE versus raw only, for
//     callers that want the cheapest possible encode stage.
//
// Decoding is policy-independent: the tag alone selects the method, so every
// policy (and every archive ever written) decodes through the same switch.
#pragma once

#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

enum class CodecMethod : std::uint8_t {
  kEmpty = 0,    // all zero bytes: payload is empty
  kRaw = 1,      // stored verbatim
  kRle = 2,      // zero-run RLE
  kLzh = 3,      // LZ77 + Huffman
  kBitpack = 4,  // varint gaps between set bits (coding/bitpack.hpp)
};

/// How codec_compress picks a CodecMethod per segment (see file comment).
enum class CodecPolicy : std::uint8_t {
  kProbe = 0,   // entropy-probed routing, one encode per segment (default)
  kTryAll = 1,  // legacy: RLE and LZH both encoded, smallest kept
  kRle = 2,     // legacy try_lzh = false: RLE versus raw only
};

const char* to_string(CodecPolicy policy);
const char* to_string(CodecMethod method);
bool codec_policy_known(std::uint8_t id);

// ---- probe thresholds (README "Codec orchestration" routing table) -------

/// Route to kBitpack when set bits are rarer than 1 in kBitpackMaxDensity
/// bits AND mostly isolated (<= kBitpackMaxBitsPerByte per nonzero byte —
/// clustered bits pack 8-per-byte and belong to the byte-granular codecs).
inline constexpr std::size_t kBitpackMaxDensity = 32;
inline constexpr std::size_t kBitpackMaxBitsPerByte = 2;
/// Route to kRle when at least (kRleZeroByteNum/kRleZeroByteDen) of the
/// bytes are zero: RLE costs ~2 bytes per nonzero byte, so past this point
/// LZ77's edge on the residue cannot recoup its per-block setup.  Below it,
/// fall through to the entropy branch (structured residue still goes LZH).
inline constexpr std::size_t kRleZeroByteNum = 7;
inline constexpr std::size_t kRleZeroByteDen = 8;
/// Dense segments at or above this byte entropy (bits/byte) are effectively
/// incompressible residual noise: store raw instead of running LZ77 just to
/// fall back.  Below it, structure remains and LZH earns its cost.
inline constexpr double kRawEntropyBits = 7.6;
/// LZ77 setup cost dominates under this size; short structured segments
/// route to RLE instead (matches the legacy `input.size() >= 64` gate).
inline constexpr std::size_t kLzhMinBytes = 64;

/// One word-parallel measurement pass over a segment: everything the router
/// needs except the (lazily computed) byte entropy.
struct CodecProbe {
  std::size_t bits = 0;           // input.size() * 8
  std::size_t ones = 0;           // set bits
  std::size_t nonzero_bytes = 0;  // bytes with any bit set
};

CodecProbe codec_probe(std::span<const std::uint8_t> input);

/// The kProbe routing decision for a measured segment (byte entropy is
/// computed here only when the dense branch needs it).  Exposed for tests
/// and the routing-census benchmarks.
CodecMethod codec_route(const CodecProbe& probe,
                        std::span<const std::uint8_t> input);

/// Compress under `policy`; the chosen method's tag leads the output.
Bytes codec_compress(std::span<const std::uint8_t> input,
                     CodecPolicy policy = CodecPolicy::kProbe);

/// Inverse of codec_compress; `output_size` is the decoded byte count.
/// Policy-independent: dispatches on the tag byte and rejects unknown tags,
/// so archives written under any policy (or before policies existed) decode.
Bytes codec_decompress(std::span<const std::uint8_t> input, std::size_t output_size);

}  // namespace ipcomp
