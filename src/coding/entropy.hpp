// Shannon entropy estimators (Table 2 of the paper).
//
// The paper reports the bit-level entropy of bitplane streams before and
// after predictive XOR coding; these helpers compute exactly that.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>

namespace ipcomp {

/// Entropy of a Bernoulli(p) source in bits per bit.
inline double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// Bit-level entropy of a packed bit stream of `bit_count` bits.  Counts
/// 64 bits per popcount so probing a plane costs a fraction of encoding it.
inline double bit_entropy(std::span<const std::uint8_t> packed,
                          std::size_t bit_count) {
  if (bit_count == 0) return 0.0;
  std::size_t ones = 0;
  const std::size_t full = bit_count / 8;
  std::size_t i = 0;
  for (; i + 8 <= full; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, packed.data() + i, 8);
    ones += static_cast<std::size_t>(std::popcount(w));
  }
  for (; i < full; ++i) {
    ones += static_cast<std::size_t>(std::popcount(std::uint32_t{packed[i]}));
  }
  std::size_t rem = bit_count % 8;
  if (rem) {
    std::uint8_t tail = packed[full] & static_cast<std::uint8_t>((1u << rem) - 1u);
    ones += static_cast<std::size_t>(std::popcount(std::uint32_t{tail}));
  }
  return binary_entropy(static_cast<double>(ones) / static_cast<double>(bit_count));
}

/// Byte-level entropy in bits per byte.
inline double byte_entropy(std::span<const std::uint8_t> data) {
  if (data.empty()) return 0.0;
  std::uint64_t hist[256] = {};
  for (auto b : data) ++hist[b];
  double h = 0.0;
  const double n = static_cast<double>(data.size());
  for (auto c : hist) {
    if (c) {
      double p = static_cast<double>(c) / n;
      h -= p * std::log2(p);
    }
  }
  return h;
}

}  // namespace ipcomp
