// Canonical, length-limited Huffman coding over integer alphabets.
//
// Used directly by the SZ3 baseline (quantization codes) and as the entropy
// stage of the LZ77 back-end.  Codes are canonical so only the code lengths
// are serialized; decoding uses a 12-bit prefix table with a bit-by-bit
// fallback for longer codes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "io/bitstream.hpp"
#include "io/bytes.hpp"

namespace ipcomp {

/// Maximum code length produced by build_code_lengths.
inline constexpr unsigned kHuffmanMaxLen = 24;

/// Compute length-limited Huffman code lengths from symbol frequencies.
/// Symbols with zero frequency receive length 0 (no code).  The alphabet must
/// satisfy alphabet_size <= 2^kHuffmanMaxLen.
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs,
                                             unsigned limit = kHuffmanMaxLen);

/// Serialize code lengths compactly (sparse symbol/length pairs).
void serialize_code_lengths(ByteWriter& w, std::span<const std::uint8_t> lengths);
std::vector<std::uint8_t> deserialize_code_lengths(ByteReader& r);

class HuffmanEncoder {
 public:
  /// Builds canonical codes from code lengths.
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void encode(BitWriter& bw, std::uint32_t symbol) const {
    bw.put_bits(reversed_code_[symbol], length_[symbol]);
  }

  /// Fused emission of a code and its raw extra bits as one put_bits call:
  /// code (<= kHuffmanMaxLen bits) in the low bits, extras above it.  The
  /// stream is LSB-first, so this is bit-identical to encode() followed by
  /// put_bits(extra, extra_bits) — one accumulator round-trip instead of two.
  /// Requires length(symbol) + extra_bits <= 64.
  void encode_with_extra(BitWriter& bw, std::uint32_t symbol,
                         std::uint64_t extra, unsigned extra_bits) const {
    const unsigned len = length_[symbol];
    bw.put_bits(reversed_code_[symbol] | (extra << len), len + extra_bits);
  }

  unsigned length(std::uint32_t symbol) const { return length_[symbol]; }

  /// Total encoded bit count for a histogram (for cost estimation).
  std::uint64_t cost_bits(std::span<const std::uint64_t> freqs) const;

 private:
  std::vector<std::uint32_t> reversed_code_;
  std::vector<std::uint8_t> length_;
};

class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  std::uint32_t decode(BitReader& br) const;

 private:
  static constexpr unsigned kTableBits = 12;

  // Fast path: prefix table entry = (symbol << 5) | code_length, 0 = escape.
  std::vector<std::uint32_t> table_;
  // Slow path: canonical first-code ranges per length.
  std::uint32_t first_code_[kHuffmanMaxLen + 1] = {};
  std::uint32_t first_index_[kHuffmanMaxLen + 1] = {};
  std::uint32_t count_[kHuffmanMaxLen + 1] = {};
  std::vector<std::uint32_t> sorted_symbols_;
  unsigned max_len_ = 0;
};

}  // namespace ipcomp
