#include "coding/lzh.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "coding/huffman.hpp"
#include "io/bitstream.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

constexpr std::size_t kBlockSize = 1u << 18;  // 256 KiB independent blocks
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 65535;
constexpr unsigned kHashBits = 16;
constexpr int kMaxChain = 48;

// Exponential bucketing shared by lengths (v = len - kMinMatch) and
// distances (v = dist - 1): 8 direct symbols then two buckets per power of
// two with (k-1) extra bits.
struct Bucket {
  std::uint32_t symbol;
  std::uint32_t extra_bits;
  std::uint32_t extra_value;
};

Bucket bucketize(std::uint32_t v) {
  if (v < 8) return {v, 0, 0};
  unsigned k = 31 - std::countl_zero(v);  // v in [2^k, 2^(k+1))
  std::uint32_t sym = 8 + (k - 3) * 2 + ((v >> (k - 1)) & 1u);
  return {sym, k - 1, v & ((1u << (k - 1)) - 1u)};
}

std::uint32_t unbucketize(std::uint32_t sym, std::uint32_t extra) {
  if (sym < 8) return sym;
  unsigned k = (sym - 8) / 2 + 3;
  std::uint32_t high = 2 + ((sym - 8) & 1u);  // 2 or 3 = top two bits
  return (high << (k - 1)) | extra;
}

std::uint32_t max_bucket_symbol(std::uint32_t max_v) {
  return bucketize(max_v).symbol;
}

const std::uint32_t kLenAlphabet = 256 + max_bucket_symbol(kMaxMatch - kMinMatch) + 1;
const std::uint32_t kDistAlphabet = max_bucket_symbol(kBlockSize - 1) + 1;

struct Token {
  std::uint32_t literal_or_len;  // < 256: literal; >= 256: match length
  std::uint32_t distance;        // valid when match
};

std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t max_len) {
  std::size_t n = 0;
  while (n + 8 <= max_len) {
    std::uint64_t va, vb;
    std::memcpy(&va, a + n, 8);
    std::memcpy(&vb, b + n, 8);
    if (va != vb) {
      return n + std::countr_zero(va ^ vb) / 8;
    }
    n += 8;
  }
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

std::vector<Token> tokenize(std::span<const std::uint8_t> in) {
  std::vector<Token> tokens;
  tokens.reserve(in.size() / 4 + 8);
  const std::size_t n = in.size();
  if (n < kMinMatch + 1) {
    for (std::size_t i = 0; i < n; ++i) tokens.push_back({in[i], 0});
    return tokens;
  }

  std::vector<std::int32_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int32_t> prev(n, -1);
  auto hash = [&](std::size_t pos) {
    return (read32(in.data() + pos) * 0x9E3779B1u) >> (32 - kHashBits);
  };

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      std::uint32_t h = hash(pos);
      std::int32_t cand = head[h];
      const std::size_t max_len = std::min(kMaxMatch, n - pos);
      for (int chain = 0; cand >= 0 && chain < kMaxChain; ++chain) {
        std::size_t len = match_length(in.data() + cand, in.data() + pos, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<std::size_t>(cand);
          if (len >= max_len) break;
        }
        cand = prev[cand];
      }
      prev[pos] = head[h];
      head[h] = static_cast<std::int32_t>(pos);
    }

    if (best_len >= kMinMatch) {
      tokens.push_back({256 + static_cast<std::uint32_t>(best_len), best_dist == 0 ? 1u : static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for the skipped positions (bounded for speed).
      std::size_t insert_end = std::min(pos + best_len, n - kMinMatch);
      for (std::size_t p = pos + 1; p < insert_end; ++p) {
        std::uint32_t h = hash(p);
        prev[p] = head[h];
        head[h] = static_cast<std::int32_t>(p);
      }
      pos += best_len;
    } else {
      tokens.push_back({in[pos], 0});
      ++pos;
    }
  }
  return tokens;
}

Bytes compress_block(std::span<const std::uint8_t> in) {
  auto tokens = tokenize(in);

  std::vector<std::uint64_t> lit_freq(kLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  for (const Token& t : tokens) {
    if (t.literal_or_len < 256) {
      ++lit_freq[t.literal_or_len];
    } else {
      std::uint32_t len_v = t.literal_or_len - 256 - kMinMatch;
      ++lit_freq[256 + bucketize(len_v).symbol];
      ++dist_freq[bucketize(t.distance - 1).symbol];
    }
  }

  auto lit_lengths = build_code_lengths(lit_freq);
  auto dist_lengths = build_code_lengths(dist_freq);
  HuffmanEncoder lit_enc(lit_lengths);
  HuffmanEncoder dist_enc(dist_lengths);

  ByteWriter w;
  serialize_code_lengths(w, lit_lengths);
  serialize_code_lengths(w, dist_lengths);

  BitWriter bw(in.size() / 2 + 64);
  for (const Token& t : tokens) {
    if (t.literal_or_len < 256) {
      lit_enc.encode(bw, t.literal_or_len);
    } else {
      std::uint32_t len_v = t.literal_or_len - 256 - kMinMatch;
      Bucket lb = bucketize(len_v);
      lit_enc.encode_with_extra(bw, 256 + lb.symbol, lb.extra_value, lb.extra_bits);
      Bucket db = bucketize(t.distance - 1);
      dist_enc.encode_with_extra(bw, db.symbol, db.extra_value, db.extra_bits);
    }
  }
  Bytes bits = bw.finish();
  w.varint(bits.size());
  w.bytes(bits);
  return w.take();
}

Bytes decompress_block(std::span<const std::uint8_t> in, std::size_t raw_size) {
  ByteReader r(in);
  auto lit_lengths = deserialize_code_lengths(r);
  auto dist_lengths = deserialize_code_lengths(r);
  HuffmanDecoder lit_dec(lit_lengths);
  HuffmanDecoder dist_dec(dist_lengths);
  std::size_t bits_size = r.varint();
  BitReader br(r.bytes(bits_size));

  Bytes out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    std::uint32_t sym = lit_dec.decode(br);
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else {
      std::uint32_t lsym = sym - 256;
      std::uint32_t extra_bits = lsym < 8 ? 0 : (lsym - 8) / 2 + 2;
      std::uint32_t len_v = unbucketize(lsym, static_cast<std::uint32_t>(br.get_bits(extra_bits)));
      std::size_t len = len_v + kMinMatch;
      std::uint32_t dsym = dist_dec.decode(br);
      std::uint32_t dextra = dsym < 8 ? 0 : (dsym - 8) / 2 + 2;
      std::size_t dist = unbucketize(dsym, static_cast<std::uint32_t>(br.get_bits(dextra))) + 1;
      if (dist > out.size()) throw std::runtime_error("lzh: bad distance");
      if (out.size() + len > raw_size) throw std::runtime_error("lzh: overflow");
      // Overlapping copies are the point (runs); copy byte-wise.
      std::size_t src = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  return out;
}

}  // namespace

Bytes lzh_compress(std::span<const std::uint8_t> input) {
  const std::size_t n_blocks = input.empty() ? 0 : (input.size() + kBlockSize - 1) / kBlockSize;
  std::vector<Bytes> blocks(n_blocks);
  std::vector<std::uint8_t> raw_flag(n_blocks, 0);

  parallel_for(0, n_blocks, [&](std::size_t b) {
    std::size_t off = b * kBlockSize;
    std::size_t len = std::min(kBlockSize, input.size() - off);
    auto chunk = input.subspan(off, len);
    Bytes packed = compress_block(chunk);
    if (packed.size() >= len) {
      blocks[b].assign(chunk.begin(), chunk.end());
      raw_flag[b] = 1;
    } else {
      blocks[b] = std::move(packed);
    }
  }, /*grain=*/1);

  ByteWriter w(input.size() / 2 + 64);
  w.varint(input.size());
  for (std::size_t b = 0; b < n_blocks; ++b) {
    w.u8(raw_flag[b]);
    w.varint(blocks[b].size());
    w.bytes(blocks[b]);
  }
  return w.take();
}

Bytes lzh_decompress(std::span<const std::uint8_t> input) {
  ByteReader r(input);
  std::size_t total = r.varint();
  Bytes out;
  out.reserve(total);
  std::size_t remaining = total;
  while (remaining > 0) {
    std::size_t raw_size = std::min(kBlockSize, remaining);
    std::uint8_t is_raw = r.u8();
    std::size_t len = r.varint();
    auto payload = r.bytes(len);
    if (is_raw) {
      if (len != raw_size) throw std::runtime_error("lzh: raw block size mismatch");
      out.insert(out.end(), payload.begin(), payload.end());
    } else {
      Bytes blk = decompress_block(payload, raw_size);
      out.insert(out.end(), blk.begin(), blk.end());
    }
    remaining -= raw_size;
  }
  return out;
}

}  // namespace ipcomp
