// Bitpacked sparse-index codec for near-empty bitplane segments.
//
// High bitplanes of predictive-coded residuals are almost entirely zero with
// a few isolated set bits; zero-run RLE spends two bytes per set bit and a
// byte-granular scan to find them.  This codec instead stores the positions
// of the set bits directly — varint-coded gaps between consecutive set bits —
// so encoding is a 64-bit-word scan (whole zero words skipped, set bits
// popped with countr_zero) and the output costs ~1 byte per set bit at the
// densities it is routed (see coding/codec.hpp's routing table).
//
// The stream is chunked: the input is cut into fixed kBitpackChunkBytes
// chunks, each encoded independently as varint(payload bytes) + gap varints
// (positions are chunk-relative).  Fixed chunk boundaries keep the output
// byte-identical regardless of thread count (encoding fans out through
// parallel_chunks) and let decode validate every chunk strictly: a payload that
// ends mid-varint, names a position past the chunk, or leaves unread bytes is
// rejected, so truncated or forged payloads throw instead of decoding.
#pragma once

#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

/// Chunk granularity of the bitpack stream (64 KiB: big enough that the
/// per-chunk length varint is noise, small enough to fan out).
inline constexpr std::size_t kBitpackChunkBytes = std::size_t{1} << 16;

/// Encode the set-bit positions of `input`.  Deterministic for any thread
/// count; the caller (codec_compress) is responsible for only routing inputs
/// sparse enough that this beats raw storage.
Bytes bitpack_encode(std::span<const std::uint8_t> input);

/// Inverse of bitpack_encode; `output_size` is the decoded byte count.
/// Throws std::runtime_error on truncated, oversized or out-of-range
/// payloads (forged archives must never crash).
Bytes bitpack_decode(std::span<const std::uint8_t> input,
                     std::size_t output_size);

}  // namespace ipcomp
