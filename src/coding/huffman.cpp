#include "coding/huffman.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace ipcomp {

namespace {

std::uint32_t bit_reverse(std::uint32_t code, unsigned len) {
  std::uint32_t rev = 0;
  for (unsigned i = 0; i < len; ++i) {
    rev |= ((code >> i) & 1u) << (len - 1 - i);
  }
  return rev;
}

/// Canonical code assignment from lengths: returns codes (MSB-first values).
std::vector<std::uint32_t> assign_canonical(std::span<const std::uint8_t> lengths,
                                            unsigned max_len) {
  std::vector<std::uint32_t> bl_count(max_len + 2, 0);
  for (auto l : lengths) {
    if (l) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(max_len + 2, 0);
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s]) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs,
                                             unsigned limit) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  // Standard heap-based Huffman over the used symbols.
  const std::size_t m = used.size();
  std::vector<std::uint64_t> weight(2 * m, 0);
  std::vector<std::int32_t> parent(2 * m, -1);
  for (std::size_t i = 0; i < m; ++i) weight[i] = freqs[used[i]];

  using Node = std::pair<std::uint64_t, std::size_t>;  // (weight, index)
  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap;
  for (std::size_t i = 0; i < m; ++i) heap.push({weight[i], i});
  std::size_t next = m;
  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    weight[next] = wa + wb;
    parent[a] = static_cast<std::int32_t>(next);
    parent[b] = static_cast<std::int32_t>(next);
    heap.push({weight[next], next});
    ++next;
  }

  unsigned max_depth = 0;
  for (std::size_t i = 0; i < m; ++i) {
    unsigned d = 0;
    for (std::int32_t p = parent[i]; p >= 0; p = parent[p]) ++d;
    lengths[used[i]] = static_cast<std::uint8_t>(std::min<unsigned>(d, 255));
    max_depth = std::max(max_depth, d);
  }

  if (max_depth > limit) {
    // Clamp overlong codes and repair the Kraft sum by lengthening the
    // cheapest (least frequent) short codes until the code is feasible.
    for (std::size_t i : used) {
      if (lengths[i] > limit) lengths[i] = static_cast<std::uint8_t>(limit);
    }
    auto kraft = [&]() {
      std::uint64_t k = 0;
      for (std::size_t i : used) k += std::uint64_t{1} << (limit - lengths[i]);
      return k;
    };
    const std::uint64_t target = std::uint64_t{1} << limit;
    std::uint64_t k = kraft();
    std::vector<std::size_t> by_freq(used);
    std::sort(by_freq.begin(), by_freq.end(),
              [&](std::size_t a, std::size_t b) { return freqs[a] < freqs[b]; });
    for (std::size_t i : by_freq) {
      while (k > target && lengths[i] < limit) {
        k -= std::uint64_t{1} << (limit - lengths[i] - 1);
        ++lengths[i];
      }
      if (k <= target) break;
    }
    if (k > target) throw std::logic_error("huffman: Kraft repair failed");
  }
  return lengths;
}

void serialize_code_lengths(ByteWriter& w, std::span<const std::uint8_t> lengths) {
  w.varint(lengths.size());
  std::size_t n_used = 0;
  for (auto l : lengths) {
    if (l) ++n_used;
  }
  w.varint(n_used);
  std::size_t prev = 0;
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s]) {
      w.varint(s - prev);
      w.u8(lengths[s]);
      prev = s;
    }
  }
}

std::vector<std::uint8_t> deserialize_code_lengths(ByteReader& r) {
  std::size_t alphabet = r.varint();
  std::size_t n_used = r.varint();
  std::vector<std::uint8_t> lengths(alphabet, 0);
  std::size_t sym = 0;
  for (std::size_t i = 0; i < n_used; ++i) {
    sym += r.varint();
    if (sym >= alphabet) throw std::runtime_error("huffman: symbol out of range");
    lengths[sym] = r.u8();
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : length_(lengths.begin(), lengths.end()) {
  unsigned max_len = 0;
  for (auto l : lengths) max_len = std::max<unsigned>(max_len, l);
  if (max_len > kHuffmanMaxLen) throw std::invalid_argument("huffman: length too long");
  auto codes = assign_canonical(lengths, std::max(1u, max_len));
  reversed_code_.resize(lengths.size());
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    reversed_code_[s] = bit_reverse(codes[s], lengths[s]);
  }
}

std::uint64_t HuffmanEncoder::cost_bits(std::span<const std::uint64_t> freqs) const {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < freqs.size() && s < length_.size(); ++s) {
    bits += freqs[s] * length_[s];
  }
  return bits;
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (auto l : lengths) max_len_ = std::max<unsigned>(max_len_, l);
  if (max_len_ > kHuffmanMaxLen) throw std::invalid_argument("huffman: length too long");
  auto codes = assign_canonical(lengths, std::max(1u, max_len_));

  // Canonical slow-path ranges: symbols sorted by (length, symbol).
  for (auto l : lengths) {
    if (l) ++count_[l];
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }
  sorted_symbols_.resize(index);
  std::vector<std::uint32_t> fill(kHuffmanMaxLen + 1, 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s]) {
      unsigned len = lengths[s];
      sorted_symbols_[first_index_[len] + fill[len]++] = static_cast<std::uint32_t>(s);
    }
  }

  // Fast-path table over the first kTableBits arriving bits.
  table_.assign(std::size_t{1} << kTableBits, 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    unsigned len = lengths[s];
    if (len == 0 || len > kTableBits) continue;
    std::uint32_t rev = bit_reverse(codes[s], len);
    std::uint32_t entry = (static_cast<std::uint32_t>(s) << 5) | len;
    for (std::uint32_t j = 0; j < (1u << (kTableBits - len)); ++j) {
      table_[rev | (j << len)] = entry;
    }
  }
}

std::uint32_t HuffmanDecoder::decode(BitReader& br) const {
  std::uint32_t window = static_cast<std::uint32_t>(br.peek_bits(kTableBits));
  std::uint32_t entry = table_[window];
  if (entry != 0) {
    br.skip_bits(entry & 31u);
    return entry >> 5;
  }
  // Slow path: accumulate the code MSB-first (bits arrive MSB-first because
  // the encoder writes them reversed).
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code << 1) | br.get_bit();
    if (count_[len] && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      return sorted_symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw std::runtime_error("huffman: invalid code");
}

}  // namespace ipcomp
