// Residual-based progressive wrapper (paper §2, §6.1.3): SZ3-R / ZFP-R /
// SPERR-R are instances over the corresponding stage codec.
//
// Compression runs the base compressor at a ladder of shrinking bounds, each
// stage encoding the residual left by the previous stages.  Retrieval at a
// target bound must load *and decompress* every stage down to the first whose
// bound satisfies the target — the multi-pass cost the paper's single-pass
// design eliminates.  Error bounds are only available at the ladder's
// predefined anchor points (the staircase in Figs. 6/7).
#pragma once

#include <memory>

#include "baselines/baseline.hpp"

namespace ipcomp {

class ResidualCompressor final : public ProgressiveCompressor {
 public:
  /// Stage k compresses the running residual with bound eb·factor^(stages-1-k);
  /// the paper's configuration is nine bounds spaced 4x apart.
  ResidualCompressor(std::shared_ptr<Compressor> base, std::string name,
                     int stages = 9, double factor = 4.0)
      : base_(std::move(base)), name_(std::move(name)), stages_(stages),
        factor_(factor) {}

  std::string name() const override { return name_; }
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;
  Retrieval retrieve_error(const Bytes& archive, double target) override;
  Retrieval retrieve_bytes(const Bytes& archive, std::uint64_t budget) override;

  int stages() const { return stages_; }

 private:
  struct Stage {
    double bound;
    std::size_t offset;
    std::size_t size;
  };
  struct Parsed {
    Dims dims;
    std::vector<Stage> stages;
    std::size_t header_bytes;
  };
  Parsed parse(const Bytes& archive) const;
  /// Load and sum stages [0, k]; each stage is a separate decompression pass.
  Retrieval accumulate(const Bytes& archive, const Parsed& p, std::size_t k) const;

  std::shared_ptr<Compressor> base_;
  std::string name_;
  int stages_;
  double factor_;
};

}  // namespace ipcomp
