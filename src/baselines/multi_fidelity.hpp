// SZ3-M baseline (paper §6.1.3): multi-fidelity via independent outputs.
//
// The input is compressed at a ladder of error bounds and all outputs are
// stored together.  Retrieval picks the single cheapest output satisfying the
// request — one decompression pass, but no reuse between fidelities, so the
// total archive is huge (its Fig. 5 weakness) while per-retrieval volume and
// speed are competitive (its Fig. 8 strength).
#pragma once

#include <memory>

#include "baselines/baseline.hpp"

namespace ipcomp {

class MultiFidelityCompressor final : public ProgressiveCompressor {
 public:
  /// Stage bounds are eb · factor^(stages-1-k); the paper's ladder is nine
  /// bounds spaced 4x apart (2^16·eb down to eb).
  MultiFidelityCompressor(std::shared_ptr<Compressor> base, std::string name,
                          int stages = 9, double factor = 4.0)
      : base_(std::move(base)), name_(std::move(name)), stages_(stages),
        factor_(factor) {}

  std::string name() const override { return name_; }
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;
  Retrieval retrieve_error(const Bytes& archive, double target) override;
  Retrieval retrieve_bytes(const Bytes& archive, std::uint64_t budget) override;

 private:
  struct Stage {
    double bound;
    std::size_t offset;
    std::size_t size;
  };
  struct Parsed {
    std::vector<Stage> stages;
    std::size_t header_bytes;
  };
  Parsed parse(const Bytes& archive) const;
  Retrieval load_stage(const Bytes& archive, const Parsed& p, std::size_t k) const;

  std::shared_ptr<Compressor> base_;
  std::string name_;
  int stages_;
  double factor_;
};

}  // namespace ipcomp
