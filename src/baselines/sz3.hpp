// SZ3 baseline: the leading non-progressive interpolation compressor
// (paper §6.1.3; Zhao et al., ICDE'21).
//
// Shares IPComp's interpolation predictor and in-loop quantizer, but encodes
// the quantization codes the SZ3 way: linear-scale codes offset into a
// bounded symbol alphabet, Huffman coded, then passed through the LZ77 stage
// (SZ3 uses zstd there).  No progressive capability — this is the fidelity
// and speed reference for single-fidelity retrieval, and the stage codec for
// the SZ3-M / SZ3-R baselines.
#pragma once

#include "baselines/baseline.hpp"
#include "interp/interpolation.hpp"

namespace ipcomp {

class Sz3Compressor final : public Compressor {
 public:
  explicit Sz3Compressor(InterpKind interp = InterpKind::kCubic,
                         std::uint32_t radius = 1u << 15)
      : interp_(interp), radius_(radius) {}

  std::string name() const override { return "SZ3"; }
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;

  /// Dims recorded in an SZ3 archive (for harnesses).
  static Dims archive_dims(const Bytes& archive);

 private:
  InterpKind interp_;
  std::uint32_t radius_;
};

}  // namespace ipcomp
