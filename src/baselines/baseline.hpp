// Common interface for the baseline compressors of the evaluation (§6.1.3).
//
// All baselines speak absolute error bounds and produce self-describing
// archives.  Progressive baselines additionally expose the two retrieval
// modes of the paper and report the data volume actually loaded plus the
// number of decompression passes a retrieval required (residual-based
// methods execute one pass per loaded stage — their structural drawback).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/bytes.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

/// Thread contract: externally-synchronized.  The interface takes non-const
/// `this` on every operation because several implementations keep scratch or
/// adapter state between calls; benchmarks construct one instance per worker.
/// (The ipcomp library proper is stricter — see core/compressor.hpp and
/// core/progressive_reader.hpp.)
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// Progressive-backend label for bench reporting ("interp"/"wavelet" for
  /// IPComp variants, "-" for external baselines).
  virtual std::string backend_label() const { return "-"; }

  /// Compress with an absolute error bound.
  virtual Bytes compress(NdConstView<double> data, double eb_abs) = 0;

  /// Full-fidelity decompression (error <= the compression bound).
  virtual std::vector<double> decompress(const Bytes& archive) = 0;
};

struct Retrieval {
  std::vector<double> data;
  /// Bytes that had to be loaded to satisfy the request.
  std::size_t bytes_loaded = 0;
  /// Decompression passes executed (1 for single-pass designs).
  int passes = 0;
  /// The error bound the retrieval guarantees (if the method provides one).
  double guaranteed_error = 0.0;
};

class ProgressiveCompressor : public Compressor {
 public:
  /// Retrieve with L∞ error <= target (target >= the compression bound).
  virtual Retrieval retrieve_error(const Bytes& archive, double target) = 0;

  /// Retrieve within a byte budget, minimizing error.
  virtual Retrieval retrieve_bytes(const Bytes& archive, std::uint64_t budget) = 0;
};

}  // namespace ipcomp
