#include "baselines/residual.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ipcomp {

Bytes ResidualCompressor::compress(NdConstView<double> data, double eb_abs) {
  const Dims dims = data.dims();
  const std::size_t n = dims.count();

  std::vector<double> residual(data.span().begin(), data.span().end());
  std::vector<Bytes> payloads;
  std::vector<double> bounds;
  payloads.reserve(stages_);
  for (int k = 0; k < stages_; ++k) {
    const double bound = eb_abs * std::pow(factor_, stages_ - 1 - k);
    bounds.push_back(bound);
    Bytes stage = base_->compress(NdConstView<double>(residual.data(), dims), bound);
    // Subtract this stage's reconstruction to form the next residual
    // (the last stage's residual is never needed).
    if (k + 1 < stages_) {
      std::vector<double> recon = base_->decompress(stage);
      parallel_for(0, n, [&](std::size_t i) { residual[i] -= recon[i]; },
                   /*grain=*/1 << 15);
    }
    payloads.push_back(std::move(stage));
  }

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.varint(payloads.size());
  for (std::size_t k = 0; k < payloads.size(); ++k) {
    w.f64(bounds[k]);
    w.varint(payloads[k].size());
  }
  for (auto& p : payloads) w.bytes(p);
  return w.take();
}

ResidualCompressor::Parsed ResidualCompressor::parse(const Bytes& archive) const {
  ByteReader r({archive.data(), archive.size()});
  Parsed p;
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  p.dims = Dims::of_rank(rank, extents);
  std::size_t count = r.varint();
  p.stages.resize(count);
  for (auto& s : p.stages) {
    s.bound = r.f64();
    s.size = r.varint();
  }
  std::size_t offset = r.position();
  p.header_bytes = offset;
  for (auto& s : p.stages) {
    s.offset = offset;
    offset += s.size;
  }
  if (offset != archive.size()) throw std::runtime_error("residual: truncated");
  return p;
}

Retrieval ResidualCompressor::accumulate(const Bytes& archive, const Parsed& p,
                                         std::size_t last) const {
  Retrieval out;
  out.data.assign(p.dims.count(), 0.0);
  out.bytes_loaded = p.header_bytes;
  out.passes = 0;
  for (std::size_t k = 0; k <= last; ++k) {
    const Stage& s = p.stages[k];
    Bytes payload(archive.begin() + s.offset, archive.begin() + s.offset + s.size);
    std::vector<double> recon = base_->decompress(payload);
    parallel_for(0, out.data.size(),
                 [&](std::size_t i) { out.data[i] += recon[i]; },
                 /*grain=*/1 << 15);
    out.bytes_loaded += s.size;
    ++out.passes;
  }
  out.guaranteed_error = p.stages[last].bound;
  return out;
}

std::vector<double> ResidualCompressor::decompress(const Bytes& archive) {
  Parsed p = parse(archive);
  return accumulate(archive, p, p.stages.size() - 1).data;
}

Retrieval ResidualCompressor::retrieve_error(const Bytes& archive, double target) {
  Parsed p = parse(archive);
  for (std::size_t k = 0; k < p.stages.size(); ++k) {
    if (p.stages[k].bound <= target) return accumulate(archive, p, k);
  }
  return accumulate(archive, p, p.stages.size() - 1);  // best effort
}

Retrieval ResidualCompressor::retrieve_bytes(const Bytes& archive,
                                             std::uint64_t budget) {
  Parsed p = parse(archive);
  // Load the longest prefix of stages that fits (the paper's "largest
  // residual anchor within the bitrate constraint").
  std::size_t cum = p.header_bytes;
  std::size_t last = 0;
  bool any = false;
  for (std::size_t k = 0; k < p.stages.size(); ++k) {
    cum += p.stages[k].size;
    if (cum <= budget) {
      last = k;
      any = true;
    } else {
      break;
    }
  }
  if (!any) last = 0;  // best effort: the coarsest stage alone
  return accumulate(archive, p, last);
}

}  // namespace ipcomp
