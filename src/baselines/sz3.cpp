#include "baselines/sz3.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "coding/huffman.hpp"
#include "coding/lzh.hpp"
#include "interp/sweep.hpp"
#include "io/bitstream.hpp"
#include "quant/quantizer.hpp"
#include "util/sync.hpp"

namespace ipcomp {

namespace {

/// Global slot offsets in sweep order (level L-1 first).
std::vector<std::size_t> level_offsets(const LevelStructure& ls) {
  std::vector<std::size_t> off(ls.num_levels, 0);
  std::size_t acc = 0;
  for (unsigned li = ls.num_levels; li-- > 0;) {
    off[li] = acc;
    acc += ls.level_count[li];
  }
  return off;
}

}  // namespace

Bytes Sz3Compressor::compress(NdConstView<double> data, double eb_abs) {
  if (eb_abs <= 0) throw std::invalid_argument("sz3: error bound must be positive");
  const Dims dims = data.dims();
  const LevelStructure ls = LevelStructure::analyze(dims);
  const auto offsets = level_offsets(ls);
  const LinearQuantizer quant(eb_abs);
  const std::int64_t radius = radius_;

  std::vector<std::uint32_t> symbols(dims.count(), 0);
  std::vector<std::pair<std::size_t, double>> outliers;
  Mutex outlier_mutex;

  std::vector<double> xhat(data.span().begin(), data.span().end());
  const double* original = data.data();
  interpolation_sweep(xhat.data(), ls, interp_,
                      [&](unsigned li, std::size_t slot, std::size_t idx,
                          double pred) -> double {
                        const std::size_t g = offsets[li] + slot;
                        std::int64_t code;
                        double recon;
                        if (quant.quantize(original[idx], pred, code, recon) &&
                            code > -radius && code < radius) {
                          symbols[g] = static_cast<std::uint32_t>(code + radius);
                          return recon;
                        }
                        LockGuard lock(outlier_mutex);
                        outliers.emplace_back(g, original[idx]);
                        symbols[g] = 0;  // reserved outlier symbol
                        return original[idx];
                      });
  std::sort(outliers.begin(), outliers.end());

  // Huffman over the symbol stream, then LZ77 over table + bitstream
  // (mirrors SZ3's Huffman + zstd pipeline).
  std::vector<std::uint64_t> freq(2 * radius_, 0);
  for (auto s : symbols) ++freq[s];
  auto lengths = build_code_lengths(freq);
  HuffmanEncoder enc(lengths);
  ByteWriter hw;
  serialize_code_lengths(hw, lengths);
  BitWriter bw(dims.count() / 2);
  for (auto s : symbols) enc.encode(bw, s);
  Bytes bits = bw.finish();
  hw.varint(bits.size());
  hw.bytes(bits);
  Bytes huff_blob = hw.take();
  Bytes packed = lzh_compress({huff_blob.data(), huff_blob.size()});

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.f64(eb_abs);
  w.u8(static_cast<std::uint8_t>(interp_));
  w.varint(radius_);
  w.varint(outliers.size());
  std::size_t prev = 0;
  for (auto [g, value] : outliers) {
    w.varint(g - prev);
    w.f64(value);
    prev = g;
  }
  w.varint(packed.size());
  w.bytes(packed);
  return w.take();
}

std::vector<double> Sz3Compressor::decompress(const Bytes& archive) {
  ByteReader r({archive.data(), archive.size()});
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  const Dims dims = Dims::of_rank(rank, extents);
  const double eb = r.f64();
  const auto interp = static_cast<InterpKind>(r.u8());
  const std::uint32_t radius = static_cast<std::uint32_t>(r.varint());

  std::size_t n_outliers = r.varint();
  std::map<std::size_t, double> outliers;
  std::size_t g = 0;
  for (std::size_t i = 0; i < n_outliers; ++i) {
    g += r.varint();
    outliers[g] = r.f64();
  }

  std::size_t packed_size = r.varint();
  Bytes huff_blob = lzh_decompress(r.bytes(packed_size));
  ByteReader hr({huff_blob.data(), huff_blob.size()});
  auto lengths = deserialize_code_lengths(hr);
  HuffmanDecoder dec(lengths);
  std::size_t bits_size = hr.varint();
  BitReader br(hr.bytes(bits_size));
  std::vector<std::uint32_t> symbols(dims.count());
  for (auto& s : symbols) s = dec.decode(br);

  const LevelStructure ls = LevelStructure::analyze(dims);
  const auto offsets = level_offsets(ls);
  const LinearQuantizer quant(eb);
  std::vector<double> out(dims.count(), 0.0);
  interpolation_sweep(out.data(), ls, interp,
                      [&](unsigned li, std::size_t slot, std::size_t /*idx*/,
                          double pred) -> double {
                        const std::size_t gs = offsets[li] + slot;
                        const std::uint32_t s = symbols[gs];
                        if (s == 0) return outliers.at(gs);
                        return quant.dequantize(
                            pred, static_cast<std::int64_t>(s) -
                                      static_cast<std::int64_t>(radius));
                      });
  return out;
}

Dims Sz3Compressor::archive_dims(const Bytes& archive) {
  ByteReader r({archive.data(), archive.size()});
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  return Dims::of_rank(rank, extents);
}

}  // namespace ipcomp
