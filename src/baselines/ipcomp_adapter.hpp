// IPComp behind the common baseline interface, plus the compressor registry
// used by every bench harness (the line-up of §6.1.3).
#pragma once

#include <memory>

#include "baselines/baseline.hpp"
#include "core/options.hpp"
#include "core/progressive_reader.hpp"
#include "loader/error_model.hpp"

namespace ipcomp {

class IpcompAdapter final : public ProgressiveCompressor {
 public:
  explicit IpcompAdapter(Options opt = {}, ReaderConfig cfg = {},
                         std::string name = "IPComp")
      : opt_(opt), cfg_(cfg), name_(std::move(name)) {
    opt_.relative = false;  // the adapter interface speaks absolute bounds
  }

  std::string name() const override { return name_; }
  std::string backend_label() const override;
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;
  Retrieval retrieve_error(const Bytes& archive, double target) override;
  Retrieval retrieve_bytes(const Bytes& archive, std::uint64_t budget) override;

 private:
  Options opt_;
  ReaderConfig cfg_;
  std::string name_;
};

/// All progressive compressors of the paper's evaluation:
/// IPComp, SZ3-M, SZ3-R, ZFP-R, PMGARD.
std::vector<std::shared_ptr<ProgressiveCompressor>> evaluation_lineup();

/// The same plus SPERR-R (which Fig. 8 adds for the speed study).
std::vector<std::shared_ptr<ProgressiveCompressor>> speed_lineup();

/// Block-decomposed IPComp (archive v2) at the benchmarks' canonical block
/// side; shared so fig5/fig8/CI all track the same variant.
std::shared_ptr<ProgressiveCompressor> ipcomp_block_variant();

/// IPComp's wavelet backend (archive v3) at the same canonical block side;
/// the second first-class backend behind the ProgressiveBackend seam.
std::shared_ptr<ProgressiveCompressor> ipcomp_wavelet_variant();

/// Residual compressor factory (for the Fig. 9 residual-count sweep).
std::shared_ptr<ProgressiveCompressor> make_residual(const std::string& base,
                                                     int stages);

}  // namespace ipcomp
