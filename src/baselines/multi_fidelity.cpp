#include "baselines/multi_fidelity.hpp"

#include <cmath>
#include <stdexcept>

namespace ipcomp {

Bytes MultiFidelityCompressor::compress(NdConstView<double> data, double eb_abs) {
  ByteWriter w;
  w.varint(static_cast<std::uint64_t>(stages_));
  std::vector<Bytes> payloads;
  payloads.reserve(stages_);
  for (int k = 0; k < stages_; ++k) {
    const double bound = eb_abs * std::pow(factor_, stages_ - 1 - k);
    Bytes stage = base_->compress(data, bound);
    w.f64(bound);
    w.varint(stage.size());
    payloads.push_back(std::move(stage));
  }
  for (auto& p : payloads) w.bytes(p);
  return w.take();
}

MultiFidelityCompressor::Parsed MultiFidelityCompressor::parse(
    const Bytes& archive) const {
  ByteReader r({archive.data(), archive.size()});
  Parsed p;
  std::size_t n = r.varint();
  p.stages.resize(n);
  for (auto& s : p.stages) {
    s.bound = r.f64();
    s.size = r.varint();
  }
  std::size_t offset = r.position();
  p.header_bytes = offset;
  for (auto& s : p.stages) {
    s.offset = offset;
    offset += s.size;
  }
  if (offset != archive.size()) throw std::runtime_error("sz3m: truncated archive");
  return p;
}

Retrieval MultiFidelityCompressor::load_stage(const Bytes& archive,
                                              const Parsed& p,
                                              std::size_t k) const {
  const Stage& s = p.stages[k];
  Bytes payload(archive.begin() + s.offset, archive.begin() + s.offset + s.size);
  Retrieval out;
  out.data = base_->decompress(payload);
  out.bytes_loaded = p.header_bytes + s.size;
  out.passes = 1;
  out.guaranteed_error = s.bound;
  return out;
}

std::vector<double> MultiFidelityCompressor::decompress(const Bytes& archive) {
  Parsed p = parse(archive);
  return load_stage(archive, p, p.stages.size() - 1).data;
}

Retrieval MultiFidelityCompressor::retrieve_error(const Bytes& archive,
                                                  double target) {
  Parsed p = parse(archive);
  // Stages are ordered loosest -> tightest; pick the loosest satisfying one.
  for (std::size_t k = 0; k < p.stages.size(); ++k) {
    if (p.stages[k].bound <= target) return load_stage(archive, p, k);
  }
  return load_stage(archive, p, p.stages.size() - 1);  // best effort
}

Retrieval MultiFidelityCompressor::retrieve_bytes(const Bytes& archive,
                                                  std::uint64_t budget) {
  Parsed p = parse(archive);
  // Pick the most precise stage fitting the budget.
  std::size_t chosen = p.stages.size();  // sentinel: none fits
  for (std::size_t k = 0; k < p.stages.size(); ++k) {
    if (p.header_bytes + p.stages[k].size <= budget) chosen = k;
  }
  if (chosen == p.stages.size()) chosen = 0;  // best effort: cheapest stage
  return load_stage(archive, p, chosen);
}

}  // namespace ipcomp
