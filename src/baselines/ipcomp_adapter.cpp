#include "baselines/ipcomp_adapter.hpp"

#include <stdexcept>

#include "baselines/multi_fidelity.hpp"
#include "baselines/residual.hpp"
#include "baselines/sz3.hpp"
#include "core/compressor.hpp"
#include "core/progressive_reader.hpp"
#include "mgard/mgard.hpp"
#include "transform/zfp.hpp"
#include "wavelet/sperr.hpp"

namespace ipcomp {

std::string IpcompAdapter::backend_label() const {
  return to_string(opt_.backend);
}

Bytes IpcompAdapter::compress(NdConstView<double> data, double eb_abs) {
  Options opt = opt_;
  opt.error_bound = eb_abs;
  return ipcomp::compress(data, opt);
}

namespace {

/// plan() then execute(), cross-checking the planner's exact-pricing
/// contract: a plan's predicted bytes_new must match what execute() then
/// fetched.  The baselines are the evaluation's measuring stick, so a drift
/// here (a planner/accounting regression) should abort loudly rather than
/// skew every comparison figure.
RetrievalStats checked_retrieve(ProgressiveReader<double>& reader,
                                const Request& req) {
  const RetrievalPlan plan = reader.plan(req);
  RetrievalStats st = reader.execute(plan);
  if (st.bytes_new != plan.bytes_new) {
    throw std::logic_error(
        "ipcomp adapter: plan predicted " + std::to_string(plan.bytes_new) +
        " bytes but execute fetched " + std::to_string(st.bytes_new));
  }
  return st;
}

}  // namespace

std::vector<double> IpcompAdapter::decompress(const Bytes& archive) {
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src, cfg_);
  checked_retrieve(reader, Request::full());
  return reader.data();
}

Retrieval IpcompAdapter::retrieve_error(const Bytes& archive, double target) {
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src, cfg_);
  auto st = checked_retrieve(reader, Request::error_bound(target));
  Retrieval out;
  out.data = reader.data();
  out.bytes_loaded = st.bytes_total;
  out.passes = 1;
  out.guaranteed_error = st.guaranteed_error;
  return out;
}

Retrieval IpcompAdapter::retrieve_bytes(const Bytes& archive, std::uint64_t budget) {
  MemorySource src{Bytes(archive)};
  ProgressiveReader<double> reader(src, cfg_);
  auto st = checked_retrieve(reader, Request::bytes(budget));
  Retrieval out;
  out.data = reader.data();
  out.bytes_loaded = st.bytes_total;
  out.passes = 1;
  out.guaranteed_error = st.guaranteed_error;
  return out;
}

std::vector<std::shared_ptr<ProgressiveCompressor>> evaluation_lineup() {
  auto sz3 = std::make_shared<Sz3Compressor>();
  auto zfp = std::make_shared<ZfpCompressor>();
  return {
      std::make_shared<IpcompAdapter>(),
      std::make_shared<MultiFidelityCompressor>(sz3, "SZ3-M"),
      std::make_shared<ResidualCompressor>(sz3, "SZ3-R"),
      std::make_shared<ResidualCompressor>(zfp, "ZFP-R"),
      std::make_shared<PmgardCompressor>(),
  };
}

std::shared_ptr<ProgressiveCompressor> ipcomp_block_variant() {
  Options opt;
  opt.block_side = 32;
  return std::make_shared<IpcompAdapter>(opt, ReaderConfig{}, "IPComp-B32");
}

std::shared_ptr<ProgressiveCompressor> ipcomp_wavelet_variant() {
  Options opt;
  opt.backend = BackendId::kWavelet;
  opt.block_side = 32;
  return std::make_shared<IpcompAdapter>(opt, ReaderConfig{}, "IPComp-W32");
}


std::vector<std::shared_ptr<ProgressiveCompressor>> speed_lineup() {
  auto lineup = evaluation_lineup();
  lineup.push_back(std::make_shared<ResidualCompressor>(
      std::make_shared<SperrCompressor>(), "SPERR-R"));
  // Block-decomposed IPComp (archive v2): the speed study's parallel variant.
  lineup.push_back(ipcomp_block_variant());
  // Wavelet backend (archive v3): the per-backend dimension of the study.
  lineup.push_back(ipcomp_wavelet_variant());
  return lineup;
}

std::shared_ptr<ProgressiveCompressor> make_residual(const std::string& base,
                                                     int stages) {
  std::shared_ptr<Compressor> codec;
  if (base == "SZ3") {
    codec = std::make_shared<Sz3Compressor>();
  } else if (base == "ZFP") {
    codec = std::make_shared<ZfpCompressor>();
  } else if (base == "SPERR") {
    codec = std::make_shared<SperrCompressor>();
  } else {
    throw std::invalid_argument("make_residual: unknown base " + base);
  }
  return std::make_shared<ResidualCompressor>(codec, base + "-R", stages);
}

}  // namespace ipcomp
