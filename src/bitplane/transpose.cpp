#include "bitplane/transpose.hpp"

#include <bit>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define IPCOMP_X86_KERNELS 1
#include <immintrin.h>
#else
#define IPCOMP_X86_KERNELS 0
#endif

namespace ipcomp {

namespace {

// ---- scalar tier ---------------------------------------------------------
//
// Sparse-friendly: each value contributes popcount(v) word updates, so tiles
// of near-zero codes (the common case after good prediction) cost almost
// nothing.  Also the fallback every SIMD tier takes for partial tiles.

std::uint32_t tile_fwd_scalar(const std::uint32_t* v, std::size_t n,
                              std::uint64_t* words) {
  std::uint32_t orall = 0;
  for (std::size_t j = 0; j < n; ++j) orall |= v[j];
  std::uint32_t bits = orall;
  while (bits) {
    words[std::countr_zero(bits)] = 0;
    bits &= bits - 1;
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t x = v[j];
    while (x) {
      words[std::countr_zero(x)] |= std::uint64_t{1} << j;
      x &= x - 1;
    }
  }
  return orall;
}

std::uint64_t tile_fwd_one_scalar(const std::uint32_t* v, std::size_t n,
                                  unsigned k) {
  std::uint64_t w = 0;
  for (std::size_t j = 0; j < n; ++j) {
    w |= static_cast<std::uint64_t>((v[j] >> k) & 1u) << j;
  }
  return w;
}

void tile_deposit_scalar(std::uint32_t* v, std::size_t n,
                         const std::uint64_t* words, const unsigned* ks,
                         std::size_t nk) {
  for (std::size_t t = 0; t < nk; ++t) {
    const std::uint32_t bit = std::uint32_t{1} << ks[t];
    std::uint64_t w = words[t];
    if (n < kTileValues) w &= (n == 0) ? 0 : (~std::uint64_t{0} >> (64 - n));
    while (w) {
      v[std::countr_zero(w)] |= bit;
      w &= w - 1;
    }
  }
}

constexpr TransposeOps kScalarOps{tile_fwd_scalar, tile_fwd_one_scalar,
                                  tile_deposit_scalar};

#if IPCOMP_X86_KERNELS

// ---- SSE2 tier -----------------------------------------------------------
//
// 4 values per vector; _mm_movemask_ps reads the 4 sign bits, so shifting
// plane k up to the sign position turns one plane of 4 values into 4 bits.
// Full tiles only; partial tiles fall through to scalar.

__attribute__((target("sse2"))) std::uint32_t tile_fwd_sse2(
    const std::uint32_t* v, std::size_t n, std::uint64_t* words) {
  if (n < kTileValues) return tile_fwd_scalar(v, n, words);
  const auto* p = reinterpret_cast<const __m128i*>(v);
  __m128i acc = _mm_loadu_si128(p);
  for (int g = 1; g < 16; ++g) acc = _mm_or_si128(acc, _mm_loadu_si128(p + g));
  acc = _mm_or_si128(acc, _mm_shuffle_epi32(acc, 0x4E));
  acc = _mm_or_si128(acc, _mm_shuffle_epi32(acc, 0xB1));
  const auto orall = static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
  if (orall == 0) return 0;
  const unsigned top = 32u - static_cast<unsigned>(std::countl_zero(orall));
  for (unsigned k = 0; k < top; ++k) words[k] = 0;
  const __m128i lift = _mm_cvtsi32_si128(static_cast<int>(32 - top));
  for (int g = 0; g < 16; ++g) {
    __m128i x = _mm_sll_epi32(_mm_loadu_si128(p + g), lift);
    for (unsigned k = top; k-- > 0;) {
      const auto m = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(x)));
      words[k] |= static_cast<std::uint64_t>(m) << (4 * g);
      x = _mm_slli_epi32(x, 1);
    }
  }
  return orall;
}

__attribute__((target("sse2"))) std::uint64_t tile_fwd_one_sse2(
    const std::uint32_t* v, std::size_t n, unsigned k) {
  if (n < kTileValues) return tile_fwd_one_scalar(v, n, k);
  const auto* p = reinterpret_cast<const __m128i*>(v);
  const __m128i lift = _mm_cvtsi32_si128(static_cast<int>(31 - k));
  std::uint64_t w = 0;
  for (int g = 0; g < 16; ++g) {
    const __m128i x = _mm_sll_epi32(_mm_loadu_si128(p + g), lift);
    const auto m = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(x)));
    w |= static_cast<std::uint64_t>(m) << (4 * g);
  }
  return w;
}

__attribute__((target("sse2"))) void tile_deposit_sse2(
    std::uint32_t* v, std::size_t n, const std::uint64_t* words,
    const unsigned* ks, std::size_t nk) {
  if (n < kTileValues) {
    tile_deposit_scalar(v, n, words, ks, nk);
    return;
  }
  // Hybrid: sparse words cost ~popcount scalar OR-ins, the vector expand a
  // fixed ~6 ops per 4-value group — route each word to whichever is cheaper
  // (cutoffs measured with bench_bitplane on the interp-residual profile).
  std::uint64_t dense_w[32];
  unsigned dense_k[32];
  std::size_t nd = 0;
  for (std::size_t t = 0; t < nk; ++t) {
    if (std::popcount(words[t]) < 24) {
      tile_deposit_scalar(v, n, &words[t], &ks[t], 1);
    } else {
      dense_w[nd] = words[t];
      dense_k[nd] = ks[t];
      ++nd;
    }
  }
  if (nd == 0) return;
  const __m128i lane = _mm_setr_epi32(1, 2, 4, 8);
  auto* p = reinterpret_cast<__m128i*>(v);
  __m128i xs[16];
  for (int g = 0; g < 16; ++g) xs[g] = _mm_loadu_si128(p + g);
  for (std::size_t t = 0; t < nd; ++t) {
    const __m128i bit = _mm_set1_epi32(static_cast<int>(1u << dense_k[t]));
    for (int g = 0; g < 16; ++g) {
      const auto nib = static_cast<int>((dense_w[t] >> (4 * g)) & 0xF);
      if (nib == 0) continue;
      const __m128i hit =
          _mm_cmpeq_epi32(_mm_and_si128(_mm_set1_epi32(nib), lane), lane);
      xs[g] = _mm_or_si128(xs[g], _mm_and_si128(hit, bit));
    }
  }
  for (int g = 0; g < 16; ++g) _mm_storeu_si128(p + g, xs[g]);
}

constexpr TransposeOps kSse2Ops{tile_fwd_sse2, tile_fwd_one_sse2,
                                tile_deposit_sse2};

// ---- AVX2 tier -----------------------------------------------------------
//
// Same movemask walk at 8 values per vector: 8 groups x top planes per tile.

__attribute__((target("avx2"))) std::uint32_t tile_fwd_avx2(
    const std::uint32_t* v, std::size_t n, std::uint64_t* words) {
  if (n < kTileValues) return tile_fwd_scalar(v, n, words);
  const auto* p = reinterpret_cast<const __m256i*>(v);
  __m256i acc = _mm256_loadu_si256(p);
  for (int g = 1; g < 8; ++g) {
    acc = _mm256_or_si256(acc, _mm256_loadu_si256(p + g));
  }
  const __m128i half = _mm_or_si128(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1));
  __m128i fold = _mm_or_si128(half, _mm_shuffle_epi32(half, 0x4E));
  fold = _mm_or_si128(fold, _mm_shuffle_epi32(fold, 0xB1));
  const auto orall = static_cast<std::uint32_t>(_mm_cvtsi128_si32(fold));
  if (orall == 0) return 0;
  const unsigned top = 32u - static_cast<unsigned>(std::countl_zero(orall));
  for (unsigned k = 0; k < top; ++k) words[k] = 0;
  const __m128i lift = _mm_cvtsi32_si128(static_cast<int>(32 - top));
  for (int g = 0; g < 8; ++g) {
    __m256i x = _mm256_sll_epi32(_mm256_loadu_si256(p + g), lift);
    for (unsigned k = top; k-- > 0;) {
      const auto m =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(x)));
      words[k] |= static_cast<std::uint64_t>(m) << (8 * g);
      x = _mm256_slli_epi32(x, 1);
    }
  }
  return orall;
}

__attribute__((target("avx2"))) std::uint64_t tile_fwd_one_avx2(
    const std::uint32_t* v, std::size_t n, unsigned k) {
  if (n < kTileValues) return tile_fwd_one_scalar(v, n, k);
  const auto* p = reinterpret_cast<const __m256i*>(v);
  const __m128i lift = _mm_cvtsi32_si128(static_cast<int>(31 - k));
  std::uint64_t w = 0;
  for (int g = 0; g < 8; ++g) {
    const __m256i x = _mm256_sll_epi32(_mm256_loadu_si256(p + g), lift);
    const auto m =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(x)));
    w |= static_cast<std::uint64_t>(m) << (8 * g);
  }
  return w;
}

__attribute__((target("avx2"))) void tile_deposit_avx2(
    std::uint32_t* v, std::size_t n, const std::uint64_t* words,
    const unsigned* ks, std::size_t nk) {
  if (n < kTileValues) {
    tile_deposit_scalar(v, n, words, ks, nk);
    return;
  }
  // Same hybrid as the SSE2 tier, at 8 values per expand.  The dense path is
  // branchless: the whole plane word is splatted once, then vpshufb selects
  // byte g into every lane of group g (~5 ops per group).
  std::uint64_t dense_w[32];
  unsigned dense_k[32];
  std::size_t nd = 0;
  for (std::size_t t = 0; t < nk; ++t) {
    if (std::popcount(words[t]) < 10) {
      tile_deposit_scalar(v, n, &words[t], &ks[t], 1);
    } else {
      dense_w[nd] = words[t];
      dense_k[nd] = ks[t];
      ++nd;
    }
  }
  if (nd == 0) return;
  const __m256i lane = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  auto* p = reinterpret_cast<__m256i*>(v);
  __m256i xs[8];
  for (int g = 0; g < 8; ++g) xs[g] = _mm256_loadu_si256(p + g);
  for (std::size_t t = 0; t < nd; ++t) {
    const __m256i wv = _mm256_set1_epi64x(static_cast<long long>(dense_w[t]));
    const __m256i bit = _mm256_set1_epi32(static_cast<int>(1u << dense_k[t]));
    for (int g = 0; g < 8; ++g) {
      const __m256i splat = _mm256_shuffle_epi8(wv, _mm256_set1_epi8(
          static_cast<char>(g)));
      const __m256i hit =
          _mm256_cmpeq_epi32(_mm256_and_si256(splat, lane), lane);
      xs[g] = _mm256_or_si256(xs[g], _mm256_and_si256(hit, bit));
    }
  }
  for (int g = 0; g < 8; ++g) _mm256_storeu_si256(p + g, xs[g]);
}

constexpr TransposeOps kAvx2Ops{tile_fwd_avx2, tile_fwd_one_avx2,
                                tile_deposit_avx2};

#endif  // IPCOMP_X86_KERNELS

}  // namespace

const TransposeOps& transpose_ops(SimdLevel level) {
#if IPCOMP_X86_KERNELS
  // Clamp to the hardware: handing out an AVX2 table on a non-AVX2 machine
  // would fault at the first call.
  const SimdLevel hw = detected_simd_level();
  if (level > hw) level = hw;
  switch (level) {
    case SimdLevel::kAvx2: return kAvx2Ops;
    case SimdLevel::kSse2: return kSse2Ops;
    case SimdLevel::kScalar: break;
  }
#else
  (void)level;
#endif
  return kScalarOps;
}

const TransposeOps& transpose_ops() { return transpose_ops(simd_level()); }

}  // namespace ipcomp
