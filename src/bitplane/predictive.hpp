// Predictive bitplane coding (paper §4.4.1).
//
// Bitplanes of the same integer are correlated; because retrieval always
// loads planes MSB-first, the bits of higher planes are known when a plane is
// decoded.  Each bit is therefore predicted as the XOR of its `prefix_bits`
// preceding (higher-order) bits and the *prediction residual* is stored:
//   encoded_bit = (b_{k+1} ^ ... ^ b_{k+prefix}) ^ b_k
// The transform is an involution given the prefix planes, so decoding applies
// the same XOR.  The paper measures 2 prefix bits as the sweet spot
// (Table 2); that is the default everywhere.
#pragma once

#include <cstdint>
#include <span>

#include "io/bytes.hpp"

namespace ipcomp {

inline constexpr unsigned kDefaultPrefixBits = 2;

/// XOR-combine the `prefix_bits` planes above plane `k` into a prediction
/// mask for plane `k`.  `plane(j)` must return the packed bits of plane j for
/// j in (k, k+prefix]; planes above 31 are all zero.
///
/// encode: out = plane_k ^ prediction;  decode: plane_k = out ^ prediction.
/// Both are this same function applied to packed buffers.
void predictive_transform(std::span<const std::uint8_t> plane_k,
                          std::span<const std::uint8_t>* prefix_planes,
                          unsigned prefix_count,
                          std::span<std::uint8_t> out);

/// Convenience: transform plane `k` of `values` (packed) using the higher
/// planes taken directly from `values`.  Used on the encode side where all
/// planes exist as integers.
Bytes predictive_encode_plane(std::span<const std::uint32_t> values,
                              std::span<const std::uint8_t> plane_k,
                              unsigned k, unsigned prefix_bits);

/// One freshly fetched plane during batch decode: index and packed residual
/// bits, decoded to true plane bits in place.
struct MutablePlane {
  unsigned k = 0;
  std::span<std::uint8_t> bits;
};

/// Decode a batch of newly fetched planes of one level BEFORE any of them is
/// deposited into `values`.  `planes` must be in fetch order — strictly
/// descending k (MSB first) — because plane k's prediction reads the final
/// bits of planes (k, k+prefix_bits].  Each prefix plane is taken from the
/// batch when it is one of the new planes (already decoded, by the ordering)
/// and extracted from `values` otherwise (resident planes; planes above the
/// top are zero there).  Bit-identical to depositing each plane into
/// `values` and predicting the next from the updated integers, but the XOR
/// runs on packed buffers and the values are only touched by the single
/// multi-plane deposit afterwards.
void predictive_decode_planes(std::span<const std::uint32_t> values,
                              std::span<const MutablePlane> planes,
                              unsigned prefix_bits);

}  // namespace ipcomp
