// Bitplane extraction, reassembly and truncation-loss accounting.
//
// A level's quantized (negabinary) integers are viewed as 32 bitplanes; plane
// k collects bit k of every integer (paper Fig. 4).  Planes are packed MSB
// (k = 31) first into independent byte buffers so the archive can store and
// serve each plane as its own segment.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "io/bytes.hpp"

namespace ipcomp {

inline constexpr unsigned kPlaneCount = 32;

/// Packed bits of one plane: bit i of integer j lives at byte j/8, bit j%8.
using PlaneBits = Bytes;

/// Number of bytes needed to hold `n` bits.
inline std::size_t plane_bytes(std::size_t n) { return (n + 7) / 8; }

/// Extract plane `k` (0 = LSB ... 31 = MSB) from `values`.
PlaneBits extract_plane(std::span<const std::uint32_t> values, unsigned k);

/// Extract all 32 planes at once (single pass over the values).
std::array<PlaneBits, kPlaneCount> extract_all_planes(
    std::span<const std::uint32_t> values);

/// OR plane `k` back into `values` (values' bit k must currently be zero).
void deposit_plane(std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k);

/// Exact truncation-loss table: entry d is max_i |Σ_{k<d} b_k(-2)^k| over all
/// values, i.e. the worst value lost by dropping the d lowest planes
/// (in quantization-step units).  entry 0 is 0; entries run to 32.
std::array<std::int64_t, kPlaneCount + 1> truncation_loss_table(
    std::span<const std::uint32_t> values);

}  // namespace ipcomp
