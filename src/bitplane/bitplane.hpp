// Bitplane extraction, reassembly and truncation-loss accounting.
//
// A level's quantized (negabinary) integers are viewed as 32 bitplanes; plane
// k collects bit k of every integer (paper Fig. 4).  Planes are packed MSB
// (k = 31) first into independent byte buffers so the archive can store and
// serve each plane as its own segment.
//
// All plane traffic runs through the word-parallel transpose engine
// (bitplane/transpose.hpp): 64-value tiles are transposed to/from uint64
// plane words by runtime-dispatched scalar/SSE2/AVX2 kernels.  Every entry
// point has an overload taking an explicit kernel set so tests and
// benchmarks can pin a tier; the default overloads use the ambient
// dispatched tier (IPCOMP_SIMD overridable, see util/cpu.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitplane/transpose.hpp"
#include "io/bytes.hpp"

namespace ipcomp {

inline constexpr unsigned kPlaneCount = 32;

/// Packed bits of one plane: bit i of integer j lives at byte j/8, bit j%8.
using PlaneBits = Bytes;

/// Number of bytes needed to hold `n` bits.
inline std::size_t plane_bytes(std::size_t n) { return (n + 7) / 8; }

/// Extract plane `k` (0 = LSB ... 31 = MSB) from `values`.
PlaneBits extract_plane(const TransposeOps& ops,
                        std::span<const std::uint32_t> values, unsigned k);
PlaneBits extract_plane(std::span<const std::uint32_t> values, unsigned k);

/// Extract all 32 planes at once (single tiled pass over the values).
std::array<PlaneBits, kPlaneCount> extract_all_planes(
    const TransposeOps& ops, std::span<const std::uint32_t> values);
std::array<PlaneBits, kPlaneCount> extract_all_planes(
    std::span<const std::uint32_t> values);

/// OR plane `k` back into `values` (values' bit k must currently be zero).
void deposit_plane(const TransposeOps& ops, std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k);
void deposit_plane(std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k);

/// One plane handed to the multi-plane deposit: its index and packed bits
/// (bits.size() == plane_bytes(values.size())).
struct PlaneSpan {
  unsigned k = 0;
  std::span<const std::uint8_t> bits;
};

/// OR several planes into `values` in ONE pass: per 64-value tile, the plane
/// words of every listed plane are loaded (all-zero words skipped) and
/// scattered together, so the values are streamed through cache once instead
/// of once per plane.  Bit-identical to depositing the planes one by one.
void deposit_planes(const TransposeOps& ops, std::span<std::uint32_t> values,
                    std::span<const PlaneSpan> planes);
void deposit_planes(std::span<std::uint32_t> values,
                    std::span<const PlaneSpan> planes);

/// Exact truncation-loss table: entry d is max_i |Σ_{k<d} b_k(-2)^k| over all
/// values, i.e. the worst value lost by dropping the d lowest planes
/// (in quantization-step units).  entry 0 is 0; entries run to 32.
std::array<std::int64_t, kPlaneCount + 1> truncation_loss_table(
    std::span<const std::uint32_t> values);

/// Fused single-pass level encoding: plane count, truncation-loss table and
/// all plane buffers, computed tile-by-tile while the codes are cache-hot.
struct LevelEncoding {
  unsigned n_planes = 0;  ///< highest populated plane + 1 (0: all zero)
  /// Negabinary truncation losses (valid when requested; see encode_level).
  std::array<std::int64_t, kPlaneCount + 1> loss{};
  /// Packed planes, index k in [0, n_planes).
  std::vector<PlaneBits> planes;
};

/// One pass over `codes` producing the level's plane split.  `with_loss`
/// additionally accumulates the exact truncation-loss table (backends with
/// their own loss model — e.g. wavelet's measured tables — skip it).
/// Results are bit-identical to plane_count + truncation_loss_table +
/// extract_all_planes run separately.
LevelEncoding encode_level(const TransposeOps& ops,
                           std::span<const std::uint32_t> codes,
                           bool with_loss);
LevelEncoding encode_level(std::span<const std::uint32_t> codes,
                           bool with_loss);

}  // namespace ipcomp
