#include "bitplane/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ipcomp {

namespace {

// Plane buffers pack bit j of value j at byte j/8, bit j%8 — i.e. a tile's 8
// bytes are its plane word in little-endian order.  These helpers move
// (possibly partial, for tail tiles) words between buffers and registers.

std::uint64_t load_word(const std::uint8_t* p, std::size_t nbytes) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, nbytes);
    return w;
  } else {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < nbytes; ++i) {
      w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return w;
  }
}

void store_word(std::uint8_t* p, std::size_t nbytes, std::uint64_t w) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &w, nbytes);
  } else {
    for (std::size_t i = 0; i < nbytes; ++i) {
      p[i] = static_cast<std::uint8_t>(w >> (8 * i));
    }
  }
}

inline std::size_t tile_count(std::size_t n) {
  return (n + kTileValues - 1) / kTileValues;
}

/// Per-tile grain for the plane loops: one tile is 64 values of word-level
/// work, so ~512 tiles (32 Ki values) is where forking a team starts paying.
constexpr std::size_t kTileGrain = 512;

void accumulate_loss(std::span<const std::uint32_t> values,
                     std::array<std::int64_t, kPlaneCount + 1>& table) {
  // loss_v(d) = |decode(low d bits of v)| is piecewise constant in d: it only
  // changes at d = k+1 for set bits k, so walk each value's set bits and
  // range-update the table over (k, next_set_bit].  Note loss_v(d) is NOT
  // monotone in d (a higher negabinary bit can cancel lower ones), which is
  // why the table is exact per depth instead of a running maximum.
  for (std::uint32_t v : values) {
    if (v == 0) continue;
    std::int64_t acc = 0;
    std::uint32_t bits = v;
    unsigned k = static_cast<unsigned>(__builtin_ctz(bits));
    while (true) {
      bits &= bits - 1;
      // (-2)^k = 2^k with sign by parity of k.
      std::int64_t w = std::int64_t{1} << k;
      acc += (k & 1u) ? -w : w;
      std::int64_t mag = acc < 0 ? -acc : acc;
      unsigned next = bits ? static_cast<unsigned>(__builtin_ctz(bits)) : kPlaneCount;
      for (unsigned d = k + 1; d <= next; ++d) {
        if (mag > table[d]) table[d] = mag;
      }
      if (!bits) break;
      k = next;
    }
  }
}

/// Chunk width shared by the fused encode pass and truncation_loss_table so
/// both produce the same per-chunk partials (max-merge is exact either way;
/// matching widths just keeps the two paths trivially comparable).
constexpr std::size_t kLossChunk = 1 << 16;

}  // namespace

PlaneBits extract_plane(const TransposeOps& ops,
                        std::span<const std::uint32_t> values, unsigned k) {
  const std::size_t n = values.size();
  PlaneBits out(plane_bytes(n), 0);
  parallel_for(0, tile_count(n), [&](std::size_t t) {
    const std::size_t lo = t * kTileValues;
    const std::size_t cnt = std::min(kTileValues, n - lo);
    const std::uint64_t w = ops.tile_fwd_one(values.data() + lo, cnt, k);
    store_word(out.data() + 8 * t, plane_bytes(cnt), w);
  }, kTileGrain);
  return out;
}

PlaneBits extract_plane(std::span<const std::uint32_t> values, unsigned k) {
  return extract_plane(transpose_ops(), values, k);
}

std::array<PlaneBits, kPlaneCount> extract_all_planes(
    const TransposeOps& ops, std::span<const std::uint32_t> values) {
  const std::size_t n = values.size();
  const std::size_t nbytes = plane_bytes(n);
  std::array<PlaneBits, kPlaneCount> planes;
  for (auto& p : planes) p.assign(nbytes, 0);

  parallel_for(0, tile_count(n), [&](std::size_t t) {
    const std::size_t lo = t * kTileValues;
    const std::size_t cnt = std::min(kTileValues, n - lo);
    std::uint64_t words[kPlaneCount];
    std::uint32_t mask = ops.tile_fwd(values.data() + lo, cnt, words);
    while (mask) {
      const unsigned k = static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      store_word(planes[k].data() + 8 * t, plane_bytes(cnt), words[k]);
    }
  }, kTileGrain);
  return planes;
}

std::array<PlaneBits, kPlaneCount> extract_all_planes(
    std::span<const std::uint32_t> values) {
  return extract_all_planes(transpose_ops(), values);
}

void deposit_plane(const TransposeOps& ops, std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k) {
  const PlaneSpan one{k, plane};
  deposit_planes(ops, values, {&one, 1});
}

void deposit_plane(std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k) {
  deposit_plane(transpose_ops(), values, plane, k);
}

void deposit_planes(const TransposeOps& ops, std::span<std::uint32_t> values,
                    std::span<const PlaneSpan> planes) {
  if (planes.size() > kPlaneCount) {
    throw std::invalid_argument("deposit_planes: more planes than bits");
  }
  for (const PlaneSpan& p : planes) {
    if (p.k >= kPlaneCount) {
      throw std::invalid_argument("deposit_planes: plane index out of range");
    }
  }
  const std::size_t n = values.size();
  parallel_for(0, tile_count(n), [&](std::size_t t) {
    const std::size_t lo = t * kTileValues;
    const std::size_t cnt = std::min(kTileValues, n - lo);
    std::uint64_t words[kPlaneCount];
    unsigned ks[kPlaneCount];
    std::size_t nk = 0;
    for (const PlaneSpan& p : planes) {
      // A plane may legally cover fewer values (trailing bytes absent =
      // zero); clamp the word load to what it stores.
      if (8 * t >= p.bits.size()) continue;
      const std::size_t avail = std::min<std::size_t>(
          plane_bytes(cnt), p.bits.size() - 8 * t);
      const std::uint64_t w = load_word(p.bits.data() + 8 * t, avail);
      if (w == 0) continue;  // zero-word skip: nothing to OR in this tile
      words[nk] = w;
      ks[nk] = p.k;
      ++nk;
    }
    if (nk) ops.tile_deposit(values.data() + lo, cnt, words, ks, nk);
  }, kTileGrain);
}

void deposit_planes(std::span<std::uint32_t> values,
                    std::span<const PlaneSpan> planes) {
  deposit_planes(transpose_ops(), values, planes);
}

std::array<std::int64_t, kPlaneCount + 1> truncation_loss_table(
    std::span<const std::uint32_t> values) {
  // Per-chunk partial tables merged by max (the per-depth maximum commutes
  // with partitioning the value set).
  const std::size_t n_chunks = (values.size() + kLossChunk - 1) / kLossChunk;
  if (n_chunks <= 1) {
    std::array<std::int64_t, kPlaneCount + 1> table{};
    accumulate_loss(values, table);
    return table;
  }
  std::vector<std::array<std::int64_t, kPlaneCount + 1>> partial(
      n_chunks, std::array<std::int64_t, kPlaneCount + 1>{});
  parallel_chunks(0, values.size(), kLossChunk, [&](std::size_t lo,
                                                    std::size_t hi) {
    accumulate_loss(values.subspan(lo, hi - lo), partial[lo / kLossChunk]);
  });
  std::array<std::int64_t, kPlaneCount + 1> table{};
  for (const auto& p : partial) {
    for (unsigned d = 0; d <= kPlaneCount; ++d) table[d] = std::max(table[d], p[d]);
  }
  return table;
}

LevelEncoding encode_level(const TransposeOps& ops,
                           std::span<const std::uint32_t> codes,
                           bool with_loss) {
  LevelEncoding enc;
  const std::size_t n = codes.size();
  const std::size_t nbytes = plane_bytes(n);
  std::vector<PlaneBits> planes(kPlaneCount);
  for (auto& p : planes) p.assign(nbytes, 0);

  // One chunked pass: each chunk transposes its tiles into the plane buffers
  // (disjoint byte ranges) and, while the codes are still cache-hot, feeds
  // the same values to the loss accumulator.  Chunk-local OR masks and loss
  // tables merge by OR/max, so the result is thread-count independent and
  // bit-identical to the separate plane_count / truncation_loss_table /
  // extract_all_planes sweeps this replaces.
  constexpr std::size_t kChunkTiles = kLossChunk / kTileValues;
  const std::size_t tiles = tile_count(n);
  const std::size_t n_chunks = (tiles + kChunkTiles - 1) / kChunkTiles;
  std::vector<std::uint32_t> chunk_or(n_chunks, 0);
  std::vector<std::array<std::int64_t, kPlaneCount + 1>> chunk_loss(
      with_loss ? n_chunks : 0);
  parallel_chunks(0, tiles, kChunkTiles, [&](std::size_t t_lo,
                                             std::size_t t_hi) {
    const std::size_t c = t_lo / kChunkTiles;
    std::uint32_t orall = 0;
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      const std::size_t lo = t * kTileValues;
      const std::size_t cnt = std::min(kTileValues, n - lo);
      std::uint64_t words[kPlaneCount];
      std::uint32_t mask = ops.tile_fwd(codes.data() + lo, cnt, words);
      orall |= mask;
      while (mask) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        store_word(planes[k].data() + 8 * t, plane_bytes(cnt), words[k]);
      }
    }
    chunk_or[c] = orall;
    if (with_loss) {
      const std::size_t v_lo = t_lo * kTileValues;
      const std::size_t v_hi = std::min(n, t_hi * kTileValues);
      chunk_loss[c] = {};
      accumulate_loss(codes.subspan(v_lo, v_hi - v_lo), chunk_loss[c]);
    }
  });

  std::uint32_t orall = 0;
  for (std::uint32_t m : chunk_or) orall |= m;
  enc.n_planes = orall == 0 ? 0 : 32 - static_cast<unsigned>(std::countl_zero(orall));
  if (with_loss) {
    for (const auto& t : chunk_loss) {
      for (unsigned d = 0; d <= kPlaneCount; ++d) {
        enc.loss[d] = std::max(enc.loss[d], t[d]);
      }
    }
  }
  planes.resize(enc.n_planes);
  enc.planes = std::move(planes);
  return enc;
}

LevelEncoding encode_level(std::span<const std::uint32_t> codes,
                           bool with_loss) {
  return encode_level(transpose_ops(), codes, with_loss);
}

}  // namespace ipcomp
