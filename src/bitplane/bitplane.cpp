#include "bitplane/bitplane.hpp"

#include <algorithm>

#include "bitplane/negabinary.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

PlaneBits extract_plane(std::span<const std::uint32_t> values, unsigned k) {
  PlaneBits out(plane_bytes(values.size()), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i >> 3] |= static_cast<std::uint8_t>(((values[i] >> k) & 1u) << (i & 7));
  }
  return out;
}

std::array<PlaneBits, kPlaneCount> extract_all_planes(
    std::span<const std::uint32_t> values) {
  std::array<PlaneBits, kPlaneCount> planes;
  const std::size_t nbytes = plane_bytes(values.size());
  for (auto& p : planes) p.assign(nbytes, 0);

  // Process 8 values per output byte; parallel over byte positions.
  parallel_for(0, nbytes, [&](std::size_t byte) {
    const std::size_t base = byte * 8;
    const std::size_t lim = std::min<std::size_t>(8, values.size() - base);
    std::array<std::uint8_t, kPlaneCount> acc{};
    for (std::size_t j = 0; j < lim; ++j) {
      std::uint32_t v = values[base + j];
      while (v) {
        unsigned k = static_cast<unsigned>(__builtin_ctz(v));
        acc[k] |= static_cast<std::uint8_t>(1u << j);
        v &= v - 1;
      }
    }
    for (unsigned k = 0; k < kPlaneCount; ++k) {
      if (acc[k]) planes[k][byte] = acc[k];
    }
  }, /*grain=*/4096);
  return planes;
}

void deposit_plane(std::span<std::uint32_t> values,
                   std::span<const std::uint8_t> plane, unsigned k) {
  parallel_for(0, plane.size(), [&](std::size_t byte) {
    std::uint8_t bits = plane[byte];
    if (!bits) return;
    const std::size_t base = byte * 8;
    while (bits) {
      unsigned j = static_cast<unsigned>(__builtin_ctz(bits));
      values[base + j] |= (std::uint32_t{1} << k);
      bits = static_cast<std::uint8_t>(bits & (bits - 1));
    }
  }, /*grain=*/8192);
}

namespace {

void accumulate_loss(std::span<const std::uint32_t> values,
                     std::array<std::int64_t, kPlaneCount + 1>& table) {
  // loss_v(d) = |decode(low d bits of v)| is piecewise constant in d: it only
  // changes at d = k+1 for set bits k, so walk each value's set bits and
  // range-update the table over (k, next_set_bit].  Note loss_v(d) is NOT
  // monotone in d (a higher negabinary bit can cancel lower ones), which is
  // why the table is exact per depth instead of a running maximum.
  for (std::uint32_t v : values) {
    if (v == 0) continue;
    std::int64_t acc = 0;
    std::uint32_t bits = v;
    unsigned k = static_cast<unsigned>(__builtin_ctz(bits));
    while (true) {
      bits &= bits - 1;
      // (-2)^k = 2^k with sign by parity of k.
      std::int64_t w = std::int64_t{1} << k;
      acc += (k & 1u) ? -w : w;
      std::int64_t mag = acc < 0 ? -acc : acc;
      unsigned next = bits ? static_cast<unsigned>(__builtin_ctz(bits)) : kPlaneCount;
      for (unsigned d = k + 1; d <= next; ++d) {
        if (mag > table[d]) table[d] = mag;
      }
      if (!bits) break;
      k = next;
    }
  }
}

}  // namespace

std::array<std::int64_t, kPlaneCount + 1> truncation_loss_table(
    std::span<const std::uint32_t> values) {
  // Per-chunk partial tables merged by max (the per-depth maximum commutes
  // with partitioning the value set).
  constexpr std::size_t kChunk = 1 << 16;
  const std::size_t n_chunks = (values.size() + kChunk - 1) / kChunk;
  if (n_chunks <= 1) {
    std::array<std::int64_t, kPlaneCount + 1> table{};
    accumulate_loss(values, table);
    return table;
  }
  std::vector<std::array<std::int64_t, kPlaneCount + 1>> partial(
      n_chunks, std::array<std::int64_t, kPlaneCount + 1>{});
  parallel_for(0, n_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t len = std::min(kChunk, values.size() - begin);
    accumulate_loss(values.subspan(begin, len), partial[c]);
  }, /*grain=*/1);
  std::array<std::int64_t, kPlaneCount + 1> table{};
  for (const auto& p : partial) {
    for (unsigned d = 0; d <= kPlaneCount; ++d) table[d] = std::max(table[d], p[d]);
  }
  return table;
}

}  // namespace ipcomp
