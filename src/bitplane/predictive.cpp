#include "bitplane/predictive.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

void predictive_transform(std::span<const std::uint8_t> plane_k,
                          std::span<const std::uint8_t>* prefix_planes,
                          unsigned prefix_count,
                          std::span<std::uint8_t> out) {
  if (out.size() != plane_k.size()) {
    throw std::invalid_argument("predictive_transform: size mismatch");
  }
  parallel_for(0, plane_k.size(), [&](std::size_t i) {
    std::uint8_t pred = 0;
    for (unsigned p = 0; p < prefix_count; ++p) {
      pred ^= prefix_planes[p][i];
    }
    out[i] = plane_k[i] ^ pred;
  }, /*grain=*/1 << 16);
}

void predictive_decode_planes(std::span<const std::uint32_t> values,
                              std::span<const MutablePlane> planes,
                              unsigned prefix_bits) {
  for (std::size_t i = 1; i < planes.size(); ++i) {
    if (planes[i].k >= planes[i - 1].k) {
      throw std::invalid_argument(
          "predictive_decode_planes: planes must be MSB-first");
    }
  }
  // Resident prefix planes (bits already in `values`) are only needed for
  // the first prefix_bits new planes; extract each at most once.
  std::array<PlaneBits, kPlaneCount> resident;
  for (std::size_t i = 0; i < planes.size(); ++i) {
    const unsigned k = planes[i].k;
    std::span<std::uint8_t> bits = planes[i].bits;
    for (unsigned p = k + 1; p <= k + prefix_bits && p < kPlaneCount; ++p) {
      // A higher plane is either part of this batch (decoded on an earlier
      // iteration, by the MSB-first ordering) or resident in `values`.
      std::span<const std::uint8_t> src;
      bool in_batch = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (planes[j].k == p) {
          src = planes[j].bits;
          in_batch = true;
          break;
        }
      }
      if (!in_batch) {
        if (resident[p].empty()) resident[p] = extract_plane(values, p);
        src = resident[p];
      }
      const std::size_t m = std::min(bits.size(), src.size());
      for (std::size_t b = 0; b < m; ++b) bits[b] ^= src[b];
    }
  }
}

Bytes predictive_encode_plane(std::span<const std::uint32_t> values,
                              std::span<const std::uint8_t> plane_k,
                              unsigned k, unsigned prefix_bits) {
  Bytes out(plane_k.size(), 0);
  // Prediction = XOR of bits k+1 .. k+prefix of each value (planes above the
  // MSB are zero).  Work directly on the integers to avoid materializing the
  // prefix planes.
  parallel_for(0, plane_k.size(), [&](std::size_t byte) {
    const std::size_t base = byte * 8;
    const std::size_t lim = std::min<std::size_t>(8, values.size() - base);
    std::uint8_t pred = 0;
    for (std::size_t j = 0; j < lim; ++j) {
      std::uint32_t v = values[base + j];
      std::uint32_t x = 0;
      for (unsigned p = 1; p <= prefix_bits; ++p) {
        unsigned bit = k + p;
        if (bit < 32) x ^= (v >> bit) & 1u;
      }
      pred |= static_cast<std::uint8_t>(x << j);
    }
    out[byte] = plane_k[byte] ^ pred;
  }, /*grain=*/1 << 14);
  return out;
}

}  // namespace ipcomp
