#include "bitplane/predictive.hpp"

#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

void predictive_transform(std::span<const std::uint8_t> plane_k,
                          std::span<const std::uint8_t>* prefix_planes,
                          unsigned prefix_count,
                          std::span<std::uint8_t> out) {
  if (out.size() != plane_k.size()) {
    throw std::invalid_argument("predictive_transform: size mismatch");
  }
  parallel_for(0, plane_k.size(), [&](std::size_t i) {
    std::uint8_t pred = 0;
    for (unsigned p = 0; p < prefix_count; ++p) {
      pred ^= prefix_planes[p][i];
    }
    out[i] = plane_k[i] ^ pred;
  }, /*grain=*/1 << 16);
}

Bytes predictive_encode_plane(std::span<const std::uint32_t> values,
                              std::span<const std::uint8_t> plane_k,
                              unsigned k, unsigned prefix_bits) {
  Bytes out(plane_k.size(), 0);
  // Prediction = XOR of bits k+1 .. k+prefix of each value (planes above the
  // MSB are zero).  Work directly on the integers to avoid materializing the
  // prefix planes.
  parallel_for(0, plane_k.size(), [&](std::size_t byte) {
    const std::size_t base = byte * 8;
    const std::size_t lim = std::min<std::size_t>(8, values.size() - base);
    std::uint8_t pred = 0;
    for (std::size_t j = 0; j < lim; ++j) {
      std::uint32_t v = values[base + j];
      std::uint32_t x = 0;
      for (unsigned p = 1; p <= prefix_bits; ++p) {
        unsigned bit = k + p;
        if (bit < 32) x ^= (v >> bit) & 1u;
      }
      pred |= static_cast<std::uint8_t>(x << j);
    }
    out[byte] = plane_k[byte] ^ pred;
  }, /*grain=*/1 << 14);
  return out;
}

}  // namespace ipcomp
