// Negabinary (base -2) integer coding (paper §4.4.2).
//
// Progressive bitplane retrieval needs a sign-free representation whose
// high-order planes are zero for values near zero.  Negabinary provides both:
//   n = Σ b_k (-2)^k,   b_k ∈ {0,1}
// The 32-bit encode/decode uses the classic mask trick (also used by ZFP):
//   encode(x) = (x + M) ^ M,  decode(u) = (u ^ M) - M,  M = 0xAAAAAAAA.
//
// Because decoding is *linear over bit positions*, the value lost by zeroing
// the d lowest planes of u is exactly the decode of those d bits in
// isolation — the fact the optimizer's δy tables rest on (DESIGN.md §6.3).
#pragma once

#include <cstdint>
#include <limits>

namespace ipcomp {

inline constexpr std::uint32_t kNegabinaryMask = 0xAAAAAAAAu;

/// Largest magnitudes representable in 32-bit negabinary.
inline constexpr std::int64_t kNegabinaryMax = 0x55555555LL;   //  1431655765
inline constexpr std::int64_t kNegabinaryMin = -0xAAAAAAAALL;  // -2863311530

/// Encode a signed value into 32-bit negabinary.  The caller must keep the
/// value within [kNegabinaryMin, kNegabinaryMax]; quantizers clamp/outlier
/// values far before this range.
inline std::uint32_t negabinary_encode(std::int64_t v) {
  return (static_cast<std::uint32_t>(v) + kNegabinaryMask) ^ kNegabinaryMask;
}

/// Decode 32-bit negabinary back to a signed value.  Must be computed in
/// 64-bit: the negabinary range [-2863311530, 1431655765] does not fit in
/// int32, and (u ^ M) - M only equals Σ b_k(-2)^k without wraparound.
inline std::int64_t negabinary_decode(std::uint32_t u) {
  return static_cast<std::int64_t>(u ^ kNegabinaryMask) -
         static_cast<std::int64_t>(kNegabinaryMask);
}

/// Value contributed by the lowest `d` bits: Σ_{k<d} b_k (-2)^k.
/// Equals decode(u) - decode(u with low d bits cleared) by linearity.
inline std::int64_t negabinary_low_bits_value(std::uint32_t u, unsigned d) {
  if (d == 0) return 0;
  std::uint32_t low = (d >= 32) ? u : (u & ((std::uint32_t{1} << d) - 1u));
  return negabinary_decode(low);
}

/// Worst-case |value| representable in the lowest `d` negabinary bits
/// (paper's closed form: 2/3·2^d − 1/3 for odd d, 2/3·2^d − 2/3 for even d).
/// Odd d maximizes the positive sum (even positions set), even d the
/// negative one (odd positions set); both geometric sums collapse to
/// (2^(d+1) − (d odd ? 1 : 2)) / 3.  `d` must be at most 32.
inline std::int64_t negabinary_uncertainty(unsigned d) {
  return ((std::int64_t{1} << (d + 1)) - ((d & 1u) ? 1 : 2)) / 3;
}

}  // namespace ipcomp
