// Word-parallel 32x64 bit-matrix transpose kernels.
//
// The bitplane stages view a run of 64 quantized (negabinary) uint32 codes as
// a 64x32 bit matrix; transposing it yields one uint64 *plane word* per bit
// position k whose bit j is bit k of code j.  Because packed plane buffers
// store bit j of value j at byte j/8, bit j%8, a plane word is exactly the
// little-endian 8-byte run of that plane's buffer — extraction writes whole
// words and deposit reads whole words, 64 values at a time, instead of
// shifting one bit per value.
//
// Three kernel tiers share this contract (scalar / SSE2 / AVX2); the ambient
// set is picked once per process by simd_level() (util/cpu.hpp, overridable
// via IPCOMP_SIMD).  Tests and benchmarks grab a specific tier through
// transpose_ops(level) to prove the tiers bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu.hpp"

namespace ipcomp {

/// Values per transpose tile: one plane word's worth.
inline constexpr std::size_t kTileValues = 64;

struct TransposeOps {
  /// Transpose up to kTileValues values into per-plane words and return the
  /// OR of the values.  After the call, words[k] is valid for every k set in
  /// the returned mask; words for clear bits are NOT written (those planes
  /// are all-zero in this tile).  n <= kTileValues; partial tiles (n <
  /// kTileValues) take the scalar path inside every tier.
  std::uint32_t (*tile_fwd)(const std::uint32_t* v, std::size_t n,
                            std::uint64_t* words);
  /// One plane's word: bit j = bit k of v[j].
  std::uint64_t (*tile_fwd_one)(const std::uint32_t* v, std::size_t n,
                                unsigned k);
  /// OR nk plane words into values: bit j of words[t] sets bit ks[t] of v[j].
  void (*tile_deposit)(std::uint32_t* v, std::size_t n,
                       const std::uint64_t* words, const unsigned* ks,
                       std::size_t nk);
};

/// Kernel set for an explicit tier, clamped to what this build supports
/// (non-x86 builds only ship scalar).
const TransposeOps& transpose_ops(SimdLevel level);

/// Ambient dispatched kernel set (simd_level()).
const TransposeOps& transpose_ops();

}  // namespace ipcomp
