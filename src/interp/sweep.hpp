// Multi-level interpolation sweep (paper §4.1, Fig. 3).
//
// The input grid is partitioned into L = ceil(log2(max_extent)) levels.  At
// level l (stride s = 2^(l-1)) the points whose coordinates are all multiples
// of 2s are known; the level's targets — points on the s-grid but not the
// 2s-grid — are predicted dimension by dimension: pass t predicts points
// whose coordinate t is an odd multiple of s, using 1-D interpolation along
// dimension t from known points at ±s and ±3s.
//
// The sweep assigns every target a deterministic (level, slot) pair; a level's
// slots order its quantization codes identically during compression and
// every (partial or incremental) reconstruction.  Lines within a pass are
// independent, so passes parallelize across targets.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "interp/interpolation.hpp"
#include "util/dims.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

/// One dimension pass of one level.
struct DimPass {
  unsigned dim = 0;
  std::size_t stride = 1;            // coordinate stride s
  std::size_t slot_offset = 0;       // first slot within the level
  std::size_t targets_per_line = 0;  // odd multiples of s along `dim`
  std::size_t n_lines = 0;           // product of other-dimension grid sizes
};

/// Static description of the level decomposition of a grid.
struct LevelStructure {
  Dims dims;
  unsigned num_levels = 0;                    // L
  std::vector<std::size_t> level_count;       // [level-1] -> #slots
  std::vector<std::vector<DimPass>> passes;   // [level-1] -> passes in order

  static LevelStructure analyze(const Dims& dims) {
    LevelStructure s;
    s.dims = dims;
    std::size_t max_e = dims.max_extent();
    unsigned L = 1;
    while ((std::size_t{1} << L) < max_e) ++L;
    s.num_levels = L;
    s.level_count.assign(L, 0);
    s.passes.assign(L, {});
    for (unsigned l = L; l >= 1; --l) {
      const std::size_t stride = std::size_t{1} << (l - 1);
      std::size_t slot = (l == L) ? 1 : 0;  // slot 0 of the top level = anchor
      for (unsigned t = 0; t < dims.rank(); ++t) {
        std::size_t n_t = dims[t];
        if (stride >= n_t) continue;
        std::size_t targets = ((n_t - 1) / stride + 1) / 2;
        if (targets == 0) continue;
        std::size_t lines = 1;
        for (unsigned j = 0; j < dims.rank(); ++j) {
          if (j == t) continue;
          std::size_t g = (j < t) ? stride : 2 * stride;
          lines *= (dims[j] - 1) / g + 1;
        }
        DimPass p;
        p.dim = t;
        p.stride = stride;
        p.slot_offset = slot;
        p.targets_per_line = targets;
        p.n_lines = lines;
        s.passes[l - 1].push_back(p);
        slot += targets * lines;
      }
      s.level_count[l - 1] = slot;
    }
    return s;
  }

  std::size_t total_count() const {
    std::size_t n = 0;
    for (auto c : level_count) n += c;
    return n;
  }
};

/// Runs the sweep over `data` (in level order L..1, pass order as analyzed),
/// addressing elements through explicit per-dimension strides.
///
/// With `estrides = ls.dims.strides()` this sweeps a dense array.  Passing
/// the strides of an *enclosing* field instead sweeps a strided sub-view —
/// `data` then points at the block's origin element inside the field and
/// `idx` values handed to the visitor are element offsets relative to that
/// origin.  Block-parallel compression uses this to sweep each block in
/// place, without copying it out of the field.
///
/// Visitor signature:  T visit(unsigned level_index, std::size_t slot,
///                             std::size_t idx, T predicted)
/// where level_index = level-1 (0 = finest).  The returned value is written
/// to data[idx] before any later prediction can read it.  Compression
/// visitors quantize (original − predicted) and return the reconstruction;
/// decompression visitors return predicted + dequantized difference.
template <typename T, typename Visitor>
void interpolation_sweep_strided(T* data, const LevelStructure& ls,
                                 InterpKind kind,
                                 const std::array<std::size_t, kMaxRank>& estrides,
                                 Visitor&& visit) {
  const Dims& dims = ls.dims;
  const unsigned rank = static_cast<unsigned>(dims.rank());
  const unsigned L = ls.num_levels;

  // The anchor (0,...,0) is the only point known before the top level.
  data[0] = visit(L - 1, 0, 0, static_cast<T>(0));

  for (unsigned l = L; l >= 1; --l) {
    for (const DimPass& p : ls.passes[l - 1]) {
      const unsigned t = p.dim;
      const std::size_t s = p.stride;
      const std::size_t n_t = dims[t];
      const std::size_t est = estrides[t];       // element stride of dim t
      const std::size_t sst = s * est;           // ±s in elements
      const std::size_t s3 = 3 * sst;            // ±3s in elements

      // Mixed-radix decomposition of the line ordinal over the other dims.
      std::size_t radix[kMaxRank] = {};
      std::size_t rstride[kMaxRank] = {};        // element stride per digit
      unsigned n_digits = 0;
      for (unsigned j = 0; j < rank; ++j) {
        if (j == t) continue;
        std::size_t g = (j < t) ? s : 2 * s;
        radix[n_digits] = (dims[j] - 1) / g + 1;
        rstride[n_digits] = estrides[j] * g;
        ++n_digits;
      }

      const std::size_t total = p.n_lines * p.targets_per_line;
      const bool cubic = (kind == InterpKind::kCubic);
      parallel_for(0, p.n_lines, [&](std::size_t line) {
        // Decode the line's base element offset.
        std::size_t rem = line;
        std::size_t base = 0;
        for (unsigned d = n_digits; d-- > 0;) {
          base += (rem % radix[d]) * rstride[d];
          rem /= radix[d];
        }
        std::size_t slot = p.slot_offset + line * p.targets_per_line;
        std::size_t c = s;  // coordinate along dim t
        std::size_t idx = base + c * est;
        for (std::size_t k = 0; k < p.targets_per_line;
             ++k, c += 2 * s, idx += 2 * sst, ++slot) {
          T pred;
          if (cubic && c >= 3 * s && c + 3 * s < n_t) {
            pred = interp_cubic(data[idx - s3], data[idx - sst],
                                data[idx + sst], data[idx + s3]);
          } else if (c + s < n_t) {
            pred = interp_linear(data[idx - sst], data[idx + sst]);
          } else {
            pred = data[idx - sst];
          }
          data[idx] = visit(l - 1, slot, idx, pred);
        }
      }, /*grain=*/std::max<std::size_t>(1, 16384 / std::max<std::size_t>(1, p.targets_per_line)));
      (void)total;
    }
  }
}

/// Dense-array sweep: strides derived from the level structure's own dims.
template <typename T, typename Visitor>
void interpolation_sweep(T* data, const LevelStructure& ls, InterpKind kind,
                         Visitor&& visit) {
  interpolation_sweep_strided(data, ls, kind, ls.dims.strides(),
                              std::forward<Visitor>(visit));
}

}  // namespace ipcomp
