// Interpolation kernels (paper §4.1).
//
// Both kernels use fixed coefficients at fixed relative indices, so nothing
// is stored to reconstruct predictions.  Boundary handling degrades cubic →
// linear → nearest-copy; every kernel keeps ‖coefficients‖₁ ≤ p so the error
// propagation bound of Theorem 1 applies (no extrapolation, whose ‖·‖₁ = 3,
// is ever used — see DESIGN.md §6.6).
#pragma once

#include <cstdint>
#include <string>

namespace ipcomp {

enum class InterpKind : std::uint8_t {
  kLinear = 0,
  kCubic = 1,
};

inline const char* to_string(InterpKind k) {
  return k == InterpKind::kLinear ? "linear" : "cubic";
}

/// ‖P‖∞ (max abs row sum) of the interpolation operator: the per-application
/// worst-case amplification of input perturbations.
inline double interp_p_norm(InterpKind k) {
  return k == InterpKind::kLinear ? 1.0 : 1.25;
}

/// y_i = (x_{i-1} + x_{i+1}) / 2
template <typename T>
inline T interp_linear(T a, T b) {
  return static_cast<T>((a + b) / 2);
}

/// y_i = -1/16 x_{i-3} + 9/16 x_{i-1} + 9/16 x_{i+1} - 1/16 x_{i+3}
template <typename T>
inline T interp_cubic(T m3, T m1, T p1, T p3) {
  return static_cast<T>((-m3 + 9 * m1 + 9 * p1 - p3) / 16);
}

}  // namespace ipcomp
