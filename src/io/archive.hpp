// Segmented archive container with partial retrieval.
//
// An Archive is a header blob plus a table of named segments.  Progressive
// readers fetch individual segments on demand through a SegmentSource, which
// tracks how many bytes were actually touched — that count is the "retrieved
// data volume" reported throughout the evaluation (paper Figs 6/7).
//
// Layout of the serialized archive:
//   magic "IPCA" | version u32 | header_len varint | header bytes
//   | segment_count varint | per segment: (id u64, length varint)
//   | segment payloads, in table order
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/bytes.hpp"

namespace ipcomp {

/// Identifies one independently-retrievable block of compressed data.
/// For IPComp: kind distinguishes base data from bitplanes; `level` is the
/// interpolation level and `plane` the bitplane index (31 = MSB).
struct SegmentId {
  std::uint16_t kind = 0;
  std::uint16_t level = 0;
  std::uint32_t plane = 0;

  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 48) |
           (static_cast<std::uint64_t>(level) << 32) | plane;
  }
  static SegmentId from_key(std::uint64_t k) {
    SegmentId id;
    id.kind = static_cast<std::uint16_t>(k >> 48);
    id.level = static_cast<std::uint16_t>(k >> 32);
    id.plane = static_cast<std::uint32_t>(k);
    return id;
  }
  bool operator==(const SegmentId&) const = default;
};

/// Builder-side archive: header + segments assembled during compression.
class ArchiveBuilder {
 public:
  void set_header(Bytes header) { header_ = std::move(header); }

  void add_segment(SegmentId id, Bytes payload) {
    order_.push_back(id.key());
    segments_[id.key()] = std::move(payload);
  }

  /// Serialize to a single byte stream.
  Bytes finish() const;

  std::size_t segment_count() const { return segments_.size(); }

 private:
  Bytes header_;
  std::vector<std::uint64_t> order_;
  std::map<std::uint64_t, Bytes> segments_;
};

/// Read-side interface: fetch the header once, then segments on demand.
/// Implementations count the bytes they hand out.
class SegmentSource {
 public:
  virtual ~SegmentSource() = default;

  virtual const Bytes& header() = 0;
  /// Returns the payload for `id`; throws if the segment does not exist.
  virtual Bytes read_segment(SegmentId id) = 0;
  virtual bool has_segment(SegmentId id) const = 0;
  virtual std::size_t segment_size(SegmentId id) const = 0;

  /// Bytes of payload + header actually retrieved so far.
  std::size_t bytes_read() const { return bytes_read_; }
  void reset_bytes_read() { bytes_read_ = 0; }

  /// Total serialized archive size (for compression-ratio accounting).
  virtual std::size_t total_size() const = 0;

 protected:
  std::size_t bytes_read_ = 0;
};

/// Parses the serialized archive layout; shared by the concrete sources.
struct ArchiveIndex {
  std::size_t header_offset = 0;
  std::size_t header_length = 0;
  struct Entry {
    std::uint64_t key;
    std::size_t offset;
    std::size_t length;
  };
  std::map<std::uint64_t, Entry> entries;
  std::size_t total_size = 0;

  static ArchiveIndex parse(std::span<const std::uint8_t> head_bytes,
                            std::size_t total_size);
};

/// SegmentSource over a fully in-memory archive blob.  Only the bytes of the
/// segments actually requested are charged to bytes_read().
class MemorySource final : public SegmentSource {
 public:
  explicit MemorySource(Bytes archive);

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  bool has_segment(SegmentId id) const override;
  std::size_t segment_size(SegmentId id) const override;
  std::size_t total_size() const override { return blob_.size(); }

 private:
  Bytes blob_;
  ArchiveIndex index_;
  Bytes header_cache_;
  bool header_charged_ = false;
};

/// SegmentSource over a file on disk; performs real seek+read per segment.
class FileSource final : public SegmentSource {
 public:
  explicit FileSource(std::string path);

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  bool has_segment(SegmentId id) const override;
  std::size_t segment_size(SegmentId id) const override;
  std::size_t total_size() const override { return file_size_; }

 private:
  Bytes read_range(std::size_t offset, std::size_t length) const;

  std::string path_;
  std::size_t file_size_ = 0;
  ArchiveIndex index_;
  Bytes header_cache_;
  bool header_loaded_ = false;
};

/// Write a serialized archive to disk.
void write_file(const std::string& path, const Bytes& data);
/// Read a whole file into memory.
Bytes read_file(const std::string& path);

}  // namespace ipcomp
