// Segmented archive container with partial retrieval.
//
// An Archive is a header blob plus a table of named segments.  Progressive
// readers fetch individual segments on demand through a SegmentSource, which
// tracks how many bytes were actually touched — that count is the "retrieved
// data volume" reported throughout the evaluation (paper Figs 6/7).
//
// Layout of the serialized archive:
//   magic "IPCA" | version u32 | header_len varint | header bytes
//   | segment_count varint | per segment: (id u64, length varint)
//   | segment payloads, in table order
//
// Three base versions exist.  v1 and v2 differ in how SegmentId packs into
// the u64 table key: v1 has no block axis (kind:16 | level:16 | plane:32);
// v2 adds one for block-decomposed archives (kind:8 | level:8 | plane:12 |
// block:36).  v3 keeps the v2 key packing and differs only in its header,
// which names the progressive backend that owns the payload.  Readers accept
// all three, keyed off the version word.
//
// v4 is an *integrity wrapper* around any base version, adding a per-segment
// checksum column to the table:
//   magic "IPCA" | 4 u32 | base_version u32 | checksum_algo u8
//   | header_len varint | header bytes
//   | segment_count varint | per segment: (id u64, length varint, xxh64 u64)
//   | segment payloads, in table order
// Key packing, header interpretation and reader dispatch all follow the base
// version — SegmentSource::version() keeps reporting it — so a v4 container
// is transparent to everything above the source layer.  Checksums are
// verified on every physical read; a mismatch surfaces as IntegrityError,
// never as wrong payload bytes.  v1–v3 archives still read (one warning per
// process that integrity verification is unavailable for them).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/bytes.hpp"

namespace ipcomp {

/// Archive format versions (the u32 after the magic).
inline constexpr std::uint32_t kArchiveV1 = 1;  // whole-field, no block axis
inline constexpr std::uint32_t kArchiveV2 = 2;  // block-decomposed fields
/// v3 containers key segments exactly like v2 but carry a v3 header
/// (backend id + metadata); written by every non-interpolation backend.
inline constexpr std::uint32_t kArchiveV3 = 3;
/// v4 wraps a v1–v3 base container with a per-segment checksum column; the
/// container word is 4 and the base version follows it (see file comment).
inline constexpr std::uint32_t kArchiveV4 = 4;
/// The only checksum_algo a v4 container may carry today: XXH64
/// (util/checksum.hpp).
inline constexpr std::uint8_t kChecksumXXH64 = 1;

/// Identifies one independently-retrievable piece of compressed data.
/// For IPComp: kind distinguishes base data from bitplanes; `level` is the
/// interpolation level, `plane` the bitplane index (31 = MSB) and `block`
/// the block ordinal of a block-decomposed (v2) archive.
struct SegmentId {
  std::uint16_t kind = 0;
  std::uint16_t level = 0;
  std::uint32_t plane = 0;
  std::uint32_t block = 0;

  /// Segment-table key under the given archive version.  v1 predates the
  /// block axis, so v1 keys require block == 0; v2 narrows the other fields
  /// (kind < 2^8, level < 2^8, plane < 2^12) to make room for 36 block bits.
  std::uint64_t key(std::uint32_t version = kArchiveV1) const;

  static SegmentId from_key(std::uint64_t k, std::uint32_t version = kArchiveV1) {
    SegmentId id;
    if (version >= kArchiveV2) {
      id.kind = static_cast<std::uint16_t>(k >> 56);
      id.level = static_cast<std::uint16_t>((k >> 48) & 0xFF);
      id.plane = static_cast<std::uint32_t>((k >> 36) & 0xFFF);
      id.block = static_cast<std::uint32_t>(k & 0xFFFFFFFFFu);
    } else {
      id.kind = static_cast<std::uint16_t>(k >> 48);
      id.level = static_cast<std::uint16_t>(k >> 32);
      id.plane = static_cast<std::uint32_t>(k);
    }
    return id;
  }
  bool operator==(const SegmentId&) const = default;
};

/// A segment's bytes did not match the checksum recorded at build time.
/// `layer` names the trust boundary that caught it: kStorage (a physical
/// Memory/File/Mmap read), kCache (SegmentCache insert), kWire (a SEGMENT
/// frame on the client).  Thrown *instead of* delivering the payload, so
/// corruption can never flow into reconstruction.
class IntegrityError : public std::runtime_error {
 public:
  enum class Layer { kStorage, kCache, kWire };

  IntegrityError(SegmentId segment, std::uint64_t expected,
                 std::uint64_t actual, Layer layer);

  SegmentId segment() const { return segment_; }
  std::uint64_t expected() const { return expected_; }
  std::uint64_t actual() const { return actual_; }
  Layer layer() const { return layer_; }

 private:
  SegmentId segment_;
  std::uint64_t expected_;
  std::uint64_t actual_;
  Layer layer_;
};

/// Builder-side archive: header + segments assembled during compression.
///
/// Thread contract: externally-synchronized.  Compression assembles per-block
/// results concurrently into a pre-sized vector and feeds the builder from
/// one thread; sharing a builder across threads is the caller's lock.
class ArchiveBuilder {
 public:
  /// Must be chosen before the first add_segment (keys pack differently).
  void set_version(std::uint32_t version) { version_ = version; }
  std::uint32_t version() const { return version_; }

  /// When enabled, finish() wraps the archive in a v4 container whose table
  /// records an XXH64 checksum per segment (see the file comment); the base
  /// version set above still governs key packing and header format.  Off by
  /// default so hand-built containers and pre-v4 golden bytes reproduce
  /// exactly; the compressor turns it on via Options::integrity.
  void set_integrity(bool on) { integrity_ = on; }

  void set_header(Bytes header) { header_ = std::move(header); }

  /// Appends one segment; throws std::invalid_argument on a duplicate id —
  /// silently accepting one would grow `order_` while the map kept a single
  /// entry, corrupting finish()'s table/payload pairing.
  void add_segment(SegmentId id, Bytes payload) {
    const std::uint64_t key = id.key(version_);
    if (!segments_.emplace(key, std::move(payload)).second) {
      throw std::invalid_argument("archive: duplicate segment id");
    }
    order_.push_back(key);
  }

  /// Serialize to a single byte stream.
  Bytes finish() const;

  std::size_t segment_count() const { return segments_.size(); }

 private:
  std::uint32_t version_ = kArchiveV1;
  bool integrity_ = false;
  Bytes header_;
  std::vector<std::uint64_t> order_;
  std::map<std::uint64_t, Bytes> segments_;
};

/// One snapshot of a source's retrieval accounting, taken by a single
/// SegmentSource::stats() call — the stitched per-counter getters this
/// replaced let a monitoring thread read bytes from one instant and calls
/// from another; a snapshot keeps the fields of one read together, and for a
/// quiescent source (no fetch in flight) it is exact.
struct SourceStats {
  /// Bytes of payload + header actually retrieved so far.  This is the
  /// "retrieved data volume" metric of the evaluation: only requested
  /// payload bytes are charged, never coalescing gap bytes.
  std::size_t bytes_read = 0;
  /// Physical read operations issued so far (header + segment fetches; a
  /// coalesced bulk read counts once per contiguous range).  Benchmarks use
  /// segments-fetched / read_calls as the fetch-efficiency figure.
  std::size_t read_calls = 0;
  /// Contiguous ranges issued by batching read_many implementations
  /// (FileSource; each range is one read call).  Zero for per-segment
  /// sources.
  std::size_t coalesced_ranges = 0;
};

/// Read-side interface: fetch the header once, then segments on demand.
/// Implementations count the bytes they hand out.
///
/// Thread contract: const-safe, with internally-synchronized payload fetches
/// and stat counters.  The parsed index is immutable after construction, so
/// the const queries (has_segment, segment_size, segment_ids, version,
/// total_size) are safe from any thread.  read_segment/read_many of the
/// concrete sources touch only the immutable index, operation-local state
/// and the atomic stat counters, so concurrent fetches are safe — this is
/// what lets the serve layer's PooledSource dispatch merged batches from
/// several workers at once.  header() mutates the header cache and must be
/// serialized (in practice: fetched once, at open).  stats() may be sampled
/// from any thread while fetches are in flight and always observes
/// well-defined (if momentarily stale) values; the counters of a *completed*
/// fetch are exact.
class SegmentSource {
 public:
  virtual ~SegmentSource() = default;

  virtual const Bytes& header() = 0;
  /// Returns the payload for `id`; throws if the segment does not exist.
  virtual Bytes read_segment(SegmentId id) = 0;
  /// Fetch many segments in one operation; payloads come back in request
  /// order.  The base implementation loops read_segment(); sources with a
  /// per-operation cost (files, remote stores) override it to batch — e.g.
  /// FileSource sorts by file offset and coalesces near-adjacent ranges into
  /// single reads.  Only the requested segments' payload bytes are charged to
  /// stats().bytes_read, never coalescing gap bytes: the retrieved-data-
  /// volume metric must not depend on the fetch strategy.
  virtual std::vector<Bytes> read_many(std::span<const SegmentId> ids);
  virtual bool has_segment(SegmentId id) const = 0;
  virtual std::size_t segment_size(SegmentId id) const = 0;
  /// All segment ids present in the container, in table order.  Free to call:
  /// the index is part of the open cost, nothing extra is charged.
  virtual std::vector<SegmentId> segment_ids() const = 0;
  /// Archive format version parsed from the container.  For a v4 container
  /// this is the *base* version (1–3): key packing and header interpretation
  /// never depend on the integrity wrapper.
  virtual std::uint32_t version() const = 0;

  /// Checksum recorded for `id` at build time, or nullopt when the container
  /// predates v4 (or the id is unknown).  Decorator sources forward this so
  /// downstream trust boundaries (cache inserts, wire frames) can re-verify.
  virtual std::optional<std::uint64_t> segment_checksum(SegmentId) const {
    return std::nullopt;
  }

  /// One coherent snapshot of the accounting counters.
  SourceStats stats() const {
    SourceStats s;
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.read_calls = read_calls_.load(std::memory_order_relaxed);
    s.coalesced_ranges = coalesced_ranges_.load(std::memory_order_relaxed);
    return s;
  }

  /// Total serialized archive size (for compression-ratio accounting).
  virtual std::size_t total_size() const = 0;

 protected:
  /// Stat counters are plain tallies, not synchronization: relaxed atomics
  /// make concurrent sampling well-defined (no torn reads) without imposing
  /// ordering the fetch path does not need.
  void charge_bytes(std::size_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Roll back `n` bytes charged by a batch that failed to deliver
  /// (all-or-nothing accounting).  A subtraction, not a store: concurrent
  /// fetches on a shared source must not have their charges clobbered.
  void uncharge_bytes(std::size_t n) {
    bytes_read_.fetch_sub(n, std::memory_order_relaxed);
  }
  void count_read_call() { read_calls_.fetch_add(1, std::memory_order_relaxed); }
  void count_coalesced_range() {
    coalesced_ranges_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> bytes_read_{0};
  std::atomic<std::size_t> read_calls_{0};
  std::atomic<std::size_t> coalesced_ranges_{0};
};

/// Adjacent-range coalescing threshold for batched file reads: two segments
/// whose file ranges are within this many bytes of each other are served by
/// one read (the gap is cheaper to read through than a second seek+read).
inline constexpr std::size_t kCoalesceGapBytes = 4096;

/// Parses the serialized archive layout; shared by the concrete sources.
struct ArchiveIndex {
  /// Base version (1–3): governs key packing and header format.
  std::uint32_t version = kArchiveV1;
  /// Container word as serialized: equals `version` for v1–v3, 4 when the
  /// table carries the checksum column.
  std::uint32_t container = kArchiveV1;
  bool has_checksums = false;
  std::size_t header_offset = 0;
  std::size_t header_length = 0;
  struct Entry {
    std::uint64_t key;
    std::size_t offset;
    std::size_t length;
    std::uint64_t checksum = 0;  // valid only when has_checksums
  };
  std::map<std::uint64_t, Entry> entries;
  std::size_t total_size = 0;

  /// Recorded checksum for `key`, if this container has the column.
  std::optional<std::uint64_t> checksum_of(std::uint64_t key) const {
    if (!has_checksums) return std::nullopt;
    auto it = entries.find(key);
    if (it == entries.end()) return std::nullopt;
    return it->second.checksum;
  }

  /// Verify `payload` against the checksum recorded for `entry`; throws
  /// IntegrityError{.layer = kStorage} on mismatch, no-op for pre-v4
  /// containers.  Concrete sources call this on every physical read.
  void verify(const Entry& entry, std::span<const std::uint8_t> payload) const;

  /// All segment ids in the index, decoded under the parsed version.
  std::vector<SegmentId> ids() const {
    std::vector<SegmentId> out;
    out.reserve(entries.size());
    for (const auto& [key, entry] : entries) {
      out.push_back(SegmentId::from_key(key, version));
    }
    return out;
  }

  static ArchiveIndex parse(std::span<const std::uint8_t> head_bytes,
                            std::size_t total_size);
};

/// SegmentSource over a fully in-memory archive blob.  Only the bytes of the
/// segments actually requested are charged to stats().bytes_read.
///
/// Thread contract: inherits SegmentSource's — read_segment/read_many touch
/// only the immutable blob/index and the atomic counters, so concurrent
/// fetches are safe; header() mutates the header cache and must be
/// serialized (fetched once, at open).
class MemorySource final : public SegmentSource {
 public:
  explicit MemorySource(Bytes archive);

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  bool has_segment(SegmentId id) const override;
  std::size_t segment_size(SegmentId id) const override;
  std::vector<SegmentId> segment_ids() const override { return index_.ids(); }
  std::uint32_t version() const override { return index_.version; }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    return index_.checksum_of(id.key(index_.version));
  }
  std::size_t total_size() const override { return blob_.size(); }

 private:
  Bytes blob_;
  ArchiveIndex index_;
  Bytes header_cache_;
  bool header_charged_ = false;
};

/// SegmentSource over a file on disk; performs real seek+read per segment.
/// read_many() sorts the batch by file offset and coalesces ranges within
/// kCoalesceGapBytes of each other into single bulk reads, slicing each
/// payload out of the shared buffer — one open + one read per contiguous run
/// instead of one per segment.
///
/// Thread contract: inherits SegmentSource's.  Every fetch opens its own
/// file handle and touches only the immutable index plus the atomic
/// counters, so read_segment/read_many may overlap from any number of
/// threads over one instance — the serve layer's PooledSource relies on this
/// to dispatch merged batches from several workers at once.  header() still
/// mutates the header cache and must be serialized (fetched once, at open).
class FileSource final : public SegmentSource {
 public:
  explicit FileSource(std::string path);

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override;
  std::size_t segment_size(SegmentId id) const override;
  std::vector<SegmentId> segment_ids() const override { return index_.ids(); }
  std::uint32_t version() const override { return index_.version; }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    return index_.checksum_of(id.key(index_.version));
  }
  std::size_t total_size() const override { return file_size_; }

 private:
  Bytes read_range(std::size_t offset, std::size_t length) const;

  std::string path_;
  std::size_t file_size_ = 0;
  ArchiveIndex index_;
  Bytes header_cache_;
  bool header_loaded_ = false;
};

/// Write a serialized archive to disk.
void write_file(const std::string& path, const Bytes& data);
/// Read a whole file into memory.
Bytes read_file(const std::string& path);

}  // namespace ipcomp
