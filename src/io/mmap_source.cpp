#include "io/mmap_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ipcomp {

MmapSource::MmapSource(const std::string& path, std::size_t map_cap_bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open file: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat file: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* map = MAP_FAILED;
  if (size > 0 && size <= map_cap_bytes) {
    map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  // The mapping stays valid after the descriptor closes.
  ::close(fd);
  if (map == MAP_FAILED) {
    // Empty, over-cap or unmappable: serve through a plain FileSource (which
    // also owns rejecting an empty/forged archive with the usual parse
    // errors).
    fallback_ = std::make_unique<FileSource>(path);
    return;
  }
  map_ = static_cast<const std::uint8_t*>(map);
  map_size_ = size;
  try {
    // The whole file is resident, so the index parse sees everything — same
    // strict rejection as the other sources, without their prefix cap.
    index_ = ArchiveIndex::parse({map_, map_size_}, map_size_);
  } catch (...) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_size_);
    throw;
  }
}

MmapSource::~MmapSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_size_);
  }
}

void MmapSource::mirror_fallback(const SourceStats& before) {
  const SourceStats after = fallback_->stats();
  charge_bytes(after.bytes_read - before.bytes_read);
  for (std::size_t k = before.read_calls; k < after.read_calls; ++k) {
    count_read_call();
  }
  for (std::size_t k = before.coalesced_ranges; k < after.coalesced_ranges;
       ++k) {
    count_coalesced_range();
  }
}

const Bytes& MmapSource::header() {
  if (fallback_) {
    const SourceStats before = fallback_->stats();
    const Bytes& h = fallback_->header();
    mirror_fallback(before);
    return h;
  }
  if (!header_charged_) {
    header_cache_.assign(map_ + index_.header_offset,
                         map_ + index_.header_offset + index_.header_length);
    charge_bytes(index_.header_offset + index_.header_length);
    count_read_call();
    header_charged_ = true;
  }
  return header_cache_;
}

const ArchiveIndex::Entry& MmapSource::resolve(SegmentId id) const {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) {
    throw std::runtime_error("archive: missing segment");
  }
  return it->second;
}

Bytes MmapSource::read_segment(SegmentId id) {
  if (fallback_) {
    const SourceStats before = fallback_->stats();
    Bytes out = fallback_->read_segment(id);
    mirror_fallback(before);
    return out;
  }
  const ArchiveIndex::Entry& e = resolve(id);
  // Verified straight off the mapping, before the payload is handed out.
  index_.verify(e, {map_ + e.offset, e.length});
  charge_bytes(e.length);
  count_read_call();
  return {map_ + e.offset, map_ + e.offset + e.length};
}

std::vector<Bytes> MmapSource::read_many(std::span<const SegmentId> ids) {
  if (fallback_) {
    const SourceStats before = fallback_->stats();
    std::vector<Bytes> out = fallback_->read_many(ids);
    mirror_fallback(before);
    return out;
  }
  std::vector<Bytes> out(ids.size());
  if (ids.empty()) return out;

  // Resolve everything before copying or charging (all-or-nothing, like
  // FileSource), and count read_calls per coalesced run under the same gap
  // rule so fetch-efficiency stats are comparable across source kinds —
  // a mapped "read" is the page-fault run the same access pattern causes.
  struct Item {
    std::size_t idx;
    std::size_t offset;
    std::size_t length;
    const ArchiveIndex::Entry* entry;
  };
  std::vector<Item> items;
  items.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ArchiveIndex::Entry& e = resolve(ids[i]);
    items.push_back({i, e.offset, e.length, &e});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.offset < b.offset; });

  for (std::size_t i = 0; i < items.size();) {
    std::size_t end = items[i].offset + items[i].length;
    std::size_t j = i + 1;
    while (j < items.size() && items[j].offset <= end + kCoalesceGapBytes) {
      end = std::max(end, items[j].offset + items[j].length);
      ++j;
    }
    count_read_call();
    count_coalesced_range();
    for (; i < j; ++i) {
      const Item& item = items[i];
      // Verified off the mapping before the batch charges anything.
      index_.verify(*item.entry, {map_ + item.offset, item.length});
      out[item.idx].assign(map_ + item.offset,
                           map_ + item.offset + item.length);
    }
  }
  for (const Item& item : items) charge_bytes(item.length);
  return out;
}

bool MmapSource::has_segment(SegmentId id) const {
  if (fallback_) return fallback_->has_segment(id);
  return index_.entries.contains(id.key(index_.version));
}

std::size_t MmapSource::segment_size(SegmentId id) const {
  if (fallback_) return fallback_->segment_size(id);
  return resolve(id).length;
}

std::vector<SegmentId> MmapSource::segment_ids() const {
  if (fallback_) return fallback_->segment_ids();
  return index_.ids();
}

std::uint32_t MmapSource::version() const {
  if (fallback_) return fallback_->version();
  return index_.version;
}

std::optional<std::uint64_t> MmapSource::segment_checksum(SegmentId id) const {
  if (fallback_) return fallback_->segment_checksum(id);
  return index_.checksum_of(id.key(index_.version));
}

std::size_t MmapSource::total_size() const {
  if (fallback_) return fallback_->total_size();
  return map_size_;
}

}  // namespace ipcomp
