// Byte-level serialization primitives.
//
// ByteWriter appends POD values and LEB128 varints to a growable buffer;
// ByteReader consumes them with bounds checking.  All multi-byte integers are
// little-endian so archives are portable across hosts.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipcomp {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Signed varint via zigzag mapping.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void string(const std::string& s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    require(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  float f32() {
    std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      require(1);
      const std::uint8_t b = data_[pos_++];
      const std::uint64_t payload = b & 0x7F;
      // Reject payload bits that do not fit in 64 bits: at shift 63 only the
      // lowest payload bit is representable, and an 11th byte never is.
      if (shift >= 64 || (shift > 57 && (payload >> (64 - shift)) != 0)) {
        throw std::runtime_error("ByteReader: varint overflow");
      }
      v |= payload << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  std::int64_t svarint() {
    std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::string string() {
    std::size_t n = varint();
    auto s = bytes(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const {
    // Written as a subtraction so a huge forged n cannot wrap the addition
    // pos_ + n and sneak past the check (pos_ <= size() is an invariant).
    if (n > data_.size() - pos_) {
      throw std::runtime_error("ByteReader: out of data");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ipcomp
