// Bit-granular I/O used by the entropy coders and the ZFP-style codec.
//
// Bits are packed LSB-first into a little-endian byte stream: the first bit
// written occupies bit 0 of byte 0.  BitWriter/BitReader must agree on this
// layout; round-trip tests in tests/test_bitstream.cpp pin it down.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "io/bytes.hpp"

namespace ipcomp {

class BitWriter {
 public:
  BitWriter() = default;
  explicit BitWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_bit(std::uint32_t bit) {
    acc_ |= static_cast<std::uint64_t>(bit & 1u) << fill_;
    if (++fill_ == 64) flush_word();
  }

  /// Write the low `n` bits of `v`, LSB first.  n in [0, 64].
  void put_bits(std::uint64_t v, unsigned n) {
    if (n == 0) return;
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    acc_ |= v << fill_;
    if (fill_ + n >= 64) {
      unsigned written = 64 - fill_;
      flush_word();
      if (n > written) acc_ = v >> written;
      fill_ = n - written;
    } else {
      fill_ += n;
    }
  }

  /// Unary encoding: `v` zero bits followed by a one bit.
  void put_unary(std::uint64_t v) {
    while (v >= 32) {
      put_bits(0, 32);
      v -= 32;
    }
    put_bits(std::uint64_t{1} << v, static_cast<unsigned>(v + 1));
  }

  std::size_t bit_count() const { return buf_.size() * 8 + fill_; }

  /// Flush partial bits (zero padded) and return the byte stream.
  Bytes finish() {
    while (fill_ > 0) flush_partial_byte();
    return std::move(buf_);
  }

 private:
  void flush_word() {
    // Bulk little-endian store of the full accumulator (compilers collapse
    // the 8 byte stores into one 64-bit write); byte-identical to pushing
    // the bytes one at a time but off the push_back slow path.
    const std::size_t at = buf_.size();
    buf_.resize(at + 8);
    std::uint8_t* p = buf_.data() + at;
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(acc_ >> (8 * i));
    acc_ = 0;
    fill_ = 0;
  }

  void flush_partial_byte() {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ >>= 8;
    fill_ = fill_ >= 8 ? fill_ - 8 : 0;
  }

  Bytes buf_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

/// LSB-first bit reader with lookahead.  Reading past the end of the stream
/// yields zero bits (the writer zero-pads its final byte); consuming more than
/// a full byte beyond the end throws.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t get_bit() {
    ensure(1);
    std::uint32_t b = static_cast<std::uint32_t>(acc_ & 1u);
    acc_ >>= 1;
    --fill_;
    return b;
  }

  /// Read `n` bits, LSB first.  n in [0, 64].
  std::uint64_t get_bits(unsigned n) {
    if (n == 0) return 0;
    if (n <= 56) {
      ensure(n);
      std::uint64_t mask = (n >= 64) ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
      std::uint64_t v = acc_ & mask;
      acc_ >>= n;
      fill_ -= n;
      return v;
    }
    std::uint64_t lo = get_bits(32);
    std::uint64_t hi = get_bits(n - 32);
    return lo | (hi << 32);
  }

  /// Look at the next `n` bits (n <= 56) without consuming.  Bits beyond the
  /// end of the stream read as zero.
  std::uint64_t peek_bits(unsigned n) {
    ensure(n);
    std::uint64_t mask = (std::uint64_t{1} << n) - 1;
    return acc_ & mask;
  }

  /// Discard `n` bits previously peeked (n <= current lookahead).
  void skip_bits(unsigned n) {
    ensure(n);
    acc_ >>= n;
    fill_ -= n;
  }

  std::uint64_t get_unary() {
    std::uint64_t v = 0;
    while (get_bit() == 0) ++v;
    return v;
  }

  /// Bits consumed so far (counting virtual zero-padding at the end).
  std::size_t bits_consumed() const { return pos_ * 8 - fill_; }

 private:
  void ensure(unsigned n) {
    while (fill_ < n) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << fill_;
        fill_ += 8;
      } else if (virtual_pad_ + 8 <= kMaxPadBits) {
        // Zero padding past the end; bounded so runaway reads still throw.
        virtual_pad_ += 8;
        ++pos_;
        fill_ += 8;
      } else {
        throw std::runtime_error("BitReader: out of data");
      }
    }
  }

  static constexpr unsigned kMaxPadBits = 64;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
  unsigned virtual_pad_ = 0;
};

}  // namespace ipcomp
