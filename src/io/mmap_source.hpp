// mmap-backed SegmentSource.
//
// MmapSource maps the whole archive file read-only and serves header and
// segment fetches by copying out of the mapping — no per-fetch open/seek/
// read syscalls, and the page cache is shared across every process serving
// the same archive.  The accounting is bit-for-bit FileSource's: header()
// charges the open cost once, read_many() resolves the whole batch before
// anything is charged (all-or-nothing), and batched fetches count one
// read_call + coalesced_range per contiguous run under the same
// kCoalesceGapBytes rule, so fetch-efficiency metrics compare directly
// across the two backends.
//
// Files that cannot or should not be mapped — empty files, files larger
// than `map_cap_bytes`, or an mmap(2) failure — fall back to a private
// FileSource; mapped() reports which path is live.
//
// Thread contract: inherits SegmentSource's — fetches touch only the
// immutable mapping/index and the atomic counters, so read_segment /
// read_many may overlap from any number of threads; header() mutates the
// header cache and must be serialized (fetched once, at open).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "io/archive.hpp"

namespace ipcomp {

class MmapSource final : public SegmentSource {
 public:
  /// Default mapping cap: archives past this size fall back to FileSource
  /// (bounding address-space use; 64 GiB covers every realistic archive on a
  /// 64-bit host while still having a limit to test against).
  static constexpr std::size_t kDefaultMapCap = std::size_t{64} << 30;

  explicit MmapSource(const std::string& path,
                      std::size_t map_cap_bytes = kDefaultMapCap);
  ~MmapSource() override;
  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  /// True when the file is memory-mapped; false when serving through the
  /// FileSource fallback.
  bool mapped() const { return map_ != nullptr; }

  const Bytes& header() override;
  Bytes read_segment(SegmentId id) override;
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override;
  std::size_t segment_size(SegmentId id) const override;
  std::vector<SegmentId> segment_ids() const override;
  std::uint32_t version() const override;
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override;
  std::size_t total_size() const override;

 private:
  const ArchiveIndex::Entry& resolve(SegmentId id) const;
  /// Fold what the fallback just charged into this source's own counters,
  /// so stats() reads the same no matter which path is live.
  void mirror_fallback(const SourceStats& before);

  /// nullptr when falling back; spans the whole file otherwise.
  const std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
  ArchiveIndex index_;
  Bytes header_cache_;
  bool header_charged_ = false;
  /// Engaged exactly when map_ == nullptr.
  std::unique_ptr<FileSource> fallback_;
};

}  // namespace ipcomp
