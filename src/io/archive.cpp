#include "io/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ipcomp {

std::vector<Bytes> SegmentSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out;
  out.reserve(ids.size());
  std::size_t delivered = 0;
  try {
    for (const SegmentId& id : ids) {
      out.push_back(read_segment(id));
      delivered += out.back().size();
    }
  } catch (...) {
    // A mid-batch failure delivers nothing, so nothing may stay charged —
    // same all-or-nothing accounting as FileSource::read_many, keeping a
    // retried execute() from double-counting retrieved volume.  Only this
    // batch's charges are rolled back; fetches on other threads keep theirs.
    uncharge_bytes(delivered);
    throw;
  }
  return out;
}

namespace {
constexpr std::uint32_t kMagic = 0x41435049u;  // "IPCA" little-endian
}  // namespace

std::uint64_t SegmentId::key(std::uint32_t version) const {
  if (version >= kArchiveV2) {
    // block is 32-bit and the v2 key gives it 36, so it always fits.
    if (kind > 0xFF || level > 0xFF || plane > 0xFFF) {
      throw std::runtime_error("archive: segment id out of range for v2 key");
    }
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(level) << 48) |
           (static_cast<std::uint64_t>(plane) << 36) | block;
  }
  if (block != 0) {
    throw std::runtime_error("archive: v1 keys cannot address blocks");
  }
  return (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(level) << 32) | plane;
}

Bytes ArchiveBuilder::finish() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(version_);
  w.varint(header_.size());
  w.bytes(header_);
  w.varint(order_.size());
  for (std::uint64_t key : order_) {
    w.u64(key);
    w.varint(segments_.at(key).size());
  }
  for (std::uint64_t key : order_) {
    w.bytes(segments_.at(key));
  }
  return w.take();
}

ArchiveIndex ArchiveIndex::parse(std::span<const std::uint8_t> head_bytes,
                                 std::size_t total_size) {
  ByteReader r(head_bytes);
  if (r.u32() != kMagic) throw std::runtime_error("archive: bad magic");
  ArchiveIndex idx;
  idx.version = r.u32();
  if (idx.version < kArchiveV1 || idx.version > kArchiveV3) {
    throw std::runtime_error("archive: bad version");
  }
  idx.total_size = total_size;
  idx.header_length = r.varint();
  idx.header_offset = r.position();
  // Skip over the header payload to reach the segment table.
  r.bytes(idx.header_length);
  std::size_t count = r.varint();
  // Each table row encodes to at least 9 bytes (u64 key + 1-byte varint); a
  // forged count must not drive the reserve() allocation below.
  if (count > r.remaining() / 9) throw std::runtime_error("archive: bad segment count");
  std::vector<std::pair<std::uint64_t, std::size_t>> lengths;
  lengths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t key = r.u64();
    std::size_t len = r.varint();
    lengths.emplace_back(key, len);
  }
  std::size_t offset = r.position();
  for (auto [key, len] : lengths) {
    // Checked per entry so a huge forged len cannot wrap offset += len.
    if (len > total_size - offset) throw std::runtime_error("archive: truncated");
    // Duplicate keys would silently alias two payload ranges to one id.
    if (!idx.entries.emplace(key, Entry{key, offset, len}).second) {
      throw std::runtime_error("archive: duplicate segment key");
    }
    offset += len;
  }
  return idx;
}

MemorySource::MemorySource(Bytes archive) : blob_(std::move(archive)) {
  index_ = ArchiveIndex::parse({blob_.data(), blob_.size()}, blob_.size());
}

const Bytes& MemorySource::header() {
  if (header_cache_.empty()) {
    header_cache_.assign(blob_.begin() + index_.header_offset,
                         blob_.begin() + index_.header_offset + index_.header_length);
  }
  if (!header_charged_) {
    // Header + segment table are the fixed cost of opening the archive.
    charge_bytes(index_.header_offset + index_.header_length);
    count_read_call();
    header_charged_ = true;
  }
  return header_cache_;
}

Bytes MemorySource::read_segment(SegmentId id) {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  charge_bytes(it->second.length);
  count_read_call();
  return Bytes(blob_.begin() + it->second.offset,
               blob_.begin() + it->second.offset + it->second.length);
}

bool MemorySource::has_segment(SegmentId id) const {
  return index_.entries.contains(id.key(index_.version));
}

std::size_t MemorySource::segment_size(SegmentId id) const {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  return it->second.length;
}

namespace {

class File {
 public:
  File(const std::string& path, const char* mode) : f_(std::fopen(path.c_str(), mode)) {
    if (!f_) throw std::runtime_error("cannot open file: " + path);
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

FileSource::FileSource(std::string path) : path_(std::move(path)) {
  File f(path_, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  file_size_ = static_cast<std::size_t>(std::ftell(f.get()));
  // The index prefix (magic/version/header/table) precedes all payloads; read
  // a bounded prefix large enough to hold it.  Headers carry per-plane size
  // tables and stay in the tens of kilobytes.
  std::size_t prefix = std::min<std::size_t>(file_size_, std::size_t{1} << 22);
  std::fseek(f.get(), 0, SEEK_SET);
  Bytes head(prefix);
  if (std::fread(head.data(), 1, prefix, f.get()) != prefix) {
    throw std::runtime_error("archive: short read of index prefix");
  }
  index_ = ArchiveIndex::parse({head.data(), head.size()}, file_size_);
}

const Bytes& FileSource::header() {
  if (!header_loaded_) {
    header_cache_ = read_range(index_.header_offset, index_.header_length);
    charge_bytes(index_.header_offset + index_.header_length);
    count_read_call();
    header_loaded_ = true;
  }
  return header_cache_;
}

Bytes FileSource::read_segment(SegmentId id) {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  charge_bytes(it->second.length);
  count_read_call();
  return read_range(it->second.offset, it->second.length);
}

std::vector<Bytes> FileSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out(ids.size());
  if (ids.empty()) return out;

  // Resolve every id up front (so a missing segment throws before any read),
  // then visit the batch in file-offset order: requests usually arrive in
  // table order already, but plane segments of one level are planned
  // MSB-first while the file stores them LSB-first.
  struct Item {
    std::size_t idx;  // position in the request (and output) order
    std::size_t offset;
    std::size_t length;
  };
  std::vector<Item> items;
  items.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto it = index_.entries.find(ids[i].key(index_.version));
    if (it == index_.entries.end()) {
      throw std::runtime_error("archive: missing segment");
    }
    items.push_back({i, it->second.offset, it->second.length});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.offset < b.offset; });

  File f(path_, "rb");
  Bytes buf;
  for (std::size_t i = 0; i < items.size();) {
    // Coalesce the run of segments whose ranges start within
    // kCoalesceGapBytes of the current range's end into one read; the gap
    // bytes are read through but never charged to bytes_read().
    std::size_t begin = items[i].offset;
    std::size_t end = begin + items[i].length;
    std::size_t j = i + 1;
    while (j < items.size() && items[j].offset <= end + kCoalesceGapBytes) {
      end = std::max(end, items[j].offset + items[j].length);
      ++j;
    }
    buf.resize(end - begin);
    std::fseek(f.get(), static_cast<long>(begin), SEEK_SET);
    if (!buf.empty() &&
        std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
      throw std::runtime_error("archive: short segment read");
    }
    count_read_call();
    count_coalesced_range();
    for (; i < j; ++i) {
      const Item& item = items[i];
      out[item.idx].assign(buf.begin() + (item.offset - begin),
                           buf.begin() + (item.offset - begin) + item.length);
    }
  }
  // Charged only once the whole batch delivered: a throw mid-batch (missing
  // id, short read) must not inflate bytes_read() with payloads that were
  // never handed out, or the retrieved-volume metric — and the reader's
  // Σ bytes_new == bytes_total invariant across a retried execute() — drifts.
  for (const Item& item : items) charge_bytes(item.length);
  return out;
}

bool FileSource::has_segment(SegmentId id) const {
  return index_.entries.contains(id.key(index_.version));
}

std::size_t FileSource::segment_size(SegmentId id) const {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  return it->second.length;
}

Bytes FileSource::read_range(std::size_t offset, std::size_t length) const {
  File f(path_, "rb");
  std::fseek(f.get(), static_cast<long>(offset), SEEK_SET);
  Bytes out(length);
  if (length > 0 && std::fread(out.data(), 1, length, f.get()) != length) {
    throw std::runtime_error("archive: short segment read");
  }
  return out;
}

void write_file(const std::string& path, const Bytes& data) {
  File f(path, "wb");
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f.get()) != data.size()) {
    throw std::runtime_error("cannot write file: " + path);
  }
}

Bytes read_file(const std::string& path) {
  File f(path, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  std::size_t n = static_cast<std::size_t>(std::ftell(f.get()));
  std::fseek(f.get(), 0, SEEK_SET);
  Bytes out(n);
  if (n > 0 && std::fread(out.data(), 1, n, f.get()) != n) {
    throw std::runtime_error("cannot read file: " + path);
  }
  return out;
}

}  // namespace ipcomp
