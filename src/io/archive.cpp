#include "io/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/checksum.hpp"

namespace ipcomp {

namespace {

const char* layer_name(IntegrityError::Layer layer) {
  switch (layer) {
    case IntegrityError::Layer::kStorage:
      return "storage";
    case IntegrityError::Layer::kCache:
      return "cache";
    case IntegrityError::Layer::kWire:
      return "wire";
  }
  return "?";
}

std::string integrity_message(SegmentId id, std::uint64_t expected,
                              std::uint64_t actual,
                              IntegrityError::Layer layer) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "integrity: segment (kind=%u level=%u plane=%u block=%u) "
                "checksum mismatch at %s layer: expected %016llx, got %016llx",
                unsigned{id.kind}, unsigned{id.level}, unsigned{id.plane},
                unsigned{id.block}, layer_name(layer),
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(actual));
  return buf;
}

/// One stderr note per process when a pre-v4 container is opened; the data
/// still reads, it just cannot be verified.
void warn_integrity_unavailable(std::uint32_t version) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "ipcomp: archive container v%u predates per-segment "
                 "checksums; integrity verification is unavailable "
                 "(recompress with integrity enabled to upgrade)\n",
                 version);
  }
}

}  // namespace

IntegrityError::IntegrityError(SegmentId segment, std::uint64_t expected,
                               std::uint64_t actual, Layer layer)
    : std::runtime_error(integrity_message(segment, expected, actual, layer)),
      segment_(segment),
      expected_(expected),
      actual_(actual),
      layer_(layer) {}

std::vector<Bytes> SegmentSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out;
  out.reserve(ids.size());
  std::size_t delivered = 0;
  try {
    for (const SegmentId& id : ids) {
      out.push_back(read_segment(id));
      delivered += out.back().size();
    }
  } catch (...) {
    // A mid-batch failure delivers nothing, so nothing may stay charged —
    // same all-or-nothing accounting as FileSource::read_many, keeping a
    // retried execute() from double-counting retrieved volume.  Only this
    // batch's charges are rolled back; fetches on other threads keep theirs.
    uncharge_bytes(delivered);
    throw;
  }
  return out;
}

namespace {
constexpr std::uint32_t kMagic = 0x41435049u;  // "IPCA" little-endian
}  // namespace

std::uint64_t SegmentId::key(std::uint32_t version) const {
  if (version >= kArchiveV2) {
    // block is 32-bit and the v2 key gives it 36, so it always fits.
    if (kind > 0xFF || level > 0xFF || plane > 0xFFF) {
      throw std::runtime_error("archive: segment id out of range for v2 key");
    }
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(level) << 48) |
           (static_cast<std::uint64_t>(plane) << 36) | block;
  }
  if (block != 0) {
    throw std::runtime_error("archive: v1 keys cannot address blocks");
  }
  return (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(level) << 32) | plane;
}

Bytes ArchiveBuilder::finish() const {
  ByteWriter w;
  w.u32(kMagic);
  if (integrity_) {
    w.u32(kArchiveV4);
    w.u32(version_);  // base version: key packing + header format
    w.u8(kChecksumXXH64);
  } else {
    w.u32(version_);
  }
  w.varint(header_.size());
  w.bytes(header_);
  w.varint(order_.size());
  for (std::uint64_t key : order_) {
    const Bytes& payload = segments_.at(key);
    w.u64(key);
    w.varint(payload.size());
    if (integrity_) w.u64(checksum64(payload.data(), payload.size()));
  }
  for (std::uint64_t key : order_) {
    w.bytes(segments_.at(key));
  }
  return w.take();
}

ArchiveIndex ArchiveIndex::parse(std::span<const std::uint8_t> head_bytes,
                                 std::size_t total_size) {
  ByteReader r(head_bytes);
  if (r.u32() != kMagic) throw std::runtime_error("archive: bad magic");
  ArchiveIndex idx;
  idx.container = r.u32();
  if (idx.container == kArchiveV4) {
    // Integrity wrapper: the base version follows, then the checksum algo.
    idx.version = r.u32();
    idx.has_checksums = true;
    if (r.u8() != kChecksumXXH64) {
      throw std::runtime_error("archive: unknown checksum algorithm");
    }
  } else {
    idx.version = idx.container;
  }
  if (idx.version < kArchiveV1 || idx.version > kArchiveV3) {
    throw std::runtime_error("archive: bad version");
  }
  if (!idx.has_checksums) warn_integrity_unavailable(idx.version);
  idx.total_size = total_size;
  idx.header_length = r.varint();
  idx.header_offset = r.position();
  // Skip over the header payload to reach the segment table.
  r.bytes(idx.header_length);
  std::size_t count = r.varint();
  // Each table row encodes to at least 9 bytes (u64 key + 1-byte varint;
  // +8 for the v4 checksum column); a forged count must not drive the
  // reserve() allocation below.
  const std::size_t min_row = idx.has_checksums ? 17 : 9;
  if (count > r.remaining() / min_row) {
    throw std::runtime_error("archive: bad segment count");
  }
  struct Row {
    std::uint64_t key;
    std::size_t len;
    std::uint64_t checksum;
  };
  std::vector<Row> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Row row{};
    row.key = r.u64();
    row.len = r.varint();
    if (idx.has_checksums) row.checksum = r.u64();
    rows.push_back(row);
  }
  std::size_t offset = r.position();
  for (const Row& row : rows) {
    // Checked per entry so a huge forged len cannot wrap offset += len.
    if (row.len > total_size - offset) throw std::runtime_error("archive: truncated");
    // Duplicate keys would silently alias two payload ranges to one id.
    if (!idx.entries
             .emplace(row.key, Entry{row.key, offset, row.len, row.checksum})
             .second) {
      throw std::runtime_error("archive: duplicate segment key");
    }
    offset += row.len;
  }
  return idx;
}

void ArchiveIndex::verify(const Entry& entry,
                          std::span<const std::uint8_t> payload) const {
  if (!has_checksums) return;
  const std::uint64_t actual = checksum64(payload.data(), payload.size());
  if (actual != entry.checksum) {
    throw IntegrityError(SegmentId::from_key(entry.key, version),
                         entry.checksum, actual,
                         IntegrityError::Layer::kStorage);
  }
}

MemorySource::MemorySource(Bytes archive) : blob_(std::move(archive)) {
  index_ = ArchiveIndex::parse({blob_.data(), blob_.size()}, blob_.size());
}

const Bytes& MemorySource::header() {
  if (header_cache_.empty()) {
    header_cache_.assign(blob_.begin() + index_.header_offset,
                         blob_.begin() + index_.header_offset + index_.header_length);
  }
  if (!header_charged_) {
    // Header + segment table are the fixed cost of opening the archive.
    charge_bytes(index_.header_offset + index_.header_length);
    count_read_call();
    header_charged_ = true;
  }
  return header_cache_;
}

Bytes MemorySource::read_segment(SegmentId id) {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  // Verified (and only then charged) before the payload is handed out.
  index_.verify(it->second, {blob_.data() + it->second.offset, it->second.length});
  charge_bytes(it->second.length);
  count_read_call();
  return Bytes(blob_.begin() + it->second.offset,
               blob_.begin() + it->second.offset + it->second.length);
}

bool MemorySource::has_segment(SegmentId id) const {
  return index_.entries.contains(id.key(index_.version));
}

std::size_t MemorySource::segment_size(SegmentId id) const {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  return it->second.length;
}

namespace {

class File {
 public:
  File(const std::string& path, const char* mode) : f_(std::fopen(path.c_str(), mode)) {
    if (!f_) throw std::runtime_error("cannot open file: " + path);
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

FileSource::FileSource(std::string path) : path_(std::move(path)) {
  File f(path_, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  file_size_ = static_cast<std::size_t>(std::ftell(f.get()));
  // The index prefix (magic/version/header/table) precedes all payloads; read
  // a bounded prefix large enough to hold it.  Headers carry per-plane size
  // tables and stay in the tens of kilobytes.
  std::size_t prefix = std::min<std::size_t>(file_size_, std::size_t{1} << 22);
  std::fseek(f.get(), 0, SEEK_SET);
  Bytes head(prefix);
  if (std::fread(head.data(), 1, prefix, f.get()) != prefix) {
    throw std::runtime_error("archive: short read of index prefix");
  }
  index_ = ArchiveIndex::parse({head.data(), head.size()}, file_size_);
}

const Bytes& FileSource::header() {
  if (!header_loaded_) {
    header_cache_ = read_range(index_.header_offset, index_.header_length);
    charge_bytes(index_.header_offset + index_.header_length);
    count_read_call();
    header_loaded_ = true;
  }
  return header_cache_;
}

Bytes FileSource::read_segment(SegmentId id) {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  Bytes payload = read_range(it->second.offset, it->second.length);
  // Verified (and only then charged) before the payload is handed out.
  index_.verify(it->second, {payload.data(), payload.size()});
  charge_bytes(it->second.length);
  count_read_call();
  return payload;
}

std::vector<Bytes> FileSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out(ids.size());
  if (ids.empty()) return out;

  // Resolve every id up front (so a missing segment throws before any read),
  // then visit the batch in file-offset order: requests usually arrive in
  // table order already, but plane segments of one level are planned
  // MSB-first while the file stores them LSB-first.
  struct Item {
    std::size_t idx;  // position in the request (and output) order
    std::size_t offset;
    std::size_t length;
    const ArchiveIndex::Entry* entry;
  };
  std::vector<Item> items;
  items.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto it = index_.entries.find(ids[i].key(index_.version));
    if (it == index_.entries.end()) {
      throw std::runtime_error("archive: missing segment");
    }
    items.push_back({i, it->second.offset, it->second.length, &it->second});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.offset < b.offset; });

  File f(path_, "rb");
  Bytes buf;
  for (std::size_t i = 0; i < items.size();) {
    // Coalesce the run of segments whose ranges start within
    // kCoalesceGapBytes of the current range's end into one read; the gap
    // bytes are read through but never charged to bytes_read().
    std::size_t begin = items[i].offset;
    std::size_t end = begin + items[i].length;
    std::size_t j = i + 1;
    while (j < items.size() && items[j].offset <= end + kCoalesceGapBytes) {
      end = std::max(end, items[j].offset + items[j].length);
      ++j;
    }
    buf.resize(end - begin);
    std::fseek(f.get(), static_cast<long>(begin), SEEK_SET);
    if (!buf.empty() &&
        std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
      throw std::runtime_error("archive: short segment read");
    }
    count_read_call();
    count_coalesced_range();
    for (; i < j; ++i) {
      const Item& item = items[i];
      // Each slice is verified straight out of the coalesced buffer; a
      // corrupt segment throws here, before the batch charges anything.
      index_.verify(*item.entry,
                    {buf.data() + (item.offset - begin), item.length});
      out[item.idx].assign(buf.begin() + (item.offset - begin),
                           buf.begin() + (item.offset - begin) + item.length);
    }
  }
  // Charged only once the whole batch delivered: a throw mid-batch (missing
  // id, short read) must not inflate bytes_read() with payloads that were
  // never handed out, or the retrieved-volume metric — and the reader's
  // Σ bytes_new == bytes_total invariant across a retried execute() — drifts.
  for (const Item& item : items) charge_bytes(item.length);
  return out;
}

bool FileSource::has_segment(SegmentId id) const {
  return index_.entries.contains(id.key(index_.version));
}

std::size_t FileSource::segment_size(SegmentId id) const {
  auto it = index_.entries.find(id.key(index_.version));
  if (it == index_.entries.end()) throw std::runtime_error("archive: missing segment");
  return it->second.length;
}

Bytes FileSource::read_range(std::size_t offset, std::size_t length) const {
  File f(path_, "rb");
  std::fseek(f.get(), static_cast<long>(offset), SEEK_SET);
  Bytes out(length);
  if (length > 0 && std::fread(out.data(), 1, length, f.get()) != length) {
    throw std::runtime_error("archive: short segment read");
  }
  return out;
}

void write_file(const std::string& path, const Bytes& data) {
  File f(path, "wb");
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f.get()) != data.size()) {
    throw std::runtime_error("cannot write file: " + path);
  }
}

Bytes read_file(const std::string& path) {
  File f(path, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  std::size_t n = static_cast<std::size_t>(std::ftell(f.get()));
  std::fseek(f.get(), 0, SEEK_SET);
  Bytes out(n);
  if (n > 0 && std::fread(out.data(), 1, n, f.get()) != n) {
    throw std::runtime_error("cannot read file: " + path);
  }
  return out;
}

}  // namespace ipcomp
