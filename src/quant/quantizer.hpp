// Error-bounded linear-scale quantization (paper §4.2.2).
//
// Quantizes prediction differences to integers with bin width 2·eb, so the
// reconstruction pred + q·2eb differs from the original by at most eb.
// Values whose code would overflow the 32-bit negabinary range (or that are
// non-finite) become *outliers*: their raw value is stored exactly in the
// level's base segment and the code is 0, keeping bitplanes compressible.
#pragma once

#include <cmath>
#include <cstdint>

#include "bitplane/negabinary.hpp"

namespace ipcomp {

class LinearQuantizer {
 public:
  /// Codes are capped well inside the negabinary range; anything larger is an
  /// outlier (also leaves headroom so δy sums cannot overflow int64).
  static constexpr std::int64_t kCodeCap = std::int64_t{1} << 30;

  explicit LinearQuantizer(double eb)
      : eb_(eb), two_eb_(2.0 * eb), inv_two_eb_(1.0 / (2.0 * eb)) {}

  double error_bound() const { return eb_; }
  double step() const { return two_eb_; }

  /// Quantize `orig - pred`.  On success stores the signed code and the
  /// reconstruction (pred + code·2eb) and returns true; returns false for
  /// outliers (caller stores `orig` exactly).
  template <typename T>
  bool quantize(T orig, T pred, std::int64_t& code, T& recon) const {
    const double diff = static_cast<double>(orig) - static_cast<double>(pred);
    if (!std::isfinite(diff)) return false;
    const double scaled = diff * inv_two_eb_;
    if (scaled >= static_cast<double>(kCodeCap) ||
        scaled <= -static_cast<double>(kCodeCap)) {
      return false;
    }
    code = std::llround(scaled);
    const double r = static_cast<double>(pred) + static_cast<double>(code) * two_eb_;
    recon = static_cast<T>(r);
    // Float32 rounding of the reconstruction can push the error past eb;
    // fall back to outlier storage in that rare case.
    if (std::abs(static_cast<double>(recon) - static_cast<double>(orig)) > eb_) {
      return false;
    }
    return true;
  }

  /// Reconstruction from a signed code.
  template <typename T>
  T dequantize(T pred, std::int64_t code) const {
    return static_cast<T>(static_cast<double>(pred) +
                          static_cast<double>(code) * two_eb_);
  }

 private:
  double eb_;
  double two_eb_;
  double inv_two_eb_;
};

}  // namespace ipcomp
