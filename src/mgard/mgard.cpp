#include "mgard/mgard.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "core/header.hpp"  // kSegPlane segment kind
#include "interp/sweep.hpp"
#include "io/archive.hpp"
#include "loader/optimizer.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

constexpr int kFixedBits = 30;  // q in [-2^30, 2^30], fits 32-bit negabinary
constexpr unsigned kPrefixBits = 2;

}  // namespace

std::vector<std::vector<double>> mgard_decompose(NdConstView<double> data) {
  const Dims dims = data.dims();
  const LevelStructure ls = LevelStructure::analyze(dims);
  std::vector<std::vector<double>> coeffs(ls.num_levels);
  for (unsigned li = 0; li < ls.num_levels; ++li) {
    coeffs[li].assign(ls.level_count[li], 0.0);
  }
  // Values stay original throughout, so predictions are taken from the
  // original coarse grid: the hierarchical-basis coefficients.
  std::vector<double> work(data.span().begin(), data.span().end());
  const double* original = data.data();
  interpolation_sweep(work.data(), ls, InterpKind::kLinear,
                      [&](unsigned li, std::size_t slot, std::size_t idx,
                          double pred) -> double {
                        coeffs[li][slot] = original[idx] - pred;
                        return original[idx];
                      });
  return coeffs;
}

std::vector<double> mgard_recompose(const Dims& dims,
                                    const std::vector<std::vector<double>>& coeffs) {
  const LevelStructure ls = LevelStructure::analyze(dims);
  if (coeffs.size() != ls.num_levels) {
    throw std::invalid_argument("mgard_recompose: level count mismatch");
  }
  std::vector<double> out(dims.count(), 0.0);
  interpolation_sweep(out.data(), ls, InterpKind::kLinear,
                      [&](unsigned li, std::size_t slot, std::size_t /*idx*/,
                          double pred) -> double {
                        return pred + coeffs[li][slot];
                      });
  return out;
}

namespace {

struct LevelInfo {
  std::uint64_t count = 0;
  double scale = 0.0;       // max |coefficient| at this level
  std::uint32_t n_planes = 0;
  std::vector<std::uint64_t> loss;  // truncation loss table (fixed-point units)
};

struct ParsedHeader {
  Dims dims;
  double eb = 0.0;
  std::vector<LevelInfo> levels;
};

Bytes serialize_header(const ParsedHeader& h) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(h.dims.rank()));
  for (std::size_t i = 0; i < h.dims.rank(); ++i) w.varint(h.dims[i]);
  w.f64(h.eb);
  w.varint(h.levels.size());
  for (const LevelInfo& l : h.levels) {
    w.varint(l.count);
    w.f64(l.scale);
    w.varint(l.n_planes);
    for (auto v : l.loss) w.varint(v);
  }
  return w.take();
}

ParsedHeader parse_header(const Bytes& raw) {
  ByteReader r({raw.data(), raw.size()});
  ParsedHeader h;
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  h.dims = Dims::of_rank(rank, extents);
  h.eb = r.f64();
  h.levels.resize(r.varint());
  for (LevelInfo& l : h.levels) {
    l.count = r.varint();
    l.scale = r.f64();
    l.n_planes = static_cast<std::uint32_t>(r.varint());
    l.loss.resize(l.n_planes + 1);
    for (auto& v : l.loss) v = r.varint();
  }
  return h;
}

/// Residual error of the fixed-point representation itself (the "+eb" analog
/// in the retrieval bound): rank · Σ_l scale_l · 2^-kFixedBits.
double base_loss(const ParsedHeader& h) {
  double s = 0.0;
  for (const LevelInfo& l : h.levels) s += l.scale;
  return s * std::ldexp(1.0, -kFixedBits) * static_cast<double>(h.dims.rank());
}

}  // namespace

Bytes PmgardCompressor::compress(NdConstView<double> data, double eb_abs) {
  const Dims dims = data.dims();
  auto coeffs = mgard_decompose(data);
  const unsigned L = static_cast<unsigned>(coeffs.size());

  ParsedHeader h;
  h.dims = dims;
  h.eb = eb_abs;
  h.levels.resize(L);
  ArchiveBuilder builder;

  for (unsigned li = 0; li < L; ++li) {
    LevelInfo& info = h.levels[li];
    info.count = coeffs[li].size();
    double scale = 0.0;
    for (double c : coeffs[li]) scale = std::max(scale, std::abs(c));
    info.scale = scale;
    if (scale == 0.0 || coeffs[li].empty()) {
      info.n_planes = 0;
      info.loss.assign(1, 0);
      continue;
    }
    const double to_fixed = std::ldexp(1.0, kFixedBits) / scale;
    std::vector<std::uint32_t> codes(coeffs[li].size());
    parallel_for(0, codes.size(), [&](std::size_t i) {
      codes[i] = negabinary_encode(
          static_cast<std::int64_t>(std::llround(coeffs[li][i] * to_fixed)));
    }, /*grain=*/1 << 14);

    std::uint32_t all = 0;
    for (auto c : codes) all |= c;
    const unsigned n_planes = all == 0 ? 0 : 32 - __builtin_clz(all);
    info.n_planes = n_planes;
    auto loss = truncation_loss_table(codes);
    info.loss.resize(n_planes + 1);
    for (unsigned d = 0; d <= n_planes; ++d) {
      info.loss[d] = static_cast<std::uint64_t>(loss[d]);
    }

    if (n_planes > 0) {
      auto planes = extract_all_planes(codes);
      std::vector<Bytes> packed(n_planes);
      parallel_for(0, n_planes, [&](std::size_t k) {
        Bytes enc = predictive_encode_plane(codes, planes[k],
                                            static_cast<unsigned>(k), kPrefixBits);
        packed[k] = codec_compress({enc.data(), enc.size()}, codec_);
      }, /*grain=*/1);
      for (unsigned k = 0; k < n_planes; ++k) {
        builder.add_segment({kSegPlane, static_cast<std::uint16_t>(li + 1), k},
                            std::move(packed[k]));
      }
    }
  }
  builder.set_header(serialize_header(h));
  return builder.finish();
}

Retrieval PmgardCompressor::retrieve(const Bytes& archive, double error_target,
                                     std::uint64_t byte_budget,
                                     bool byte_mode) const {
  MemorySource src{Bytes(archive)};
  ParsedHeader h = parse_header(src.header());
  const unsigned L = static_cast<unsigned>(h.levels.size());
  const double rank_amp = static_cast<double>(h.dims.rank());

  std::vector<LevelPlanInput> inputs(L);
  for (unsigned li = 0; li < L; ++li) {
    const LevelInfo& info = h.levels[li];
    LevelPlanInput& in = inputs[li];
    if (info.n_planes == 0) {
      in.err.assign(1, 0.0);
      continue;
    }
    const double unit = info.scale * std::ldexp(1.0, -kFixedBits);
    in.plane_size.resize(info.n_planes);
    for (unsigned k = 0; k < info.n_planes; ++k) {
      in.plane_size[k] =
          src.segment_size({kSegPlane, static_cast<std::uint16_t>(li + 1), k});
    }
    in.err.resize(info.n_planes + 1);
    for (unsigned d = 0; d <= info.n_planes; ++d) {
      in.err[d] = rank_amp * static_cast<double>(info.loss[d]) * unit;
    }
  }

  const double floor_err = base_loss(h);
  LoadPlan plan;
  if (byte_mode) {
    const std::size_t mandatory = src.stats().bytes_read;
    std::uint64_t remaining = byte_budget > mandatory ? byte_budget - mandatory : 0;
    plan = plan_byte_budget(inputs, remaining);
  } else {
    plan = plan_error_bound(inputs, error_target - floor_err);
  }

  // Fetch planes (MSB first) and rebuild the selected-precision coefficients.
  std::vector<std::vector<double>> coeffs(L);
  for (unsigned li = 0; li < L; ++li) {
    const LevelInfo& info = h.levels[li];
    coeffs[li].assign(info.count, 0.0);
    if (info.n_planes == 0) continue;
    std::vector<std::uint32_t> codes(info.count, 0);
    const unsigned use = plan.planes_to_use[li];
    for (unsigned used = 1; used <= use; ++used) {
      const unsigned k = info.n_planes - used;
      Bytes seg =
          src.read_segment({kSegPlane, static_cast<std::uint16_t>(li + 1), k});
      Bytes enc = codec_decompress({seg.data(), seg.size()},
                                   plane_bytes(info.count));
      Bytes plane = predictive_encode_plane(codes, enc, k, kPrefixBits);
      deposit_plane(codes, plane, k);
    }
    const double from_fixed = info.scale * std::ldexp(1.0, -kFixedBits);
    parallel_for(0, codes.size(), [&](std::size_t i) {
      coeffs[li][i] =
          static_cast<double>(negabinary_decode(codes[i])) * from_fixed;
    }, /*grain=*/1 << 14);
  }

  Retrieval out;
  out.data = mgard_recompose(h.dims, coeffs);
  out.bytes_loaded = src.stats().bytes_read;
  out.passes = 1;
  out.guaranteed_error = floor_err + plan.guaranteed_error;
  return out;
}

std::vector<double> PmgardCompressor::decompress(const Bytes& archive) {
  return retrieve(archive, 0.0, 0, /*byte_mode=*/false).data;
}

Retrieval PmgardCompressor::retrieve_error(const Bytes& archive, double target) {
  return retrieve(archive, target, 0, /*byte_mode=*/false);
}

Retrieval PmgardCompressor::retrieve_bytes(const Bytes& archive,
                                           std::uint64_t budget) {
  return retrieve(archive, 0.0, budget, /*byte_mode=*/true);
}

}  // namespace ipcomp
