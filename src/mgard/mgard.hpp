// MGARD-style multilevel decomposition and the PMGARD progressive baseline
// (paper §6.1.3; Ainsworth et al., Liang et al. SC'21).
//
// The substrate is the hierarchical (interpolation-basis) multilinear
// decomposition: level-l coefficients are the differences between nodal
// values and the multilinear interpolation of the *original* coarser grid —
// unlike the SZ3/IPComp prediction loop there is no quantization feedback,
// which is what makes independently re-quantizable per-level coefficients
// (and hence progressive retrieval) possible.  We omit reference MGARD's
// global L2-projection correction term: PMGARD's progressive machinery rests
// on the hierarchy itself, and the correction mainly improves smooth-norm
// (s < ∞) guarantees that the paper's evaluation does not exercise
// (DESIGN.md §2).
//
// PMGARD stores each level's coefficients as negabinary bitplanes of a
// 31-bit fixed-point representation (effectively lossless: ≤ 2^-30 relative
// per level) and retrieves progressively under either an error target or a
// byte budget, using the same knapsack planner as IPComp with the multilinear
// amplification model (‖P‖∞ = 1 ⇒ amp = rank).
#pragma once

#include "baselines/baseline.hpp"
#include "coding/codec.hpp"
#include "util/dims.hpp"

namespace ipcomp {

/// Hierarchical multilinear decomposition: returns per-level coefficient
/// arrays in sweep slot order (index 0 = finest level).
std::vector<std::vector<double>> mgard_decompose(NdConstView<double> data);

/// Inverse of mgard_decompose.
std::vector<double> mgard_recompose(const Dims& dims,
                                    const std::vector<std::vector<double>>& coeffs);

class PmgardCompressor final : public ProgressiveCompressor {
 public:
  /// PMGARD shares the orchestrated plane codec stage; `codec` picks the
  /// policy exactly as Options::codec does for the IPComp backends (the
  /// pre-policy code ignored the caller's choice and always used defaults).
  explicit PmgardCompressor(CodecPolicy codec = CodecPolicy::kProbe)
      : codec_(codec) {}

  std::string name() const override { return "PMGARD"; }

  /// PMGARD archives are precision-complete by design (the paper evaluates it
  /// as "lossless compression with lossy retrieval"); eb_abs is recorded for
  /// reporting but does not limit the stored precision.
  Bytes compress(NdConstView<double> data, double eb_abs) override;
  std::vector<double> decompress(const Bytes& archive) override;
  Retrieval retrieve_error(const Bytes& archive, double target) override;
  Retrieval retrieve_bytes(const Bytes& archive, std::uint64_t budget) override;

 private:
  struct Plan;
  Retrieval retrieve(const Bytes& archive, double error_target,
                     std::uint64_t byte_budget, bool byte_mode) const;

  CodecPolicy codec_;
};

}  // namespace ipcomp
