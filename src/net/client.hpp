// Remote progressive retrieval: the client side of net/wire.hpp.
//
// RemoteReader<T> mirrors ProgressiveReader's plan/execute/retrieve lifecycle
// over a daemon connection.  The trick that keeps it byte-identical to a
// local reader: the client runs its *own* ProgressiveReader over a
// StagedSource primed from the OPEN reply (header bytes, segment table,
// open cost), so plan() prices locally with exactly the server's arithmetic;
// PLAN round-trips only to reserve a server-side token and cross-check the
// price.  EXECUTE streams the still-compressed segment payloads into the
// staging area and the local reader decodes them — so a refinement moves
// only the plan's bytes_new across the wire, never re-sending what the
// client already holds.
//
// Self-healing: transient wire failures (connection reset, I/O error,
// timeout, a checksum-rejected SEGMENT frame) are recovered transparently
// under a RetryPolicy — the reader reconnects, re-OPENs, replays its
// acknowledged request history via RESUME so the server rebuilds the exact
// session state, and retries the interrupted operation.  Only a divergence
// *after* the server acknowledged an EXECUTE (local decode failure,
// accounting mismatch) still poisons the reader: at that point the two
// sides disagree about state that replay cannot reproduce.
//
// Thread contract: externally-synchronized — one RemoteReader (and the
// RemoteArchive/connection under it) belongs to one client thread, exactly
// like the local reader it mirrors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/progressive_reader.hpp"
#include "net/wire.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"

namespace ipcomp::net {

/// SegmentSource primed over the wire: immutable index/header from OPEN,
/// payloads staged by EXECUTE and consumed by the local reader.  Charges its
/// ledger exactly like the server-side SessionSource (open cost at the first
/// header fetch, delivered payload bytes per batch), so budget-driven plans
/// price identically on both ends.
class StagedSource final : public SegmentSource {
 public:
  const Bytes& header() override {
    if (!header_charged_) {
      charge_bytes(open_cost_);
      count_read_call();
      header_charged_ = true;
    }
    return header_;
  }
  Bytes read_segment(SegmentId id) override;
  /// Serves previously staged payloads; throws std::runtime_error if the
  /// server did not deliver one of `ids` (protocol violation).
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override {
    return sizes_.count(id.key(version_)) != 0;
  }
  std::size_t segment_size(SegmentId id) const override;
  std::vector<SegmentId> segment_ids() const override;
  std::uint32_t version() const override { return version_; }
  std::size_t total_size() const override { return total_size_; }
  std::optional<std::uint64_t> segment_checksum(SegmentId id) const override {
    auto it = checks_.find(id.key(version_));
    if (it == checks_.end()) return std::nullopt;
    return it->second;
  }
  /// Header + segment-table cost the server reported at OPEN (charged to
  /// this source's ledger on the first header fetch, like any local source).
  std::size_t open_cost() const { return open_cost_; }

 private:
  friend class RemoteArchive;

  void stage(std::uint64_t key, Bytes payload) {
    staged_[key] = std::move(payload);
  }

  Bytes header_;
  std::size_t open_cost_ = 0;
  bool header_charged_ = false;
  std::uint32_t version_ = 0;
  std::size_t total_size_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> sizes_;
  std::vector<std::uint64_t> order_;  // table order, for segment_ids()
  /// v4 archives ship the per-segment checksum column in OPEN_OK; SEGMENT
  /// payloads are verified against it before staging (wire trust boundary).
  std::unordered_map<std::uint64_t, std::uint64_t> checks_;
  std::unordered_map<std::uint64_t, Bytes> staged_;
};

/// PLAN_OK payload: the server-side reservation for one plan.
struct PlanReply {
  std::uint64_t token = 0;
  std::uint64_t bytes_new = 0;
  double guaranteed_error = 0.0;
  std::uint64_t n_segments = 0;
  std::uint64_t epoch = 0;
};

/// EXECUTE_OK payload: the stats the server's session recorded.
struct ExecReply {
  std::uint64_t bytes_new = 0;
  std::uint64_t bytes_total = 0;
  double guaranteed_error = 0.0;
  double bitrate = 0.0;
};

/// RESUME_OK payload: the rebuilt session's state after history replay.
struct ResumeReply {
  std::uint64_t epoch = 0;
  std::uint64_t bytes_used = 0;
};

/// One dialed connection with one archive OPENed on it.  Speaks raw frames;
/// RemoteReader<T> supplies the reader lifecycle on top.  Server ERROR
/// frames surface as typed exceptions: kQuotaExceeded -> QuotaExceeded,
/// kStalePlan/kUnknownToken -> std::logic_error, kBadRequest ->
/// std::invalid_argument, anything else -> RemoteError.
class RemoteArchive {
 public:
  /// Dial `spec` ("host:port" or "unix:/path"), HELLO, and OPEN `name`.
  RemoteArchive(const std::string& spec, const std::string& name,
                int timeout_ms = 30000);
  RemoteArchive(const RemoteArchive&) = delete;
  RemoteArchive& operator=(const RemoteArchive&) = delete;

  /// The wire-primed source the local mirror reader plugs into.
  StagedSource& source() { return src_; }

  PlanReply plan_remote(std::uint64_t epoch, const Request& req);
  /// Streams the token's segment payloads into source()'s staging area,
  /// verifying each against the OPEN checksum column (throws IntegrityError
  /// at the wire layer on mismatch, before staging).
  ExecReply execute_remote(std::uint64_t token);
  ServeStats stat();
  /// CLOSE the archive and say goodbye; the connection drops.
  void close();

  /// Drop the current connection (if any), re-dial, HELLO, and re-OPEN the
  /// same archive, verifying the server still exports the identical bytes
  /// (version, sizes, table, checksums) — a changed archive is protocol
  /// drift, not a transient fault.  The staged source keeps its residency:
  /// the reader holding it stays valid across the reconnect.
  void reconnect();
  /// Replay `history` (the acknowledged requests, oldest first) so the
  /// server rebuilds this session's exact residency and quota ledger.
  ResumeReply resume_remote(const std::vector<Request>& history);

  /// Install a fault injector on the wire (testing / soak); survives
  /// reconnect — the injector is re-attached to every new channel.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Segment payload bytes received over the wire, total and for the most
  /// recent execute_remote (the "bytes on wire" half of the transfer-savings
  /// story; compare with RetrievalStats::bytes_new).  Retransmits after a
  /// recovery count: these really did cross the wire again.
  std::uint64_t wire_payload_bytes() const { return wire_payload_bytes_; }
  std::uint64_t last_payload_bytes() const { return last_payload_bytes_; }

 private:
  /// Dial and install the frame channel (plus any fault injector).
  void connect();
  /// HELLO + OPEN.  First time primes the staged source; `reopening` instead
  /// cross-checks the reply against what OPEN primed originally.
  void handshake(bool reopening);
  /// Receive one frame, unwrap ERROR frames into typed exceptions, and
  /// insist on `expect`.
  Frame expect_reply(Op expect);

  std::string spec_;
  std::string name_;
  int timeout_ms_;
  /// Optional only so reconnect() can replace the channel in place;
  /// engaged from the constructor on.
  std::optional<FrameChannel> ch_;
  std::shared_ptr<FaultInjector> faults_;
  std::uint32_t open_id_ = 0;
  StagedSource src_;
  std::uint64_t wire_payload_bytes_ = 0;
  std::uint64_t last_payload_bytes_ = 0;
};

/// Bounds for the self-healing retry loop in RemoteReader.  An operation is
/// attempted at most `max_attempts` times; between attempts the reader
/// sleeps an exponentially growing, jittered backoff and then runs one
/// recovery cycle (reconnect + RESUME replay).  `recovery_budget` caps total
/// recovery cycles over the reader's lifetime, so a persistently flaky link
/// still converges to a typed failure instead of retrying forever.
struct RetryPolicy {
  int max_attempts = 4;
  unsigned backoff_base_ms = 5;
  unsigned backoff_max_ms = 200;
  unsigned recovery_budget = 16;
  std::uint64_t jitter_seed = 0x1e7f;
};

/// Drop-in remote counterpart of ProgressiveReader<T>: same
/// plan/execute/retrieve surface, same stats, byte-identical reconstruction
/// for the same request sequence.  The reader config is pinned to defaults —
/// the server's pricing mirror uses defaults, and the two must agree for
/// plans to match.
///
/// Transient wire failures self-heal under `policy` (see RetryPolicy): the
/// reader reconnects, replays its acknowledged history via RESUME, and
/// retries — a mid-EXECUTE connection reset resumes transparently, with the
/// retry observable via recoveries().  Exhausted retries rethrow the last
/// typed error (WireError / IntegrityError).
template <typename T>
class RemoteReader {
 public:
  RemoteReader(const std::string& spec, const std::string& name,
               int timeout_ms = 30000, RetryPolicy policy = {})
      : archive_(spec, name, timeout_ms),
        reader_(archive_.source()),
        policy_(policy),
        jitter_(policy.jitter_seed) {}
  RemoteReader(const RemoteReader&) = delete;
  RemoteReader& operator=(const RemoteReader&) = delete;

  /// Price `req` locally (exact, no I/O beyond the PLAN round-trip) and
  /// reserve the matching server-side token.  Throws std::runtime_error if
  /// the server's price disagrees with the local mirror — protocol drift.
  RetrievalPlan plan(const Request& req);
  /// Pull the plan's segments over the wire and decode them locally.
  ///
  /// Failure after the server replied EXECUTE_OK (the local decode throws,
  /// or the accounting cross-check fails) leaves the server session one
  /// epoch ahead of the local mirror with no way to roll either side back;
  /// the reader is then *poisoned* — every later plan/execute throws
  /// std::logic_error immediately — and recovery is a fresh RemoteReader.
  /// Failures *before* that acknowledgement recover via reconnect + RESUME.
  RetrievalStats execute(const RetrievalPlan& p);
  RetrievalStats retrieve(const Request& req) { return execute(plan(req)); }

  const std::vector<T>& data() const { return reader_.data(); }
  const ProgressiveReader<T>& reader() const { return reader_; }
  RemoteArchive& archive() { return archive_; }

  /// Recovery cycles (reconnect + RESUME replay) performed so far.
  std::uint64_t recoveries() const { return recoveries_; }
  /// Operation attempts that failed with a recoverable error and were
  /// retried.
  std::uint64_t retries() const { return retries_; }

 private:
  /// Identity of a plan at the current epoch, for token lookup at execute.
  static std::string plan_fingerprint(const RetrievalPlan& p);
  /// Throws std::logic_error once a server/mirror divergence poisoned the
  /// reader (see execute()).
  void check_poisoned() const;
  /// Cross-check a PLAN_OK reservation against the local mirror's plan.
  static void check_plan_reply(const PlanReply& rep, const RetrievalPlan& p);
  /// Run `op` with the retry policy: recoverable failures (non-protocol
  /// WireError, wire-layer IntegrityError) trigger backoff + one recovery
  /// cycle, then retry; anything else — and the last exhausted attempt —
  /// propagates.
  template <typename F>
  auto with_recovery(F&& op) -> decltype(op());
  /// One recovery cycle: reconnect, RESUME the acknowledged history, drop
  /// now-dead plan tokens.
  void recover_connection();
  void backoff(int attempt);

  RemoteArchive archive_;
  ProgressiveReader<T> reader_;
  RetryPolicy policy_;
  Rng jitter_;
  std::unordered_map<std::string, std::uint64_t> tokens_;
  /// Acknowledged requests in execution order — what RESUME replays.
  std::vector<Request> history_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t retries_ = 0;
  bool poisoned_ = false;
};

extern template class RemoteReader<float>;
extern template class RemoteReader<double>;

}  // namespace ipcomp::net
