// Remote progressive retrieval: the client side of net/wire.hpp.
//
// RemoteReader<T> mirrors ProgressiveReader's plan/execute/retrieve lifecycle
// over a daemon connection.  The trick that keeps it byte-identical to a
// local reader: the client runs its *own* ProgressiveReader over a
// StagedSource primed from the OPEN reply (header bytes, segment table,
// open cost), so plan() prices locally with exactly the server's arithmetic;
// PLAN round-trips only to reserve a server-side token and cross-check the
// price.  EXECUTE streams the still-compressed segment payloads into the
// staging area and the local reader decodes them — so a refinement moves
// only the plan's bytes_new across the wire, never re-sending what the
// client already holds.
//
// Thread contract: externally-synchronized — one RemoteReader (and the
// RemoteArchive/connection under it) belongs to one client thread, exactly
// like the local reader it mirrors.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/progressive_reader.hpp"
#include "net/wire.hpp"
#include "serve/session.hpp"

namespace ipcomp::net {

/// SegmentSource primed over the wire: immutable index/header from OPEN,
/// payloads staged by EXECUTE and consumed by the local reader.  Charges its
/// ledger exactly like the server-side SessionSource (open cost at the first
/// header fetch, delivered payload bytes per batch), so budget-driven plans
/// price identically on both ends.
class StagedSource final : public SegmentSource {
 public:
  const Bytes& header() override {
    if (!header_charged_) {
      charge_bytes(open_cost_);
      count_read_call();
      header_charged_ = true;
    }
    return header_;
  }
  Bytes read_segment(SegmentId id) override;
  /// Serves previously staged payloads; throws std::runtime_error if the
  /// server did not deliver one of `ids` (protocol violation).
  std::vector<Bytes> read_many(std::span<const SegmentId> ids) override;
  bool has_segment(SegmentId id) const override {
    return sizes_.count(id.key(version_)) != 0;
  }
  std::size_t segment_size(SegmentId id) const override;
  std::vector<SegmentId> segment_ids() const override;
  std::uint32_t version() const override { return version_; }
  std::size_t total_size() const override { return total_size_; }
  /// Header + segment-table cost the server reported at OPEN (charged to
  /// this source's ledger on the first header fetch, like any local source).
  std::size_t open_cost() const { return open_cost_; }

 private:
  friend class RemoteArchive;

  void stage(std::uint64_t key, Bytes payload) {
    staged_[key] = std::move(payload);
  }

  Bytes header_;
  std::size_t open_cost_ = 0;
  bool header_charged_ = false;
  std::uint32_t version_ = 0;
  std::size_t total_size_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> sizes_;
  std::vector<std::uint64_t> order_;  // table order, for segment_ids()
  std::unordered_map<std::uint64_t, Bytes> staged_;
};

/// PLAN_OK payload: the server-side reservation for one plan.
struct PlanReply {
  std::uint64_t token = 0;
  std::uint64_t bytes_new = 0;
  double guaranteed_error = 0.0;
  std::uint64_t n_segments = 0;
  std::uint64_t epoch = 0;
};

/// EXECUTE_OK payload: the stats the server's session recorded.
struct ExecReply {
  std::uint64_t bytes_new = 0;
  std::uint64_t bytes_total = 0;
  double guaranteed_error = 0.0;
  double bitrate = 0.0;
};

/// One dialed connection with one archive OPENed on it.  Speaks raw frames;
/// RemoteReader<T> supplies the reader lifecycle on top.  Server ERROR
/// frames surface as typed exceptions: kQuotaExceeded -> QuotaExceeded,
/// kStalePlan/kUnknownToken -> std::logic_error, kBadRequest ->
/// std::invalid_argument, anything else -> RemoteError.
class RemoteArchive {
 public:
  /// Dial `spec` ("host:port" or "unix:/path"), HELLO, and OPEN `name`.
  RemoteArchive(const std::string& spec, const std::string& name,
                int timeout_ms = 30000);
  RemoteArchive(const RemoteArchive&) = delete;
  RemoteArchive& operator=(const RemoteArchive&) = delete;

  /// The wire-primed source the local mirror reader plugs into.
  StagedSource& source() { return src_; }

  PlanReply plan_remote(std::uint64_t epoch, const Request& req);
  /// Streams the token's segment payloads into source()'s staging area.
  ExecReply execute_remote(std::uint64_t token);
  ServeStats stat();
  /// CLOSE the archive and say goodbye; the connection drops.
  void close();

  /// Segment payload bytes received over the wire, total and for the most
  /// recent execute_remote (the "bytes on wire" half of the transfer-savings
  /// story; compare with RetrievalStats::bytes_new).
  std::uint64_t wire_payload_bytes() const { return wire_payload_bytes_; }
  std::uint64_t last_payload_bytes() const { return last_payload_bytes_; }

 private:
  /// Receive one frame, unwrap ERROR frames into typed exceptions, and
  /// insist on `expect`.
  Frame expect_reply(Op expect);

  FrameChannel ch_;
  std::uint32_t open_id_ = 0;
  StagedSource src_;
  std::uint64_t wire_payload_bytes_ = 0;
  std::uint64_t last_payload_bytes_ = 0;
};

/// Drop-in remote counterpart of ProgressiveReader<T>: same
/// plan/execute/retrieve surface, same stats, byte-identical reconstruction
/// for the same request sequence.  The reader config is pinned to defaults —
/// the server's pricing mirror uses defaults, and the two must agree for
/// plans to match.
template <typename T>
class RemoteReader {
 public:
  RemoteReader(const std::string& spec, const std::string& name,
               int timeout_ms = 30000)
      : archive_(spec, name, timeout_ms), reader_(archive_.source()) {}
  RemoteReader(const RemoteReader&) = delete;
  RemoteReader& operator=(const RemoteReader&) = delete;

  /// Price `req` locally (exact, no I/O beyond the PLAN round-trip) and
  /// reserve the matching server-side token.  Throws std::runtime_error if
  /// the server's price disagrees with the local mirror — protocol drift.
  RetrievalPlan plan(const Request& req);
  /// Pull the plan's segments over the wire and decode them locally.
  ///
  /// Failure after the server replied EXECUTE_OK (the local decode throws,
  /// or the accounting cross-check fails) leaves the server session one
  /// epoch ahead of the local mirror with no way to roll either side back;
  /// the reader is then *poisoned* — every later plan/execute throws
  /// std::logic_error immediately — and recovery is a fresh RemoteReader.
  RetrievalStats execute(const RetrievalPlan& p);
  RetrievalStats retrieve(const Request& req) { return execute(plan(req)); }

  const std::vector<T>& data() const { return reader_.data(); }
  const ProgressiveReader<T>& reader() const { return reader_; }
  RemoteArchive& archive() { return archive_; }

 private:
  /// Identity of a plan at the current epoch, for token lookup at execute.
  static std::string plan_fingerprint(const RetrievalPlan& p);
  /// Throws std::logic_error once a server/mirror divergence poisoned the
  /// reader (see execute()).
  void check_poisoned() const;

  RemoteArchive archive_;
  ProgressiveReader<T> reader_;
  std::unordered_map<std::string, std::uint64_t> tokens_;
  bool poisoned_ = false;
};

extern template class RemoteReader<float>;
extern template class RemoteReader<double>;

}  // namespace ipcomp::net
