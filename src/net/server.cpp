#include "net/server.hpp"

#include <array>
#include <chrono>
#include <map>

#include "core/header.hpp"
#include "serve/session.hpp"

namespace ipcomp::net {

/// Relaxed tallies sampled by stats(); same discipline as SourceStats.
struct Server::Counters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::array<std::atomic<std::uint64_t>, kRequestOpCount + 1> by_op{};
  std::atomic<std::uint64_t> wire_bytes_in{0};
  std::atomic<std::uint64_t> wire_bytes_out{0};
  std::atomic<std::uint64_t> payload_bytes_sent{0};
  std::atomic<std::uint64_t> errors_sent{0};
  std::atomic<std::uint64_t> quota_rejections{0};
  std::atomic<std::uint64_t> slow_client_evictions{0};
  std::atomic<std::uint64_t> faults_injected{0};
};

namespace {

/// Type-erased serve::Session so one connection handler can hold float and
/// double archives alike; the server only plans, fetches and acknowledges —
/// it never touches decoded values, so the element type stays behind this
/// interface.
class SessionAny {
 public:
  virtual ~SessionAny() = default;
  virtual RetrievalPlan plan(const Request& req) const = 0;
  virtual std::vector<Bytes> fetch_for_remote(const RetrievalPlan& p,
                                              RetrievalStats& out) = 0;
  virtual std::uint64_t epoch() const = 0;
  virtual std::uint64_t bytes_used() const = 0;
};

template <typename T>
class SessionOf final : public SessionAny {
 public:
  SessionOf(std::shared_ptr<ArchiveHandle> handle, std::uint64_t quota)
      : session_(std::move(handle), ReaderConfig{}, quota) {}
  RetrievalPlan plan(const Request& req) const override {
    return session_.plan(req);
  }
  std::vector<Bytes> fetch_for_remote(const RetrievalPlan& p,
                                      RetrievalStats& out) override {
    return session_.fetch_for_remote(p, out);
  }
  std::uint64_t epoch() const override { return session_.epoch(); }
  std::uint64_t bytes_used() const override { return session_.bytes_used(); }

 private:
  Session<T> session_;
};

std::unique_ptr<SessionAny> make_session(std::shared_ptr<ArchiveHandle> handle,
                                         std::uint64_t quota) {
  const Header h = Header::parse(handle->header_bytes());
  if (h.dtype == DataType::kFloat32) {
    return std::make_unique<SessionOf<float>>(std::move(handle), quota);
  }
  return std::make_unique<SessionOf<double>>(std::move(handle), quota);
}

/// How many un-executed plan tokens one (connection, archive) retains; all
/// tokens die on the next EXECUTE anyway (the epoch advances), so this only
/// bounds a client that plans forever without executing.
constexpr std::size_t kMaxTokens = 64;

struct OpenState {
  std::shared_ptr<ArchiveHandle> handle;
  std::unique_ptr<SessionAny> session;
  std::map<std::uint64_t, RetrievalPlan> tokens;
  std::uint64_t next_token = 1;
};

/// Registers a live connection's socket for forced shutdown during drain;
/// unregisters on scope exit.
class LiveSocketGuard {
 public:
  LiveSocketGuard(Mutex& mu, std::unordered_map<std::uint64_t, Socket*>& map,
                  std::uint64_t id, Socket* sock)
      : mu_(mu), map_(map), id_(id) {
    LockGuard lock(mu_);
    map_[id_] = sock;
  }
  ~LiveSocketGuard() {
    LockGuard lock(mu_);
    map_.erase(id_);
  }
  LiveSocketGuard(const LiveSocketGuard&) = delete;
  LiveSocketGuard& operator=(const LiveSocketGuard&) = delete;

 private:
  Mutex& mu_;
  std::unordered_map<std::uint64_t, Socket*>& map_;
  std::uint64_t id_;
};

}  // namespace

struct Server::ConnState {
  bool hello_done = false;
  std::uint32_t next_open_id = 1;
  std::map<std::uint32_t, OpenState> opens;
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      set_(cfg_.serve),
      counters_(std::make_unique<Counters>()) {}

Server::~Server() { stop(); }

void Server::export_file(const std::string& name, const std::string& path) {
  LockGuard lock(mu_);
  exports_[name] = Export{path, {}, false};
}

void Server::export_memory(const std::string& name, Bytes blob) {
  LockGuard lock(mu_);
  exports_[name] = Export{{}, std::move(blob), true};
}

void Server::start() {
  LockGuard lifecycle(lifecycle_mu_);
  if (running()) throw std::logic_error("server already running");
  listener_ = std::make_unique<Listener>(cfg_.listen);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const unsigned n = cfg_.workers == 0 ? 1 : cfg_.workers;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop(int grace_ms) {
  LockGuard lifecycle(lifecycle_mu_);
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // Grace window: in-flight connections notice the stop flag at their next
  // frame boundary and close themselves.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  while (counters_->connections_active.load(std::memory_order_relaxed) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Stragglers (idle peers holding the connection open) get a half-close,
  // which pops their handler out of recv immediately.
  {
    LockGuard lock(mu_);
    for (auto& [id, sock] : live_socks_) sock->shutdown_both();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  listener_->close();
  listener_.reset();
  running_.store(false, std::memory_order_release);
}

std::string Server::address() const {
  if (!listener_) throw std::logic_error("server not started");
  return listener_->address();
}

ServeStats Server::stats() const {
  ServeStats s;
  const Counters& c = *counters_;
  s.connections_accepted = c.connections_accepted.load(std::memory_order_relaxed);
  s.connections_active = c.connections_active.load(std::memory_order_relaxed);
  s.idle_reaped = c.idle_reaped.load(std::memory_order_relaxed);
  s.frames_in = c.frames_in.load(std::memory_order_relaxed);
  s.frames_out = c.frames_out.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.frames_by_opcode.size(); ++i) {
    s.frames_by_opcode[i] = c.by_op[i].load(std::memory_order_relaxed);
  }
  s.wire_bytes_in = c.wire_bytes_in.load(std::memory_order_relaxed);
  s.wire_bytes_out = c.wire_bytes_out.load(std::memory_order_relaxed);
  s.payload_bytes_sent = c.payload_bytes_sent.load(std::memory_order_relaxed);
  s.errors_sent = c.errors_sent.load(std::memory_order_relaxed);
  s.quota_rejections = c.quota_rejections.load(std::memory_order_relaxed);
  s.slow_client_evictions =
      c.slow_client_evictions.load(std::memory_order_relaxed);
  s.faults_injected = c.faults_injected.load(std::memory_order_relaxed);
  {
    LockGuard lock(mu_);
    for (const auto& [name, handle] : opened_) {
      const SourceStats ss = handle->source_stats();
      s.physical_bytes_read += ss.bytes_read;
      s.physical_read_calls += ss.read_calls;
    }
  }
  s.cache = set_.cache_stats();
  return s;
}

std::shared_ptr<ArchiveHandle> Server::open_export(const std::string& name) {
  LockGuard lock(mu_);
  auto opened = opened_.find(name);
  if (opened != opened_.end()) return opened->second;
  auto it = exports_.find(name);
  if (it == exports_.end()) {
    throw RemoteError(ErrCode::kUnknownArchive, "unknown archive: " + name, 0,
                      0);
  }
  // ArchiveSet::open_* serializes internally; holding mu_ across it also
  // keeps a racing OPEN of the same name from double-opening.
  std::shared_ptr<ArchiveHandle> handle =
      it->second.in_memory ? set_.open_memory(name, it->second.blob)
                           : set_.open_file(it->second.path);
  opened_.emplace(name, handle);
  return handle;
}

void Server::worker_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Socket> sock;
    try {
      sock = listener_->accept(200);
    } catch (const std::exception&) {
      break;  // listener closed under us (stop) or unrecoverable
    }
    if (!sock) continue;
    counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_->connections_active.fetch_add(1, std::memory_order_relaxed);
    // The decrement rides a scope guard and the handler runs inside a
    // catch-all: anything serve_connection leaks (bad_alloc building a reply,
    // an unexpected throw past the per-frame handling) must cost one
    // connection, not std::terminate the daemon or wedge the active count.
    struct ActiveGuard {
      std::atomic<std::uint64_t>& n;
      ~ActiveGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
    } active{counters_->connections_active};
    try {
      serve_connection(std::move(*sock));
    } catch (const std::exception&) {
      // Connection dropped; the socket closes with the Socket RAII owner.
    }
  }
}

void Server::serve_connection(Socket sock) {
  // Receive waits bound idle reaping; the send deadline bounds how long a
  // non-draining client may wedge this handler mid-reply.
  sock.set_timeouts(cfg_.idle_timeout_ms, cfg_.write_deadline_ms);
  FrameChannel ch(std::move(sock), kMaxRequestFrameBytes);
  std::uint64_t conn_id = 0;
  {
    LockGuard lock(mu_);
    conn_id = next_conn_id_++;
  }
  std::shared_ptr<FaultPlan> faults;
  if (cfg_.fault_seed != 0) {
    // Send-side only: injected faults must never corrupt what the server
    // *reads* (requests stay trustworthy); clients exercise their recovery
    // path against resets, torn writes and stalls.
    FaultPlan::Profile profile;
    profile.reset_p = 0.002;
    profile.torn_p = 0.05;
    profile.eintr_p = 0.02;
    profile.delay_p = 0.01;
    profile.on_reads = false;
    profile.on_writes = true;
    faults = FaultPlan::random(cfg_.fault_seed ^ conn_id, profile);
    ch.set_fault_injector(faults);
  }
  LiveSocketGuard guard(mu_, live_socks_, conn_id, &ch.socket());
  ConnState st;
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    std::optional<Frame> f;
    try {
      f = ch.recv();
    } catch (const WireError& e) {
      if (e.kind() == WireError::Kind::kTimeout) {
        counters_->idle_reaped.fetch_add(1, std::memory_order_relaxed);
      } else if (e.kind() == WireError::Kind::kProtocol) {
        send_error(ch, ErrCode::kBadFrame, e.what());
      }
      break;  // mid-frame EOF / IO errors close silently
    }
    if (!f) break;  // clean disconnect
    counters_->frames_in.fetch_add(1, std::memory_order_relaxed);
    counters_->by_op[op_slot(f->op)].fetch_add(1, std::memory_order_relaxed);
    try {
      alive = handle_frame(ch, st, *f);
    } catch (const WireError& e) {
      if (e.kind() == WireError::Kind::kTimeout) {
        // The reply path timed out: a slow client held the socket full past
        // the write deadline.  Evict it.
        counters_->slow_client_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      break;  // peer vanished (or stalled) while we were replying
    } catch (const std::exception& e) {
      // Body parse failures (strict ByteReader) and anything else that
      // escaped the per-op handling: report and drop the connection.
      send_error(ch, ErrCode::kBadFrame, e.what());
      break;
    }
  }
  counters_->wire_bytes_in.fetch_add(ch.bytes_in(), std::memory_order_relaxed);
  counters_->wire_bytes_out.fetch_add(ch.bytes_out(),
                                      std::memory_order_relaxed);
  if (faults) {
    counters_->faults_injected.fetch_add(faults->injected(),
                                         std::memory_order_relaxed);
  }
}

void Server::send_frame(FrameChannel& ch, Op op, const ByteWriter& w) {
  ch.send(op, w);
  counters_->frames_out.fetch_add(1, std::memory_order_relaxed);
}

void Server::send_error(FrameChannel& ch, ErrCode code,
                        const std::string& message, std::uint64_t a,
                        std::uint64_t b) {
  ByteWriter w;
  write_error(w, code, message, a, b);
  try {
    ch.send(Op::kError, w);
    counters_->frames_out.fetch_add(1, std::memory_order_relaxed);
  } catch (const WireError&) {
    // Reporting a rejection to a vanished peer is not itself an error.
  }
  counters_->errors_sent.fetch_add(1, std::memory_order_relaxed);
}

bool Server::handle_frame(FrameChannel& ch, ConnState& st, const Frame& f) {
  ByteReader r({f.body.data(), f.body.size()});
  const auto require_end = [&r] {
    if (!r.at_end()) throw std::runtime_error("wire: trailing bytes in frame");
  };

  if (!st.hello_done && !f.is(Op::kHello)) {
    send_error(ch, ErrCode::kBadSequence, "first frame must be HELLO");
    return false;
  }

  switch (static_cast<Op>(f.op)) {
    case Op::kHello: {
      const std::uint32_t version = r.u32();
      require_end();
      if (version != kWireVersion) {
        send_error(ch, ErrCode::kBadVersion, "unsupported protocol version",
                   kWireVersion, version);
        return false;
      }
      st.hello_done = true;
      ByteWriter w;
      w.u32(kWireVersion);
      send_frame(ch, Op::kHelloOk, w);
      return true;
    }

    case Op::kOpen: {
      const std::string name = r.string();
      require_end();
      if (st.opens.size() >= cfg_.max_opens_per_connection) {
        send_error(ch, ErrCode::kTooManyArchives,
                   "per-connection open limit reached",
                   cfg_.max_opens_per_connection);
        return true;
      }
      OpenState os;
      try {
        os.handle = open_export(name);
        os.session = make_session(os.handle, cfg_.session_quota);
      } catch (const RemoteError& e) {
        send_error(ch, e.code(), e.what(), e.a(), e.b());
        return true;
      } catch (const std::exception& e) {
        send_error(ch, ErrCode::kInternal, e.what());
        return true;
      }
      const std::vector<SegmentId> ids = os.handle->segment_ids();
      // Reject un-streamable archives here, while rejection is still a typed
      // ERROR: once EXECUTE starts streaming SEGMENT frames the session has
      // already been charged and an oversized payload could only drop the
      // connection mid-reply.
      for (const SegmentId& id : ids) {
        const std::size_t size = os.handle->segment_size(id);
        if (size > kMaxSegmentPayloadBytes) {
          send_error(ch, ErrCode::kInternal,
                     "archive segment exceeds the wire frame cap", size,
                     kMaxSegmentPayloadBytes);
          return true;
        }
      }
      const std::uint32_t open_id = st.next_open_id++;
      ByteWriter w;
      w.u32(open_id);
      w.u32(os.handle->version());
      w.varint(os.handle->total_size());
      w.varint(os.handle->open_cost());
      const Bytes& header = os.handle->header_bytes();
      w.varint(header.size());
      w.bytes({header.data(), header.size()});
      w.varint(ids.size());
      // v4 archives carry a checksum column (all-or-nothing per archive);
      // the client verifies every SEGMENT payload against it.
      const bool has_checksums =
          !ids.empty() && os.handle->segment_checksum(ids.front()).has_value();
      w.u8(has_checksums ? 1 : 0);
      for (const SegmentId& id : ids) {
        w.u64(id.key(os.handle->version()));
        w.varint(os.handle->segment_size(id));
        if (has_checksums) w.u64(*os.handle->segment_checksum(id));
      }
      st.opens.emplace(open_id, std::move(os));
      send_frame(ch, Op::kOpenOk, w);
      return true;
    }

    case Op::kPlan: {
      const std::uint32_t open_id = r.u32();
      const std::uint64_t epoch = r.u64();
      const Request req = read_request(r);
      require_end();
      auto it = st.opens.find(open_id);
      if (it == st.opens.end()) {
        send_error(ch, ErrCode::kBadSequence, "unknown open id", open_id);
        return true;
      }
      OpenState& os = it->second;
      if (epoch != os.session->epoch()) {
        send_error(ch, ErrCode::kStalePlan,
                   "client epoch does not match the session",
                   os.session->epoch(), epoch);
        return true;
      }
      RetrievalPlan plan;
      try {
        plan = os.session->plan(req);
      } catch (const std::exception& e) {
        send_error(ch, ErrCode::kBadRequest, e.what());
        return true;
      }
      const std::uint64_t token = os.next_token++;
      if (os.tokens.size() >= kMaxTokens) os.tokens.erase(os.tokens.begin());
      ByteWriter w;
      w.varint(token);
      w.varint(plan.bytes_new);
      w.f64(plan.guaranteed_error);
      w.varint(plan.segments.size());
      w.varint(plan.epoch);
      os.tokens.emplace(token, std::move(plan));
      send_frame(ch, Op::kPlanOk, w);
      return true;
    }

    case Op::kExecute: {
      const std::uint32_t open_id = r.u32();
      const std::uint64_t token = r.varint();
      require_end();
      auto it = st.opens.find(open_id);
      if (it == st.opens.end()) {
        send_error(ch, ErrCode::kBadSequence, "unknown open id", open_id);
        return true;
      }
      OpenState& os = it->second;
      auto tok = os.tokens.find(token);
      if (tok == os.tokens.end()) {
        send_error(ch, ErrCode::kUnknownToken,
                   "unknown or expired plan token", token);
        return true;
      }
      const RetrievalPlan& plan = tok->second;
      RetrievalStats stats;
      std::vector<Bytes> payloads;
      try {
        payloads = os.session->fetch_for_remote(plan, stats);
      } catch (const QuotaExceeded& e) {
        counters_->quota_rejections.fetch_add(1, std::memory_order_relaxed);
        send_error(ch, ErrCode::kQuotaExceeded, e.what(), e.needed(),
                   e.remaining());
        return true;
      } catch (const std::logic_error& e) {
        send_error(ch, ErrCode::kStalePlan, e.what());
        return true;
      } catch (const std::exception& e) {
        send_error(ch, ErrCode::kInternal, e.what());
        return true;
      }
      const std::uint32_t ver = os.handle->version();
      for (std::size_t i = 0; i < plan.segments.size(); ++i) {
        ByteWriter w;
        w.u64(plan.segments[i].key(ver));
        w.bytes({payloads[i].data(), payloads[i].size()});
        send_frame(ch, Op::kSegment, w);
        counters_->payload_bytes_sent.fetch_add(payloads[i].size(),
                                                std::memory_order_relaxed);
      }
      ByteWriter w;
      w.varint(stats.bytes_new);
      w.varint(stats.bytes_total);
      w.f64(stats.guaranteed_error);
      w.f64(stats.bitrate);
      // The session advanced: every outstanding token priced the old state.
      os.tokens.clear();
      send_frame(ch, Op::kExecuteOk, w);
      return true;
    }

    case Op::kResume: {
      const std::uint32_t open_id = r.u32();
      const std::uint64_t n = r.varint();
      if (n > kMaxResumeRequests) {
        send_error(ch, ErrCode::kBadRequest,
                   "resume history exceeds the protocol cap", n,
                   kMaxResumeRequests);
        return true;
      }
      std::vector<Request> history;
      history.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) history.push_back(read_request(r));
      require_end();
      auto it = st.opens.find(open_id);
      if (it == st.opens.end()) {
        send_error(ch, ErrCode::kBadSequence, "unknown open id", open_id);
        return true;
      }
      OpenState& os = it->second;
      // Rebuild the session from scratch and replay the client's
      // acknowledged history through the exact plan/fetch path the original
      // requests took: residency, epoch and the quota ledger land where the
      // dead connection left them, and the shared cache makes the re-fetch
      // cheap.  Payloads are discarded — the client already holds them.
      std::unique_ptr<SessionAny> fresh;
      try {
        fresh = make_session(os.handle, cfg_.session_quota);
        for (const Request& req : history) {
          const RetrievalPlan plan = fresh->plan(req);
          RetrievalStats ignored;
          fresh->fetch_for_remote(plan, ignored);
        }
      } catch (const QuotaExceeded& e) {
        counters_->quota_rejections.fetch_add(1, std::memory_order_relaxed);
        send_error(ch, ErrCode::kQuotaExceeded, e.what(), e.needed(),
                   e.remaining());
        return true;
      } catch (const std::logic_error& e) {
        send_error(ch, ErrCode::kStalePlan, e.what());
        return true;
      } catch (const std::exception& e) {
        send_error(ch, ErrCode::kBadRequest, e.what());
        return true;
      }
      os.session = std::move(fresh);
      os.tokens.clear();  // reservations priced the replaced session
      ByteWriter w;
      w.varint(os.session->epoch());
      w.varint(os.session->bytes_used());
      send_frame(ch, Op::kResumeOk, w);
      return true;
    }

    case Op::kStat: {
      require_end();
      ByteWriter w;
      write_serve_stats(w, stats());
      send_frame(ch, Op::kStatOk, w);
      return true;
    }

    case Op::kClose: {
      const std::uint32_t open_id = r.u32();
      require_end();
      if (st.opens.erase(open_id) == 0) {
        send_error(ch, ErrCode::kBadSequence, "unknown open id", open_id);
        return true;
      }
      send_frame(ch, Op::kCloseOk, ByteWriter{});
      return true;
    }

    default:
      send_error(ch, ErrCode::kUnknownOpcode,
                 "unknown opcode " + std::to_string(f.op), f.op);
      return true;
  }
}

}  // namespace ipcomp::net
