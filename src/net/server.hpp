// Progressive-retrieval daemon: the server side of net/wire.hpp.
//
// A Server listens on TCP or a Unix-domain socket and speaks the framed
// protocol with any number of clients over a pool of acceptor/handler
// threads.  Each connection owns per-archive serve::Sessions over the shared
// ArchiveSet tier, so everything the in-process serving layer provides —
// plan-admission byte quotas, the cross-archive segment LRU cache, pooled
// deduplicated physical reads — applies to remote clients identically.  The
// server never decodes: EXECUTE fetches the planned segments through the
// session's cache-first source, streams the still-compressed payloads to the
// client, and acknowledges the plan so the session's residency (and
// therefore the *next* plan's pricing) advances exactly as if the client
// were local.
//
// Archives are exported by name (export_file / export_memory) before
// start(); OPEN resolves only exported names — a remote peer can never name
// an arbitrary server-side path.  Per-connection receive timeouts reap idle
// connections; stop() drains gracefully (stop accepting, give in-flight
// frames a grace window, then shut the stragglers down).
//
// Thread contract: internally-synchronized.  export_*/start/stop/stats may
// be called from any thread; handler threads only touch the internally-
// synchronized shared tier plus their own connection state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "serve/archive_set.hpp"
#include "util/sync.hpp"

namespace ipcomp::net {

struct ServerConfig {
  /// "host:port" (port 0 = ephemeral, see Server::address()) or "unix:/path".
  std::string listen = "127.0.0.1:0";
  /// Connection handler threads == max concurrent connections (each handler
  /// owns one connection at a time; excess connections queue in the kernel
  /// backlog).
  unsigned workers = 4;
  /// Per-connection receive timeout; an idle connection is reaped when it
  /// expires.  0 disables.
  int idle_timeout_ms = 30000;
  /// Per-connection send deadline: a client that stops draining its socket
  /// for this long mid-reply is evicted (counted in
  /// ServeStats::slow_client_evictions) instead of wedging a handler
  /// thread.  0 disables.
  int write_deadline_ms = 10000;
  /// Nonzero: every connection's wire I/O runs under a seeded random
  /// FaultPlan (send-side resets, torn writes, EINTR, delay spikes — never
  /// payload corruption), deterministically derived from seed ^ connection
  /// id.  Soak-testing knob (`ipc serve --fault-seed`); injected fault
  /// counts surface as ServeStats::faults_injected.
  std::uint64_t fault_seed = 0;
  /// Byte quota for each (connection, archive) session; 0 = unlimited.
  std::uint64_t session_quota = 0;
  /// OPENs one connection may hold at once.
  std::size_t max_opens_per_connection = 8;
  /// Shared-tier sizing.  The daemon maps archives by default (MmapSource
  /// falls back to FileSource on empty/over-cap files).
  ServeOptions serve = {.use_mmap = true};
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Export the archive file at `path` under `name` (what clients OPEN).
  /// The file is opened lazily, on the first OPEN that names it.
  void export_file(const std::string& name, const std::string& path)
      IPCOMP_EXCLUDES(mu_);
  /// Export an in-memory archive blob under `name`.
  void export_memory(const std::string& name, Bytes blob)
      IPCOMP_EXCLUDES(mu_);

  /// Bind the listen address and spawn the handler pool.  Throws on bind
  /// failure (address in use, bad spec, ...).
  void start() IPCOMP_EXCLUDES(lifecycle_mu_);
  /// Graceful drain: stop accepting, wait up to `grace_ms` for in-flight
  /// connections to finish, then force-close the rest and join the pool.
  /// Idempotent; concurrent callers (e.g. a user stop racing the destructor)
  /// serialize on the lifecycle lock and only one performs the drain/join.
  void stop(int grace_ms = 1000) IPCOMP_EXCLUDES(lifecycle_mu_, mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Dialable address — with TCP port 0 this is the port actually bound.
  /// Valid after start().
  std::string address() const;

  /// One server-wide snapshot: connection/frame/byte counters plus the
  /// shared tier's physical-read and cache stats (what STAT returns).
  ServeStats stats() const IPCOMP_EXCLUDES(mu_);

 private:
  struct Export {
    std::string path;  // file exports
    Bytes blob;        // memory exports
    bool in_memory = false;
  };
  struct Counters;
  struct ConnState;

  void worker_loop();
  void serve_connection(Socket sock);
  bool handle_frame(FrameChannel& ch, ConnState& st, const Frame& f);
  /// Resolve an exported name to an opened handle (opening on first use).
  /// Throws RemoteError(kUnknownArchive) for unknown names.
  std::shared_ptr<ArchiveHandle> open_export(const std::string& name)
      IPCOMP_EXCLUDES(mu_);

  void send_frame(FrameChannel& ch, Op op, const ByteWriter& w);
  void send_error(FrameChannel& ch, ErrCode code, const std::string& message,
                  std::uint64_t a = 0, std::uint64_t b = 0);

  ServerConfig cfg_;
  ArchiveSet set_;
  /// Serializes start/stop so racing callers cannot both join/clear the same
  /// worker threads.  listener_ and workers_ are only mutated under it;
  /// handler threads read listener_ without it (start happens-before the
  /// spawn, stop joins them before tearing it down).  Never taken by handler
  /// threads, so stop() may hold it across the join without deadlock.
  mutable Mutex lifecycle_mu_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::unique_ptr<Counters> counters_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Export> exports_ IPCOMP_GUARDED_BY(mu_);
  /// Opened handles by export name (ArchiveSet keys file handles by path;
  /// the export namespace is the server's).
  std::unordered_map<std::string, std::shared_ptr<ArchiveHandle>> opened_
      IPCOMP_GUARDED_BY(mu_);
  /// Sockets of live connections, for forced shutdown during drain.
  std::unordered_map<std::uint64_t, Socket*> live_socks_ IPCOMP_GUARDED_BY(mu_);
  std::uint64_t next_conn_id_ IPCOMP_GUARDED_BY(mu_) = 1;
};

}  // namespace ipcomp::net
