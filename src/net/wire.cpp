#include "net/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>

namespace ipcomp::net {

namespace {

[[noreturn]] void throw_errno(WireError::Kind kind, const std::string& what) {
  throw WireError(kind, what, errno, "");
}

/// Peer address of a connected socket for error context: "ip:port" for
/// AF_INET, "unix:<path>" (often just "unix:" — client sockets are unnamed)
/// for AF_UNIX, "" when the socket has no peer.
std::string peer_name(const Socket& sock) {
  if (!sock.valid()) return "";
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getpeername(sock.fd(), reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return "";
  }
  if (ss.ss_family == AF_INET) {
    const auto* in = reinterpret_cast<const sockaddr_in*>(&ss);
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &in->sin_addr, ip, sizeof ip);
    return std::string(ip) + ":" + std::to_string(ntohs(in->sin_port));
  }
  if (ss.ss_family == AF_UNIX) {
    const auto* un = reinterpret_cast<const sockaddr_un*>(&ss);
    // sun_path may be empty (unnamed) and is not guaranteed terminated.
    const std::size_t cap = len > offsetof(sockaddr_un, sun_path)
                                ? len - offsetof(sockaddr_un, sun_path)
                                : 0;
    return "unix:" + std::string(un->sun_path,
                                 ::strnlen(un->sun_path, cap));
  }
  return "";
}

std::string compose_wire_message(const std::string& op, int sys_errno,
                                 const std::string& peer) {
  std::string out = op;
  if (!peer.empty()) out += " (peer " + peer + ")";
  if (sys_errno != 0) {
    out += ": ";
    out += std::strerror(sys_errno);
  }
  return out;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_inet_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only (plus the "localhost" convenience): the daemon is not
  // in the name-resolution business, and a strict parse cannot block on DNS.
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

WireError::WireError(Kind kind, const std::string& op, int sys_errno,
                     const std::string& peer)
    : std::runtime_error(compose_wire_message(op, sys_errno, peer)),
      kind_(kind),
      op_(op),
      errno_(sys_errno),
      peer_(peer) {}

Address Address::parse(const std::string& spec) {
  Address a;
  if (spec.rfind("unix:", 0) == 0) {
    a.unix_domain = true;
    a.host_or_path = spec.substr(5);
    if (a.host_or_path.empty()) {
      throw std::invalid_argument("empty unix socket path in: " + spec);
    }
    return a;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw std::invalid_argument(
        "address must be host:port or unix:/path, got: " + spec);
  }
  a.host_or_path = spec.substr(0, colon);
  unsigned long port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      throw std::invalid_argument("bad port in address: " + spec);
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) throw std::invalid_argument("port out of range: " + spec);
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

std::string Address::to_string() const {
  return unix_domain ? "unix:" + host_or_path
                     : host_or_path + ":" + std::to_string(port);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_timeouts(int recv_ms, int send_ms) {
  auto set = [&](int opt, int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<decltype(tv.tv_usec)>((ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, opt, &tv, sizeof tv);
  };
  set(SO_RCVTIMEO, recv_ms);
  set(SO_SNDTIMEO, send_ms);
}

Socket dial(const std::string& spec) {
  const Address addr = Address::parse(spec);
  Socket s(::socket(addr.unix_domain ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno(WireError::Kind::kIo, "socket");
  int rc = 0;
  if (addr.unix_domain) {
    const sockaddr_un sa = make_unix_addr(addr.host_or_path);
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  } else {
    const sockaddr_in sa = make_inet_addr(addr.host_or_path, addr.port);
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  }
  if (rc != 0) throw_errno(WireError::Kind::kIo, "connect to " + spec);
  return s;
}

Listener::Listener(const std::string& spec, int backlog)
    : addr_(Address::parse(spec)) {
  fd_ = Socket(::socket(addr_.unix_domain ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno(WireError::Kind::kIo, "socket");
  int rc = 0;
  if (addr_.unix_domain) {
    const sockaddr_un sa = make_unix_addr(addr_.host_or_path);
    rc = ::bind(fd_.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  } else {
    const int one = 1;
    ::setsockopt(fd_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in sa = make_inet_addr(addr_.host_or_path, addr_.port);
    rc = ::bind(fd_.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  }
  if (rc != 0) throw_errno(WireError::Kind::kIo, "bind " + spec);
  if (::listen(fd_.fd(), backlog) != 0) {
    throw_errno(WireError::Kind::kIo, "listen " + spec);
  }
  // Non-blocking accepts are load-bearing: many acceptor threads poll this
  // one fd, and a readable listener wakes them all.  Only one accept wins;
  // with a blocking fd the losers would park inside accept(2), never
  // re-check their stop flag, and hang Server::stop at join.  (The same
  // applies single-threaded when the pending connection resets between poll
  // and accept.)  Accepted connections do NOT inherit O_NONBLOCK.
  const int flags = ::fcntl(fd_.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno(WireError::Kind::kIo, "fcntl O_NONBLOCK " + spec);
  }
  if (!addr_.unix_domain) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throw_errno(WireError::Kind::kIo, "getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  }
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_.valid()) {
    fd_.close();
    // The daemon owns its socket file; remove it so the next bind succeeds.
    if (addr_.unix_domain) ::unlink(addr_.host_or_path.c_str());
  }
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_.fd();
  pfd.events = POLLIN;
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n == 0) return std::nullopt;
  if (n < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno(WireError::Kind::kIo, "poll");
  }
  Socket s(::accept(fd_.fd(), nullptr, nullptr));
  if (!s.valid()) {
    // The listener is non-blocking, so losing the accept race to another
    // acceptor thread (EAGAIN), a connection that reset between poll and
    // accept (ECONNABORTED), or a signal are all just timeouts; the caller
    // re-checks its stop flag and polls again.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return std::nullopt;
    }
    throw_errno(WireError::Kind::kIo, "accept");
  }
  return s;
}

std::string Listener::address() const {
  Address a = addr_;
  if (!a.unix_domain) a.port = bound_port_;
  return a.to_string();
}

FrameChannel::FrameChannel(Socket sock, std::size_t max_frame)
    : sock_(std::move(sock)), max_frame_(max_frame), peer_(peer_name(sock_)) {}

void FrameChannel::send(Op op, std::span<const std::uint8_t> body) {
  if (body.size() + 1 > kMaxFrameBytes) {
    throw WireError(WireError::Kind::kProtocol, "frame too large to send");
  }
  ByteWriter head;
  head.u32(static_cast<std::uint32_t>(body.size() + 1));
  head.u8(static_cast<std::uint8_t>(op));
  auto send_all = [&](const std::uint8_t* data, std::size_t len) {
    while (len > 0) {
      std::size_t want = len;
      if (faults_) {
        if (faults_->drop(FaultOp::kWrite)) {
          sock_.shutdown_both();
          throw WireError(WireError::Kind::kIo, "send (injected reset)",
                          ECONNRESET, peer_);
        }
        want = faults_->clamp(FaultOp::kWrite, len);
        if (want == 0) continue;  // injected EINTR: retry like the real one
      }
      const ssize_t n = ::send(sock_.fd(), data, want, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          throw WireError(WireError::Kind::kTimeout, "send timed out", errno,
                          peer_);
        }
        throw WireError(WireError::Kind::kIo, "send", errno, peer_);
      }
      data += n;
      len -= static_cast<std::size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
    }
  };
  send_all(head.buffer().data(), head.buffer().size());
  send_all(body.data(), body.size());
}

std::optional<Frame> FrameChannel::recv() {
  // `eof_ok` is true only at the frame boundary: EOF there is a clean
  // disconnect, EOF anywhere later is a truncated frame.
  auto recv_all = [&](std::uint8_t* data, std::size_t len, bool eof_ok) {
    std::size_t got = 0;
    while (got < len) {
      std::size_t want = len - got;
      if (faults_) {
        if (faults_->drop(FaultOp::kRead)) {
          sock_.shutdown_both();
          throw WireError(WireError::Kind::kClosed, "recv (injected reset)",
                          ECONNRESET, peer_);
        }
        want = faults_->clamp(FaultOp::kRead, want);
        if (want == 0) continue;  // injected EINTR: retry like the real one
      }
      const ssize_t n = ::recv(sock_.fd(), data + got, want, 0);
      if (n == 0) {
        if (eof_ok && got == 0) return false;
        throw WireError(WireError::Kind::kClosed, "recv: peer closed mid-frame",
                        0, peer_);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          throw WireError(WireError::Kind::kTimeout, "recv timed out", errno,
                          peer_);
        }
        throw WireError(WireError::Kind::kIo, "recv", errno, peer_);
      }
      if (faults_) {
        faults_->corrupt(FaultOp::kRead, data + got,
                         static_cast<std::size_t>(n));
      }
      got += static_cast<std::size_t>(n);
      bytes_in_ += static_cast<std::uint64_t>(n);
    }
    return true;
  };

  std::uint8_t head[4];
  if (!recv_all(head, sizeof head, /*eof_ok=*/true)) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                            static_cast<std::uint32_t>(head[1]) << 8 |
                            static_cast<std::uint32_t>(head[2]) << 16 |
                            static_cast<std::uint32_t>(head[3]) << 24;
  // A frame is at least its opcode byte; the cap keeps a forged length from
  // turning into a giant allocation + a long blocking read.
  if (len == 0 || len > max_frame_) {
    throw WireError(WireError::Kind::kProtocol,
                    "bad frame length " + std::to_string(len));
  }
  Frame f;
  Bytes buf(len);
  recv_all(buf.data(), buf.size(), /*eof_ok=*/false);
  f.op = buf[0];
  f.body.assign(buf.begin() + 1, buf.end());
  return f;
}

// ---- body serialization ---------------------------------------------------

namespace {
// Request target tags on the wire.
constexpr std::uint8_t kTargetFull = 0;
constexpr std::uint8_t kTargetErrorBound = 1;
constexpr std::uint8_t kTargetByteBudget = 2;
constexpr std::uint8_t kTargetBitrate = 3;
}  // namespace

void write_request(ByteWriter& w, const Request& req) {
  if (std::holds_alternative<Request::Full>(req.target)) {
    w.u8(kTargetFull);
  } else if (const auto* eb = std::get_if<Request::ErrorBound>(&req.target)) {
    w.u8(kTargetErrorBound);
    w.f64(eb->target);
  } else if (const auto* bb = std::get_if<Request::ByteBudget>(&req.target)) {
    w.u8(kTargetByteBudget);
    w.varint(bb->budget);
  } else {
    w.u8(kTargetBitrate);
    w.f64(std::get<Request::Bitrate>(req.target).bits_per_value);
  }
  w.u8(req.region.has_value() ? 1 : 0);
  if (req.region) {
    for (std::size_t i = 0; i < kMaxRank; ++i) w.varint(req.region->lo[i]);
    for (std::size_t i = 0; i < kMaxRank; ++i) w.varint(req.region->hi[i]);
  }
}

Request read_request(ByteReader& r) {
  Request req;
  switch (r.u8()) {
    case kTargetFull:
      req.target = Request::Full{};
      break;
    case kTargetErrorBound:
      req.target = Request::ErrorBound{r.f64()};
      break;
    case kTargetByteBudget:
      req.target = Request::ByteBudget{r.varint()};
      break;
    case kTargetBitrate:
      req.target = Request::Bitrate{r.f64()};
      break;
    default:
      throw std::runtime_error("wire: unknown request target tag");
  }
  switch (r.u8()) {
    case 0:
      break;
    case 1: {
      RegionBox box;
      for (std::size_t i = 0; i < kMaxRank; ++i) box.lo[i] = r.varint();
      for (std::size_t i = 0; i < kMaxRank; ++i) box.hi[i] = r.varint();
      req.region = box;
      break;
    }
    default:
      throw std::runtime_error("wire: bad region flag");
  }
  return req;
}

void write_serve_stats(ByteWriter& w, const ServeStats& s) {
  w.varint(s.connections_accepted);
  w.varint(s.connections_active);
  w.varint(s.idle_reaped);
  w.varint(s.frames_in);
  w.varint(s.frames_out);
  w.varint(s.frames_by_opcode.size());
  for (std::uint64_t v : s.frames_by_opcode) w.varint(v);
  w.varint(s.wire_bytes_in);
  w.varint(s.wire_bytes_out);
  w.varint(s.payload_bytes_sent);
  w.varint(s.errors_sent);
  w.varint(s.quota_rejections);
  w.varint(s.physical_bytes_read);
  w.varint(s.physical_read_calls);
  w.varint(s.cache.hits);
  w.varint(s.cache.misses);
  w.varint(s.cache.evictions);
  w.varint(s.cache.resident_bytes);
  w.varint(s.cache.capacity_bytes);
  w.varint(s.cache.entries);
  w.varint(s.slow_client_evictions);
  w.varint(s.faults_injected);
}

ServeStats read_serve_stats(ByteReader& r) {
  ServeStats s;
  s.connections_accepted = r.varint();
  s.connections_active = r.varint();
  s.idle_reaped = r.varint();
  s.frames_in = r.varint();
  s.frames_out = r.varint();
  const std::uint64_t n_ops = r.varint();
  if (n_ops > 64) throw std::runtime_error("wire: absurd opcode-count table");
  s.frames_by_opcode.assign(n_ops, 0);
  for (std::uint64_t& v : s.frames_by_opcode) v = r.varint();
  s.frames_by_opcode.resize(kRequestOpCount + 1, 0);
  s.wire_bytes_in = r.varint();
  s.wire_bytes_out = r.varint();
  s.payload_bytes_sent = r.varint();
  s.errors_sent = r.varint();
  s.quota_rejections = r.varint();
  s.physical_bytes_read = r.varint();
  s.physical_read_calls = r.varint();
  s.cache.hits = r.varint();
  s.cache.misses = r.varint();
  s.cache.evictions = r.varint();
  s.cache.resident_bytes = r.varint();
  s.cache.capacity_bytes = r.varint();
  s.cache.entries = r.varint();
  s.slow_client_evictions = r.varint();
  s.faults_injected = r.varint();
  return s;
}

void write_error(ByteWriter& w, ErrCode code, const std::string& message,
                 std::uint64_t a, std::uint64_t b) {
  w.u16(static_cast<std::uint16_t>(code));
  w.string(message);
  w.varint(a);
  w.varint(b);
}

RemoteError read_error(ByteReader& r) {
  const auto code = static_cast<ErrCode>(r.u16());
  std::string message = r.string();
  const std::uint64_t a = r.varint();
  const std::uint64_t b = r.varint();
  return {code, message, a, b};
}

}  // namespace ipcomp::net
