// Wire protocol for the progressive-retrieval daemon.
//
// Frames are length-prefixed binary: `u32 length | u8 opcode | body`, where
// `length` counts the opcode byte plus the body, little-endian like every
// archive integer.  Bodies are built on io/bytes.hpp — the same varint
// writers/readers the archive container uses — so forged frames meet the
// same strict rejection discipline as forged archives: capped lengths,
// overflow-safe varints, exact-consumption body parses, unknown-opcode
// errors.  Nothing on either side of the connection trusts the peer.
//
// Conversation lifecycle (client frames -> server replies):
//   HELLO(version)        -> HELLO_OK(version)      must be the first frame
//   OPEN(name)            -> OPEN_OK(open_id, archive version/size/open
//                            cost, header bytes, segment table)
//   PLAN(open_id, epoch,  -> PLAN_OK(token, bytes_new, guaranteed_error,
//        Request)            n_segments, epoch)
//   EXECUTE(open_id,      -> SEGMENT(key, payload) ... per planned segment,
//           token)           then EXECUTE_OK(stats)
//   RESUME(open_id, n,    -> RESUME_OK(epoch, bytes_used)  replays a prior
//          Request x n)      session's executed requests against a fresh
//                            session WITHOUT streaming payloads — the
//                            reconnect path of a self-healing client that
//                            still holds the decoded state locally
//   STAT()                -> STAT_OK(ServeStats)
//   CLOSE(open_id)        -> CLOSE_OK()
//   anything invalid      -> ERROR(code, message, a, b)
//
// The transport is TCP ("host:port") or a Unix-domain socket ("unix:/path").
// Socket/Listener/FrameChannel are thin RAII wrappers over POSIX sockets —
// the only place in the tree allowed to touch them (scripts/check.sh
// confines socket headers to src/net/).
//
// Thread contract: externally-synchronized — one Socket/FrameChannel belongs
// to one connection handler or one client.  Listener::accept may be called
// from many acceptor threads concurrently (accept(2) is atomic per
// connection).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/request.hpp"
#include "io/bytes.hpp"
#include "serve/cache.hpp"
#include "util/fault.hpp"

namespace ipcomp::net {

/// Protocol version exchanged in HELLO; bumped on any incompatible change.
/// v2: OPEN_OK gained the segment-checksum column, RESUME was added, and
/// STAT_OK grew the fault-tolerance counters.
inline constexpr std::uint32_t kWireVersion = 2;

/// Hard cap on a frame a *client* accepts: segment payloads ride in single
/// frames, so this bounds the largest single segment (256 MiB is far above
/// any real base segment).
inline constexpr std::size_t kMaxFrameBytes = std::size_t{256} << 20;
/// Hard cap on a frame a *server* accepts: requests are names + serialized
/// Requests, all tiny, so the inbound cap is much tighter — a forged length
/// can make the server allocate at most this much.
inline constexpr std::size_t kMaxRequestFrameBytes = std::size_t{64} << 10;
/// Largest segment payload a SEGMENT frame can carry: the client-side frame
/// cap minus the opcode byte and the u64 segment key.  The server checks
/// every exported segment against this at OPEN time, so an archive that
/// cannot be streamed is a typed ERROR up front — never a connection dropped
/// mid-EXECUTE after the session was already charged.
inline constexpr std::size_t kMaxSegmentPayloadBytes = kMaxFrameBytes - 9;

enum class Op : std::uint8_t {
  // Client -> server.
  kHello = 0x01,
  kOpen = 0x02,
  kPlan = 0x03,
  kExecute = 0x04,
  kStat = 0x05,
  kClose = 0x06,
  kResume = 0x07,
  // Server -> client.
  kHelloOk = 0x81,
  kOpenOk = 0x82,
  kPlanOk = 0x83,
  kSegment = 0x84,
  kExecuteOk = 0x85,
  kStatOk = 0x86,
  kCloseOk = 0x87,
  kResumeOk = 0x88,
  kError = 0xFF,
};

/// Number of request opcodes (kHello..kResume are contiguous from 0x01).
inline constexpr std::size_t kRequestOpCount = 7;
/// Most executed requests one RESUME may replay; a longer history cannot be
/// resumed (the client falls back to failing fast) and a forged count cannot
/// drive server-side work.
inline constexpr std::size_t kMaxResumeRequests = 1024;
/// Stats slot for a raw request opcode: 0..kRequestOpCount-1 per opcode,
/// kRequestOpCount for anything unknown.
inline std::size_t op_slot(std::uint8_t raw) {
  return raw >= 1 && raw <= kRequestOpCount ? raw - 1 : kRequestOpCount;
}

enum class ErrCode : std::uint16_t {
  kBadFrame = 1,       // malformed frame or body (connection closes)
  kBadVersion = 2,     // HELLO version mismatch (connection closes)
  kBadSequence = 3,    // frame before HELLO, or an unknown open_id
  kUnknownOpcode = 4,  // opcode the server does not speak (connection stays)
  kUnknownArchive = 5, // OPEN of a name the server does not export
  kBadRequest = 6,     // Request that fails validation (e.g. bad region)
  kStalePlan = 7,      // PLAN/EXECUTE epoch does not match the session
  kUnknownToken = 8,   // EXECUTE of a token the server no longer holds
  kQuotaExceeded = 9,  // plan admission failed; a = needed, b = remaining
  kTooManyArchives = 10,  // per-connection open limit reached
  kInternal = 11,      // I/O or other server-side failure
};

/// One received frame: opcode byte (possibly unknown) + body bytes.
struct Frame {
  std::uint8_t op = 0;
  Bytes body;

  bool is(Op o) const { return op == static_cast<std::uint8_t>(o); }
};

/// Peer closed or timed out in the middle of a frame, or sent one that
/// violates the framing rules (zero/oversized length).  Distinct from
/// std::runtime_error so handlers can reap quietly instead of reporting.
///
/// Errors raised by FrameChannel carry context — the operation name, the
/// saved errno (with its strerror text folded into what()), and the peer
/// address — so a failure in a multi-client log reads "recv from
/// 10.0.0.7:51234: Connection reset by peer", not just "short read".
class WireError : public std::runtime_error {
 public:
  enum class Kind { kProtocol, kTimeout, kClosed, kIo };
  WireError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  /// Full-context form: `op` names the failing operation ("send", "recv",
  /// "connect to ..."), `sys_errno` is the saved errno (0 = none), `peer`
  /// the remote address label.  what() composes all three.
  WireError(Kind kind, const std::string& op, int sys_errno,
            const std::string& peer);
  Kind kind() const { return kind_; }
  /// The failing operation, empty for context-free errors.
  const std::string& op() const { return op_; }
  /// Saved errno at the failure point; 0 when not errno-driven.
  int sys_errno() const { return errno_; }
  /// Peer address label ("ip:port", "unix:/path"), empty when unknown.
  const std::string& peer() const { return peer_; }

 private:
  Kind kind_;
  std::string op_;
  int errno_ = 0;
  std::string peer_;
};

/// The ERROR frame a server explains a rejection with; client-side it is
/// rethrown as a typed exception (QuotaExceeded, logic_error, ...).
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrCode code, const std::string& message, std::uint64_t a,
              std::uint64_t b)
      : std::runtime_error(message), code_(code), a_(a), b_(b) {}
  ErrCode code() const { return code_; }
  std::uint64_t a() const { return a_; }
  std::uint64_t b() const { return b_; }

 private:
  ErrCode code_;
  std::uint64_t a_;
  std::uint64_t b_;
};

/// Parsed listen/dial address: "unix:/path" or "host:port" (numeric IPv4 or
/// a resolvable hostname; port 0 asks the kernel for an ephemeral port).
struct Address {
  bool unix_domain = false;
  std::string host_or_path;
  std::uint16_t port = 0;

  static Address parse(const std::string& spec);
  std::string to_string() const;
};

/// RAII owner of one connected socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Half-close both directions without releasing the descriptor: any
  /// blocked recv on another thread returns immediately (drain/reap path).
  void shutdown_both();
  /// 0 disables the corresponding timeout.
  void set_timeouts(int recv_ms, int send_ms);

 private:
  int fd_ = -1;
};

/// Connect to `spec` ("host:port" or "unix:/path").  Throws on failure.
Socket dial(const std::string& spec);

/// Bound + listening server socket.
class Listener {
 public:
  explicit Listener(const std::string& spec, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection, waiting at most `timeout_ms`; std::nullopt on
  /// timeout (acceptor loops poll their stop flag between waits).
  std::optional<Socket> accept(int timeout_ms);

  /// The dialable address — for TCP with port 0 this reports the port the
  /// kernel actually bound.
  std::string address() const;
  std::uint16_t port() const { return bound_port_; }
  void close();

 private:
  Socket fd_;
  Address addr_;
  std::uint16_t bound_port_ = 0;
};

/// Frame I/O over one socket: length-prefixed send/recv with a hard cap on
/// accepted frame length, plus wire byte counters for the stats surface.
/// The peer address is captured at construction and folded into every
/// WireError this channel throws.
class FrameChannel {
 public:
  FrameChannel(Socket sock, std::size_t max_frame);

  /// Send one frame (blocking, complete).  Throws WireError on failure.
  void send(Op op, std::span<const std::uint8_t> body);
  void send(Op op, const ByteWriter& w) { send(op, {w.buffer().data(), w.buffer().size()}); }

  /// Receive one frame.  std::nullopt on clean EOF at a frame boundary;
  /// WireError(kTimeout) when the socket's receive timeout expires,
  /// WireError(kProtocol) on a zero/oversized length, WireError(kClosed) on
  /// EOF mid-frame.
  std::optional<Frame> recv();

  /// Install a fault injector consulted around every raw socket I/O
  /// (util/fault.hpp); nullptr uninstalls.  This is the wire seam of the
  /// deterministic fault-injection harness — torn reads/writes, EINTR
  /// storms, bit flips and resets all enter here.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    faults_ = std::move(injector);
  }

  Socket& socket() { return sock_; }
  /// Peer address label this channel reports in errors.
  const std::string& peer() const { return peer_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }

 private:
  Socket sock_;
  std::size_t max_frame_;
  std::string peer_;
  std::shared_ptr<FaultInjector> faults_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

// ---- body serialization ---------------------------------------------------

/// Request <-> bytes (target tag + value, optional region box).  Reading is
/// strict: unknown tags and truncated bodies throw std::runtime_error.
void write_request(ByteWriter& w, const Request& req);
Request read_request(ByteReader& r);

/// Server-wide counters returned by STAT and printed by the CLI.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t idle_reaped = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Per request opcode (op_slot order: HELLO, OPEN, PLAN, EXECUTE, STAT,
  /// CLOSE, RESUME, unknown).
  std::vector<std::uint64_t> frames_by_opcode =
      std::vector<std::uint64_t>(kRequestOpCount + 1, 0);
  std::uint64_t wire_bytes_in = 0;
  std::uint64_t wire_bytes_out = 0;
  /// Logical volume: segment payload bytes streamed to clients.
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t quota_rejections = 0;
  /// Connections dropped because the peer could not drain a reply within
  /// the per-connection write deadline (slow-client eviction).
  std::uint64_t slow_client_evictions = 0;
  /// Wire faults fired by the server's own --fault-seed injector (0 unless
  /// fault injection is enabled).
  std::uint64_t faults_injected = 0;
  /// Physical volume: what the opened archives' base sources actually read.
  std::uint64_t physical_bytes_read = 0;
  std::uint64_t physical_read_calls = 0;
  /// Shared cross-archive segment cache.
  CacheStats cache;
};

void write_serve_stats(ByteWriter& w, const ServeStats& s);
ServeStats read_serve_stats(ByteReader& r);

/// ERROR frame body helpers.
void write_error(ByteWriter& w, ErrCode code, const std::string& message,
                 std::uint64_t a, std::uint64_t b);
RemoteError read_error(ByteReader& r);

}  // namespace ipcomp::net
