#include "net/client.hpp"

#include <chrono>
#include <thread>

#include "util/checksum.hpp"

namespace ipcomp::net {

// ---- StagedSource ---------------------------------------------------------

Bytes StagedSource::read_segment(SegmentId id) {
  std::vector<Bytes> one = read_many({&id, 1});
  return std::move(one.front());
}

std::vector<Bytes> StagedSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out;
  out.reserve(ids.size());
  std::size_t delivered = 0;
  for (const SegmentId& id : ids) {
    auto it = staged_.find(id.key(version_));
    if (it == staged_.end()) {
      throw std::runtime_error(
          "remote: server did not deliver a planned segment");
    }
    delivered += it->second.size();
    out.push_back(std::move(it->second));
    staged_.erase(it);
  }
  count_read_call();
  charge_bytes(delivered);
  return out;
}

std::size_t StagedSource::segment_size(SegmentId id) const {
  auto it = sizes_.find(id.key(version_));
  if (it == sizes_.end()) {
    throw std::invalid_argument("remote: unknown segment id");
  }
  return it->second;
}

std::vector<SegmentId> StagedSource::segment_ids() const {
  std::vector<SegmentId> out;
  out.reserve(order_.size());
  for (std::uint64_t key : order_) {
    out.push_back(SegmentId::from_key(key, version_));
  }
  return out;
}

// ---- RemoteArchive --------------------------------------------------------

namespace {

/// Server ERROR frame -> the exception the matching local call would throw.
[[noreturn]] void throw_mapped(const RemoteError& e) {
  switch (e.code()) {
    case ErrCode::kQuotaExceeded:
      throw QuotaExceeded(e.a(), e.b());
    case ErrCode::kStalePlan:
    case ErrCode::kUnknownToken:
      throw std::logic_error(e.what());
    case ErrCode::kBadRequest:
      throw std::invalid_argument(e.what());
    default:
      throw e;
  }
}

}  // namespace

RemoteArchive::RemoteArchive(const std::string& spec, const std::string& name,
                             int timeout_ms)
    : spec_(spec), name_(name), timeout_ms_(timeout_ms) {
  connect();
  handshake(/*reopening=*/false);
}

void RemoteArchive::connect() {
  Socket s = dial(spec_);
  s.set_timeouts(timeout_ms_, timeout_ms_);
  ch_.emplace(std::move(s), kMaxFrameBytes);
  if (faults_) ch_->set_fault_injector(faults_);
}

void RemoteArchive::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  faults_ = std::move(injector);
  if (ch_) ch_->set_fault_injector(faults_);
}

void RemoteArchive::reconnect() {
  connect();  // the old channel (if any) closes with its Socket
  handshake(/*reopening=*/true);
}

void RemoteArchive::handshake(bool reopening) {
  // HELLO.
  {
    ByteWriter w;
    w.u32(kWireVersion);
    ch_->send(Op::kHello, w);
    Frame f = expect_reply(Op::kHelloOk);
    ByteReader r({f.body.data(), f.body.size()});
    if (r.u32() != kWireVersion) {
      throw WireError(WireError::Kind::kProtocol,
                      "server accepted HELLO with a different version");
    }
  }
  // OPEN: prime the staged source from the reply — or, on a reconnect,
  // insist the server still exports the identical archive.  A mismatch is
  // not a transient fault: the mirror reader's residency would be priced
  // against bytes the server no longer serves.
  {
    ByteWriter w;
    w.string(name_);
    ch_->send(Op::kOpen, w);
    Frame f = expect_reply(Op::kOpenOk);
    ByteReader r({f.body.data(), f.body.size()});
    const std::uint32_t open_id = r.u32();
    const std::uint32_t version = r.u32();
    const std::size_t total_size = r.varint();
    const std::size_t open_cost = r.varint();
    const std::size_t header_len = r.varint();
    auto header = r.bytes(header_len);
    const std::size_t n = r.varint();
    const bool has_checksums = r.u8() != 0;
    std::vector<std::uint64_t> order;
    std::unordered_map<std::uint64_t, std::size_t> sizes;
    std::unordered_map<std::uint64_t, std::uint64_t> checks;
    order.reserve(n);
    sizes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.u64();
      const std::size_t size = r.varint();
      order.push_back(key);
      sizes.emplace(key, size);
      if (has_checksums) checks.emplace(key, r.u64());
    }
    if (!r.at_end()) {
      throw WireError(WireError::Kind::kProtocol,
                      "trailing bytes in OPEN_OK");
    }
    if (reopening) {
      const bool same = version == src_.version_ &&
                        total_size == src_.total_size_ &&
                        open_cost == src_.open_cost_ &&
                        Bytes(header.begin(), header.end()) == src_.header_ &&
                        order == src_.order_ && sizes == src_.sizes_ &&
                        checks == src_.checks_;
      if (!same) {
        throw WireError(WireError::Kind::kProtocol,
                        "archive changed across reconnect: " + name_);
      }
    } else {
      src_.version_ = version;
      src_.total_size_ = total_size;
      src_.open_cost_ = open_cost;
      src_.header_.assign(header.begin(), header.end());
      src_.order_ = std::move(order);
      src_.sizes_ = std::move(sizes);
      src_.checks_ = std::move(checks);
    }
    open_id_ = open_id;
  }
}

Frame RemoteArchive::expect_reply(Op expect) {
  std::optional<Frame> f = ch_->recv();
  if (!f) {
    throw WireError(WireError::Kind::kClosed, "server closed the connection");
  }
  if (f->is(Op::kError)) {
    ByteReader r({f->body.data(), f->body.size()});
    throw_mapped(read_error(r));
  }
  if (!f->is(expect)) {
    throw WireError(WireError::Kind::kProtocol,
                    "unexpected reply opcode " + std::to_string(f->op));
  }
  return std::move(*f);
}

PlanReply RemoteArchive::plan_remote(std::uint64_t epoch, const Request& req) {
  ByteWriter w;
  w.u32(open_id_);
  w.u64(epoch);
  write_request(w, req);
  ch_->send(Op::kPlan, w);
  Frame f = expect_reply(Op::kPlanOk);
  ByteReader r({f.body.data(), f.body.size()});
  PlanReply rep;
  rep.token = r.varint();
  rep.bytes_new = r.varint();
  rep.guaranteed_error = r.f64();
  rep.n_segments = r.varint();
  rep.epoch = r.varint();
  return rep;
}

ExecReply RemoteArchive::execute_remote(std::uint64_t token) {
  ByteWriter w;
  w.u32(open_id_);
  w.varint(token);
  ch_->send(Op::kExecute, w);
  last_payload_bytes_ = 0;
  while (true) {
    std::optional<Frame> got = ch_->recv();
    if (!got) {
      throw WireError(WireError::Kind::kClosed,
                      "server closed the connection mid-execute");
    }
    Frame f = std::move(*got);
    if (f.is(Op::kError)) {
      ByteReader r({f.body.data(), f.body.size()});
      throw_mapped(read_error(r));
    }
    if (!f.is(Op::kSegment) && !f.is(Op::kExecuteOk)) {
      throw WireError(WireError::Kind::kProtocol,
                      "unexpected reply opcode " + std::to_string(f.op));
    }
    if (f.is(Op::kSegment)) {
      ByteReader r({f.body.data(), f.body.size()});
      const std::uint64_t key = r.u64();
      auto payload = r.bytes(r.remaining());
      // Wire trust boundary: verify against the OPEN checksum column before
      // the payload can reach the staging area (and the decoder).
      auto check = src_.checks_.find(key);
      if (check != src_.checks_.end()) {
        const std::uint64_t actual = checksum64(payload.data(), payload.size());
        if (actual != check->second) {
          throw IntegrityError(SegmentId::from_key(key, src_.version_),
                               check->second, actual,
                               IntegrityError::Layer::kWire);
        }
      }
      last_payload_bytes_ += payload.size();
      wire_payload_bytes_ += payload.size();
      src_.stage(key, Bytes(payload.begin(), payload.end()));
      continue;
    }
    ByteReader r({f.body.data(), f.body.size()});
    ExecReply rep;
    rep.bytes_new = r.varint();
    rep.bytes_total = r.varint();
    rep.guaranteed_error = r.f64();
    rep.bitrate = r.f64();
    return rep;
  }
}

ResumeReply RemoteArchive::resume_remote(const std::vector<Request>& history) {
  if (history.size() > kMaxResumeRequests) {
    throw std::runtime_error(
        "remote: resume history exceeds the protocol cap of " +
        std::to_string(kMaxResumeRequests) + " requests");
  }
  ByteWriter w;
  w.u32(open_id_);
  w.varint(history.size());
  for (const Request& req : history) write_request(w, req);
  if (w.buffer().size() + 1 > kMaxRequestFrameBytes) {
    throw std::runtime_error(
        "remote: resume history exceeds the request frame cap");
  }
  ch_->send(Op::kResume, w);
  Frame f = expect_reply(Op::kResumeOk);
  ByteReader r({f.body.data(), f.body.size()});
  ResumeReply rep;
  rep.epoch = r.varint();
  rep.bytes_used = r.varint();
  if (!r.at_end()) {
    throw WireError(WireError::Kind::kProtocol, "trailing bytes in RESUME_OK");
  }
  return rep;
}

ServeStats RemoteArchive::stat() {
  ch_->send(Op::kStat, ByteWriter{});
  Frame f = expect_reply(Op::kStatOk);
  ByteReader r({f.body.data(), f.body.size()});
  return read_serve_stats(r);
}

void RemoteArchive::close() {
  ByteWriter w;
  w.u32(open_id_);
  ch_->send(Op::kClose, w);
  expect_reply(Op::kCloseOk);
  ch_->socket().shutdown_both();
}

// ---- RemoteReader ---------------------------------------------------------

template <typename T>
std::string RemoteReader<T>::plan_fingerprint(const RetrievalPlan& p) {
  ByteWriter w;
  w.varint(p.epoch);
  write_request(w, p.request);
  const Bytes b = w.take();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

template <typename T>
void RemoteReader<T>::check_poisoned() const {
  if (poisoned_) {
    throw std::logic_error(
        "remote reader is poisoned: a previous execute() diverged from the "
        "server after its session advanced; reconnect with a fresh "
        "RemoteReader");
  }
}

template <typename T>
void RemoteReader<T>::check_plan_reply(const PlanReply& rep,
                                       const RetrievalPlan& p) {
  if (rep.bytes_new != p.bytes_new || rep.n_segments != p.segments.size() ||
      rep.epoch != p.epoch) {
    throw std::runtime_error(
        "remote: server plan disagrees with the local mirror (config or "
        "version drift)");
  }
}

template <typename T>
void RemoteReader<T>::backoff(int attempt) {
  std::uint64_t ms = policy_.backoff_base_ms;
  for (int k = 1; k < attempt && ms < policy_.backoff_max_ms; ++k) ms *= 2;
  if (ms > policy_.backoff_max_ms) ms = policy_.backoff_max_ms;
  if (ms == 0) return;
  // Full jitter: sleep uniformly in [ms/2, ms] so concurrent clients do not
  // hammer a recovering server in lockstep.
  const std::uint64_t jittered = ms / 2 + jitter_.uniform_u64(ms / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

template <typename T>
void RemoteReader<T>::recover_connection() {
  archive_.reconnect();
  const ResumeReply rep = archive_.resume_remote(history_);
  if (rep.epoch != reader_.epoch()) {
    throw std::runtime_error(
        "remote: resumed session epoch disagrees with the local mirror");
  }
  // Every outstanding token lived in the dead connection's session.
  tokens_.clear();
  ++recoveries_;
}

template <typename T>
template <typename F>
auto RemoteReader<T>::with_recovery(F&& op) -> decltype(op()) {
  int attempt = 0;
  bool healthy = true;
  while (true) {
    try {
      if (!healthy) {
        recover_connection();
        healthy = true;
      }
      return op();
    } catch (const WireError& e) {
      if (e.kind() == WireError::Kind::kProtocol ||
          ++attempt >= policy_.max_attempts ||
          recoveries_ >= policy_.recovery_budget) {
        throw;
      }
      ++retries_;
      healthy = false;
      backoff(attempt);
    } catch (const IntegrityError& e) {
      // Only wire-layer corruption is plausibly transient (a flipped frame);
      // storage/cache corruption would just reproduce on retry.
      if (e.layer() != IntegrityError::Layer::kWire ||
          ++attempt >= policy_.max_attempts ||
          recoveries_ >= policy_.recovery_budget) {
        throw;
      }
      ++retries_;
      healthy = false;
      backoff(attempt);
    }
  }
}

template <typename T>
RetrievalPlan RemoteReader<T>::plan(const Request& req) {
  check_poisoned();
  RetrievalPlan p = reader_.plan(req);
  const PlanReply rep =
      with_recovery([&] { return archive_.plan_remote(p.epoch, req); });
  check_plan_reply(rep, p);
  tokens_[plan_fingerprint(p)] = rep.token;
  return p;
}

template <typename T>
RetrievalStats RemoteReader<T>::execute(const RetrievalPlan& p) {
  check_poisoned();
  const std::string fp = plan_fingerprint(p);
  if (tokens_.find(fp) == tokens_.end() && recoveries_ == 0) {
    throw std::logic_error(
        "execute: plan was not produced by this reader's plan() (or is "
        "stale)");
  }
  const ExecReply rep = with_recovery([&] {
    auto it = tokens_.find(fp);
    std::uint64_t token;
    if (it == tokens_.end()) {
      // A recovery invalidated the reservation; the resumed session holds
      // the same state the plan priced, so re-reserving must agree.
      const PlanReply fresh = archive_.plan_remote(p.epoch, p.request);
      check_plan_reply(fresh, p);
      tokens_[fp] = fresh.token;
      token = fresh.token;
    } else {
      token = it->second;
    }
    return archive_.execute_remote(token);
  });
  // From here the server session has advanced and its staged payloads are
  // consumed.  If the local mirror cannot follow — the decode throws, or the
  // accounting cross-check fails — the two sides are permanently
  // desynchronized with no recovery on this connection, so poison the reader
  // and make every later plan/execute fail fast instead of shipping plans
  // priced against a state the server no longer holds.
  try {
    RetrievalStats st = reader_.execute(p);
    if (st.bytes_new != rep.bytes_new) {
      throw std::runtime_error(
          "remote: execution accounting disagrees with the server");
    }
    // The reader advanced; every outstanding token priced the old state.
    tokens_.clear();
    // Acknowledged on both ends: this request is now part of the state a
    // RESUME replay must rebuild.
    history_.push_back(p.request);
    return st;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

template class RemoteReader<float>;
template class RemoteReader<double>;

}  // namespace ipcomp::net
