#include "net/client.hpp"

namespace ipcomp::net {

// ---- StagedSource ---------------------------------------------------------

Bytes StagedSource::read_segment(SegmentId id) {
  std::vector<Bytes> one = read_many({&id, 1});
  return std::move(one.front());
}

std::vector<Bytes> StagedSource::read_many(std::span<const SegmentId> ids) {
  std::vector<Bytes> out;
  out.reserve(ids.size());
  std::size_t delivered = 0;
  for (const SegmentId& id : ids) {
    auto it = staged_.find(id.key(version_));
    if (it == staged_.end()) {
      throw std::runtime_error(
          "remote: server did not deliver a planned segment");
    }
    delivered += it->second.size();
    out.push_back(std::move(it->second));
    staged_.erase(it);
  }
  count_read_call();
  charge_bytes(delivered);
  return out;
}

std::size_t StagedSource::segment_size(SegmentId id) const {
  auto it = sizes_.find(id.key(version_));
  if (it == sizes_.end()) {
    throw std::invalid_argument("remote: unknown segment id");
  }
  return it->second;
}

std::vector<SegmentId> StagedSource::segment_ids() const {
  std::vector<SegmentId> out;
  out.reserve(order_.size());
  for (std::uint64_t key : order_) {
    out.push_back(SegmentId::from_key(key, version_));
  }
  return out;
}

// ---- RemoteArchive --------------------------------------------------------

namespace {

/// Server ERROR frame -> the exception the matching local call would throw.
[[noreturn]] void throw_mapped(const RemoteError& e) {
  switch (e.code()) {
    case ErrCode::kQuotaExceeded:
      throw QuotaExceeded(e.a(), e.b());
    case ErrCode::kStalePlan:
    case ErrCode::kUnknownToken:
      throw std::logic_error(e.what());
    case ErrCode::kBadRequest:
      throw std::invalid_argument(e.what());
    default:
      throw e;
  }
}

}  // namespace

RemoteArchive::RemoteArchive(const std::string& spec, const std::string& name,
                             int timeout_ms)
    : ch_([&] {
        Socket s = dial(spec);
        s.set_timeouts(timeout_ms, timeout_ms);
        return s;
      }(),
          kMaxFrameBytes) {
  // HELLO.
  {
    ByteWriter w;
    w.u32(kWireVersion);
    ch_.send(Op::kHello, w);
    Frame f = expect_reply(Op::kHelloOk);
    ByteReader r({f.body.data(), f.body.size()});
    if (r.u32() != kWireVersion) {
      throw WireError(WireError::Kind::kProtocol,
                      "server accepted HELLO with a different version");
    }
  }
  // OPEN: prime the staged source from the reply.
  {
    ByteWriter w;
    w.string(name);
    ch_.send(Op::kOpen, w);
    Frame f = expect_reply(Op::kOpenOk);
    ByteReader r({f.body.data(), f.body.size()});
    open_id_ = r.u32();
    src_.version_ = r.u32();
    src_.total_size_ = r.varint();
    src_.open_cost_ = r.varint();
    const std::size_t header_len = r.varint();
    auto header = r.bytes(header_len);
    src_.header_.assign(header.begin(), header.end());
    const std::size_t n = r.varint();
    src_.order_.reserve(n);
    src_.sizes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.u64();
      const std::size_t size = r.varint();
      src_.order_.push_back(key);
      src_.sizes_.emplace(key, size);
    }
    if (!r.at_end()) {
      throw WireError(WireError::Kind::kProtocol,
                      "trailing bytes in OPEN_OK");
    }
  }
}

Frame RemoteArchive::expect_reply(Op expect) {
  std::optional<Frame> f = ch_.recv();
  if (!f) {
    throw WireError(WireError::Kind::kClosed, "server closed the connection");
  }
  if (f->is(Op::kError)) {
    ByteReader r({f->body.data(), f->body.size()});
    throw_mapped(read_error(r));
  }
  if (!f->is(expect)) {
    throw WireError(WireError::Kind::kProtocol,
                    "unexpected reply opcode " + std::to_string(f->op));
  }
  return std::move(*f);
}

PlanReply RemoteArchive::plan_remote(std::uint64_t epoch, const Request& req) {
  ByteWriter w;
  w.u32(open_id_);
  w.u64(epoch);
  write_request(w, req);
  ch_.send(Op::kPlan, w);
  Frame f = expect_reply(Op::kPlanOk);
  ByteReader r({f.body.data(), f.body.size()});
  PlanReply rep;
  rep.token = r.varint();
  rep.bytes_new = r.varint();
  rep.guaranteed_error = r.f64();
  rep.n_segments = r.varint();
  rep.epoch = r.varint();
  return rep;
}

ExecReply RemoteArchive::execute_remote(std::uint64_t token) {
  ByteWriter w;
  w.u32(open_id_);
  w.varint(token);
  ch_.send(Op::kExecute, w);
  last_payload_bytes_ = 0;
  while (true) {
    std::optional<Frame> got = ch_.recv();
    if (!got) {
      throw WireError(WireError::Kind::kClosed,
                      "server closed the connection mid-execute");
    }
    Frame f = std::move(*got);
    if (f.is(Op::kError)) {
      ByteReader r({f.body.data(), f.body.size()});
      throw_mapped(read_error(r));
    }
    if (!f.is(Op::kSegment) && !f.is(Op::kExecuteOk)) {
      throw WireError(WireError::Kind::kProtocol,
                      "unexpected reply opcode " + std::to_string(f.op));
    }
    if (f.is(Op::kSegment)) {
      ByteReader r({f.body.data(), f.body.size()});
      const std::uint64_t key = r.u64();
      auto payload = r.bytes(r.remaining());
      last_payload_bytes_ += payload.size();
      wire_payload_bytes_ += payload.size();
      src_.stage(key, Bytes(payload.begin(), payload.end()));
      continue;
    }
    ByteReader r({f.body.data(), f.body.size()});
    ExecReply rep;
    rep.bytes_new = r.varint();
    rep.bytes_total = r.varint();
    rep.guaranteed_error = r.f64();
    rep.bitrate = r.f64();
    return rep;
  }
}

ServeStats RemoteArchive::stat() {
  ch_.send(Op::kStat, ByteWriter{});
  Frame f = expect_reply(Op::kStatOk);
  ByteReader r({f.body.data(), f.body.size()});
  return read_serve_stats(r);
}

void RemoteArchive::close() {
  ByteWriter w;
  w.u32(open_id_);
  ch_.send(Op::kClose, w);
  expect_reply(Op::kCloseOk);
  ch_.socket().shutdown_both();
}

// ---- RemoteReader ---------------------------------------------------------

template <typename T>
std::string RemoteReader<T>::plan_fingerprint(const RetrievalPlan& p) {
  ByteWriter w;
  w.varint(p.epoch);
  write_request(w, p.request);
  const Bytes b = w.take();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

template <typename T>
void RemoteReader<T>::check_poisoned() const {
  if (poisoned_) {
    throw std::logic_error(
        "remote reader is poisoned: a previous execute() diverged from the "
        "server after its session advanced; reconnect with a fresh "
        "RemoteReader");
  }
}

template <typename T>
RetrievalPlan RemoteReader<T>::plan(const Request& req) {
  check_poisoned();
  RetrievalPlan p = reader_.plan(req);
  const PlanReply rep = archive_.plan_remote(p.epoch, req);
  if (rep.bytes_new != p.bytes_new || rep.n_segments != p.segments.size() ||
      rep.epoch != p.epoch) {
    throw std::runtime_error(
        "remote: server plan disagrees with the local mirror (config or "
        "version drift)");
  }
  tokens_[plan_fingerprint(p)] = rep.token;
  return p;
}

template <typename T>
RetrievalStats RemoteReader<T>::execute(const RetrievalPlan& p) {
  check_poisoned();
  auto it = tokens_.find(plan_fingerprint(p));
  if (it == tokens_.end()) {
    throw std::logic_error(
        "execute: plan was not produced by this reader's plan() (or is "
        "stale)");
  }
  const ExecReply rep = archive_.execute_remote(it->second);
  // From here the server session has advanced and its staged payloads are
  // consumed.  If the local mirror cannot follow — the decode throws, or the
  // accounting cross-check fails — the two sides are permanently
  // desynchronized with no recovery on this connection, so poison the reader
  // and make every later plan/execute fail fast instead of shipping plans
  // priced against a state the server no longer holds.
  try {
    RetrievalStats st = reader_.execute(p);
    if (st.bytes_new != rep.bytes_new) {
      throw std::runtime_error(
          "remote: execution accounting disagrees with the server");
    }
    // The reader advanced; every outstanding token priced the old state.
    tokens_.clear();
    return st;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

template class RemoteReader<float>;
template class RemoteReader<double>;

}  // namespace ipcomp::net
