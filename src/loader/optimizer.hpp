// Optimized data loading (paper §5): choose, per level, how many low
// bitplanes to skip so that either
//   * error-bound mode — the guaranteed L∞ error stays ≤ E while the bytes
//     loaded are minimized, or
//   * bitrate mode — the bytes loaded stay ≤ S while the guaranteed error is
//     minimized.
// Both are multiple-choice knapsacks solved by dynamic programming over a
// discretized budget axis; discretization always rounds *against* the user's
// budget so the constraint can never be violated (DESIGN.md §6.7).
//
// Greedy and uniform planners exist for the ablation study (bench_ablation_
// optimizer); DP dominates both.
#pragma once

#include <cstdint>
#include <vector>

namespace ipcomp {

/// Planner view of one progressive level.
struct LevelPlanInput {
  /// Compressed byte size of each stored plane; index 0 = LSB.
  std::vector<std::uint64_t> plane_size;
  /// err[d]: guaranteed error contribution (value units, amplification
  /// already applied) of dropping the d lowest stored planes; size n+1.
  std::vector<double> err;
  /// Planes already resident from previous requests, counted from the top
  /// (MSB side).  Their bytes are sunk: free to use, impossible to unload.
  unsigned already_loaded = 0;
};

struct LoadPlan {
  /// Per level: number of planes to use, counted from the top.  Always
  /// >= already_loaded for that level.
  std::vector<unsigned> planes_to_use;
  /// Sum of err[d] over levels under the chosen plan (value units).
  double guaranteed_error = 0.0;
  /// Bytes of not-yet-loaded plane segments the plan will fetch.
  std::uint64_t new_bytes = 0;
};

enum class PlannerKind {
  kDynamicProgramming,
  kGreedy,
  kUniform,
};

/// Error-bound mode: minimize newly loaded bytes subject to
/// Σ err ≤ error_budget (the caller passes E − eb).
LoadPlan plan_error_bound(const std::vector<LevelPlanInput>& levels,
                          double error_budget,
                          PlannerKind kind = PlannerKind::kDynamicProgramming);

/// Bitrate mode: minimize Σ err subject to new bytes ≤ byte_budget.
LoadPlan plan_byte_budget(const std::vector<LevelPlanInput>& levels,
                          std::uint64_t byte_budget,
                          PlannerKind kind = PlannerKind::kDynamicProgramming);

}  // namespace ipcomp
