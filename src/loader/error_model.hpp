// Error propagation models for partial-bitplane retrieval (paper Theorem 1).
//
// A level's truncation loss is amplified as predictions chain toward finer
// levels.  Two models are offered:
//
//  * kPaper — the paper's Theorem 1: loss of level l is amplified by p^(l-1)
//    where p = ‖P‖∞ (1 for linear, 1.25 for cubic).  This treats each level
//    as a single application of P.
//
//  * kConservative (default) — accounts for the dimension-by-dimension sweep:
//    within a level, pass t's predictions consume pass t-1's outputs, so a
//    level applies P up to `rank` times.  With the recurrence
//    M_t = p·M_{t-1} + δ, the per-level map is D_l = p^r·D_{l+1} + g·δ_l,
//    g = (p^r − 1)/(p − 1) (or r when p = 1), giving amplification
//    amp(l) = g · (p^r)^(l-1).  This bound is proven by the recurrence and is
//    what the guarantee tests assert against (DESIGN.md §2, error-model note).
//
// Both models yield identical guarantees for requests that load everything
// (δ = 0).  kConservative loads slightly more planes for the same target.
#pragma once

#include <cmath>

#include "interp/interpolation.hpp"

namespace ipcomp {

enum class ErrorModel {
  kPaper,
  kConservative,
};

/// Amplification applied to the truncation loss of level `l` (1-based,
/// 1 = finest) for a `rank`-dimensional sweep.
inline double level_amplification(ErrorModel model, InterpKind kind,
                                  unsigned rank, unsigned l) {
  const double p = interp_p_norm(kind);
  if (model == ErrorModel::kPaper) {
    return std::pow(p, static_cast<double>(l - 1));
  }
  const double pr = std::pow(p, static_cast<double>(rank));
  const double g = (p == 1.0) ? static_cast<double>(rank) : (pr - 1.0) / (p - 1.0);
  return g * std::pow(pr, static_cast<double>(l - 1));
}

}  // namespace ipcomp
