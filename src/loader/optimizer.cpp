#include "loader/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ipcomp {

namespace {

constexpr std::size_t kBins = 1021;  // DP budget grid resolution

struct Choice {
  unsigned max_drop;                      // n_planes - already_loaded
  unsigned n_planes;
  std::vector<std::uint64_t> cum_size;    // cum_size[d] = bytes of d lowest planes
  std::uint64_t loadable;                 // bytes of the not-yet-loaded planes
};

std::vector<Choice> prepare(const std::vector<LevelPlanInput>& levels) {
  std::vector<Choice> out;
  out.reserve(levels.size());
  for (const auto& l : levels) {
    Choice c;
    c.n_planes = static_cast<unsigned>(l.plane_size.size());
    if (l.err.size() != l.plane_size.size() + 1) {
      throw std::invalid_argument("planner: err table size mismatch");
    }
    if (l.already_loaded > c.n_planes) {
      throw std::invalid_argument("planner: already_loaded out of range");
    }
    c.max_drop = c.n_planes - l.already_loaded;
    c.cum_size.assign(c.n_planes + 1, 0);
    for (unsigned d = 1; d <= c.n_planes; ++d) {
      c.cum_size[d] = c.cum_size[d - 1] + l.plane_size[d - 1];
    }
    c.loadable = c.cum_size[c.max_drop];  // everything below the loaded block
    out.push_back(std::move(c));
  }
  return out;
}

LoadPlan finalize(const std::vector<LevelPlanInput>& levels,
                  const std::vector<Choice>& ch, const std::vector<unsigned>& drop) {
  LoadPlan plan;
  plan.planes_to_use.resize(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    unsigned d = drop[i];
    plan.planes_to_use[i] = ch[i].n_planes - d;
    plan.guaranteed_error += levels[i].err[d];
    plan.new_bytes += ch[i].cum_size[ch[i].max_drop] - ch[i].cum_size[d];
  }
  return plan;
}

// ---------------------------------------------------------------- DP: EB ---

LoadPlan dp_error_bound(const std::vector<LevelPlanInput>& levels,
                        double error_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  std::vector<unsigned> drop(n, 0);
  if (error_budget <= 0.0) {
    // Only zero-error drops are admissible.
    for (std::size_t i = 0; i < n; ++i) {
      unsigned d = 0;
      while (d < ch[i].max_drop && levels[i].err[d + 1] == 0.0) ++d;
      drop[i] = d;
    }
    return finalize(levels, ch, drop);
  }

  const double binw = error_budget / static_cast<double>(kBins);
  auto cost_of = [&](double err) -> std::size_t {
    if (err <= 0.0) return 0;
    // Round the error cost UP so the discretized constraint implies the real
    // one: sum(cost)*binw >= sum(err) never understates.
    double bins = std::ceil(err / binw);
    if (bins > static_cast<double>(kBins)) return kBins + 1;  // infeasible
    return static_cast<std::size_t>(bins);
  };

  constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 2;
  // tables[i][e] = max bytes saved by levels [0, i) with error cost <= e bins.
  std::vector<std::vector<std::int64_t>> tables(
      n + 1, std::vector<std::int64_t>(kBins + 1, kNegInf));
  tables[0][0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e0 = 0; e0 <= kBins; ++e0) {
      if (tables[i][e0] == kNegInf) continue;
      for (unsigned d = 0; d <= ch[i].max_drop; ++d) {
        std::size_t cost = cost_of(levels[i].err[d]);
        if (cost > kBins || e0 + cost > kBins) continue;
        std::int64_t v = tables[i][e0] + static_cast<std::int64_t>(ch[i].cum_size[d]);
        if (v > tables[i + 1][e0 + cost]) tables[i + 1][e0 + cost] = v;
      }
    }
  }

  std::size_t best_e = 0;
  std::int64_t best = kNegInf;
  for (std::size_t e = 0; e <= kBins; ++e) {
    if (tables[n][e] > best) {
      best = tables[n][e];
      best_e = e;
    }
  }
  // d = 0 costs 0 error for every level, so a solution always exists.
  std::size_t e = best_e;
  for (std::size_t i = n; i-- > 0;) {
    bool found = false;
    for (unsigned d = 0; d <= ch[i].max_drop && !found; ++d) {
      std::size_t cost = cost_of(levels[i].err[d]);
      if (cost > kBins || cost > e) continue;
      if (tables[i][e - cost] != kNegInf &&
          tables[i][e - cost] + static_cast<std::int64_t>(ch[i].cum_size[d]) ==
              tables[i + 1][e]) {
        drop[i] = d;
        e -= cost;
        found = true;
      }
    }
    if (!found) throw std::logic_error("planner: backtrack failed");
  }
  return finalize(levels, ch, drop);
}

// ---------------------------------------------------------------- DP: BR ---

LoadPlan dp_byte_budget(const std::vector<LevelPlanInput>& levels,
                        std::uint64_t byte_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const double binw = std::max(1.0, static_cast<double>(byte_budget) /
                                        static_cast<double>(kBins));
  // Capacity in bins such that capacity*binw <= byte_budget is implied by
  // the per-item ceil-rounding (rounding up can only tighten the budget).
  const std::size_t capacity = static_cast<std::size_t>(
      std::min(static_cast<double>(kBins),
               std::floor(static_cast<double>(byte_budget) / binw)));
  auto cost_of = [&](std::uint64_t bytes) -> std::size_t {
    if (bytes == 0) return 0;
    if (bytes > byte_budget) return capacity + 1;  // infeasible on its own
    double bins = std::ceil(static_cast<double>(bytes) / binw);
    if (bins > static_cast<double>(capacity)) return capacity + 1;
    return static_cast<std::size_t>(bins);
  };

  std::vector<std::vector<double>> tables(n + 1,
                                          std::vector<double>(capacity + 1, kInf));
  tables[0][0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s0 = 0; s0 <= capacity; ++s0) {
      if (tables[i][s0] == kInf) continue;
      for (unsigned d = 0; d <= ch[i].max_drop; ++d) {
        std::uint64_t load = ch[i].loadable - ch[i].cum_size[d];
        std::size_t cost = cost_of(load);
        if (cost > capacity || s0 + cost > capacity) continue;
        double err = tables[i][s0] + levels[i].err[d];
        if (err < tables[i + 1][s0 + cost]) tables[i + 1][s0 + cost] = err;
      }
    }
  }

  std::size_t best_s = 0;
  double best = kInf;
  for (std::size_t s = 0; s <= capacity; ++s) {
    if (tables[n][s] < best) {
      best = tables[n][s];
      best_s = s;
    }
  }
  std::vector<unsigned> drop(n, 0);
  if (best == kInf) {
    // Budget below even the cheapest plan: drop everything droppable.
    for (std::size_t i = 0; i < n; ++i) drop[i] = ch[i].max_drop;
    return finalize(levels, ch, drop);
  }
  std::size_t s = best_s;
  for (std::size_t i = n; i-- > 0;) {
    bool found = false;
    for (unsigned d = 0; d <= ch[i].max_drop && !found; ++d) {
      std::uint64_t load = ch[i].loadable - ch[i].cum_size[d];
      std::size_t cost = cost_of(load);
      if (cost > capacity || cost > s) continue;
      if (tables[i][s - cost] != kInf &&
          tables[i][s - cost] + levels[i].err[d] == tables[i + 1][s]) {
        drop[i] = d;
        s -= cost;
        found = true;
      }
    }
    if (!found) throw std::logic_error("planner: backtrack failed");
  }
  return finalize(levels, ch, drop);
}

// -------------------------------------------------------------- greedy -----

LoadPlan greedy_error_bound(const std::vector<LevelPlanInput>& levels,
                            double error_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  // Start from "load everything", then greedily drop the plane with the best
  // bytes-saved per added-error ratio while the budget holds.
  std::vector<unsigned> drop(n, 0);
  double err_now = 0.0;
  for (std::size_t i = 0; i < n; ++i) err_now += levels[i].err[0];
  while (true) {
    double best_ratio = -1.0;
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (drop[i] >= ch[i].max_drop) continue;
      double new_err = err_now - levels[i].err[drop[i]] + levels[i].err[drop[i] + 1];
      if (new_err > error_budget) continue;
      double added = levels[i].err[drop[i] + 1] - levels[i].err[drop[i]];
      double saved = static_cast<double>(levels[i].plane_size[drop[i]]);
      double ratio = added <= 0.0 ? std::numeric_limits<double>::infinity()
                                  : saved / added;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_i = i;
      }
    }
    if (best_i == n) break;
    err_now += levels[best_i].err[drop[best_i] + 1] - levels[best_i].err[drop[best_i]];
    ++drop[best_i];
  }
  return finalize(levels, ch, drop);
}

LoadPlan greedy_byte_budget(const std::vector<LevelPlanInput>& levels,
                            std::uint64_t byte_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  // Start from "load nothing new", then greedily add the plane with the best
  // error-reduction per byte while the budget holds.
  std::vector<unsigned> drop(n);
  for (std::size_t i = 0; i < n; ++i) drop[i] = ch[i].max_drop;
  std::uint64_t used = 0;
  while (true) {
    double best_ratio = -1.0;
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (drop[i] == 0) continue;
      std::uint64_t add = levels[i].plane_size[drop[i] - 1];
      if (used + add > byte_budget) continue;
      double gain = levels[i].err[drop[i]] - levels[i].err[drop[i] - 1];
      double ratio = gain / static_cast<double>(std::max<std::uint64_t>(1, add));
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_i = i;
      }
    }
    if (best_i == n) break;
    used += levels[best_i].plane_size[drop[best_i] - 1];
    --drop[best_i];
  }
  return finalize(levels, ch, drop);
}

// -------------------------------------------------------------- uniform ----

LoadPlan uniform_error_bound(const std::vector<LevelPlanInput>& levels,
                             double error_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  unsigned max_d = 0;
  for (auto& c : ch) max_d = std::max(max_d, c.max_drop);
  std::vector<unsigned> best(n, 0);
  for (unsigned d = max_d; d-- > 0;) {
    // try uniform drop of (d+1)
    double err = 0.0;
    std::vector<unsigned> drop(n);
    for (std::size_t i = 0; i < n; ++i) {
      drop[i] = std::min(d + 1, ch[i].max_drop);
      err += levels[i].err[drop[i]];
    }
    if (err <= error_budget) return finalize(levels, ch, drop);
  }
  return finalize(levels, ch, best);
}

LoadPlan uniform_byte_budget(const std::vector<LevelPlanInput>& levels,
                             std::uint64_t byte_budget) {
  auto ch = prepare(levels);
  const std::size_t n = levels.size();
  unsigned max_d = 0;
  for (auto& c : ch) max_d = std::max(max_d, c.max_drop);
  for (unsigned d = 0; d <= max_d; ++d) {
    std::uint64_t load = 0;
    std::vector<unsigned> drop(n);
    for (std::size_t i = 0; i < n; ++i) {
      drop[i] = std::min(d, ch[i].max_drop);
      load += ch[i].loadable - ch[i].cum_size[drop[i]];
    }
    if (load <= byte_budget) return finalize(levels, ch, drop);
  }
  std::vector<unsigned> drop(n);
  for (std::size_t i = 0; i < n; ++i) drop[i] = ch[i].max_drop;
  return finalize(levels, ch, drop);
}

}  // namespace

LoadPlan plan_error_bound(const std::vector<LevelPlanInput>& levels,
                          double error_budget, PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kDynamicProgramming:
      return dp_error_bound(levels, error_budget);
    case PlannerKind::kGreedy:
      return greedy_error_bound(levels, error_budget);
    case PlannerKind::kUniform:
      return uniform_error_bound(levels, error_budget);
  }
  throw std::invalid_argument("planner: unknown kind");
}

LoadPlan plan_byte_budget(const std::vector<LevelPlanInput>& levels,
                          std::uint64_t byte_budget, PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kDynamicProgramming:
      return dp_byte_budget(levels, byte_budget);
    case PlannerKind::kGreedy:
      return greedy_byte_budget(levels, byte_budget);
    case PlannerKind::kUniform:
      return uniform_byte_budget(levels, byte_budget);
  }
  throw std::invalid_argument("planner: unknown kind");
}

}  // namespace ipcomp
