// Pluggable progressive backends.
//
// IPComp's container/retrieval machinery — bitplane segments, level planning,
// per-block decode, region-of-interest blocks — is not specific to the
// interpolation predictor.  A ProgressiveBackend owns the parts that are:
// the per-block transform -> quantize -> bitplane encode pipeline on the
// write side, and code -> field reconstruction plus the per-level error
// amplification used for plane planning on the read side.  Everything else
// (archive layout, base-segment format, plane codecs, the DP plane planner,
// block scheduling) is shared by all backends.
//
// Backends are stateless singletons looked up through a registry keyed by
// the BackendId stored in the archive header (v3; the interpolation backend
// keeps writing the self-describing v1/v2 layouts).  A backend may also
// store one auxiliary segment per block (kSegAux) fetched alongside the base
// segments, and an opaque metadata blob in v3 headers that it validates and
// interprets itself.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitplane/bitplane.hpp"
#include "core/header.hpp"
#include "core/options.hpp"
#include "io/archive.hpp"
#include "loader/error_model.hpp"
#include "util/dims.hpp"

namespace ipcomp {

const char* to_string(BackendId id);

/// One level's quantized codes and outliers during compression, before
/// serialization.  Outliers are (slot -> exact value) pairs whose meaning is
/// backend-defined (interp: raw data value; wavelet: raw coefficient).
struct LevelScratch {
  std::vector<std::uint32_t> codes;  // negabinary
  std::vector<std::pair<std::uint64_t, double>> outliers;
};

/// One block's compressed output: its level table plus its segments in
/// deterministic order.  Blocks are assembled concurrently into a pre-sized
/// vector indexed by block ordinal, so the archive layout is byte-identical
/// regardless of thread count.
struct BlockCompressResult {
  std::vector<LevelHeader> levels;
  std::vector<std::pair<SegmentId, Bytes>> segments;
};

/// Decode-side view of one block handed to backend reconstruction: the
/// (possibly partial) negabinary codes, the outlier table decoded from the
/// base segments, and the backend's auxiliary segment payload if any.
struct BlockCodes {
  Dims dims;               // block extents
  std::size_t origin = 0;  // element offset of the block origin in the field
  std::vector<std::vector<std::uint32_t>> codes;  // [level][slot]
  std::vector<Bytes> outlier_bitmap;              // [level], maybe empty
  std::vector<std::unordered_map<std::size_t, double>> outlier_value;
  Bytes aux;  // kSegAux payload (empty unless the backend stores one)
};

/// Outlier lookup shared by backend reconstructions (hot path: inline).
inline bool block_outlier(const BlockCodes& bc, unsigned li, std::size_t slot,
                          double& value) {
  const Bytes& bm = bc.outlier_bitmap[li];
  if (bm.empty() || !((bm[slot >> 3] >> (slot & 7)) & 1u)) return false;
  value = bc.outlier_value[li].at(slot);
  return true;
}

/// Thread contract: const-safe and stateless.  Implementations hold no
/// mutable members, so one registered instance serves every thread; the
/// compress/reconstruct/refine hooks run concurrently across blocks and
/// across independent compressions, and must stay reentrant (block-local
/// scratch only — see compress_block).
class ProgressiveBackend {
 public:
  virtual ~ProgressiveBackend() = default;

  virtual BackendId id() const = 0;
  virtual const char* name() const = 0;

  /// Expected per-level slot counts for one block (index 0 = finest level).
  /// Readers validate the header's level tables against this.
  virtual std::vector<std::uint64_t> level_counts(const Dims& block_dims) const = 0;

  /// Whether blocks carry an auxiliary segment (kSegAux, plane 0, level 0)
  /// that must be fetched with the base segments.
  virtual bool has_aux_segment() const = 0;

  /// Whether compress_block() reads/writes the `work` buffer (a mutable copy
  /// of the field).  Backends that transform into their own scratch return
  /// false and the driver skips the field-sized copy entirely.
  virtual bool needs_work_buffer() const { return true; }

  /// Whether refine() consumes the per-level delta code arrays.  Backends
  /// that rebuild from the updated codes return false and the reader skips
  /// assembling the deltas (one allocation + deposit pass per plane).
  virtual bool wants_delta() const { return true; }

  /// Opaque metadata stored in v3 headers (empty for v1/v2 backends).
  virtual Bytes metadata(const Header& h) const = 0;
  /// Validate a parsed metadata blob; throws std::runtime_error on a forged
  /// or truncated blob.  Called once per reader construction.
  virtual void validate_metadata(const Header& h) const = 0;

  /// Amplification applied to level `l`'s (1-based, 1 = finest) truncation
  /// loss when planning retrievals and computing guaranteed errors.
  virtual double amplification(const Header& h, ErrorModel model,
                               unsigned l) const = 0;

  /// Compress one block.  `original` points at the block's origin element
  /// inside the enclosing field addressed by `estrides`; `work` is the
  /// matching mutable copy of the field the backend may overwrite (interp
  /// keeps its in-loop reconstruction there).  Runs concurrently across
  /// blocks: implementations must only touch their own block's elements.
  virtual BlockCompressResult compress_block(
      const float* original, float* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const = 0;
  virtual BlockCompressResult compress_block(
      const double* original, double* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const = 0;

  /// First reconstruction of one block from its (partial) codes, written
  /// into the enclosing field at the block's strided span.
  virtual void reconstruct(const Header& h, const BlockCodes& bc,
                           float* field) const = 0;
  virtual void reconstruct(const Header& h, const BlockCodes& bc,
                           double* field) const = 0;

  /// Incremental refinement after new planes were deposited into bc.codes.
  /// `delta[li]` holds exactly the newly added code bits (empty vector =
  /// nothing new at that level; the whole vector is empty when wants_delta()
  /// is false).  Must leave the block's span of `field` in (numerically
  /// near-)identical state to a fresh reconstruct() from the updated codes.
  virtual void refine(const Header& h, const BlockCodes& bc,
                      const std::vector<std::vector<std::uint32_t>>& delta,
                      float* field) const = 0;
  virtual void refine(const Header& h, const BlockCodes& bc,
                      const std::vector<std::vector<std::uint32_t>>& delta,
                      double* field) const = 0;
};

/// Registry lookup; throws std::runtime_error for an unregistered id.
/// Internally-synchronized: safe from any thread, including concurrent
/// first-touch (the registry is built under magic-static initialization).
const ProgressiveBackend& backend_for(BackendId id);

/// Name lookup ("interp", "wavelet"); nullptr when unknown.  Same thread
/// contract as backend_for.
const ProgressiveBackend* backend_by_name(const std::string& name);

// ---- helpers shared by backend implementations --------------------------

/// Serialize one level's base segment: the delta-coded outlier list plus,
/// for solid (non-progressive) levels, the whole code array through the
/// codec.  The scratch's outliers must already be sorted by slot.
Bytes serialize_base_segment(const LevelScratch& ls, bool progressive,
                             CodecPolicy codec);

/// Pack a progressive level's pre-split planes (from encode_level's fused
/// pass) into per-plane segments — predictive XOR against `codes` + codec,
/// planes packed independently and concurrently — appended to `out` in
/// table order k = 0 .. planes.size()-1.
void append_plane_segments(const std::vector<std::uint32_t>& codes,
                           std::vector<PlaneBits>&& planes,
                           std::uint16_t level_tag, std::uint32_t block,
                           const Options& opt,
                           std::vector<std::pair<SegmentId, Bytes>>& out);

}  // namespace ipcomp
