// Block decomposition of an N-d field (archive format v2).
//
// A BlockGrid partitions a field into axis-aligned cubes of side `block_side`
// (edge blocks are clipped to the field boundary).  Blocks are compressed and
// decoded independently — each runs its own level analysis and interpolation
// sweep over a strided sub-view of the field — which is what lets the
// pipeline parallelize across blocks and lets readers serve region-of-
// interest requests by touching only the blocks that intersect the region.
//
// Block ordinals are row-major over the block grid (slowest-varying dimension
// first, like element order), so block numbering — and with it the archive
// segment order — is deterministic and independent of thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "util/dims.hpp"

namespace ipcomp {

/// Element offset within the enclosing field of dense line `line` of a block
/// with extents `bd`, where lines run along the (contiguous) last dimension.
/// Shared by every backend's dense-buffer <-> strided-field walks.
inline std::size_t block_line_offset(
    const Dims& bd, const std::array<std::size_t, kMaxRank>& field_strides,
    std::size_t line) {
  std::size_t rem = line;
  std::size_t off = 0;
  for (std::size_t j = bd.rank() - 1; j-- > 0;) {
    off += (rem % bd[j]) * field_strides[j];
    rem /= bd[j];
  }
  return off;
}

struct BlockGrid {
  Dims field_dims;
  std::size_t block_side = 0;  // 0 = single block covering the whole field
  std::size_t n_blocks = 1;
  std::array<std::size_t, kMaxRank> grid{};  // blocks per dimension

  /// Derive the grid for a field.  `block_side` 0 yields the legacy single
  /// whole-field block; 1 is rejected (every element its own block defeats
  /// interpolation entirely).
  static BlockGrid analyze(const Dims& dims, std::size_t block_side) {
    if (block_side == 1) {
      throw std::invalid_argument("ipcomp: block_side must be 0 (off) or >= 2");
    }
    BlockGrid g;
    g.field_dims = dims;
    g.block_side = block_side;
    g.n_blocks = 1;
    for (std::size_t i = 0; i < dims.rank(); ++i) {
      // Overflow-safe ceil-divide: dims[i] + block_side - 1 can wrap for a
      // huge block_side and would silently yield a zero-block grid.
      g.grid[i] = block_side == 0
                      ? 1
                      : dims[i] / block_side + (dims[i] % block_side != 0);
      // The product must not wrap either: forged headers with huge dims and
      // a tiny block side could otherwise alias to a small (even zero) block
      // count and slip past the table-matches-geometry check in parse.
      if (g.grid[i] != 0 && g.n_blocks > SIZE_MAX / g.grid[i]) {
        throw std::runtime_error("ipcomp: block grid too large");
      }
      g.n_blocks *= g.grid[i];
    }
    return g;
  }

  /// Block-grid coordinate of block ordinal `b` (row-major).
  std::array<std::size_t, kMaxRank> block_coord(std::size_t b) const {
    std::array<std::size_t, kMaxRank> c{};
    for (std::size_t i = field_dims.rank(); i-- > 0;) {
      c[i] = b % grid[i];
      b /= grid[i];
    }
    return c;
  }

  /// Element coordinate of the block's origin corner.
  std::array<std::size_t, kMaxRank> block_origin(std::size_t b) const {
    auto c = block_coord(b);
    for (std::size_t i = 0; i < field_dims.rank(); ++i) c[i] *= block_side;
    return c;
  }

  /// Linear element offset of the block's origin within the field.
  std::size_t origin_linear(std::size_t b) const {
    return block_side == 0 ? 0 : field_dims.linear(block_origin(b));
  }

  /// Extents of block `b`, clipped at the field boundary.
  Dims block_dims(std::size_t b) const {
    if (block_side == 0) return field_dims;
    auto origin = block_origin(b);
    std::size_t extents[kMaxRank];
    for (std::size_t i = 0; i < field_dims.rank(); ++i) {
      extents[i] = std::min(block_side, field_dims[i] - origin[i]);
    }
    return Dims::of_rank(field_dims.rank(), extents);
  }

  /// Does block `b` intersect the half-open region [lo, hi)?
  bool intersects(std::size_t b, const std::array<std::size_t, kMaxRank>& lo,
                  const std::array<std::size_t, kMaxRank>& hi) const {
    auto origin = block_origin(b);
    Dims bd = block_dims(b);
    for (std::size_t i = 0; i < field_dims.rank(); ++i) {
      if (origin[i] >= hi[i] || origin[i] + bd[i] <= lo[i]) return false;
    }
    return true;
  }
};

}  // namespace ipcomp
