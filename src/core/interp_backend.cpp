#include "core/interp_backend.hpp"

#include <algorithm>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "core/blocks.hpp"
#include "interp/sweep.hpp"
#include "quant/quantizer.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace ipcomp {

namespace {

/// Full per-block pipeline: interpolation sweep (in-loop quantization) →
/// negabinary codes + outliers → bitplane split → predictive XOR → codec.
/// `original` and `work` point at the block's origin element; `estrides` are
/// the strides of the enclosing field, so the sweep addresses the block as a
/// strided sub-view in place.
template <typename T>
BlockCompressResult compress_impl(const T* original, T* work,
                                  const Dims& block_dims,
                                  const std::array<std::size_t, kMaxRank>& estrides,
                                  double eb, const Options& opt,
                                  std::uint32_t block) {
  const LevelStructure ls = LevelStructure::analyze(block_dims);
  const unsigned L = ls.num_levels;
  const LinearQuantizer quant(eb);

  std::vector<LevelScratch> levels(L);
  for (unsigned li = 0; li < L; ++li) {
    levels[li].codes.assign(ls.level_count[li], 0);
  }

  // Outlier lists are per block; the mutex only matters in whole-field mode,
  // where the sweep's line loop is the parallel one.  In block mode the
  // nested-parallelism guard keeps this sweep serial and the lock free.
  Mutex outlier_mutex;

  // In-loop quantization: the working buffer holds reconstructed values so
  // predictions see exactly what decompression will see.
  interpolation_sweep_strided(
      work, ls, opt.interp, estrides,
      [&](unsigned li, std::size_t slot, std::size_t idx, T pred) -> T {
        std::int64_t code;
        T recon;
        if (quant.quantize(original[idx], pred, code, recon)) {
          levels[li].codes[slot] = negabinary_encode(code);
          return recon;
        }
        {
          LockGuard lock(outlier_mutex);
          levels[li].outliers.emplace_back(slot,
                                           static_cast<double>(original[idx]));
        }
        return original[idx];
      });

  BlockCompressResult out;
  out.levels.resize(L);

  for (unsigned li = 0; li < L; ++li) {
    LevelScratch& scratch = levels[li];
    // Slots are unique per level, so sorting makes the outlier order (and
    // with it the serialized bytes) independent of sweep scheduling.
    std::sort(scratch.outliers.begin(), scratch.outliers.end());
    LevelHeader& lh = out.levels[li];
    lh.count = scratch.codes.size();
    lh.outlier_count = scratch.outliers.size();
    lh.progressive = scratch.codes.size() >= opt.progressive_threshold;

    const std::uint16_t level_tag = static_cast<std::uint16_t>(li + 1);
    if (!lh.progressive) {
      lh.n_planes = 0;
      lh.loss.assign(1, 0);
      out.segments.emplace_back(
          SegmentId{kSegBase, level_tag, 0, block},
          serialize_base_segment(scratch, false, opt.codec));
      continue;
    }

    // Fused pass: plane count, exact truncation-loss table and the plane
    // split all come out of one tiled sweep over the codes.
    LevelEncoding enc = encode_level(scratch.codes, /*with_loss=*/true);
    lh.n_planes = enc.n_planes;
    lh.loss.resize(enc.n_planes + 1);
    for (unsigned d = 0; d <= enc.n_planes; ++d) {
      lh.loss[d] = static_cast<std::uint64_t>(enc.loss[d]);
    }

    out.segments.emplace_back(
        SegmentId{kSegBase, level_tag, 0, block},
        serialize_base_segment(scratch, true, opt.codec));

    append_plane_segments(scratch.codes, std::move(enc.planes), level_tag,
                          block, opt, out.segments);
  }
  return out;
}

/// First reconstruction: a full sweep from the (partial) codes, outliers
/// restored exactly (Algorithm 1).
template <typename T>
void reconstruct_impl(const Header& h, const BlockCodes& bc, T* field) {
  const LevelStructure ls = LevelStructure::analyze(bc.dims);
  const LinearQuantizer quant(h.eb);
  interpolation_sweep_strided(
      field + bc.origin, ls, h.interp, h.dims.strides(),
      [&](unsigned li, std::size_t slot, std::size_t /*idx*/, T pred) -> T {
        double raw;
        if (block_outlier(bc, li, slot, raw)) return static_cast<T>(raw);
        return quant.dequantize(pred, negabinary_decode(bc.codes[li][slot]));
      });
}

/// Refinement: sweep only the newly added code bits into a block-local
/// dense delta buffer, then add it onto the block's strided span of the
/// field — the cost stays proportional to the block, not the field (matters
/// for region-scoped requests).  Always swept in double so incremental refinement of
/// float archives loses at most one rounding at the final addition.
template <typename T>
void refine_impl(const Header& h, const BlockCodes& bc,
                 const std::vector<std::vector<std::uint32_t>>& delta,
                 T* field) {
  const LevelStructure ls = LevelStructure::analyze(bc.dims);
  const double step = 2.0 * h.eb;
  std::vector<double> dblock(ls.dims.count(), 0.0);
  interpolation_sweep(
      dblock.data(), ls, h.interp,
      [&](unsigned li, std::size_t slot, std::size_t /*idx*/,
          double pred) -> double {
        double raw;
        if (block_outlier(bc, li, slot, raw)) return 0.0;  // outliers are exact
        if (delta[li].empty()) {
          return pred;  // no new bits at this level
        }
        const double dy =
            static_cast<double>(negabinary_decode(delta[li][slot])) * step;
        return pred + dy;
      });

  const auto field_strides = h.dims.strides();
  const Dims& bd = ls.dims;
  const std::size_t row = bd[bd.rank() - 1];  // contiguous in the field too
  const std::size_t lines = bd.count() / row;
  parallel_for(0, lines, [&](std::size_t line) {
    const double* src = dblock.data() + line * row;
    T* dst = field + bc.origin + block_line_offset(bd, field_strides, line);
    for (std::size_t i = 0; i < row; ++i) {
      dst[i] = static_cast<T>(static_cast<double>(dst[i]) + src[i]);
    }
  }, /*grain=*/std::max<std::size_t>(1, 32768 / row));
}

}  // namespace

std::vector<std::uint64_t> InterpBackend::level_counts(
    const Dims& block_dims) const {
  const LevelStructure ls = LevelStructure::analyze(block_dims);
  return {ls.level_count.begin(), ls.level_count.end()};
}

double InterpBackend::amplification(const Header& h, ErrorModel model,
                                    unsigned l) const {
  return level_amplification(model, h.interp,
                             static_cast<unsigned>(h.dims.rank()), l);
}

BlockCompressResult InterpBackend::compress_block(
    const float* original, float* work, const Dims& block_dims,
    const std::array<std::size_t, kMaxRank>& estrides, double eb,
    const Options& opt, std::uint32_t block) const {
  return compress_impl(original, work, block_dims, estrides, eb, opt, block);
}

BlockCompressResult InterpBackend::compress_block(
    const double* original, double* work, const Dims& block_dims,
    const std::array<std::size_t, kMaxRank>& estrides, double eb,
    const Options& opt, std::uint32_t block) const {
  return compress_impl(original, work, block_dims, estrides, eb, opt, block);
}

void InterpBackend::reconstruct(const Header& h, const BlockCodes& bc,
                                float* field) const {
  reconstruct_impl(h, bc, field);
}

void InterpBackend::reconstruct(const Header& h, const BlockCodes& bc,
                                double* field) const {
  reconstruct_impl(h, bc, field);
}

void InterpBackend::refine(const Header& h, const BlockCodes& bc,
                           const std::vector<std::vector<std::uint32_t>>& delta,
                           float* field) const {
  refine_impl(h, bc, delta, field);
}

void InterpBackend::refine(const Header& h, const BlockCodes& bc,
                           const std::vector<std::vector<std::uint32_t>>& delta,
                           double* field) const {
  refine_impl(h, bc, delta, field);
}

}  // namespace ipcomp
