// IPComp compression driver (paper §4).
//
// original → per-block ProgressiveBackend pipeline (Options::backend;
// interp = interpolation predictor with in-loop quantization, wavelet =
// CDF 9/7 transform; both end in per-level negabinary codes + outliers →
// bitplane split → predictive XOR → per-plane codec) → segmented archive.
// The driver owns what is backend-agnostic: bound resolution, block
// decomposition and scheduling, header assembly, container versioning.
#pragma once

#include "core/options.hpp"
#include "io/bytes.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

/// Compress a field into a serialized progressive archive.
///
/// Thread contract: internally-synchronized — safe to call concurrently from
/// any number of threads over distinct (or even shared, read-only) inputs.
/// All state is on the stack or owned by the call; the only shared structures
/// touched are the backend registry (magic statics) and the SIMD dispatch
/// level, both internally-synchronized.  Raced against itself by
/// tests/test_concurrency.cpp under TSan, with byte-identical output checked
/// against a serial run.
template <typename T>
Bytes compress(NdConstView<T> input, const Options& opt = {});

/// The absolute error bound compression would use for this input/options
/// (resolves relative bounds against the data range).
template <typename T>
double resolve_error_bound(NdConstView<T> input, const Options& opt);

/// Same, with the data range already known.  Validates the configured bound
/// before using it; this is the single place the bound logic lives.
double resolve_error_bound(const Options& opt, double data_min, double data_max);

}  // namespace ipcomp
