// IPComp compression pipeline (paper §4).
//
// original → interpolation predictor (in-loop quantization, per-level
// negabinary codes + outliers) → per-level bitplane split → predictive XOR
// coding → per-plane codec → segmented archive.
#pragma once

#include "core/options.hpp"
#include "io/bytes.hpp"
#include "util/ndarray.hpp"

namespace ipcomp {

/// Compress a field into a serialized progressive archive.
template <typename T>
Bytes compress(NdConstView<T> input, const Options& opt = {});

/// The absolute error bound compression would use for this input/options
/// (resolves relative bounds against the data range).
template <typename T>
double resolve_error_bound(NdConstView<T> input, const Options& opt);

/// Same, with the data range already known.  Validates the configured bound
/// before using it; this is the single place the bound logic lives.
double resolve_error_bound(const Options& opt, double data_min, double data_max);

}  // namespace ipcomp
