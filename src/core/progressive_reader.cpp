#include "core/progressive_reader.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "bitplane/bitplane.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

void bitmap_set(Bytes& bm, std::size_t i) {
  bm[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
}

}  // namespace

template <typename T>
ProgressiveReader<T>::ProgressiveReader(SegmentSource& src, ReaderConfig cfg)
    : src_(src), cfg_(cfg) {
  const std::size_t at_open = src_.stats().bytes_read;
  header_ = Header::parse(src_.header());
  unattributed_open_cost_ = src_.stats().bytes_read - at_open;
  if (header_.dtype != data_type_of<T>()) {
    throw std::runtime_error("ProgressiveReader: archive value type mismatch");
  }
  // Each container version carries exactly one header layout (v1 whole-field
  // interp, v2 block interp, v3 backend-tagged); a mismatch means a forged
  // or corrupted stream.
  const std::uint32_t container = src_.version();
  if (container != header_.format) {
    throw std::runtime_error(
        "ProgressiveReader: header/container version mismatch");
  }
  backend_ = &backend_for(header_.backend);
  backend_->validate_metadata(header_);
  if (container >= kArchiveV3) {
    // The backend defines which segment kinds may exist; anything else means
    // the header's backend id does not match the payload.
    for (const SegmentId& id : src_.segment_ids()) {
      const bool known = id.kind == kSegBase || id.kind == kSegPlane ||
                         (id.kind == kSegAux && backend_->has_aux_segment());
      if (!known) {
        throw std::runtime_error(
            "ProgressiveReader: segment kind not recognized by backend");
      }
    }
  }
  grid_ = BlockGrid::analyze(header_.dims, header_.block_side);
  if (header_.block_side == 0) {
    if (!header_.block_levels.empty()) {
      throw std::runtime_error("ProgressiveReader: unexpected block table");
    }
  } else if (header_.block_levels.size() != grid_.n_blocks) {
    throw std::runtime_error("ProgressiveReader: block table size mismatch");
  }

  blocks_.resize(grid_.n_blocks);
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    BlockState& bs = blocks_[b];
    bs.bc.dims = grid_.block_dims(b);
    bs.bc.origin = grid_.origin_linear(b);
    const auto counts = backend_->level_counts(bs.bc.dims);
    const auto& levels = levels_of(b);
    if (counts.size() != levels.size()) {
      throw std::runtime_error("ProgressiveReader: level count mismatch");
    }
    for (unsigned li = 0; li < counts.size(); ++li) {
      if (counts[li] != levels[li].count) {
        throw std::runtime_error("ProgressiveReader: level size mismatch");
      }
    }
    const unsigned L = static_cast<unsigned>(levels.size());
    bs.bc.codes.resize(L);
    bs.planes_used.assign(L, 0);
    bs.bc.outlier_bitmap.resize(L);
    bs.bc.outlier_value.resize(L);
    n_levels_ = std::max(n_levels_, L);
  }

  agg_planes_.assign(n_levels_, 0);
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    const auto& levels = levels_of(b);
    for (unsigned li = 0; li < levels.size(); ++li) {
      if (levels[li].progressive) {
        agg_planes_[li] = std::max(agg_planes_[li], levels[li].n_planes);
      }
    }
  }
  planes_used_.assign(n_levels_, 0);

  agg_plane_size_.resize(n_levels_);
  fetched_plane_bytes_.resize(n_levels_);
  for (unsigned li = 0; li < n_levels_; ++li) {
    agg_plane_size_[li].assign(agg_planes_[li], 0);
    fetched_plane_bytes_[li].assign(agg_planes_[li], 0);
  }
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    const auto& levels = levels_of(b);
    for (unsigned li = 0; li < levels.size(); ++li) {
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      for (unsigned k = 0; k < lh.n_planes; ++k) {
        agg_plane_size_[li][k] += src_.segment_size(
            {kSegPlane, static_cast<std::uint16_t>(li + 1), k,
             static_cast<std::uint32_t>(b)});
      }
    }
  }
}

template <typename T>
void ProgressiveReader<T>::decode_base(std::size_t b, FetchedBlock& fetched) {
  BlockState& bs = blocks_[b];
  const auto& levels = levels_of(b);
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    bs.bc.codes[li].assign(lh.count, 0);
    const Bytes& seg = fetched.base[li];
    ByteReader r({seg.data(), seg.size()});
    std::size_t n_out = r.varint();
    if (n_out != lh.outlier_count) {
      throw std::runtime_error("reader: outlier count mismatch");
    }
    if (n_out > 0) {
      bs.bc.outlier_bitmap[li].assign(plane_bytes(lh.count), 0);
      std::size_t slot = 0;
      for (std::size_t i = 0; i < n_out; ++i) {
        slot += r.varint();
        double value = r.f64();
        if (slot >= lh.count) {
          throw std::runtime_error("reader: outlier slot out of range");
        }
        bitmap_set(bs.bc.outlier_bitmap[li], slot);
        bs.bc.outlier_value[li][slot] = value;
      }
    }
    if (!lh.progressive) {
      std::size_t packed_size = r.varint();
      auto packed = r.bytes(packed_size);
      Bytes raw = codec_decompress(packed, lh.count * 4);
      for (std::size_t i = 0; i < lh.count; ++i) {
        bs.bc.codes[li][i] = static_cast<std::uint32_t>(raw[4 * i]) |
                             static_cast<std::uint32_t>(raw[4 * i + 1]) << 8 |
                             static_cast<std::uint32_t>(raw[4 * i + 2]) << 16 |
                             static_cast<std::uint32_t>(raw[4 * i + 3]) << 24;
      }
    }
  }
  bs.bc.aux = std::move(fetched.aux);
  bs.base_loaded = true;
}

template <typename T>
std::vector<unsigned> ProgressiveReader<T>::block_targets(
    std::size_t b, const std::vector<unsigned>& axis,
    const std::vector<unsigned>& depths) const {
  const auto& levels = levels_of(b);
  std::vector<unsigned> targets(levels.size(), 0);
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    // The axis counts planes from the top of the deepest in-scope block at
    // this level; a shallower block's missing high planes are all-zero, so
    // "use u of D" translates to dropping d = D − u of its lowest planes.
    const unsigned D = depths[li];
    const unsigned u = std::min(axis[li], D);
    const unsigned d = D - u;
    targets[li] = lh.n_planes - std::min(d, lh.n_planes);
  }
  return targets;
}

template <typename T>
void ProgressiveReader<T>::plan_block_base(std::size_t b,
                                           std::vector<SegmentId>& out) const {
  if (blocks_[b].base_loaded) return;
  const auto& levels = levels_of(b);
  for (unsigned li = 0; li < levels.size(); ++li) {
    out.push_back({kSegBase, static_cast<std::uint16_t>(li + 1), 0,
                   static_cast<std::uint32_t>(b)});
  }
  if (backend_->has_aux_segment()) {
    out.push_back({kSegAux, 0, 0, static_cast<std::uint32_t>(b)});
  }
}

template <typename T>
void ProgressiveReader<T>::plan_block_planes(
    std::size_t b, const std::vector<unsigned>& targets,
    std::vector<SegmentId>& out) const {
  const auto& levels = levels_of(b);
  const BlockState& bs = blocks_[b];
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    const unsigned target = std::min(targets[li], lh.n_planes);
    // Planes are indexed by absolute bit position: using `u` planes from the
    // top means planes [n_planes - u, n_planes), fetched MSB-first so the
    // predictive XOR prefix bits are always resident before a plane decodes.
    for (unsigned used = bs.planes_used[li] + 1; used <= target; ++used) {
      out.push_back({kSegPlane, static_cast<std::uint16_t>(li + 1),
                     lh.n_planes - used, static_cast<std::uint32_t>(b)});
    }
  }
}

template <typename T>
void ProgressiveReader<T>::decode_and_reconstruct(std::size_t b,
                                                  FetchedBlock& fetched) {
  BlockState& bs = blocks_[b];
  const auto& levels = levels_of(b);
  std::vector<std::vector<std::uint32_t>> delta;
  if (bs.have_recon && !fetched.planes.empty() && backend_->wants_delta()) {
    delta.resize(levels.size());
  }

  // All newly fetched planes of a level go through one batch: decompress,
  // predictive-decode MSB-first on the packed buffers, then a single
  // multi-plane transpose deposit into the codes (and delta) instead of one
  // full pass per plane.  Only the compressed segments are grouped up front;
  // decoded plane buffers live one level at a time.
  std::vector<std::vector<std::pair<unsigned, Bytes>>> by_level(levels.size());
  for (auto& [li, k, seg] : fetched.planes) {
    by_level[li].emplace_back(k, std::move(seg));
  }
  for (unsigned li = 0; li < levels.size(); ++li) {
    auto& newp = by_level[li];
    if (newp.empty()) continue;
    const LevelHeader& lh = levels[li];
    // Plans emit planes MSB-first; sort defensively so decode order (which
    // predictive decoding relies on) never depends on fetch-list layout.
    std::sort(newp.begin(), newp.end(),
              [](const auto& a, const auto& b2) { return a.first > b2.first; });
    for (auto& [k, seg] : newp) {
      seg = codec_decompress({seg.data(), seg.size()}, plane_bytes(lh.count));
    }
    if (header_.prefix_bits != 0) {
      std::vector<MutablePlane> mut(newp.size());
      for (std::size_t i = 0; i < newp.size(); ++i) {
        mut[i] = {newp[i].first, {newp[i].second.data(), newp[i].second.size()}};
      }
      predictive_decode_planes(bs.bc.codes[li], mut, header_.prefix_bits);
    }
    std::vector<PlaneSpan> spans(newp.size());
    for (std::size_t i = 0; i < newp.size(); ++i) {
      spans[i] = {newp[i].first, {newp[i].second.data(), newp[i].second.size()}};
    }
    deposit_planes(bs.bc.codes[li], spans);
    if (!delta.empty()) {
      delta[li].assign(lh.count, 0);
      deposit_planes(delta[li], spans);
    }
    bs.planes_used[li] =
        std::max(bs.planes_used[li], lh.n_planes - newp.back().first);
    // Release this level's decoded plane buffers before the next level's
    // are inflated: transient memory stays one level deep.
    std::vector<std::pair<unsigned, Bytes>>().swap(newp);
  }

  if (!bs.have_recon) {
    backend_->reconstruct(header_, bs.bc, xhat_.data());
    bs.have_recon = true;
    return;
  }
  if (fetched.planes.empty()) return;
  backend_->refine(header_, bs.bc, delta, xhat_.data());
}

template <typename T>
std::vector<LevelPlanInput> ProgressiveReader<T>::planner_inputs() const {
  const double step = 2.0 * header_.eb;
  std::vector<LevelPlanInput> inputs(n_levels_);
  for (unsigned li = 0; li < n_levels_; ++li) {
    const unsigned D = agg_planes_[li];
    LevelPlanInput& in = inputs[li];
    if (D == 0) {
      in.err.assign(1, 0.0);
      in.already_loaded = 0;
      continue;
    }
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    // Aggregate the level across blocks: plane sizes sum (fetching global
    // plane k touches every block that stores it), truncation losses max
    // (the field's L∞ error is the worst block's).  Bytes already fetched —
    // including blocks region requests pushed past the global floor — are
    // sunk cost: pricing them again would make byte budgets under-fetch.
    in.plane_size.resize(D);
    for (unsigned k = 0; k < D; ++k) {
      in.plane_size[k] = agg_plane_size_[li][k] - fetched_plane_bytes_[li][k];
    }
    in.err.assign(D + 1, 0.0);
    for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      for (unsigned d = 0; d <= D; ++d) {
        const double e =
            amp * static_cast<double>(lh.loss[std::min(d, lh.n_planes)]) * step;
        in.err[d] = std::max(in.err[d], e);
      }
    }
    in.already_loaded = planes_used_[li];
  }
  return inputs;
}

template <typename T>
void ProgressiveReader<T>::region_axis(
    const std::vector<std::uint32_t>& blocks, std::vector<unsigned>& depths,
    std::vector<unsigned>& floor, std::vector<LevelPlanInput>& inputs) const {
  const double step = 2.0 * header_.eb;
  depths.assign(n_levels_, 0);
  floor.assign(n_levels_, 0);
  for (std::uint32_t b : blocks) {
    const auto& levels = levels_of(b);
    for (unsigned li = 0; li < levels.size(); ++li) {
      if (levels[li].progressive) {
        depths[li] = std::max(depths[li], levels[li].n_planes);
      }
    }
  }
  inputs.assign(n_levels_, {});
  for (unsigned li = 0; li < n_levels_; ++li) {
    const unsigned D = depths[li];
    LevelPlanInput& in = inputs[li];
    if (D == 0) {
      in.err.assign(1, 0.0);
      in.already_loaded = 0;
      continue;
    }
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    in.plane_size.assign(D, 0);
    in.err.assign(D + 1, 0.0);
    // The axis aligns plane indices at the LSB of the deepest in-scope block
    // (axis plane k maps to block plane k; shallower blocks simply lack the
    // high ones), so per-block sizes and losses aggregate slot-by-slot.
    // Unlike the whole-field path, residency is per block: segments a block
    // already holds — from any earlier request, uniform or region — cost
    // nothing, and the floor is the worst (lowest) block's.
    unsigned fl = D;
    for (std::uint32_t b : blocks) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      const unsigned used = blocks_[b].planes_used[li];
      fl = std::min(fl, used + (D - lh.n_planes));
      for (unsigned k = 0; k < lh.n_planes; ++k) {
        const bool resident = k >= lh.n_planes - used;
        if (!resident) {
          in.plane_size[k] += src_.segment_size(
              {kSegPlane, static_cast<std::uint16_t>(li + 1), k, b});
        }
      }
      for (unsigned d = 0; d <= D; ++d) {
        const double e =
            amp * static_cast<double>(lh.loss[std::min(d, lh.n_planes)]) * step;
        in.err[d] = std::max(in.err[d], e);
      }
    }
    floor[li] = fl;
    in.already_loaded = fl;
  }
}

template <typename T>
RetrievalStats ProgressiveReader<T>::finish_stats(std::size_t before) {
  RetrievalStats st;
  st.guaranteed_error = current_guaranteed_error();
  st.bytes_total = src_.stats().bytes_read;
  st.bytes_new = st.bytes_total - before;
  st.bitrate = 8.0 * static_cast<double>(st.bytes_total) /
               static_cast<double>(header_.dims.count());
  return st;
}

template <typename T>
double ProgressiveReader<T>::guarantee_for(
    const std::vector<unsigned>& floor) const {
  const double step = 2.0 * header_.eb;
  double err = header_.eb;
  for (unsigned li = 0; li < n_levels_; ++li) {
    const unsigned D = agg_planes_[li];
    if (D == 0) continue;
    const unsigned d = D - std::min(floor[li], D);
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    double worst = 0.0;
    for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      worst = std::max(
          worst, static_cast<double>(lh.loss[std::min(d, lh.n_planes)]));
    }
    err += amp * worst * step;
  }
  return err;
}

template <typename T>
double ProgressiveReader<T>::current_guaranteed_error() const {
  return guarantee_for(planes_used_);
}

template <typename T>
double ProgressiveReader<T>::region_guarantee(
    const std::vector<std::uint32_t>& blocks,
    const std::vector<unsigned>* axis_targets,
    const std::vector<unsigned>* depths) const {
  const double step = 2.0 * header_.eb;
  double err = header_.eb;
  for (unsigned li = 0; li < n_levels_; ++li) {
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    double worst = 0.0;
    bool any = false;
    for (std::uint32_t b : blocks) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      unsigned used = blocks_[b].planes_used[li];
      if (axis_targets) {
        const unsigned D = (*depths)[li];
        const unsigned d = D - std::min((*axis_targets)[li], D);
        used = std::max(used, lh.n_planes - std::min(d, lh.n_planes));
      }
      worst = std::max(worst,
                       static_cast<double>(lh.loss[lh.n_planes - used]));
      any = true;
    }
    if (any) err += amp * worst * step;
  }
  return err;
}

template <typename T>
RetrievalPlan ProgressiveReader<T>::plan(const Request& req) const {
  RetrievalPlan p;
  p.request = req;
  p.epoch = epoch_;
  p.region_scoped = req.region.has_value();
  if (p.region_scoped) {
    const RegionBox& box = *req.region;
    for (std::size_t i = 0; i < header_.dims.rank(); ++i) {
      if (box.lo[i] >= box.hi[i] || box.hi[i] > header_.dims[i]) {
        throw std::invalid_argument("plan: bad region bounds");
      }
    }
  }
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    if (!p.region_scoped ||
        grid_.intersects(b, req.region->lo, req.region->hi)) {
      p.blocks.push_back(static_cast<std::uint32_t>(b));
    }
  }

  // Base (+aux) segments are mandatory: their bytes come off byte budgets
  // before any plane is priced, exactly as the legacy paths charged them.
  std::vector<SegmentId> base_segs;
  for (std::uint32_t b : p.blocks) plan_block_base(b, base_segs);
  std::uint64_t base_bytes = 0;
  for (const SegmentId& id : base_segs) base_bytes += src_.segment_size(id);

  // Planner axis + inputs: the whole-field aggregates for uniform plans, the
  // intersecting-blocks aggregates for region plans.
  std::vector<unsigned> depths, floor;
  std::vector<LevelPlanInput> inputs;
  if (!p.region_scoped) {
    depths = agg_planes_;
    floor = planes_used_;
    inputs = planner_inputs();
  } else {
    region_axis(p.blocks, depths, floor, inputs);
  }

  LoadPlan lp;
  if (std::holds_alternative<Request::Full>(req.target)) {
    lp.planes_to_use.assign(depths.begin(), depths.end());
  } else if (const auto* eb = std::get_if<Request::ErrorBound>(&req.target)) {
    lp = plan_error_bound(inputs, eb->target - header_.eb, cfg_.planner);
  } else {
    std::uint64_t budget = 0;
    if (const auto* bb = std::get_if<Request::ByteBudget>(&req.target)) {
      budget = bb->budget;
    } else {
      const auto& br = std::get<Request::Bitrate>(req.target);
      const double total_budget = br.bits_per_value *
                                  static_cast<double>(header_.dims.count()) /
                                  8.0;
      const double already = static_cast<double>(src_.stats().bytes_read);
      budget = total_budget > already
                   ? static_cast<std::uint64_t>(total_budget - already)
                   : 0;
    }
    const std::uint64_t remaining =
        budget > base_bytes ? budget - base_bytes : 0;
    lp = plan_byte_budget(inputs, remaining, cfg_.planner);
  }

  p.plane_targets.assign(n_levels_, 0);
  for (unsigned li = 0; li < n_levels_; ++li) {
    p.plane_targets[li] =
        std::min(std::max(lp.planes_to_use[li], floor[li]), depths[li]);
  }

  // Assemble the fetch list in the documented order: uniform plans list all
  // pending bases first, then planes per block; region plans interleave base
  // and planes per intersecting block.
  if (!p.region_scoped) {
    p.segments = std::move(base_segs);
    for (std::uint32_t b : p.blocks) {
      plan_block_planes(b, block_targets(b, p.plane_targets, depths),
                        p.segments);
    }
  } else {
    for (std::uint32_t b : p.blocks) {
      plan_block_base(b, p.segments);
      plan_block_planes(b, block_targets(b, p.plane_targets, depths),
                        p.segments);
    }
  }

  p.bytes_new = unattributed_open_cost_;
  for (const SegmentId& id : p.segments) p.bytes_new += src_.segment_size(id);
  p.guaranteed_error =
      p.region_scoped ? region_guarantee(p.blocks, &p.plane_targets, &depths)
                      : guarantee_for(p.plane_targets);
  return p;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::execute(const RetrievalPlan& p) {
  if (p.epoch != epoch_) {
    throw std::logic_error(
        "execute: stale plan (the reader advanced since plan() ran)");
  }
  if (mirror_) {
    throw std::logic_error(
        "execute: reader is a plan-pricing mirror (acknowledge() ran); it "
        "holds no decoded state to refine");
  }
  const std::size_t entry = src_.stats().bytes_read;

  // One bulk fetch for everything the plan names — base, aux and plane
  // segments across all blocks.  Sources that batch (FileSource coalesces
  // adjacent ranges) see the whole request at once.  State transitions only
  // after the fetch succeeds: a failed read leaves the epoch (the plan stays
  // retryable) and the open-cost attribution untouched.
  std::vector<Bytes> payloads = src_.read_many(p.segments);
  ++epoch_;
  // The construction-time header read is attributed to the first executed
  // request — even an empty one — so Σ bytes_new == bytes_total always.
  const std::size_t before = entry - unattributed_open_cost_;
  unattributed_open_cost_ = 0;

  std::vector<FetchedBlock> fetched(grid_.n_blocks);
  for (std::size_t i = 0; i < p.segments.size(); ++i) {
    const SegmentId& id = p.segments[i];
    FetchedBlock& fb = fetched[id.block];
    if (id.kind == kSegBase) {
      if (fb.base.empty()) fb.base.resize(levels_of(id.block).size());
      fb.base[id.level - 1] = std::move(payloads[i]);
      fb.has_base = true;
    } else if (id.kind == kSegAux) {
      fb.aux = std::move(payloads[i]);
    } else {
      fetched_plane_bytes_[id.level - 1][id.plane] += payloads[i].size();
      fb.planes.emplace_back(id.level - 1, id.plane, std::move(payloads[i]));
    }
  }

  if (xhat_.empty()) xhat_.assign(header_.dims.count(), T{});
  // Decode bases first (plane decoding reads the base codes), then fold the
  // new planes in and reconstruct; both passes run concurrently across
  // blocks, each block's inner loops serial (nested-parallelism guard), so
  // output is deterministic.
  parallel_for_ex(0, grid_.n_blocks, [&](std::size_t b) {
    if (fetched[b].has_base) decode_base(b, fetched[b]);
  }, /*grain=*/2);
  parallel_for_ex(0, p.blocks.size(), [&](std::size_t i) {
    decode_and_reconstruct(p.blocks[i], fetched[p.blocks[i]]);
  }, /*grain=*/2);

  if (!p.region_scoped) {
    // plane_targets was clamped against the floor at plan time, so this only
    // ever raises the uniform floor.  Region plans advance individual blocks
    // (tracked per block in decode_and_reconstruct), never the floor.
    planes_used_ = p.plane_targets;
  }
  RetrievalStats st = finish_stats(before);
  if (p.region_scoped) {
    st.guaranteed_error = region_guarantee(p.blocks, nullptr, nullptr);
  }
  return st;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::acknowledge(const RetrievalPlan& p) {
  if (p.epoch != epoch_) {
    throw std::logic_error(
        "acknowledge: stale plan (the reader advanced since plan() ran)");
  }
  if (!xhat_.empty()) {
    throw std::logic_error(
        "acknowledge: reader already holds decoded state; a pricing mirror "
        "must never execute()");
  }
  ++epoch_;
  mirror_ = true;
  // The caller fetched the plan's segments through src_ before calling, so
  // the ledger already moved by exactly the payload volume; backing
  // p.bytes_new out of it reproduces execute()'s `before` point (and folds
  // the open-cost attribution in, since plans price it).
  const std::size_t now = src_.stats().bytes_read;
  const std::size_t before = now >= p.bytes_new ? now - p.bytes_new : 0;
  unattributed_open_cost_ = 0;

  for (const SegmentId& id : p.segments) {
    BlockState& bs = blocks_[id.block];
    if (id.kind == kSegBase) {
      bs.base_loaded = true;
    } else if (id.kind == kSegPlane) {
      const std::size_t sz = src_.segment_size(id);
      fetched_plane_bytes_[id.level - 1][id.plane] += sz;
      const LevelHeader& lh = levels_of(id.block)[id.level - 1];
      bs.planes_used[id.level - 1] =
          std::max(bs.planes_used[id.level - 1], lh.n_planes - id.plane);
    }
    // kSegAux rides along with the base; nothing to track.
  }
  if (!p.region_scoped) planes_used_ = p.plane_targets;

  RetrievalStats st = finish_stats(before);
  if (p.region_scoped) {
    st.guaranteed_error = region_guarantee(p.blocks, nullptr, nullptr);
  }
  return st;
}

template class ProgressiveReader<float>;
template class ProgressiveReader<double>;

}  // namespace ipcomp
