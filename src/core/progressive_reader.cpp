#include "core/progressive_reader.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "quant/quantizer.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

bool bitmap_test(const Bytes& bm, std::size_t i) {
  return (bm[i >> 3] >> (i & 7)) & 1u;
}

void bitmap_set(Bytes& bm, std::size_t i) {
  bm[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
}

}  // namespace

template <typename T>
ProgressiveReader<T>::ProgressiveReader(SegmentSource& src, ReaderConfig cfg)
    : src_(src), cfg_(cfg) {
  const std::size_t at_open = src_.bytes_read();
  header_ = Header::parse(src_.header());
  unattributed_open_cost_ = src_.bytes_read() - at_open;
  if (header_.dtype != data_type_of<T>()) {
    throw std::runtime_error("ProgressiveReader: archive value type mismatch");
  }
  ls_ = LevelStructure::analyze(header_.dims);
  if (ls_.num_levels != header_.levels.size()) {
    throw std::runtime_error("ProgressiveReader: level count mismatch");
  }
  for (unsigned li = 0; li < ls_.num_levels; ++li) {
    if (ls_.level_count[li] != header_.levels[li].count) {
      throw std::runtime_error("ProgressiveReader: level size mismatch");
    }
  }
  const unsigned L = ls_.num_levels;
  codes_.resize(L);
  planes_used_.assign(L, 0);
  outlier_bitmap_.resize(L);
  outlier_value_.resize(L);
}

template <typename T>
void ProgressiveReader<T>::ensure_base_loaded() {
  if (base_loaded_) return;
  for (unsigned li = 0; li < ls_.num_levels; ++li) {
    const LevelHeader& lh = header_.levels[li];
    codes_[li].assign(lh.count, 0);
    Bytes seg = src_.read_segment({kSegBase, static_cast<std::uint16_t>(li + 1), 0});
    ByteReader r({seg.data(), seg.size()});
    std::size_t n_out = r.varint();
    if (n_out != lh.outlier_count) {
      throw std::runtime_error("reader: outlier count mismatch");
    }
    if (n_out > 0) {
      outlier_bitmap_[li].assign(plane_bytes(lh.count), 0);
      std::size_t slot = 0;
      for (std::size_t i = 0; i < n_out; ++i) {
        slot += r.varint();
        double value = r.f64();
        bitmap_set(outlier_bitmap_[li], slot);
        outlier_value_[li][slot] = value;
      }
    }
    if (!lh.progressive) {
      std::size_t packed_size = r.varint();
      auto packed = r.bytes(packed_size);
      Bytes raw = codec_decompress(packed, lh.count * 4);
      for (std::size_t i = 0; i < lh.count; ++i) {
        codes_[li][i] = static_cast<std::uint32_t>(raw[4 * i]) |
                        static_cast<std::uint32_t>(raw[4 * i + 1]) << 8 |
                        static_cast<std::uint32_t>(raw[4 * i + 2]) << 16 |
                        static_cast<std::uint32_t>(raw[4 * i + 3]) << 24;
      }
    }
  }
  base_loaded_ = true;
}

template <typename T>
std::vector<LevelPlanInput> ProgressiveReader<T>::planner_inputs() const {
  const unsigned rank = static_cast<unsigned>(header_.dims.rank());
  const double step = 2.0 * header_.eb;
  std::vector<LevelPlanInput> inputs(ls_.num_levels);
  for (unsigned li = 0; li < ls_.num_levels; ++li) {
    const LevelHeader& lh = header_.levels[li];
    LevelPlanInput& in = inputs[li];
    if (!lh.progressive || lh.n_planes == 0) {
      in.err.assign(1, 0.0);
      in.already_loaded = 0;
      continue;
    }
    const double amp =
        level_amplification(cfg_.error_model, header_.interp, rank, li + 1);
    in.plane_size.resize(lh.n_planes);
    for (unsigned k = 0; k < lh.n_planes; ++k) {
      in.plane_size[k] =
          src_.segment_size({kSegPlane, static_cast<std::uint16_t>(li + 1), k});
    }
    in.err.resize(lh.n_planes + 1);
    for (unsigned d = 0; d <= lh.n_planes; ++d) {
      in.err[d] = amp * static_cast<double>(lh.loss[d]) * step;
    }
    in.already_loaded = planes_used_[li];
  }
  return inputs;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::apply_plan(const LoadPlan& plan,
                                                std::size_t bytes_before) {
  // bytes_before is snapshotted at request entry so the first request's
  // bytes_new includes the mandatory base-segment cost; the construction-time
  // header read is attributed here too, exactly once.
  const std::size_t before = bytes_before - unattributed_open_cost_;
  unattributed_open_cost_ = 0;
  const unsigned L = ls_.num_levels;

  // Fetch and decode the newly requested planes, top (MSB) first so the
  // predictive XOR prefix bits are always resident before a plane decodes.
  std::vector<std::vector<std::uint32_t>> delta;
  bool any_new = false;
  if (have_recon_) delta.resize(L);
  for (unsigned li = 0; li < L; ++li) {
    const LevelHeader& lh = header_.levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    unsigned target = std::max(plan.planes_to_use[li], planes_used_[li]);
    if (target <= planes_used_[li]) continue;
    any_new = true;
    if (have_recon_ && delta[li].empty()) delta[li].assign(lh.count, 0);
    // Planes are indexed by absolute bit position: using `u` planes from the
    // top means planes [n_planes - u, n_planes).
    for (unsigned used = planes_used_[li] + 1; used <= target; ++used) {
      const unsigned k = lh.n_planes - used;
      Bytes seg =
          src_.read_segment({kSegPlane, static_cast<std::uint16_t>(li + 1), k});
      Bytes encoded = codec_decompress({seg.data(), seg.size()},
                                       plane_bytes(lh.count));
      Bytes plane = header_.prefix_bits == 0
                        ? std::move(encoded)
                        : predictive_encode_plane(codes_[li], encoded, k,
                                                  header_.prefix_bits);
      deposit_plane(codes_[li], plane, k);
      if (have_recon_) deposit_plane(delta[li], plane, k);
    }
    planes_used_[li] = target;
  }

  if (!have_recon_) {
    reconstruct_full();
    have_recon_ = true;
  } else if (any_new) {
    reconstruct_delta(delta);
  }

  RetrievalStats st;
  st.guaranteed_error = current_guaranteed_error();
  st.bytes_total = src_.bytes_read();
  st.bytes_new = st.bytes_total - before;
  st.bitrate = 8.0 * static_cast<double>(st.bytes_total) /
               static_cast<double>(ls_.dims.count());
  return st;
}

template <typename T>
double ProgressiveReader<T>::current_guaranteed_error() const {
  const unsigned rank = static_cast<unsigned>(header_.dims.rank());
  const double step = 2.0 * header_.eb;
  double err = header_.eb;
  for (unsigned li = 0; li < ls_.num_levels; ++li) {
    const LevelHeader& lh = header_.levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    const unsigned d = lh.n_planes - planes_used_[li];
    const double amp =
        level_amplification(cfg_.error_model, header_.interp, rank, li + 1);
    err += amp * static_cast<double>(lh.loss[d]) * step;
  }
  return err;
}

template <typename T>
bool ProgressiveReader<T>::is_outlier(unsigned li, std::size_t slot,
                                      double& value) const {
  if (outlier_bitmap_[li].empty() || !bitmap_test(outlier_bitmap_[li], slot)) {
    return false;
  }
  value = outlier_value_[li].at(slot);
  return true;
}

template <typename T>
void ProgressiveReader<T>::reconstruct_full() {
  const LinearQuantizer quant(header_.eb);
  xhat_.assign(ls_.dims.count(), T{});
  interpolation_sweep(
      xhat_.data(), ls_, header_.interp,
      [&](unsigned li, std::size_t slot, std::size_t /*idx*/, T pred) -> T {
        double raw;
        if (is_outlier(li, slot, raw)) return static_cast<T>(raw);
        return quant.dequantize(pred, negabinary_decode(codes_[li][slot]));
      });
}

template <typename T>
void ProgressiveReader<T>::reconstruct_delta(
    const std::vector<std::vector<std::uint32_t>>& delta) {
  const double step = 2.0 * header_.eb;
  // The delta field is always swept in double so incremental refinement of
  // float archives loses at most one rounding at the final addition.
  std::vector<double> dfield(ls_.dims.count(), 0.0);
  interpolation_sweep(
      dfield.data(), ls_, header_.interp,
      [&](unsigned li, std::size_t slot, std::size_t /*idx*/, double pred) -> double {
        double raw;
        if (is_outlier(li, slot, raw)) return 0.0;  // outliers are always exact
        if (delta[li].empty()) {
          return pred;  // no new bits at this level
        }
        const double dy =
            static_cast<double>(negabinary_decode(delta[li][slot])) * step;
        return pred + dy;
      });
  parallel_for(0, xhat_.size(), [&](std::size_t i) {
    xhat_[i] = static_cast<T>(static_cast<double>(xhat_[i]) + dfield[i]);
  }, /*grain=*/1 << 15);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_error_bound(double target) {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  const double budget = target - header_.eb;
  auto plan = plan_error_bound(planner_inputs(), budget, cfg_.planner);
  return apply_plan(plan, before);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_bytes(std::uint64_t budget_bytes) {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  const std::size_t mandatory = src_.bytes_read() - before;
  const std::uint64_t remaining =
      budget_bytes > mandatory ? budget_bytes - mandatory : 0;
  auto plan = plan_byte_budget(planner_inputs(), remaining, cfg_.planner);
  return apply_plan(plan, before);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_bitrate(double bits_per_value) {
  const double total_budget =
      bits_per_value * static_cast<double>(ls_.dims.count()) / 8.0;
  const double already = static_cast<double>(src_.bytes_read());
  std::uint64_t budget =
      total_budget > already
          ? static_cast<std::uint64_t>(total_budget - already)
          : 0;
  return request_bytes(budget);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_full() {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  LoadPlan plan;
  plan.planes_to_use.resize(ls_.num_levels);
  for (unsigned li = 0; li < ls_.num_levels; ++li) {
    plan.planes_to_use[li] = header_.levels[li].n_planes;
  }
  return apply_plan(plan, before);
}

template class ProgressiveReader<float>;
template class ProgressiveReader<double>;

}  // namespace ipcomp
